// Package dvms is the public API of this repository: a Data Visualization
// Management System (DVMS) with the DeVIL language, reproducing Wu et al.,
// "Combining Design and Performance in a Data Visualization Management
// System", CIDR 2017.
//
// A System hosts one interactive visualization: load a DeVIL program (base
// tables, views, marks relations, EVENT statements, render() sinks), feed
// low-level input events, and observe relations, versions, and pixels.
//
//	sys := dvms.New()
//	err := sys.Load(program)          // DeVIL 1-4 style statements
//	sys.Feed(dvms.MouseDown(0, 5, 15))
//	sel, err := sys.Relation("selected")
//	img := sys.Image()                // rasterized marks
//
// The subsystems behind the facade live in internal/: the relational engine
// (relation, expr, parser, plan, exec), the event recognizer (events), the
// rasterizer (render), the engine core (core), and the DVMS ecosystem
// reproductions (cc, stream, precision) driven by internal/experiments.
package dvms

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/expr"
	"repro/internal/relation"
	"repro/internal/render"
)

// Event is a low-level user input event (§2.1.2's ⟨s, t⟩ pairs).
type Event = events.Event

// Stream is an ordered event sequence.
type Stream = events.Stream

// Relation is a named, schema-typed bag of tuples; all system state is
// exposed as relations.
type Relation = relation.Relation

// Value is a dynamically typed scalar; UDFs consume and produce Values.
type Value = relation.Value

// Tuple is one relation row, a Value slice.
type Tuple = relation.Tuple

// Value constructors re-exported for UDF authors.
var (
	// Null returns the NULL value.
	Null = relation.Null
	// Bool wraps a boolean.
	Bool = relation.Bool
	// Int wraps an integer.
	Int = relation.Int
	// Float wraps a float.
	Float = relation.Float
	// Str wraps a string (named Str to avoid colliding with fmt.Stringer
	// conventions on the package surface).
	Str = relation.String
)

// VersionRef names a relation state in time (@vnow-i / @tnow-j).
type VersionRef = relation.VersionRef

// Image is the rasterizer framebuffer behind the pixels relation.
type Image = render.Image

// TxnEvent summarizes how one fed event advanced the interaction
// transaction (begin / rows emitted / commit / abort).
type TxnEvent = core.TxnEvent

// Config mirrors core.Config: framebuffer size, version-history depth, and
// the maintenance/provenance strategy toggles used by the ablations.
type Config = core.Config

// Func is a pure scalar UDF registrable on a System.
type Func = expr.Func

// Event constructors re-exported for hosts and examples.
var (
	// VNow builds an @vnow-i version reference.
	VNow = relation.VNow
	// TNow builds a @tnow-j version reference.
	TNow = relation.TNow
	// Drag synthesizes a down-move*-up stream between two points.
	Drag = events.Drag
)

// MouseDown builds a MOUSE_DOWN event at time t and position (x, y).
func MouseDown(t, x, y int64) Event { return events.Mouse(events.MouseDown, t, x, y) }

// MouseMove builds a MOUSE_MOVE event.
func MouseMove(t, x, y int64) Event { return events.Mouse(events.MouseMove, t, x, y) }

// MouseUp builds a MOUSE_UP event.
func MouseUp(t, x, y int64) Event { return events.Mouse(events.MouseUp, t, x, y) }

// Hover builds a HOVER event.
func Hover(t, x, y int64) Event { return events.Mouse(events.Hover, t, x, y) }

// KeyPress builds a KEY_PRESS event.
func KeyPress(t int64, key string) Event { return events.Key(t, key) }

// System is one DVMS instance.
type System struct {
	eng *core.Engine
}

// New creates a System; pass at most one Config.
func New(cfg ...Config) *System {
	c := Config{}
	if len(cfg) > 1 {
		panic("dvms.New: pass at most one Config")
	}
	if len(cfg) == 1 {
		c = cfg[0]
	}
	return &System{eng: core.New(c)}
}

// Load parses and applies a DeVIL program, computes all views, renders, and
// commits the result as version 0 (so @vnow-1 resolves during the first
// interaction).
func (s *System) Load(program string) error { return s.eng.LoadProgram(program) }

// Exec applies further DeVIL statements without committing.
func (s *System) Exec(statements string) error { return s.eng.Exec(statements) }

// InsertRows bulk-appends rows to a base table through the host API,
// bypassing the DeVIL parser. The change flows through incremental view
// maintenance like any INSERT: views are updated by delta where possible.
func (s *System) InsertRows(table string, rows []Tuple) error {
	return s.eng.InsertRows(table, rows)
}

// Feed routes events through the recognizers, maintaining views, pixels,
// and transactions. It returns the transaction summary of the final event.
func (s *System) Feed(evs ...Event) (TxnEvent, error) {
	var last TxnEvent
	for _, ev := range evs {
		te, err := s.eng.FeedEvent(ev)
		if err != nil {
			return last, err
		}
		last = te
	}
	return last, nil
}

// FeedStream feeds a whole stream, returning per-event summaries.
func (s *System) FeedStream(stream Stream) ([]TxnEvent, error) {
	return s.eng.FeedStream(stream)
}

// Relation returns the current contents of a base relation or view.
func (s *System) Relation(name string) (*Relation, error) { return s.eng.Relation(name) }

// RelationAt returns a relation at a version reference (undo history,
// mid-transaction event states).
func (s *System) RelationAt(name string, v VersionRef) (*Relation, error) {
	return s.eng.RelationAt(name, v)
}

// Query evaluates an ad-hoc DeVIL query against current state.
func (s *System) Query(q string) (*Relation, error) { return s.eng.Query(q) }

// Image returns the framebuffer produced by the program's render() sinks.
func (s *System) Image() *Image { return s.eng.Image() }

// Pixels materializes the pixels relation P(x, y, r, g, b, a); sparse skips
// background pixels.
func (s *System) Pixels(sparse bool) *Relation { return s.eng.Pixels(sparse) }

// SavePNG writes the current framebuffer to a PNG file.
func (s *System) SavePNG(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.eng.Image().WritePNG(f); err != nil {
		return fmt.Errorf("encode %s: %w", path, err)
	}
	return nil
}

// ASCII renders a terminal view of the framebuffer with the given
// downsampling block size.
func (s *System) ASCII(blockW, blockH int) string { return s.eng.Image().ASCII(blockW, blockH) }

// Undo rewinds to the previous committed version (§2.1.3 undo/redo via
// versioning).
func (s *System) Undo() error { return s.eng.Undo() }

// Commit manually checkpoints the current state as a version.
func (s *System) Commit() int { return s.eng.Commit() }

// InTxn reports whether an interaction transaction is in flight.
func (s *System) InTxn() bool { return s.eng.InTxn() }

// Warnings returns static-analysis warnings from program loading (e.g.
// ambiguous interaction pairs).
func (s *System) Warnings() []string { return s.eng.Warnings() }

// Views lists view names in definition order.
func (s *System) Views() []string { return s.eng.ViewNames() }

// RegisterFunc installs a pure scalar UDF; call before Load.
func (s *System) RegisterFunc(f Func) { s.eng.Funcs().Register(f) }

// Stats exposes engine work counters (view recomputes, renders, commits),
// snapshotted under the engine lock so concurrent hosts read them without
// tearing.
func (s *System) Stats() core.Stats { return s.eng.StatsSnapshot() }

// Deconstruct recovers the data bound to each mark of a marks view from
// provenance (§3.1 deconstruction/restyling): the result joins mark
// attributes with the generating rows of the base relation.
func (s *System) Deconstruct(markView, base string) (*Relation, error) {
	return s.eng.Deconstruct(markView, base)
}

// Lineage returns, per requested output row of a view, the contributing row
// indices of a base relation (§3.1 explanation use case).
func (s *System) Lineage(view string, rows []int, base string) ([][]int, error) {
	return s.eng.Lineage(view, rows, base)
}

// ExplainView returns a view's optimized logical plan.
func (s *System) ExplainView(name string) (string, error) { return s.eng.ExplainView(name) }

// DebugReport exposes the visualization workflow state for inspection
// (§3.1 interaction debugging).
func (s *System) DebugReport() string { return s.eng.DebugReport() }
