package dvms_test

// Benchmarks regenerating every table and figure of the paper (DESIGN.md §2
// maps each to its experiment). Run:
//
//	go test -bench=. -benchmem
//
// Absolute timings measure this Go reproduction, not the authors' testbed;
// EXPERIMENTS.md records the shape comparisons against the paper.

import (
	"fmt"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/precision"
	"repro/internal/relation"
	"repro/internal/stream"
	"repro/internal/workload"
)

// BenchmarkTable1EventRecognition measures the event recognizer on the
// Table 1 drag pattern: compound-event extraction throughput.
func BenchmarkTable1EventRecognition(b *testing.B) {
	eng, err := experiments.NewBrushingEngine(5, 1, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	stream := events.Stream{
		events.Mouse(events.MouseDown, 0, 5, 15),
		events.Mouse(events.MouseMove, 1, 6, 17),
		events.Mouse(events.MouseMove, 40, 10, 10),
		events.Mouse(events.MouseUp, 41, 10, 10),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.FeedStream(stream); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1Crossfilter measures one crossfilter interaction (Figure 1):
// a year-range drag updating five linked group-by charts.
func BenchmarkFig1Crossfilter(b *testing.B) {
	eng, err := experiments.NewCrossfilterEngine(2000, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.FeedStream(experiments.YearSelectionDrag()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2LinkedBrush measures one brushing interaction over the
// DeVIL 1-3 program (join + IN formulation).
func BenchmarkFig2LinkedBrush(b *testing.B) {
	eng, err := experiments.NewBrushingEngine(200, 7, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.FeedStream(experiments.BrushDrag(int64(i*100), 100, 50, 250, 200)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2TraceVsJoin compares the DeVIL 4 provenance formulation
// against DeVIL 3 on the same interaction (E4).
func BenchmarkFig2TraceVsJoin(b *testing.B) {
	b.Run("join", func(b *testing.B) {
		eng, err := experiments.NewBrushingEngine(200, 7, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.FeedStream(experiments.BrushDrag(int64(i*100), 100, 50, 250, 200)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("trace", func(b *testing.B) {
		eng, err := experiments.NewTraceEngine(200, 7, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.FeedStream(experiments.BrushDrag(int64(i*100), 100, 50, 250, 200)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig5PolicySim measures one simulated participant per policy
// under the 2.5 s delay condition (Figure 5's expensive cell).
func BenchmarkFig5PolicySim(b *testing.B) {
	for _, pol := range cc.Policies {
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cc.Simulate(cc.Params{Policy: pol, MeanDelayMs: 2500, Seed: int64(i)})
			}
		})
	}
}

// BenchmarkFig5FullStudy measures the complete Figure 5 study grid.
func BenchmarkFig5FullStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cc.RunStudy(cc.StudyParams{Participants: 40, Seed: int64(i)})
	}
}

// BenchmarkFig6TransformationGraph measures mining the transformation graph
// from a 10k-query SDSS-style log.
func BenchmarkFig6TransformationGraph(b *testing.B) {
	log := workload.SDSSLog(10000, 7)
	sessions := experiments.SessionsOf(log)
	rules := precision.SDSSRules()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := precision.BuildGraphFromSessions(sessions, rules); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7InterfaceSynthesis measures the widget-assignment knapsack.
func BenchmarkFig7InterfaceSynthesis(b *testing.B) {
	log := workload.SDSSLog(10000, 7)
	g, err := precision.BuildGraphFromSessions(experiments.SessionsOf(log), precision.SDSSRules())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		precision.Synthesize(g, precision.SynthesisParams{MaxVis: 20, Penalty: 10})
	}
}

// BenchmarkIntentModel measures §3.3's widget predictor at the 200 ms
// horizon.
func BenchmarkIntentModel(b *testing.B) {
	widgets := workload.WidgetGrid(4, 3, 800, 600)
	traces := workload.MouseTraces(100, widgets, 20, 10, 7)
	m := stream.NewIntentModel(widgets)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Evaluate(traces)
	}
}

// BenchmarkProgressiveStream measures a full §3.3 streaming session under
// the greedy-utility scheduler.
func BenchmarkProgressiveStream(b *testing.B) {
	widgets := workload.WidgetGrid(4, 3, 800, 600)
	tiles, err := stream.SyntheticTiles(len(widgets), 32, 7)
	if err != nil {
		b.Fatal(err)
	}
	traces := workload.MouseTraces(20, widgets, 20, 10, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stream.RunSession(stream.SessionParams{
			Widgets: widgets, Tiles: tiles, Traces: traces,
			Sched: &stream.GreedyUtility{}, BandwidthPerTick: 8, RenderableUtility: 0.99,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndInteraction measures event→marks→pixels latency (E10)
// as product count grows.
func BenchmarkEndToEndInteraction(b *testing.B) {
	for _, n := range []int{50, 200, 800} {
		b.Run(benchSize(n), func(b *testing.B) {
			eng, err := experiments.NewBrushingEngine(n, 7, core.Config{})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.FeedStream(experiments.BrushDrag(int64(i*100), 100, 50, 250, 200)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationIncremental compares dirty-set maintenance vs full
// recomputation (A1).
func BenchmarkAblationIncremental(b *testing.B) {
	for _, full := range []bool{false, true} {
		name := "dirty-set"
		if full {
			name = "recompute-all"
		}
		b.Run(name, func(b *testing.B) {
			eng := core.New(core.Config{RecomputeAll: full})
			if err := eng.LoadProgram(experiments.BuildCrossfilterProgram(1000, 7)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.FeedStream(experiments.YearSelectionDrag()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationProvenance compares lazy vs eager lineage (A2).
func BenchmarkAblationProvenance(b *testing.B) {
	for _, eager := range []bool{false, true} {
		name := "lazy"
		if eager {
			name = "eager"
		}
		b.Run(name, func(b *testing.B) {
			eng, err := experiments.NewTraceEngine(150, 7, core.Config{EagerProvenance: eager})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.FeedStream(experiments.BrushDrag(int64(i*100), 100, 50, 250, 200)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationScheduler compares the three §3.3 schedulers (A3).
func BenchmarkAblationScheduler(b *testing.B) {
	widgets := workload.WidgetGrid(4, 3, 800, 600)
	tiles, err := stream.SyntheticTiles(len(widgets), 32, 7)
	if err != nil {
		b.Fatal(err)
	}
	traces := workload.MouseTraces(20, widgets, 20, 10, 7)
	for _, s := range []stream.Scheduler{&stream.GreedyUtility{}, stream.RoundRobin{}, stream.NoPrefetch{}} {
		b.Run(s.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := stream.RunSession(stream.SessionParams{
					Widgets: widgets, Tiles: tiles, Traces: traces, Sched: s,
					BandwidthPerTick: 8, RenderableUtility: 0.99,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIVMBrush measures crossfilter brushing through the
// delta-propagating dataflow vs the RecomputeAll baseline (ISSUE 2's
// end-to-end interaction benchmark). Each op is one full drag: the brush
// opens over month 1, then extends one month (~1/12 of the data) per move
// event across five linked charts, then releases.
func BenchmarkIVMBrush(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		for _, full := range []bool{false, true} {
			name := fmt.Sprintf("n%d/incremental", n)
			if full {
				name = fmt.Sprintf("n%d/recompute-all", n)
			}
			b.Run(name, func(b *testing.B) {
				eng, err := experiments.NewIVMEngine(n, 7, core.Config{RecomputeAll: full})
				if err != nil {
					b.Fatal(err)
				}
				drag := experiments.IVMBrushStream(6) // 10 events per op
				if _, err := eng.FeedStream(drag); err != nil {
					b.Fatal(err) // warm-up primes the pipelines
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.FeedStream(drag); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFusedBrush measures the delta pipeline's aggregate apply loop:
// fused join→aggregate streaming vs the row-at-a-time path on the cube
// crossfilter with the cube rewrite disabled (so the plain pipeline runs).
// Each op is one 7-event drag; -benchmem exposes the allocation gap of the
// fused scratch-tuple loop.
func BenchmarkFusedBrush(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		for _, noFusion := range []bool{false, true} {
			arm := "fused"
			if noFusion {
				arm = "row-path"
			}
			b.Run(fmt.Sprintf("n%d/%s", n, arm), func(b *testing.B) {
				eng, err := experiments.NewCubeEngine(n, 7, core.Config{
					DisableCube: true, DisableFusion: noFusion,
				})
				if err != nil {
					b.Fatal(err)
				}
				drag := experiments.CubeDragStream(1) // 7 events per op
				if _, err := eng.FeedStream(drag); err != nil {
					b.Fatal(err) // warm-up primes the pipelines
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.FeedStream(drag); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTopKBrush measures the top-k crossfilter (ORDER BY+LIMIT views
// maintained by order-statistic trees) against the RecomputeAll baseline.
// Two steady states per size: "brush" ops are one full drag (each move
// shifts ~1/12 of the data through the filtered leaderboard's join);
// "tick" ops are one single-row insert straddling the k-th boundary, the
// O(log n + k) case where incremental cost should be flat in n.
func BenchmarkTopKBrush(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		for _, full := range []bool{false, true} {
			arm := "incremental"
			if full {
				arm = "recompute-all"
			}
			b.Run(fmt.Sprintf("n%d/brush/%s", n, arm), func(b *testing.B) {
				eng, err := experiments.NewTopKEngine(n, 7, core.Config{RecomputeAll: full})
				if err != nil {
					b.Fatal(err)
				}
				drag := experiments.IVMBrushStream(6) // 10 events per op
				if _, err := eng.FeedStream(drag); err != nil {
					b.Fatal(err) // warm-up primes the pipelines
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.FeedStream(drag); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("n%d/tick/%s", n, arm), func(b *testing.B) {
				eng, err := experiments.NewTopKEngine(n, 7, core.Config{RecomputeAll: full})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.FeedStream(experiments.IVMBrushStream(2)); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := eng.InsertRows("Sales",
						[]relation.Tuple{experiments.TopKTickRow(n, i)}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkQueryEngine measures the relational substrate in isolation:
// parse+plan+optimize+execute of the crossfilter aggregate.
func BenchmarkQueryEngine(b *testing.B) {
	eng, err := experiments.NewCrossfilterEngine(2000, 7)
	if err != nil {
		b.Fatal(err)
	}
	q, err := parser.ParseQuery("SELECT region, sum(revenue) AS total FROM Sales WHERE year >= 1997 GROUP BY region")
	if err != nil {
		b.Fatal(err)
	}
	ex := exec.New(eng.Store())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.RunQuery(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanOptimize measures plan construction and the rule-based
// optimizer alone.
func BenchmarkPlanOptimize(b *testing.B) {
	eng, err := experiments.NewCrossfilterEngine(500, 7)
	if err != nil {
		b.Fatal(err)
	}
	q, err := parser.ParseQuery(
		"SELECT a.region, sum(a.revenue) AS t FROM Sales AS a, Sales AS b WHERE a.orderId = b.orderId AND a.year >= 1997 AND b.month = 12 GROUP BY a.region")
	if err != nil {
		b.Fatal(err)
	}
	ex := exec.New(eng.Store())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := plan.Build(q, eng.Store())
		if err != nil {
			b.Fatal(err)
		}
		plan.Optimize(p, ex.Funcs)
	}
}

func benchSize(n int) string {
	switch {
	case n >= 1000:
		return "n1000+"
	case n >= 800:
		return "n800"
	case n >= 200:
		return "n200"
	default:
		return "n50"
	}
}
