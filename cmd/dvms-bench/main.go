// Command dvms-bench regenerates the paper's tables and figures as text
// series (see DESIGN.md §2 for the experiment index and EXPERIMENTS.md for
// recorded paper-vs-measured comparisons).
//
// Usage:
//
//	dvms-bench -experiment all
//	dvms-bench -experiment fig5 -participants 60
//	dvms-bench -experiment fig1 -n 5000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/cc"
	"repro/internal/experiments"
)

func main() {
	var (
		experiment   = flag.String("experiment", "all", "one of: fig1 fig2 table1 deVIL4 fig5 fig5-trend fig6 fig7 stream a1 a2 e2e ivm version topk serve wal cube fused obs all")
		n            = flag.Int("n", 2000, "workload size (rows/products/queries, experiment dependent)")
		sessions     = flag.Int("sessions", 10, "concurrent sessions for the serve experiment")
		participants = flag.Int("participants", 40, "simulated participants for fig5")
		seed         = flag.Int64("seed", 7, "workload seed")
		format       = flag.String("format", "text", "output format: text or json (machine-readable, for BENCH_*.json trajectories)")
	)
	flag.Parse()

	if err := run(*experiment, *format, *n, *sessions, *participants, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "dvms-bench:", err)
		os.Exit(1)
	}
}

func run(experiment, format string, n, sessions, participants int, seed int64) (err error) {
	if format != "text" && format != "json" {
		return fmt.Errorf("unknown format %q (want text or json)", format)
	}
	var collected []experiments.Result
	print := func(r experiments.Result, err error) error {
		if err != nil {
			return err
		}
		if format == "json" {
			collected = append(collected, r)
			return nil
		}
		fmt.Printf("=== %s — %s ===\n%s\n", r.ID, r.Title, r.Output)
		return nil
	}
	// Emit JSON only on full success: a partial array in a redirected
	// BENCH_*.json would read as a valid-but-incomplete trajectory.
	defer func() {
		if err == nil && format == "json" && len(collected) > 0 {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			err = enc.Encode(collected)
		}
	}()
	switch experiment {
	case "fig1":
		return print(experiments.Fig1Crossfilter(n, seed))
	case "fig2":
		return print(experiments.Fig2LinkedBrush(min(n, 500), seed))
	case "table1":
		return print(experiments.Table1())
	case "deVIL4":
		return print(experiments.DeVIL4TraceVsJoin(min(n, 500), 5, seed))
	case "fig5":
		return print(experiments.Fig5(cc.Threshold, participants, seed), nil)
	case "fig5-trend":
		return print(experiments.Fig5(cc.Trend, participants, seed), nil)
	case "fig6":
		return print(experiments.Fig6(n*10, seed))
	case "fig7":
		return print(experiments.Fig7(n*4, seed))
	case "stream":
		return print(experiments.StreamExperiment(600, seed))
	case "a1":
		return print(experiments.AblationIncremental(n, seed))
	case "a2":
		return print(experiments.AblationProvenance(min(n, 300), seed))
	case "e2e":
		return print(experiments.EndToEnd([]int{50, 200, 800, 2000}, seed))
	case "ivm":
		// -n sets the largest size; smaller decades show the scaling trend.
		sizes := []int{n}
		if n >= 100000 {
			sizes = []int{n / 100, n / 10, n}
		} else if n >= 10000 {
			sizes = []int{n / 10, n}
		}
		return print(experiments.IVMScaling(sizes, 6, seed))
	case "version":
		// -n sets the largest size; smaller decades show the scaling trend.
		sizes := []int{n}
		if n >= 100000 {
			sizes = []int{n / 100, n / 10, n}
		} else if n >= 10000 {
			sizes = []int{n / 10, n}
		}
		return print(experiments.VersioningExperiment(sizes, 40, seed))
	case "serve":
		// Fan-out trajectory: 1 session (pure overhead vs single-tenant)
		// and the full -sessions count, at base size -n.
		counts := []int{1, sessions}
		if sessions <= 1 {
			counts = []int{sessions}
		}
		return print(experiments.ServeScaling(n, counts, 6, seed))
	case "topk":
		// -n sets the largest size; smaller decades show the scaling trend.
		sizes := []int{n}
		if n >= 100000 {
			sizes = []int{n / 100, n / 10, n}
		} else if n >= 10000 {
			sizes = []int{n / 10, n}
		}
		return print(experiments.TopKScaling(sizes, 6, 40, seed))
	case "wal":
		// -n sets the largest base size; smaller decades show how append
		// overhead and recovery time scale with base data.
		sizes := []int{n}
		if n >= 1000000 {
			sizes = []int{n / 100, n / 10, n}
		} else if n >= 10000 {
			sizes = []int{n / 10, n}
		}
		return print(experiments.WALExperiment(sizes, 40, seed))
	case "cube":
		// -n sets the largest size; smaller decades show the scaling trend
		// (the headline claim is flat µs/event across them).
		sizes := []int{n}
		if n >= 100000 {
			sizes = []int{n / 100, n / 10, n}
		} else if n >= 10000 {
			sizes = []int{n / 10, n}
		}
		return print(experiments.CubeScaling(sizes, 50, seed))
	case "fused":
		// -n sets the largest size; smaller decades show the scaling trend.
		sizes := []int{n}
		if n >= 100000 {
			sizes = []int{n / 100, n / 10, n}
		} else if n >= 10000 {
			sizes = []int{n / 10, n}
		}
		return print(experiments.FusedScaling(sizes, 3, seed))
	case "obs":
		// -n sets the largest size; the overhead ratio is the headline, so
		// one extra decade shows it holds as event cost shrinks relative to
		// the fixed instrumentation cost.
		sizes := []int{n}
		if n >= 100000 {
			sizes = []int{n / 100, n}
		}
		return print(experiments.ObsOverhead(sizes, 3, seed))
	case "all":
		results, err := experiments.All()
		if err != nil {
			return err
		}
		for _, r := range results {
			if err := print(r, nil); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", experiment)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
