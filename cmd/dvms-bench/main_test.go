package main

import "testing"

func TestRunSingleExperiments(t *testing.T) {
	// Small sizes keep this a smoke test; the full suite runs via
	// -experiment all in CI-style usage.
	cases := []struct {
		experiment string
		n          int
	}{
		{"table1", 10},
		{"fig2", 40},
		{"fig6", 300},
		{"fig7", 300},
		{"a1", 100},
	}
	for _, c := range cases {
		if err := run(c.experiment, c.n, 5, 1); err != nil {
			t.Errorf("experiment %s: %v", c.experiment, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("bogus", 10, 5, 1); err == nil {
		t.Fatal("unknown experiment should error")
	}
}
