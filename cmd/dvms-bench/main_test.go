package main

import (
	"encoding/json"
	"io"
	"os"
	"testing"
)

func TestRunSingleExperiments(t *testing.T) {
	// Small sizes keep this a smoke test; the full suite runs via
	// -experiment all in CI-style usage.
	cases := []struct {
		experiment string
		n          int
	}{
		{"table1", 10},
		{"fig2", 40},
		{"fig6", 300},
		{"fig7", 300},
		{"a1", 100},
	}
	for _, c := range cases {
		if err := run(c.experiment, "text", c.n, 2, 5, 1); err != nil {
			t.Errorf("experiment %s: %v", c.experiment, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("bogus", "text", 10, 2, 5, 1); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestRunJSONFormat(t *testing.T) {
	// Capture stdout: the JSON shape is the contract BENCH_*.json
	// trajectory files depend on.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run("table1", "json", 10, 2, 5, 1)
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("json format: %v", runErr)
	}
	var results []struct{ ID, Title, Output string }
	if err := json.Unmarshal(out, &results); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if len(results) != 1 || results[0].ID != "table1" || results[0].Output == "" {
		t.Fatalf("unexpected JSON payload: %+v", results)
	}
}

func TestRunUnknownFormat(t *testing.T) {
	if err := run("table1", "jsn", 10, 2, 5, 1); err == nil {
		t.Fatal("unknown format should error")
	}
}
