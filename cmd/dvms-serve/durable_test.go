package main

// Serve-tier robustness tests: the bounded-read error reply, session resume
// over the wire, and the full acceptance path — SIGTERM graceful shutdown,
// restart over the same data directory, client resumes by token.

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestLineTooLongReply sends a request line exceeding the 4MB scanner budget
// and expects an in-band error instead of a silent hangup.
func TestLineTooLongReply(t *testing.T) {
	addr := startTestServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	big := make([]byte, (1<<22)+100)
	for i := range big {
		big[i] = 'a'
	}
	big[len(big)-1] = '\n'
	if _, err := conn.Write(big); err != nil {
		t.Fatalf("write oversized line: %v", err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatalf("read reply: %v", err)
	}
	if !strings.Contains(line, `"line too long"`) || strings.Contains(line, `"ok":true`) {
		t.Fatalf("want line-too-long error frame, got %s", line)
	}
}

// TestWireResume drops a connection mid-session and resumes the session from
// a fresh connection by token; an explicit detach then forgets it.
func TestWireResume(t *testing.T) {
	addr := startTestServer(t)

	c1 := dialClient(t, addr)
	token := c1.must(`{"op":"ping"}`).Token
	if token == "" {
		t.Fatal("ping carries no resume token")
	}
	c1.brush(2)
	want := c1.must(`{"op":"relation","name":"selected_months"}`)
	c1.conn.Close() // drop without detaching: session stays resumable

	c2 := dialClient(t, addr)
	resp := c2.must(fmt.Sprintf(`{"op":"resume","token":%q}`, token))
	if resp.Token != token {
		t.Fatalf("resumed token %q, want %q", resp.Token, token)
	}
	got := c2.must(`{"op":"relation","name":"selected_months"}`)
	if fmt.Sprint(got.Rows) != fmt.Sprint(want.Rows) {
		t.Fatalf("resumed selection differs:\n got %v\nwant %v", got.Rows, want.Rows)
	}
	// The resumed session keeps working over the new connection.
	c2.must(`{"op":"undo"}`)

	c2.must(`{"op":"detach"}`)
	c3 := dialClient(t, addr)
	if resp := c3.roundTrip(fmt.Sprintf(`{"op":"resume","token":%q}`, token)); resp.OK {
		t.Fatalf("resume after explicit detach should fail, got %+v", resp)
	}
}

func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func dialRetry(t *testing.T, addr string) *testClient {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			t.Cleanup(func() { conn.Close() })
			return &testClient{t: t, conn: conn, r: bufio.NewReader(conn)}
		}
		if time.Now().After(deadline) {
			t.Fatalf("dial %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSigtermRestartResume is the acceptance path: a durable server takes a
// brush, SIGTERM shuts it down gracefully (open connections get a shutdown
// frame, the log seals, run returns nil), and a second server over the same
// -data-dir recovers the base data and resumes the client's session by token.
func TestSigtermRestartResume(t *testing.T) {
	dir := t.TempDir()
	addr := freePort(t)
	done := make(chan error, 1)
	go func() {
		done <- run(options{addr: addr, workloadID: "ivm", n: 300, seed: 7, dataDir: dir, fsyncMode: "never"})
	}()

	c := dialRetry(t, addr)
	token := c.must(`{"op":"ping"}`).Token
	c.brush(3)
	want := c.must(`{"op":"relation","name":"selected_months"}`)
	if len(want.Rows) != 4 {
		t.Fatalf("brush selected %d months, want 4", len(want.Rows))
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// The open connection receives the shutdown frame before the close.
	line, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatalf("read shutdown frame: %v", err)
	}
	if !strings.Contains(line, "server shutting down") {
		t.Fatalf("want shutdown frame, got %s", line)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}

	addr2 := freePort(t)
	done2 := make(chan error, 1)
	go func() {
		done2 <- run(options{addr: addr2, workloadID: "ivm", n: 300, seed: 7, dataDir: dir, fsyncMode: "never"})
	}()
	c2 := dialRetry(t, addr2)
	resp := c2.must(fmt.Sprintf(`{"op":"resume","token":%q}`, token))
	if resp.Token != token {
		t.Fatalf("resumed token %q, want %q", resp.Token, token)
	}
	got := c2.must(`{"op":"relation","name":"selected_months"}`)
	if fmt.Sprint(got.Rows) != fmt.Sprint(want.Rows) {
		t.Fatalf("selection after restart differs:\n got %v\nwant %v", got.Rows, want.Rows)
	}
	// Recovery must not re-run the workload load: same base row count.
	count := c2.must(`{"op":"query","q":"SELECT count(*) FROM Sales"}`)
	if fmt.Sprint(count.Rows) != "[[300]]" {
		t.Fatalf("base rows after restart: %v, want [[300]]", count.Rows)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done2:
		if err != nil {
			t.Fatalf("second shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("second server did not exit after SIGTERM")
	}
}
