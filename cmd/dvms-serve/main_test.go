package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/protocol"
	"repro/internal/server"
)

// startTestServer runs the accept loop on an ephemeral port over a small
// IVM workload and returns the address.
func startTestServer(t *testing.T) string {
	t.Helper()
	srv, err := server.New(server.Config{}, experiments.BuildIVMCrossfilterProgram())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.InsertRows("Sales", experiments.IVMSalesTuples(500, 7)); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go serveConn(srv, conn)
		}
	}()
	return ln.Addr().String()
}

type testClient struct {
	t    *testing.T
	conn net.Conn
	r    *bufio.Reader
}

func dialClient(t *testing.T, addr string) *testClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &testClient{t: t, conn: conn, r: bufio.NewReader(conn)}
}

func (c *testClient) roundTrip(req string) protocol.Response {
	c.t.Helper()
	if _, err := fmt.Fprintln(c.conn, req); err != nil {
		c.t.Fatalf("write: %v", err)
	}
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		c.t.Fatalf("read: %v", err)
	}
	var resp protocol.Response
	if err := json.Unmarshal(line, &resp); err != nil {
		c.t.Fatalf("decode %q: %v", line, err)
	}
	return resp
}

func (c *testClient) must(req string) protocol.Response {
	c.t.Helper()
	resp := c.roundTrip(req)
	if !resp.OK {
		c.t.Fatalf("%s failed: %s", req, resp.Error)
	}
	return resp
}

// brush drives a down-move-…-up drag selecting the first k month buckets.
func (c *testClient) brush(k int) {
	c.t.Helper()
	c.must(`{"op":"event","type":"MOUSE_DOWN","t":0,"x":35,"y":40}`)
	for i := 0; i <= k; i++ {
		c.must(fmt.Sprintf(`{"op":"event","type":"MOUSE_MOVE","t":%d,"x":%d,"y":45}`, i+1, 45+20*i))
	}
	resp := c.must(fmt.Sprintf(`{"op":"event","type":"MOUSE_UP","t":%d,"x":%d,"y":45}`, k+2, 45+20*k))
	if !resp.Committed {
		c.t.Fatalf("drag should commit, got %+v", resp)
	}
}

// TestProtocolSessions drives two concurrent clients with different
// brushes and checks their selections are isolated while shared relations
// are visible to both.
func TestProtocolSessions(t *testing.T) {
	addr := startTestServer(t)
	c1 := dialClient(t, addr)
	c2 := dialClient(t, addr)

	p1 := c1.must(`{"op":"ping"}`)
	p2 := c2.must(`{"op":"ping"}`)
	if p1.Session == p2.Session {
		t.Fatalf("connections share a session id: %d", p1.Session)
	}

	// Concurrent brushing: client 1 selects 1 month, client 2 selects 6.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); c1.brush(0) }()
	go func() { defer wg.Done(); c2.brush(5) }()
	wg.Wait()

	r1 := c1.must(`{"op":"relation","name":"selected_months"}`)
	r2 := c2.must(`{"op":"relation","name":"selected_months"}`)
	if len(r1.Rows) != 1 || len(r2.Rows) != 6 {
		t.Fatalf("selections not isolated: c1=%d months, c2=%d months", len(r1.Rows), len(r2.Rows))
	}

	// Both see the same shared relation through the catalog chain.
	s1 := c1.must(`{"op":"query","q":"SELECT count(*) FROM Sales"}`)
	s2 := c2.must(`{"op":"query","q":"SELECT count(*) FROM Sales"}`)
	if fmt.Sprint(s1.Rows) != fmt.Sprint(s2.Rows) {
		t.Fatalf("shared reads diverge: %v vs %v", s1.Rows, s2.Rows)
	}

	// Stats round-trip exposes the share registry.
	st := c1.must(`{"op":"stats"}`)
	if st.Server == nil || st.Server.SharedSides == 0 {
		t.Fatalf("server stats missing share registry: %+v", st.Server)
	}
	if st.Server.Sessions != 2 {
		t.Fatalf("server sees %d sessions, want 2", st.Server.Sessions)
	}

	// Undo rewinds client 2's committed brush; client 1 is untouched.
	c2.must(`{"op":"undo"}`)
	r2 = c2.must(`{"op":"relation","name":"selected_months"}`)
	if len(r2.Rows) != 12 {
		t.Fatalf("undo should restore the all-months selection, got %d", len(r2.Rows))
	}
	r1 = c1.must(`{"op":"relation","name":"selected_months"}`)
	if len(r1.Rows) != 1 {
		t.Fatalf("client 1 selection changed by client 2 undo: %d months", len(r1.Rows))
	}

	// Errors are reported in-band, not by dropping the connection.
	if resp := c1.roundTrip(`{"op":"relation","name":"nope"}`); resp.OK || resp.Error == "" {
		t.Fatalf("want in-band error, got %+v", resp)
	}
	if resp := c1.roundTrip(`{"op":"frobnicate"}`); resp.OK {
		t.Fatalf("unknown op should error, got %+v", resp)
	}
	c1.must(`{"op":"ping"}`)
}

// startObsTestServer is startTestServer with a 1ns latency budget so every
// event lands in the slow log (exercising the trace op's slow filter).
func startObsTestServer(t *testing.T) string {
	t.Helper()
	cfg := server.Config{}
	cfg.Engine.LatencyBudget = 1 // 1ns: every event is slow
	srv, err := server.New(cfg, experiments.BuildIVMCrossfilterProgram())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.InsertRows("Sales", experiments.IVMSalesTuples(500, 7)); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go serveConn(srv, conn)
		}
	}()
	return ln.Addr().String()
}

// TestStatsAndTraceOps drives a brush and checks the stats op carries the
// session and server-wide metrics snapshots and the trace op returns the
// event traces (full ring and slow-only).
func TestStatsAndTraceOps(t *testing.T) {
	addr := startObsTestServer(t)
	c := dialClient(t, addr)
	c.brush(2)

	st := c.must(`{"op":"stats"}`)
	if st.Obs == nil || st.ServerObs == nil {
		t.Fatalf("stats response missing obs snapshots: %+v", st)
	}
	ev, ok := st.Obs.Histograms["dvms_event_seconds"]
	if !ok || ev.Count == 0 {
		t.Fatalf("session snapshot recorded no events: %+v", st.Obs.Histograms)
	}
	sev, ok := st.ServerObs.Histograms["dvms_event_seconds"]
	if !ok || sev.Count < ev.Count {
		t.Fatalf("server-wide merge (%d events) should cover the session (%d)", sev.Count, ev.Count)
	}
	if st.ServerObs.Gauges["dvms_sessions"] != 1 {
		t.Fatalf("dvms_sessions gauge = %v, want 1", st.ServerObs.Gauges["dvms_sessions"])
	}
	if st.ServerObs.Counters["dvms_sessions_attached_total"] == 0 {
		t.Fatalf("server counters missing from merge: %+v", st.ServerObs.Counters)
	}

	full := c.must(`{"op":"trace"}`)
	if len(full.Traces) == 0 {
		t.Fatalf("trace op returned no traces")
	}
	var withSpans int
	for _, tr := range full.Traces {
		if len(tr.Spans) > 0 {
			withSpans++
		}
	}
	if withSpans == 0 {
		t.Fatalf("no trace carries stage spans: %+v", full.Traces)
	}

	slow := c.must(`{"op":"trace","slow":true}`)
	if len(slow.Traces) == 0 || len(slow.Traces) > len(full.Traces) {
		t.Fatalf("slow filter wrong: %d slow vs %d total", len(slow.Traces), len(full.Traces))
	}
	for _, tr := range slow.Traces {
		if !tr.Slow {
			t.Fatalf("slow-only listing contains a fast trace: %+v", tr)
		}
	}
}

// TestMetricsEndpoint checks the -metrics-addr HTTP surface: /metrics serves
// the Prometheus text exposition of the server-wide snapshot and the pprof
// index responds.
func TestMetricsEndpoint(t *testing.T) {
	srv, err := server.New(server.Config{}, experiments.BuildIVMCrossfilterProgram())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.InsertRows("Sales", experiments.IVMSalesTuples(200, 7)); err != nil {
		t.Fatal(err)
	}
	ms, err := serveMetrics(srv, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ms.Close() })

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get("http://" + ms.Addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Fatalf("wrong exposition content type %q", ctype)
	}
	for _, want := range []string{
		"# TYPE dvms_event_seconds summary",
		"dvms_sessions 0",
		"dvms_sessions_attached_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
	if body, _ := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index looks wrong:\n%.200s", body)
	}
}
