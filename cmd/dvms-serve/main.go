// Command dvms-serve exposes a multi-client DVMS session server over TCP.
// Each connection drives one session: it owns its private selection state
// and framebuffer while sharing the base data, the selection-independent
// views, and the data-sized join build states with every other connected
// client. Closing the connection keeps the session resumable by its token;
// an explicit detach forgets it.
//
// With -data-dir set the server is durable: the shared engine's delta log
// and every session's resume journal persist in a write-ahead log, so a
// restart over the same directory recovers the base data, its version
// history, and every resumable session. -fsync picks the durability/latency
// trade-off (always, interval, never).
//
// The protocol is newline-delimited JSON, one request per line:
//
//	{"op":"event","type":"MOUSE_DOWN","t":0,"x":35,"y":40}
//	{"op":"event","type":"KEY_PRESS","t":9,"key":"z"}
//	{"op":"relation","name":"FILT_region"}
//	{"op":"query","q":"SELECT count(*) FROM Sales"}
//	{"op":"undo"}
//	{"op":"stats"}
//	{"op":"trace","slow":true}
//	{"op":"ping"}
//	{"op":"resume","token":"<token from an earlier ping>"}
//	{"op":"detach"}
//
// Responses are one JSON object per line: {"ok":true,...} or
// {"ok":false,"error":"..."}. SIGINT/SIGTERM shut down gracefully: the
// listener closes, every connection gets a shutdown error frame, the log
// seals, and the process exits 0.
//
// With -metrics-addr set, a second HTTP listener serves /metrics
// (Prometheus text exposition of the server-wide metrics snapshot) and
// /debug/pprof/ (the standard Go profiler endpoints). -latency-budget tunes
// the slow-event threshold; -no-obs disables instrumentation entirely (the
// ablation arm).
//
// Usage:
//
//	dvms-serve -addr :7077 -workload ivm -n 100000 -metrics-addr :7078
//	dvms-serve -addr :7077 -program crossfilter.devil -data-dir ./data -fsync interval
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/events"
	"repro/internal/experiments"
	"repro/internal/protocol"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/wal"
)

type options struct {
	addr        string
	program     string
	workloadID  string
	n           int
	seed        int64
	maxSessions int
	idle        time.Duration
	dataDir     string
	fsyncMode   string
	metricsAddr string
	budget      time.Duration
	noObs       bool
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":7077", "listen address")
	flag.StringVar(&o.program, "program", "", "DeVIL program file (overrides -workload)")
	flag.StringVar(&o.workloadID, "workload", "ivm", "builtin workload: ivm (join-based crossfilter)")
	flag.IntVar(&o.n, "n", 100000, "base rows for the builtin workload")
	flag.Int64Var(&o.seed, "seed", 7, "workload seed")
	flag.IntVar(&o.maxSessions, "max-sessions", 0, "session cap (0 = unlimited)")
	flag.DurationVar(&o.idle, "idle-timeout", 10*time.Minute, "idle session eviction age")
	flag.StringVar(&o.dataDir, "data-dir", "", "durable log directory (empty = in-memory only)")
	flag.StringVar(&o.fsyncMode, "fsync", "interval", "log fsync policy: always, interval, never")
	flag.StringVar(&o.metricsAddr, "metrics-addr", "", "HTTP listener for /metrics and /debug/pprof (empty = off)")
	flag.DurationVar(&o.budget, "latency-budget", 0, "slow-event latency budget (0 = default 100ms)")
	flag.BoolVar(&o.noObs, "no-obs", false, "disable latency observability (ablation arm)")
	flag.Parse()
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, nil)).With("prog", "dvms-serve"))
	if err := run(o); err != nil {
		slog.Error("fatal", "err", err)
		os.Exit(1)
	}
}

func run(o options) error {
	addr, programPath, workloadID := o.addr, o.program, o.workloadID
	n, seed, maxSessions, idle := o.n, o.seed, o.maxSessions, o.idle
	dataDir, fsyncMode := o.dataDir, o.fsyncMode
	var src string
	var load func(*server.Server) error
	switch {
	case programPath != "":
		b, err := os.ReadFile(programPath)
		if err != nil {
			return err
		}
		src = string(b)
		load = func(*server.Server) error { return nil }
	case workloadID == "ivm":
		src = experiments.BuildIVMCrossfilterProgram()
		load = func(s *server.Server) error {
			return s.InsertRows("Sales", experiments.IVMSalesTuples(n, seed))
		}
	default:
		return fmt.Errorf("unknown workload %q", workloadID)
	}
	cfg := server.Config{MaxSessions: maxSessions, IdleTimeout: idle}
	cfg.Engine.DisableObs = o.noObs
	cfg.Engine.LatencyBudget = o.budget
	var srv *server.Server
	if dataDir != "" {
		policy, err := wal.ParsePolicy(fsyncMode)
		if err != nil {
			return err
		}
		var rep wal.Report
		srv, rep, err = server.NewDurable(cfg, src, wal.Options{Dir: dataDir, Policy: policy})
		if err != nil {
			return err
		}
		if rep.Records > 0 || rep.CheckpointCommits > 0 {
			// Recovered state already includes the workload load; loading
			// again would double the base rows.
			slog.Info("recovered durable state", "dir", dataDir, "clean", rep.Clean(), "report", rep.String())
		} else {
			if err := load(srv); err != nil {
				return err
			}
		}
	} else {
		var err error
		srv, err = server.New(cfg, src)
		if err != nil {
			return err
		}
		if err := load(srv); err != nil {
			return err
		}
	}
	srv.SetLogger(slog.Default())
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	slog.Info("listening", "addr", ln.Addr().String(),
		"relations", len(srv.Base().Store().Names()), "durable", dataDir != "", "obs", !o.noObs)
	var metrics *http.Server
	if o.metricsAddr != "" {
		metrics, err = serveMetrics(srv, o.metricsAddr)
		if err != nil {
			return err
		}
	}
	if idle > 0 {
		go func() {
			for range time.Tick(idle / 2) {
				srv.EvictIdle(idle) // evictions log per session via the server's logger
			}
		}()
	}

	var (
		connMu       sync.Mutex
		conns        = map[net.Conn]bool{}
		wg           sync.WaitGroup
		shuttingDown atomic.Bool
	)
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		slog.Info("shutting down", "signal", sig.String())
		shuttingDown.Store(true)
		ln.Close()
		if metrics != nil {
			metrics.Close()
		}
		connMu.Lock()
		for c := range conns {
			protocol.WriteResponse(c, protocol.Response{Error: "server shutting down"})
			c.Close()
		}
		connMu.Unlock()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if shuttingDown.Load() {
				break
			}
			return err
		}
		connMu.Lock()
		conns[conn] = true
		connMu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			serveConn(srv, conn)
			connMu.Lock()
			delete(conns, conn)
			connMu.Unlock()
		}()
	}
	wg.Wait()
	if err := srv.Shutdown(); err != nil {
		return fmt.Errorf("seal log: %w", err)
	}
	slog.Info("shutdown complete")
	return nil
}

// serveMetrics starts the observability HTTP listener: /metrics renders the
// server-wide snapshot in the Prometheus text exposition format, and
// /debug/pprof/ exposes the standard Go profiler endpoints (a custom mux, so
// nothing else leaks onto the default one).
func serveMetrics(srv *server.Server, addr string) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := srv.ObsSnapshot().WritePrometheus(w); err != nil {
			slog.Warn("metrics write failed", "err", err)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	hs := &http.Server{Addr: ln.Addr().String(), Handler: mux}
	slog.Info("metrics listening", "addr", hs.Addr)
	go func() {
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			slog.Warn("metrics server stopped", "err", err)
		}
	}()
	return hs, nil
}

func serveConn(srv *server.Server, conn net.Conn) {
	defer conn.Close()
	sess, err := srv.Attach()
	if err != nil {
		protocol.WriteResponse(conn, protocol.Response{Error: err.Error()})
		return
	}
	// No detach on connection close: the session stays resumable by its
	// token (idle eviction reclaims its memory; the journal keeps it
	// resumable). An explicit {"op":"detach"} forgets it.
	slog.Info("connection open", "session", sess.ID(), "remote", conn.RemoteAddr().String())
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		resp, next := handle(srv, sess, line)
		if next != nil {
			sess = next
		}
		if err := protocol.WriteResponse(conn, resp); err != nil {
			break
		}
	}
	if errors.Is(sc.Err(), bufio.ErrTooLong) {
		// The scanner is dead at this point (a request exceeded the 4MB
		// line budget); tell the client why instead of silently hanging up.
		protocol.WriteResponse(conn, protocol.Response{Error: "line too long"})
	}
	slog.Info("connection closed", "session", sess.ID())
}

// handle serves one request line. The second return value is non-nil when
// the request swapped the connection's session (resume).
func handle(srv *server.Server, sess *server.Session, line []byte) (protocol.Response, *server.Session) {
	req, err := protocol.ParseRequest(line)
	if err != nil {
		return protocol.Response{Error: err.Error()}, nil
	}
	switch req.Op {
	case "ping":
		return protocol.Response{OK: true, Session: sess.ID(), Token: sess.Token()}, nil
	case "resume":
		next, err := srv.Resume(req.Token)
		if err != nil {
			return protocol.Response{Error: err.Error()}, nil
		}
		if next != sess {
			// Drop the session this connection was using (usually the
			// auto-attached fresh one); the client asked for its old state.
			sess.Detach()
		}
		return protocol.Response{OK: true, Session: next.ID(), Token: next.Token()}, next
	case "detach":
		sess.Detach()
		return protocol.Response{OK: true, Session: sess.ID()}, nil
	case "event":
		var ev events.Event
		if req.Type == events.KeyPress {
			ev = events.Key(req.T, req.Key)
		} else {
			ev = events.Mouse(req.Type, req.T, req.X, req.Y)
		}
		te, err := sess.Feed(ev)
		if err != nil {
			return protocol.Response{Error: err.Error()}, nil
		}
		return protocol.Response{
			OK: true, Session: sess.ID(),
			Interaction: te.Interaction, Began: te.Began,
			Committed: te.Committed, Aborted: te.Aborted,
			RowsEmitted: te.RowsEmitted, Version: te.Version,
		}, nil
	case "relation":
		rel, err := sess.Relation(req.Name)
		if err != nil {
			return protocol.Response{Error: err.Error()}, nil
		}
		return relationResponse(sess.ID(), rel), nil
	case "query":
		rel, err := sess.Query(req.Q)
		if err != nil {
			return protocol.Response{Error: err.Error()}, nil
		}
		return relationResponse(sess.ID(), rel), nil
	case "undo":
		if err := sess.Undo(); err != nil {
			return protocol.Response{Error: err.Error()}, nil
		}
		return protocol.Response{OK: true, Session: sess.ID()}, nil
	case "stats":
		st, err := sess.Stats()
		if err != nil {
			return protocol.Response{Error: err.Error()}, nil
		}
		server := srv.Stats()
		resp := protocol.Response{OK: true, Session: sess.ID(), Stats: &st, Server: &server}
		if o, err := sess.Obs(); err == nil {
			resp.Obs = &o
		}
		so := srv.ObsSnapshot()
		resp.ServerObs = &so
		return resp, nil
	case "trace":
		trs, err := sess.Traces(req.Slow)
		if err != nil {
			return protocol.Response{Error: err.Error()}, nil
		}
		return protocol.Response{OK: true, Session: sess.ID(), Traces: trs}, nil
	default:
		return protocol.Response{Error: fmt.Sprintf("unknown op %q", req.Op)}, nil
	}
}

func relationResponse(id int, rel *relation.Relation) protocol.Response {
	resp := protocol.Response{OK: true, Session: id, Columns: rel.Schema.Names()}
	resp.Rows = make([][]any, len(rel.Rows))
	for i, row := range rel.Rows {
		resp.Rows[i] = protocol.EncodeRow(row)
	}
	return resp
}
