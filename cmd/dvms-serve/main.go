// Command dvms-serve exposes a multi-client DVMS session server over TCP.
// Each connection is one session: it owns its private selection state and
// framebuffer while sharing the base data, the selection-independent views,
// and the data-sized join build states with every other connected client.
//
// The protocol is newline-delimited JSON, one request per line:
//
//	{"op":"event","type":"MOUSE_DOWN","t":0,"x":35,"y":40}
//	{"op":"event","type":"KEY_PRESS","t":9,"key":"z"}
//	{"op":"relation","name":"FILT_region"}
//	{"op":"query","q":"SELECT count(*) FROM Sales"}
//	{"op":"undo"}
//	{"op":"stats"}
//	{"op":"ping"}
//
// Responses are one JSON object per line: {"ok":true,...} or
// {"ok":false,"error":"..."}.
//
// Usage:
//
//	dvms-serve -addr :7077 -workload ivm -n 100000
//	dvms-serve -addr :7077 -program crossfilter.devil
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"repro/internal/events"
	"repro/internal/experiments"
	"repro/internal/protocol"
	"repro/internal/relation"
	"repro/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":7077", "listen address")
		program     = flag.String("program", "", "DeVIL program file (overrides -workload)")
		workloadID  = flag.String("workload", "ivm", "builtin workload: ivm (join-based crossfilter)")
		n           = flag.Int("n", 100000, "base rows for the builtin workload")
		seed        = flag.Int64("seed", 7, "workload seed")
		maxSessions = flag.Int("max-sessions", 0, "session cap (0 = unlimited)")
		idle        = flag.Duration("idle-timeout", 10*time.Minute, "idle session eviction age")
	)
	flag.Parse()
	if err := run(*addr, *program, *workloadID, *n, *seed, *maxSessions, *idle); err != nil {
		fmt.Fprintln(os.Stderr, "dvms-serve:", err)
		os.Exit(1)
	}
}

func run(addr, programPath, workloadID string, n int, seed int64, maxSessions int, idle time.Duration) error {
	var src string
	var load func(*server.Server) error
	switch {
	case programPath != "":
		b, err := os.ReadFile(programPath)
		if err != nil {
			return err
		}
		src = string(b)
		load = func(*server.Server) error { return nil }
	case workloadID == "ivm":
		src = experiments.BuildIVMCrossfilterProgram()
		load = func(s *server.Server) error {
			return s.InsertRows("Sales", experiments.IVMSalesTuples(n, seed))
		}
	default:
		return fmt.Errorf("unknown workload %q", workloadID)
	}
	srv, err := server.New(server.Config{MaxSessions: maxSessions, IdleTimeout: idle}, src)
	if err != nil {
		return err
	}
	if err := load(srv); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("dvms-serve: listening on %s (%d base relations loaded)", ln.Addr(), len(srv.Base().Store().Names()))
	if idle > 0 {
		go func() {
			for range time.Tick(idle / 2) {
				if evicted := srv.EvictIdle(idle); evicted > 0 {
					log.Printf("dvms-serve: evicted %d idle sessions", evicted)
				}
			}
		}()
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go serveConn(srv, conn)
	}
}

func serveConn(srv *server.Server, conn net.Conn) {
	defer conn.Close()
	sess, err := srv.Attach()
	if err != nil {
		protocol.WriteResponse(conn, protocol.Response{Error: err.Error()})
		return
	}
	defer sess.Detach()
	log.Printf("dvms-serve: session %d attached (%s)", sess.ID(), conn.RemoteAddr())
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		resp := handle(srv, sess, line)
		if err := protocol.WriteResponse(conn, resp); err != nil {
			break
		}
	}
	log.Printf("dvms-serve: session %d detached", sess.ID())
}

func handle(srv *server.Server, sess *server.Session, line []byte) protocol.Response {
	req, err := protocol.ParseRequest(line)
	if err != nil {
		return protocol.Response{Error: err.Error()}
	}
	switch req.Op {
	case "ping":
		return protocol.Response{OK: true, Session: sess.ID()}
	case "event":
		var ev events.Event
		if req.Type == events.KeyPress {
			ev = events.Key(req.T, req.Key)
		} else {
			ev = events.Mouse(req.Type, req.T, req.X, req.Y)
		}
		te, err := sess.Feed(ev)
		if err != nil {
			return protocol.Response{Error: err.Error()}
		}
		return protocol.Response{
			OK: true, Session: sess.ID(),
			Interaction: te.Interaction, Began: te.Began,
			Committed: te.Committed, Aborted: te.Aborted,
			RowsEmitted: te.RowsEmitted, Version: te.Version,
		}
	case "relation":
		rel, err := sess.Relation(req.Name)
		if err != nil {
			return protocol.Response{Error: err.Error()}
		}
		return relationResponse(sess.ID(), rel)
	case "query":
		rel, err := sess.Query(req.Q)
		if err != nil {
			return protocol.Response{Error: err.Error()}
		}
		return relationResponse(sess.ID(), rel)
	case "undo":
		if err := sess.Undo(); err != nil {
			return protocol.Response{Error: err.Error()}
		}
		return protocol.Response{OK: true, Session: sess.ID()}
	case "stats":
		st, err := sess.Stats()
		if err != nil {
			return protocol.Response{Error: err.Error()}
		}
		server := srv.Stats()
		return protocol.Response{OK: true, Session: sess.ID(), Stats: &st, Server: &server}
	default:
		return protocol.Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

func relationResponse(id int, rel *relation.Relation) protocol.Response {
	resp := protocol.Response{OK: true, Session: id, Columns: rel.Schema.Names()}
	resp.Rows = make([][]any, len(rel.Rows))
	for i, row := range rel.Rows {
		resp.Rows[i] = protocol.EncodeRow(row)
	}
	return resp
}
