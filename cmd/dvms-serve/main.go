// Command dvms-serve exposes a multi-client DVMS session server over TCP.
// Each connection drives one session: it owns its private selection state
// and framebuffer while sharing the base data, the selection-independent
// views, and the data-sized join build states with every other connected
// client. Closing the connection keeps the session resumable by its token;
// an explicit detach forgets it.
//
// With -data-dir set the server is durable: the shared engine's delta log
// and every session's resume journal persist in a write-ahead log, so a
// restart over the same directory recovers the base data, its version
// history, and every resumable session. -fsync picks the durability/latency
// trade-off (always, interval, never).
//
// The protocol is newline-delimited JSON, one request per line:
//
//	{"op":"event","type":"MOUSE_DOWN","t":0,"x":35,"y":40}
//	{"op":"event","type":"KEY_PRESS","t":9,"key":"z"}
//	{"op":"relation","name":"FILT_region"}
//	{"op":"query","q":"SELECT count(*) FROM Sales"}
//	{"op":"undo"}
//	{"op":"stats"}
//	{"op":"ping"}
//	{"op":"resume","token":"<token from an earlier ping>"}
//	{"op":"detach"}
//
// Responses are one JSON object per line: {"ok":true,...} or
// {"ok":false,"error":"..."}. SIGINT/SIGTERM shut down gracefully: the
// listener closes, every connection gets a shutdown error frame, the log
// seals, and the process exits 0.
//
// Usage:
//
//	dvms-serve -addr :7077 -workload ivm -n 100000
//	dvms-serve -addr :7077 -program crossfilter.devil -data-dir ./data -fsync interval
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/events"
	"repro/internal/experiments"
	"repro/internal/protocol"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/wal"
)

func main() {
	var (
		addr        = flag.String("addr", ":7077", "listen address")
		program     = flag.String("program", "", "DeVIL program file (overrides -workload)")
		workloadID  = flag.String("workload", "ivm", "builtin workload: ivm (join-based crossfilter)")
		n           = flag.Int("n", 100000, "base rows for the builtin workload")
		seed        = flag.Int64("seed", 7, "workload seed")
		maxSessions = flag.Int("max-sessions", 0, "session cap (0 = unlimited)")
		idle        = flag.Duration("idle-timeout", 10*time.Minute, "idle session eviction age")
		dataDir     = flag.String("data-dir", "", "durable log directory (empty = in-memory only)")
		fsyncMode   = flag.String("fsync", "interval", "log fsync policy: always, interval, never")
	)
	flag.Parse()
	if err := run(*addr, *program, *workloadID, *n, *seed, *maxSessions, *idle, *dataDir, *fsyncMode); err != nil {
		fmt.Fprintln(os.Stderr, "dvms-serve:", err)
		os.Exit(1)
	}
}

func run(addr, programPath, workloadID string, n int, seed int64, maxSessions int, idle time.Duration, dataDir, fsyncMode string) error {
	var src string
	var load func(*server.Server) error
	switch {
	case programPath != "":
		b, err := os.ReadFile(programPath)
		if err != nil {
			return err
		}
		src = string(b)
		load = func(*server.Server) error { return nil }
	case workloadID == "ivm":
		src = experiments.BuildIVMCrossfilterProgram()
		load = func(s *server.Server) error {
			return s.InsertRows("Sales", experiments.IVMSalesTuples(n, seed))
		}
	default:
		return fmt.Errorf("unknown workload %q", workloadID)
	}
	cfg := server.Config{MaxSessions: maxSessions, IdleTimeout: idle}
	var srv *server.Server
	if dataDir != "" {
		policy, err := wal.ParsePolicy(fsyncMode)
		if err != nil {
			return err
		}
		var rep wal.Report
		srv, rep, err = server.NewDurable(cfg, src, wal.Options{Dir: dataDir, Policy: policy})
		if err != nil {
			return err
		}
		if rep.Records > 0 || rep.CheckpointCommits > 0 {
			// Recovered state already includes the workload load; loading
			// again would double the base rows.
			log.Printf("dvms-serve: recovered from %s: %s", dataDir, rep)
		} else {
			if err := load(srv); err != nil {
				return err
			}
		}
	} else {
		var err error
		srv, err = server.New(cfg, src)
		if err != nil {
			return err
		}
		if err := load(srv); err != nil {
			return err
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("dvms-serve: listening on %s (%d base relations loaded)", ln.Addr(), len(srv.Base().Store().Names()))
	if idle > 0 {
		go func() {
			for range time.Tick(idle / 2) {
				if evicted := srv.EvictIdle(idle); evicted > 0 {
					log.Printf("dvms-serve: evicted %d idle sessions", evicted)
				}
			}
		}()
	}

	var (
		connMu       sync.Mutex
		conns        = map[net.Conn]bool{}
		wg           sync.WaitGroup
		shuttingDown atomic.Bool
	)
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		log.Printf("dvms-serve: %s: shutting down", sig)
		shuttingDown.Store(true)
		ln.Close()
		connMu.Lock()
		for c := range conns {
			protocol.WriteResponse(c, protocol.Response{Error: "server shutting down"})
			c.Close()
		}
		connMu.Unlock()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if shuttingDown.Load() {
				break
			}
			return err
		}
		connMu.Lock()
		conns[conn] = true
		connMu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			serveConn(srv, conn)
			connMu.Lock()
			delete(conns, conn)
			connMu.Unlock()
		}()
	}
	wg.Wait()
	if err := srv.Shutdown(); err != nil {
		return fmt.Errorf("seal log: %w", err)
	}
	log.Printf("dvms-serve: shutdown complete")
	return nil
}

func serveConn(srv *server.Server, conn net.Conn) {
	defer conn.Close()
	sess, err := srv.Attach()
	if err != nil {
		protocol.WriteResponse(conn, protocol.Response{Error: err.Error()})
		return
	}
	// No detach on connection close: the session stays resumable by its
	// token (idle eviction reclaims its memory; the journal keeps it
	// resumable). An explicit {"op":"detach"} forgets it.
	log.Printf("dvms-serve: session %d attached (%s)", sess.ID(), conn.RemoteAddr())
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		resp, next := handle(srv, sess, line)
		if next != nil {
			sess = next
		}
		if err := protocol.WriteResponse(conn, resp); err != nil {
			break
		}
	}
	if errors.Is(sc.Err(), bufio.ErrTooLong) {
		// The scanner is dead at this point (a request exceeded the 4MB
		// line budget); tell the client why instead of silently hanging up.
		protocol.WriteResponse(conn, protocol.Response{Error: "line too long"})
	}
	log.Printf("dvms-serve: session %d connection closed", sess.ID())
}

// handle serves one request line. The second return value is non-nil when
// the request swapped the connection's session (resume).
func handle(srv *server.Server, sess *server.Session, line []byte) (protocol.Response, *server.Session) {
	req, err := protocol.ParseRequest(line)
	if err != nil {
		return protocol.Response{Error: err.Error()}, nil
	}
	switch req.Op {
	case "ping":
		return protocol.Response{OK: true, Session: sess.ID(), Token: sess.Token()}, nil
	case "resume":
		next, err := srv.Resume(req.Token)
		if err != nil {
			return protocol.Response{Error: err.Error()}, nil
		}
		if next != sess {
			// Drop the session this connection was using (usually the
			// auto-attached fresh one); the client asked for its old state.
			sess.Detach()
		}
		return protocol.Response{OK: true, Session: next.ID(), Token: next.Token()}, next
	case "detach":
		sess.Detach()
		return protocol.Response{OK: true, Session: sess.ID()}, nil
	case "event":
		var ev events.Event
		if req.Type == events.KeyPress {
			ev = events.Key(req.T, req.Key)
		} else {
			ev = events.Mouse(req.Type, req.T, req.X, req.Y)
		}
		te, err := sess.Feed(ev)
		if err != nil {
			return protocol.Response{Error: err.Error()}, nil
		}
		return protocol.Response{
			OK: true, Session: sess.ID(),
			Interaction: te.Interaction, Began: te.Began,
			Committed: te.Committed, Aborted: te.Aborted,
			RowsEmitted: te.RowsEmitted, Version: te.Version,
		}, nil
	case "relation":
		rel, err := sess.Relation(req.Name)
		if err != nil {
			return protocol.Response{Error: err.Error()}, nil
		}
		return relationResponse(sess.ID(), rel), nil
	case "query":
		rel, err := sess.Query(req.Q)
		if err != nil {
			return protocol.Response{Error: err.Error()}, nil
		}
		return relationResponse(sess.ID(), rel), nil
	case "undo":
		if err := sess.Undo(); err != nil {
			return protocol.Response{Error: err.Error()}, nil
		}
		return protocol.Response{OK: true, Session: sess.ID()}, nil
	case "stats":
		st, err := sess.Stats()
		if err != nil {
			return protocol.Response{Error: err.Error()}, nil
		}
		server := srv.Stats()
		return protocol.Response{OK: true, Session: sess.ID(), Stats: &st, Server: &server}, nil
	default:
		return protocol.Response{Error: fmt.Sprintf("unknown op %q", req.Op)}, nil
	}
}

func relationResponse(id int, rel *relation.Relation) protocol.Response {
	resp := protocol.Response{OK: true, Session: id, Columns: rel.Schema.Names()}
	resp.Rows = make([][]any, len(rel.Rows))
	for i, row := range rel.Rows {
		resp.Rows[i] = protocol.EncodeRow(row)
	}
	return resp
}
