// Command devil runs a DeVIL program against an optional scripted event
// stream and dumps relations and/or rendered output — a batch REPL for the
// DVMS engine.
//
// Usage:
//
//	devil -program viz.devil -events drag.txt -dump selected,SPLOT_POINTS -ascii
//	devil -program viz.devil -png out.png
//
// The events file holds one event per line:
//
//	down <t> <x> <y>
//	move <t> <x> <y>
//	up   <t> <x> <y>
//	hover <t> <x> <y>
//	key  <t> <key>
//
// Lines starting with '#' are comments.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	dvms "repro"
)

func main() {
	var (
		programPath = flag.String("program", "", "DeVIL program file (default: stdin)")
		eventsPath  = flag.String("events", "", "scripted event stream file")
		dump        = flag.String("dump", "", "comma-separated relations to print after the run")
		pngPath     = flag.String("png", "", "write the framebuffer to this PNG file")
		ascii       = flag.Bool("ascii", false, "print an ASCII rendering of the framebuffer")
		query       = flag.String("query", "", "ad-hoc DeVIL query to run after the events")
	)
	flag.Parse()

	if err := run(*programPath, *eventsPath, *dump, *pngPath, *ascii, *query); err != nil {
		fmt.Fprintln(os.Stderr, "devil:", err)
		os.Exit(1)
	}
}

func run(programPath, eventsPath, dump, pngPath string, ascii bool, query string) error {
	var program []byte
	var err error
	if programPath == "" {
		program, err = io.ReadAll(os.Stdin)
	} else {
		program, err = os.ReadFile(programPath)
	}
	if err != nil {
		return err
	}

	sys := dvms.New()
	if err := sys.Load(string(program)); err != nil {
		return fmt.Errorf("load program: %w", err)
	}
	for _, w := range sys.Warnings() {
		fmt.Fprintln(os.Stderr, "warning:", w)
	}

	if eventsPath != "" {
		stream, err := readEvents(eventsPath)
		if err != nil {
			return err
		}
		txns, err := sys.FeedStream(stream)
		if err != nil {
			return fmt.Errorf("feed events: %w", err)
		}
		commits, aborts := 0, 0
		for _, te := range txns {
			if te.Committed {
				commits++
			}
			if te.Aborted {
				aborts++
			}
		}
		fmt.Printf("fed %d events: %d interactions committed, %d aborted\n",
			len(stream), commits, aborts)
	}

	if dump != "" {
		for _, name := range strings.Split(dump, ",") {
			name = strings.TrimSpace(name)
			rel, err := sys.Relation(name)
			if err != nil {
				return err
			}
			fmt.Printf("-- %s (%d rows) --\n%s\n", name, rel.Len(), rel)
		}
	}
	if query != "" {
		rel, err := sys.Query(query)
		if err != nil {
			return err
		}
		fmt.Printf("-- query --\n%s\n", rel)
	}
	if pngPath != "" {
		if err := sys.SavePNG(pngPath); err != nil {
			return err
		}
		fmt.Println("wrote", pngPath)
	}
	if ascii {
		fmt.Print(sys.ASCII(8, 12))
	}
	return nil
}

func readEvents(path string) (dvms.Stream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var stream dvms.Stream
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		bad := func() error {
			return fmt.Errorf("%s:%d: malformed event line %q", path, lineNo, line)
		}
		if len(fields) < 3 {
			return nil, bad()
		}
		t, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, bad()
		}
		switch strings.ToLower(fields[0]) {
		case "down", "move", "up", "hover":
			if len(fields) != 4 {
				return nil, bad()
			}
			x, err1 := strconv.ParseInt(fields[2], 10, 64)
			y, err2 := strconv.ParseInt(fields[3], 10, 64)
			if err1 != nil || err2 != nil {
				return nil, bad()
			}
			switch strings.ToLower(fields[0]) {
			case "down":
				stream = append(stream, dvms.MouseDown(t, x, y))
			case "move":
				stream = append(stream, dvms.MouseMove(t, x, y))
			case "up":
				stream = append(stream, dvms.MouseUp(t, x, y))
			case "hover":
				stream = append(stream, dvms.Hover(t, x, y))
			}
		case "key":
			stream = append(stream, dvms.KeyPress(t, fields[2]))
		default:
			return nil, bad()
		}
	}
	return stream, sc.Err()
}
