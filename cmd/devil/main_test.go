package main

import (
	"os"
	"path/filepath"
	"testing"
)

const testProgram = `
CREATE TABLE Pts (id int, x float, y float);
INSERT INTO Pts VALUES (1, 60, 60), (2, 140, 100);
MARKS = SELECT 5 AS radius, 'red' AS fill, x AS center_x, y AS center_y, id FROM Pts;
C = EVENT MOUSE_DOWN AS D, MOUSE_UP AS U RETURN (D.t, D.x, D.y);
hit = SELECT MK.id FROM C, MARKS@vnow-1 AS MK
      WHERE in_rectangle(MK.center_x, MK.center_y, C.x - 20, C.y - 20, C.x + 20, C.y + 20);
P = render(SELECT * FROM MARKS);
`

const testEvents = `
# click near point 2
down 0 145 105
up 1 145 105
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadEvents(t *testing.T) {
	path := writeTemp(t, "events.txt", testEvents+"\nmove 2 1 1\nhover 3 2 2\nkey 4 a\n")
	stream, err := readEvents(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(stream) != 5 {
		t.Fatalf("events = %d", len(stream))
	}
	if stream[0].Type != "MOUSE_DOWN" || stream[0].T != 0 {
		t.Fatalf("first event = %+v", stream[0])
	}
	if stream[4].Type != "KEY_PRESS" {
		t.Fatalf("key event = %+v", stream[4])
	}
}

func TestReadEventsErrors(t *testing.T) {
	bad := []string{
		"down 0 1",   // missing y
		"zoom 0 1 2", // unknown verb
		"down x 1 2", // bad timestamp
		"down 0 a 2", // bad coordinate
	}
	for _, line := range bad {
		path := writeTemp(t, "bad.txt", line)
		if _, err := readEvents(path); err == nil {
			t.Errorf("expected error for %q", line)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	prog := writeTemp(t, "viz.devil", testProgram)
	events := writeTemp(t, "events.txt", testEvents)
	png := filepath.Join(t.TempDir(), "out.png")
	if err := run(prog, events, "hit", png, false, "SELECT count(*) AS n FROM Pts"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(png)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 100 {
		t.Fatalf("png = %d bytes", len(data))
	}
}

func TestRunBadProgram(t *testing.T) {
	prog := writeTemp(t, "bad.devil", "SELECT FROM nothing")
	if err := run(prog, "", "", "", false, ""); err == nil {
		t.Fatal("bad program should error")
	}
}

func TestRunMissingRelation(t *testing.T) {
	prog := writeTemp(t, "viz.devil", testProgram)
	if err := run(prog, "", "nonexistent", "", false, ""); err == nil {
		t.Fatal("dumping a missing relation should error")
	}
}
