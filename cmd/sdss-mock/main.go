// Command sdss-mock generates an SDSS SkyServer-style query log, mines its
// transformation graph with the Precision Interfaces rule set (§3.4), and
// synthesizes candidate interfaces (Figures 6 and 7).
//
// Usage:
//
//	sdss-mock -n 125600 -sample 5 -maxvis 6,20
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/precision"
	"repro/internal/workload"
)

func main() {
	var (
		n      = flag.Int("n", workload.SDSSLogSize, "log size (paper sample: 125600)")
		seed   = flag.Int64("seed", 7, "generator seed")
		sample = flag.Int("sample", 5, "print this many sample queries")
		maxvis = flag.String("maxvis", "6,20", "comma-separated visual-complexity budgets to synthesize")
	)
	flag.Parse()
	if err := run(*n, *seed, *sample, *maxvis); err != nil {
		fmt.Fprintln(os.Stderr, "sdss-mock:", err)
		os.Exit(1)
	}
}

func run(n int, seed int64, sample int, maxvis string) error {
	log := workload.SDSSLog(n, seed)
	fmt.Printf("generated %d queries\n\nsample:\n", len(log))
	for i := 0; i < sample && i < len(log); i++ {
		fmt.Printf("  [%s] %s\n", log[i].Template, log[i].SQL)
	}
	total, byTemplate := workload.TemplateCoverage(log)
	fmt.Printf("\ntemplate coverage: %.2f%% over %d templates (paper: >99.1%% over 6)\n",
		total*100, len(byTemplate))
	for name, share := range byTemplate {
		fmt.Printf("  %-16s %5.1f%%\n", name, share*100)
	}

	g, err := precision.BuildGraphFromSessions(experiments.SessionsOf(log), precision.SDSSRules())
	if err != nil {
		return err
	}
	fmt.Println("\n" + g.Format())

	for _, part := range strings.Split(maxvis, ",") {
		budget, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return fmt.Errorf("bad -maxvis value %q", part)
		}
		ifc := precision.Synthesize(g, precision.SynthesisParams{MaxVis: budget, Penalty: 10})
		fmt.Printf("synthesized interface (max_vis=%g):\n%s\n", budget,
			ifc.Mockup(fmt.Sprintf("SkyServer — max_vis %g", budget)))
	}
	return nil
}
