package main

import "testing"

func TestRunSmall(t *testing.T) {
	if err := run(2000, 1, 3, "6,20"); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadBudget(t *testing.T) {
	if err := run(500, 1, 0, "abc"); err == nil {
		t.Fatal("bad -maxvis should error")
	}
}
