package dvms_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	dvms "repro"
)

const quickProgram = `
CREATE TABLE Pts (id int, x float, y float);
INSERT INTO Pts VALUES (1, 50, 50), (2, 150, 100), (3, 250, 200);

MARKS = SELECT 6 AS radius, 'steelblue' AS fill, x AS center_x, y AS center_y, id
        FROM Pts;

C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M*, MOUSE_UP AS U
    RETURN (D.t, D.x, D.y, 0 AS dx, 0 AS dy),
           (M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy);

picked = SELECT DISTINCT MK.id
  FROM C, MARKS@vnow-1 AS MK
  WHERE in_rectangle(MK.center_x, MK.center_y,
        (SELECT min(x) FROM C), (SELECT min(y) FROM C),
        (SELECT max(x + dx) FROM C), (SELECT max(y + dy) FROM C));

P = render(SELECT * FROM MARKS);
`

func TestFacadeEndToEnd(t *testing.T) {
	sys := dvms.New()
	if err := sys.Load(quickProgram); err != nil {
		t.Fatal(err)
	}
	marks, err := sys.Relation("MARKS")
	if err != nil {
		t.Fatal(err)
	}
	if marks.Len() != 3 {
		t.Fatalf("marks = %d", marks.Len())
	}
	// select the first two points with a drag
	te, err := sys.Feed(
		dvms.MouseDown(0, 40, 40),
		dvms.MouseMove(1, 100, 80),
		dvms.MouseMove(2, 160, 110),
		dvms.MouseUp(3, 160, 110),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !te.Committed {
		t.Fatalf("final event should commit: %+v", te)
	}
	picked, err := sys.Relation("picked")
	if err != nil {
		t.Fatal(err)
	}
	if picked.Len() != 2 {
		t.Fatalf("picked = %d rows, want 2\n%s", picked.Len(), picked)
	}
	if sys.InTxn() {
		t.Fatal("no txn should be in flight")
	}
}

func TestFacadeQueryAndPixels(t *testing.T) {
	sys := dvms.New(dvms.Config{Width: 320, Height: 240})
	if err := sys.Load(quickProgram); err != nil {
		t.Fatal(err)
	}
	n, err := sys.Query("SELECT count(*) AS n FROM Pts WHERE x > 100")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := n.Rows[0][0].AsInt(); v != 2 {
		t.Fatalf("query = %v", n.Rows[0][0])
	}
	px := sys.Pixels(true)
	if px.Len() == 0 {
		t.Fatal("pixels should be rendered")
	}
	if img := sys.Image(); img.W != 320 || img.H != 240 {
		t.Fatalf("image dims = %dx%d", img.W, img.H)
	}
	ascii := sys.ASCII(8, 12)
	if !strings.Contains(ascii, "\n") {
		t.Fatal("ascii render empty")
	}
}

func TestFacadeSavePNG(t *testing.T) {
	sys := dvms.New()
	if err := sys.Load(quickProgram); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.png")
	if err := sys.SavePNG(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 100 || string(data[1:4]) != "PNG" {
		t.Fatalf("png file = %d bytes", len(data))
	}
}

func TestFacadeUndoAndVersions(t *testing.T) {
	sys := dvms.New()
	if err := sys.Load(quickProgram); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.FeedStream(dvms.Drag(0, 40, 40, 160, 110, 3)); err != nil {
		t.Fatal(err)
	}
	picked, _ := sys.Relation("picked")
	if picked.Len() == 0 {
		t.Fatal("selection missing")
	}
	old, err := sys.RelationAt("picked", dvms.VNow(2))
	if err != nil {
		t.Fatal(err)
	}
	if old.Len() != 0 {
		t.Fatalf("pre-interaction picked = %d", old.Len())
	}
	if err := sys.Undo(); err != nil {
		t.Fatal(err)
	}
	picked, _ = sys.Relation("picked")
	if picked.Len() != 0 {
		t.Fatalf("post-undo picked = %d", picked.Len())
	}
}

func TestFacadeRegisterFunc(t *testing.T) {
	sys := dvms.New()
	sys.RegisterFunc(dvms.Func{
		Name: "double", MinArgs: 1, MaxArgs: 1,
		Fn: func(args []dvms.Value) (dvms.Value, error) {
			f, _ := args[0].AsFloat()
			return dvms.Float(f * 2), nil
		},
	})
	if err := sys.Load(`
CREATE TABLE T (v float);
INSERT INTO T VALUES (21);
D = SELECT double(v) AS d FROM T;
`); err != nil {
		t.Fatal(err)
	}
	d, err := sys.Relation("D")
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := d.Rows[0][0].AsFloat(); f != 42 {
		t.Fatalf("double(21) = %v", d.Rows[0][0])
	}
}

func TestFacadeProvenanceAPI(t *testing.T) {
	sys := dvms.New()
	if err := sys.Load(quickProgram); err != nil {
		t.Fatal(err)
	}
	// Deconstruction recovers the Pts row behind each mark.
	data, err := sys.Deconstruct("MARKS", "Pts")
	if err != nil {
		t.Fatal(err)
	}
	if data.Len() != 3 {
		t.Fatalf("deconstructed rows = %d", data.Len())
	}
	lin, err := sys.Lineage("MARKS", []int{0, 1, 2}, "Pts")
	if err != nil {
		t.Fatal(err)
	}
	if len(lin) != 3 || len(lin[0]) != 1 {
		t.Fatalf("lineage = %v", lin)
	}
	plan, err := sys.ExplainView("picked")
	if err != nil || !strings.Contains(plan, "Scan") {
		t.Fatalf("explain = %q, %v", plan, err)
	}
	report := sys.DebugReport()
	if !strings.Contains(report, "MARKS") || !strings.Contains(report, "evaluation order") {
		t.Fatalf("report:\n%s", report)
	}
}

func TestFacadeWarningsAndViews(t *testing.T) {
	sys := dvms.New()
	if err := sys.Load(quickProgram + `
C2 = EVENT MOUSE_DOWN AS D2, MOUSE_UP AS U2 RETURN (D2.t);
`); err != nil {
		t.Fatal(err)
	}
	if len(sys.Warnings()) == 0 {
		t.Fatal("overlapping interactions should warn")
	}
	views := sys.Views()
	if len(views) < 3 {
		t.Fatalf("views = %v", views)
	}
	if sys.Stats().RenderPasses == 0 {
		t.Fatal("render passes not counted")
	}
}
