package workload

import (
	"math"
	"math/rand"
)

// MousePoint is one sample of a pointer trajectory.
type MousePoint struct {
	T    int64 // milliseconds
	X, Y float64
}

// MouseTrace is a sampled pointer trajectory toward a target widget.
type MouseTrace struct {
	Points []MousePoint
	// Target is the index of the widget the user ends on (ground truth for
	// the §3.3 intent model evaluation).
	Target int
}

// Widget is a rectangular interaction region on screen.
type Widget struct {
	Name       string
	X, Y, W, H float64
}

// Center returns the widget's center point.
func (w Widget) Center() (float64, float64) { return w.X + w.W/2, w.Y + w.H/2 }

// Contains reports whether the point lies inside the widget.
func (w Widget) Contains(x, y float64) bool {
	return x >= w.X && x <= w.X+w.W && y >= w.Y && y <= w.Y+w.H
}

// WidgetGrid lays out cols×rows widgets over a wpx×hpx viewport with
// margins, a typical faceted interface.
func WidgetGrid(cols, rows int, wpx, hpx float64) []Widget {
	out := make([]Widget, 0, cols*rows)
	cw, ch := wpx/float64(cols), hpx/float64(rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			out = append(out, Widget{
				Name: widgetName(r*cols + c),
				X:    float64(c)*cw + cw*0.1,
				Y:    float64(r)*ch + ch*0.1,
				W:    cw * 0.8,
				H:    ch * 0.8,
			})
		}
	}
	return out
}

func widgetName(i int) string {
	return "w" + string(rune('A'+i%26)) + string(rune('0'+i/26))
}

// MouseTraces simulates n pointer movements, each starting at a random
// position and approaching a randomly chosen target widget with a
// critically damped (minimum-jerk-like) controller plus Gaussian jitter.
// sampleMs is the sampling period (the paper's model predicts 200 ms ahead
// over such traces). noise scales the jitter; 6-8 px yields ~80-85 % top-1
// prediction accuracy at the 200 ms horizon, the paper's operating point.
func MouseTraces(n int, widgets []Widget, sampleMs int64, noise float64, seed int64) []MouseTrace {
	rng := rand.New(rand.NewSource(seed))
	out := make([]MouseTrace, n)
	for i := range out {
		target := rng.Intn(len(widgets))
		tx, ty := widgets[target].Center()
		x := rng.Float64() * 800
		y := rng.Float64() * 600
		vx, vy := 0.0, 0.0
		var pts []MousePoint
		t := int64(0)
		dt := float64(sampleMs) / 1000
		const (
			stiffness = 40.0
			damping   = 12.0
		)
		for step := 0; step < 400; step++ {
			pts = append(pts, MousePoint{T: t, X: x, Y: y})
			// A few samples minimum, even when the pointer starts on the
			// target: real traces always include some settle time.
			if step >= 3 && widgets[target].Contains(x, y) && math.Hypot(vx, vy) < 30 {
				break
			}
			ax := stiffness*(tx-x) - damping*vx
			ay := stiffness*(ty-y) - damping*vy
			vx += ax * dt
			vy += ay * dt
			x += vx*dt + rng.NormFloat64()*noise
			y += vy*dt + rng.NormFloat64()*noise
			t += sampleMs
		}
		out[i] = MouseTrace{Points: pts, Target: target}
	}
	return out
}

// LatencySampler draws request latencies. The §3.2 study uses mean-2.5 s
// exponential ("random delay (mean=2.5sec)") and a zero-delay control.
type LatencySampler struct {
	MeanMs float64
	rng    *rand.Rand
}

// NewLatencySampler creates a sampler; MeanMs 0 always returns 0.
func NewLatencySampler(meanMs float64, seed int64) *LatencySampler {
	return &LatencySampler{MeanMs: meanMs, rng: rand.New(rand.NewSource(seed))}
}

// Next draws the next latency in milliseconds.
func (l *LatencySampler) Next() float64 {
	if l.MeanMs <= 0 {
		return 0
	}
	return l.rng.ExpFloat64() * l.MeanMs
}
