// Package workload generates the deterministic synthetic workloads that
// stand in for the paper's external data sources (see DESIGN.md §4):
// a TPC-H-like Sales table for the Figure 1 crossfilter example, kinematic
// mouse traces for the §3.3 intent model, latency distributions for the
// §3.2 user study, and an SDSS-like SQL query log for §3.4.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Regions used by the revenue breakdown example.
var Regions = []string{"AMERICA", "ASIA", "EUROPE", "AFRICA", "MIDEAST"}

// Segments used by the second categorical chart of Figure 1.
var Segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}

// SalesRow is one order-line of the TPC-H-like workload: the dimensions of
// the Figure 1 crossfilter charts plus the revenue measure.
type SalesRow struct {
	OrderID int
	Region  string
	Segment string
	Year    int
	Month   int // 1..12
	Weekday int // 0..6 (0 = Monday, as a label index)
	Revenue float64
}

// Sales generates n deterministic order lines spanning years 1995-1998 with
// region/segment/seasonal skew so the grouped charts have visible structure.
func Sales(n int, seed int64) []SalesRow {
	rng := rand.New(rand.NewSource(seed))
	out := make([]SalesRow, n)
	for i := range out {
		year := 1995 + rng.Intn(4)
		month := 1 + rng.Intn(12)
		weekday := rng.Intn(7)
		region := Regions[skewedIndex(rng, len(Regions))]
		segment := Segments[rng.Intn(len(Segments))]
		// Base revenue with yearly growth, December uplift, and weekday dip.
		base := 100 + rng.Float64()*900
		growth := 1 + 0.15*float64(year-1995)
		seasonal := 1.0
		if month == 12 {
			seasonal = 1.4
		}
		weekend := 1.0
		if weekday >= 5 {
			weekend = 0.7
		}
		out[i] = SalesRow{
			OrderID: i + 1,
			Region:  region,
			Segment: segment,
			Year:    year,
			Month:   month,
			Weekday: weekday,
			Revenue: math.Round(base*growth*seasonal*weekend*100) / 100,
		}
	}
	return out
}

// skewedIndex biases toward earlier entries (~Zipf-ish), giving the grouped
// bar charts a recognizable shape.
func skewedIndex(rng *rand.Rand, n int) int {
	r := rng.Float64()
	r = r * r
	return int(r * float64(n))
}

// SalesInserts renders the rows as a DeVIL INSERT statement for table Sales
// with schema (orderId int, region string, segment string, year int,
// month int, weekday int, revenue float).
func SalesInserts(rows []SalesRow) string {
	var b strings.Builder
	b.WriteString("INSERT INTO Sales VALUES\n")
	for i, r := range rows {
		if i > 0 {
			b.WriteString(",\n")
		}
		fmt.Fprintf(&b, "  (%d, '%s', '%s', %d, %d, %d, %g)",
			r.OrderID, r.Region, r.Segment, r.Year, r.Month, r.Weekday, r.Revenue)
	}
	b.WriteString(";\n")
	return b.String()
}

// SalesDDL is the CREATE TABLE statement matching SalesInserts.
const SalesDDL = `CREATE TABLE Sales (orderId int, region string, segment string, year int, month int, weekday int, revenue float);`
