package workload

import (
	"fmt"
	"math/rand"
)

// The paper examined 125,600 SQL queries from the Sloan Digital Sky Survey
// (SDSS) log (Nov 28-30, 2004) and mapped >99.1 % of them to only 6 query
// templates; the two most frequent interactions covered 70 % and 12 % of the
// sample. SDSSLog reproduces those published statistics with a synthetic
// log: analysts tweak one template's parameters in structured, incremental
// ways (filter-bound nudges, projection changes, limit changes) before
// switching analyses — exactly the behaviour Precision Interfaces mines.

// SDSSLogSize is the size of the paper's sample.
const SDSSLogSize = 125600

// sdssTemplate generates one parameterized query family. mutate emits the
// next query in a session as an incremental tweak of session state.
type sdssTemplate struct {
	name   string
	weight float64
	gen    func(rng *rand.Rand, step int, state *sdssSession) string
}

type sdssSession struct {
	ra, dec, width float64
	zLo, zHi       float64
	class          int
	column         int
	cut            float64
	limit          int
	projection     int
	objID          int64
}

var sdssClasses = []string{"STAR", "GALAXY", "QSO", "UNKNOWN"}

var sdssMagColumns = []string{"u", "g", "r", "i"}

var sdssProjections = []string{
	"objID, ra, dec",
	"objID, ra, dec, u, g, r",
	"objID, ra, dec, u, g, r, i, z_mag",
}

// sdssTemplates models the 6 dominant SkyServer query families. Weights are
// calibrated so the dominant interaction classes match the paper's numbers:
// numeric filter tweaks (T1 box sliding + T6 id lookups) ≈ 70 % of
// transitions, projection flips (T2) ≈ 12 %, and the 6 templates together
// cover ≥ 99.1 % of the log. Each family tweaks exactly one structural
// aspect per step so that a single transformation rule explains each pair.
func sdssTemplates() []sdssTemplate {
	return []sdssTemplate{
		{
			// T1: box search on photoObj — the workhorse; analysts slide
			// the ra window (numeric parameter interaction).
			name: "box_search", weight: 0.695,
			gen: func(rng *rand.Rand, step int, s *sdssSession) string {
				if step == 0 {
					s.ra = 100 + rng.Float64()*100
					s.dec = rng.Float64() * 60
					s.width = 0.5
				} else {
					s.ra += (rng.Float64() - 0.5) * 2 // slide the window
				}
				return fmt.Sprintf(
					"SELECT objID, ra, dec FROM photoObj WHERE ra > %.3f AND ra < %.3f AND dec > %.3f AND dec < %.3f",
					s.ra, s.ra+s.width, s.dec, s.dec+s.width)
			},
		},
		{
			// T2: spectro redshift scan — analysts flip projections
			// (projection-change interaction); z bounds stay fixed within
			// a session.
			name: "redshift_scan", weight: 0.125,
			gen: func(rng *rand.Rand, step int, s *sdssSession) string {
				if step == 0 {
					s.zLo = rng.Float64() * 0.3
					s.zHi = s.zLo + 0.1
					s.projection = rng.Intn(len(sdssProjections))
				} else {
					s.projection = (s.projection + 1) % len(sdssProjections)
				}
				return fmt.Sprintf(
					"SELECT %s FROM specObj WHERE z > %.4f AND z < %.4f",
					sdssProjections[s.projection], s.zLo, s.zHi)
			},
		},
		{
			// T3: spectral-class filter (categorical dropdown interaction:
			// a string value flips).
			name: "class_filter", weight: 0.082,
			gen: func(rng *rand.Rand, step int, s *sdssSession) string {
				s.class = (s.class + 1 + rng.Intn(len(sdssClasses)-1)) % len(sdssClasses)
				return fmt.Sprintf(
					"SELECT objID, specClass, u, g FROM specObj WHERE specClass = '%s'", sdssClasses[s.class])
			},
		},
		{
			// T4: counting rows under a magnitude cut; the analyst flips
			// WHICH magnitude column is cut (column-picker interaction).
			name: "count_cut", weight: 0.050,
			gen: func(rng *rand.Rand, step int, s *sdssSession) string {
				if step == 0 {
					s.cut = 15 + rng.Float64()*5
					s.column = rng.Intn(len(sdssMagColumns))
				} else {
					s.column = (s.column + 1) % len(sdssMagColumns)
				}
				return fmt.Sprintf(
					"SELECT count(*) AS n FROM photoObj WHERE %s < %.2f", sdssMagColumns[s.column], s.cut)
			},
		},
		{
			// T5: photo-spectro join with a limit (limit stepper).
			name: "join_sample", weight: 0.022,
			gen: func(rng *rand.Rand, step int, s *sdssSession) string {
				if step == 0 {
					s.limit = 10
				} else {
					s.limit *= 2
				}
				return fmt.Sprintf(
					"SELECT p.objID, s.z FROM photoObj AS p, specObj AS s WHERE p.objID = s.objID LIMIT %d",
					s.limit)
			},
		},
		{
			// T6: point lookup by object id (numeric text-box interaction).
			name: "point_lookup", weight: 0.017,
			gen: func(rng *rand.Rand, step int, s *sdssSession) string {
				s.objID = 587722981742084000 + int64(rng.Intn(100000))
				return fmt.Sprintf("SELECT * FROM photoObj WHERE objID = %d", s.objID)
			},
		},
	}
}

// LogEntry is one query of the synthetic SDSS log with its (hidden) template
// label, used only for evaluating template-coverage statistics.
type LogEntry struct {
	SQL      string
	Template string // "" for off-template noise queries
	Session  int
}

// SDSSLog generates n log entries. Sessions of 4-12 incremental tweaks stay
// within one template; ~0.9 % of entries are off-template noise, matching
// the paper's ">99.1 % of statements map to 6 templates".
func SDSSLog(n int, seed int64) []LogEntry {
	rng := rand.New(rand.NewSource(seed))
	templates := sdssTemplates()
	out := make([]LogEntry, 0, n)
	session := 0
	for len(out) < n {
		session++
		if rng.Float64() < 0.009 {
			out = append(out, LogEntry{SQL: noiseQuery(rng), Session: session})
			continue
		}
		tpl := pickTemplate(rng, templates)
		length := 4 + rng.Intn(9)
		var state sdssSession
		for step := 0; step < length && len(out) < n; step++ {
			out = append(out, LogEntry{
				SQL:      tpl.gen(rng, step, &state),
				Template: tpl.name,
				Session:  session,
			})
		}
	}
	return out
}

func pickTemplate(rng *rand.Rand, templates []sdssTemplate) sdssTemplate {
	r := rng.Float64()
	acc := 0.0
	for _, t := range templates {
		acc += t.weight
		if r <= acc {
			return t
		}
	}
	return templates[len(templates)-1]
}

// noiseQuery emits a one-off exploratory query matching no template.
func noiseQuery(rng *rand.Rand) string {
	switch rng.Intn(4) {
	case 0:
		return fmt.Sprintf("SELECT name FROM dbObjects WHERE name = 'tab%d'", rng.Intn(50))
	case 1:
		return fmt.Sprintf("SELECT avg(u - g) AS color FROM photoObj WHERE dec > %d GROUP BY type", rng.Intn(40))
	case 2:
		return "SELECT DISTINCT run FROM field ORDER BY run LIMIT 30"
	default:
		return fmt.Sprintf("SELECT z FROM specObj WHERE specClass = %d ORDER BY z DESC LIMIT 5", rng.Intn(6))
	}
}

// TemplateCoverage returns the fraction of entries labeled with any
// template, and per-template fractions — the statistics the paper reports.
func TemplateCoverage(log []LogEntry) (total float64, byTemplate map[string]float64) {
	byTemplate = map[string]float64{}
	covered := 0
	for _, e := range log {
		if e.Template != "" {
			covered++
			byTemplate[e.Template]++
		}
	}
	for k := range byTemplate {
		byTemplate[k] /= float64(len(log))
	}
	return float64(covered) / float64(len(log)), byTemplate
}
