package workload

import (
	"math"
	"strings"
	"testing"

	"repro/internal/parser"
)

func TestSalesDeterministic(t *testing.T) {
	a := Sales(500, 42)
	b := Sales(500, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs between identically seeded runs", i)
		}
	}
	c := Sales(500, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestSalesShape(t *testing.T) {
	rows := Sales(2000, 1)
	years := map[int]int{}
	regions := map[string]int{}
	var dec, other float64
	var nDec, nOther int
	for _, r := range rows {
		if r.Year < 1995 || r.Year > 1998 {
			t.Fatalf("year out of range: %d", r.Year)
		}
		if r.Month < 1 || r.Month > 12 || r.Weekday < 0 || r.Weekday > 6 {
			t.Fatalf("bad month/weekday: %+v", r)
		}
		if r.Revenue <= 0 {
			t.Fatalf("non-positive revenue: %+v", r)
		}
		years[r.Year]++
		regions[r.Region]++
		if r.Month == 12 {
			dec += r.Revenue
			nDec++
		} else {
			other += r.Revenue
			nOther++
		}
	}
	if len(years) != 4 || len(regions) < 4 {
		t.Fatalf("dimension coverage: years=%d regions=%d", len(years), len(regions))
	}
	// December uplift should be visible in the mean.
	if dec/float64(nDec) <= other/float64(nOther) {
		t.Fatal("December mean revenue should exceed other months")
	}
	// Region skew: first region most frequent.
	if regions[Regions[0]] <= regions[Regions[len(Regions)-1]] {
		t.Fatal("region skew missing")
	}
}

func TestSalesInsertsParse(t *testing.T) {
	rows := Sales(50, 7)
	src := SalesDDL + "\n" + SalesInserts(rows)
	stmts, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("generated DeVIL does not parse: %v", err)
	}
	if len(stmts) != 2 {
		t.Fatalf("statements = %d", len(stmts))
	}
}

func TestWidgetGrid(t *testing.T) {
	ws := WidgetGrid(4, 3, 800, 600)
	if len(ws) != 12 {
		t.Fatalf("widgets = %d", len(ws))
	}
	for i, w := range ws {
		if w.W <= 0 || w.H <= 0 {
			t.Fatalf("widget %d degenerate: %+v", i, w)
		}
		cx, cy := w.Center()
		if !w.Contains(cx, cy) {
			t.Fatalf("widget %d does not contain its center", i)
		}
	}
	// widgets must not overlap
	for i := range ws {
		for j := i + 1; j < len(ws); j++ {
			cx, cy := ws[j].Center()
			if ws[i].Contains(cx, cy) {
				t.Fatalf("widgets %d and %d overlap", i, j)
			}
		}
	}
}

func TestMouseTracesReachTargets(t *testing.T) {
	widgets := WidgetGrid(4, 3, 800, 600)
	traces := MouseTraces(50, widgets, 20, 4, 11)
	reached := 0
	for _, tr := range traces {
		if len(tr.Points) < 2 {
			t.Fatal("trace too short")
		}
		last := tr.Points[len(tr.Points)-1]
		if widgets[tr.Target].Contains(last.X, last.Y) {
			reached++
		}
		for i := 1; i < len(tr.Points); i++ {
			if tr.Points[i].T <= tr.Points[i-1].T {
				t.Fatal("timestamps must increase")
			}
		}
	}
	if reached < 45 {
		t.Fatalf("only %d/50 traces reached their target", reached)
	}
}

func TestLatencySampler(t *testing.T) {
	zero := NewLatencySampler(0, 1)
	for i := 0; i < 10; i++ {
		if zero.Next() != 0 {
			t.Fatal("zero-mean sampler must return 0")
		}
	}
	s := NewLatencySampler(2500, 1)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := s.Next()
		if v < 0 {
			t.Fatal("negative latency")
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-2500) > 150 {
		t.Fatalf("empirical mean = %.0f, want ≈2500", mean)
	}
}

func TestSDSSLogCoverage(t *testing.T) {
	log := SDSSLog(20000, 4)
	if len(log) != 20000 {
		t.Fatalf("log size = %d", len(log))
	}
	total, byTemplate := TemplateCoverage(log)
	if total < 0.991 {
		t.Fatalf("template coverage = %.4f, want >= 0.991 (paper)", total)
	}
	// Dominant template ≈ 70 %, second ≈ 12 % (paper's two most frequent
	// interactions).
	if byTemplate["box_search"] < 0.60 || byTemplate["box_search"] > 0.80 {
		t.Fatalf("box_search share = %.3f, want ≈0.70", byTemplate["box_search"])
	}
	if byTemplate["redshift_scan"] < 0.07 || byTemplate["redshift_scan"] > 0.18 {
		t.Fatalf("redshift_scan share = %.3f, want ≈0.12", byTemplate["redshift_scan"])
	}
	if len(byTemplate) != 6 {
		t.Fatalf("templates = %d, want 6", len(byTemplate))
	}
}

func TestSDSSLogQueriesParse(t *testing.T) {
	log := SDSSLog(3000, 5)
	for i, e := range log {
		if _, err := parser.ParseQuery(e.SQL); err != nil {
			t.Fatalf("entry %d does not parse: %q: %v", i, e.SQL, err)
		}
	}
}

func TestSDSSSessionsAreIncremental(t *testing.T) {
	log := SDSSLog(5000, 6)
	// Within a session, consecutive same-template queries must share a
	// prefix (incremental tweaks, not rewrites).
	checked := 0
	for i := 1; i < len(log); i++ {
		a, b := log[i-1], log[i]
		if a.Session != b.Session || a.Template == "" || a.Template != b.Template {
			continue
		}
		checked++
		if commonPrefix(a.SQL, b.SQL) < 10 {
			t.Fatalf("session %d queries are not incremental:\n%s\n%s", a.Session, a.SQL, b.SQL)
		}
	}
	if checked < 1000 {
		t.Fatalf("too few intra-session pairs checked: %d", checked)
	}
}

func commonPrefix(a, b string) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

func TestSDSSLogDeterministic(t *testing.T) {
	a := SDSSLog(1000, 9)
	b := SDSSLog(1000, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("log not deterministic")
		}
	}
	if !strings.Contains(a[0].SQL, "SELECT") {
		t.Fatal("queries must be SELECTs")
	}
}
