package core

// Crash-recovery parity walls for the durable delta log (the acceptance
// criterion of the WAL subsystem): a store/engine with an attached log is
// driven by randomized streams; for every record boundary — and for torn
// offsets inside the final record — recovery from a clone of the disk at
// that point must reproduce the exact state a never-crashed oracle held
// there, including the whole @vnow/@tnow history.

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/events"
	"repro/internal/relation"
	"repro/internal/wal"
	"repro/internal/wal/faultfs"
)

// cloneOracle deep-copies an oracle store; the history snapshots are
// immutable after capture, so sharing them is safe.
func cloneOracle(o *oracleStore) *oracleStore {
	c := newOracleStore(o.maxHistory)
	c.restore(o.capture())
	c.history = append([]oracleSnap(nil), o.history...)
	c.txnHist = append([]oracleSnap(nil), o.txnHist...)
	c.inTxn = o.inTxn
	return c
}

const walTestDir = "data"

func openTestWAL(t *testing.T, fs faultfs.FS, segBytes int64) (*wal.Log, *wal.Recovery) {
	t.Helper()
	l, rec, err := wal.Open(wal.Options{Dir: walTestDir, FS: fs, Policy: wal.SyncNever, SegmentBytes: segBytes})
	if err != nil {
		t.Fatalf("wal open: %v", err)
	}
	return l, rec
}

// lastSegPath returns the newest segment file in the test log directory.
func lastSegPath(t *testing.T, fs faultfs.FS) string {
	t.Helper()
	names, err := fs.List(walTestDir)
	if err != nil || len(names) == 0 {
		t.Fatalf("list segments: %v (%d names)", err, len(names))
	}
	return filepath.Join(walTestDir, names[len(names)-1])
}

// driveWALStoreStream drives one randomized mutation stream through a
// store/oracle pair whose store has a wal sink attached. boundary is called
// after every operation that seals a window or logs a control record.
//
// The stream is the delta-log parity stream with one constraint added: a
// RestoreVersion is always followed immediately by Commit, mirroring the
// engine's Undo. A bag mutation between a restore and its sealing boundary
// would not be journaled (the barrier window carries nothing — the restore
// control record reproduces it), and the engine never mutates there.
func driveWALStoreStream(t *testing.T, rng *rand.Rand, p *storePair, ops int, boundary func()) {
	t.Helper()
	refresh := func() []string {
		return append([]string(nil), p.s.Names()...)
	}
	tables := []string{"T", "U"}
	created := 0
	for op := 0; op < ops; op++ {
		name := tables[rng.Intn(len(tables))]
		switch k := rng.Intn(20); {
		case k < 7:
			p.insert(name, randRows(rng, 1+rng.Intn(3)))
		case k < 10:
			or := p.o.rels[keyOf(name)]
			if len(or.Rows) > 0 {
				del := make([]relation.Tuple, 0, 2)
				for i := 0; i < 1+rng.Intn(2); i++ {
					del = append(del, or.Rows[rng.Intn(len(or.Rows))])
				}
				p.deleteVals(name, del)
			}
		case k < 11:
			p.replace(name, randRows(rng, rng.Intn(5)))
		case k < 12:
			created++
			nm := fmt.Sprintf("N%d", created)
			p.put(nm, intSchema(), randRows(rng, rng.Intn(3)))
			tables = append(tables, nm)
		case k < 14:
			p.s.BeginTxn()
			p.o.beginTxn()
			boundary()
		case k < 16:
			p.s.MarkEvent()
			p.o.markEvent()
			boundary()
		case k < 18:
			p.s.Commit()
			p.o.commit()
			boundary()
		case k < 19:
			serr := p.s.Rollback()
			if !p.o.rollback() || serr != nil {
				t.Fatalf("op %d: rollback diverges (store err %v)", op, serr)
			}
			boundary()
			tables = refresh()
		default:
			off := 1 + rng.Intn(p.o.maxHistory+1)
			ook := p.o.restoreVersion(off)
			serr := p.s.RestoreVersion(off)
			if ook != (serr == nil) {
				t.Fatalf("op %d: restore(%d) mismatch: store err=%v oracle ok=%v", op, off, serr, ook)
			}
			if ook {
				boundary()
				p.s.Commit()
				p.o.commit()
				boundary()
				tables = refresh()
			}
		}
	}
}

// walStoreFrame pairs a disk image taken at one record boundary with the
// oracle's full state there and the byte length of the record that boundary
// appended.
type walStoreFrame struct {
	fs       *faultfs.Mem
	oracle   *oracleStore
	frameLen int64
}

// replayedStore recovers a fresh store from a disk image.
func replayedStore(t *testing.T, step string, fs *faultfs.Mem, maxHist, cpEvery int) (*Store, *wal.Recovery) {
	t.Helper()
	l, rec := openTestWAL(t, fs, 1<<30)
	defer l.Close()
	s := NewStore(maxHist)
	s.checkpointEvery = cpEvery
	if err := s.ReplayWAL(rec); err != nil {
		t.Fatalf("%s: replay: %v", step, err)
	}
	return s, rec
}

// TestWALStoreCrashEveryRecordBoundary is the store-level wall: the disk is
// cloned at every record boundary of a randomized stream; recovery from each
// clone must match the oracle's exact state there (every relation at every
// reachable @vnow-i/@tnow-j offset), and recovery from a clone whose final
// record is cut at a random torn offset must match the previous boundary.
func TestWALStoreCrashEveryRecordBoundary(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			maxHist := 2 + rng.Intn(4)
			cpEvery := 1 + rng.Intn(4)
			fs := faultfs.NewMem()
			l, rec0 := openTestWAL(t, fs, 1<<30)
			if rec0.Checkpoint != nil || len(rec0.Records) != 0 || !rec0.Report.Clean() {
				t.Fatalf("fresh log not empty: %+v", rec0.Report)
			}
			s := NewStore(maxHist)
			s.checkpointEvery = cpEvery
			s.sink = func(r wal.Record) { _ = l.Append(r) }
			l.SetCheckpointFunc(s.walCheckpoint)
			p := &storePair{s: s, o: newOracleStore(maxHist)}

			var frames []walStoreFrame
			lastBytes := int64(0)
			snap := func() {
				st := l.Stats()
				if st.BytesAppended == lastBytes {
					return // the op sealed nothing (e.g. MarkEvent outside a txn)
				}
				frames = append(frames, walStoreFrame{
					fs:       fs.Clone(),
					oracle:   cloneOracle(p.o),
					frameLen: st.BytesAppended - lastBytes,
				})
				lastBytes = st.BytesAppended
			}

			p.put("T", intSchema(), randRows(rng, 5))
			p.put("U", intSchema(), randRows(rng, 3))
			p.s.Commit()
			p.o.commit()
			snap()
			driveWALStoreStream(t, rng, p, 120, snap)
			if err := l.Err(); err != nil {
				t.Fatalf("log error without faults: %v", err)
			}
			l.Close()
			if len(frames) < 20 {
				t.Fatalf("stream too quiet: only %d record boundaries", len(frames))
			}

			for k, f := range frames {
				step := fmt.Sprintf("seed %d boundary %d", seed, k)
				s2, rec := replayedStore(t, step, f.fs.Clone(), maxHist, cpEvery)
				if !rec.Report.Clean() {
					t.Fatalf("%s: unexpected repair on intact log: %s", step, rec.Report)
				}
				assertStoreParity(t, step, &storePair{s: s2, o: f.oracle})

				// Torn offset inside this boundary's record: recovery must
				// truncate it and land exactly on the previous boundary.
				if k == 0 || f.frameLen < 2 {
					continue
				}
				cut := 1 + rng.Int63n(f.frameLen-1)
				tfs := f.fs.Clone()
				path := lastSegPath(t, tfs)
				size, err := tfs.Size(path)
				if err != nil {
					t.Fatalf("%s: size: %v", step, err)
				}
				if err := tfs.Truncate(path, size-cut); err != nil {
					t.Fatalf("%s: truncate: %v", step, err)
				}
				s3, rec3 := replayedStore(t, step+" torn", tfs, maxHist, cpEvery)
				if rec3.Report.TornTailBytes == 0 {
					t.Fatalf("%s: cut %d bytes but recovery saw no torn tail", step, cut)
				}
				assertStoreParity(t, step+" torn", &storePair{s: s3, o: frames[k-1].oracle})
			}
		})
	}
}

// TestWALStoreStickyFaultDegradesToMemory injects a write fault mid-stream:
// the log must disable itself (sticky error), the store must keep running in
// memory in full parity with the oracle, and recovery from the faulted disk
// must land on the longest durable prefix — the state at the last record
// that fully hit the disk before the fault.
func TestWALStoreStickyFaultDegradesToMemory(t *testing.T) {
	const seed, ops, maxHist, cpEvery = 7, 80, 4, 2

	// Clean pass: record the oracle state at every record boundary.
	var oracles []*oracleStore
	{
		fs := faultfs.NewMem()
		l, _ := openTestWAL(t, fs, 1<<30)
		s := NewStore(maxHist)
		s.checkpointEvery = cpEvery
		s.sink = func(r wal.Record) { _ = l.Append(r) }
		l.SetCheckpointFunc(s.walCheckpoint)
		p := &storePair{s: s, o: newOracleStore(maxHist)}
		rng := rand.New(rand.NewSource(seed))
		lastBytes := int64(0)
		snap := func() {
			if st := l.Stats(); st.BytesAppended != lastBytes {
				oracles = append(oracles, cloneOracle(p.o))
				lastBytes = st.BytesAppended
			}
		}
		p.put("T", intSchema(), randRows(rng, 5))
		p.put("U", intSchema(), randRows(rng, 3))
		p.s.Commit()
		p.o.commit()
		snap()
		driveWALStoreStream(t, rng, p, ops, snap)
		l.Close()
	}

	// Faulted passes: the plan counts writes from SetPlan (the segment header
	// is already on disk), so write w is record w and records 1..w-1 are the
	// durable prefix.
	for _, tc := range []struct {
		failWrite int
		short     int
	}{{5, 0}, {5, 3}, {12, 0}, {12, 5}, {len(oracles), 3}} {
		name := fmt.Sprintf("write%d_short%d", tc.failWrite, tc.short)
		t.Run(name, func(t *testing.T) {
			fs := faultfs.NewMem()
			l, _ := openTestWAL(t, fs, 1<<30)
			fs.SetPlan(faultfs.Plan{FailWrite: tc.failWrite, ShortBytes: tc.short})
			s := NewStore(maxHist)
			s.checkpointEvery = cpEvery
			s.sink = func(r wal.Record) { _ = l.Append(r) }
			l.SetCheckpointFunc(s.walCheckpoint)
			p := &storePair{s: s, o: newOracleStore(maxHist)}
			rng := rand.New(rand.NewSource(seed))
			p.put("T", intSchema(), randRows(rng, 5))
			p.put("U", intSchema(), randRows(rng, 3))
			p.s.Commit()
			p.o.commit()
			driveWALStoreStream(t, rng, p, ops, func() {})
			if !fs.Crashed() {
				t.Fatalf("fault at write %d never fired", tc.failWrite)
			}
			if l.Err() == nil {
				t.Fatal("log swallowed the write fault: Err() == nil")
			}
			// The store itself must be unaffected: full live parity.
			assertStoreParity(t, "degraded live state", p)
			l.Close()

			// Recovery sees records 1..failWrite-1 intact plus a torn tail.
			fs.ClearFaults()
			durable := tc.failWrite - 1
			s2, rec := replayedStore(t, name, fs, maxHist, cpEvery)
			if got := len(rec.Records); got != durable {
				t.Fatalf("recovered %d records, want %d", got, durable)
			}
			if tc.short > 0 && rec.Report.TornTailBytes == 0 {
				t.Fatalf("short write left no torn tail: %s", rec.Report)
			}
			assertStoreParity(t, name+" recovered", &storePair{s: s2, o: oracles[durable-1]})
		})
	}
}

// TestWALRotationCheckpointBoundedRecovery forces segment rotation with a
// tiny segment size: recovery seeds from the newest on-disk checkpoint,
// version numbering continues exactly where the crashed process left off,
// and every committed version retained by both sides matches.
func TestWALRotationCheckpointBoundedRecovery(t *testing.T) {
	const maxHist, cpEvery = 3, 2
	rng := rand.New(rand.NewSource(11))
	fs := faultfs.NewMem()
	l, _, err := wal.Open(wal.Options{Dir: walTestDir, FS: fs, Policy: wal.SyncNever, SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(maxHist)
	s.checkpointEvery = cpEvery
	s.sink = func(r wal.Record) { _ = l.Append(r) }
	l.SetCheckpointFunc(s.walCheckpoint)
	p := &storePair{s: s, o: newOracleStore(maxHist)}

	// Commit-heavy stream so rest states (rotation opportunities) are common;
	// commitFrames[i] is the database as of commit number i+1.
	var commitFrames []oracleSnap
	p.put("T", intSchema(), randRows(rng, 6))
	p.put("U", intSchema(), randRows(rng, 4))
	p.s.Commit()
	p.o.commit()
	commitFrames = append(commitFrames, p.o.capture())
	for op := 0; op < 500; op++ {
		name := []string{"T", "U"}[rng.Intn(2)]
		switch k := rng.Intn(10); {
		case k < 5:
			p.insert(name, randRows(rng, 1+rng.Intn(3)))
		case k < 6:
			or := p.o.rels[keyOf(name)]
			if len(or.Rows) > 2 {
				p.deleteVals(name, []relation.Tuple{or.Rows[rng.Intn(len(or.Rows))]})
			}
		default:
			p.s.Commit()
			p.o.commit()
			commitFrames = append(commitFrames, p.o.capture())
		}
	}
	p.s.Commit()
	p.o.commit()
	commitFrames = append(commitFrames, p.o.capture())
	if segs := l.Stats().SegmentsWritten; segs < 3 {
		t.Fatalf("stream rotated only %d segment(s); rotation path untested", segs)
	}
	// Make sure the newest segment holds commits beyond its head checkpoint,
	// so corrupting that checkpoint provably loses state below. Bounded loop:
	// a checkpoint image bigger than SegmentBytes would make every commit
	// rotate and this could never settle, so fail loudly instead of spinning.
	settled := false
	for round := 0; round < 64 && !settled; round++ {
		segs := l.Stats().SegmentsWritten
		for i := 0; i < 3; i++ {
			p.insert("T", randRows(rng, 1))
			p.s.Commit()
			p.o.commit()
			commitFrames = append(commitFrames, p.o.capture())
		}
		settled = l.Stats().SegmentsWritten == segs
	}
	if !settled {
		t.Fatal("padding commits kept rotating; SegmentBytes is too small for the database's checkpoint image")
	}
	totalCommits := len(commitFrames)
	l.Close()

	assertFrameParity := func(step string, s2 *Store, frame oracleSnap) {
		t.Helper()
		for _, nm := range frame.names {
			want := frame.rels[keyOf(nm)]
			got, err := s2.Resolve(nm, relation.Current())
			if err != nil {
				t.Fatalf("%s: %s: %v", step, nm, err)
			}
			if !relation.Equal(got, want) {
				t.Fatalf("%s: %s diverges from commit frame", step, nm)
			}
		}
	}

	// Crash at the end: bounded recovery from the newest checkpoint.
	s2, rec := replayedStore(t, "rotation", fs.Clone(), maxHist, cpEvery)
	if rec.Report.CheckpointCommits == 0 {
		t.Fatalf("recovery ignored on-disk checkpoints: %s", rec.Report)
	}
	if got := s2.droppedCommits + s2.Versions(); got != totalCommits {
		t.Fatalf("commit numbering broken: recovered total %d, want %d", got, totalCommits)
	}
	assertFrameParity("newest", s2, commitFrames[totalCommits-1])
	// Every retained historical version matches the matching commit frame:
	// @vnow-1 is the newest commit, @vnow-Versions() the oldest retained.
	for off := 1; off <= s2.Versions() && off <= totalCommits; off++ {
		got, err := s2.Resolve("T", relation.VNow(off))
		if err != nil {
			t.Fatalf("@vnow-%d: %v", off, err)
		}
		want := commitFrames[totalCommits-off].rels[keyOf("T")]
		if !relation.Equal(got, want) {
			t.Fatalf("@vnow-%d diverges from commit frame", off)
		}
	}

	// Corrupt the newest checkpoint: recovery must fall back to an older
	// segment's checkpoint and land on a consistent earlier commit.
	cfs := fs.Clone()
	if err := cfs.Corrupt(lastSegPath(t, cfs), int64(len("DVMSWAL1"))+4); err != nil {
		t.Fatal(err)
	}
	s3, rec3 := replayedStore(t, "corrupt newest checkpoint", cfs, maxHist, cpEvery)
	if rec3.Report.Clean() {
		t.Fatalf("corruption went unnoticed: %s", rec3.Report)
	}
	got := s3.droppedCommits + s3.Versions()
	if got <= 0 || got > totalCommits {
		t.Fatalf("recovered to impossible commit count %d (total %d)", got, totalCommits)
	}
	if got == totalCommits {
		t.Fatal("recovery claims full state despite a corrupted newest checkpoint")
	}
	assertFrameParity("degraded", s3, commitFrames[got-1])
}

// --- engine-level wall ---

// engineFrame captures what a client observes: every relation's contents
// plus the rendered framebuffer.
type engineFrame struct {
	names  []string
	rels   map[string]*relation.Relation
	pixels *relation.Relation
}

func captureEngineFrame(e *Engine) engineFrame {
	f := engineFrame{rels: map[string]*relation.Relation{}}
	f.names = append(f.names, e.store.Names()...)
	for _, nm := range f.names {
		r, _ := e.store.Get(nm)
		f.rels[keyOf(nm)] = r.Snapshot()
	}
	f.pixels = e.Pixels(true)
	return f
}

func totalCommits(e *Engine) int {
	return e.store.droppedCommits + e.store.Versions()
}

func assertEngineFrame(t *testing.T, step string, e *Engine, f engineFrame) {
	t.Helper()
	if got, want := len(e.store.Names()), len(f.names); got != want {
		t.Fatalf("%s: %d relations, want %d (%v vs %v)", step, got, want, e.store.Names(), f.names)
	}
	for _, nm := range f.names {
		got, err := e.store.Resolve(nm, relation.Current())
		if err != nil {
			t.Fatalf("%s: %s: %v", step, nm, err)
		}
		if !relation.Equal(got, f.rels[keyOf(nm)]) {
			gc, wc := got.Clone(), f.rels[keyOf(nm)].Clone()
			gc.SortDeterministic()
			wc.SortDeterministic()
			t.Fatalf("%s: %s diverges\nrecovered:\n%s\nwant:\n%s", step, nm, gc, wc)
		}
	}
	if !relation.Equal(e.Pixels(true), f.pixels) {
		t.Fatalf("%s: rendered pixels diverge", step)
	}
}

func dragStream(t0, x0, y0, x1, y1 int64) events.Stream {
	return events.Stream{
		events.Mouse(events.MouseDown, t0, x0, y0),
		events.Mouse(events.MouseMove, t0+1, (x0+x1)/2, (y0+y1)/2),
		events.Mouse(events.MouseMove, t0+2, x1, y1),
		events.Mouse(events.MouseUp, t0+3, x1, y1),
	}
}

// runBrushingScript drives a fixed interaction script against an engine.
// onEvent fires after every fed event (a crash point inside an interaction);
// onAction fires after each completed action (a rest-state crash point).
func runBrushingScript(t *testing.T, e *Engine, onEvent, onAction func()) {
	t.Helper()
	feed := func(st events.Stream) {
		for _, ev := range st {
			if _, err := e.FeedEvent(ev); err != nil {
				t.Fatalf("feed %v: %v", ev, err)
			}
			onEvent()
		}
	}
	exec := func(src string) {
		if err := e.Exec(src); err != nil {
			t.Fatalf("exec: %v", err)
		}
		e.Commit()
	}
	undo := func() {
		if err := e.Undo(); err != nil {
			t.Fatalf("undo: %v", err)
		}
	}
	// Committed selection of p2/p3.
	feed(dragStream(10, 100, 10, 210, 160))
	onAction()
	// Data mutation outside any interaction.
	exec("INSERT INTO Sales VALUES (6, 60, 60, 60, 'flute');")
	onAction()
	// A different selection.
	feed(dragStream(20, 80, 100, 400, 300))
	onAction()
	// Undo it, then undo again (redo by depth-2 versioning).
	undo()
	onAction()
	undo()
	onAction()
	// Aborted drag: the FORALL y > 5 guard fails on the second move.
	feed(events.Stream{
		events.Mouse(events.MouseDown, 30, 0, 10),
		events.Mouse(events.MouseMove, 31, 390, 290),
		events.Mouse(events.MouseMove, 32, 390, 3),
	})
	onAction()
	// A final committed selection on the grown dataset.
	feed(dragStream(40, 200, 100, 300, 250))
	onAction()
}

// TestWALEngineCrashRecoveryParity is the engine-level wall: a brushing
// session runs with the log attached, the disk is cloned after every fed
// event and completed action, and RecoverEngine from each clone must land on
// the oracle's state at the same commit — a crash mid-interaction aborts the
// interaction, so the recovered engine shows the last committed version.
func TestWALEngineCrashRecoveryParity(t *testing.T) {
	cfg := Config{MaxHistory: 4}

	// Oracle run (no log): frame per commit count.
	frames := map[int]engineFrame{}
	oe := New(cfg)
	if err := oe.LoadProgram(brushingProgram); err != nil {
		t.Fatalf("load: %v", err)
	}
	record := func() {
		tc := totalCommits(oe)
		if _, ok := frames[tc]; !ok {
			frames[tc] = captureEngineFrame(oe)
		}
	}
	record()
	runBrushingScript(t, oe, func() {}, record)

	// Logged run: clone the disk at every crash point.
	type diskClone struct {
		fs      *faultfs.Mem
		commits int
		label   string
	}
	var clones []diskClone
	fs := faultfs.NewMem()
	l, rec0 := openTestWAL(t, fs, 1<<30)
	we := New(cfg)
	we.AttachWAL(l)
	if err := we.LoadProgram(brushingProgram); err != nil {
		t.Fatalf("load: %v", err)
	}
	point := func(label string) func() {
		return func() {
			clones = append(clones, diskClone{fs: fs.Clone(), commits: totalCommits(we), label: label})
		}
	}
	point("load")()
	runBrushingScript(t, we, point("event"), point("action"))
	if err := l.Err(); err != nil {
		t.Fatalf("log error: %v", err)
	}
	l.Close()
	_ = rec0

	// The logged engine and the oracle engine must agree live, first.
	assertEngineFrame(t, "live end state", we, frames[totalCommits(we)])

	for i, c := range clones {
		step := fmt.Sprintf("clone %d (%s, commit %d)", i, c.label, c.commits)
		l2, rec := openTestWAL(t, c.fs, 1<<30)
		if !rec.Report.Clean() {
			t.Fatalf("%s: unexpected repair: %s", step, rec.Report)
		}
		re, err := RecoverEngine(cfg, brushingProgram, rec)
		l2.Close()
		if err != nil {
			t.Fatalf("%s: recover: %v", step, err)
		}
		if got := totalCommits(re); got != c.commits {
			t.Fatalf("%s: recovered commit count %d, want %d", step, got, c.commits)
		}
		if re.store.InTxn() {
			t.Fatalf("%s: recovered engine left a transaction in flight", step)
		}
		frame, ok := frames[c.commits]
		if !ok {
			t.Fatalf("%s: no oracle frame for commit %d", step, c.commits)
		}
		assertEngineFrame(t, step, re, frame)
	}
}

// TestOpenDurableEngineRoundTrip exercises the host entry point across three
// process lifetimes sharing one directory: fresh boot, recovery plus further
// logged work, and a final recovery of the mixed old-plus-new log.
func TestOpenDurableEngineRoundTrip(t *testing.T) {
	cfg := Config{MaxHistory: 8}
	fs := faultfs.NewMem()
	opts := wal.Options{Dir: walTestDir, FS: fs, Policy: wal.SyncNever, SegmentBytes: 1 << 30}

	e1, l1, rep1, err := OpenDurableEngine(cfg, brushingProgram, opts)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	if rep1.Records != 0 {
		t.Fatalf("fresh boot found %d records", rep1.Records)
	}
	if _, err := e1.FeedStream(selectDrag(0)); err != nil {
		t.Fatal(err)
	}
	if err := e1.Exec("INSERT INTO Sales VALUES (6, 60, 60, 60, 'flute');"); err != nil {
		t.Fatal(err)
	}
	e1.Commit()
	want1 := captureEngineFrame(e1)
	l1.Close() // graceful shutdown: seal the segment

	e2, l2, rep2, err := OpenDurableEngine(cfg, brushingProgram, opts)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if !rep2.Clean() || rep2.Records == 0 {
		t.Fatalf("recovery report: %+v", rep2)
	}
	assertEngineFrame(t, "first recovery", e2, want1)
	// Keep working: the recovered engine logs onto the same tail.
	if _, err := e2.FeedStream(selectDrag(100)); err != nil {
		t.Fatal(err)
	}
	if err := e2.Undo(); err != nil {
		t.Fatal(err)
	}
	want2 := captureEngineFrame(e2)
	l2.Close()

	e3, l3, _, err := OpenDurableEngine(cfg, brushingProgram, opts)
	if err != nil {
		t.Fatalf("second recover: %v", err)
	}
	assertEngineFrame(t, "second recovery", e3, want2)
	l3.Close()

	// RecoverEngine on an empty log must refuse rather than silently skip
	// the program's data loading.
	_, rec, err := wal.Open(wal.Options{Dir: "empty", FS: faultfs.NewMem(), Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RecoverEngine(cfg, brushingProgram, rec); err == nil {
		t.Fatal("RecoverEngine accepted an empty log")
	}
}

// TestWALPostRestoreWriteCrashParity is the regression wall for the restore
// barrier: while a restore window is open, recordChange drops deltas, so a
// write accepted inside the window would silently never reach the log. Undo
// seals the window itself (it commits), but a host calling
// Store().RestoreVersion directly leaves it open — the engine must seal the
// barrier before accepting any post-restore write, and recovery from a disk
// clone taken after such a write must reproduce it exactly.
func TestWALPostRestoreWriteCrashParity(t *testing.T) {
	cfg := Config{MaxHistory: 4}
	fs := faultfs.NewMem()
	l, _ := openTestWAL(t, fs, 1<<30)
	e := New(cfg)
	e.AttachWAL(l)
	if err := e.LoadProgram(brushingProgram); err != nil {
		t.Fatalf("load: %v", err)
	}
	exec := func(src string) {
		t.Helper()
		if err := e.Exec(src); err != nil {
			t.Fatalf("exec %s: %v", src, err)
		}
		e.Commit()
	}
	type crashPoint struct {
		fs      *faultfs.Mem
		commits int
		want    engineFrame
	}
	var points []crashPoint
	mark := func() {
		points = append(points, crashPoint{fs.Clone(), totalCommits(e), captureEngineFrame(e)})
	}

	exec("INSERT INTO Sales VALUES (6, 60, 60, 60, 'flute');")
	if err := e.Store().RestoreVersion(1); err != nil {
		t.Fatalf("restore: %v", err)
	}
	// First post-restore write: the barrier must seal before the insert so
	// the delta journals normally.
	exec("INSERT INTO Sales VALUES (7, 70, 70, 70, 'oboe');")
	mark()
	// A second restore/write cycle deeper into the history, this time with
	// the post-restore write arriving through the host row API.
	if err := e.Store().RestoreVersion(2); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if err := e.InsertRows("Sales", []relation.Tuple{{
		relation.Int(8), relation.Float(80), relation.Float(80),
		relation.Float(80), relation.String("drum"),
	}}); err != nil {
		t.Fatalf("insert rows: %v", err)
	}
	e.Commit()
	mark()
	if err := l.Err(); err != nil {
		t.Fatalf("log error: %v", err)
	}
	l.Close()

	for i, c := range points {
		step := fmt.Sprintf("post-restore crash point %d (commit %d)", i, c.commits)
		l2, rec := openTestWAL(t, c.fs, 1<<30)
		if !rec.Report.Clean() {
			t.Fatalf("%s: unexpected repair: %s", step, rec.Report)
		}
		re, err := RecoverEngine(cfg, brushingProgram, rec)
		l2.Close()
		if err != nil {
			t.Fatalf("%s: recover: %v", step, err)
		}
		if got := totalCommits(re); got != c.commits {
			t.Fatalf("%s: recovered commit count %d, want %d", step, got, c.commits)
		}
		assertEngineFrame(t, step, re, c.want)
	}
}
