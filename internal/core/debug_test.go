package core

import (
	"strings"
	"testing"

	"repro/internal/relation"
)

// Deconstruction (§3.1 / Harper & Agrawala): recover the data bound to each
// mark from provenance alone — the trace program's marks carry no
// productId, yet deconstruction reattaches the full Sales rows.
func TestDeconstructMarks(t *testing.T) {
	e := loadTrace(t, Config{})
	data, err := e.Deconstruct("SPLOT_POINTS", "Sales")
	if err != nil {
		t.Fatal(err)
	}
	if data.Len() != 5 {
		t.Fatalf("deconstructed rows = %d, want 5 (one per mark)", data.Len())
	}
	// Every output row pairs a mark with its generating product: the mark's
	// center_x must equal the linear scaling of the product's revenue.
	cxIdx := data.Schema.Index("SPLOT_POINTS", "center_x")
	revIdx := data.Schema.Index("Sales", "revenue")
	nameIdx := data.Schema.Index("Sales", "productName")
	if cxIdx < 0 || revIdx < 0 || nameIdx < 0 {
		t.Fatalf("deconstructed schema = %s", data.Schema)
	}
	for _, row := range data.Rows {
		cx, _ := row[cxIdx].AsFloat()
		rev, _ := row[revIdx].AsFloat()
		want := 20 + rev/100*360
		if diff := cx - want; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("mark at cx=%v does not match revenue %v (want cx=%v)", cx, rev, want)
		}
	}
}

// Restyling: re-visualize the deconstructed data under a new encoding by
// loading it as a base table of a fresh system and writing a new DeVIL view
// over it (scatterplot → price bar chart).
func TestRestyleFromDeconstruction(t *testing.T) {
	e := loadTrace(t, Config{})
	data, err := e.Deconstruct("SPLOT_POINTS", "Sales")
	if err != nil {
		t.Fatal(err)
	}
	restyled := New(Config{})
	if err := restyled.Exec("CREATE TABLE Extracted (productId int, price float)"); err != nil {
		t.Fatal(err)
	}
	ext, _ := restyled.Relation("Extracted")
	pid := data.Schema.Index("Sales", "productId")
	price := data.Schema.Index("Sales", "price")
	for _, row := range data.Rows {
		ext.MustAppend(relation.Tuple{row[pid], row[price]})
	}
	if err := restyled.Exec(`
BARS = SELECT productId * 30 AS x, 280 - price AS y, 20 AS width, price AS height, 'steelblue' AS fill
       FROM Extracted;
P = render(SELECT * FROM BARS, 'rect');
`); err != nil {
		t.Fatal(err)
	}
	bars, _ := restyled.Relation("BARS")
	if bars.Len() != 5 {
		t.Fatalf("restyled bars = %d", bars.Len())
	}
	if restyled.Image().NonBackgroundCount() == 0 {
		t.Fatal("restyled chart should render pixels")
	}
}

func TestExplainView(t *testing.T) {
	e := loadBrushing(t, Config{})
	text, err := e.ExplainView("selected")
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Distinct", "Scan", "SPLOT_POINTS"} {
		if !strings.Contains(text, frag) {
			t.Fatalf("explain missing %q:\n%s", frag, text)
		}
	}
	if _, err := e.ExplainView("Sales"); err == nil {
		t.Fatal("explaining a base table should error")
	}
	e2 := loadTrace(t, Config{})
	text2, err := e2.ExplainView("B")
	if err != nil || !strings.Contains(text2, "TraceView") {
		t.Fatalf("trace explain = %q, %v", text2, err)
	}
}

func TestDebugReport(t *testing.T) {
	e := loadBrushing(t, Config{})
	if _, err := e.FeedStream(selectDrag(0)); err != nil {
		t.Fatal(err)
	}
	report := e.DebugReport()
	for _, frag := range []string{
		"committed versions", "Sales", "base", "view", "render sink",
		"evaluation order", "selected", "interactions", "MOUSE_DOWN",
		"view recomputes",
	} {
		if !strings.Contains(report, frag) {
			t.Fatalf("report missing %q:\n%s", frag, report)
		}
	}
}

func TestLineageAPI(t *testing.T) {
	e := loadTrace(t, Config{})
	marks, _ := e.Relation("SPLOT_POINTS")
	rows := make([]int, marks.Len())
	for i := range rows {
		rows[i] = i
	}
	lin, err := e.Lineage("SPLOT_POINTS", rows, "Sales")
	if err != nil {
		t.Fatal(err)
	}
	if len(lin) != marks.Len() {
		t.Fatalf("lineage entries = %d", len(lin))
	}
	seen := map[int]bool{}
	for i, src := range lin {
		if len(src) != 1 {
			t.Fatalf("mark %d has %d source rows, want 1", i, len(src))
		}
		seen[src[0]] = true
	}
	if len(seen) != 5 {
		t.Fatalf("marks trace to %d distinct products, want 5", len(seen))
	}
	if _, err := e.Lineage("Sales", []int{0}, "Sales"); err == nil {
		t.Fatal("lineage of a base table should error")
	}
}
