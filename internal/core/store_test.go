package core

import (
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

func intRel(name string, vals ...int64) *relation.Relation {
	r := relation.New(name, relation.NewSchema(relation.Col("v", relation.KindInt)))
	for _, v := range vals {
		r.MustAppend(relation.Tuple{relation.Int(v)})
	}
	return r
}

func TestStoreVersioning(t *testing.T) {
	s := NewStore(8)
	s.Put(intRel("T", 1))
	s.Commit() // version 0: T = {1}
	rel, _ := s.Get("T")
	rel.MustAppend(relation.Tuple{relation.Int(2)})
	s.Commit() // version 1: T = {1,2}
	rel, _ = s.Get("T")
	rel.MustAppend(relation.Tuple{relation.Int(3)})
	// live: {1,2,3}; vnow-1: {1,2}; vnow-2: {1}
	cur, err := s.Resolve("T", relation.Current())
	if err != nil || cur.Len() != 3 {
		t.Fatalf("current = %v, %v", cur.Len(), err)
	}
	v1, err := s.Resolve("T", relation.VNow(1))
	if err != nil || v1.Len() != 2 {
		t.Fatalf("vnow-1 = %v, %v", v1.Len(), err)
	}
	v2, err := s.Resolve("T", relation.VNow(2))
	if err != nil || v2.Len() != 1 {
		t.Fatalf("vnow-2 = %v, %v", v2.Len(), err)
	}
	// vnow-0 aliases the live state
	v0, err := s.Resolve("T", relation.VNow(0))
	if err != nil || v0.Len() != 3 {
		t.Fatalf("vnow-0 = %v, %v", v0.Len(), err)
	}
	// deeper than history: clamps to oldest snapshot
	v9, err := s.Resolve("T", relation.VNow(9))
	if err != nil || v9.Len() != 1 {
		t.Fatalf("vnow-9 = %v, %v", v9.Len(), err)
	}
}

func TestStoreTnowSnapshots(t *testing.T) {
	s := NewStore(8)
	s.Put(intRel("T", 1))
	s.Commit()
	s.BeginTxn() // tnow history starts: state {1}
	rel, _ := s.Get("T")
	rel.MustAppend(relation.Tuple{relation.Int(2)})
	s.MarkEvent() // after event 1: {1,2}
	rel.MustAppend(relation.Tuple{relation.Int(3)})
	s.MarkEvent() // after event 2: {1,2,3}

	// tnow-0 is the live state; with both events marked, tnow-1 is the
	// state after the latest event, tnow-2 after the first.
	t0, _ := s.Resolve("T", relation.TNow(0))
	if t0.Len() != 3 {
		t.Fatalf("tnow-0 = %d", t0.Len())
	}
	t1, _ := s.Resolve("T", relation.TNow(1))
	if t1.Len() != 3 {
		t.Fatalf("tnow-1 = %d", t1.Len())
	}
	t2, _ := s.Resolve("T", relation.TNow(2))
	if t2.Len() != 2 {
		t.Fatalf("tnow-2 = %d", t2.Len())
	}
	// beyond the transaction start: clamps to begin state
	t9, _ := s.Resolve("T", relation.TNow(9))
	if t9.Len() != 1 {
		t.Fatalf("tnow-9 = %d", t9.Len())
	}
	// Mid-event view of the same semantics: before MarkEvent of a third
	// event, tnow-1 is the state after the second.
	rel, _ = s.Get("T")
	rel.MustAppend(relation.Tuple{relation.Int(4)})
	mid, _ := s.Resolve("T", relation.TNow(1))
	if mid.Len() != 3 {
		t.Fatalf("mid-event tnow-1 = %d, want 3", mid.Len())
	}
	// outside a transaction, tnow = live (now 4 rows after the mid-event
	// append above)
	s.Commit()
	tOut, _ := s.Resolve("T", relation.TNow(1))
	if tOut.Len() != 4 {
		t.Fatalf("tnow outside txn = %d", tOut.Len())
	}
}

func TestStoreRollback(t *testing.T) {
	s := NewStore(8)
	s.Put(intRel("T", 1))
	s.Commit()
	s.BeginTxn()
	rel, _ := s.Get("T")
	rel.MustAppend(relation.Tuple{relation.Int(2)})
	s.MarkEvent()
	if err := s.Rollback(); err != nil {
		t.Fatal(err)
	}
	cur, _ := s.Get("T")
	if cur.Len() != 1 {
		t.Fatalf("post-rollback = %d rows", cur.Len())
	}
	if s.InTxn() {
		t.Fatal("rollback should end the transaction")
	}
}

func TestStoreHistoryEviction(t *testing.T) {
	s := NewStore(3)
	s.Put(intRel("T"))
	for i := 0; i < 10; i++ {
		rel, _ := s.Get("T")
		rel.MustAppend(relation.Tuple{relation.Int(int64(i))})
		s.Commit()
	}
	if s.Versions() != 3 {
		t.Fatalf("retained versions = %d, want 3", s.Versions())
	}
	// oldest retained = after commit 7 (8 rows)
	v3, err := s.Resolve("T", relation.VNow(3))
	if err != nil {
		t.Fatal(err)
	}
	if v3.Len() != 8 {
		t.Fatalf("oldest retained = %d rows, want 8", v3.Len())
	}
}

// Property: snapshot/restore round trip — after any sequence of appends and
// a rollback, the store matches the committed state.
func TestStoreRollbackProperty(t *testing.T) {
	f := func(initial []int64, txn []int64) bool {
		s := NewStore(4)
		s.Put(intRel("T", initial...))
		s.Commit()
		s.BeginTxn()
		rel, _ := s.Get("T")
		for _, v := range txn {
			rel.MustAppend(relation.Tuple{relation.Int(v)})
			s.MarkEvent()
		}
		if err := s.Rollback(); err != nil {
			return false
		}
		cur, _ := s.Get("T")
		return cur.Len() == len(initial)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRestoreVersionForUndo(t *testing.T) {
	s := NewStore(8)
	s.Put(intRel("T", 1))
	s.Commit() // v0
	rel, _ := s.Get("T")
	rel.MustAppend(relation.Tuple{relation.Int(2)})
	s.Commit() // v1
	if err := s.RestoreVersion(2); err != nil {
		t.Fatal(err)
	}
	cur, _ := s.Get("T")
	if cur.Len() != 1 {
		t.Fatalf("post-restore rows = %d, want 1", cur.Len())
	}
	if err := s.RestoreVersion(0); err == nil {
		t.Fatal("RestoreVersion(0) should error")
	}
	if err := s.RestoreVersion(99); err == nil {
		t.Fatal("too-deep restore should error")
	}
}

func TestShiftedCatalog(t *testing.T) {
	s := NewStore(8)
	s.Put(intRel("T", 1))
	s.Commit() // v… T={1}
	rel, _ := s.Get("T")
	rel.MustAppend(relation.Tuple{relation.Int(2)})
	s.Commit() // T={1,2}
	rel, _ = s.Get("T")
	rel.MustAppend(relation.Tuple{relation.Int(3)})

	cat := s.CatalogAt(1) // as of last commit
	r, err := cat.Resolve("T", relation.Current())
	if err != nil || r.Len() != 2 {
		t.Fatalf("shifted current = %v, %v", r.Len(), err)
	}
	r, err = cat.Resolve("T", relation.VNow(1))
	if err != nil || r.Len() != 1 {
		t.Fatalf("shifted vnow-1 = %v, %v", r.Len(), err)
	}
}
