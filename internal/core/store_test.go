package core

import (
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

func intRel(name string, vals ...int64) *relation.Relation {
	r := relation.New(name, relation.NewSchema(relation.Col("v", relation.KindInt)))
	for _, v := range vals {
		r.MustAppend(relation.Tuple{relation.Int(v)})
	}
	return r
}

// appendRecorded mutates a relation the way the engine does: the physical
// append plus a recorded delta, which is what lets Commit/MarkEvent seal
// O(delta) boundaries instead of snapshotting the database.
func appendRecorded(s *Store, name string, vals ...int64) {
	rel, err := s.Get(name)
	if err != nil {
		panic(err)
	}
	var ins []relation.Tuple
	for _, v := range vals {
		t := relation.Tuple{relation.Int(v)}
		rel.MustAppend(t)
		ins = append(ins, t)
	}
	s.recordChange(name, relation.Delta{Ins: ins})
}

func TestStoreVersioning(t *testing.T) {
	s := NewStore(8)
	s.Put(intRel("T", 1))
	s.Commit() // version 0: T = {1}
	appendRecorded(s, "T", 2)
	s.Commit() // version 1: T = {1,2}
	appendRecorded(s, "T", 3)
	// live: {1,2,3}; vnow-1: {1,2}; vnow-2: {1}
	cur, err := s.Resolve("T", relation.Current())
	if err != nil || cur.Len() != 3 {
		t.Fatalf("current = %v, %v", cur.Len(), err)
	}
	v1, err := s.Resolve("T", relation.VNow(1))
	if err != nil || v1.Len() != 2 {
		t.Fatalf("vnow-1 = %v, %v", v1.Len(), err)
	}
	v2, err := s.Resolve("T", relation.VNow(2))
	if err != nil || v2.Len() != 1 {
		t.Fatalf("vnow-2 = %v, %v", v2.Len(), err)
	}
	// vnow-0 aliases the live state
	v0, err := s.Resolve("T", relation.VNow(0))
	if err != nil || v0.Len() != 3 {
		t.Fatalf("vnow-0 = %v, %v", v0.Len(), err)
	}
	// deeper than history: clamps to oldest retained version
	v9, err := s.Resolve("T", relation.VNow(9))
	if err != nil || v9.Len() != 1 {
		t.Fatalf("vnow-9 = %v, %v", v9.Len(), err)
	}
}

func TestStoreTnowSnapshots(t *testing.T) {
	s := NewStore(8)
	s.Put(intRel("T", 1))
	s.Commit()
	s.BeginTxn() // tnow history starts: state {1}
	appendRecorded(s, "T", 2)
	s.MarkEvent() // after event 1: {1,2}
	appendRecorded(s, "T", 3)
	s.MarkEvent() // after event 2: {1,2,3}

	// tnow-0 is the live state; with both events marked, tnow-1 is the
	// state after the latest event, tnow-2 after the first.
	t0, _ := s.Resolve("T", relation.TNow(0))
	if t0.Len() != 3 {
		t.Fatalf("tnow-0 = %d", t0.Len())
	}
	t1, _ := s.Resolve("T", relation.TNow(1))
	if t1.Len() != 3 {
		t.Fatalf("tnow-1 = %d", t1.Len())
	}
	t2, _ := s.Resolve("T", relation.TNow(2))
	if t2.Len() != 2 {
		t.Fatalf("tnow-2 = %d", t2.Len())
	}
	// beyond the transaction start: clamps to begin state
	t9, _ := s.Resolve("T", relation.TNow(9))
	if t9.Len() != 1 {
		t.Fatalf("tnow-9 = %d", t9.Len())
	}
	// Mid-event view of the same semantics: before MarkEvent of a third
	// event, tnow-1 is the state after the second.
	appendRecorded(s, "T", 4)
	mid, _ := s.Resolve("T", relation.TNow(1))
	if mid.Len() != 3 {
		t.Fatalf("mid-event tnow-1 = %d, want 3", mid.Len())
	}
	// outside a transaction, tnow = live (now 4 rows after the mid-event
	// append above)
	s.Commit()
	tOut, _ := s.Resolve("T", relation.TNow(1))
	if tOut.Len() != 4 {
		t.Fatalf("tnow outside txn = %d", tOut.Len())
	}
}

func TestStoreRollback(t *testing.T) {
	s := NewStore(8)
	s.Put(intRel("T", 1))
	s.Commit()
	s.BeginTxn()
	appendRecorded(s, "T", 2)
	s.MarkEvent()
	if err := s.Rollback(); err != nil {
		t.Fatal(err)
	}
	cur, _ := s.Get("T")
	if cur.Len() != 1 {
		t.Fatalf("post-rollback = %d rows", cur.Len())
	}
	if s.InTxn() {
		t.Fatal("rollback should end the transaction")
	}
}

// Regression (delta-log satellite): a rollback must delete relations
// created after the restored version, and a deeper restore followed by a
// shallower one must revive them — restore is exact in both directions.
func TestStoreRestoreDeletesCreatedRelations(t *testing.T) {
	s := NewStore(8)
	s.Put(intRel("T", 1))
	s.Commit() // v0: only T
	s.Put(intRel("U", 7))
	appendRecorded(s, "T", 2)
	s.Commit() // v1: T={1,2}, U={7}

	if err := s.RestoreVersion(2); err != nil {
		t.Fatal(err)
	}
	if s.Has("U") {
		t.Fatal("restore to v0 should delete U (created at v1)")
	}
	if cur, _ := s.Get("T"); cur.Len() != 1 {
		t.Fatalf("restored T = %d rows, want 1", cur.Len())
	}
	if names := s.Names(); len(names) != 1 || names[0] != "T" {
		t.Fatalf("restored names = %v", names)
	}

	// Redo: a shallower restore revives U with its committed contents.
	if err := s.RestoreVersion(1); err != nil {
		t.Fatal(err)
	}
	u, err := s.Get("U")
	if err != nil || u.Len() != 1 {
		t.Fatalf("revived U = %v, %v", u, err)
	}
	if cur, _ := s.Get("T"); cur.Len() != 2 {
		t.Fatalf("redo T = %d rows, want 2", cur.Len())
	}

	// Rollback after creating a relation mid-window deletes it too.
	s.Commit()
	s.Put(intRel("W", 9))
	s.BeginTxn()
	s.MarkEvent()
	if err := s.Rollback(); err != nil {
		t.Fatal(err)
	}
	if s.Has("W") {
		t.Fatal("rollback should delete W (created after the last commit)")
	}
}

// Resolving a relation at a version before its creation errors, exactly as
// a missing relation in a snapshot did.
func TestStoreResolveBeforeCreation(t *testing.T) {
	s := NewStore(8)
	s.Put(intRel("T", 1))
	s.Commit() // v0
	s.Put(intRel("U", 7))
	s.Commit() // v1
	if _, err := s.Resolve("U", relation.VNow(2)); err == nil {
		t.Fatal("U@vnow-2 predates U's creation and should error")
	}
	u, err := s.Resolve("U", relation.VNow(1))
	if err != nil || u.Len() != 1 {
		t.Fatalf("U@vnow-1 = %v, %v", u, err)
	}
}

func TestStoreHistoryEviction(t *testing.T) {
	s := NewStore(3)
	s.Put(intRel("T"))
	for i := 0; i < 10; i++ {
		appendRecorded(s, "T", int64(i))
		s.Commit()
	}
	if s.Versions() != 3 {
		t.Fatalf("retained versions = %d, want 3", s.Versions())
	}
	// oldest retained = after commit 7 (8 rows)
	v3, err := s.Resolve("T", relation.VNow(3))
	if err != nil {
		t.Fatal(err)
	}
	if v3.Len() != 8 {
		t.Fatalf("oldest retained = %d rows, want 8", v3.Len())
	}
}

// Eviction must never orphan deltas a retained version still reconstructs
// through: the log is trimmed only up to a checkpoint at or before the
// oldest retained commit (delta-log satellite). Exercised across
// checkpoint cadences that divide, exceed, and interleave with the history
// bound, resolving and restoring every retained version after each commit.
func TestStoreEvictionKeepsCheckpointAnchors(t *testing.T) {
	for _, every := range []int{1, 2, 3, 5, 7} {
		s := NewStore(3)
		s.checkpointEvery = every
		s.Put(intRel("T"))
		for i := 0; i < 25; i++ {
			appendRecorded(s, "T", int64(i))
			s.Commit() // version i: T has i+1 rows
			for off := 1; off <= s.Versions(); off++ {
				want := (i + 1) - (off - 1) // rows at vnow-off
				got, err := s.Resolve("T", relation.VNow(off))
				if err != nil {
					t.Fatalf("every=%d commit=%d vnow-%d: %v", every, i, off, err)
				}
				if got.Len() != want {
					t.Fatalf("every=%d commit=%d vnow-%d = %d rows, want %d",
						every, i, off, got.Len(), want)
				}
			}
		}
		// RestoreVersion to the oldest retained version after heavy
		// eviction must reconstruct exactly.
		if err := s.RestoreVersion(3); err != nil {
			t.Fatalf("every=%d: %v", every, err)
		}
		if cur, _ := s.Get("T"); cur.Len() != 23 {
			t.Fatalf("every=%d restored rows = %d, want 23", every, cur.Len())
		}
	}
}

// Property: delta-log rollback round trip — after any sequence of recorded
// appends and a rollback, the store matches the committed state.
func TestStoreRollbackProperty(t *testing.T) {
	f := func(initial []int64, txn []int64) bool {
		s := NewStore(4)
		s.Put(intRel("T", initial...))
		s.Commit()
		s.BeginTxn()
		for _, v := range txn {
			appendRecorded(s, "T", v)
			s.MarkEvent()
		}
		if err := s.Rollback(); err != nil {
			return false
		}
		cur, _ := s.Get("T")
		return cur.Len() == len(initial)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRestoreVersionForUndo(t *testing.T) {
	s := NewStore(8)
	s.Put(intRel("T", 1))
	s.Commit() // v0
	appendRecorded(s, "T", 2)
	s.Commit() // v1
	if err := s.RestoreVersion(2); err != nil {
		t.Fatal(err)
	}
	cur, _ := s.Get("T")
	if cur.Len() != 1 {
		t.Fatalf("post-restore rows = %d, want 1", cur.Len())
	}
	if err := s.RestoreVersion(0); err == nil {
		t.Fatal("RestoreVersion(0) should error")
	}
	if err := s.RestoreVersion(99); err == nil {
		t.Fatal("too-deep restore should error")
	}
}

func TestShiftedCatalog(t *testing.T) {
	s := NewStore(8)
	s.Put(intRel("T", 1))
	s.Commit() // v… T={1}
	appendRecorded(s, "T", 2)
	s.Commit() // T={1,2}
	appendRecorded(s, "T", 3)

	cat := s.CatalogAt(1) // as of last commit
	r, err := cat.Resolve("T", relation.Current())
	if err != nil || r.Len() != 2 {
		t.Fatalf("shifted current = %v, %v", r.Len(), err)
	}
	r, err = cat.Resolve("T", relation.VNow(1))
	if err != nil || r.Len() != 1 {
		t.Fatalf("shifted vnow-1 = %v, %v", r.Len(), err)
	}
}

// The reconstruction cache serves repeated reads of one version without
// re-walking the log, and the versioning counters record the work.
func TestStoreReconstructionCacheAndStats(t *testing.T) {
	s := NewStore(8)
	s.Put(intRel("T", 1))
	s.Commit()
	appendRecorded(s, "T", 2)
	s.Commit()
	appendRecorded(s, "T", 3)

	before := s.Stats()
	a, err := s.Resolve("T", relation.VNow(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Resolve("T", relation.VNow(1))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("repeated resolution of one version should share the cached object")
	}
	after := s.Stats()
	if after.Reconstructions != before.Reconstructions+1 {
		t.Fatalf("reconstructions = %d, want %d", after.Reconstructions, before.Reconstructions+1)
	}
	if after.CacheHits != before.CacheHits+1 {
		t.Fatalf("cache hits = %d, want %d", after.CacheHits, before.CacheHits+1)
	}
	if after.DeltaLogEvents < 2 {
		t.Fatalf("delta log events = %d, want >= 2", after.DeltaLogEvents)
	}
}

// Commit compacts the finished transaction's event boundaries: a long drag
// leaves one log entry per commit window, not one per event, and the
// committed version still resolves exactly.
func TestCommitCompactsEventBoundaries(t *testing.T) {
	s := NewStore(8)
	s.Put(intRel("T", 1))
	s.Commit()
	s.BeginTxn()
	for i := 0; i < 50; i++ {
		appendRecorded(s, "T", int64(i))
		s.MarkEvent()
	}
	s.Commit()
	if got := len(s.entries); got > 3 {
		t.Fatalf("log holds %d entries after compaction, want <= 3", got)
	}
	v1, err := s.Resolve("T", relation.VNow(1))
	if err != nil || v1.Len() != 51 {
		t.Fatalf("vnow-1 = %v, %v (want 51 rows)", v1.Len(), err)
	}
	v2, err := s.Resolve("T", relation.VNow(2))
	if err != nil || v2.Len() != 1 {
		t.Fatalf("vnow-2 = %v, %v (want 1 row)", v2.Len(), err)
	}
}
