package core

import (
	"testing"

	"repro/internal/events"
	"repro/internal/relation"
)

// traceProgram is the paper's DeVIL 4: linked brushing expressed with a
// BACKWARD TRACE instead of manual productId annotations. The scatterplot
// and histogram are both defined over the partition {Sales∖B, B}.
const traceProgram = `
CREATE TABLE Sales (productId int, price float, profit float, revenue float, productName string);
INSERT INTO Sales VALUES
  (1, 40, 0,   0,   'anvil'),
  (2, 55, 50,  25,  'brush'),
  (3, 70, 100, 50,  'cog'),
  (4, 85, 25,  75,  'dynamo'),
  (5, 90, 75,  100, 'easel');

-- The paper's scale_x/scale_y are parameter relations holding the domain
-- bounds (DeVIL 1), not views over Sales; as base relations they are
-- provenance dead ends, so traces follow only the Sales data path.
CREATE TABLE scale_x (lo float, hi float);
INSERT INTO scale_x VALUES (0, 100);
CREATE TABLE scale_y (lo float, hi float);
INSERT INTO scale_y VALUES (0, 100);

SPLOT_POINTS =
  SELECT 8 AS radius, 'gray' AS stroke, 'gray' AS fill,
         linear_scale(Sales.revenue, sx.lo, sx.hi, 20, 380) AS center_x,
         linear_scale(Sales.profit, sy.lo, sy.hi, 280, 20) AS center_y
  FROM Sales, scale_x AS sx, scale_y AS sy;

C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M*, MOUSE_UP AS U
    RETURN (D.t, D.x, D.y, 0 AS dx, 0 AS dy),
           (M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy);

B = BACKWARD TRACE
    FROM SPLOT_POINTS@vnow-1 AS SP, C
    WHERE in_rectangle(SP.center_x, SP.center_y,
          (SELECT min(x) FROM C), (SELECT min(y) FROM C),
          (SELECT max(x + dx) FROM C), (SELECT max(y + dy) FROM C))
    TO Sales;

▷ SPLOT_POINTS without productId
SPLOT_POINTS =
  SELECT 8 AS radius, 'red' AS stroke, 'red' AS fill,
         linear_scale(B.revenue, sx.lo, sx.hi, 20, 380) AS center_x,
         linear_scale(B.profit, sy.lo, sy.hi, 280, 20) AS center_y
  FROM B, scale_x AS sx, scale_y AS sy
  UNION
  SELECT 8 AS radius, 'gray' AS stroke, 'gray' AS fill,
         linear_scale(rest.revenue, sx.lo, sx.hi, 20, 380) AS center_x,
         linear_scale(rest.profit, sy.lo, sy.hi, 280, 20) AS center_y
  FROM (Sales MINUS B) AS rest, scale_x AS sx, scale_y AS sy;

HIST =
  SELECT B.productId * 30 + 10 AS x, 280 - B.price AS y, 20 AS width, B.price AS height, 'red' AS fill
  FROM B
  UNION
  SELECT rest.productId * 30 + 10 AS x, 280 - rest.price AS y, 20 AS width, rest.price AS height, 'blue' AS fill
  FROM (Sales MINUS B) AS rest;

P = render(SELECT * FROM SPLOT_POINTS);
`

func loadTrace(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e := New(cfg)
	if err := e.LoadProgram(traceProgram); err != nil {
		t.Fatalf("load: %v", err)
	}
	return e
}

func TestDeVIL4BackwardTraceBrushing(t *testing.T) {
	for _, cfg := range []Config{{}, {EagerProvenance: true}} {
		e := loadTrace(t, cfg)
		b, err := e.Relation("B")
		if err != nil {
			t.Fatal(err)
		}
		if b.Len() != 0 {
			t.Fatalf("B should start empty, has %d", b.Len())
		}
		if _, err := e.FeedStream(selectDrag(0)); err != nil {
			t.Fatal(err)
		}
		b, _ = e.Relation("B")
		got := ids(t, b, "productId")
		if len(got) != 2 || !got[2] || !got[3] {
			t.Fatalf("eager=%v: B = %v, want {2,3}", cfg.EagerProvenance, got)
		}
		// B carries the full Sales schema — the trace returns base rows,
		// not mark rows.
		if b.Schema.Index("", "productName") < 0 {
			t.Fatalf("B schema = %s", b.Schema)
		}
		// Downstream views partition on B.
		hist, _ := e.Relation("HIST")
		reds := 0
		fills, _ := hist.Column("fill")
		for _, f := range fills {
			if f.AsString() == "red" {
				reds++
			}
		}
		if reds != 2 {
			t.Fatalf("eager=%v: red hist bars = %d, want 2", cfg.EagerProvenance, reds)
		}
	}
}

func TestForwardTrace(t *testing.T) {
	e := loadTrace(t, Config{})
	// Which scatterplot marks derive from product 2?
	rel, err := e.Query("FORWARD TRACE FROM Sales WHERE productId = 2 TO SPLOT_POINTS")
	if err == nil {
		// Query() plans TraceStmt through the planner, which rejects it;
		// forward traces are evaluated as views.
		_ = rel
		t.Fatal("ad-hoc trace through Query should fail (trace requires view context)")
	}
	if err2 := e.Exec("FWD = FORWARD TRACE FROM Sales WHERE productId = 2 TO SPLOT_POINTS"); err2 != nil {
		t.Fatal(err2)
	}
	fwd, err := e.Relation("FWD")
	if err != nil {
		t.Fatal(err)
	}
	if fwd.Len() != 1 {
		t.Fatalf("forward trace rows = %d, want 1\n%s", fwd.Len(), fwd)
	}
	// The traced mark is p2's circle at (110,150).
	cx, _ := fwd.Rows[0][fwd.Schema.Index("", "center_x")].AsFloat()
	cy, _ := fwd.Rows[0][fwd.Schema.Index("", "center_y")].AsFloat()
	if cx != 110 || cy != 150 {
		t.Fatalf("traced mark at (%v,%v), want (110,150)", cx, cy)
	}
}

func TestForwardTraceThroughAggregate(t *testing.T) {
	e := New(Config{})
	if err := e.LoadProgram(`
CREATE TABLE Sales (productId int, region string, revenue float);
INSERT INTO Sales VALUES (1,'east',100),(2,'east',200),(3,'west',150);
TOTALS = SELECT region, sum(revenue) AS total FROM Sales GROUP BY region;
`); err != nil {
		t.Fatal(err)
	}
	if err := e.Exec("FWD = FORWARD TRACE FROM Sales WHERE productId = 1 TO TOTALS"); err != nil {
		t.Fatal(err)
	}
	fwd, _ := e.Relation("FWD")
	if fwd.Len() != 1 {
		t.Fatalf("rows = %d, want 1 (the east group)", fwd.Len())
	}
	if fwd.Rows[0][0].AsString() != "east" {
		t.Fatalf("traced group = %s", fwd.Rows[0][0])
	}
}

func TestBackwardTraceThroughViewChain(t *testing.T) {
	// Trace through two stacked views down to the base table.
	e := New(Config{})
	if err := e.LoadProgram(`
CREATE TABLE Base (id int, v float);
INSERT INTO Base VALUES (1, 10), (2, 20), (3, 30), (4, 40);
MID = SELECT id, v * 2 AS v2 FROM Base WHERE v >= 20;
TOP_V = SELECT id, v2 + 1 AS v3 FROM MID WHERE v2 <= 60;
`); err != nil {
		t.Fatal(err)
	}
	if err := e.Exec("TR = BACKWARD TRACE FROM TOP_V WHERE TOP_V.v3 > 41 TO Base"); err != nil {
		t.Fatal(err)
	}
	tr, _ := e.Relation("TR")
	// TOP_V rows: id2 (v3=41), id3 (v3=61 filtered by MID? v2=60 <= 60 so
	// v3=61)… TOP_V = {id2: 41, id3: 61}; v3 > 41 selects id3 → Base row 3.
	if tr.Len() != 1 {
		t.Fatalf("trace rows = %d, want 1\n%s", tr.Len(), tr)
	}
	if id, _ := tr.Rows[0][0].AsInt(); id != 3 {
		t.Fatalf("traced id = %d, want 3", id)
	}
}

func TestEagerVsLazyProvenanceEquivalent(t *testing.T) {
	lazy := loadTrace(t, Config{})
	eager := loadTrace(t, Config{EagerProvenance: true})
	for _, eng := range []*Engine{lazy, eager} {
		if _, err := eng.FeedStream(selectDrag(0)); err != nil {
			t.Fatal(err)
		}
	}
	lb, _ := lazy.Relation("B")
	eb, _ := eager.Relation("B")
	lc, ec := lb.Clone(), eb.Clone()
	lc.SortDeterministic()
	ec.SortDeterministic()
	if !relation.Equal(lc, ec) {
		t.Fatalf("eager and lazy provenance disagree:\n%s\nvs\n%s", lc, ec)
	}
}

func TestTraceAfterMultipleCommits(t *testing.T) {
	e := loadTrace(t, Config{})
	// Two selections in sequence; the second hit-tests against the marks
	// committed by the first.
	if _, err := e.FeedStream(selectDrag(0)); err != nil {
		t.Fatal(err)
	}
	// Select only p5 at (380,85).
	second := events.Stream{
		events.Mouse(events.MouseDown, 100, 370, 75),
		events.Mouse(events.MouseMove, 101, 390, 95),
		events.Mouse(events.MouseUp, 102, 390, 95),
	}
	if _, err := e.FeedStream(second); err != nil {
		t.Fatal(err)
	}
	b, _ := e.Relation("B")
	got := ids(t, b, "productId")
	if len(got) != 1 || !got[5] {
		t.Fatalf("second selection B = %v, want {5}", got)
	}
}
