package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/exec"
	"repro/internal/parser"
	"repro/internal/relation"
)

// runTrace evaluates a BACKWARD/FORWARD TRACE statement (§3.1, DeVIL 4).
//
// BACKWARD TRACE FROM <rels> WHERE <pred> TO <target> evaluates the join
// among the FROM relations, then traces each contributing row back through
// the view workflow until rows of <target> are reached; the result is the
// contributing sub-relation of <target>.
//
// FORWARD TRACE FROM <rel> WHERE <pred> TO <view> selects rows of the source
// relation and returns the rows of <view> whose lineage includes any of
// them.
func (e *Engine) runTrace(tr *parser.TraceStmt) (*relation.Relation, error) {
	if tr.Backward {
		return e.backwardTrace(tr)
	}
	return e.forwardTrace(tr)
}

func (e *Engine) backwardTrace(tr *parser.TraceStmt) (*relation.Relation, error) {
	// Step 1: evaluate the FROM/WHERE join with scan-level lineage.
	sel := &parser.SelectStmt{
		Items: []parser.SelectItem{{Star: true}},
		From:  tr.From,
		Where: tr.Where,
		Limit: -1,
	}
	ex := e.executor()
	ex.CaptureLineage = true
	res, err := ex.RunQuery(sel)
	if err != nil {
		return nil, fmt.Errorf("trace join: %w", err)
	}

	// Step 2: pool contributing rows per scanned relation.
	contrib := map[string]map[int]bool{}
	for _, lin := range res.Lin {
		for name, rows := range lin {
			m := contrib[strings.ToLower(name)]
			if m == nil {
				m = map[int]bool{}
				contrib[strings.ToLower(name)] = m
			}
			for _, r := range rows {
				m[r] = true
			}
		}
	}

	// Versions the FROM clause read each relation at (exec lineage keys
	// carry only names).
	versions := map[string]relation.VersionRef{}
	for _, ref := range tr.From {
		if ref.Sub == nil {
			versions[strings.ToLower(ref.Name)] = ref.Version
		}
	}

	// Step 3: trace each pool back to the target through view definitions.
	targetRows := map[int]bool{}
	for name, rows := range contrib {
		idxs := setToSlice(rows)
		shift := 0
		if v, ok := versions[name]; ok && v.Kind == relation.VersionVNow {
			shift = v.Offset
		}
		found, err := e.traceToTarget(name, shift, idxs, tr.To, map[string]bool{})
		if err != nil {
			return nil, err
		}
		for _, r := range found {
			targetRows[r] = true
		}
	}

	// Step 4: materialize the contributing sub-relation of the target.
	target, err := e.store.Get(tr.To)
	if err != nil {
		return nil, err
	}
	out := relation.New(tr.To, target.Schema)
	for _, i := range setToSlice(targetRows) {
		if i >= 0 && i < len(target.Rows) {
			out.Rows = append(out.Rows, target.Rows[i])
		}
	}
	return out, nil
}

// traceToTarget resolves row indices of relation name (evaluated at
// vnow-shift) to contributing rows of target, recursing through view
// definitions. visiting guards against malformed cyclic traces.
func (e *Engine) traceToTarget(name string, shift int, rows []int, target string, visiting map[string]bool) ([]int, error) {
	if strings.EqualFold(name, target) {
		return rows, nil
	}
	v, ok := e.views[strings.ToLower(name)]
	if !ok {
		return nil, nil // base relation that is not the target: dead end
	}
	key := fmt.Sprintf("%s@%d", strings.ToLower(name), shift)
	if visiting[key] {
		return nil, fmt.Errorf("trace: cyclic lineage through %s", name)
	}
	visiting[key] = true
	defer delete(visiting, key)

	lin, err := e.viewLineage(v, shift)
	if err != nil {
		return nil, err
	}
	// Pool this view's inputs contributed by the requested rows.
	pools := map[string]map[int]bool{}
	for _, r := range rows {
		if r < 0 || r >= len(lin) {
			continue
		}
		for inName, inRows := range lin[r] {
			m := pools[strings.ToLower(inName)]
			if m == nil {
				m = map[int]bool{}
				pools[strings.ToLower(inName)] = m
			}
			for _, ir := range inRows {
				m[ir] = true
			}
		}
	}
	// Versions the view reads its deps at.
	depVersions := map[string]relation.VersionRef{}
	for _, d := range v.deps {
		depVersions[strings.ToLower(d.name)] = d.version
	}
	var out []int
	for inName, set := range pools {
		childShift := shift
		if dv, ok := depVersions[inName]; ok && dv.Kind == relation.VersionVNow && dv.Offset > 0 {
			childShift += dv.Offset
		}
		found, err := e.traceToTarget(inName, childShift, setToSlice(set), target, visiting)
		if err != nil {
			return nil, err
		}
		out = append(out, found...)
	}
	return out, nil
}

// viewLineage computes (or fetches, under eager provenance) the row-level
// lineage of a view evaluated at vnow-shift. The lineage array is aligned
// to the row order of the materialized relation at that shift: delta
// patching (live) and log reconstruction (history) preserve a view's bag
// of tuples but not necessarily the physical order a fresh evaluation
// produces, so rows are matched by tuple identity.
func (e *Engine) viewLineage(v *view, shift int) ([]exec.Lineage, error) {
	if shift == 0 && v.lin != nil {
		return v.lin, nil // eager index maintained at recompute time
	}
	if v.isTrace {
		return e.traceViewLineage(v, shift)
	}
	cat := e.store.CatalogAt(shift)
	ex := &exec.Executor{Cat: cat, Funcs: e.funcs, CaptureLineage: true}
	res, err := ex.RunQuery(v.query)
	if err != nil {
		return nil, fmt.Errorf("lineage of %s at vnow-%d: %w", v.name, shift, err)
	}
	rel, err := cat.Resolve(v.name, relation.Current())
	if err != nil {
		return res.Lin, nil // view not materialized at this shift: best effort
	}
	return alignLineage(rel, res.Rel, res.Lin), nil
}

// alignLineage reorders per-row lineage computed by re-running a view's
// query so it indexes like the materialized relation callers hold row
// indices into. Matching is by canonical tuple key; equal tuples are
// paired greedily (their lineages are interchangeable at bag level).
func alignLineage(target, run *relation.Relation, lin []exec.Lineage) []exec.Lineage {
	if len(lin) == 0 {
		return lin
	}
	byKey := make(map[string][]int, len(run.Rows))
	for i, row := range run.Rows {
		k := row.Key()
		byKey[k] = append(byKey[k], i)
	}
	out := make([]exec.Lineage, len(target.Rows))
	for i, row := range target.Rows {
		k := row.Key()
		lst := byKey[k]
		if len(lst) == 0 {
			continue // row missing from the re-run (stale state); no lineage
		}
		j := lst[0]
		byKey[k] = lst[1:]
		if j < len(lin) {
			out[i] = lin[j]
		}
	}
	return out
}

// traceViewLineage derives lineage for a TRACE view: its rows are by
// construction rows of the trace target, so each row's lineage is the
// matching target row (by tuple identity).
func (e *Engine) traceViewLineage(v *view, shift int) ([]exec.Lineage, error) {
	tr := v.query.(*parser.TraceStmt)
	cat := e.store.CatalogAt(shift)
	target, err := cat.Resolve(tr.To, relation.Current())
	if err != nil {
		return nil, err
	}
	self, err := cat.Resolve(v.name, relation.Current())
	if err != nil {
		return nil, err
	}
	index := make(map[string][]int, len(target.Rows))
	for i, row := range target.Rows {
		k := row.Key()
		index[k] = append(index[k], i)
	}
	lin := make([]exec.Lineage, len(self.Rows))
	for i, row := range self.Rows {
		lin[i] = exec.Lineage{tr.To: index[row.Key()]}
	}
	return lin, nil
}

func (e *Engine) forwardTrace(tr *parser.TraceStmt) (*relation.Relation, error) {
	if len(tr.From) != 1 || tr.From[0].Sub != nil {
		return nil, fmt.Errorf("FORWARD TRACE requires a single source relation")
	}
	src := tr.From[0]
	// Select the source rows matching the predicate, with lineage back to
	// the source relation itself.
	sel := &parser.SelectStmt{
		Items: []parser.SelectItem{{Star: true}},
		From:  tr.From,
		Where: tr.Where,
		Limit: -1,
	}
	ex := e.executor()
	ex.CaptureLineage = true
	res, err := ex.RunQuery(sel)
	if err != nil {
		return nil, fmt.Errorf("forward trace source: %w", err)
	}
	selected := map[int]bool{}
	for _, lin := range res.Lin {
		for _, r := range lin[src.Name] {
			selected[r] = true
		}
	}

	// Target must be a view; include each of its rows whose backward
	// lineage to the source intersects the selection.
	v, ok := e.views[strings.ToLower(tr.To)]
	if !ok {
		return nil, fmt.Errorf("FORWARD TRACE target %q is not a view", tr.To)
	}
	lin, err := e.viewLineage(v, 0)
	if err != nil {
		return nil, err
	}
	targetRel, err := e.store.Get(tr.To)
	if err != nil {
		return nil, err
	}
	out := relation.New(tr.To, targetRel.Schema)
	for i := range targetRel.Rows {
		if i >= len(lin) {
			break
		}
		base, err := e.rowBaseLineage(v, lin, i, src.Name, map[string]bool{})
		if err != nil {
			return nil, err
		}
		hit := false
		for _, b := range base {
			if selected[b] {
				hit = true
				break
			}
		}
		if hit {
			out.Rows = append(out.Rows, targetRel.Rows[i])
		}
	}
	return out, nil
}

// rowBaseLineage expands one view row's lineage down to a base relation.
func (e *Engine) rowBaseLineage(v *view, lin []exec.Lineage, row int, base string, visiting map[string]bool) ([]int, error) {
	if row < 0 || row >= len(lin) {
		return nil, nil
	}
	var out []int
	for inName, inRows := range lin[row] {
		if strings.EqualFold(inName, base) {
			out = append(out, inRows...)
			continue
		}
		child, ok := e.views[strings.ToLower(inName)]
		if !ok {
			continue
		}
		if visiting[strings.ToLower(inName)] {
			return nil, fmt.Errorf("trace: cyclic lineage through %s", inName)
		}
		visiting[strings.ToLower(inName)] = true
		childLin, err := e.viewLineage(child, 0)
		if err != nil {
			return nil, err
		}
		for _, ir := range inRows {
			found, err := e.rowBaseLineage(child, childLin, ir, base, visiting)
			if err != nil {
				return nil, err
			}
			out = append(out, found...)
		}
		delete(visiting, strings.ToLower(inName))
	}
	return out, nil
}

func setToSlice(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
