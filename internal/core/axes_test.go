package core

import (
	"testing"

	"repro/internal/render"
)

// Axes and labels are plain marks relations too (§2.1.1: "Similar selection
// queries and render functions can be used to define the static
// visualizations of the histogram and axes"). This test builds a chart with
// line-mark axes and text-mark labels through DeVIL alone.
func TestAxesAndLabelsAsMarks(t *testing.T) {
	e := New(Config{Width: 300, Height: 200})
	if err := e.LoadProgram(`
CREATE TABLE Data (id int, v float);
INSERT INTO Data VALUES (1, 40), (2, 90), (3, 140);

AXES = SELECT 20 AS x1, 180 AS y1, 280 AS x2, 180 AS y2, 'black' AS stroke
       UNION ALL
       SELECT 20 AS x1, 20 AS y1, 20 AS x2, 180 AS y2, 'black' AS stroke;

LABELS = SELECT 10 AS x, 8 AS y, 'Y' AS text, 'black' AS fill
         UNION ALL
         SELECT 270 AS x, 188 AS y, 'X' AS text, 'black' AS fill;

BARS = SELECT id * 60 AS x, 180 - v AS y, 30 AS width, v AS height, 'steelblue' AS fill
       FROM Data;

P1 = render(SELECT * FROM AXES, 'line');
P2 = render(SELECT * FROM BARS, 'rect');
P3 = render(SELECT * FROM LABELS, 'text');
`); err != nil {
		t.Fatal(err)
	}
	img := e.Image()
	// axis pixels
	if img.At(150, 180) != (render.RGBA{R: 0, G: 0, B: 0, A: 255}) {
		t.Fatalf("x-axis pixel = %+v", img.At(150, 180))
	}
	if img.At(20, 100) != (render.RGBA{R: 0, G: 0, B: 0, A: 255}) {
		t.Fatalf("y-axis pixel = %+v", img.At(20, 100))
	}
	// a bar pixel
	bar := img.At(75, 160)
	if bar.B < 100 {
		t.Fatalf("bar pixel = %+v", bar)
	}
	// labels produced some ink near their anchors
	label := false
	for x := 8; x < 18; x++ {
		for y := 6; y < 16; y++ {
			if img.At(x, y) != (render.RGBA{R: 255, G: 255, B: 255, A: 255}) {
				label = true
			}
		}
	}
	if !label {
		t.Fatal("label text did not render")
	}
	// render sinks stack in definition order: bars paint over the axis
	// where they overlap, text on top of everything.
	if e.Stats.RenderPasses == 0 {
		t.Fatal("no render pass recorded")
	}
}

// MaxHistory bounds the committed version chain through the engine config.
func TestEngineMaxHistory(t *testing.T) {
	e := New(Config{MaxHistory: 3})
	if err := e.LoadProgram(`
CREATE TABLE T (v int);
INSERT INTO T VALUES (0);
`); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := e.Exec("INSERT INTO T VALUES (1)"); err != nil {
			t.Fatal(err)
		}
		e.Commit()
	}
	if got := e.Store().Versions(); got != 3 {
		t.Fatalf("retained versions = %d, want 3", got)
	}
}
