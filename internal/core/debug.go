package core

import (
	"fmt"
	"strings"

	"repro/internal/plan"
	"repro/internal/relation"
)

// Deconstruct recovers, for every row of a marks view, the base-relation
// rows that generated it — the provenance-native version of Harper &
// Agrawala's D3 deconstruction (§3.1): "Native provenance support can
// support such restyling techniques out of the box." The result joins each
// mark's attributes (qualified by the view name) with its source row's
// attributes (qualified by the base name); a mark derived from k base rows
// yields k output rows.
//
// Restyling is then just another DeVIL view over the deconstructed
// relation, with new visual encodings.
func (e *Engine) Deconstruct(markView, base string) (*relation.Relation, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.views[strings.ToLower(markView)]
	if !ok {
		return nil, fmt.Errorf("deconstruct: %q is not a view", markView)
	}
	baseRel, err := e.store.Get(base)
	if err != nil {
		return nil, err
	}
	marks, err := e.store.Get(markView)
	if err != nil {
		return nil, err
	}
	lin, err := e.viewLineage(v, 0)
	if err != nil {
		return nil, err
	}
	out := relation.New(
		markView+"_data",
		marks.Schema.Qualify(markView).Concat(baseRel.Schema.Qualify(base)),
	)
	for i, markRow := range marks.Rows {
		if i >= len(lin) {
			break
		}
		srcRows, err := e.rowBaseLineage(v, lin, i, base, map[string]bool{})
		if err != nil {
			return nil, err
		}
		for _, bi := range srcRows {
			if bi < 0 || bi >= len(baseRel.Rows) {
				continue
			}
			joined := make(relation.Tuple, 0, len(markRow)+len(baseRel.Rows[bi]))
			joined = append(joined, markRow...)
			joined = append(joined, baseRel.Rows[bi]...)
			out.Rows = append(out.Rows, joined)
		}
	}
	return out, nil
}

// ExplainView returns the optimized logical plan of a view, the
// inspection surface for the paper's interaction-debugging use case
// ("provenance can identify input-output dependencies between operators of
// the workflow").
func (e *Engine) ExplainView(name string) (string, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.views[strings.ToLower(name)]
	if !ok {
		return "", fmt.Errorf("explain: %q is not a view", name)
	}
	if v.isTrace {
		return fmt.Sprintf("TraceView %s (evaluated by the provenance tracer)\n", v.name), nil
	}
	p, err := plan.Build(v.query, e.catalog())
	if err != nil {
		return "", err
	}
	p = plan.Optimize(p, e.funcs)
	return plan.Format(p), nil
}

// DebugReport exposes the state of the visualization workflow for
// inspection — the first debugging operation of §3.1: data, marks, and
// event relations with row counts, view dependencies in evaluation order,
// recognizer states, and version history depth.
func (e *Engine) DebugReport() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var b strings.Builder
	b.WriteString("=== DVMS debug report ===\n")
	fmt.Fprintf(&b, "committed versions: %d; in transaction: %v\n",
		e.store.Versions(), e.store.InTxn())
	b.WriteString("\nrelations:\n")
	for _, name := range e.store.Names() {
		rel, err := e.store.Get(name)
		if err != nil {
			continue
		}
		kind := "base"
		if v, ok := e.views[strings.ToLower(name)]; ok {
			switch {
			case v.isTrace:
				kind = "trace view"
			case v.renderAs != nil:
				kind = "render sink"
			default:
				kind = "view"
			}
		}
		fmt.Fprintf(&b, "  %-24s %-11s %6d rows %s\n", name, kind, rel.Len(), rel.Schema)
	}
	b.WriteString("\nevaluation order and dependencies:\n")
	for _, name := range e.topo {
		v := e.views[strings.ToLower(name)]
		var deps []string
		for _, d := range v.deps {
			deps = append(deps, d.name+d.version.String())
		}
		fmt.Fprintf(&b, "  %-24s <- %s\n", name, strings.Join(deps, ", "))
	}
	if len(e.recognizers) > 0 {
		b.WriteString("\ninteractions:\n")
		for _, r := range e.recognizers {
			state := "idle"
			if r.Active() {
				state = "matching"
			}
			fmt.Fprintf(&b, "  %-24s starts on %-12s %s\n", r.Name(), r.FirstType(), state)
		}
	}
	if len(e.warnings) > 0 {
		b.WriteString("\nstatic-analysis warnings:\n")
		for _, w := range e.warnings {
			fmt.Fprintf(&b, "  %s\n", w)
		}
	}
	fmt.Fprintf(&b, "\nstats: %d view recomputes, %d render passes, %d events (%d filtered), %d commits, %d aborts\n",
		e.Stats.ViewRecomputes, e.Stats.RenderPasses, e.Stats.EventsFed,
		e.Stats.EventsFiltered, e.Stats.Commits, e.Stats.Aborts)
	fmt.Fprintf(&b, "delta: %d delta applies (%d rows in, %d rows out), %d full fallbacks, %d empty-delta skips, %d render skips\n",
		e.Stats.ViewDeltaApplies, e.Stats.DeltaRowsIn, e.Stats.DeltaRowsOut,
		e.Stats.FullFallbacks, e.Stats.EmptyDeltaSkips, e.Stats.RenderSkips)
	return b.String()
}

// Lineage exposes row-level lineage of a view for hosts (explanation
// engines, §3.1's "visualization explanation" use case): for each output
// row index in rows, the contributing row indices of the base relation.
func (e *Engine) Lineage(view string, rows []int, base string) ([][]int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.views[strings.ToLower(view)]
	if !ok {
		return nil, fmt.Errorf("lineage: %q is not a view", view)
	}
	lin, err := e.viewLineage(v, 0)
	if err != nil {
		return nil, err
	}
	out := make([][]int, len(rows))
	for i, r := range rows {
		src, err := e.rowBaseLineage(v, lin, r, base, map[string]bool{})
		if err != nil {
			return nil, err
		}
		out[i] = src
	}
	return out, nil
}
