package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/parser"
	"repro/internal/relation"
)

// dep is one relation referenced by a view definition, with the version it
// is read at. Live deps (current version, or tnow which changes per event)
// drive recomputation and participate in cycle detection; frozen deps
// (@vnow-i, i ≥ 1) read committed history and legally break recursion, the
// exact mechanism DeVIL 3 relies on.
type dep struct {
	name    string
	version relation.VersionRef
}

// live reports whether changes to the referenced relation must trigger
// recomputation of the referencing view.
func (d dep) live() bool {
	switch d.version.Kind {
	case relation.VersionCurrent:
		return true
	case relation.VersionVNow:
		return d.version.Offset == 0
	case relation.VersionTNow:
		// tnow snapshots advance with every event, so the view must
		// recompute per event, but it never reads the value being
		// recomputed — it is not a recursion edge.
		return true
	default:
		return false
	}
}

// cyclic reports whether the dep participates in recursion detection: only
// reads of the live value do.
func (d dep) cyclic() bool {
	return d.version.Kind == relation.VersionCurrent ||
		(d.version.Kind == relation.VersionVNow && d.version.Offset == 0)
}

// queryDeps collects every relation referenced by a query: FROM clauses,
// IN sources, scalar subqueries, and TRACE inputs/targets.
func queryDeps(q parser.QueryExpr) []dep {
	var out []dep
	collectQueryDeps(q, &out)
	// dedupe, keeping the "most live" version per name (a view reading
	// both R and R@vnow-1 must still recompute when R changes).
	byName := map[string]dep{}
	var order []string
	for _, d := range out {
		k := strings.ToLower(d.name)
		prev, ok := byName[k]
		if !ok {
			byName[k] = d
			order = append(order, k)
			continue
		}
		if d.live() && !prev.live() {
			byName[k] = d
		}
	}
	sort.Strings(order)
	dedup := make([]dep, 0, len(order))
	for _, k := range order {
		dedup = append(dedup, byName[k])
	}
	return dedup
}

func collectQueryDeps(q parser.QueryExpr, out *[]dep) {
	switch n := q.(type) {
	case *parser.SelectStmt:
		for _, ref := range n.From {
			collectRefDeps(ref, out)
		}
		collectExprDeps(n.Where, out)
		for _, it := range n.Items {
			collectExprDeps(it.Expr, out)
		}
		for _, g := range n.GroupBy {
			collectExprDeps(g, out)
		}
		collectExprDeps(n.Having, out)
		for _, o := range n.OrderBy {
			collectExprDeps(o.Expr, out)
		}
	case *parser.SetOp:
		collectQueryDeps(n.L, out)
		collectQueryDeps(n.R, out)
	case *parser.RenderStmt:
		collectQueryDeps(n.Inner, out)
	case *parser.TraceStmt:
		for _, ref := range n.From {
			collectRefDeps(ref, out)
		}
		collectExprDeps(n.Where, out)
		*out = append(*out, dep{name: n.To})
	case *parser.RelRefQuery:
		collectRefDeps(n.Ref, out)
	}
}

func collectRefDeps(ref parser.TableRef, out *[]dep) {
	if ref.Sub != nil {
		collectQueryDeps(ref.Sub, out)
		return
	}
	*out = append(*out, dep{name: ref.Name, version: ref.Version})
}

func collectExprDeps(e expr.Expr, out *[]dep) {
	if e == nil {
		return
	}
	expr.Walk(e, func(x expr.Expr) bool {
		switch n := x.(type) {
		case *expr.In:
			switch src := n.Source.(type) {
			case *expr.RelationSource:
				*out = append(*out, dep{name: src.Name, version: src.Version})
			case *expr.Subquery:
				if q, ok := src.Query.(parser.QueryExpr); ok {
					collectQueryDeps(q, out)
				}
			}
		case *expr.Subquery:
			if q, ok := n.Query.(parser.QueryExpr); ok {
				collectQueryDeps(q, out)
			}
		}
		return true
	})
}

// view is one DeVIL assignment statement: a named, materialized view with
// its definition and dependency list.
type view struct {
	name  string
	query parser.QueryExpr
	deps  []dep
	// renderAs is non-nil when the definition wraps render(): the view's
	// result is also rasterized into the engine image.
	renderAs *renderSink
	// isTrace marks BACKWARD/FORWARD TRACE definitions, evaluated by the
	// provenance tracer instead of the query executor.
	isTrace bool
	// lin is the eagerly materialized lineage index (per output row), kept
	// current by recomputeView when Config.EagerProvenance is set. Lazy
	// provenance (the default) leaves it nil and recomputes lineage on
	// demand — the paper's observation that most lineage feeds filters and
	// aggregates and need not be materialized (§3.1).
	lin []exec.Lineage
	// prepared is the view's bound plan: built, optimized, and compiled once
	// (on first recompute after definition), then reused across every
	// recompute of the interaction loop. Schemas are the only thing binding
	// depends on, so the engine drops all cached plans whenever any view is
	// (re)defined; data changes never invalidate it.
	prepared *exec.Prepared
}

// renderSink describes one render() call: which mark type to use (empty =
// infer from schema).
type renderSink struct {
	markType string
}

// topoOrder sorts view names so every view appears after the views it
// (cyclically) depends on. Frozen deps are excluded, so DeVIL 3-style mutual
// references through @vnow-1 order correctly. Returns an error naming the
// cycle if recursion through live references exists — the static analysis
// rule of §2.1.2 ("DeVIL disallows recursive statements").
func topoOrder(views map[string]*view, order []string) ([]string, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(views))
	var out []string
	var visit func(name string, path []string) error
	visit = func(name string, path []string) error {
		k := strings.ToLower(name)
		v, ok := views[k]
		if !ok {
			return nil // base relation
		}
		switch color[k] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("recursive view definition: %s (use @vnow-i or @tnow-j to reference past versions)",
				strings.Join(append(path, v.name), " -> "))
		}
		color[k] = gray
		for _, d := range v.deps {
			if !d.cyclic() {
				continue
			}
			if strings.EqualFold(d.name, v.name) {
				return fmt.Errorf("view %s references itself at the current version; use @vnow-i or @tnow-j", v.name)
			}
			if err := visit(d.name, append(path, v.name)); err != nil {
				return err
			}
		}
		color[k] = black
		out = append(out, v.name)
		return nil
	}
	for _, name := range order {
		if err := visit(name, nil); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// dependents inverts the dependency graph over live edges: for each relation
// name (lowercase), the views that must recompute when it changes.
func dependents(views map[string]*view) map[string][]string {
	out := map[string][]string{}
	for _, v := range views {
		for _, d := range v.deps {
			if !d.live() {
				continue
			}
			k := strings.ToLower(d.name)
			out[k] = append(out[k], v.name)
		}
	}
	for k := range out {
		sort.Strings(out[k])
	}
	return out
}
