package core

// BenchmarkVersioning measures the per-event cost of version-history
// maintenance: the delta-log MarkEvent (seal the recorded deltas of one
// brush event) against the snapshot baseline (the pre-refactor MarkEvent:
// shallow-copy every relation). The delta-log arm's cost tracks the event
// delta (a couple dozen rows) regardless of database size; the snapshot
// arm's cost tracks the database. Regenerate with `make bench-version`.

import (
	"fmt"
	"testing"

	"repro/internal/relation"
)

// capture shallow-copies the entire current state — the pre-refactor
// MarkEvent mechanism the baseline arm measures.
func capture(s *Store) snapshot {
	snap := make(snapshot, len(s.rels))
	for k, r := range s.rels {
		snap[k] = r.Snapshot()
	}
	return snap
}

// benchDB builds a store shaped like the IVM crossfilter mid-drag: one
// n-row base relation, a handful of small chart views, and an open
// transaction.
func benchDB(n int) (*Store, *relation.Relation) {
	s := NewStore(64)
	base := relation.New("Sales", relation.NewSchema(
		relation.Col("id", relation.KindInt),
		relation.Col("month", relation.KindInt),
		relation.Col("revenue", relation.KindInt),
	))
	base.Rows = make([]relation.Tuple, n)
	for i := 0; i < n; i++ {
		base.Rows[i] = relation.Tuple{
			relation.Int(int64(i)), relation.Int(int64(i%12 + 1)), relation.Int(int64(i % 997)),
		}
	}
	s.Put(base)
	barSchema := relation.NewSchema(relation.Col("grp", relation.KindInt), relation.Col("total", relation.KindInt))
	for c := 0; c < 5; c++ {
		chart := relation.New(fmt.Sprintf("CHART_%d", c), barSchema)
		for g := 0; g < 12; g++ {
			chart.MustAppend(relation.Tuple{relation.Int(int64(g)), relation.Int(int64(g * 1000))})
		}
		s.Put(chart)
	}
	s.Commit()
	s.BeginTxn()
	bars, _ := s.Get("CHART_0")
	return s, bars
}

// brushDelta is the per-event change of a single-bar brush step: one bar's
// total leaves, the updated total arrives.
func brushDelta(bars *relation.Relation, step int) relation.Delta {
	old := bars.Rows[step%len(bars.Rows)]
	upd := relation.Tuple{old[0], relation.Int(int64(step))}
	return relation.Delta{Del: []relation.Tuple{old}, Ins: []relation.Tuple{upd}}
}

func BenchmarkVersioning(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("n%d/markevent-delta-log", n), func(b *testing.B) {
			s, bars := benchDB(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := brushDelta(bars, i)
				if err := bars.ApplyDelta(d); err != nil {
					b.Fatal(err)
				}
				s.recordChange("CHART_0", d)
				s.MarkEvent()
			}
		})
		b.Run(fmt.Sprintf("n%d/markevent-snapshot-baseline", n), func(b *testing.B) {
			s, bars := benchDB(n)
			hist := make([]snapshot, 0, b.N)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := brushDelta(bars, i)
				if err := bars.ApplyDelta(d); err != nil {
					b.Fatal(err)
				}
				// The pre-refactor MarkEvent: capture every relation.
				hist = append(hist, capture(s))
			}
			_ = hist
		})
		// Resolution cost of the versions the log reconstructs on demand:
		// the common @tnow-1 read mid-drag (after a long marked history).
		b.Run(fmt.Sprintf("n%d/resolve-tnow1", n), func(b *testing.B) {
			s, bars := benchDB(n)
			for i := 0; i < 50; i++ {
				d := brushDelta(bars, i)
				if err := bars.ApplyDelta(d); err != nil {
					b.Fatal(err)
				}
				s.recordChange("CHART_0", d)
				s.MarkEvent()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Resolve("CHART_0", relation.TNow(1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
