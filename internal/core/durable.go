package core

// Durable delta log: the store's sealed windows and control operations
// stream into a wal.Log, and recovery replays them through the store's own
// sealing machinery — the store is deterministic given the operation
// sequence, so checkpoints, window compaction, history trimming, and the
// whole @vnow/@tnow reconstruction apparatus rebuild themselves instead of
// being serialized.

import (
	"fmt"

	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/wal"
)

// AttachWAL streams this engine's store boundaries into the log and
// installs the store's checkpoint provider for segment rotation. Attach on
// a fresh engine before loading the program (so the load itself is logged)
// or immediately after RecoverEngine (the recovered history is already on
// disk). Append failures are sticky inside the log: the engine keeps
// running in memory and the host reads log.Err() to learn durability was
// lost.
func (e *Engine) AttachWAL(l *wal.Log) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.store.sink = func(r wal.Record) { _ = l.Append(r) }
	l.SetCheckpointFunc(e.store.walCheckpoint)
	// Route the log's append/fsync latency histograms into this engine's
	// metrics registry (nil registry on the DisableObs arm disables them).
	l.SetObs(e.obs.Registry())
}

// DetachWAL stops logging (used by graceful shutdown after the final seal).
func (e *Engine) DetachWAL() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.store.sink = nil
}

// CheckpointProvider exposes the store's rotation snapshot provider so hosts
// that journal extra state (the server's session journals) can wrap it
// before installing their own via SetCheckpointFunc. The provider is invoked
// from inside Append — wrappers must not take the engine lock.
func (e *Engine) CheckpointProvider() func() *wal.CheckpointRecord {
	return e.store.walCheckpoint
}

// ReplayWAL rebuilds the store's state from a recovery: the checkpoint (if
// any) seeds the oldest committed version, then every record replays
// through the store's own boundary machinery. The store must be fresh and
// must not have a wal sink attached (the records being replayed are already
// on disk).
func (s *Store) ReplayWAL(rec *wal.Recovery) error {
	if s.sink != nil {
		return fmt.Errorf("wal replay: detach the sink first (replayed records are already logged)")
	}
	if len(s.entries) > 0 || len(s.rels) > 0 {
		return fmt.Errorf("wal replay: store is not fresh")
	}
	if cp := rec.Checkpoint; cp != nil {
		for _, r := range cp.Rels {
			s.Put(r.Snapshot())
		}
		if cp.Commits > 0 {
			// Committing the seeded state below makes it version cp.Commits-1,
			// so version numbering continues exactly where the crashed process
			// left off; older versions are beyond the retained horizon and
			// @vnow clamps to the checkpoint.
			s.droppedCommits = cp.Commits - 1
		}
		s.Commit()
	}
	for i, r := range rec.Records {
		if err := s.applyWALRecord(r); err != nil {
			return fmt.Errorf("wal replay: record %d: %w", i, err)
		}
	}
	return nil
}

func (s *Store) applyWALRecord(r wal.Record) error {
	switch rr := r.(type) {
	case *wal.ChangeRecord:
		return s.applyWALChange(rr)
	case *wal.ControlRecord:
		if rr.Op == wal.CtlRollback {
			return s.Rollback()
		}
		return s.RestoreVersion(rr.Version)
	default:
		// Mid-stream checkpoints restate state already derived; session
		// records have no store effect.
		return nil
	}
}

// applyWALChange re-imposes one sealed window onto the live state — created
// relations installed in creation order, wholesale resets re-put, deltas
// re-applied and re-recorded — then drives the matching boundary call so the
// store seals it exactly as the original process did.
func (s *Store) applyWALChange(rec *wal.ChangeRecord) error {
	resets := make(map[string]*relation.Relation, len(rec.Resets))
	for _, r := range rec.Resets {
		resets[keyOf(r.Name)] = r
	}
	createdSet := make(map[string]bool, len(rec.Created))
	for _, name := range rec.Created {
		k := keyOf(name)
		createdSet[k] = true
		r, ok := resets[k]
		if !ok {
			return fmt.Errorf("created relation %q has no captured contents", name)
		}
		s.Put(r.Snapshot())
	}
	for _, r := range rec.Resets {
		if createdSet[keyOf(r.Name)] {
			continue
		}
		s.Put(r.Snapshot()) // existing name: Put records the unknown change
	}
	for _, nd := range rec.Deltas {
		rel, err := s.Get(nd.Name)
		if err != nil {
			return err
		}
		if err := rel.ApplyDelta(nd.Delta); err != nil {
			return fmt.Errorf("relation %s: %w", nd.Name, err)
		}
		s.recordChange(nd.Name, nd.Delta)
	}
	switch rec.Seal {
	case wal.SealCommit:
		s.Commit()
	case wal.SealBegin:
		s.BeginTxn()
	case wal.SealEvent:
		s.MarkEvent()
	case wal.SealBarrier:
		// The preceding CtlRestore record set pendResetAll, so this seals
		// the same restore-barrier boundary the original process did.
		s.SealRestoreBarrier()
	default:
		return fmt.Errorf("unknown seal op %d", rec.Seal)
	}
	return nil
}

// RecoverEngine rebuilds an engine from a recovered WAL plus the DeVIL
// program that produced it: the store replays the log; an interaction left
// in flight by the crash is rolled back (crashing aborts the interaction —
// clients re-drive it by session replay); the program then reinstalls
// definitions in recovery mode — CREATE TABLE and EVENT tables that already
// exist are adopted, INSERT/DELETE are skipped (their effects are in the
// log), views whose contents were recovered keep them and views the program
// added since the log was written materialize fresh. Ordered views re-sort
// (replay restores bags, not row order) and the scene re-renders. No final
// commit: the recovered history already ends at one.
func RecoverEngine(cfg Config, program string, rec *wal.Recovery) (*Engine, error) {
	return recoverEngine(cfg, rec, func(e *Engine) error { return e.execSrc(program) })
}

// RecoverEngineParsed is RecoverEngine over already-parsed statements — the
// server recovers its shared engine from the split program's shared
// partition.
func RecoverEngineParsed(cfg Config, stmts []parser.Statement, rec *wal.Recovery) (*Engine, error) {
	return recoverEngine(cfg, rec, func(e *Engine) error {
		for _, st := range stmts {
			if err := e.execStmt(st); err != nil {
				return err
			}
		}
		return nil
	})
}

func recoverEngine(cfg Config, rec *wal.Recovery, reload func(*Engine) error) (*Engine, error) {
	if rec.Checkpoint == nil && len(rec.Records) == 0 {
		// Recovery mode would skip the program's INSERTs (their effects are
		// assumed to be in the log), so "recovering" an empty log silently
		// yields empty tables. Refuse: an empty log means nothing durable
		// exists yet, and the host must boot fresh with the sink attached
		// before LoadProgram so the load itself becomes record one.
		return nil, fmt.Errorf("recover: empty log; boot fresh (AttachWAL before LoadProgram) instead")
	}
	e := New(cfg)
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.store.ReplayWAL(rec); err != nil {
		return nil, err
	}
	if e.store.InTxn() && e.store.Versions() > 0 {
		if err := e.store.Rollback(); err != nil {
			return nil, fmt.Errorf("recover: abort in-flight interaction: %w", err)
		}
	}
	e.recovering = true
	err := reload(e)
	e.recovering = false
	if err != nil {
		return nil, fmt.Errorf("recover: reload program: %w", err)
	}
	if err := e.restoreOrderedViews(); err != nil {
		return nil, err
	}
	if err := e.render(); err != nil {
		return nil, err
	}
	return e, nil
}

// OpenDurableEngine is the host entry point for a durable engine: open (and
// repair) the log under opts, then either boot fresh — empty log, with the
// sink attached before the program loads so the load is record one — or
// recover the previous process's state and resume logging. The returned
// report describes any repair the open performed (torn tails, dropped
// segments); callers surface it and keep serving.
func OpenDurableEngine(cfg Config, program string, opts wal.Options) (*Engine, *wal.Log, wal.Report, error) {
	l, rec, err := wal.Open(opts)
	if err != nil {
		return nil, nil, wal.Report{}, err
	}
	if rec.Checkpoint == nil && len(rec.Records) == 0 {
		e := New(cfg)
		e.AttachWAL(l)
		if err := e.LoadProgram(program); err != nil {
			l.Close()
			return nil, nil, rec.Report, err
		}
		return e, l, rec.Report, nil
	}
	e, err := RecoverEngine(cfg, program, rec)
	if err != nil {
		l.Close()
		return nil, nil, rec.Report, err
	}
	e.AttachWAL(l)
	return e, l, rec.Report, nil
}
