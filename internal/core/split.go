package core

// Program partitioning for multi-client serving. A DeVIL program mixes two
// kinds of state: the shared database every client sees the same way (base
// tables, their bulk loads, and views that depend only on them — the
// "selection-independent" charts), and the per-client interaction state
// (compound event tables, selection views derived from them, and render
// sinks, whose framebuffer is inherently per-client). SplitProgram
// classifies each statement so a server can load the shared part once into
// one engine and replay only the private part into every session.

import (
	"fmt"
	"strings"

	"repro/internal/parser"
)

// ProgramSplit is a DeVIL program partitioned for serving.
type ProgramSplit struct {
	// Shared statements load once into the server's base engine: DDL,
	// INSERT/DELETE bulk loads, and views whose transitive dependencies are
	// all shared.
	Shared []parser.Statement
	// Private statements replay into each session's engine: EVENT
	// definitions, views that (transitively) read interaction state, and
	// every render sink.
	Private []parser.Statement
	// SharedNames / PrivateNames index the classification by lowercase
	// relation name. SharedNames doubles as the share-eligibility predicate
	// for the executor's state registry.
	SharedNames  map[string]bool
	PrivateNames map[string]bool
}

// SplitProgram parses and partitions a DeVIL program. It errors on shapes
// serving cannot support: a write statement reading private state, or a
// redefinition that would move a name between the shared and private
// partitions.
func SplitProgram(src string) (*ProgramSplit, error) {
	stmts, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	out := &ProgramSplit{
		SharedNames:  map[string]bool{},
		PrivateNames: map[string]bool{},
	}
	for _, s := range stmts {
		if err := out.classify(s); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (ps *ProgramSplit) classify(s parser.Statement) error {
	switch n := s.(type) {
	case *parser.CreateTableStmt:
		ps.SharedNames[strings.ToLower(n.Name)] = true
		ps.Shared = append(ps.Shared, s)
		return nil
	case *parser.EventStmt:
		ps.PrivateNames[strings.ToLower(n.Name)] = true
		ps.Private = append(ps.Private, s)
		return nil
	case *parser.InsertStmt:
		if deps := ps.privateDepsOf(queryStmtDeps(s)); len(deps) > 0 {
			return fmt.Errorf("server split: INSERT INTO %s reads private state (%s); shared writes may only read shared relations", n.Table, strings.Join(deps, ", "))
		}
		if ps.PrivateNames[strings.ToLower(n.Table)] {
			return fmt.Errorf("server split: INSERT INTO %s targets per-session state; feed events instead", n.Table)
		}
		ps.Shared = append(ps.Shared, s)
		return nil
	case *parser.DeleteStmt:
		if ps.PrivateNames[strings.ToLower(n.Table)] {
			return fmt.Errorf("server split: DELETE FROM %s targets per-session state", n.Table)
		}
		ps.Shared = append(ps.Shared, s)
		return nil
	case *parser.AssignStmt:
		if n.Name == "" {
			// Bare top-level SELECT: evaluated and discarded; replay per
			// session (it may read private state, and has no shared effect).
			ps.Private = append(ps.Private, s)
			return nil
		}
		k := strings.ToLower(n.Name)
		private := ps.isPrivateView(n)
		if ps.SharedNames[k] && private {
			return fmt.Errorf("server split: view %s was shared but its redefinition reads private state", n.Name)
		}
		if ps.PrivateNames[k] && !private {
			// Once private, a name stays private: sessions already own it.
			private = true
		}
		if private {
			ps.PrivateNames[k] = true
			ps.Private = append(ps.Private, s)
		} else {
			ps.SharedNames[k] = true
			ps.Shared = append(ps.Shared, s)
		}
		return nil
	default:
		return fmt.Errorf("server split: unsupported statement %T", s)
	}
}

// isPrivateView decides a view's partition: private when it renders (the
// framebuffer is per-session), traces (the provenance tracer walks the
// session's view graph), or reads any private relation — directly or
// through an already-private view.
func (ps *ProgramSplit) isPrivateView(n *parser.AssignStmt) bool {
	if _, ok := n.Query.(*parser.RenderStmt); ok {
		return true
	}
	if _, ok := n.Query.(*parser.TraceStmt); ok {
		return true
	}
	return len(ps.privateDepsOf(queryDeps(n.Query))) > 0
}

// privateDepsOf filters a dependency list down to private names.
func (ps *ProgramSplit) privateDepsOf(deps []dep) []string {
	var out []string
	for _, d := range deps {
		if ps.PrivateNames[strings.ToLower(d.name)] {
			out = append(out, d.name)
		}
	}
	return out
}

// queryStmtDeps collects the relations an INSERT's source query reads (nil
// for VALUES inserts).
func queryStmtDeps(s parser.Statement) []dep {
	n, ok := s.(*parser.InsertStmt)
	if !ok || n.Query == nil {
		return nil
	}
	return queryDeps(n.Query)
}
