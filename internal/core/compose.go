package core

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/parser"
)

// MergeFunc rewrites the RETURN groups of a sequential composition, the
// paper's merge(I1, I2) → Icombined (§2.1.2 "Composition of Interactions").
// It receives I1's groups and I2's alias-renamed groups and returns the
// combined statement's groups; the default merge concatenates them, which
// requires union-compatible arities.
type MergeFunc func(g1, g2 [][]parser.SelectItem) ([][]parser.SelectItem, error)

// DefaultMerge concatenates both interactions' RETURN groups.
func DefaultMerge(g1, g2 [][]parser.SelectItem) ([][]parser.SelectItem, error) {
	if len(g1) > 0 && len(g2) > 0 && len(g1[0]) != len(g2[0]) {
		return nil, fmt.Errorf(
			"interactions have incompatible RETURN arities (%d vs %d); supply an explicit merge function",
			len(g1[0]), len(g2[0]))
	}
	return append(append([][]parser.SelectItem{}, g1...), g2...), nil
}

// ComposeSequential builds the sequential composition I1 + I2: the combined
// pattern matches I1's event sequence followed by I2's. Alias collisions in
// I2 are renamed (suffix "_2") and all of I2's predicates and projections
// are rewritten accordingly — I2's statements retain read access to I1's
// bindings, the paper's requirement for e.g. brush-then-drag.
func ComposeSequential(name string, i1, i2 *parser.EventStmt, merge MergeFunc) (*parser.EventStmt, error) {
	if merge == nil {
		merge = DefaultMerge
	}
	used := map[string]bool{}
	for _, el := range i1.Seq {
		used[strings.ToLower(el.Alias)] = true
	}
	rename := map[string]string{}
	var seq []parser.SeqElem
	seq = append(seq, i1.Seq...)
	for _, el := range i2.Seq {
		alias := el.Alias
		if used[strings.ToLower(alias)] {
			alias = alias + "_2"
			for used[strings.ToLower(alias)] {
				alias += "_2"
			}
			rename[strings.ToLower(el.Alias)] = alias
		}
		used[strings.ToLower(alias)] = true
		seq = append(seq, parser.SeqElem{Type: el.Type, Alias: alias, Kleene: el.Kleene})
	}

	renameExpr := func(e expr.Expr) expr.Expr {
		if e == nil {
			return nil
		}
		return expr.Transform(e, func(x expr.Expr) expr.Expr {
			if c, ok := x.(*expr.Column); ok {
				if to, hit := rename[strings.ToLower(c.Qualifier)]; hit {
					return &expr.Column{Qualifier: to, Name: c.Name}
				}
			}
			return x
		})
	}

	var filters []parser.EventPred
	filters = append(filters, i1.Filters...)
	for _, f := range i2.Filters {
		nf := parser.EventPred{Quant: f.Quant, Var: f.Var, Over: f.Over, Cond: renameExpr(f.Cond)}
		if to, hit := rename[strings.ToLower(f.Over)]; hit {
			nf.Over = to
		}
		filters = append(filters, nf)
	}

	renameGroups := func(groups [][]parser.SelectItem) [][]parser.SelectItem {
		out := make([][]parser.SelectItem, len(groups))
		for g, group := range groups {
			items := make([]parser.SelectItem, len(group))
			for i, it := range group {
				items[i] = parser.SelectItem{Expr: renameExpr(it.Expr), Alias: it.Alias, Star: it.Star, StarQualifier: it.StarQualifier}
			}
			out[g] = items
		}
		return out
	}
	ret, err := merge(i1.Return, renameGroups(i2.Return))
	if err != nil {
		return nil, err
	}
	return &parser.EventStmt{Name: name, Seq: seq, Filters: filters, Return: ret}, nil
}

// AnalyzeComposition reports potential conflicts between two interactions,
// the static-analysis direction of §2.1.2: shared starting event types make
// the pair ambiguous, and overlapping alphabets mean interleaved input can
// feed both NFAs.
func AnalyzeComposition(i1, i2 *parser.EventStmt) []string {
	var warnings []string
	if len(i1.Seq) > 0 && len(i2.Seq) > 0 && i1.Seq[0].Type == i2.Seq[0].Type {
		warnings = append(warnings, fmt.Sprintf(
			"%s and %s both start on %s: ambiguous dispatch; partition by space/time or assign priorities",
			i1.Name, i2.Name, i1.Seq[0].Type))
	}
	alphabet := map[string]bool{}
	for _, el := range i1.Seq {
		alphabet[el.Type] = true
	}
	for _, el := range i2.Seq {
		if alphabet[el.Type] {
			warnings = append(warnings, fmt.Sprintf(
				"%s and %s share event type %s: interleaved input affects both interactions",
				i1.Name, i2.Name, el.Type))
			break
		}
	}
	return warnings
}
