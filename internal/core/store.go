// Package core implements the DVMS engine of Fig 3: the Interaction
// Manager (program loading, static analysis), the Storage Manager (base
// relations, materialized views, version history for @vnow/@tnow), the
// Executor integration (topological view maintenance), interaction
// transactions driven by the Event Recognizer, render sinks producing the
// pixels table, and the provenance tracer of §3.1.
package core

import (
	"fmt"
	"strings"

	"repro/internal/plan"
	"repro/internal/relation"
)

// snapshot is the full database state at a point in time: every relation's
// contents, shallow-copied (tuples are immutable, so sharing is safe).
type snapshot map[string]*relation.Relation

// Store is the storage manager: it owns current relation contents, the
// committed version history backing @vnow-i references, and the
// intra-transaction event history backing @tnow-j references.
type Store struct {
	rels map[string]*relation.Relation
	// names preserves definition order for deterministic iteration.
	names []string
	// history[k] is the state committed by transaction k (the initial
	// program load commits version 0). Bounded by maxHistory.
	history []snapshot
	// txnHist[j] is the state after the j-th applied event of the current
	// interaction; txnHist[0] is the state at transaction begin.
	txnHist    []snapshot
	maxHistory int
	dropped    int // number of old versions evicted from history
}

// NewStore creates an empty store keeping up to maxHistory committed
// versions (0 means the default of 64).
func NewStore(maxHistory int) *Store {
	if maxHistory <= 0 {
		maxHistory = 64
	}
	return &Store{rels: make(map[string]*relation.Relation), maxHistory: maxHistory}
}

func keyOf(name string) string { return strings.ToLower(name) }

// Put installs or replaces a relation's current contents.
func (s *Store) Put(rel *relation.Relation) {
	k := keyOf(rel.Name)
	if _, ok := s.rels[k]; !ok {
		s.names = append(s.names, rel.Name)
	}
	s.rels[k] = rel
}

// Has reports whether a relation exists.
func (s *Store) Has(name string) bool {
	_, ok := s.rels[keyOf(name)]
	return ok
}

// Get returns the current contents of a relation.
func (s *Store) Get(name string) (*relation.Relation, error) {
	r, ok := s.rels[keyOf(name)]
	if !ok {
		return nil, fmt.Errorf("unknown relation %q", name)
	}
	return r, nil
}

// Names lists relations in definition order.
func (s *Store) Names() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// Resolve implements plan.Catalog: it returns a relation's contents at the
// requested version.
//
//   - current (no suffix): the live working state;
//   - @vnow-0: alias for the live state; @vnow-i (i≥1): the state committed
//     i transactions ago (during an interaction, @vnow-1 is the state at the
//     beginning of the interaction, exactly as DeVIL 3 uses it);
//   - @tnow-0: the state after the latest applied event of the current
//     interaction; @tnow-j: j events earlier. Outside an interaction @tnow
//     resolves to the live state.
func (s *Store) Resolve(name string, v relation.VersionRef) (*relation.Relation, error) {
	switch v.Kind {
	case relation.VersionCurrent:
		return s.Get(name)
	case relation.VersionVNow:
		if v.Offset == 0 {
			return s.Get(name)
		}
		idx := len(s.history) - v.Offset
		if idx < 0 {
			// Before enough history exists (e.g. while the initial program
			// is still loading), clamp to the oldest state available: the
			// earliest snapshot, or the live state when nothing has been
			// committed yet. DeVIL 3-style @vnow-1 references thus resolve
			// meaningfully during program load.
			if len(s.history) == 0 {
				return s.Get(name)
			}
			idx = 0
		}
		return s.fromSnapshot(s.history[idx], name, v)
	case relation.VersionTNow:
		// "Now" is the event currently being applied: @tnow-0 is the live
		// state (including the in-flight event's effects so far); @tnow-j
		// (j ≥ 1) is the state after the j-th previous event, clamping at
		// the transaction begin state. Views are recomputed mid-event, so
		// during event k the history top is the state after event k-1.
		if len(s.txnHist) == 0 || v.Offset == 0 {
			return s.Get(name)
		}
		idx := len(s.txnHist) - v.Offset
		if idx < 0 {
			idx = 0 // clamp to transaction begin
		}
		return s.fromSnapshot(s.txnHist[idx], name, v)
	default:
		return nil, fmt.Errorf("unknown version kind %d", v.Kind)
	}
}

func (s *Store) fromSnapshot(snap snapshot, name string, v relation.VersionRef) (*relation.Relation, error) {
	r, ok := snap[keyOf(name)]
	if !ok {
		return nil, fmt.Errorf("relation %q does not exist at version %s", name, v)
	}
	return r, nil
}

// capture shallow-copies the entire current state.
func (s *Store) capture() snapshot {
	snap := make(snapshot, len(s.rels))
	for k, r := range s.rels {
		snap[k] = r.Snapshot()
	}
	return snap
}

// Commit pushes the current state onto the committed version history and
// clears the transaction event history. Returns the committed version index.
func (s *Store) Commit() int {
	s.history = append(s.history, s.capture())
	if len(s.history) > s.maxHistory {
		over := len(s.history) - s.maxHistory
		s.history = append([]snapshot{}, s.history[over:]...)
		s.dropped += over
	}
	s.txnHist = nil
	return s.dropped + len(s.history) - 1
}

// Versions returns the number of committed versions currently retained.
func (s *Store) Versions() int { return len(s.history) }

// BeginTxn starts the intra-transaction event history with the pre-event
// state.
func (s *Store) BeginTxn() {
	s.txnHist = []snapshot{s.capture()}
}

// MarkEvent records the state after applying one event.
func (s *Store) MarkEvent() {
	if s.txnHist != nil {
		s.txnHist = append(s.txnHist, s.capture())
	}
}

// InTxn reports whether an interaction transaction is in flight.
func (s *Store) InTxn() bool { return s.txnHist != nil }

// Rollback restores the live state to the last committed version (the state
// at the beginning of the current interaction) and clears the transaction
// history. It is the storage half of an interaction abort.
func (s *Store) Rollback() error {
	if len(s.history) == 0 {
		return fmt.Errorf("rollback: no committed version exists")
	}
	s.restore(s.history[len(s.history)-1])
	s.txnHist = nil
	return nil
}

// RestoreVersion rewinds the live state to vnow-i (i ≥ 1), the mechanism
// behind undo (§2.1.3's "undo and redo is supported by the versioning
// semantics").
func (s *Store) RestoreVersion(i int) error {
	if i < 1 {
		return fmt.Errorf("restore: offset must be >= 1")
	}
	idx := len(s.history) - i
	if idx < 0 {
		return fmt.Errorf("restore: only %d committed versions exist", len(s.history))
	}
	s.restore(s.history[idx])
	return nil
}

func (s *Store) restore(snap snapshot) {
	for k := range s.rels {
		if r, ok := snap[k]; ok {
			s.rels[k] = r.Snapshot()
		}
		// Relations created after the snapshot keep their current
		// contents; DeVIL programs do not create relations mid-interaction,
		// so this arises only from host API misuse.
	}
}

// shiftedCatalog resolves relation references as of a past committed
// version: current references resolve to vnow-shift, and vnow-i references
// deepen to vnow-(i+shift). The provenance tracer uses it to compute exact
// lineage for versioned scans like SPLOT_POINTS@vnow-1.
type shiftedCatalog struct {
	store *Store
	shift int
}

// Resolve implements plan.Catalog at a historical offset.
func (c *shiftedCatalog) Resolve(name string, v relation.VersionRef) (*relation.Relation, error) {
	switch v.Kind {
	case relation.VersionCurrent:
		return c.store.Resolve(name, relation.VNow(c.shift))
	case relation.VersionVNow:
		if v.Offset == 0 {
			return c.store.Resolve(name, relation.VNow(c.shift))
		}
		return c.store.Resolve(name, relation.VNow(v.Offset+c.shift))
	default:
		return c.store.Resolve(name, v)
	}
}

// CatalogAt returns a plan.Catalog view of the store as of vnow-shift
// (shift 0 is the live state).
func (s *Store) CatalogAt(shift int) plan.Catalog {
	if shift == 0 {
		return s
	}
	return &shiftedCatalog{store: s, shift: shift}
}
