// Package core implements the DVMS engine of Fig 3: the Interaction
// Manager (program loading, static analysis), the Storage Manager (base
// relations, materialized views, version history for @vnow/@tnow), the
// Executor integration (topological view maintenance), interaction
// transactions driven by the Event Recognizer, render sinks producing the
// pixels table, and the provenance tracer of §3.1.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/wal"
)

// snapshot is the full database state at a point in time: every relation's
// contents, shallow-copied (tuples are immutable, so sharing is safe).
type snapshot map[string]*relation.Relation

// VersioningStats counts the storage manager's version-history work. The
// delta-log refactor trades whole-database snapshots per event for
// per-event deltas plus sparse checkpoints, so these counters are what the
// versioning benchmarks and dvms-bench JSON report.
type VersioningStats struct {
	// SnapshotBytes approximates the bytes captured into checkpoints and
	// per-relation resets (24 bytes per retained row pointer plus struct
	// overhead) — the residual snapshot cost after the refactor.
	SnapshotBytes int64
	// DeltaLogEvents counts sealed version boundaries (transaction begins,
	// event marks, and commits).
	DeltaLogEvents int
	// Reconstructions counts historical relation versions materialized by
	// walking the delta log (forward from an anchor or backward from live).
	Reconstructions int
	// CheckpointHits counts reconstructions anchored at a checkpoint or
	// per-relation reset (as opposed to inverse walks from the live state).
	CheckpointHits int
	// CacheHits counts version reads served from the reconstruction LRU.
	CacheHits int
}

// checkpoint is a full capture of the database at one version boundary:
// contents plus definition order (so restores reproduce Names exactly).
type checkpoint struct {
	rels  snapshot
	names []string
}

// logEntry describes one version boundary of the delta log: the net change
// transforming the previous boundary's state into this one. Most entries
// carry only per-relation deltas proportional to the event that produced
// them; entries additionally carry full contents when the change cannot be
// expressed as a delta (relation created, replaced wholesale, or the whole
// database rewritten by a version restore).
type logEntry struct {
	// commit marks boundaries that are committed versions (@vnow targets).
	commit bool
	// barrier marks boundaries whose transition is not described by deltas
	// (a RestoreVersion rewrote the live state); backward walks from the
	// live state must not cross it. Barrier entries always checkpoint.
	barrier bool
	// deltas holds the per-relation net change since the previous boundary,
	// keyed lowercase. Applying deltas[k] to the previous state of k yields
	// this boundary's state (bag semantics).
	deltas map[string]relation.Delta
	// resets holds full contents at this boundary for relations whose
	// change was not delta-tracked (created this window, or replaced via
	// Put). A reset is both a backward barrier and a forward anchor for
	// that relation.
	resets map[string]*relation.Relation
	// created lists relations (original-case names) that began existing at
	// this boundary; createdSet indexes them by lowercase key. A relation
	// does not exist at boundaries before the one that created it.
	created    []string
	createdSet map[string]bool
	// cp is the sparse full-state checkpoint bounding reconstruction walks
	// (every checkpointEvery commits, on restore barriers, and always at
	// the oldest retained boundary).
	cp *checkpoint
}

// defaultCheckpointEvery is the commit interval between full checkpoints: a
// reconstruction walks at most this many commit windows forward from its
// anchor. The engine overrides it via Config.CheckpointEvery.
const defaultCheckpointEvery = 16

// versionCacheCap bounds the reconstruction LRU. It is sized so one
// refresh's repeated @tnow-1/@vnow-1 scans (and one trace's version reads)
// all hit the same materialized objects.
const versionCacheCap = 64

// Store is the storage manager: it owns current relation contents and the
// version history backing @vnow-i / @tnow-j references. History is a delta
// log with periodic checkpoints: each Commit/MarkEvent seals only the
// changes recorded since the previous boundary (work proportional to the
// event's delta, not the database), and Resolve reconstructs requested
// versions on demand by walking the log from the nearest anchor — the live
// state going backward, or a checkpoint/reset going forward.
type Store struct {
	rels map[string]*relation.Relation
	// names preserves definition order for deterministic iteration.
	names []string

	maxHistory      int
	checkpointEvery int

	// base is the absolute index of entries[0]; entry at absolute index b
	// transforms the state at boundary b-1 into the state at boundary b.
	// Invariant: entries[0] (when present) carries a checkpoint, so every
	// retained boundary is reconstructable by a forward walk.
	base    int
	entries []logEntry
	// commitAt holds the absolute boundary indices of committed versions,
	// oldest first, bounded by maxHistory.
	commitAt       []int
	droppedCommits int
	commitsSinceCP int

	// txnAt[0] is the boundary sealed at BeginTxn (the transaction-begin
	// state); txnAt[j] the boundary after the j-th applied event. nil
	// outside an interaction.
	txnAt []int

	// pending accumulates the changes recorded since the last sealed
	// boundary. pendUnknown marks relations replaced wholesale (full
	// contents captured at seal); pendCreated relations that began
	// existing; pendResetAll that a restore rewrote the whole database.
	pendDeltas     map[string]relation.Delta
	pendUnknown    map[string]bool
	pendCreated    []string
	pendCreatedSet map[string]bool
	pendResetAll   bool

	// cpLast/cpDirty implement checkpoint sharing: a relation untouched
	// since the previous checkpoint reuses that checkpoint's captured
	// snapshot (captures are immutable — reconstruction copies before
	// applying deltas), so a sparse checkpoint costs O(relations changed
	// since the last one), not O(database). Without this, the periodic
	// checkpoint re-copies every row slice — at million-row base tables
	// that dominates the per-event brush budget the data cubes just freed.
	cpLast  *checkpoint
	cpDirty map[string]bool

	cache versionCache
	stats *VersioningStats

	// sink, when set, receives one wal record per sealed boundary and per
	// control operation (rollback / restore) — the durable delta log. walRec
	// staggers the sealed-window record so it is emitted only after the
	// caller's bookkeeping (commitAt, txnAt) is consistent; a segment
	// rotation inside the emit may then snapshot the store as a checkpoint.
	sink   func(wal.Record)
	walRec wal.Record
}

// NewStore creates an empty store keeping up to maxHistory committed
// versions (0 means the default of 64).
func NewStore(maxHistory int) *Store {
	if maxHistory <= 0 {
		maxHistory = 64
	}
	return &Store{
		rels:            make(map[string]*relation.Relation),
		maxHistory:      maxHistory,
		checkpointEvery: defaultCheckpointEvery,
		stats:           &VersioningStats{},
	}
}

func keyOf(name string) string { return strings.ToLower(name) }

// Stats returns a copy of the versioning counters.
func (s *Store) Stats() VersioningStats { return *s.stats }

// Put installs or replaces a relation's current contents. Replacing an
// existing relation is an unknown change for the delta log: its full
// contents are captured at the next version boundary. Callers that know
// the precise delta (the engine's view maintenance) use putQuiet plus
// recordChange instead.
func (s *Store) Put(rel *relation.Relation) {
	if s.install(rel) {
		return
	}
	s.recordUnknown(rel.Name)
}

// putQuiet is Put for callers that record the replacement's exact delta
// themselves; new relations are still noted as created.
func (s *Store) putQuiet(rel *relation.Relation) {
	s.install(rel)
}

// install stores the relation and returns true when the name is new (in
// which case the creation is noted in the pending window).
func (s *Store) install(rel *relation.Relation) bool {
	k := keyOf(rel.Name)
	s.markCPDirty(k)
	if _, ok := s.rels[k]; !ok {
		s.names = append(s.names, rel.Name)
		s.rels[k] = rel
		s.noteCreated(rel.Name)
		return true
	}
	s.rels[k] = rel
	return false
}

func (s *Store) noteCreated(name string) {
	if s.pendResetAll {
		return // the next boundary checkpoints everything anyway
	}
	k := keyOf(name)
	if s.pendCreatedSet[k] {
		return
	}
	if s.pendCreatedSet == nil {
		s.pendCreatedSet = map[string]bool{}
	}
	s.pendCreatedSet[k] = true
	s.pendCreated = append(s.pendCreated, name)
}

// recordChange accumulates one relation's delta into the pending window.
// The engine calls it at every mutation site (base-table writes, view
// delta applies, fallback recompute diffs), which is what lets MarkEvent
// and Commit seal boundaries in O(delta) instead of O(database).
func (s *Store) recordChange(name string, d relation.Delta) {
	if d.Empty() {
		return
	}
	k := keyOf(name)
	s.markCPDirty(k)
	if s.pendResetAll {
		return
	}
	if s.pendUnknown[k] || s.pendCreatedSet[k] {
		return // full contents are captured at the boundary anyway
	}
	if s.pendDeltas == nil {
		s.pendDeltas = map[string]relation.Delta{}
	}
	prev, ok := s.pendDeltas[k]
	if !ok {
		s.pendDeltas[k] = d
		return
	}
	s.pendDeltas[k] = relation.Compose(prev, d)
}

// recordUnknown marks a relation as changed in an unknown way: the next
// boundary captures its full contents (a per-relation reset).
func (s *Store) recordUnknown(name string) {
	k := keyOf(name)
	s.markCPDirty(k)
	if s.pendResetAll {
		return
	}
	if s.pendCreatedSet[k] {
		return // created this window: contents captured at seal regardless
	}
	if s.pendUnknown == nil {
		s.pendUnknown = map[string]bool{}
	}
	s.pendUnknown[k] = true
	delete(s.pendDeltas, k)
}

func (s *Store) clearPending() {
	s.pendDeltas, s.pendUnknown = nil, nil
	s.pendCreated, s.pendCreatedSet = nil, nil
	s.pendResetAll = false
}

// Has reports whether a relation exists.
func (s *Store) Has(name string) bool {
	_, ok := s.rels[keyOf(name)]
	return ok
}

// Get returns the current contents of a relation.
func (s *Store) Get(name string) (*relation.Relation, error) {
	r, ok := s.rels[keyOf(name)]
	if !ok {
		return nil, fmt.Errorf("unknown relation %q", name)
	}
	return r, nil
}

// ApproxBytes estimates the live store's memory (row-pointer cost per
// relation, the same accounting relBytes uses for checkpoints). The server
// benchmarks use it for the shared-vs-private memory split.
func (s *Store) ApproxBytes() int64 {
	var b int64
	for _, r := range s.rels {
		b += relBytes(r)
	}
	return b
}

// Names lists relations in definition order.
func (s *Store) Names() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// tailAbs is the absolute index of the newest sealed boundary (-1 when no
// boundary has been sealed yet).
func (s *Store) tailAbs() int { return s.base + len(s.entries) - 1 }

// entryAt returns the entry for an absolute boundary index.
func (s *Store) entryAt(abs int) *logEntry { return &s.entries[abs-s.base] }

// captureRel shallow-copies one relation into the log, counting the bytes.
func (s *Store) captureRel(r *relation.Relation) *relation.Relation {
	cp := r.Snapshot()
	s.stats.SnapshotBytes += relBytes(cp)
	return cp
}

func relBytes(r *relation.Relation) int64 { return int64(64 + 24*len(r.Rows)) }

func (s *Store) captureCheckpoint() *checkpoint {
	cp := &checkpoint{rels: make(snapshot, len(s.rels)), names: append([]string(nil), s.names...)}
	for k, r := range s.rels {
		if s.cpLast != nil && !s.cpDirty[k] {
			if prev, ok := s.cpLast.rels[k]; ok {
				cp.rels[k] = prev // unchanged since last checkpoint: share
				continue
			}
		}
		cp.rels[k] = s.captureRel(r)
	}
	s.cpLast = cp
	s.cpDirty = nil
	return cp
}

// markCPDirty notes that a relation's contents diverged from the last
// checkpoint's capture (so the next checkpoint must re-copy it).
func (s *Store) markCPDirty(k string) {
	if s.cpDirty == nil {
		s.cpDirty = map[string]bool{}
	}
	s.cpDirty[k] = true
}

// seal closes the pending window into a new version boundary and returns
// its absolute index. Cost is proportional to the window's recorded deltas
// (plus full captures only for created/reset relations and sparse
// checkpoints), which is the tentpole property: MarkEvent and Commit no
// longer copy the database.
func (s *Store) seal(op wal.SealOp) int {
	commit := op == wal.SealCommit
	e := logEntry{commit: commit}
	needCP := s.pendResetAll || len(s.entries) == 0
	if commit {
		s.commitsSinceCP++
		if s.commitsSinceCP >= s.checkpointEvery {
			needCP = true
		}
	}
	if needCP {
		e.cp = s.captureCheckpoint()
		s.commitsSinceCP = 0
	}
	if s.pendResetAll {
		e.barrier = true
	} else {
		if len(s.pendDeltas) > 0 {
			e.deltas = s.pendDeltas
		}
		if len(s.pendUnknown)+len(s.pendCreated) > 0 {
			e.resets = make(map[string]*relation.Relation, len(s.pendUnknown)+len(s.pendCreated))
			for k := range s.pendUnknown {
				if r, ok := s.rels[k]; ok {
					e.resets[k] = s.captureRel(r)
				}
			}
			for _, name := range s.pendCreated {
				if r, ok := s.rels[keyOf(name)]; ok {
					e.resets[keyOf(name)] = s.captureRel(r)
				}
			}
			e.created = s.pendCreated
			e.createdSet = s.pendCreatedSet
		}
	}
	if s.sink != nil {
		s.walRec = changeRecord(op, &e)
	}
	s.clearPending()
	s.entries = append(s.entries, e)
	s.stats.DeltaLogEvents++
	return s.tailAbs()
}

// changeRecord serializes one sealed window for the wal sink. Barrier
// windows (after a RestoreVersion) carry nothing: the preceding restore
// control record reproduces their state on replay. Writes never land
// inside a barrier window — the engine seals it first via
// SealRestoreBarrier — so the empty record loses nothing.
func changeRecord(op wal.SealOp, e *logEntry) *wal.ChangeRecord {
	rec := &wal.ChangeRecord{Seal: op, Created: e.created}
	for k, d := range e.deltas {
		rec.Deltas = append(rec.Deltas, wal.NamedDelta{Name: k, Delta: d})
	}
	sort.Slice(rec.Deltas, func(i, j int) bool { return rec.Deltas[i].Name < rec.Deltas[j].Name })
	for _, r := range e.resets {
		rec.Resets = append(rec.Resets, r)
	}
	sort.Slice(rec.Resets, func(i, j int) bool {
		return keyOf(rec.Resets[i].Name) < keyOf(rec.Resets[j].Name)
	})
	return rec
}

// emitWAL flushes the record staged by seal. Callers invoke it after their
// boundary bookkeeping is complete, so a checkpoint taken during a segment
// rotation inside the append sees a consistent store.
func (s *Store) emitWAL() {
	if s.walRec != nil {
		rec := s.walRec
		s.walRec = nil
		s.sink(rec)
	}
}

// walCheckpoint is the segment-rotation snapshot provider: the full live
// state plus the total commit count, offered only at a committed rest state
// (no pending changes, no transaction, log tail == newest commit) so replay
// can seed the checkpoint as that committed version. Anywhere else it
// returns nil and the rotation waits.
func (s *Store) walCheckpoint() *wal.CheckpointRecord {
	if s.txnAt != nil || s.pendResetAll || len(s.pendDeltas)+len(s.pendUnknown)+len(s.pendCreated) > 0 {
		return nil
	}
	if len(s.commitAt) == 0 || s.commitAt[len(s.commitAt)-1] != s.tailAbs() {
		return nil
	}
	cp := &wal.CheckpointRecord{
		Commits: s.droppedCommits + len(s.commitAt),
		Rels:    make([]*relation.Relation, 0, len(s.names)),
	}
	for _, nm := range s.names {
		cp.Rels = append(cp.Rels, s.rels[keyOf(nm)].Snapshot())
	}
	return cp
}

// Commit seals the pending changes as a new committed version, compacts
// the finished transaction's now-unreachable event boundaries into it,
// evicts history beyond maxHistory, and clears the transaction event
// history. Returns the committed version index.
func (s *Store) Commit() int {
	abs := s.seal(wal.SealCommit)
	abs = s.compactWindow(abs)
	s.commitAt = append(s.commitAt, abs)
	if len(s.commitAt) > s.maxHistory {
		over := len(s.commitAt) - s.maxHistory
		s.commitAt = append(s.commitAt[:0:0], s.commitAt[over:]...)
		s.droppedCommits += over
		s.trim()
	}
	s.txnAt = nil
	s.emitWAL()
	return s.droppedCommits + len(s.commitAt) - 1
}

// compactWindow merges every boundary between the previous commit and the
// just-sealed commit entry at abs into one entry, returning the commit's
// new absolute index. Once Commit clears the transaction history those
// per-event boundaries can never be referenced again, yet without
// compaction every forward walk across the commit window would replay
// each event's delta separately and the log would retain one entry per
// drag event for up to maxHistory commit windows. Windows containing a
// checkpoint or restore barrier are left unmerged (rare, and the
// checkpoint must keep its own boundary).
func (s *Store) compactWindow(abs int) int {
	start := s.base
	if n := len(s.commitAt); n > 0 {
		start = s.commitAt[n-1] + 1
	}
	i, j := start-s.base, abs-s.base
	if j <= i {
		return abs // no event boundaries between the commits
	}
	for k := i; k <= j; k++ {
		if s.entries[k].cp != nil || s.entries[k].barrier {
			return abs
		}
	}
	merged := logEntry{commit: true}
	for k := i; k <= j; k++ {
		if !mergeEntry(&merged, &s.entries[k]) {
			return abs // inconsistent fold: keep the unmerged entries
		}
	}
	// mergeEntry concatenates window deltas without netting them (so the
	// fold is linear in the window's rows); consolidate each relation once
	// here. Rows a drag added and removed within the window vanish.
	for k, d := range merged.deltas {
		d = d.Consolidate()
		if d.Empty() {
			delete(merged.deltas, k)
		} else {
			merged.deltas[k] = d
		}
	}
	s.entries = append(s.entries[:i], merged)
	s.cache.purgeAbove(start - 1)
	return start
}

// mergeEntry folds one boundary's changes into an accumulating entry (in
// boundary order). Reports false if a delta cannot be applied on top of an
// accumulated reset.
func mergeEntry(dst, e *logEntry) bool {
	for _, nm := range e.created {
		k := keyOf(nm)
		if dst.createdSet == nil {
			dst.createdSet = map[string]bool{}
		}
		if !dst.createdSet[k] {
			dst.createdSet[k] = true
			dst.created = append(dst.created, nm)
		}
	}
	for k, r := range e.resets {
		// A reset supersedes whatever the window did to the relation so far.
		if dst.resets == nil {
			dst.resets = map[string]*relation.Relation{}
		}
		dst.resets[k] = r
		delete(dst.deltas, k)
	}
	for k, d := range e.deltas {
		if r, ok := dst.resets[k]; ok {
			// Changes on top of captured contents fold into the capture.
			nr := r.Snapshot()
			if err := nr.ApplyDelta(d); err != nil {
				return false
			}
			dst.resets[k] = nr
			continue
		}
		if dst.deltas == nil {
			dst.deltas = map[string]relation.Delta{}
		}
		// Concatenate only — netting Ins against Del on every fold would
		// re-hash the accumulated delta per merged boundary (quadratic in
		// the window). compactWindow consolidates once after the fold. The
		// first fold copies so later appends never write into a source
		// entry's spare capacity.
		prev, ok := dst.deltas[k]
		if !ok {
			prev = relation.Delta{
				Ins: append(make([]relation.Tuple, 0, len(d.Ins)), d.Ins...),
				Del: append(make([]relation.Tuple, 0, len(d.Del)), d.Del...),
			}
		} else {
			prev.Ins = append(prev.Ins, d.Ins...)
			prev.Del = append(prev.Del, d.Del...)
		}
		dst.deltas[k] = prev
	}
	return true
}

// trim drops log entries no reconstruction can need: everything below the
// newest checkpoint at or before the oldest retained commit. Entries
// between that checkpoint and the oldest commit are kept even though their
// commits were evicted — dropping them would orphan the deltas later
// boundaries reconstruct through.
func (s *Store) trim() {
	oldest := s.commitAt[0]
	cut := -1
	for i := oldest - s.base; i >= 0; i-- {
		if s.entries[i].cp != nil {
			cut = i
			break
		}
	}
	if cut <= 0 {
		return
	}
	s.base += cut
	s.entries = append(s.entries[:0:0], s.entries[cut:]...)
	s.cache.purgeBelow(s.base)
}

// Versions returns the number of committed versions currently retained.
func (s *Store) Versions() int { return len(s.commitAt) }

// BeginTxn seals the pre-event state as the transaction-begin boundary and
// starts the intra-transaction event history.
func (s *Store) BeginTxn() {
	s.txnAt = []int{s.seal(wal.SealBegin)}
	s.emitWAL()
}

// MarkEvent seals the changes of one applied event as a new @tnow
// boundary. Unlike the snapshot store this is O(event delta).
func (s *Store) MarkEvent() {
	if s.txnAt != nil {
		s.txnAt = append(s.txnAt, s.seal(wal.SealEvent))
		s.emitWAL()
	}
}

// InTxn reports whether an interaction transaction is in flight.
func (s *Store) InTxn() bool { return s.txnAt != nil }

// Resolve implements plan.Catalog: it returns a relation's contents at the
// requested version.
//
//   - current (no suffix): the live working state;
//   - @vnow-0: alias for the live state; @vnow-i (i≥1): the state committed
//     i transactions ago (during an interaction, @vnow-1 is the state at the
//     beginning of the interaction, exactly as DeVIL 3 uses it);
//   - @tnow-0: the state after the latest applied event of the current
//     interaction; @tnow-j: j events earlier. Outside an interaction @tnow
//     resolves to the live state.
//
// Historical states are reconstructed on demand from the delta log.
// Reconstruction preserves the bag of tuples but not necessarily the
// physical row order the original state had (see finish); callers must
// treat results as read-only, exactly as with live relations, and match
// rows by tuple identity rather than position.
func (s *Store) Resolve(name string, v relation.VersionRef) (*relation.Relation, error) {
	switch v.Kind {
	case relation.VersionCurrent:
		return s.Get(name)
	case relation.VersionVNow:
		if v.Offset == 0 || len(s.commitAt) == 0 {
			// Before enough history exists (e.g. while the initial program
			// is still loading), clamp to the oldest state available: the
			// live state when nothing has been committed yet. DeVIL 3-style
			// @vnow-1 references thus resolve meaningfully during load.
			return s.Get(name)
		}
		idx := len(s.commitAt) - v.Offset
		if idx < 0 {
			idx = 0 // clamp to the oldest retained version
		}
		return s.stateRelAt(name, s.commitAt[idx], v)
	case relation.VersionTNow:
		// "Now" is the event currently being applied: @tnow-0 is the live
		// state (including the in-flight event's effects so far); @tnow-j
		// (j ≥ 1) is the state after the j-th previous event, clamping at
		// the transaction begin state. Views are recomputed mid-event, so
		// during event k the history top is the state after event k-1.
		if len(s.txnAt) == 0 || v.Offset == 0 {
			return s.Get(name)
		}
		idx := len(s.txnAt) - v.Offset
		if idx < 0 {
			idx = 0 // clamp to transaction begin
		}
		return s.stateRelAt(name, s.txnAt[idx], v)
	default:
		return nil, fmt.Errorf("unknown version kind %d", v.Kind)
	}
}

// quiescent reports that the relation has not changed since the last
// sealed boundary, so the live contents are that boundary's state.
func (s *Store) quiescent(k string) bool {
	if s.pendResetAll || s.pendUnknown[k] || s.pendCreatedSet[k] {
		return false
	}
	_, touched := s.pendDeltas[k]
	return !touched
}

// stateRelAt materializes one relation as of the boundary at absolute
// index abs. The walk starts from whichever valid anchor is nearest: the
// live state (inverting deltas backward; blocked by resets, creations, and
// restore barriers) or the newest checkpoint/reset at or before abs
// (applying deltas forward). Results are cached in a small LRU so repeated
// scans of the same version within one refresh or trace share one object.
func (s *Store) stateRelAt(name string, abs int, v relation.VersionRef) (*relation.Relation, error) {
	k := keyOf(name)
	// Fast path: nothing happened to this relation since the boundary was
	// sealed, so the live contents are the requested state.
	if abs == s.tailAbs() && s.quiescent(k) {
		if r, ok := s.rels[k]; ok {
			return r, nil
		}
		return nil, s.notExist(name, v)
	}
	if r, ok := s.cache.get(k, abs); ok {
		s.stats.CacheHits++
		return r, nil
	}

	// Forward anchor: the newest boundary ≤ abs that pins this relation's
	// full contents. Scanning also decides existence: a checkpoint without
	// the relation (and no creation since) means it does not exist at abs.
	i := abs - s.base
	if i < 0 || i >= len(s.entries) {
		return nil, fmt.Errorf("resolve %s%s: version boundary %d outside retained log [%d,%d]",
			name, v, abs, s.base, s.tailAbs())
	}
	anchor, start := -1, (*relation.Relation)(nil)
	for j := i; j >= 0; j-- {
		e := &s.entries[j]
		if e.resets != nil {
			if r, ok := e.resets[k]; ok {
				anchor, start = j, r
				break
			}
		}
		if e.cp != nil {
			r, ok := e.cp.rels[k]
			if !ok {
				return nil, s.notExist(name, v)
			}
			anchor, start = j, r
			break
		}
	}
	if anchor < 0 {
		return nil, s.notExist(name, v)
	}
	forwardDist := i - anchor

	// Backward feasibility: live minus pending minus the entries above abs,
	// valid only while every step is a pure delta for this relation.
	backDist := -1
	if live, ok := s.rels[k]; ok && !s.pendResetAll && !s.pendUnknown[k] && !s.pendCreatedSet[k] {
		tail := len(s.entries) - 1
		feasible := true
		for j := tail; j > i; j-- {
			e := &s.entries[j]
			if e.barrier || e.createdSet[k] {
				feasible = false
				break
			}
			if e.resets != nil {
				if _, blocked := e.resets[k]; blocked {
					feasible = false
					break
				}
			}
		}
		if feasible {
			backDist = tail - i + 1
			if backDist <= forwardDist {
				if rel, err := s.walkBackward(live, k, i); err == nil {
					return s.finish(k, abs, rel), nil
				}
				// Inconsistent bookkeeping (host mutated a relation behind
				// the store's back): fall through to the forward walk.
			}
		}
	}
	s.stats.CheckpointHits++
	rel, err := s.walkForward(start, k, anchor, i)
	if err != nil {
		return nil, fmt.Errorf("resolve %s%s: %w", name, v, err)
	}
	return s.finish(k, abs, rel), nil
}

func (s *Store) walkBackward(live *relation.Relation, k string, i int) (*relation.Relation, error) {
	rel := live.Snapshot()
	if d, ok := s.pendDeltas[k]; ok {
		if err := rel.ApplyDelta(d.Invert()); err != nil {
			return nil, err
		}
	}
	for j := len(s.entries) - 1; j > i; j-- {
		if d, ok := s.entries[j].deltas[k]; ok {
			if err := rel.ApplyDelta(d.Invert()); err != nil {
				return nil, err
			}
		}
	}
	return rel, nil
}

func (s *Store) walkForward(start *relation.Relation, k string, anchor, i int) (*relation.Relation, error) {
	rel := start.Snapshot()
	for j := anchor + 1; j <= i; j++ {
		if d, ok := s.entries[j].deltas[k]; ok {
			if err := rel.ApplyDelta(d); err != nil {
				return nil, err
			}
		}
	}
	return rel, nil
}

// finish caches a reconstructed version. Reconstruction replays deltas in
// the order they were applied (or their inverses), which reproduces the
// original physical row order exactly for append-dominated histories and a
// bag-equal order otherwise; consumers that need row identity across
// orders (the provenance tracer) match by tuple key.
func (s *Store) finish(k string, abs int, rel *relation.Relation) *relation.Relation {
	s.stats.Reconstructions++
	s.cache.put(k, abs, rel)
	return rel
}

func (s *Store) notExist(name string, v relation.VersionRef) error {
	return fmt.Errorf("relation %q does not exist at version %s", name, v)
}

// namesAt reconstructs the definition-ordered relation list as of a
// boundary: the nearest checkpoint's names plus every creation since.
func (s *Store) namesAt(abs int) ([]string, error) {
	i := abs - s.base
	if i < 0 || i >= len(s.entries) {
		return nil, fmt.Errorf("version boundary %d outside retained log", abs)
	}
	for j := i; j >= 0; j-- {
		if cp := s.entries[j].cp; cp != nil {
			names := append([]string(nil), cp.names...)
			for jj := j + 1; jj <= i; jj++ {
				names = append(names, s.entries[jj].created...)
			}
			return names, nil
		}
	}
	return nil, fmt.Errorf("no checkpoint at or before boundary %d", abs)
}

// restoreTo rewinds the live state to the boundary at abs exactly:
// relations absent from that version are deleted, relations deleted since
// are revived, and every relation's contents are reconstructed from the
// log.
func (s *Store) restoreTo(abs int, v relation.VersionRef) error {
	names, err := s.namesAt(abs)
	if err != nil {
		return err
	}
	newRels := make(map[string]*relation.Relation, len(names))
	for _, nm := range names {
		r, err := s.stateRelAt(nm, abs, v)
		if err != nil {
			return err
		}
		newRels[keyOf(nm)] = r.Snapshot()
	}
	s.rels = newRels
	s.names = names
	// The whole live state was replaced; nothing may share the previous
	// checkpoint's captures.
	s.cpLast, s.cpDirty = nil, nil
	return nil
}

// Rollback restores the live state to the last committed version (the state
// at the beginning of the current interaction) and clears the transaction
// history. It is the storage half of an interaction abort. Relations
// created after that version are deleted, so the rollback is exact.
func (s *Store) Rollback() error {
	if len(s.commitAt) == 0 {
		return fmt.Errorf("rollback: no committed version exists")
	}
	target := s.commitAt[len(s.commitAt)-1]
	if err := s.restoreTo(target, relation.VNow(1)); err != nil {
		return err
	}
	// The discarded event boundaries can never be referenced again (@tnow
	// history is cleared and no commit points above target); truncating
	// them realigns the log tail with the restored live state.
	s.entries = s.entries[:target-s.base+1]
	s.cache.purgeAbove(target)
	s.txnAt = nil
	s.clearPending()
	if s.sink != nil {
		s.sink(&wal.ControlRecord{Op: wal.CtlRollback})
	}
	return nil
}

// RestoreVersion rewinds the live state to vnow-i (i ≥ 1), the mechanism
// behind undo (§2.1.3's "undo and redo is supported by the versioning
// semantics"). The committed history is preserved — redo is a further
// restore — so the next sealed boundary records a full checkpoint (the
// live state no longer derives from the log tail by any delta).
func (s *Store) RestoreVersion(i int) error {
	if i < 1 {
		return fmt.Errorf("restore: offset must be >= 1")
	}
	idx := len(s.commitAt) - i
	if idx < 0 {
		return fmt.Errorf("restore: only %d committed versions exist", len(s.commitAt))
	}
	if err := s.restoreTo(s.commitAt[idx], relation.VNow(i)); err != nil {
		return err
	}
	s.clearPending()
	s.pendResetAll = true
	if s.sink != nil {
		s.sink(&wal.ControlRecord{Op: wal.CtlRestore, Version: i})
	}
	return nil
}

// SealRestoreBarrier closes the restore window opened by RestoreVersion
// without waiting for the next commit/event boundary. While pendResetAll is
// set, recordChange drops deltas (the barrier entry checkpoints live state
// instead), which is correct in memory but means writes landing inside the
// window would never reach the WAL — the barrier's change record carries
// nothing and the restore control record only reproduces the rewound state.
// The engine therefore calls this before accepting any post-restore write,
// so the barrier seals first and subsequent deltas journal normally. A
// no-op when no restore window is open. Inside a transaction the barrier
// seals as an event boundary (MarkEvent replays it deterministically);
// outside it seals as a dedicated SealBarrier record replayed via this
// same method.
func (s *Store) SealRestoreBarrier() {
	if !s.pendResetAll {
		return
	}
	if s.txnAt != nil {
		s.txnAt = append(s.txnAt, s.seal(wal.SealEvent))
	} else {
		s.seal(wal.SealBarrier)
	}
	s.emitWAL()
}

// --- reconstruction cache ---

type cacheKey struct {
	name string // lowercase relation key
	abs  int    // absolute boundary index
}

// versionCache is a tiny LRU of reconstructed relation versions. States at
// sealed boundaries are immutable, so entries stay valid until their
// boundary is evicted (purgeBelow) or truncated by a rollback (purgeAbove).
type versionCache struct {
	m     map[cacheKey]*relation.Relation
	order []cacheKey // least recently used first
}

func (c *versionCache) get(name string, abs int) (*relation.Relation, bool) {
	r, ok := c.m[cacheKey{name, abs}]
	if ok {
		c.touch(cacheKey{name, abs})
	}
	return r, ok
}

func (c *versionCache) put(name string, abs int, r *relation.Relation) {
	if c.m == nil {
		c.m = make(map[cacheKey]*relation.Relation, versionCacheCap)
	}
	k := cacheKey{name, abs}
	if _, ok := c.m[k]; !ok {
		if len(c.order) >= versionCacheCap {
			oldest := c.order[0]
			c.order = c.order[1:]
			delete(c.m, oldest)
		}
		c.order = append(c.order, k)
	} else {
		c.touch(k)
	}
	c.m[k] = r
}

func (c *versionCache) touch(k cacheKey) {
	for i, o := range c.order {
		if o == k {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), k)
			return
		}
	}
}

func (c *versionCache) purge(drop func(cacheKey) bool) {
	kept := c.order[:0]
	for _, k := range c.order {
		if drop(k) {
			delete(c.m, k)
		} else {
			kept = append(kept, k)
		}
	}
	c.order = kept
}

func (c *versionCache) purgeBelow(base int) { c.purge(func(k cacheKey) bool { return k.abs < base }) }
func (c *versionCache) purgeAbove(abs int)  { c.purge(func(k cacheKey) bool { return k.abs > abs }) }

// --- historical catalogs ---

// shiftedCatalog resolves relation references as of a past committed
// version: current references resolve to vnow-shift, and vnow-i references
// deepen to vnow-(i+shift). The provenance tracer uses it to compute exact
// lineage for versioned scans like SPLOT_POINTS@vnow-1.
type shiftedCatalog struct {
	store *Store
	shift int
}

// Resolve implements plan.Catalog at a historical offset.
func (c *shiftedCatalog) Resolve(name string, v relation.VersionRef) (*relation.Relation, error) {
	switch v.Kind {
	case relation.VersionCurrent:
		return c.store.Resolve(name, relation.VNow(c.shift))
	case relation.VersionVNow:
		if v.Offset == 0 {
			return c.store.Resolve(name, relation.VNow(c.shift))
		}
		return c.store.Resolve(name, relation.VNow(v.Offset+c.shift))
	default:
		return c.store.Resolve(name, v)
	}
}

// CatalogAt returns a plan.Catalog view of the store as of vnow-shift
// (shift 0 is the live state).
func (s *Store) CatalogAt(shift int) plan.Catalog {
	if shift == 0 {
		return s
	}
	return &shiftedCatalog{store: s, shift: shift}
}
