package core

import (
	"testing"

	"repro/internal/relation"
)

// loadDeltaSafe builds an engine whose view chain (join → aggregate →
// project → sink) is fully delta-safe: no subqueries, no version reads.
func loadDeltaSafe(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e := New(cfg)
	err := e.LoadProgram(`
CREATE TABLE T (k int, val int);
INSERT INTO T VALUES (1, 10), (1, 20), (2, 30);
CREATE TABLE S (k int, name string);
INSERT INTO S VALUES (1, 'one'), (2, 'two');
J = SELECT s.name AS name, sum(t.val) AS total FROM T AS t, S AS s WHERE t.k = s.k GROUP BY s.name;
BARS = SELECT total AS x, 10 AS y, 5 AS width, 8 AS height, 'blue' AS fill FROM J;
P = render(SELECT x, y, width, height, fill FROM BARS, 'rect');
`)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func totalsOf(t *testing.T, e *Engine) map[string]int64 {
	t.Helper()
	j, err := e.Relation("J")
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]int64{}
	for _, row := range j.Rows {
		n, _ := row[1].AsInt()
		out[row[0].AsString()] = n
	}
	return out
}

func TestDeltaPathMaintainsViews(t *testing.T) {
	e := loadDeltaSafe(t, Config{})
	base := e.Stats.ViewDeltaApplies

	if err := e.Exec("INSERT INTO T VALUES (1, 5)"); err != nil {
		t.Fatal(err)
	}
	if got := totalsOf(t, e); got["one"] != 35 || got["two"] != 30 {
		t.Fatalf("totals after insert = %v", got)
	}
	if e.Stats.ViewDeltaApplies <= base {
		t.Fatalf("insert should flow through the delta path (applies=%d)", e.Stats.ViewDeltaApplies)
	}

	if err := e.Exec("DELETE FROM T WHERE val = 20"); err != nil {
		t.Fatal(err)
	}
	if got := totalsOf(t, e); got["one"] != 15 || got["two"] != 30 {
		t.Fatalf("totals after delete = %v", got)
	}

	// Deleting every k=2 row removes the group entirely.
	if err := e.Exec("DELETE FROM T WHERE k = 2"); err != nil {
		t.Fatal(err)
	}
	got := totalsOf(t, e)
	if _, ok := got["two"]; ok || got["one"] != 15 {
		t.Fatalf("totals after group removal = %v", got)
	}
	if e.Stats.ViewRecomputes != 0 {
		// All recomputes so far happened during load; reset-free mutation
		// stream must not add any.
		t.Logf("view recomputes = %d (load-time only)", e.Stats.ViewRecomputes)
	}
}

func TestEmptyDeltaShortCircuitSkipsDownstreamAndRender(t *testing.T) {
	e := loadDeltaSafe(t, Config{})
	renders := e.Stats.RenderPasses
	skips := e.Stats.RenderSkips
	empties := e.Stats.EmptyDeltaSkips

	// k=3 joins nothing: J's output delta is empty, BARS must not be
	// touched, and the framebuffer must not be redrawn.
	if err := e.Exec("INSERT INTO T VALUES (3, 99)"); err != nil {
		t.Fatal(err)
	}
	if e.Stats.RenderPasses != renders {
		t.Fatalf("no-op change re-rendered (passes %d -> %d)", renders, e.Stats.RenderPasses)
	}
	if e.Stats.RenderSkips <= skips {
		t.Fatalf("render skip not counted (skips=%d)", e.Stats.RenderSkips)
	}
	if e.Stats.EmptyDeltaSkips <= empties {
		t.Fatalf("empty-delta skip not counted (skips=%d)", e.Stats.EmptyDeltaSkips)
	}

	// A change that does reach the sink re-renders.
	if err := e.Exec("INSERT INTO T VALUES (1, 1)"); err != nil {
		t.Fatal(err)
	}
	if e.Stats.RenderPasses <= renders {
		t.Fatal("real change should re-render")
	}
}

func TestInsertRowsHostAPI(t *testing.T) {
	e := loadDeltaSafe(t, Config{})
	rows := []relation.Tuple{
		{relation.Int(1), relation.Int(100)},
		{relation.Int(2), relation.Int(200)},
	}
	if err := e.InsertRows("T", rows); err != nil {
		t.Fatal(err)
	}
	if got := totalsOf(t, e); got["one"] != 130 || got["two"] != 230 {
		t.Fatalf("totals after InsertRows = %v", got)
	}
	if err := e.InsertRows("J", rows); err == nil {
		t.Fatal("InsertRows into a view should fail")
	}
	if err := e.InsertRows("T", []relation.Tuple{{relation.Int(1)}}); err == nil {
		t.Fatal("arity mismatch should fail")
	}
}

func TestUndoResetsDeltaStateAndRecovers(t *testing.T) {
	e := loadDeltaSafe(t, Config{})
	if err := e.Exec("INSERT INTO T VALUES (1, 5)"); err != nil {
		t.Fatal(err)
	}
	e.Commit()
	if err := e.Undo(); err != nil {
		t.Fatal(err)
	}
	// The undo rewrote the store without deltas; the next mutation must
	// fall back to a full recompute (re-priming) and still be correct.
	fallbacks := e.Stats.FullFallbacks
	if err := e.Exec("INSERT INTO T VALUES (2, 7)"); err != nil {
		t.Fatal(err)
	}
	if e.Stats.FullFallbacks <= fallbacks {
		t.Fatalf("post-undo mutation should fall back (fallbacks=%d)", e.Stats.FullFallbacks)
	}
	if got := totalsOf(t, e); got["one"] != 30 || got["two"] != 37 {
		t.Fatalf("totals after undo+insert = %v", got)
	}
	// And the path re-primes: the following mutation is incremental again.
	applies := e.Stats.ViewDeltaApplies
	if err := e.Exec("INSERT INTO T VALUES (2, 3)"); err != nil {
		t.Fatal(err)
	}
	if e.Stats.ViewDeltaApplies <= applies {
		t.Fatal("pipeline should be primed again after the fallback recompute")
	}
	if got := totalsOf(t, e); got["two"] != 40 {
		t.Fatalf("totals after re-primed insert = %v", got)
	}
}

func TestRecomputeAllStaysFullRecompute(t *testing.T) {
	e := loadDeltaSafe(t, Config{RecomputeAll: true})
	if err := e.Exec("INSERT INTO T VALUES (1, 5)"); err != nil {
		t.Fatal(err)
	}
	if e.Stats.ViewDeltaApplies != 0 {
		t.Fatalf("RecomputeAll engine used the delta path %d times", e.Stats.ViewDeltaApplies)
	}
	if got := totalsOf(t, e); got["one"] != 35 {
		t.Fatalf("totals = %v", got)
	}
}

// Float-measure parity (ROADMAP "float-sum exactness"): incremental SUM
// over float columns must match a fresh recomputation exactly, even when
// the add/remove order would drift under naive summation. The engine's
// delta path must survive a large transient value entering and leaving a
// group without perturbing the small residue.
func TestDeltaFloatSumParityWithRecompute(t *testing.T) {
	e := New(Config{})
	if err := e.LoadProgram(`
CREATE TABLE T (k int, v float);
INSERT INTO T VALUES (1, 1.0), (2, 0.5);
V = SELECT k AS k, sum(v) AS s FROM T GROUP BY k;
`); err != nil {
		t.Fatal(err)
	}
	big := []relation.Tuple{{relation.Int(1), relation.Float(1e16)}}
	if err := e.InsertRows("T", big); err != nil {
		t.Fatal(err)
	}
	applies := e.Stats.ViewDeltaApplies
	if err := e.Exec("DELETE FROM T WHERE v > 1000000.0"); err != nil {
		t.Fatal(err)
	}
	if e.Stats.ViewDeltaApplies <= applies {
		t.Fatal("float SUM mutation should flow through the delta path")
	}
	v, err := e.Relation("V")
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: recompute the same aggregate from scratch over live T.
	want, err := e.Query("SELECT k AS k, sum(v) AS s FROM T GROUP BY k")
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(v, want) {
		t.Fatalf("incremental float SUM diverges from recompute\nincremental:\n%s\nrecompute:\n%s", v, want)
	}
	for _, row := range v.Rows {
		k, _ := row[0].AsInt()
		s, _ := row[1].AsFloat()
		if k == 1 && s != 1.0 {
			t.Fatalf("group 1 sum = %v, want exactly 1 (naive summation loses the residue)", s)
		}
	}
}
