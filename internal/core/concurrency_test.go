package core

// Satellite regressions for the engine's concurrency surface: Stats reads
// must be tear-free against a concurrently driven engine (run under -race),
// and bare LIMIT views must warn once about their permanent full-recompute
// fallback while still producing exact results.

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/events"
	"repro/internal/relation"
)

const statsRaceProgram = `
CREATE TABLE T (x int, y int);
INSERT INTO T VALUES (1, 10), (2, 20), (3, 30);
C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M*, MOUSE_UP AS U
    RETURN (D.t, D.x, D.y, 0 AS dx, 0 AS dy),
           (M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy);
TOTALS = SELECT x, sum(y) AS total FROM T GROUP BY x;
`

// TestStatsSnapshotRace hammers one engine from a feeder goroutine while
// others snapshot stats, reset them, and read relations. The engine lock
// must make every combination tear-free; the test is only meaningful under
// -race (it asserts liveness otherwise).
func TestStatsSnapshotRace(t *testing.T) {
	e := New(Config{})
	if err := e.LoadProgram(statsRaceProgram); err != nil {
		t.Fatal(err)
	}
	const rounds = 200
	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			drag := events.Drag(int64(i*10), 5, 5, 50, 50, 2)
			for _, ev := range drag {
				if _, err := e.FeedEvent(ev); err != nil {
					t.Errorf("feed: %v", err)
					return
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			st := e.StatsSnapshot()
			if st.EventsFed < 0 {
				t.Errorf("torn stats: %+v", st)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if i%50 == 0 {
				e.ResetStats()
			}
			if _, err := e.Relation("TOTALS"); err != nil {
				t.Errorf("relation: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds/4; i++ {
			err := e.InsertRows("T", []relation.Tuple{
				{relation.Int(int64(i)), relation.Int(int64(i) * 7)},
			})
			if err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	// A concurrent ResetStats may have landed last; feed once more and the
	// snapshot must observe it (sanity that counting still works).
	if _, err := e.FeedEvent(events.Mouse(events.Hover, 1<<30, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if e.StatsSnapshot().EventsFed == 0 {
		t.Fatal("stats lost the final event")
	}
}

// TestBareLimitWarnsAndFallsBack pins the bare-LIMIT contract: the view is
// rejected by delta-safety analysis (its prefix depends on arbitrary row
// order), a one-time warning explains the permanent fallback at definition
// time, and every change recomputes the view fully — with exact contents.
func TestBareLimitWarnsAndFallsBack(t *testing.T) {
	e := New(Config{})
	if err := e.LoadProgram(`
CREATE TABLE T (x int);
INSERT INTO T VALUES (3), (1), (2);
HEAD = SELECT x FROM T LIMIT 2;
`); err != nil {
		t.Fatal(err)
	}
	var warned []string
	for _, w := range e.Warnings() {
		if strings.Contains(w, "LIMIT without ORDER BY") {
			warned = append(warned, w)
		}
	}
	if len(warned) != 1 {
		t.Fatalf("want exactly one bare-LIMIT warning, got %d: %v", len(warned), e.Warnings())
	}
	if !strings.Contains(warned[0], "HEAD") || !strings.Contains(warned[0], "ORDER BY") {
		t.Fatalf("warning should name the view and the remedy: %q", warned[0])
	}

	// An ordered LIMIT must NOT warn (it has an exact incremental rule).
	if err := e.Exec(`TOP = SELECT x FROM T ORDER BY x LIMIT 2;`); err != nil {
		t.Fatal(err)
	}
	for _, w := range e.Warnings() {
		if strings.Contains(w, "TOP") {
			t.Fatalf("ordered LIMIT should not warn: %q", w)
		}
	}

	// Changes route through the full-recompute fallback, and the contents
	// stay exact (first 2 rows of T in physical order).
	before := e.StatsSnapshot().FullFallbacks
	if err := e.InsertRows("T", []relation.Tuple{{relation.Int(9)}}); err != nil {
		t.Fatal(err)
	}
	if got := e.StatsSnapshot().FullFallbacks; got <= before {
		t.Fatalf("bare LIMIT should fall back on change: fallbacks %d -> %d", before, got)
	}
	head, err := e.Relation("HEAD")
	if err != nil {
		t.Fatal(err)
	}
	if len(head.Rows) != 2 {
		t.Fatalf("HEAD has %d rows, want 2", len(head.Rows))
	}
	// Warning count stays at one: the fallback itself does not re-warn.
	warned = warned[:0]
	for _, w := range e.Warnings() {
		if strings.Contains(w, "LIMIT without ORDER BY") {
			warned = append(warned, w)
		}
	}
	if len(warned) != 1 {
		t.Fatalf("warning should fire once, got %d", len(warned))
	}
}
