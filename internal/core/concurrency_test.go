package core

// Satellite regressions for the engine's concurrency surface: Stats reads
// must be tear-free against a concurrently driven engine (run under -race),
// and bare LIMIT views must warn once about their permanent full-recompute
// fallback while still producing exact results.

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/events"
	"repro/internal/relation"
)

const statsRaceProgram = `
CREATE TABLE T (x int, y int);
INSERT INTO T VALUES (1, 10), (2, 20), (3, 30);
C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M*, MOUSE_UP AS U
    RETURN (D.t, D.x, D.y, 0 AS dx, 0 AS dy),
           (M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy);
TOTALS = SELECT x, sum(y) AS total FROM T GROUP BY x;
`

// TestStatsSnapshotRace hammers one engine from a feeder goroutine while
// others snapshot stats, reset them, and read relations. The engine lock
// must make every combination tear-free; the test is only meaningful under
// -race (it asserts liveness otherwise).
func TestStatsSnapshotRace(t *testing.T) {
	e := New(Config{})
	if err := e.LoadProgram(statsRaceProgram); err != nil {
		t.Fatal(err)
	}
	const rounds = 200
	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			drag := events.Drag(int64(i*10), 5, 5, 50, 50, 2)
			for _, ev := range drag {
				if _, err := e.FeedEvent(ev); err != nil {
					t.Errorf("feed: %v", err)
					return
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			st := e.StatsSnapshot()
			if st.EventsFed < 0 {
				t.Errorf("torn stats: %+v", st)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if i%50 == 0 {
				e.ResetStats()
			}
			if _, err := e.Relation("TOTALS"); err != nil {
				t.Errorf("relation: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds/4; i++ {
			err := e.InsertRows("T", []relation.Tuple{
				{relation.Int(int64(i)), relation.Int(int64(i) * 7)},
			})
			if err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	// A concurrent ResetStats may have landed last; feed once more and the
	// snapshot must observe it (sanity that counting still works).
	if _, err := e.FeedEvent(events.Mouse(events.Hover, 1<<30, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if e.StatsSnapshot().EventsFed == 0 {
		t.Fatal("stats lost the final event")
	}
}

// TestBareLimitIncremental pins the bare-LIMIT contract: the view is
// delta-safe (its prefix is pinned to the deterministic full-tuple order),
// definition emits no warning, changes propagate without full-recompute
// fallbacks, and the contents are exactly the first k rows of the sorted
// bag at every step.
func TestBareLimitIncremental(t *testing.T) {
	e := New(Config{})
	if err := e.LoadProgram(`
CREATE TABLE T (x int);
INSERT INTO T VALUES (3), (1), (2);
HEAD = SELECT x FROM T LIMIT 2;
`); err != nil {
		t.Fatal(err)
	}
	for _, w := range e.Warnings() {
		if strings.Contains(w, "LIMIT") {
			t.Fatalf("bare LIMIT should not warn anymore: %q", w)
		}
	}
	wantHead := func(want ...int64) {
		t.Helper()
		head, err := e.Relation("HEAD")
		if err != nil {
			t.Fatal(err)
		}
		if len(head.Rows) != len(want) {
			t.Fatalf("HEAD has %d rows, want %d", len(head.Rows), len(want))
		}
		for i, w := range want {
			got, _ := head.Rows[i][0].AsInt()
			if got != w {
				t.Fatalf("HEAD row %d = %d, want %d (full: %v)", i, got, w, head.Rows)
			}
		}
	}
	wantHead(1, 2) // first 2 of sorted bag {1,2,3}

	// Changes propagate incrementally: no full-recompute fallback, and the
	// prefix tracks the sorted bag exactly.
	before := e.StatsSnapshot().FullFallbacks
	if err := e.InsertRows("T", []relation.Tuple{{relation.Int(0)}}); err != nil {
		t.Fatal(err)
	}
	if got := e.StatsSnapshot().FullFallbacks; got != before {
		t.Fatalf("bare LIMIT should apply deltas: fallbacks %d -> %d", before, got)
	}
	wantHead(0, 1) // sorted bag {0,1,2,3}

	if err := e.Exec("DELETE FROM T WHERE x = 1"); err != nil {
		t.Fatal(err)
	}
	wantHead(0, 2) // sorted bag {0,2,3}
}
