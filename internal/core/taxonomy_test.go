package core

// Tests for §2.1.3: "the primary classes of interaction techniques —
// interactive selection, changing visual encodings, adding or removing
// marks, coordinated views, and undo/redo — can be readily expressed in
// DeVIL". Each test expresses one taxonomy class with only the language
// constructs of §2.1 and checks the resulting behaviour.

import (
	"testing"

	"repro/internal/events"
	"repro/internal/relation"
)

// Interactive selection: a join between the interaction event stream and the
// rendered marks relations (covered extensively by engine_test.go; this is
// the minimal form).
func TestTaxonomyInteractiveSelection(t *testing.T) {
	e := New(Config{})
	if err := e.LoadProgram(`
CREATE TABLE Data (id int, x float, y float);
INSERT INTO Data VALUES (1, 50, 50), (2, 150, 150);
MARKS = SELECT 5 AS radius, x AS center_x, y AS center_y, id FROM Data;
C = EVENT MOUSE_DOWN AS D, MOUSE_UP AS U RETURN (D.t, D.x, D.y);
hit = SELECT MK.id FROM C, MARKS@vnow-1 AS MK
      WHERE in_rectangle(MK.center_x, MK.center_y, C.x - 10, C.y - 10, C.x + 10, C.y + 10);
`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.FeedStream(events.Stream{
		events.Mouse(events.MouseDown, 0, 148, 152),
		events.Mouse(events.MouseUp, 1, 148, 152),
	}); err != nil {
		t.Fatal(err)
	}
	hit, _ := e.Relation("hit")
	if hit.Len() != 1 {
		t.Fatalf("hit = %d rows\n%s", hit.Len(), hit)
	}
	if id, _ := hit.Rows[0][0].AsInt(); id != 2 {
		t.Fatalf("hit id = %d", id)
	}
}

// Changing visual encodings: a keyboard interaction flips the projection
// clause (color) of the marks relation — "naturally translates into
// modifications of a projection clause".
func TestTaxonomyVisualEncodingChange(t *testing.T) {
	e := New(Config{})
	// mode accumulates key presses across interactions via the versioned
	// self-reference idiom (define, then redefine reading @vnow-1) — each
	// key press is its own transaction, so the compound table K holds only
	// the latest press.
	if err := e.LoadProgram(`
CREATE TABLE Data (id int, v float);
INSERT INTO Data VALUES (1, 10), (2, 80);
K = EVENT KEY_PRESS AS P RETURN (P.t, P.key);
mode = SELECT 0 AS by_value;
mode = SELECT ((SELECT count(*) FROM K) + (SELECT by_value FROM mode@vnow-1)) % 2 AS by_value;
MARKS = SELECT id * 50 AS center_x, 100 AS center_y, 5 AS radius,
        CASE WHEN (SELECT by_value FROM mode) = 1 AND v > 50 THEN 'red'
             WHEN (SELECT by_value FROM mode) = 1 THEN 'blue'
             ELSE 'gray' END AS fill,
        id
        FROM Data;
`); err != nil {
		t.Fatal(err)
	}
	fills := func() []string {
		m, _ := e.Relation("MARKS")
		vals, _ := m.Column("fill")
		out := make([]string, len(vals))
		for i, v := range vals {
			out[i] = v.AsString()
		}
		return out
	}
	before := fills()
	if before[0] != "gray" || before[1] != "gray" {
		t.Fatalf("initial encoding = %v", before)
	}
	if _, err := e.FeedEvent(events.Key(0, "c")); err != nil {
		t.Fatal(err)
	}
	after := fills()
	if after[0] != "blue" || after[1] != "red" {
		t.Fatalf("toggled encoding = %v", after)
	}
	// toggling again restores the original encoding
	if _, err := e.FeedEvent(events.Key(1, "c")); err != nil {
		t.Fatal(err)
	}
	if again := fills(); again[0] != "gray" {
		t.Fatalf("re-toggled encoding = %v", again)
	}
}

// Adding or removing marks: "natively supported by inserting or removing
// data in the underlying database relations and performing view updates, or
// by manipulating selection predicates".
func TestTaxonomyAddRemoveMarks(t *testing.T) {
	e := New(Config{})
	if err := e.LoadProgram(`
CREATE TABLE Data (id int, v float);
INSERT INTO Data VALUES (1, 10), (2, 80);
MARKS = SELECT id * 40 AS center_x, v AS center_y, 4 AS radius, id FROM Data WHERE v < 100;
`); err != nil {
		t.Fatal(err)
	}
	count := func() int {
		m, _ := e.Relation("MARKS")
		return m.Len()
	}
	if count() != 2 {
		t.Fatalf("marks = %d", count())
	}
	// data path
	if err := e.Exec("INSERT INTO Data VALUES (3, 55)"); err != nil {
		t.Fatal(err)
	}
	if count() != 3 {
		t.Fatalf("marks after insert = %d", count())
	}
	if err := e.Exec("DELETE FROM Data WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if count() != 2 {
		t.Fatalf("marks after delete = %d", count())
	}
	// predicate path: redefine the view with a tighter predicate
	if err := e.Exec("MARKS = SELECT id * 40 AS center_x, v AS center_y, 4 AS radius, id FROM Data WHERE v < 60"); err != nil {
		t.Fatal(err)
	}
	if count() != 1 {
		t.Fatalf("marks after predicate change = %d", count())
	}
}

// Coordinated views: "expressed by sharing relations between multiple marks
// relation definitions" — two charts coordinate on one selection view.
func TestTaxonomyCoordinatedViews(t *testing.T) {
	e := New(Config{})
	if err := e.LoadProgram(`
CREATE TABLE Data (id int, a float, b float);
INSERT INTO Data VALUES (1, 10, 90), (2, 60, 40), (3, 90, 10);
C = EVENT MOUSE_DOWN AS D, MOUSE_UP AS U RETURN (D.t, D.x, D.y);
sel = SELECT id FROM Data WHERE a > (SELECT min(x) FROM C);
CHART1 = SELECT a AS center_x, 10 AS center_y, 3 AS radius,
         CASE WHEN id IN sel THEN 'red' ELSE 'gray' END AS fill, id FROM Data;
CHART2 = SELECT b AS x, 20 AS y, 5 AS width, 30 AS height,
         CASE WHEN id IN sel THEN 'red' ELSE 'gray' END AS fill, id FROM Data;
`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.FeedStream(events.Stream{
		events.Mouse(events.MouseDown, 0, 50, 0),
		events.Mouse(events.MouseUp, 1, 50, 0),
	}); err != nil {
		t.Fatal(err)
	}
	for _, chart := range []string{"CHART1", "CHART2"} {
		rel, _ := e.Relation(chart)
		reds := 0
		fills, _ := rel.Column("fill")
		for _, f := range fills {
			if f.AsString() == "red" {
				reds++
			}
		}
		if reds != 2 {
			t.Fatalf("%s reds = %d, want 2 (both views coordinate on sel)", chart, reds)
		}
	}
}

// Undo and redo: "supported by the versioning semantics within and across
// interactions". Undo twice walks back two interactions; redo is an undo of
// the undo.
func TestTaxonomyUndoRedo(t *testing.T) {
	e := loadBrushing(t, Config{})
	reds := func() int {
		sp, _ := e.Relation("SPLOT_POINTS")
		fills, _ := sp.Column("fill")
		n := 0
		for _, f := range fills {
			if f.AsString() == "red" {
				n++
			}
		}
		return n
	}
	if _, err := e.FeedStream(selectDrag(0)); err != nil {
		t.Fatal(err)
	}
	selectedState := reds()
	if selectedState == 0 {
		t.Fatal("selection missing")
	}
	if err := e.Undo(); err != nil {
		t.Fatal(err)
	}
	if reds() != 0 {
		t.Fatalf("undo left %d red marks", reds())
	}
	// redo = undo the undo (the versioning walk of §2.1.3)
	if err := e.Undo(); err != nil {
		t.Fatal(err)
	}
	if reds() != selectedState {
		t.Fatalf("redo restored %d red marks, want %d", reds(), selectedState)
	}
}

// Intra-interaction versions: a @tnow-1 reference exposes the previous
// event's state, enabling per-event deltas such as velocity or mouse
// trails.
func TestTaxonomyTnowViews(t *testing.T) {
	e := New(Config{})
	if err := e.LoadProgram(`
C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M*, MOUSE_UP AS U
    RETURN (D.t, D.x, D.y, 0 AS dx, 0 AS dy),
           (M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy);
-- the number of events seen at the previous event (a trail length)
trail = SELECT count(*) AS now, (SELECT count(*) FROM C@tnow-1) AS prev FROM C;
`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.FeedStream(events.Stream{
		events.Mouse(events.MouseDown, 0, 0, 10),
		events.Mouse(events.MouseMove, 1, 5, 10),
		events.Mouse(events.MouseMove, 2, 9, 10),
	}); err != nil {
		t.Fatal(err)
	}
	tr, _ := e.Relation("trail")
	if tr.Len() != 1 {
		t.Fatalf("trail rows = %d", tr.Len())
	}
	now, _ := tr.Rows[0][0].AsInt()
	prev, _ := tr.Rows[0][1].AsInt()
	if now != 3 || prev != 2 {
		t.Fatalf("trail now=%d prev=%d, want 3/2", now, prev)
	}
}

// Simultaneous interactions: a mouse interaction and a keyboard interaction
// run in parallel (interleaved input feeds both NFAs); the engine warns
// about neither since their alphabets are disjoint.
func TestTaxonomyParallelInteractions(t *testing.T) {
	e := New(Config{})
	if err := e.LoadProgram(`
CM = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M*, MOUSE_UP AS U
     RETURN (D.t, D.x, D.y, 0 AS dx, 0 AS dy),
            (M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy);
CK = EVENT KEY_PRESS AS P RETURN (P.t, P.key);
`); err != nil {
		t.Fatal(err)
	}
	if len(e.Warnings()) != 0 {
		t.Fatalf("disjoint interactions should not warn: %v", e.Warnings())
	}
	// Interleave: down, key, move, key, up.
	stream := events.Stream{
		events.Mouse(events.MouseDown, 0, 0, 10),
		events.Key(1, "shift"),
		events.Mouse(events.MouseMove, 2, 5, 10),
		events.Key(3, "shift"),
		events.Mouse(events.MouseUp, 4, 5, 10),
	}
	if _, err := e.FeedStream(stream); err != nil {
		t.Fatal(err)
	}
	cm, _ := e.Relation("CM")
	ck, _ := e.Relation("CK")
	if cm.Len() != 2 { // down + move rows
		t.Fatalf("CM rows = %d\n%s", cm.Len(), cm)
	}
	// Single-event interactions commit per key press; the last key press
	// leaves one row.
	if ck.Len() != 1 {
		t.Fatalf("CK rows = %d\n%s", ck.Len(), ck)
	}
	if ck.Rows[0][1].AsString() != "shift" {
		t.Fatalf("CK key = %s", ck.Rows[0][1])
	}
}

// Cross-version analysis: a view can compare the current interaction's
// selection against the previous interaction's (vnow-1 vs vnow-2), the
// "what changed since last time" idiom.
func TestTaxonomyCrossVersionComparison(t *testing.T) {
	e := loadBrushing(t, Config{})
	if err := e.Exec(`newly = SELECT productId FROM selected
		WHERE productId NOT IN (SELECT productId FROM selected@vnow-1)`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.FeedStream(selectDrag(0)); err != nil {
		t.Fatal(err)
	}
	newly, _ := e.Relation("newly")
	got := ids(t, newly, "productId")
	if len(got) != 2 || !got[2] || !got[3] {
		t.Fatalf("newly selected = %v, want {2,3}", got)
	}
	// A second identical drag selects nothing new.
	if _, err := e.FeedStream(selectDrag(100)); err != nil {
		t.Fatal(err)
	}
	newly, _ = e.Relation("newly")
	if newly.Len() != 0 {
		t.Fatalf("re-selection should yield no new products, got %d\n%s", newly.Len(), newly)
	}
	_ = relation.Current()
}
