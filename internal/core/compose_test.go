package core

import (
	"strings"
	"testing"

	"repro/internal/events"
	"repro/internal/expr"
	"repro/internal/parser"
)

func parseEvent(t *testing.T, src string) *parser.EventStmt {
	t.Helper()
	stmts, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return stmts[0].(*parser.EventStmt)
}

func TestComposeSequentialBrushThenDrag(t *testing.T) {
	brush := parseEvent(t, `I1 = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U
		RETURN (D.t, D.x, D.y)`)
	drag := parseEvent(t, `I2 = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U
		RETURN (M.t, M.x, M.y)`)
	combined, err := ComposeSequential("I12", brush, drag, nil)
	if err != nil {
		t.Fatal(err)
	}
	if combined.Name != "I12" || len(combined.Seq) != 6 {
		t.Fatalf("combined = %+v", combined)
	}
	// I2's aliases were renamed to avoid collisions.
	if combined.Seq[3].Alias == "D" {
		t.Fatalf("alias collision not renamed: %+v", combined.Seq)
	}
	// The combined statement compiles into a working recognizer.
	rec, err := events.Compile(combined, expr.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	var committed bool
	stream := append(events.Drag(0, 0, 10, 20, 30, 2), events.Drag(10, 20, 30, 40, 50, 2)...)
	for _, ev := range stream {
		acts, err := rec.Feed(ev)
		if err != nil {
			t.Fatal(err)
		}
		if acts.Committed {
			committed = true
		}
	}
	if !committed {
		t.Fatal("two sequential drags should complete the composed interaction")
	}
}

func TestComposeRenamesPredicatesAndReturns(t *testing.T) {
	i1 := parseEvent(t, `I1 = EVENT MOUSE_DOWN AS D, MOUSE_UP AS U RETURN (D.x)`)
	i2 := parseEvent(t, `I2 = EVENT MOUSE_DOWN AS D, MOUSE_UP AS U WHERE D.y > 5 RETURN (D.x)`)
	combined, err := ComposeSequential("I12", i1, i2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// I2's filter must now reference the renamed alias.
	found := false
	for _, f := range combined.Filters {
		if strings.Contains(f.Cond.String(), "D_2.y") {
			found = true
		}
	}
	if !found {
		t.Fatalf("filters not renamed: %+v", combined.Filters)
	}
	// Second return group references renamed alias too.
	if !strings.Contains(combined.Return[1][0].Expr.String(), "D_2.x") {
		t.Fatalf("return group not renamed: %s", combined.Return[1][0].Expr.String())
	}
}

func TestComposeIncompatibleAritiesNeedExplicitMerge(t *testing.T) {
	i1 := parseEvent(t, `I1 = EVENT MOUSE_DOWN AS D, MOUSE_UP AS U RETURN (D.x)`)
	i2 := parseEvent(t, `I2 = EVENT KEY_PRESS AS K, MOUSE_UP AS U RETURN (K.t, K.key)`)
	if _, err := ComposeSequential("I12", i1, i2, nil); err == nil {
		t.Fatal("default merge should reject incompatible arities")
	}
	// An explicit merge that keeps only I1's groups succeeds.
	merge := func(g1, g2 [][]parser.SelectItem) ([][]parser.SelectItem, error) {
		return g1, nil
	}
	combined, err := ComposeSequential("I12", i1, i2, merge)
	if err != nil {
		t.Fatal(err)
	}
	if len(combined.Return) != 1 {
		t.Fatalf("merged groups = %d", len(combined.Return))
	}
}

func TestAnalyzeComposition(t *testing.T) {
	i1 := parseEvent(t, `I1 = EVENT MOUSE_DOWN AS D, MOUSE_UP AS U RETURN (D.x)`)
	i2 := parseEvent(t, `I2 = EVENT MOUSE_DOWN AS D2, MOUSE_MOVE* AS M, MOUSE_UP AS U2 RETURN (D2.x)`)
	warns := AnalyzeComposition(i1, i2)
	if len(warns) < 2 {
		t.Fatalf("warnings = %v, want ambiguity + overlap", warns)
	}
	i3 := parseEvent(t, `I3 = EVENT KEY_PRESS AS K, KEY_PRESS AS K2 RETURN (K.t)`)
	if warns := AnalyzeComposition(i1, i3); len(warns) != 0 {
		t.Fatalf("disjoint alphabets should not warn: %v", warns)
	}
}
