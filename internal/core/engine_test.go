package core

import (
	"strings"
	"testing"

	"repro/internal/events"
	"repro/internal/relation"
)

// brushingProgram is the paper's running example (Figure 2 / DeVIL 1-3): a
// scatterplot of product revenue vs profit linked to a price histogram via
// the selected view, with a mouse-drag selection interaction.
//
// Geometry: revenue and profit both span [0,100]; the scatterplot maps
// revenue to x in [20,380] and profit to y in [280,20] (y inverted).
// Product positions: p1 (20,280), p2 (110,150), p3 (200,20), p4 (290,215),
// p5 (380,85).
const brushingProgram = `
CREATE TABLE Sales (productId int, price float, profit float, revenue float, productName string);
INSERT INTO Sales VALUES
  (1, 40, 0,   0,   'anvil'),
  (2, 55, 50,  25,  'brush'),
  (3, 70, 100, 50,  'cog'),
  (4, 85, 25,  75,  'dynamo'),
  (5, 90, 75,  100, 'easel');

scale_x = SELECT min(revenue) AS lo, max(revenue) AS hi FROM Sales;
scale_y = SELECT min(profit) AS lo, max(profit) AS hi FROM Sales;

-- DeVIL 1: static scatterplot
SPLOT_POINTS =
  SELECT 8 AS radius, 'gray' AS stroke, 'gray' AS fill,
         linear_scale(Sales.revenue, sx.lo, sx.hi, 20, 380) AS center_x,
         linear_scale(Sales.profit, sy.lo, sy.hi, 280, 20) AS center_y,
         productId
  FROM Sales, scale_x AS sx, scale_y AS sy;

-- DeVIL 2: the drag compound event (with the FORALL guard)
C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M*, MOUSE_UP AS U
    WHERE FORALL m IN M m.y > 5
    RETURN (D.t, D.x, D.y, 0 AS dx, 0 AS dy),
           (M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy);

-- DeVIL 3: hit testing against the pre-interaction marks
selected =
  SELECT DISTINCT SP.productId
  FROM C, SPLOT_POINTS@vnow-1 AS SP
  WHERE in_rectangle(SP.center_x, SP.center_y,
        (SELECT min(x) FROM C), (SELECT min(y) FROM C),
        (SELECT max(x + dx) FROM C), (SELECT max(y + dy) FROM C));

-- DeVIL 3: redefinition of the scatterplot over the selection
SPLOT_POINTS =
  SELECT 8 AS radius, 'gray' AS stroke, 'gray' AS fill,
         linear_scale(Sales.revenue, sx.lo, sx.hi, 20, 380) AS center_x,
         linear_scale(Sales.profit, sy.lo, sy.hi, 280, 20) AS center_y,
         productId
  FROM Sales, scale_x AS sx, scale_y AS sy
  WHERE productId NOT IN selected
  UNION
  SELECT 8 AS radius, 'red' AS stroke, 'red' AS fill,
         linear_scale(Sales.revenue, sx.lo, sx.hi, 20, 380) AS center_x,
         linear_scale(Sales.profit, sy.lo, sy.hi, 280, 20) AS center_y,
         productId
  FROM Sales, scale_x AS sx, scale_y AS sy
  WHERE productId IN selected;

-- linked histogram of price per product
HIST =
  SELECT productId * 30 + 10 AS x, 280 - price AS y, 20 AS width, price AS height,
         CASE WHEN productId IN selected THEN 'red' ELSE 'blue' END AS fill,
         productId
  FROM Sales;

P  = render(SELECT * FROM SPLOT_POINTS);
P2 = render(SELECT x, y, width, height, fill FROM HIST, 'rect');
`

func loadBrushing(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e := New(cfg)
	if err := e.LoadProgram(brushingProgram); err != nil {
		t.Fatalf("load: %v", err)
	}
	return e
}

// selectDrag covers products 2 (110,150) and 3 (200,20).
func selectDrag(t0 int64) events.Stream {
	return events.Stream{
		events.Mouse(events.MouseDown, t0, 100, 10),
		events.Mouse(events.MouseMove, t0+1, 150, 80),
		events.Mouse(events.MouseMove, t0+2, 210, 160),
		events.Mouse(events.MouseUp, t0+3, 210, 160),
	}
}

func ids(t *testing.T, rel *relation.Relation, col string) map[int64]bool {
	t.Helper()
	vals, err := rel.Column(col)
	if err != nil {
		t.Fatal(err)
	}
	out := map[int64]bool{}
	for _, v := range vals {
		n, _ := v.AsInt()
		out[n] = true
	}
	return out
}

func fillOf(t *testing.T, e *Engine, view string, productID int64) string {
	t.Helper()
	rel, err := e.Relation(view)
	if err != nil {
		t.Fatal(err)
	}
	pidIdx := rel.Schema.Index("", "productId")
	fillIdx := rel.Schema.Index("", "fill")
	if pidIdx < 0 || fillIdx < 0 {
		t.Fatalf("view %s lacks productId/fill: %s", view, rel.Schema)
	}
	for _, row := range rel.Rows {
		if n, _ := row[pidIdx].AsInt(); n == productID {
			return row[fillIdx].AsString()
		}
	}
	t.Fatalf("product %d not in %s", productID, view)
	return ""
}

func TestStaticVisualizationLoad(t *testing.T) {
	e := loadBrushing(t, Config{})
	sp, err := e.Relation("SPLOT_POINTS")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Len() != 5 {
		t.Fatalf("scatterplot marks = %d", sp.Len())
	}
	for id := int64(1); id <= 5; id++ {
		if f := fillOf(t, e, "SPLOT_POINTS", id); f != "gray" {
			t.Fatalf("product %d fill = %s, want gray", id, f)
		}
	}
	sel, err := e.Relation("selected")
	if err != nil {
		t.Fatal(err)
	}
	if sel.Len() != 0 {
		t.Fatalf("selected should start empty, has %d", sel.Len())
	}
	// p2 sits at (110,150): a gray circle must be painted there.
	px := e.Image().At(110, 150)
	if px.R != 128 || px.G != 128 || px.B != 128 {
		t.Fatalf("pixel at p2 = %+v, want gray", px)
	}
	// and the histogram bars are blue
	if f := fillOf(t, e, "HIST", 1); f != "blue" {
		t.Fatalf("hist fill = %s", f)
	}
}

func TestLinkedBrushingSelection(t *testing.T) {
	e := loadBrushing(t, Config{})
	txns, err := e.FeedStream(selectDrag(0))
	if err != nil {
		t.Fatal(err)
	}
	last := txns[len(txns)-1]
	if !last.Committed {
		t.Fatalf("drag did not commit: %+v", last)
	}
	sel, _ := e.Relation("selected")
	got := ids(t, sel, "productId")
	if len(got) != 2 || !got[2] || !got[3] {
		t.Fatalf("selected = %v, want {2,3}", got)
	}
	// Linked views: scatterplot circles red for 2,3; histogram bars red too.
	for _, id := range []int64{2, 3} {
		if f := fillOf(t, e, "SPLOT_POINTS", id); f != "red" {
			t.Errorf("product %d scatter fill = %s, want red", id, f)
		}
		if f := fillOf(t, e, "HIST", id); f != "red" {
			t.Errorf("product %d hist fill = %s, want red", id, f)
		}
	}
	for _, id := range []int64{1, 4, 5} {
		if f := fillOf(t, e, "SPLOT_POINTS", id); f != "gray" {
			t.Errorf("product %d scatter fill = %s, want gray", id, f)
		}
	}
	// Pixels: p2's position now renders red.
	px := e.Image().At(110, 150)
	if px.R < 180 || px.G > 100 {
		t.Fatalf("pixel at p2 = %+v, want red", px)
	}
}

func TestMidDragIncrementalUpdates(t *testing.T) {
	e := loadBrushing(t, Config{})
	// Down then a move reaching only p2's neighbourhood.
	if _, err := e.FeedEvent(events.Mouse(events.MouseDown, 0, 100, 140)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.FeedEvent(events.Mouse(events.MouseMove, 1, 120, 160)); err != nil {
		t.Fatal(err)
	}
	sel, _ := e.Relation("selected")
	got := ids(t, sel, "productId")
	if len(got) != 1 || !got[2] {
		t.Fatalf("mid-drag selected = %v, want {2}", got)
	}
	if !e.InTxn() {
		t.Fatal("transaction should be in flight mid-drag")
	}
	// The uncommitted state is visible: p2 is already red (§2.1.2's key
	// difference from traditional transactions).
	if f := fillOf(t, e, "SPLOT_POINTS", 2); f != "red" {
		t.Fatalf("mid-drag fill = %s, want red", f)
	}
	if _, err := e.FeedEvent(events.Mouse(events.MouseUp, 2, 120, 160)); err != nil {
		t.Fatal(err)
	}
	if e.InTxn() {
		t.Fatal("transaction should have committed")
	}
}

func TestAbortRollsBackVisualization(t *testing.T) {
	e := loadBrushing(t, Config{})
	// First, a committed selection of p2/p3.
	if _, err := e.FeedStream(selectDrag(0)); err != nil {
		t.Fatal(err)
	}
	// New drag that would select everything, but a move dips to y=3,
	// violating FORALL m.y > 5 -> abort.
	if _, err := e.FeedEvent(events.Mouse(events.MouseDown, 100, 0, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.FeedEvent(events.Mouse(events.MouseMove, 101, 390, 290)); err != nil {
		t.Fatal(err)
	}
	te, err := e.FeedEvent(events.Mouse(events.MouseMove, 102, 390, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !te.Aborted {
		t.Fatalf("expected abort, got %+v", te)
	}
	// State rolled back to the committed selection {2,3}.
	sel, _ := e.Relation("selected")
	got := ids(t, sel, "productId")
	if len(got) != 2 || !got[2] || !got[3] {
		t.Fatalf("post-abort selected = %v, want {2,3}", got)
	}
	c, _ := e.Relation("C")
	if c.Len() != 0 {
		t.Fatalf("post-abort C should be cleared, has %d rows", c.Len())
	}
	if e.InTxn() {
		t.Fatal("no transaction should be in flight after abort")
	}
}

func TestTable1ThroughEngine(t *testing.T) {
	e := loadBrushing(t, Config{})
	stream := events.Stream{
		events.Mouse(events.MouseDown, 0, 5, 15),
		events.Mouse(events.MouseMove, 1, 6, 17),
		events.Mouse(events.MouseMove, 40, 10, 10),
	}
	if _, err := e.FeedStream(stream); err != nil {
		t.Fatal(err)
	}
	c, _ := e.Relation("C")
	want := [][]int64{
		{0, 5, 15, 0, 0},
		{1, 5, 15, 1, 2},
		{40, 5, 15, 5, -5},
	}
	if c.Len() != len(want) {
		t.Fatalf("C rows = %d, want %d\n%s", c.Len(), len(want), c)
	}
	for i, w := range want {
		for j, v := range w {
			got, _ := c.Rows[i][j].AsInt()
			if got != v {
				t.Errorf("C[%d][%d] = %d, want %d", i, j, got, v)
			}
		}
	}
	// MOUSE_UP terminates; C keeps its committed contents.
	if _, err := e.FeedEvent(events.Mouse(events.MouseUp, 41, 10, 10)); err != nil {
		t.Fatal(err)
	}
	c, _ = e.Relation("C")
	if c.Len() != 3 {
		t.Fatalf("committed C rows = %d", c.Len())
	}
}

func TestVersionedReads(t *testing.T) {
	e := loadBrushing(t, Config{})
	if _, err := e.FeedStream(selectDrag(0)); err != nil {
		t.Fatal(err)
	}
	// vnow-1 = state before the drag committed: all marks gray.
	old, err := e.RelationAt("SPLOT_POINTS", relation.VNow(2))
	if err != nil {
		t.Fatal(err)
	}
	fills, _ := old.Column("fill")
	for _, f := range fills {
		if f.AsString() != "gray" {
			t.Fatalf("vnow-2 fill = %s, want gray", f)
		}
	}
	// current state has red marks
	cur, _ := e.Relation("SPLOT_POINTS")
	fills, _ = cur.Column("fill")
	reds := 0
	for _, f := range fills {
		if f.AsString() == "red" {
			reds++
		}
	}
	if reds != 2 {
		t.Fatalf("current red marks = %d, want 2", reds)
	}
}

func TestUndoRestoresPreviousVersion(t *testing.T) {
	e := loadBrushing(t, Config{})
	if _, err := e.FeedStream(selectDrag(0)); err != nil {
		t.Fatal(err)
	}
	if f := fillOf(t, e, "SPLOT_POINTS", 2); f != "red" {
		t.Fatal("selection did not apply")
	}
	if err := e.Undo(); err != nil {
		t.Fatal(err)
	}
	if f := fillOf(t, e, "SPLOT_POINTS", 2); f != "gray" {
		t.Fatalf("post-undo fill = %s, want gray", f)
	}
}

func TestRecursionRejected(t *testing.T) {
	e := New(Config{})
	err := e.LoadProgram(`
CREATE TABLE T (a int);
V = SELECT a FROM T WHERE a IN V;
`)
	if err == nil || !strings.Contains(err.Error(), "recursi") {
		t.Fatalf("direct recursion error = %v", err)
	}

	e2 := New(Config{})
	err = e2.LoadProgram(`
CREATE TABLE T (a int);
A = SELECT a FROM T;
B = SELECT a FROM A;
A = SELECT a FROM B;
`)
	if err == nil {
		t.Fatal("mutual recursion should be rejected")
	}

	// The versioned escape hatch is allowed.
	e3 := New(Config{})
	if err := e3.LoadProgram(`
CREATE TABLE T (a int);
INSERT INTO T VALUES (1);
A = SELECT a FROM T;
B = SELECT a FROM A;
A = SELECT a FROM B@vnow-1;
`); err != nil {
		t.Fatalf("versioned mutual reference should be allowed: %v", err)
	}
}

func TestAmbiguityWarning(t *testing.T) {
	e := New(Config{})
	err := e.LoadProgram(`
C1 = EVENT MOUSE_DOWN AS D, MOUSE_UP AS U RETURN (D.t);
C2 = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U RETURN (D.t);
`)
	if err != nil {
		t.Fatal(err)
	}
	warns := e.Warnings()
	if len(warns) == 0 || !strings.Contains(warns[0], "ambiguous") {
		t.Fatalf("warnings = %v", warns)
	}
}

func TestInsertTriggersViewMaintenance(t *testing.T) {
	e := loadBrushing(t, Config{})
	sp, _ := e.Relation("SPLOT_POINTS")
	if sp.Len() != 5 {
		t.Fatal("precondition")
	}
	if err := e.Exec("INSERT INTO Sales VALUES (6, 50, 60, 60, 'flask')"); err != nil {
		t.Fatal(err)
	}
	sp, _ = e.Relation("SPLOT_POINTS")
	if sp.Len() != 6 {
		t.Fatalf("marks after insert = %d, want 6", sp.Len())
	}
	if err := e.Exec("DELETE FROM Sales WHERE productId = 6"); err != nil {
		t.Fatal(err)
	}
	sp, _ = e.Relation("SPLOT_POINTS")
	if sp.Len() != 5 {
		t.Fatalf("marks after delete = %d, want 5", sp.Len())
	}
}

func TestIncrementalMatchesFullRecompute(t *testing.T) {
	inc := loadBrushing(t, Config{})
	full := loadBrushing(t, Config{RecomputeAll: true})
	for _, eng := range []*Engine{inc, full} {
		if _, err := eng.FeedStream(selectDrag(0)); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"selected", "SPLOT_POINTS", "HIST"} {
		a, _ := inc.Relation(name)
		b, _ := full.Relation(name)
		ac, bc := a.Clone(), b.Clone()
		ac.SortDeterministic()
		bc.SortDeterministic()
		if !relation.Equal(ac, bc) {
			t.Errorf("view %s diverges between incremental and full recompute:\n%s\nvs\n%s", name, ac, bc)
		}
	}
	if inc.Stats.ViewRecomputes >= full.Stats.ViewRecomputes {
		t.Errorf("incremental recomputes (%d) should be fewer than full (%d)",
			inc.Stats.ViewRecomputes, full.Stats.ViewRecomputes)
	}
}

func TestAdHocQuery(t *testing.T) {
	e := loadBrushing(t, Config{})
	rel, err := e.Query("SELECT count(*) AS n FROM Sales")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := rel.Rows[0][0].AsInt(); n != 5 {
		t.Fatalf("count = %d", n)
	}
}

func TestCannotInsertIntoView(t *testing.T) {
	e := loadBrushing(t, Config{})
	if err := e.Exec("INSERT INTO selected VALUES (9)"); err == nil {
		t.Fatal("insert into view should fail")
	}
	if err := e.Exec("V_NEW = SELECT 1 AS a; INSERT INTO V_NEW VALUES (2)"); err == nil {
		t.Fatal("insert into view should fail")
	}
}

func TestPixelsRelationExport(t *testing.T) {
	e := loadBrushing(t, Config{})
	p := e.Pixels(true)
	if p.Len() == 0 {
		t.Fatal("pixels relation should have non-background rows after render")
	}
	if p.Schema.Len() != 6 {
		t.Fatalf("pixels schema = %s", p.Schema)
	}
}

func TestRepeatedInteractionsAccumulateVersions(t *testing.T) {
	e := loadBrushing(t, Config{})
	v0 := e.Store().Versions()
	for k := 0; k < 3; k++ {
		if _, err := e.FeedStream(selectDrag(int64(k * 100))); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Store().Versions(); got != v0+3 {
		t.Fatalf("versions = %d, want %d", got, v0+3)
	}
}

// A schema-changing view redefinition must not poison the delta log: the
// store records it as a full reset, so historical reads keep the schema
// (and values) the version actually had, and reads after the redefinition
// see the new shape.
func TestRedefinedViewSchemaInHistory(t *testing.T) {
	e := New(Config{})
	if err := e.LoadProgram(`
CREATE TABLE T (a int, b int);
INSERT INTO T VALUES (1, 10), (2, 20);
V = SELECT a AS first, b AS second FROM T;
`); err != nil {
		t.Fatal(err)
	}
	// Redefine with swapped columns and different names, then commit.
	if err := e.Exec("V = SELECT b AS big, a AS small FROM T"); err != nil {
		t.Fatal(err)
	}
	e.Commit()

	// The pre-redefinition version keeps the old schema and column order.
	old, err := e.RelationAt("V", relation.VNow(2))
	if err != nil {
		t.Fatal(err)
	}
	if old.Schema.Index("", "first") != 0 || old.Schema.Index("", "big") >= 0 {
		t.Fatalf("V@vnow-2 schema = %s, want the pre-redefinition columns", old.Schema)
	}
	firsts, err := old.Column("first")
	if err != nil {
		t.Fatal(err)
	}
	sum := int64(0)
	for _, v := range firsts {
		n, _ := v.AsInt()
		sum += n
	}
	if sum != 3 { // a-values 1+2
		t.Fatalf("V@vnow-2 first-column sum = %d, want 3", sum)
	}
	// The post-redefinition version carries the new schema.
	now, err := e.RelationAt("V", relation.VNow(1))
	if err != nil {
		t.Fatal(err)
	}
	if now.Schema.Index("", "big") != 0 {
		t.Fatalf("V@vnow-1 schema = %s, want the redefined columns", now.Schema)
	}
	bigs, _ := now.Column("big")
	sum = 0
	for _, v := range bigs {
		n, _ := v.AsInt()
		sum += n
	}
	if sum != 30 { // b-values 10+20
		t.Fatalf("V@vnow-1 big-column sum = %d, want 30", sum)
	}
}

// TestUndoSurvivesOrderedViewRedefinition: view definitions are not
// versioned, so undo/rollback can restore an ordered view's rows computed
// under a previous definition whose columns the current sort keys cannot
// evaluate. The restore-order pass must degrade to bag order for that view
// (the pre-ordered-maintenance behavior), not fail the undo; historical
// reads through RelationAt must likewise fall back instead of erroring.
func TestUndoSurvivesOrderedViewRedefinition(t *testing.T) {
	e := New(Config{})
	if err := e.LoadProgram(`
CREATE TABLE T (a int, b int);
INSERT INTO T VALUES (1, 9), (2, 8), (3, 7);
V = SELECT a FROM T ORDER BY a;
`); err != nil {
		t.Fatal(err)
	}
	if err := e.Exec("INSERT INTO T VALUES (4, 6)"); err != nil {
		t.Fatal(err)
	}
	e.Commit()
	// Redefine V with a different schema and sort keys.
	if err := e.Exec("V = SELECT a, b FROM T ORDER BY b DESC, a"); err != nil {
		t.Fatal(err)
	}
	e.Commit()
	// Reading a version that predates the redefinition returns the old
	// 1-column rows; the current keys cannot order them — no error.
	past, err := e.RelationAt("V", relation.VersionRef{Kind: relation.VersionVNow, Offset: 2})
	if err != nil {
		t.Fatalf("RelationAt across redefinition: %v", err)
	}
	if past.Schema.Len() != 1 || len(past.Rows) != 4 {
		t.Fatalf("historical V = %d cols x %d rows, want 1x4", past.Schema.Len(), len(past.Rows))
	}
	// Undo restores the old-definition rows into the live store while the
	// engine keeps the new definition; this used to fail the whole undo
	// with "unknown column b".
	if err := e.Undo(); err != nil {
		t.Fatalf("Undo across redefinition: %v", err)
	}
	v, err := e.Relation("V")
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Rows) != 4 {
		t.Fatalf("restored V has %d rows, want 4", len(v.Rows))
	}
}
