package core

// Integration tests for the observability layer at the engine level: stage
// spans name the actual work done per event, slow events retain their full
// breakdown, and the DisableObs ablation arm is truly dark.

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// TestEventTraceStages forces every event slow (1ns budget) and checks the
// retained traces break each event into the stages the engine actually ran:
// recognize, per-view delta spans labelled with the path taken, commit — and
// that the span durations account for (approximately) the event latency.
func TestEventTraceStages(t *testing.T) {
	e := loadBrushing(t, Config{LatencyBudget: time.Nanosecond})
	outs, err := e.FeedStream(selectDrag(1))
	if err != nil {
		t.Fatal(err)
	}
	if !outs[len(outs)-1].Committed {
		t.Fatalf("drag should commit, got %+v", outs)
	}

	slow := e.Obs().SlowEvents()
	if len(slow) != len(selectDrag(1)) {
		t.Fatalf("1ns budget should mark every event slow: got %d of %d", len(slow), len(selectDrag(1)))
	}
	if got := e.Obs().Snapshot().Counters["dvms_slow_events_total"]; got != int64(len(slow)) {
		t.Fatalf("slow counter %d != slow log length %d", got, len(slow))
	}

	// The MOUSE_UP event commits the interaction: its trace must carry the
	// compound event table name and the commit-stage span.
	last := slow[len(slow)-1]
	if last.Event != "MOUSE_UP" || last.Interaction != "C" || !last.Slow {
		t.Fatalf("commit trace wrong identity: %+v", last)
	}
	var commits int
	for _, sp := range last.Spans {
		if sp.Stage == obs.StageCommit {
			commits++
		}
	}
	if commits != 1 {
		t.Fatalf("commit trace should carry one commit span: %+v", last.Spans)
	}

	// The drag's MOVE events drive delta propagation: find a trace with
	// delta spans and check each names its view and the path taken, and that
	// span durations account for (approximately) the event latency.
	var deltaTrace *obs.Trace
	for i := range slow {
		for _, sp := range slow[i].Spans {
			if sp.Stage == obs.StageDelta {
				deltaTrace = &slow[i]
			}
		}
	}
	if deltaTrace == nil {
		t.Fatalf("no trace recorded a delta span: %+v", slow)
	}
	stages := map[string]int{}
	paths := map[string]int{}
	var spanSum float64
	for _, sp := range deltaTrace.Spans {
		stages[sp.Stage]++
		if sp.Stage == obs.StageDelta {
			switch sp.Path {
			case obs.PathCube, obs.PathFused, obs.PathRow, obs.PathFallback:
				paths[sp.Path]++
			default:
				t.Fatalf("delta span with unknown path %q: %+v", sp.Path, sp)
			}
			if sp.View == "" {
				t.Fatalf("delta span missing view name: %+v", sp)
			}
		}
		if sp.DurUS < 0 {
			t.Fatalf("negative span duration: %+v", sp)
		}
		spanSum += sp.DurUS
	}
	if stages[obs.StageRecognize] == 0 {
		t.Fatalf("delta trace missing recognize stage: %v", stages)
	}
	if len(paths) == 0 {
		t.Fatalf("no delta paths classified in %+v", deltaTrace.Spans)
	}
	// Spans should account for most of the event: the gap is untimed glue,
	// and the only double count is the sort span nesting inside its view's
	// delta span (see OBSERVABILITY.md), so the sum stays near TotalUS.
	if deltaTrace.TotalUS <= 0 || spanSum <= 0 || spanSum > 2*deltaTrace.TotalUS {
		t.Fatalf("span durations %v µs inconsistent with event total %v µs", spanSum, deltaTrace.TotalUS)
	}

	// Stage histograms saw the same events the traces did.
	snap := e.Obs().Snapshot()
	if ev := snap.Histograms["dvms_event_seconds"]; ev.Count != int64(len(outs)) {
		t.Fatalf("event histogram count %d, want %d", ev.Count, len(outs))
	}
	if c := snap.Histograms["dvms_stage_commit_seconds"]; c.Count == 0 {
		t.Fatalf("commit stage histogram empty: %v", snap.Histograms)
	}
}

// TestTraceRingRetention checks the recent-trace ring holds every event of a
// short session (not only slow ones) under the default budget.
func TestTraceRingRetention(t *testing.T) {
	e := loadBrushing(t, Config{})
	if _, err := e.FeedStream(selectDrag(1)); err != nil {
		t.Fatal(err)
	}
	traces := e.Obs().Traces()
	if len(traces) != len(selectDrag(1)) {
		t.Fatalf("trace ring holds %d, want %d", len(traces), len(selectDrag(1)))
	}
	for _, tr := range traces {
		if tr.Slow {
			t.Fatalf("default 100ms budget marked a µs-scale event slow: %+v", tr)
		}
	}
	if len(e.Obs().SlowEvents()) != 0 {
		t.Fatalf("slow log should be empty under the default budget")
	}
}

// TestDisableObsDark checks the ablation arm: no recorder, no gauges, and
// the event path still works identically.
func TestDisableObsDark(t *testing.T) {
	e := loadBrushing(t, Config{DisableObs: true})
	if e.Obs() != nil {
		t.Fatalf("DisableObs engine still carries a recorder")
	}
	outs, err := e.FeedStream(selectDrag(1))
	if err != nil {
		t.Fatal(err)
	}
	if !outs[len(outs)-1].Committed {
		t.Fatalf("drag should commit with obs disabled, got %+v", outs)
	}
	// Nil-safe surface: every accessor degrades to zero values.
	if e.Obs().Traces() != nil || e.Obs().SlowEvents() != nil || e.Obs().Budget() != 0 {
		t.Fatalf("nil recorder accessors should return zero values")
	}
	if snap := e.Obs().Snapshot(); len(snap.Histograms) != 0 || len(snap.Gauges) != 0 {
		t.Fatalf("nil recorder snapshot should be empty, got %+v", snap)
	}
}

// TestStatGauges checks the engine's legacy counters surface as registry
// gauges (the Stats struct migrated onto the obs registry as callbacks).
func TestStatGauges(t *testing.T) {
	e := loadBrushing(t, Config{})
	if _, err := e.FeedStream(selectDrag(1)); err != nil {
		t.Fatal(err)
	}
	snap := e.Obs().Snapshot()
	if snap.Gauges["dvms_events_fed_total"] != float64(len(selectDrag(1))) {
		t.Fatalf("dvms_events_fed_total gauge = %v, want %d (gauges: %v)",
			snap.Gauges["dvms_events_fed_total"], len(selectDrag(1)), snap.Gauges)
	}
	if snap.Gauges["dvms_store_bytes"] <= 0 {
		t.Fatalf("dvms_store_bytes gauge missing: %v", snap.Gauges)
	}
}
