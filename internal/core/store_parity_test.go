package core

// Randomized delta-log vs snapshot-store parity: the acceptance criterion
// of the delta-log refactor. A snapshot oracle replicating the pre-refactor
// store (whole-database capture on every boundary, plus the restore-exact
// fix) replays the same mutation stream as the real Store; after every
// operation, every relation resolved at every reachable @vnow-i / @tnow-j
// offset must be tuple-identical between the two — including after
// rollback, undo via RestoreVersion, and history eviction with sparse
// checkpoints.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/relation"
)

// oracleSnap is one full-database capture of the oracle store.
type oracleSnap struct {
	rels  map[string]*relation.Relation
	names []string
}

// oracleStore is the pre-refactor storage manager: shallow snapshots of
// every relation at every commit and event mark.
type oracleStore struct {
	rels       map[string]*relation.Relation
	names      []string
	history    []oracleSnap
	txnHist    []oracleSnap
	inTxn      bool
	maxHistory int
}

func newOracleStore(maxHistory int) *oracleStore {
	return &oracleStore{rels: map[string]*relation.Relation{}, maxHistory: maxHistory}
}

func (o *oracleStore) put(rel *relation.Relation) {
	k := keyOf(rel.Name)
	if _, ok := o.rels[k]; !ok {
		o.names = append(o.names, rel.Name)
	}
	o.rels[k] = rel
}

func (o *oracleStore) capture() oracleSnap {
	s := oracleSnap{rels: make(map[string]*relation.Relation, len(o.rels)), names: append([]string(nil), o.names...)}
	for k, r := range o.rels {
		s.rels[k] = r.Snapshot()
	}
	return s
}

func (o *oracleStore) restore(s oracleSnap) {
	o.rels = make(map[string]*relation.Relation, len(s.rels))
	for k, r := range s.rels {
		o.rels[k] = r.Snapshot()
	}
	o.names = append([]string(nil), s.names...)
}

func (o *oracleStore) commit() {
	o.history = append(o.history, o.capture())
	if len(o.history) > o.maxHistory {
		o.history = append([]oracleSnap{}, o.history[len(o.history)-o.maxHistory:]...)
	}
	o.txnHist, o.inTxn = nil, false
}

func (o *oracleStore) beginTxn() {
	o.txnHist = []oracleSnap{o.capture()}
	o.inTxn = true
}

func (o *oracleStore) markEvent() {
	if o.inTxn {
		o.txnHist = append(o.txnHist, o.capture())
	}
}

func (o *oracleStore) rollback() bool {
	if len(o.history) == 0 {
		return false
	}
	o.restore(o.history[len(o.history)-1])
	o.txnHist, o.inTxn = nil, false
	return true
}

func (o *oracleStore) restoreVersion(i int) bool {
	idx := len(o.history) - i
	if i < 1 || idx < 0 {
		return false
	}
	o.restore(o.history[idx])
	return true
}

func (o *oracleStore) resolve(name string, v relation.VersionRef) (*relation.Relation, error) {
	get := func() (*relation.Relation, error) {
		r, ok := o.rels[keyOf(name)]
		if !ok {
			return nil, fmt.Errorf("unknown relation %q", name)
		}
		return r, nil
	}
	fromSnap := func(s oracleSnap) (*relation.Relation, error) {
		r, ok := s.rels[keyOf(name)]
		if !ok {
			return nil, fmt.Errorf("relation %q does not exist at version %s", name, v)
		}
		return r, nil
	}
	switch v.Kind {
	case relation.VersionCurrent:
		return get()
	case relation.VersionVNow:
		if v.Offset == 0 || len(o.history) == 0 {
			return get()
		}
		idx := len(o.history) - v.Offset
		if idx < 0 {
			idx = 0
		}
		return fromSnap(o.history[idx])
	case relation.VersionTNow:
		if len(o.txnHist) == 0 || v.Offset == 0 {
			return get()
		}
		idx := len(o.txnHist) - v.Offset
		if idx < 0 {
			idx = 0
		}
		return fromSnap(o.txnHist[idx])
	default:
		return nil, fmt.Errorf("unknown kind")
	}
}

// storePair drives identical mutations through the delta-log store and the
// snapshot oracle.
type storePair struct {
	s *Store
	o *oracleStore
}

func (p *storePair) put(name string, schema relation.Schema, rows []relation.Tuple) {
	mk := func() *relation.Relation {
		r := relation.New(name, schema)
		r.Rows = append([]relation.Tuple(nil), rows...)
		return r
	}
	p.s.Put(mk())
	p.o.put(mk())
}

func (p *storePair) insert(name string, rows []relation.Tuple) {
	sr, _ := p.s.Get(name)
	sr.Rows = append(sr.Rows, rows...)
	p.s.recordChange(name, relation.Delta{Ins: rows})
	or, _ := p.o.rels[keyOf(name)]
	or.Rows = append(or.Rows, rows...)
}

// deleteVals removes the first occurrence of each tuple from both stores,
// recording the delta on the real one.
func (p *storePair) deleteVals(name string, del []relation.Tuple) {
	remove := func(r *relation.Relation) []relation.Tuple {
		removed := make([]relation.Tuple, 0, len(del))
		for _, d := range del {
			for i, row := range r.Rows {
				if row.Equal(d) {
					removed = append(removed, row)
					r.Rows = append(r.Rows[:i:i], r.Rows[i+1:]...)
					break
				}
			}
		}
		return removed
	}
	sr, _ := p.s.Get(name)
	removed := remove(sr)
	p.s.recordChange(name, relation.Delta{Del: removed})
	or := p.o.rels[keyOf(name)]
	remove(or)
}

// replace swaps a relation's contents wholesale (the host-API Put path the
// engine's fallback recomputes exercise): the real store sees an unknown
// change and must reset-capture it at the next boundary.
func (p *storePair) replace(name string, rows []relation.Tuple) {
	mkRel := func(old *relation.Relation) *relation.Relation {
		r := relation.New(old.Name, old.Schema)
		r.Rows = append([]relation.Tuple(nil), rows...)
		return r
	}
	sr, _ := p.s.Get(name)
	p.s.Put(mkRel(sr))
	or := p.o.rels[keyOf(name)]
	p.o.put(mkRel(or))
}

func intSchema() relation.Schema {
	return relation.NewSchema(relation.Col("a", relation.KindInt), relation.Col("b", relation.KindInt))
}

func randRows(rng *rand.Rand, n int) []relation.Tuple {
	out := make([]relation.Tuple, n)
	for i := range out {
		out[i] = relation.Tuple{relation.Int(int64(rng.Intn(8))), relation.Int(int64(rng.Intn(1000)))}
	}
	return out
}

func assertStoreParity(t *testing.T, step string, p *storePair) {
	t.Helper()
	if sv, ov := p.s.Versions(), len(p.o.history); sv != ov {
		t.Fatalf("%s: versions diverge: store %d vs oracle %d", step, sv, ov)
	}
	names := map[string]bool{}
	for _, n := range p.s.Names() {
		names[n] = true
	}
	for _, n := range p.o.names {
		names[n] = true
	}
	var refs []relation.VersionRef
	refs = append(refs, relation.Current())
	// Every reachable committed offset plus one past the clamp boundary.
	for i := 0; i <= len(p.o.history)+1; i++ {
		refs = append(refs, relation.VNow(i))
	}
	for j := 0; j <= len(p.o.txnHist)+1; j++ {
		refs = append(refs, relation.TNow(j))
	}
	for name := range names {
		for _, ref := range refs {
			or, oerr := p.o.resolve(name, ref)
			sr, serr := p.s.Resolve(name, ref)
			if (oerr == nil) != (serr == nil) {
				t.Fatalf("%s: %s%s error mismatch: store=%v oracle=%v", step, name, ref, serr, oerr)
			}
			if oerr != nil {
				continue
			}
			if !relation.Equal(sr, or) {
				sc, oc := sr.Clone(), or.Clone()
				sc.SortDeterministic()
				oc.SortDeterministic()
				t.Fatalf("%s: %s%s diverges\nstore:\n%s\noracle:\n%s", step, name, ref, sc, oc)
			}
		}
	}
}

func TestDeltaLogVsSnapshotStoreParity(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			maxHist := 2 + rng.Intn(4)
			p := &storePair{s: NewStore(maxHist), o: newOracleStore(maxHist)}
			// Tight checkpoint cadence so eviction, trimming, and forward
			// walks all trigger within a short stream.
			p.s.checkpointEvery = 1 + rng.Intn(4)

			p.put("T", intSchema(), randRows(rng, 5))
			p.put("U", intSchema(), randRows(rng, 3))
			p.s.Commit()
			p.o.commit()
			assertStoreParity(t, "init", p)

			tables := []string{"T", "U"}
			created := 0
			for op := 0; op < 300; op++ {
				step := fmt.Sprintf("seed %d op %d", seed, op)
				name := tables[rng.Intn(len(tables))]
				switch k := rng.Intn(20); {
				case k < 7: // insert
					p.insert(name, randRows(rng, 1+rng.Intn(3)))
				case k < 10: // delete values that exist (drawn from the oracle)
					or := p.o.rels[keyOf(name)]
					if len(or.Rows) > 0 {
						del := make([]relation.Tuple, 0, 2)
						for i := 0; i < 1+rng.Intn(2); i++ {
							del = append(del, or.Rows[rng.Intn(len(or.Rows))])
						}
						p.deleteVals(name, del)
					}
				case k < 11: // wholesale replace (unknown change)
					p.replace(name, randRows(rng, rng.Intn(5)))
				case k < 12: // create a fresh relation mid-stream
					created++
					nm := fmt.Sprintf("N%d", created)
					p.put(nm, intSchema(), randRows(rng, rng.Intn(3)))
					tables = append(tables, nm)
				case k < 14:
					p.s.BeginTxn()
					p.o.beginTxn()
				case k < 17:
					p.s.MarkEvent()
					p.o.markEvent()
				case k < 18:
					p.s.Commit()
					p.o.commit()
				case k < 19: // rollback (only when a commit exists; always does)
					serr := p.s.Rollback()
					if !p.o.rollback() {
						t.Fatalf("%s: oracle rollback failed", step)
					}
					if serr != nil {
						t.Fatalf("%s: store rollback: %v", step, serr)
					}
					// Rollback deletes relations created after the commit;
					// drop vanished tables from the mutation pool.
					tables = tables[:0]
					for _, nm := range p.s.Names() {
						tables = append(tables, nm)
					}
				default: // undo/redo via RestoreVersion
					off := 1 + rng.Intn(p.o.maxHistory+1)
					ook := p.o.restoreVersion(off)
					serr := p.s.RestoreVersion(off)
					if ook != (serr == nil) {
						t.Fatalf("%s: restore(%d) mismatch: store err=%v oracle ok=%v", step, off, serr, ook)
					}
					if ook {
						tables = tables[:0]
						for _, nm := range p.s.Names() {
							tables = append(tables, nm)
						}
					}
				}
				assertStoreParity(t, step, p)
			}
		})
	}
}
