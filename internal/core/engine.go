package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/events"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/render"
)

// Config parameterizes an Engine.
type Config struct {
	// Width and Height size the framebuffer the render sinks draw into.
	// Defaults: 400×300.
	Width, Height int
	// MaxHistory bounds the committed version history (@vnow depth).
	// Default 64.
	MaxHistory int
	// RecomputeAll disables dirty-set view maintenance: every view
	// recomputes on every change. This is the baseline arm of the A1
	// ablation; leave false for normal operation.
	RecomputeAll bool
	// EagerProvenance maintains a materialized lineage index for every
	// view on every recompute, so TRACE statements read the index instead
	// of recomputing lineage lazily. This is the eager arm of the A2
	// ablation (§3.1 discusses why lazy usually wins).
	EagerProvenance bool
	// CheckpointEvery sets the commit interval between full version-log
	// checkpoints (bounding @vnow reconstruction walks). Default 16.
	CheckpointEvery int
	// DisableCube turns off the data-cube index-tile rewrite: cube-eligible
	// views stay on the ordinary delta pipeline (and count as fallbacks).
	// This is the baseline arm of the cube benchmark; leave false for
	// normal operation.
	DisableCube bool
	// DisableFusion keeps aggregate delta applies on the materialized
	// row-at-a-time path instead of streaming fused join→aggregate applies.
	// This is the ablation arm of the fusion benchmark; leave false for
	// normal operation.
	DisableFusion bool
	// DisableObs turns off the latency-observability layer (per-stage
	// histograms, event traces, the slow-event log): the ablation arm of the
	// obs overhead gate. Leave false for normal operation — the layer costs
	// a few time.Now calls and one small allocation per event.
	DisableObs bool
	// LatencyBudget is the per-event latency budget: events whose end-to-end
	// handling exceeds it retain their full stage breakdown in the slow-event
	// log. Default obs.DefaultBudget (100 ms, the perceptual brushing budget).
	LatencyBudget time.Duration
}

// TxnEvent describes how one fed input event advanced the interaction
// transaction machinery, mirroring events.Actions at the engine level.
type TxnEvent struct {
	Interaction string // compound event table name, "" if the event was filtered everywhere
	Began       bool
	RowsEmitted int
	Committed   bool
	Aborted     bool
	Version     int // committed version index when Committed
}

// Engine is the DVMS instance: it loads DeVIL programs, maintains views,
// recognizes interactions, manages versions and transactions, and renders
// marks to pixels.
type Engine struct {
	// mu serializes all public entry points, so an Engine is safe to drive
	// from multiple goroutines (the session server relies on this) and
	// Stats can be snapshotted without tearing. Single-tenant hosts pay one
	// uncontended lock per call.
	mu sync.Mutex

	cfg   Config
	store *Store
	funcs *expr.Registry

	views     map[string]*view // keyed lowercase
	viewOrder []string         // definition order
	topo      []string         // recompute order (topological)
	deps      map[string][]string

	// Multi-client serving hooks (AttachBase): base resolves relations not
	// present in the private store (the server's shared database), baseHas
	// reports their existence, and shares is the registry that lets this
	// engine's delta pipelines reuse data-sized join build states across
	// sessions. All nil for a single-tenant engine.
	base    plan.Catalog
	baseHas func(name string) bool
	shares  *exec.ShareGroup

	recognizers []*events.Recognizer
	// activeTxn is the compound table name of the in-flight interaction.
	activeTxn string

	// recovering marks a WAL-recovery program load: relations already
	// rebuilt from the log are adopted instead of re-created, and data
	// statements (INSERT/DELETE) are skipped because their effects replayed.
	recovering bool

	img      *render.Image
	warnings []string

	// obs is the latency-observability recorder (nil when cfg.DisableObs —
	// every obs call is nil-safe and free on that arm). curTrace is the
	// in-flight event's trace; the engine lock serializes feedEvent, so a
	// plain field is race-free.
	obs      *obs.Recorder
	curTrace *obs.Trace

	// stats for benchmarks and EXPERIMENTS.md. Direct field access is only
	// safe single-threaded; concurrent hosts use StatsSnapshot/ResetStats.
	Stats Stats
}

// TopKStats aliases the executor's order-statistic counters so hosts and
// benchmarks read them straight off Stats without importing exec.
type TopKStats = exec.TopKStats

// CubeStats aliases the executor's data-cube counters (index tiles for
// O(bins) brush moves) for the same reason.
type CubeStats = exec.CubeStats

// ExecStats aliases the executor's fused/columnar counters.
type ExecStats = exec.ExecStats

// Stats counts engine work, exposed for benchmarks and the experiment
// harness. ViewRecomputes counts full (re)materializations; the delta
// counters cover the incremental path: ViewDeltaApplies is the number of
// view updates served by delta propagation, DeltaRowsIn/Out the change rows
// consumed/produced by those applications, FullFallbacks the dirty views
// that had to fully recompute inside a delta-driven refresh (non-safe plan,
// unknown input delta, or delta error), EmptyDeltaSkips the dirty views
// short-circuited because every input delta was empty, and RenderSkips the
// refreshes that left the framebuffer untouched because no sink changed.
type Stats struct {
	ViewRecomputes int
	RenderPasses   int
	EventsFed      int
	EventsFiltered int
	Commits        int
	Aborts         int

	ViewDeltaApplies int
	DeltaRowsIn      int
	DeltaRowsOut     int
	FullFallbacks    int
	EmptyDeltaSkips  int
	RenderSkips      int

	// TopK counts the order-statistic subsystem's work (incremental
	// ORDER BY / LIMIT): TreeRows is the high-water mark of rows held by any
	// single view's order-statistic trees, PrefixEmits the delta rows
	// emitted for maintained top-k prefixes, Evictions the prefix exits of
	// rows displaced (not deleted) by better-ranked arrivals.
	TopK TopKStats

	// Cube counts the data-cube subsystem's work (per-chart index tiles):
	// Builds is tile (re)constructions — brush-begin activations plus full
	// rebuilds after unknown changes — Hits the selection deltas answered
	// from tiles instead of re-streaming joined rows, BinsAnswered the
	// output bins those answers covered, Fallbacks the cube-candidate view
	// definitions (aggregate over a join) that compiled without a cube path
	// (non-decomposable aggregate, residual predicate, subquery
	// parameterization, …). TileBytes is a gauge filled by StatsSnapshot.
	Cube CubeStats

	// Exec counts the executor's columnar/fused delta work: BatchRows is
	// change rows pushed through fused join→aggregate streams, FusedApplies
	// the non-empty delta applications those streams served, RowFallbacks
	// the fusible applies that ran row-at-a-time because fusion was
	// disabled (the DisableFusion ablation arm).
	Exec ExecStats

	// Versioning counts the storage manager's delta-log work (boundaries
	// sealed, bytes checkpointed, versions reconstructed). The store writes
	// these counters directly; resetting Stats resets them too.
	Versioning VersioningStats
}

// New creates an engine with the given config.
func New(cfg Config) *Engine {
	if cfg.Width <= 0 {
		cfg.Width = 400
	}
	if cfg.Height <= 0 {
		cfg.Height = 300
	}
	e := &Engine{
		cfg:   cfg,
		store: NewStore(cfg.MaxHistory),
		funcs: expr.NewRegistry(),
		views: make(map[string]*view),
		deps:  map[string][]string{},
		img:   render.NewImage(cfg.Width, cfg.Height),
	}
	if cfg.CheckpointEvery > 0 {
		e.store.checkpointEvery = cfg.CheckpointEvery
	}
	// The store counts its versioning work straight into the engine stats.
	e.store.stats = &e.Stats.Versioning
	if !cfg.DisableObs {
		e.obs = obs.NewRecorder(cfg.LatencyBudget)
		e.registerStatGauges()
	}
	return e
}

// registerStatGauges migrates the engine's Stats counters onto the obs
// registry: every counter (and the tile/store byte gauges) is readable
// through the one metrics surface instead of living beside it. The gauge
// callbacks run at snapshot/exposition time only and take the engine lock
// themselves — never call Registry.Snapshot while holding e.mu.
func (e *Engine) registerStatGauges() {
	reg := e.obs.Registry()
	snap := func(read func(Stats) int64) func() float64 {
		return func() float64 { return float64(read(e.StatsSnapshot())) }
	}
	for name, read := range map[string]func(Stats) int64{
		"dvms_view_recomputes_total":    func(s Stats) int64 { return int64(s.ViewRecomputes) },
		"dvms_render_passes_total":      func(s Stats) int64 { return int64(s.RenderPasses) },
		"dvms_render_skips_total":       func(s Stats) int64 { return int64(s.RenderSkips) },
		"dvms_events_fed_total":         func(s Stats) int64 { return int64(s.EventsFed) },
		"dvms_events_filtered_total":    func(s Stats) int64 { return int64(s.EventsFiltered) },
		"dvms_commits_total":            func(s Stats) int64 { return int64(s.Commits) },
		"dvms_aborts_total":             func(s Stats) int64 { return int64(s.Aborts) },
		"dvms_delta_applies_total":      func(s Stats) int64 { return int64(s.ViewDeltaApplies) },
		"dvms_delta_rows_in_total":      func(s Stats) int64 { return int64(s.DeltaRowsIn) },
		"dvms_delta_rows_out_total":     func(s Stats) int64 { return int64(s.DeltaRowsOut) },
		"dvms_full_fallbacks_total":     func(s Stats) int64 { return int64(s.FullFallbacks) },
		"dvms_empty_delta_skips_total":  func(s Stats) int64 { return int64(s.EmptyDeltaSkips) },
		"dvms_cube_builds_total":        func(s Stats) int64 { return s.Cube.Builds },
		"dvms_cube_hits_total":          func(s Stats) int64 { return s.Cube.Hits },
		"dvms_cube_fallbacks_total":     func(s Stats) int64 { return s.Cube.Fallbacks },
		"dvms_tile_bytes":               func(s Stats) int64 { return s.Cube.TileBytes },
		"dvms_exec_batch_rows_total":    func(s Stats) int64 { return s.Exec.BatchRows },
		"dvms_exec_fused_applies_total": func(s Stats) int64 { return s.Exec.FusedApplies },
		"dvms_exec_row_fallbacks_total": func(s Stats) int64 { return s.Exec.RowFallbacks },
	} {
		reg.SetGaugeFunc(name, snap(read))
	}
	reg.SetGaugeFunc("dvms_store_bytes", func() float64 { return float64(e.ApproxBytes()) })
}

// Obs exposes the engine's latency recorder (nil when DisableObs). The
// recorder is internally synchronized; hosts snapshot and read traces from
// any goroutine.
func (e *Engine) Obs() *obs.Recorder { return e.obs }

// Funcs exposes the engine's UDF registry so hosts can register pure scalar
// functions before loading programs.
func (e *Engine) Funcs() *expr.Registry { return e.funcs }

// AttachBase hooks this engine into a multi-client server as one session:
// relation lookups fall back to base (the shared database) when the private
// store misses, has reports shared existence (for static validation), and
// group lets the session's delta pipelines share data-sized join build
// states with every other attached session. Must be called before any
// program loads.
func (e *Engine) AttachBase(base plan.Catalog, has func(name string) bool, group *exec.ShareGroup) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.base, e.baseHas, e.shares = base, has, group
}

// Close releases the engine's references on shared build-side states (the
// server's registry evicts states when their last session releases). No-op
// for single-tenant engines.
func (e *Engine) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, v := range e.views {
		if v.prepared != nil {
			v.prepared.ReleaseShared()
		}
	}
}

// Warnings returns static-analysis warnings accumulated while loading
// programs (e.g. ambiguous interaction pairs).
func (e *Engine) Warnings() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.warnings...)
}

// Image returns the engine framebuffer (the render sinks' target). The
// pointer is stable for the engine's lifetime; concurrent hosts must not
// read it while feeding events (use Pixels for a consistent copy).
func (e *Engine) Image() *render.Image { return e.img }

// Pixels materializes the pixels relation P(x,y,r,g,b,a) on demand (§2.1.1
// models P as maintained by the rendering device, not materialized).
func (e *Engine) Pixels(sparse bool) *relation.Relation {
	e.mu.Lock()
	defer e.mu.Unlock()
	return render.PixelsRelation(e.img, sparse)
}

// Store exposes the storage manager (read-only use expected; not for
// concurrent use while the engine is being driven).
func (e *Engine) Store() *Store { return e.store }

// StatsSnapshot returns a copy of the engine counters taken under the
// engine lock, so concurrent sessions can read stats without tearing.
func (e *Engine) StatsSnapshot() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.Stats
	s.Cube.TileBytes = e.tileBytesLocked()
	return s
}

// tileBytesLocked sums the private cube-tile memory across the engine's
// bound plans (a gauge; shared tiles are accounted by the server's
// registry). Caller holds e.mu.
func (e *Engine) tileBytesLocked() int64 {
	var b int64
	for _, v := range e.views {
		if v.prepared != nil {
			b += v.prepared.CubeBytes()
		}
	}
	return b
}

// ResetStats zeroes the engine counters under the engine lock.
func (e *Engine) ResetStats() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.Stats = Stats{}
}

// ApproxBytes estimates the live store's memory under the engine lock (safe
// while the engine is being driven concurrently).
func (e *Engine) ApproxBytes() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.store.ApproxBytes()
}

// LoadProgram parses and applies a DeVIL program: DDL creates base tables,
// INSERTs load data, assignments define views, EVENT statements compile
// recognizers. After loading, all views are computed, the scene is rendered,
// and the state is committed as version 0 so that @vnow-1 references resolve
// during the first interaction.
func (e *Engine) LoadProgram(src string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.execSrc(src); err != nil {
		return err
	}
	e.commit()
	return nil
}

// Exec applies DeVIL statements without the final commit; use it for
// incremental statements after LoadProgram.
func (e *Engine) Exec(src string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.execSrc(src)
}

// ExecParsed applies already-parsed statements (the server splits one
// parsed program across the shared engine and the sessions).
func (e *Engine) ExecParsed(stmts []parser.Statement) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, s := range stmts {
		if err := e.execStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) execSrc(src string) error {
	stmts, err := parser.Parse(src)
	if err != nil {
		return err
	}
	for _, s := range stmts {
		if err := e.execStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) execStmt(s parser.Statement) error {
	switch n := s.(type) {
	case *parser.CreateTableStmt:
		if e.hasRel(n.Name) {
			if e.recovering {
				return nil // table rebuilt from the log; adopt it
			}
			return fmt.Errorf("relation %q already exists", n.Name)
		}
		e.guardRestoreBarrier()
		e.store.Put(relation.New(n.Name, n.Schema))
		return nil
	case *parser.InsertStmt:
		if e.recovering {
			return nil // the load's effects replayed from the log
		}
		return e.execInsert(n)
	case *parser.DeleteStmt:
		if e.recovering {
			return nil
		}
		return e.execDelete(n)
	case *parser.EventStmt:
		return e.defineEvent(n)
	case *parser.AssignStmt:
		return e.defineView(n)
	default:
		return fmt.Errorf("unsupported statement %T", s)
	}
}

// guardRestoreBarrier seals any restore window still open on the store
// before a write mutates live state. A host that calls Store().
// RestoreVersion directly (instead of Undo, which commits) would otherwise
// write inside the barrier window, where deltas are dropped from the
// pending set and therefore never journaled to the WAL — replay would lose
// the writes even though the in-memory store stayed correct.
func (e *Engine) guardRestoreBarrier() { e.store.SealRestoreBarrier() }

func (e *Engine) execInsert(n *parser.InsertStmt) error {
	e.guardRestoreBarrier()
	if err := e.writableHere(n.Table); err != nil {
		return err
	}
	target, err := e.store.Get(n.Table)
	if err != nil {
		return err
	}
	if e.isView(n.Table) {
		return fmt.Errorf("cannot INSERT into view %q", n.Table)
	}
	var rows []relation.Tuple
	if n.Query != nil {
		res, err := e.executor().RunQuery(n.Query)
		if err != nil {
			return err
		}
		rows = res.Rel.Rows
	} else {
		ctx := &expr.Context{Funcs: e.funcs}
		for _, exprRow := range n.Rows {
			row := make(relation.Tuple, len(exprRow))
			for i, ee := range exprRow {
				v, err := ee.Eval(ctx)
				if err != nil {
					return fmt.Errorf("INSERT INTO %s: %w", n.Table, err)
				}
				row[i] = v
			}
			rows = append(rows, row)
		}
	}
	// Optional column list reorders/projects values into schema positions.
	if len(n.Columns) > 0 {
		idx := make([]int, len(n.Columns))
		for i, c := range n.Columns {
			j, err := target.Schema.IndexErr("", c)
			if err != nil {
				return fmt.Errorf("INSERT INTO %s: %w", n.Table, err)
			}
			idx[i] = j
		}
		remapped := make([]relation.Tuple, len(rows))
		for r, row := range rows {
			if len(row) != len(idx) {
				return fmt.Errorf("INSERT INTO %s: row arity %d does not match column list %d", n.Table, len(row), len(idx))
			}
			full := make(relation.Tuple, target.Schema.Len())
			for i := range full {
				full[i] = relation.Null()
			}
			for i, j := range idx {
				full[j] = row[i]
			}
			remapped[r] = full
		}
		rows = remapped
	}
	if err := appendAll(target, rows); err != nil {
		return err
	}
	e.store.recordChange(n.Table, relation.Delta{Ins: rows})
	return e.refresh(changeSet(n.Table, &relation.Delta{Ins: rows}))
}

// appendAll validates every row's arity before appending any, so a bad row
// cannot leave the table partially mutated with no delta issued (which
// would silently desynchronize primed delta pipelines from their inputs).
func appendAll(target *relation.Relation, rows []relation.Tuple) error {
	arity := target.Schema.Len()
	for _, row := range rows {
		if len(row) != arity {
			return fmt.Errorf("relation %s: row arity %d does not match schema arity %d", target.Name, len(row), arity)
		}
	}
	for _, row := range rows {
		target.Rows = append(target.Rows, row)
	}
	return nil
}

// InsertRows appends rows to a base table programmatically — the host-API
// equivalent of INSERT for bulk loads and event-driven writes — producing
// an insert delta for incremental view maintenance.
func (e *Engine) InsertRows(table string, rows []relation.Tuple) error {
	_, err := e.InsertRowsDelta(table, rows)
	return err
}

// InsertRowsDelta is InsertRows returning the full change map of the
// refresh it triggered: the inserted base delta plus the output delta of
// every view the change propagated to (nil marks an unknown change). The
// server's single writer uses it to fan sealed base changes out to every
// attached session.
func (e *Engine) InsertRowsDelta(table string, rows []relation.Tuple) (map[string]*relation.Delta, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.guardRestoreBarrier()
	if err := e.writableHere(table); err != nil {
		return nil, err
	}
	target, err := e.store.Get(table)
	if err != nil {
		return nil, err
	}
	if e.isView(table) {
		return nil, fmt.Errorf("cannot insert into view %q", table)
	}
	if err := appendAll(target, rows); err != nil {
		return nil, err
	}
	e.store.recordChange(table, relation.Delta{Ins: rows})
	changes := changeSet(table, &relation.Delta{Ins: rows})
	if err := e.refresh(changes); err != nil {
		return nil, err
	}
	return changes, nil
}

// writableHere rejects writes to relations owned by the shared base of a
// multi-client server: sessions read them, only the server's writer mutates
// them. Single-tenant engines have no base and accept everything.
func (e *Engine) writableHere(name string) error {
	if !e.store.Has(name) && e.baseHas != nil && e.baseHas(name) {
		return fmt.Errorf("relation %q is shared and read-only in this session (write through the server)", name)
	}
	return nil
}

// hasRel reports whether the name resolves here: the private store or the
// shared base.
func (e *Engine) hasRel(name string) bool {
	return e.store.Has(name) || (e.baseHas != nil && e.baseHas(name))
}

func (e *Engine) execDelete(n *parser.DeleteStmt) error {
	e.guardRestoreBarrier()
	if err := e.writableHere(n.Table); err != nil {
		return err
	}
	target, err := e.store.Get(n.Table)
	if err != nil {
		return err
	}
	if e.isView(n.Table) {
		return fmt.Errorf("cannot DELETE from view %q", n.Table)
	}
	if n.Where == nil {
		removed := target.Rows
		target.Rows = nil
		e.store.recordChange(n.Table, relation.Delta{Del: removed})
		return e.refresh(changeSet(n.Table, &relation.Delta{Del: removed}))
	}
	env := &tupleEnv{schema: target.Schema}
	ctx := &expr.Context{Row: env, Funcs: e.funcs}
	kept := target.Rows[:0:0]
	var removed []relation.Tuple
	for _, row := range target.Rows {
		env.row = row
		v, err := n.Where.Eval(ctx)
		if err != nil {
			return fmt.Errorf("DELETE FROM %s: %w", n.Table, err)
		}
		if v.IsNull() || !v.Truthy() {
			kept = append(kept, row)
		} else {
			removed = append(removed, row)
		}
	}
	target.Rows = kept
	e.store.recordChange(n.Table, relation.Delta{Del: removed})
	return e.refresh(changeSet(n.Table, &relation.Delta{Del: removed}))
}

// tupleEnv is a minimal RowEnv over an unqualified schema.
type tupleEnv struct {
	schema relation.Schema
	row    relation.Tuple
}

// Lookup resolves a column by name.
func (t *tupleEnv) Lookup(q, n string) (relation.Value, bool) {
	idx := t.schema.Index(q, n)
	if idx < 0 {
		idx = t.schema.Index("", n)
	}
	if idx < 0 || idx >= len(t.row) {
		return relation.Null(), false
	}
	return t.row[idx], true
}

func (e *Engine) isView(name string) bool {
	_, ok := e.views[strings.ToLower(name)]
	return ok
}

// defineEvent compiles an EVENT statement, creates the compound event table,
// and runs interaction-ambiguity analysis against existing recognizers.
func (e *Engine) defineEvent(stmt *parser.EventStmt) error {
	rec, err := events.Compile(stmt, e.funcs)
	if err != nil {
		return err
	}
	exists := e.hasRel(stmt.Name)
	if exists && !e.recovering {
		return fmt.Errorf("relation %q already exists", stmt.Name)
	}
	for _, other := range e.recognizers {
		if other.FirstType() == rec.FirstType() {
			e.warnings = append(e.warnings, fmt.Sprintf(
				"ambiguous interactions: %s and %s both start on %s; consider partitioning by space or assigning priorities (§2.1.2)",
				other.Name(), rec.Name(), rec.FirstType()))
		}
	}
	e.recognizers = append(e.recognizers, rec)
	if !exists {
		e.store.Put(relation.New(stmt.Name, rec.Schema()))
	}
	return nil
}

// defineView installs an assignment statement as a materialized view,
// re-runs recursion analysis, recomputes, and re-renders.
func (e *Engine) defineView(stmt *parser.AssignStmt) error {
	if stmt.Name == "" {
		// bare SELECT at top level: evaluate and discard (useful in REPL).
		_, err := e.executor().RunQuery(stmt.Query)
		return err
	}
	e.guardRestoreBarrier()
	k := strings.ToLower(stmt.Name)
	v := &view{name: stmt.Name, query: stmt.Query, deps: queryDeps(stmt.Query)}
	if r, ok := stmt.Query.(*parser.RenderStmt); ok {
		v.renderAs = &renderSink{markType: r.MarkType}
	}
	if _, ok := stmt.Query.(*parser.TraceStmt); ok {
		v.isTrace = true
	}
	// Validate deps exist (they may be defined as views below/later in the
	// program for vnow refs, but live deps must exist now).
	for _, d := range v.deps {
		if strings.EqualFold(d.name, stmt.Name) && d.cyclic() && !e.hasRel(stmt.Name) {
			return fmt.Errorf("recursive view definition: %s references itself; use @vnow-i or @tnow-j to reference past versions", stmt.Name)
		}
		if !e.hasRel(d.name) && !e.isView(d.name) {
			return fmt.Errorf("view %s references unknown relation %q", stmt.Name, d.name)
		}
	}
	_, redefinition := e.views[k]
	// During WAL recovery the view's replayed contents are already in the
	// store before its definition reinstalls, which is indistinguishable
	// from a base relation here; adopt instead of rejecting.
	if !redefinition && e.hasRel(stmt.Name) && !e.isView(stmt.Name) && !e.recovering {
		return fmt.Errorf("cannot redefine base relation %q as a view", stmt.Name)
	}
	e.views[k] = v
	if !redefinition {
		e.viewOrder = append(e.viewOrder, stmt.Name)
	}
	topo, err := topoOrder(e.views, e.viewOrder)
	if err != nil {
		// roll back the definition so the engine stays consistent
		if !redefinition {
			delete(e.views, k)
			e.viewOrder = e.viewOrder[:len(e.viewOrder)-1]
		}
		return err
	}
	e.topo = topo
	e.deps = dependents(e.views)
	if e.recovering && e.store.Has(stmt.Name) {
		// WAL recovery already rebuilt this view's contents; install the
		// definition (plans bind lazily, re-priming on first use) without
		// recomputing. Views the program added after the log was written
		// miss this branch and materialize fresh below.
		return nil
	}
	// A (re)definition can only change schemas its transitive dependents
	// were bound against; those rebind lazily on their next recompute.
	// Unrelated views keep their compiled plans (and, under a server, their
	// refcounted shared-state attachments — full invalidation would drop
	// every reference between statements of a loading program, letting a
	// concurrent detach evict the data-sized states mid-attach).
	e.invalidatePlansFor(stmt.Name)
	// Materialize now (full recompute of this view and its dependents; the
	// nil delta marks an unknown change, so dependents recompute too —
	// their cached plans were just invalidated, which also forces them to
	// re-prime). The store accounts the (re)definition inside recomputeView.
	if _, err := e.recomputeView(v); err != nil {
		return err
	}
	return e.refresh(changeSet(stmt.Name, nil))
}

// changeSet builds a one-relation change map: delta nil means the relation
// changed in an unknown way (dependents fall back to full recomputation).
func changeSet(name string, d *relation.Delta) map[string]*relation.Delta {
	return map[string]*relation.Delta{strings.ToLower(name): d}
}

// catalog is the engine's name-resolution view: the private store, chained
// to the shared base (when attached) for names the store misses.
func (e *Engine) catalog() plan.Catalog {
	if e.base == nil {
		return e.store
	}
	return chainCatalog{e}
}

// chainCatalog resolves against the private store first, then the shared
// base. Writes never go through it, so the fallback is read-only by
// construction.
type chainCatalog struct{ e *Engine }

// Resolve implements plan.Catalog over the session's combined namespace.
func (c chainCatalog) Resolve(name string, v relation.VersionRef) (*relation.Relation, error) {
	if c.e.store.Has(name) {
		return c.e.store.Resolve(name, v)
	}
	return c.e.base.Resolve(name, v)
}

// executor builds an executor over the live catalog.
func (e *Engine) executor() *exec.Executor {
	return &exec.Executor{Cat: e.catalog(), Funcs: e.funcs}
}

// preparedFor returns the view's bound plan, building, optimizing, and
// compiling it on first use. Every later recompute of the interaction loop
// reuses the compiled evaluators; no per-event planning or name resolution.
// Under a server (AttachBase) the pipeline binds against the combined
// catalog and attaches to the shared-state registry.
func (e *Engine) preparedFor(v *view) (*exec.Prepared, error) {
	if v.prepared != nil {
		return v.prepared, nil
	}
	tPrep := e.obs.Now()
	defer func() { e.obs.Span(e.curTrace, obs.StagePrepare, v.name, "", tPrep, 0, 0) }()
	p, err := plan.Build(v.query, e.catalog())
	if err != nil {
		return nil, err
	}
	p = plan.Optimize(p, e.funcs)
	prep, err := exec.PrepareWithOptions(p, e.funcs, exec.PrepareOptions{
		Group:    e.shares,
		NoCube:   e.cfg.DisableCube,
		NoFusion: e.cfg.DisableFusion,
	})
	if err != nil {
		return nil, err
	}
	// Cube-candidate shape (aggregate over a join) that compiled without the
	// tile path: count the fallback once per bind so the cost of brushing
	// this view O(rows) is visible in stats, not just in a profile.
	if plan.CubeCandidate(p) && !prep.HasCube() {
		e.Stats.Cube.Fallbacks++
	}
	v.prepared = prep
	return prep, nil
}

// invalidatePlansFor drops the bound plans of name's transitive live
// dependents, and of name itself when it is a view. Called on
// (re)definition: only views whose plans could have been bound against the
// changed schema need a rebind; data changes never require any. Shared-
// state references are released first so the registry's refcounts stay
// exact.
func (e *Engine) invalidatePlansFor(name string) {
	dirty := map[string]bool{}
	var mark func(string)
	mark = func(n string) {
		k := strings.ToLower(n)
		if dirty[k] {
			return
		}
		dirty[k] = true
		for _, d := range e.deps[k] {
			mark(d)
		}
	}
	mark(name)
	for k, v := range e.views {
		if dirty[k] && v.prepared != nil {
			v.prepared.ReleaseShared()
			v.prepared = nil
		}
	}
}

// recomputeView materializes one view from its definition; under eager
// provenance it also refreshes the view's lineage index. For delta-safe
// views (normal operation), the recompute runs through the stateful
// pipeline so the view is primed for delta application afterwards.
//
// The replacement is accounted to the store's delta log: the returned
// delta is the old-vs-new diff, recorded so version boundaries stay
// O(change). It is nil when the view had no previous contents (first
// materialization, recorded as a creation) and in RecomputeAll mode, where
// the oracle skips diffing and lets the store capture the fresh contents
// at the next boundary instead.
func (e *Engine) recomputeView(v *view) (*relation.Delta, error) {
	e.Stats.ViewRecomputes++
	var rel *relation.Relation
	var err error
	if v.isTrace {
		rel, err = e.runTrace(v.query.(*parser.TraceStmt))
	} else {
		var prep *exec.Prepared
		prep, err = e.preparedFor(v)
		if err == nil {
			ex := e.executor()
			ex.CaptureLineage = e.cfg.EagerProvenance
			var res *exec.Result
			if prep.DeltaSafe() && !e.cfg.EagerProvenance && !e.cfg.RecomputeAll {
				res, err = ex.RunStateful(prep)
			} else {
				res, err = ex.RunPrepared(prep)
			}
			if err == nil {
				rel = exec.StripQualifiers(res.Rel)
				if e.cfg.EagerProvenance {
					v.lin = res.Lin
				}
				e.drainCubeStats(prep) // priming can build tiles
				e.drainExecStats(prep)
			}
		}
	}
	if err != nil {
		return nil, fmt.Errorf("view %s: %w", v.name, err)
	}
	rel.Name = v.name
	if e.cfg.RecomputeAll {
		e.store.Put(rel)
		return nil, nil
	}
	old, had := e.store.rels[keyOf(v.name)]
	e.store.putQuiet(rel)
	if !had {
		return nil, nil // putQuiet noted the creation
	}
	if !old.Schema.Equal(rel.Schema) {
		// A redefinition changed the view's schema: a tuple-level diff
		// cannot represent that in the delta log (historical reads would
		// pair old tuples with the new schema), so the boundary captures
		// the full new contents as a per-relation reset instead.
		e.store.recordUnknown(v.name)
		return nil, nil
	}
	d := relation.Diff(old, rel)
	e.store.recordChange(v.name, d)
	return &d, nil
}

// refresh propagates changes through the view graph in topological order,
// then re-renders if any sink changed. changes maps lowercase relation
// names to their deltas; a nil delta marks an unknown change. A dirty view
// is updated by delta application when its prepared pipeline is delta-safe,
// primed, and every changed input carries a delta; otherwise it fully
// recomputes, and its output delta is derived by diffing old vs new
// contents so downstream views can still consume deltas. Views whose every
// relevant input delta is empty are skipped entirely (their contents cannot
// have changed), except across @tnow edges, where the referenced snapshot
// advances even when the live delta is empty.
func (e *Engine) refresh(changes map[string]*relation.Delta) error {
	if e.cfg.RecomputeAll {
		// Ablation baseline and parity oracle: every view recomputes from
		// scratch on every change, every refresh re-renders.
		for _, name := range e.topo {
			if _, err := e.recomputeView(e.views[strings.ToLower(name)]); err != nil {
				return err
			}
		}
		return e.render()
	}
	for _, name := range e.topo {
		k := strings.ToLower(name)
		v := e.views[k]
		dirty, emptyOnly := e.dirtiness(v, changes)
		if !dirty {
			if emptyOnly {
				e.Stats.EmptyDeltaSkips++
			}
			continue
		}
		tView := e.obs.Now()
		if out, path, rowsIn, handled, err := e.tryDelta(v, changes); err != nil {
			return fmt.Errorf("view %s: %w", v.name, err)
		} else if handled {
			changes[k] = out
			e.obs.Span(e.curTrace, obs.StageDelta, v.name, path, tView, rowsIn, deltaLen(out))
			continue
		}
		// Full fallback: recompute. recomputeView diffs old vs new while
		// accounting the change to the version log, so downstream views
		// still receive a delta (and unchanged outputs short-circuit).
		d, err := e.recomputeView(v)
		if err != nil {
			return err
		}
		e.Stats.FullFallbacks++
		changes[k] = d
		e.obs.Span(e.curTrace, obs.StageDelta, v.name, obs.PathFallback, tView, 0, deltaLen(d))
	}
	return e.renderIfDirty(changes)
}

// deltaLen is a nil-tolerant Delta.Len (a nil delta marks an unknown change).
func deltaLen(d *relation.Delta) int {
	if d == nil {
		return 0
	}
	return d.Len()
}

// dirtiness reports whether the view must update given the changes. The
// second result reports that the view was touched only through empty deltas
// (the short-circuit case, counted for stats).
func (e *Engine) dirtiness(v *view, changes map[string]*relation.Delta) (dirty, emptyOnly bool) {
	touched := false
	for _, d := range v.deps {
		if !d.live() {
			continue
		}
		cd, ok := changes[strings.ToLower(d.name)]
		if !ok {
			continue
		}
		touched = true
		// @tnow snapshots advance with every applied event, so any touch of
		// the referenced relation dirties the view even with an empty delta.
		if d.version.Kind == relation.VersionTNow {
			return true, false
		}
		if cd == nil || !cd.Empty() {
			return true, false
		}
	}
	return false, touched
}

// tryDelta attempts the incremental path for a dirty view: applies the
// changed inputs' deltas through the view's primed stateful pipeline and
// patches the materialized relation with the output delta. handled reports
// whether the view was updated this way (out is its output delta, which may
// be empty); path names how the update was computed (cube tiles, fused
// streaming, or the row-at-a-time apply) and rowsIn the change rows
// consumed — both feed the view's delta span in the event trace. A
// delta-application failure is not an error: the pipeline resets and the
// caller falls back to full recomputation.
func (e *Engine) tryDelta(v *view, changes map[string]*relation.Delta) (out *relation.Delta, path string, rowsIn int, handled bool, err error) {
	if e.cfg.EagerProvenance || v.isTrace {
		return nil, "", 0, false, nil
	}
	prep, err := e.preparedFor(v)
	if err != nil {
		return nil, "", 0, false, err
	}
	if !prep.DeltaSafe() || !prep.Primed() {
		return nil, "", 0, false, nil
	}
	in := make(map[string]relation.Delta)
	for _, d := range v.deps {
		if !d.live() {
			continue
		}
		dk := strings.ToLower(d.name)
		cd, ok := changes[dk]
		if !ok {
			continue
		}
		if cd == nil {
			return nil, "", 0, false, nil // unknown change: must recompute
		}
		in[dk] = *cd
		rowsIn += cd.Len()
	}
	od, err := e.executor().ApplyDelta(prep, in)
	if err != nil {
		return nil, "", 0, false, nil // state reset inside; fall back to recompute
	}
	rel, err := e.store.Get(v.name)
	if err != nil {
		return nil, "", 0, false, err
	}
	if err := rel.ApplyDelta(od); err != nil {
		// Materialized contents out of sync with the pipeline (host
		// mutation?); re-prime via full recompute.
		prep.ResetState()
		return nil, "", 0, false, nil
	}
	if prep.Ordered() {
		// ORDER BY views: the bag patch above verified consistency, but row
		// order carries meaning — replace the rows with the pipeline's
		// maintained order (O(k) for top-k prefixes). The sort span nests
		// inside the view's delta span (documented in OBSERVABILITY.md).
		tSort := e.obs.Now()
		rel.Rows = prep.OrderedRows()
		e.obs.Span(e.curTrace, obs.StageSort, v.name, "", tSort, 0, len(rel.Rows))
	}
	e.store.recordChange(v.name, od)
	e.Stats.ViewDeltaApplies++
	e.Stats.DeltaRowsIn += rowsIn
	e.Stats.DeltaRowsOut += od.Len()
	if ts := prep.TakeTopKStats(); ts != (exec.TopKStats{}) {
		if ts.TreeRows > e.Stats.TopK.TreeRows {
			e.Stats.TopK.TreeRows = ts.TreeRows
		}
		e.Stats.TopK.PrefixEmits += ts.PrefixEmits
		e.Stats.TopK.Evictions += ts.Evictions
	}
	cs := e.drainCubeStats(prep)
	es := e.drainExecStats(prep)
	// Classify the apply for the trace: tiles answered it, a fused stream
	// consumed it, or it walked the row-at-a-time path.
	switch {
	case cs.Hits > 0 || cs.Builds > 0:
		path = obs.PathCube
	case es.FusedApplies > 0:
		path = obs.PathFused
	default:
		path = obs.PathRow
	}
	return &od, path, rowsIn, true, nil
}

// drainCubeStats folds a pipeline's cube counters into the engine stats
// (Fallbacks and the TileBytes gauge are engine-level, never drained) and
// returns the drained batch so callers can classify the apply path.
func (e *Engine) drainCubeStats(prep *exec.Prepared) exec.CubeStats {
	cs := prep.TakeCubeStats()
	if cs != (exec.CubeStats{}) {
		e.Stats.Cube.Builds += cs.Builds
		e.Stats.Cube.Hits += cs.Hits
		e.Stats.Cube.BinsAnswered += cs.BinsAnswered
	}
	return cs
}

// drainExecStats folds a pipeline's fused/columnar counters into the engine
// stats, returning the drained batch.
func (e *Engine) drainExecStats(prep *exec.Prepared) exec.ExecStats {
	es := prep.TakeExecStats()
	if es != (exec.ExecStats{}) {
		e.Stats.Exec.BatchRows += es.BatchRows
		e.Stats.Exec.FusedApplies += es.FusedApplies
		e.Stats.Exec.RowFallbacks += es.RowFallbacks
	}
	return es
}

// renderIfDirty re-renders only when a sink's contents changed in this
// refresh; otherwise the framebuffer is already correct (the satellite
// rasterization skip — a full redraw remains the correct fallback and is
// what RecomputeAll mode always does).
func (e *Engine) renderIfDirty(changes map[string]*relation.Delta) error {
	if !e.anySink() {
		return nil
	}
	for k, cd := range changes {
		v, ok := e.views[k]
		if !ok || v.renderAs == nil {
			continue
		}
		if cd == nil || !cd.Empty() {
			return e.render()
		}
	}
	e.Stats.RenderSkips++
	return nil
}

func (e *Engine) anySink() bool {
	for _, name := range e.viewOrder {
		if e.views[strings.ToLower(name)].renderAs != nil {
			return true
		}
	}
	return false
}

// resetDeltaStates drops every view's delta-pipeline state. Called when the
// live store changes behind the pipelines' backs (rollback, undo, version
// restore); the next recompute re-primes each view.
func (e *Engine) resetDeltaStates() {
	for _, v := range e.views {
		if v.prepared != nil {
			v.prepared.ResetState()
		}
	}
}

// restoreOrderedViews re-sorts every ORDER BY view's live rows. The store's
// rollback/restore paths rewrite contents through bag-level deltas, which
// restore the exact bag but not row order — and for ordered views the order
// is part of the contract (hosts read it, sinks paint it). Must run after
// any store-level restore, before rendering.
//
// Re-sorting is best-effort per view: view definitions are not versioned,
// so a restore can hand back rows computed under a *previous* definition
// whose columns the current plan's sort keys cannot evaluate. Such views
// keep the restored bag order (exactly the pre-ordered-maintenance
// behavior) rather than failing the whole undo/rollback; OrderRows
// evaluates every key before moving a row, so a failed view is left
// untouched, not half-sorted.
func (e *Engine) restoreOrderedViews() error {
	for _, name := range e.viewOrder {
		v := e.views[strings.ToLower(name)]
		// A nil prepared means the view was just (re)defined; its pending
		// full recompute materializes in order anyway.
		if v.prepared == nil || !v.prepared.Ordered() {
			continue
		}
		rel, err := e.store.Get(v.name)
		if err != nil {
			return err
		}
		_ = v.prepared.OrderRows(rel.Rows) // best-effort; see above
	}
	return nil
}

// render rasterizes every render sink, in definition order, onto a cleared
// framebuffer.
func (e *Engine) render() error {
	if !e.anySink() {
		return nil
	}
	tRender := e.obs.Now()
	defer func() { e.obs.Span(e.curTrace, obs.StageRender, "", "", tRender, 0, 0) }()
	e.Stats.RenderPasses++
	e.img.Clear()
	for _, name := range e.viewOrder {
		v := e.views[strings.ToLower(name)]
		if v.renderAs == nil {
			continue
		}
		rel, err := e.store.Get(v.name)
		if err != nil {
			return err
		}
		mt, err := e.sinkMarkType(v, rel)
		if err != nil {
			return fmt.Errorf("render %s: %w", v.name, err)
		}
		if err := render.RenderMarks(e.img, rel, mt); err != nil {
			return fmt.Errorf("render %s: %w", v.name, err)
		}
	}
	return nil
}

func (e *Engine) sinkMarkType(v *view, rel *relation.Relation) (render.MarkType, error) {
	if v.renderAs.markType != "" {
		return render.ParseMarkType(v.renderAs.markType)
	}
	return render.InferMarkType(rel.Schema)
}

// FeedEvent routes one low-level event through every recognizer, applies
// emitted compound-event rows to storage, maintains views, renders, and
// drives transaction begin/commit/abort. The returned TxnEvent summarizes
// what happened.
func (e *Engine) FeedEvent(ev events.Event) (TxnEvent, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.feedEvent(ev)
}

func (e *Engine) feedEvent(ev events.Event) (TxnEvent, error) {
	e.guardRestoreBarrier()
	e.Stats.EventsFed++
	var out TxnEvent
	// Open the event trace: every stage below records a span, the total
	// lands in dvms_event_seconds, and over-budget events keep their full
	// breakdown in the slow log. All obs calls are nil-safe no-ops on the
	// DisableObs arm.
	tr := e.obs.StartEvent(ev.Type)
	e.curTrace = tr
	defer func() {
		e.curTrace = nil
		e.obs.EndEvent(tr, out.Interaction)
	}()
	consumed := false
	for _, rec := range e.recognizers {
		tRec := e.obs.Now()
		acts, err := rec.Feed(ev)
		e.obs.Span(tr, obs.StageRecognize, rec.Name(), "", tRec, 0, len(acts.Rows))
		if err != nil {
			return out, err
		}
		if acts.Filtered {
			continue
		}
		consumed = true
		out.Interaction = rec.Name()
		ct, err := e.store.Get(rec.Name())
		if err != nil {
			return out, err
		}
		var cd relation.Delta
		if acts.Began {
			out.Began = true
			// Each interaction starts from a fresh compound table; the old
			// rows leave as deletes. The clear is recorded before BeginTxn
			// seals the begin boundary, so the transaction-begin state has
			// the table empty (views catch up on the first refresh below),
			// exactly as the snapshot store captured it.
			cd.Del = ct.Rows
			ct.Rows = nil
			e.store.recordChange(rec.Name(), relation.Delta{Del: cd.Del})
			e.store.BeginTxn()
			e.activeTxn = rec.Name()
		}
		// Validate every row before appending any (like execInsert), so an
		// arity error cannot leave live rows the delta log never recorded.
		if err := appendAll(ct, acts.Rows); err != nil {
			return out, err
		}
		cd.Ins = acts.Rows
		out.RowsEmitted += len(acts.Rows)
		if acts.Began || len(acts.Rows) > 0 {
			e.store.recordChange(rec.Name(), relation.Delta{Ins: acts.Rows})
			// Cancel delete/insert pairs so an interaction restart that
			// reproduces existing rows does not ripple through the dataflow.
			cd = cd.Consolidate()
			if err := e.refresh(changeSet(rec.Name(), &cd)); err != nil {
				return out, err
			}
		}
		// The commit span covers the version-boundary seal — and with a WAL
		// attached, the store sink's append (and under -fsync always, the
		// fsync) runs inside it, so durable serving shows up in the trace.
		tSeal := e.obs.Now()
		switch {
		case acts.Committed:
			out.Committed = true
			out.Version = e.commit()
			e.activeTxn = ""
		case acts.Aborted:
			out.Aborted = true
			e.Stats.Aborts++
			if err := e.abort(rec.Name()); err != nil {
				return out, err
			}
			e.activeTxn = ""
		default:
			e.store.MarkEvent()
		}
		e.obs.Span(tr, obs.StageCommit, rec.Name(), "", tSeal, 0, 0)
	}
	if !consumed {
		e.Stats.EventsFiltered++
	}
	return out, nil
}

// FeedStream feeds a whole event stream, returning the transaction summary
// of each event.
func (e *Engine) FeedStream(stream events.Stream) ([]TxnEvent, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]TxnEvent, 0, len(stream))
	for _, ev := range stream {
		te, err := e.feedEvent(ev)
		if err != nil {
			return out, err
		}
		out = append(out, te)
	}
	return out, nil
}

// ApplyExternalDeltas propagates changes to relations this engine does not
// own — the shared base of a multi-client server — through the private view
// graph: dirty views update by delta where possible and the framebuffer
// re-renders if a sink changed. changes maps lowercase relation names to
// deltas (nil marks an unknown change, forcing dependents to recompute);
// the map is extended in place with the private views' own output deltas,
// so callers must hand each engine its own copy.
func (e *Engine) ApplyExternalDeltas(changes map[string]*relation.Delta) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.refresh(changes)
}

// Commit pushes the current state as a new committed version and returns
// its index.
func (e *Engine) Commit() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.commit()
}

func (e *Engine) commit() int {
	e.Stats.Commits++
	return e.store.Commit()
}

// abort rolls the whole database back to the last committed version (the
// state before the interaction began) and re-renders — §2.1.2: "abort is
// equivalent to clearing the compound event table C in order to roll back".
func (e *Engine) abort(compound string) error {
	if err := e.store.Rollback(); err != nil {
		return err
	}
	ct, err := e.store.Get(compound)
	if err != nil {
		return err
	}
	removed := ct.Rows
	ct.Rows = nil
	e.store.recordChange(compound, relation.Delta{Del: removed})
	// The rollback rewrote live contents without deltas; every delta
	// pipeline is now stale and re-primes on its next recompute.
	e.resetDeltaStates()
	if err := e.restoreOrderedViews(); err != nil {
		return err
	}
	return e.render()
}

// Undo rewinds the database to the previous committed version and commits
// that state as a new version (so redo is a further Undo of depth 2, per
// the versioning semantics of §2.1.3).
func (e *Engine) Undo() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.store.RestoreVersion(2); err != nil {
		return err
	}
	e.resetDeltaStates()
	if err := e.restoreOrderedViews(); err != nil {
		return err
	}
	if err := e.render(); err != nil {
		return err
	}
	e.commit()
	return nil
}

// Relation returns the current contents of a base relation or view; names
// absent from the private store fall back to the shared base (server
// sessions).
func (e *Engine) Relation(name string) (*relation.Relation, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.store.Has(name) && e.baseHas != nil && e.baseHas(name) {
		return e.base.Resolve(name, relation.VersionRef{})
	}
	return e.store.Get(name)
}

// RelationAt returns a relation's contents at a version reference. For
// ORDER BY views the historical bag is re-sorted into the current
// definition's output order (reconstruction is bag-level and loses it);
// the store's copy — possibly cached or live — is left untouched. The
// re-sort is best-effort: versions that predate a view redefinition carry
// that version's schema (the store keeps it deliberately), which the
// current sort keys may not evaluate against — those come back in
// reconstruction order, as before ordered maintenance existed.
func (e *Engine) RelationAt(name string, v relation.VersionRef) (*relation.Relation, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.store.Has(name) && e.baseHas != nil && e.baseHas(name) {
		return e.base.Resolve(name, v)
	}
	rel, err := e.store.Resolve(name, v)
	if err != nil {
		return nil, err
	}
	vw, ok := e.views[strings.ToLower(name)]
	if !ok || vw.prepared == nil || !vw.prepared.Ordered() {
		return rel, nil
	}
	out := *rel
	out.Rows = append([]relation.Tuple(nil), rel.Rows...)
	if err := vw.prepared.OrderRows(out.Rows); err != nil {
		return rel, nil // historical schema predates the current ORDER BY
	}
	return &out, nil
}

// Query runs an ad-hoc DeVIL query against the current state.
func (e *Engine) Query(src string) (*relation.Relation, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	q, err := parser.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	res, err := e.executor().RunQuery(q)
	if err != nil {
		return nil, err
	}
	return exec.StripQualifiers(res.Rel), nil
}

// ViewNames lists views in definition order.
func (e *Engine) ViewNames() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.viewOrder...)
}

// InTxn reports whether an interaction is in flight.
func (e *Engine) InTxn() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.activeTxn != ""
}
