package core

// Engine-level coverage for the fused delta path: the default configuration
// must actually stream aggregate deltas through the fused operators (no row
// fallbacks), the DisableFusion ablation arm must take the row path, and the
// two must agree with a full-recompute oracle event for event across inserts,
// deletes, brush moves, and undo.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/relation"
)

// fusionProgram is a crossfilter-shaped program: AGG aggregates over a
// fact⋈selection join (the shape the fused join→aggregate rule targets) and
// FILT aggregates over a predicate filter (the filter→aggregate rule).
const fusionProgram = `
CREATE TABLE Fact (bin int, grp string, val int);
INSERT INTO Fact VALUES (1, 'a', 10), (2, 'b', 20), (3, 'c', 30), (1, 'b', 40);
CREATE TABLE Sel (bin int);
INSERT INTO Sel VALUES (1), (2);
AGG = SELECT f.grp AS grp, count(*) AS n, sum(f.val) AS s FROM Fact AS f, Sel AS sl WHERE f.bin = sl.bin GROUP BY f.grp;
FILT = SELECT grp, count(*) AS n, sum(val) AS s FROM Fact WHERE bin > 1 GROUP BY grp;
`

func fusionArm(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e := New(cfg)
	if err := e.LoadProgram(fusionProgram); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestFusionPathActuallyUsed pins that the default engine (cube disabled so
// the plain delta pipeline runs) streams its aggregate applies through the
// fused path: fused applies accumulate, batch rows are counted, and the row
// fallback counter stays at zero.
func TestFusionPathActuallyUsed(t *testing.T) {
	e := fusionArm(t, Config{DisableCube: true})
	for i := 0; i < 10; i++ {
		ins := fmt.Sprintf("INSERT INTO Fact VALUES (%d, 'a', %d)", i%6, i*10)
		if err := e.Exec(ins); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Exec("DELETE FROM Fact WHERE val = 40"); err != nil {
		t.Fatal(err)
	}
	// Brush move: replace the selection.
	if err := e.Exec("DELETE FROM Sel WHERE bin = 2"); err != nil {
		t.Fatal(err)
	}
	if err := e.Exec("INSERT INTO Sel VALUES (3)"); err != nil {
		t.Fatal(err)
	}
	st := e.StatsSnapshot()
	if st.Exec.FusedApplies == 0 || st.Exec.BatchRows == 0 {
		t.Fatalf("fused path unused: %+v", st.Exec)
	}
	if st.Exec.RowFallbacks != 0 {
		t.Fatalf("default engine took %d row fallbacks: %+v", st.Exec.RowFallbacks, st.Exec)
	}
	if st.FullFallbacks != 0 {
		t.Fatalf("crossfilter program should stay on the delta path (%d full fallbacks)", st.FullFallbacks)
	}
}

// TestFusionEngineParity drives three arms — fused (default), the
// DisableFusion row-path ablation, and a RecomputeAll oracle — through one
// identical randomized event stream and checks both views agree across all
// arms after every event, including through an Undo.
func TestFusionEngineParity(t *testing.T) {
	fused := fusionArm(t, Config{DisableCube: true})
	rowArm := fusionArm(t, Config{DisableCube: true, DisableFusion: true})
	oracle := fusionArm(t, Config{RecomputeAll: true})
	arms := []*Engine{fused, rowArm, oracle}

	rng := rand.New(rand.NewSource(41))
	check := func(step int, what string) {
		t.Helper()
		for _, view := range []string{"AGG", "FILT"} {
			want, err := oracle.Relation(view)
			if err != nil {
				t.Fatal(err)
			}
			for i, e := range arms[:2] {
				got, err := e.Relation(view)
				if err != nil {
					t.Fatal(err)
				}
				if !relation.Equal(got, want) {
					t.Fatalf("step %d (%s): arm %d diverges on %s\ngot:\n%s\nwant:\n%s",
						step, what, i, view, got, want)
				}
			}
		}
	}
	exec := func(step int, sql string) {
		t.Helper()
		for _, e := range arms {
			if err := e.Exec(sql); err != nil {
				t.Fatalf("step %d: %s: %v", step, sql, err)
			}
		}
		check(step, sql)
	}

	grps := []string{"a", "b", "c"}
	for step := 0; step < 60; step++ {
		switch {
		case step == 20 || step == 40:
			// Commit+Undo rolls every arm back to the previous committed
			// version; the next write re-primes the delta pipeline.
			for _, e := range arms {
				e.Commit()
				if err := e.Undo(); err != nil {
					t.Fatalf("step %d: undo: %v", step, err)
				}
			}
			check(step, "undo")
		case step%7 == 3:
			exec(step, fmt.Sprintf("DELETE FROM Fact WHERE val = %d", rng.Intn(30)*10))
		case step%11 == 5:
			// Brush move: swap one selected bin for another.
			exec(step, fmt.Sprintf("DELETE FROM Sel WHERE bin = %d", rng.Intn(6)))
			exec(step, fmt.Sprintf("INSERT INTO Sel VALUES (%d)", rng.Intn(6)))
		default:
			exec(step, fmt.Sprintf("INSERT INTO Fact VALUES (%d, '%s', %d)",
				rng.Intn(6), grps[rng.Intn(len(grps))], rng.Intn(30)*10))
		}
	}

	// The fused arm must never have fallen back to rows; the ablation arm
	// must have exercised the row path it exists to measure.
	if st := fused.StatsSnapshot(); st.Exec.FusedApplies == 0 || st.Exec.RowFallbacks != 0 {
		t.Fatalf("fused arm stats: %+v", st.Exec)
	}
	if st := rowArm.StatsSnapshot(); st.Exec.FusedApplies != 0 || st.Exec.RowFallbacks == 0 {
		t.Fatalf("row arm stats: %+v", st.Exec)
	}
}
