// Package obs is the serve tier's low-overhead latency-observability layer:
// lock-cheap log-bucketed histograms, counters and gauges behind one named
// registry, per-event stage traces with a slow-event log, and Prometheus-
// style text exposition. The paper's contract is bounded interactive latency
// (~100 ms perceptual budget for brushing); this package is how the system
// measures that contract in production instead of only in offline BENCH_*
// runs — every stage of the event path (recognize, delta propagation per
// view and per path, sort maintenance, render, WAL append/fsync) records
// into it, and the serve tier exposes the snapshots over the wire and over
// HTTP.
//
// Everything here is safe for concurrent use. The hot path (Histogram.
// Observe, Counter.Add) is a handful of atomic adds — no locks, no
// allocation — so recording a stage costs nanoseconds against stage costs
// of microseconds to milliseconds.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log2 latency buckets. Bucket i counts
// durations d with bits.Len64(ns) == i, i.e. d in [2^(i-1), 2^i) ns; bucket
// 0 is d == 0. 48 buckets reach ~3.2 days, far beyond any event latency.
const histBuckets = 48

// Histogram is a lock-free log-bucketed latency histogram: one atomic
// counter per power-of-two nanosecond bucket plus count/sum/max. Recording
// is a few atomic adds; quantiles are estimated from a Snapshot by linear
// interpolation inside the covering bucket, so any estimate is within a
// factor of 2 of the true value (the bucket bound) and in practice much
// closer.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
}

// bucketIdx maps a duration to its log2 bucket.
func bucketIdx(ns int64) int {
	if ns <= 0 {
		return 0
	}
	i := bits.Len64(uint64(ns))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// bucketUpper is the exclusive upper bound of bucket i in nanoseconds.
func bucketUpper(i int) int64 {
	if i <= 0 {
		return 1
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1) << i
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketIdx(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		old := h.max.Load()
		if ns <= old || h.max.CompareAndSwap(old, ns) {
			return
		}
	}
}

// Snapshot copies the histogram's counters into an immutable value. Taken
// against concurrent Observe calls the buckets may be mid-update relative to
// count/sum (each field is individually atomic); quantile estimates use the
// bucket totals, so the skew is at most the in-flight observations.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram, mergeable and
// queryable without synchronization.
type HistSnapshot struct {
	Buckets [histBuckets]int64
	Count   int64
	Sum     int64 // nanoseconds
	Max     int64 // nanoseconds
}

// Merge returns the element-wise sum of two snapshots (max takes the larger)
// — the cross-session aggregation the serve tier uses to report server-wide
// latency from per-session histograms.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	out := s
	for i := range out.Buckets {
		out.Buckets[i] += o.Buckets[i]
	}
	out.Count += o.Count
	out.Sum += o.Sum
	if o.Max > out.Max {
		out.Max = o.Max
	}
	return out
}

// Quantile estimates the q-quantile (0 < q <= 1) by rank walk over the log
// buckets with linear interpolation inside the covering bucket. Zero when
// the histogram is empty.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation (1-based, ceil like a sorted slice).
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range s.Buckets {
		n := s.Buckets[i]
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo := int64(0)
			if i > 0 {
				lo = bucketUpper(i - 1)
			}
			hi := bucketUpper(i)
			if hi > s.Max && s.Max >= lo {
				hi = s.Max // the top occupied bucket cannot exceed the max
			}
			// Interpolate the rank's position inside the bucket.
			frac := float64(rank-cum) / float64(n)
			return time.Duration(float64(lo) + frac*float64(hi-lo))
		}
		cum += n
	}
	return time.Duration(s.Max)
}

// P50 is the median estimate.
func (s HistSnapshot) P50() time.Duration { return s.Quantile(0.50) }

// P95 is the 95th-percentile estimate.
func (s HistSnapshot) P95() time.Duration { return s.Quantile(0.95) }

// P99 is the 99th-percentile estimate.
func (s HistSnapshot) P99() time.Duration { return s.Quantile(0.99) }

// MaxDur is the largest observed duration.
func (s HistSnapshot) MaxDur() time.Duration { return time.Duration(s.Max) }

// Mean is the average observed duration (zero when empty).
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}
