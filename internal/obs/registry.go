package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter registered by name.
type Counter struct{ v atomic.Int64 }

// Add increments the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the counter.
func (c *Counter) Value() int64 { return c.v.Load() }

// Registry holds named histograms, counters, and callback gauges. Lookup
// creates on demand; hot-path callers cache the returned pointer and never
// touch the registry lock again. Names are flat, lowercase, underscore-
// separated (Prometheus-compatible); stage histograms follow
// "dvms_stage_<stage>[_<path>]_seconds" (see OBSERVABILITY.md for the full
// metric table).
type Registry struct {
	mu     sync.RWMutex
	hists  map[string]*Histogram
	counts map[string]*Counter
	gauges map[string]func() float64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		hists:  map[string]*Histogram{},
		counts: map[string]*Counter{},
		gauges: map[string]func() float64{},
	}
}

// Hist returns the named histogram, creating it on first use.
func (r *Registry) Hist(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counts[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counts[name]; c == nil {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// SetGaugeFunc installs (or replaces) a callback gauge: fn is invoked at
// snapshot/exposition time, never on the hot path. fn must be safe to call
// from any goroutine and must not call back into this registry.
func (r *Registry) SetGaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = fn
}

// HistStat is one histogram's summary in a Snapshot, durations in
// microseconds for readability on the wire.
type HistStat struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50_us"`
	P95   float64 `json:"p95_us"`
	P99   float64 `json:"p99_us"`
	Max   float64 `json:"max_us"`
	Mean  float64 `json:"mean_us"`
	Sum   float64 `json:"sum_us"`

	// Raw carries the mergeable bucket counts; omitted from JSON (the wire
	// surface reports summaries) but kept so snapshots merge exactly.
	Raw HistSnapshot `json:"-"`
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func histStat(s HistSnapshot) HistStat {
	return HistStat{
		Count: s.Count,
		P50:   us(s.P50()),
		P95:   us(s.P95()),
		P99:   us(s.P99()),
		Max:   us(s.MaxDur()),
		Mean:  us(s.Mean()),
		Sum:   float64(s.Sum) / 1e3,
		Raw:   s,
	}
}

// Snapshot is a point-in-time copy of a registry (histogram summaries,
// counter values, gauge readings), mergeable across registries and JSON-
// encodable for the line protocol's stats op.
type Snapshot struct {
	Histograms map[string]HistStat `json:"histograms,omitempty"`
	Counters   map[string]int64    `json:"counters,omitempty"`
	Gauges     map[string]float64  `json:"gauges,omitempty"`
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	counts := make(map[string]*Counter, len(r.counts))
	for k, v := range r.counts {
		counts[k] = v
	}
	gauges := make(map[string]func() float64, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	r.mu.RUnlock()

	out := Snapshot{
		Histograms: make(map[string]HistStat, len(hists)),
		Counters:   make(map[string]int64, len(counts)),
		Gauges:     make(map[string]float64, len(gauges)),
	}
	for k, h := range hists {
		out.Histograms[k] = histStat(h.Snapshot())
	}
	for k, c := range counts {
		out.Counters[k] = c.Value()
	}
	for k, fn := range gauges {
		out.Gauges[k] = fn()
	}
	return out
}

// Merge folds another snapshot into this one: histograms merge bucket-wise,
// counters and gauges sum. Used to aggregate per-session registries into the
// server-wide view.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := Snapshot{
		Histograms: make(map[string]HistStat, len(s.Histograms)+len(o.Histograms)),
		Counters:   make(map[string]int64, len(s.Counters)+len(o.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)+len(o.Gauges)),
	}
	for k, v := range s.Histograms {
		out.Histograms[k] = v
	}
	for k, v := range o.Histograms {
		if cur, ok := out.Histograms[k]; ok {
			out.Histograms[k] = histStat(cur.Raw.Merge(v.Raw))
		} else {
			out.Histograms[k] = v
		}
	}
	for k, v := range s.Counters {
		out.Counters[k] = v
	}
	for k, v := range o.Counters {
		out.Counters[k] += v
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range o.Gauges {
		out.Gauges[k] += v
	}
	return out
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format: histograms as summaries (quantile series plus _sum/_count, seconds
// as the unit), counters as counter series, gauges as gauge series. Names
// are emitted verbatim; keep them exposition-safe at registration.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	names := make([]string, 0, len(s.Histograms))
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := s.Histograms[k]
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", k); err != nil {
			return err
		}
		for _, q := range []struct {
			q string
			v time.Duration
		}{
			{"0.5", h.Raw.P50()},
			{"0.95", h.Raw.P95()},
			{"0.99", h.Raw.P99()},
		} {
			if _, err := fmt.Fprintf(w, "%s{quantile=\"%s\"} %g\n", k, q.q, q.v.Seconds()); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_max %g\n%s_sum %g\n%s_count %d\n",
			k, time.Duration(h.Raw.Max).Seconds(), k, float64(h.Raw.Sum)/1e9, k, h.Count); err != nil {
			return err
		}
	}
	names = names[:0]
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", k, k, s.Counters[k]); err != nil {
			return err
		}
	}
	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", k, k, s.Gauges[k]); err != nil {
			return err
		}
	}
	return nil
}
