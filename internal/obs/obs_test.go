package obs

import (
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestQuantileVsSortedOracle drives the histogram with several latency
// distributions and checks every quantile estimate against the exact sorted-
// slice quantile. Log buckets bound the error by the covering bucket's
// width: the estimate must land within a factor of 2 of the oracle (and the
// max must be exact).
func TestQuantileVsSortedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dists := map[string]func() time.Duration{
		// Uniform microseconds: the common stage-latency regime.
		"uniform_us": func() time.Duration {
			return time.Duration(1+rng.Intn(1000)) * time.Microsecond
		},
		// Log-normal-ish heavy tail: most events fast, a few very slow.
		"heavy_tail": func() time.Duration {
			ns := 1000 * (1 << rng.Intn(20))
			return time.Duration(ns + rng.Intn(ns))
		},
		// Constant: every observation identical (degenerate buckets).
		"constant": func() time.Duration { return 123456 * time.Nanosecond },
	}
	for name, gen := range dists {
		var h Histogram
		vals := make([]time.Duration, 0, 5000)
		for i := 0; i < 5000; i++ {
			d := gen()
			vals = append(vals, d)
			h.Observe(d)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		s := h.Snapshot()
		if s.Count != int64(len(vals)) {
			t.Fatalf("%s: count = %d, want %d", name, s.Count, len(vals))
		}
		if s.MaxDur() != vals[len(vals)-1] {
			t.Fatalf("%s: max = %v, want %v", name, s.MaxDur(), vals[len(vals)-1])
		}
		for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 1.0} {
			idx := int(q*float64(len(vals))) - 1
			if idx < 0 {
				idx = 0
			}
			oracle := vals[idx]
			got := s.Quantile(q)
			lo, hi := oracle/2, oracle*2
			if got < lo || got > hi {
				t.Errorf("%s: q=%.2f estimate %v outside [%v, %v] (oracle %v)",
					name, q, got, lo, hi, oracle)
			}
		}
	}
}

// TestHistogramMerge checks that merging two snapshots equals observing both
// streams into one histogram: bucket counts, count, sum, and max all match,
// so per-session histograms aggregate to exactly the server-wide view.
func TestHistogramMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a, b, both Histogram
	for i := 0; i < 2000; i++ {
		d := time.Duration(rng.Intn(1 << 24))
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
		both.Observe(d)
	}
	merged := a.Snapshot().Merge(b.Snapshot())
	want := both.Snapshot()
	if merged != want {
		t.Fatalf("merge mismatch:\n merged %+v\n want   %+v", merged, want)
	}
}

// TestConcurrentRecorders hammers one histogram and one registry from many
// goroutines (run under -race in CI): total count and sum must account for
// every observation, and concurrent snapshots must never panic or see
// negative values.
func TestConcurrentRecorders(t *testing.T) {
	const goroutines, perG = 8, 5000
	var h Histogram
	reg := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				d := time.Duration(rng.Intn(1 << 20))
				h.Observe(d)
				reg.Hist("dvms_stage_delta_cube_seconds").Observe(d)
				reg.Counter("events").Add(1)
			}
		}(int64(g))
	}
	// Concurrent snapshot readers.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			s := h.Snapshot()
			if s.Count < 0 || s.Sum < 0 {
				panic("negative snapshot")
			}
			reg.Snapshot()
		}
	}()
	wg.Wait()
	close(done)
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*perG)
	}
	var bucketSum int64
	for _, b := range s.Buckets {
		bucketSum += b
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, s.Count)
	}
	if got := reg.Counter("events").Value(); got != goroutines*perG {
		t.Fatalf("registry counter = %d, want %d", got, goroutines*perG)
	}
}

// TestRecorderNilSafe proves the disabled arm is truly free of effects: a
// nil recorder's whole surface is callable and inert.
func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	tr := r.StartEvent("MOUSE_MOVE")
	if tr != nil {
		t.Fatal("nil recorder produced a trace")
	}
	r.Span(tr, StageDelta, "V", PathCube, r.Now(), 1, 1)
	r.EndEvent(tr, "drag")
	if r.Traces() != nil || r.SlowEvents() != nil || r.Registry() != nil {
		t.Fatal("nil recorder retained state")
	}
	if s := r.Snapshot(); len(s.Histograms) != 0 {
		t.Fatal("nil recorder snapshot not empty")
	}
}

// TestSlowEventLog checks the budget gate: only events over budget enter the
// slow log, with their full stage breakdown retained.
func TestSlowEventLog(t *testing.T) {
	r := NewRecorder(time.Millisecond)
	// Fast event: under budget.
	tr := r.StartEvent("MOUSE_MOVE")
	r.Span(tr, StageDelta, "CHART", PathFused, r.Now(), 3, 2)
	r.EndEvent(tr, "drag")
	if len(r.SlowEvents()) != 0 {
		t.Fatal("fast event entered the slow log")
	}
	// Slow event: sleep past the budget.
	tr = r.StartEvent("MOUSE_MOVE")
	st := r.Now()
	time.Sleep(3 * time.Millisecond)
	r.Span(tr, StageDelta, "CHART", PathFallback, st, 10, 5)
	r.EndEvent(tr, "drag")
	slow := r.SlowEvents()
	if len(slow) != 1 {
		t.Fatalf("slow log has %d entries, want 1", len(slow))
	}
	got := slow[0]
	if !got.Slow || got.Interaction != "drag" || len(got.Spans) != 1 {
		t.Fatalf("slow trace malformed: %+v", got)
	}
	if sp := got.Spans[0]; sp.Path != PathFallback || sp.View != "CHART" || sp.RowsIn != 10 || sp.RowsOut != 5 {
		t.Fatalf("span fields lost: %+v", sp)
	}
	if got.TotalUS < 3000 {
		t.Fatalf("total %.0fµs, want >= 3000", got.TotalUS)
	}
	if c := r.Registry().Counter("dvms_slow_events_total").Value(); c != 1 {
		t.Fatalf("slow counter = %d, want 1", c)
	}
}

// TestRingOverwrite checks the trace ring retains the newest N in order.
func TestRingOverwrite(t *testing.T) {
	r := newRing(4)
	for i := 1; i <= 10; i++ {
		r.add(Trace{ID: int64(i)})
	}
	got := r.list()
	if len(got) != 4 {
		t.Fatalf("ring holds %d, want 4", len(got))
	}
	for i, tr := range got {
		if want := int64(7 + i); tr.ID != want {
			t.Fatalf("ring[%d] = %d, want %d", i, tr.ID, want)
		}
	}
}

// TestPrometheusExposition spot-checks the text format: summary quantiles,
// counter and gauge series, sorted stable output.
func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Hist("dvms_event_seconds").Observe(2 * time.Millisecond)
	reg.Counter("dvms_slow_events_total").Add(3)
	reg.SetGaugeFunc("dvms_sessions", func() float64 { return 7 })
	var b strings.Builder
	if err := reg.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE dvms_event_seconds summary",
		`dvms_event_seconds{quantile="0.5"}`,
		"dvms_event_seconds_count 1",
		"# TYPE dvms_slow_events_total counter",
		"dvms_slow_events_total 3",
		"# TYPE dvms_sessions gauge",
		"dvms_sessions 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestSnapshotMerge checks registry-level merge semantics across the three
// metric kinds.
func TestSnapshotMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Hist("h").Observe(time.Millisecond)
	b.Hist("h").Observe(3 * time.Millisecond)
	b.Hist("only_b").Observe(time.Second)
	a.Counter("c").Add(2)
	b.Counter("c").Add(5)
	a.SetGaugeFunc("g", func() float64 { return 1 })
	b.SetGaugeFunc("g", func() float64 { return 10 })
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Histograms["h"].Count != 2 {
		t.Fatalf("merged h count = %d, want 2", m.Histograms["h"].Count)
	}
	if m.Histograms["only_b"].Count != 1 {
		t.Fatal("one-sided histogram lost in merge")
	}
	if m.Counters["c"] != 7 {
		t.Fatalf("merged counter = %d, want 7", m.Counters["c"])
	}
	if m.Gauges["g"] != 11 {
		t.Fatalf("merged gauge = %g, want 11", m.Gauges["g"])
	}
}
