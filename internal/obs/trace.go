package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage names used by the engine's event path. The delta stage additionally
// carries a Path (cube, fused, row, fallback) naming how the view's update
// was computed.
const (
	StageRecognize = "recognize" // event → recognizer rows
	StagePrepare   = "prepare"   // plan build + optimize + compile (bind time)
	StageDelta     = "delta"     // delta propagation through one view
	StageSort      = "sort"      // ordered-view row-order maintenance
	StageRender    = "render"    // rasterization pass
	StageCommit    = "commit"    // version boundary seal (includes WAL append)
)

// Path labels for StageDelta spans.
const (
	PathCube     = "cube"     // answered from data-cube index tiles
	PathFused    = "fused"    // streamed through fused join→aggregate operators
	PathRow      = "row"      // row-at-a-time delta apply
	PathFallback = "fallback" // full recompute (non-safe plan or delta failure)
)

// Span is one timed stage inside an event trace.
type Span struct {
	Stage   string  `json:"stage"`
	View    string  `json:"view,omitempty"` // view name for delta/sort spans
	Path    string  `json:"path,omitempty"` // delta path taken (cube/fused/row/fallback)
	RowsIn  int     `json:"rows_in,omitempty"`
	RowsOut int     `json:"rows_out,omitempty"`
	DurUS   float64 `json:"dur_us"`
}

// Trace is one interaction event's stage breakdown: ordered spans whose
// durations account for (approximately) the whole event latency; the gap to
// TotalUS is untimed glue (map walks, bookkeeping).
type Trace struct {
	ID          int64   `json:"id"`
	Event       string  `json:"event"`                 // low-level event type
	Interaction string  `json:"interaction,omitempty"` // compound event table, when recognized
	Spans       []Span  `json:"spans"`
	TotalUS     float64 `json:"total_us"`
	Slow        bool    `json:"slow,omitempty"` // exceeded the latency budget

	start time.Time
}

// ring is a fixed-capacity overwrite-oldest trace buffer.
type ring struct {
	mu   sync.Mutex
	buf  []Trace
	next int
	n    int
}

func newRing(capacity int) *ring { return &ring{buf: make([]Trace, capacity)} }

// add copies the trace into the next slot. The spans are copied into the
// slot's own backing array (reused across generations), never aliased, so
// callers may recycle t.Spans immediately after add returns.
func (r *ring) add(t Trace) {
	r.mu.Lock()
	slot := &r.buf[r.next]
	spans := slot.Spans
	*slot = t
	slot.Spans = append(spans[:0], t.Spans...)
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// list returns the retained traces, oldest first.
func (r *ring) list() []Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Trace, 0, r.n)
	start := r.next - r.n
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i+len(r.buf))%len(r.buf)])
	}
	return out
}

// DefaultBudget is the per-event latency budget when none is configured:
// the ~100 ms perceptual brushing budget from the HDI literature.
const DefaultBudget = 100 * time.Millisecond

// Recorder ties a registry, a trace ring, and a slow-event log together for
// one engine. A nil *Recorder is the disabled (ablation) arm: every method
// is nil-safe and free, so instrumented code needs no branching beyond the
// calls themselves.
type Recorder struct {
	reg    *Registry
	budget time.Duration
	traces *ring
	slow   *ring
	nextID atomic.Int64

	// pool recycles Trace objects (and their span backing arrays) between
	// StartEvent and EndEvent: the rings copy spans out, so steady-state
	// tracing allocates nothing per event.
	pool sync.Pool

	// cached hot-path histograms (avoid registry lookups per event)
	eventHist *Histogram
	slowCount *Counter

	// interned stage histograms: the stage/path vocabulary is fixed, so every
	// Span on the hot path resolves its histogram by switch instead of
	// allocating a concatenated name and walking the registry map.
	hRecognize, hPrepare, hSort, hRender, hCommit      *Histogram
	hDeltaCube, hDeltaFused, hDeltaRow, hDeltaFallback *Histogram
}

// NewRecorder builds an enabled recorder. budget <= 0 uses DefaultBudget.
func NewRecorder(budget time.Duration) *Recorder {
	if budget <= 0 {
		budget = DefaultBudget
	}
	reg := NewRegistry()
	return &Recorder{
		reg:       reg,
		budget:    budget,
		traces:    newRing(128),
		slow:      newRing(64),
		eventHist: reg.Hist("dvms_event_seconds"),
		slowCount: reg.Counter("dvms_slow_events_total"),

		hRecognize:     reg.Hist("dvms_stage_recognize_seconds"),
		hPrepare:       reg.Hist("dvms_stage_prepare_seconds"),
		hSort:          reg.Hist("dvms_stage_sort_seconds"),
		hRender:        reg.Hist("dvms_stage_render_seconds"),
		hCommit:        reg.Hist("dvms_stage_commit_seconds"),
		hDeltaCube:     reg.Hist("dvms_stage_delta_cube_seconds"),
		hDeltaFused:    reg.Hist("dvms_stage_delta_fused_seconds"),
		hDeltaRow:      reg.Hist("dvms_stage_delta_row_seconds"),
		hDeltaFallback: reg.Hist("dvms_stage_delta_fallback_seconds"),
	}
}

// stageHist resolves the interned histogram for a stage/path pair; unknown
// combinations fall back to a registry lookup so the naming scheme still
// holds for stages added later.
func (r *Recorder) stageHist(stage, path string) *Histogram {
	switch stage {
	case StageDelta:
		switch path {
		case PathCube:
			return r.hDeltaCube
		case PathFused:
			return r.hDeltaFused
		case PathRow:
			return r.hDeltaRow
		case PathFallback:
			return r.hDeltaFallback
		}
	case StageRecognize:
		return r.hRecognize
	case StagePrepare:
		return r.hPrepare
	case StageSort:
		return r.hSort
	case StageRender:
		return r.hRender
	case StageCommit:
		return r.hCommit
	}
	name := "dvms_stage_" + stage + "_seconds"
	if path != "" {
		name = "dvms_stage_" + stage + "_" + path + "_seconds"
	}
	return r.reg.Hist(name)
}

// Registry exposes the recorder's registry (nil-safe).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Budget is the configured slow-event latency budget (0 when disabled).
func (r *Recorder) Budget() time.Duration {
	if r == nil {
		return 0
	}
	return r.budget
}

// Now is the trace clock: zero (and free) when the recorder is disabled, so
// call sites can time stages unconditionally.
func (r *Recorder) Now() time.Time {
	if r == nil {
		return time.Time{}
	}
	return time.Now()
}

// StartEvent opens a trace for one interaction event. Returns nil (free)
// when the recorder is disabled.
func (r *Recorder) StartEvent(eventType string) *Trace {
	if r == nil {
		return nil
	}
	tr, _ := r.pool.Get().(*Trace)
	if tr == nil {
		tr = &Trace{Spans: make([]Span, 0, 16)}
	}
	*tr = Trace{
		ID:    r.nextID.Add(1),
		Event: eventType,
		Spans: tr.Spans[:0],
		start: time.Now(),
	}
	return tr
}

// Span records one stage: the duration lands in the stage histogram
// ("dvms_stage_<stage>[_<path>]_seconds") and, when tr is non-nil, as a span
// on the trace. start comes from Now; a zero start (disabled recorder) is a
// no-op, so callers never branch.
func (r *Recorder) Span(tr *Trace, stage, view, path string, start time.Time, rowsIn, rowsOut int) {
	if r == nil || start.IsZero() {
		return
	}
	d := time.Since(start)
	r.stageHist(stage, path).Observe(d)
	if tr != nil {
		tr.Spans = append(tr.Spans, Span{
			Stage: stage, View: view, Path: path,
			RowsIn: rowsIn, RowsOut: rowsOut,
			DurUS: us(d),
		})
	}
}

// EndEvent closes a trace: total latency lands in dvms_event_seconds, the
// trace enters the ring, and — when the total exceeds the budget — the slow
// log retains the full stage breakdown and the slow counter advances.
// interaction is the compound event table the event drove ("" if filtered).
func (r *Recorder) EndEvent(tr *Trace, interaction string) {
	if r == nil || tr == nil {
		return
	}
	total := time.Since(tr.start)
	tr.TotalUS = us(total)
	tr.Interaction = interaction
	r.eventHist.Observe(total)
	if total > r.budget {
		tr.Slow = true
		r.slowCount.Add(1)
		r.slow.add(*tr)
	}
	r.traces.add(*tr)
	r.pool.Put(tr) // rings copied the spans; the object is free to reuse
}

// Traces returns the retained recent traces, oldest first (nil-safe).
func (r *Recorder) Traces() []Trace {
	if r == nil {
		return nil
	}
	return r.traces.list()
}

// SlowEvents returns the retained slow-event traces, oldest first (nil-safe).
func (r *Recorder) SlowEvents() []Trace {
	if r == nil {
		return nil
	}
	return r.slow.list()
}

// Snapshot captures the recorder's registry (empty snapshot when disabled,
// so wire surfaces can embed it unconditionally).
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	return r.reg.Snapshot()
}
