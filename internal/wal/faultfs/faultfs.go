// Package faultfs abstracts the file operations the WAL needs behind an
// injectable interface, so the crash-recovery test wall can fail, short-write,
// or "crash" the process at the k-th write and then re-open the surviving
// bytes exactly as a restarted process would. Production code uses OS (thin
// wrappers over package os); tests use Mem, an in-memory filesystem with a
// fault plan.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// FS is the slice of filesystem behavior the WAL uses. Paths are passed
// through verbatim (the WAL always works under one directory).
type FS interface {
	// MkdirAll creates the directory (and parents) if missing.
	MkdirAll(dir string) error
	// List returns the file names (not paths) in dir, sorted.
	List(dir string) ([]string, error)
	// Open opens an existing file for reading.
	Open(path string) (File, error)
	// Create creates (or truncates) a file for writing.
	Create(path string) (File, error)
	// OpenAppend opens an existing file for appending.
	OpenAppend(path string) (File, error)
	// Truncate shortens a file to size bytes.
	Truncate(path string, size int64) error
	// Remove deletes a file.
	Remove(path string) error
	// Size reports a file's length in bytes.
	Size(path string) (int64, error)
}

// File is one open file handle.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes written data to stable storage.
	Sync() error
}

// --- OS: the real filesystem ---

// OS implements FS over package os.
type OS struct{}

type osFile struct{ *os.File }

// MkdirAll implements FS.
func (OS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// List implements FS.
func (OS) List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Open implements FS.
func (OS) Open(path string) (File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Create implements FS.
func (OS) Create(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// OpenAppend implements FS.
func (OS) OpenAppend(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Truncate implements FS.
func (OS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

// Remove implements FS.
func (OS) Remove(path string) error { return os.Remove(path) }

// Size implements FS.
func (OS) Size(path string) (int64, error) {
	st, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// --- Mem: in-memory filesystem with fault injection ---

// ErrCrashed is returned by every operation after the fault plan's crash
// point fires: the simulated process is dead and can only "restart" by
// re-opening the filesystem after ClearFaults.
var ErrCrashed = errors.New("faultfs: simulated crash")

// Plan injects one fault. Writes are counted across all files of the
// filesystem, 1-based; when the counter reaches FailWrite, only ShortBytes
// bytes of that write land (0 = a clean record boundary crash) and every
// subsequent operation fails with ErrCrashed.
type Plan struct {
	FailWrite  int // k-th Write call that crashes (0 = never)
	ShortBytes int // bytes of the failing write that reach "disk"
}

// Mem is an in-memory FS. The byte contents persist across a simulated
// crash; a "restarted process" calls ClearFaults and re-opens its files.
type Mem struct {
	mu      sync.Mutex
	files   map[string][]byte
	synced  map[string]int // bytes guaranteed durable (for DropUnsynced)
	plan    Plan
	writes  int
	crashed bool
}

// NewMem creates an empty in-memory filesystem with no faults planned.
func NewMem() *Mem {
	return &Mem{files: map[string][]byte{}, synced: map[string]int{}}
}

// SetPlan installs a fault plan and resets the write counter.
func (m *Mem) SetPlan(p Plan) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.plan = p
	m.writes = 0
	m.crashed = false
}

// ClearFaults clears the crashed flag and the plan: the next opens behave
// like a freshly restarted process over the surviving bytes.
func (m *Mem) ClearFaults() { m.SetPlan(Plan{}) }

// Writes reports how many Write calls the filesystem has seen since the
// last SetPlan/ClearFaults (used to enumerate crash points).
func (m *Mem) Writes() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.writes
}

// Crashed reports whether the crash point fired.
func (m *Mem) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// DropUnsynced discards every byte written after the last Sync of each
// file — the power-loss model for testing fsync policies.
func (m *Mem) DropUnsynced() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, b := range m.files {
		if n := m.synced[name]; n < len(b) {
			m.files[name] = b[:n]
		}
	}
}

// Clone deep-copies the filesystem contents (no faults, no open handles):
// the snapshot a parity test recovers from while the original keeps going.
func (m *Mem) Clone() *Mem {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := NewMem()
	for name, b := range m.files {
		c.files[name] = append([]byte(nil), b...)
		c.synced[name] = m.synced[name]
	}
	return c
}

// Corrupt flips one byte at offset in the named file (testing checksum
// detection of mid-log corruption).
func (m *Mem) Corrupt(path string, offset int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[path]
	if !ok || offset < 0 || offset >= int64(len(b)) {
		return fmt.Errorf("faultfs: corrupt %s@%d: no such byte", path, offset)
	}
	b[offset] ^= 0xff
	return nil
}

func (m *Mem) check() error {
	if m.crashed {
		return ErrCrashed
	}
	return nil
}

// MkdirAll implements FS (directories are implicit in Mem).
func (m *Mem) MkdirAll(string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.check()
}

// List implements FS.
func (m *Mem) List(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check(); err != nil {
		return nil, err
	}
	prefix := strings.TrimSuffix(dir, "/") + "/"
	var names []string
	for path := range m.files {
		if strings.HasPrefix(path, prefix) {
			names = append(names, filepath.Base(path))
		}
	}
	sort.Strings(names)
	return names, nil
}

// Open implements FS.
func (m *Mem) Open(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check(); err != nil {
		return nil, err
	}
	if _, ok := m.files[path]; !ok {
		return nil, fmt.Errorf("faultfs: open %s: %w", path, os.ErrNotExist)
	}
	return &memFile{m: m, path: path, readable: true}, nil
}

// Create implements FS.
func (m *Mem) Create(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check(); err != nil {
		return nil, err
	}
	m.files[path] = nil
	m.synced[path] = 0
	return &memFile{m: m, path: path, writable: true}, nil
}

// OpenAppend implements FS.
func (m *Mem) OpenAppend(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check(); err != nil {
		return nil, err
	}
	if _, ok := m.files[path]; !ok {
		return nil, fmt.Errorf("faultfs: append %s: %w", path, os.ErrNotExist)
	}
	return &memFile{m: m, path: path, writable: true}, nil
}

// Truncate implements FS.
func (m *Mem) Truncate(path string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check(); err != nil {
		return err
	}
	b, ok := m.files[path]
	if !ok {
		return fmt.Errorf("faultfs: truncate %s: %w", path, os.ErrNotExist)
	}
	if size < int64(len(b)) {
		m.files[path] = b[:size]
		if m.synced[path] > int(size) {
			m.synced[path] = int(size)
		}
	}
	return nil
}

// Remove implements FS.
func (m *Mem) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check(); err != nil {
		return err
	}
	if _, ok := m.files[path]; !ok {
		return fmt.Errorf("faultfs: remove %s: %w", path, os.ErrNotExist)
	}
	delete(m.files, path)
	delete(m.synced, path)
	return nil
}

// Size implements FS.
func (m *Mem) Size(path string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check(); err != nil {
		return 0, err
	}
	b, ok := m.files[path]
	if !ok {
		return 0, fmt.Errorf("faultfs: size %s: %w", path, os.ErrNotExist)
	}
	return int64(len(b)), nil
}

type memFile struct {
	m        *Mem
	path     string
	off      int // read offset
	readable bool
	writable bool
}

// Read implements io.Reader over the current contents.
func (f *memFile) Read(p []byte) (int, error) {
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	if err := f.m.check(); err != nil {
		return 0, err
	}
	b := f.m.files[f.path]
	if f.off >= len(b) {
		return 0, io.EOF
	}
	n := copy(p, b[f.off:])
	f.off += n
	return n, nil
}

// Write appends, honoring the fault plan: the k-th write may land only a
// prefix and flips the filesystem into the crashed state.
func (f *memFile) Write(p []byte) (int, error) {
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	if err := f.m.check(); err != nil {
		return 0, err
	}
	if !f.writable {
		return 0, fmt.Errorf("faultfs: %s not open for writing", f.path)
	}
	f.m.writes++
	if f.m.plan.FailWrite > 0 && f.m.writes >= f.m.plan.FailWrite {
		short := f.m.plan.ShortBytes
		if short > len(p) {
			short = len(p)
		}
		f.m.files[f.path] = append(f.m.files[f.path], p[:short]...)
		f.m.crashed = true
		return short, ErrCrashed
	}
	f.m.files[f.path] = append(f.m.files[f.path], p...)
	return len(p), nil
}

// Sync marks the current length durable (see DropUnsynced).
func (f *memFile) Sync() error {
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	if err := f.m.check(); err != nil {
		return err
	}
	f.m.synced[f.path] = len(f.m.files[f.path])
	return nil
}

// Close implements io.Closer (no-op; Mem has no handle state to release).
func (f *memFile) Close() error { return nil }
