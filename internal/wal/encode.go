package wal

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/events"
	"repro/internal/relation"
)

// Binary record payloads. Every payload starts with a record-kind byte;
// integers are varints, strings and repeated groups are length-prefixed.
// The framing around payloads (length + checksum) lives in wal.go.

// Record kinds (first payload byte).
const (
	recChange     = 1 // a sealed pending window (deltas, resets, created)
	recControl    = 2 // a logical store control op (rollback / restore)
	recCheckpoint = 3 // full-state checkpoint written at segment rotation
	recSession    = 4 // a session-journal op (attach / event / undo / forget)
)

// SealOp says which store boundary sealed the window, so replay drives the
// store through the same Commit/BeginTxn/MarkEvent machinery that produced
// the record — checkpoints, compaction, and history trimming reproduce
// deterministically instead of being serialized.
type SealOp uint8

// Seal boundaries, mirroring the store's sealing call sites.
const (
	SealCommit  SealOp = iota // Store.Commit
	SealBegin                 // Store.BeginTxn
	SealEvent                 // Store.MarkEvent
	SealBarrier               // Store.SealRestoreBarrier (post-restore write guard)
)

// ControlOp is a logical store operation that is not a sealed window.
type ControlOp uint8

// Control operations.
const (
	CtlRollback ControlOp = iota // Store.Rollback
	CtlRestore                   // Store.RestoreVersion(Version)
)

// SessionOp is one entry in a client session's journal.
type SessionOp uint8

// Session journal operations.
const (
	SessAttach SessionOp = iota // session token first seen
	SessEvent                   // one input event fed to the session
	SessUndo                    // session-level undo
	SessForget                  // explicit detach: drop the journal
)

// NamedDelta pairs a relation name with its change for one sealed window.
type NamedDelta struct {
	Name  string
	Delta relation.Delta
}

// ChangeRecord is one sealed pending window: the per-relation deltas, any
// full-contents resets (relations the window rewrote wholesale), and the
// names of relations created inside the window, in creation order.
type ChangeRecord struct {
	Seal    SealOp
	Deltas  []NamedDelta // sorted by Name for deterministic bytes
	Resets  []*relation.Relation
	Created []string
}

// ControlRecord logs a rollback or restore; replay re-issues the call and the
// store rebuilds the resulting barrier entry itself.
type ControlRecord struct {
	Op      ControlOp
	Version int // RestoreVersion argument (CtlRestore only)
}

// CheckpointRecord is a full snapshot of live relations written at the head
// of a fresh segment, so recovery can start there instead of at genesis.
// Commits counts all commits sealed before the checkpoint, letting replay
// keep the version numbering of the uncrashed process.
type CheckpointRecord struct {
	Commits int
	Rels    []*relation.Relation // creation order
	// Sessions restates every live session journal. Journals are not part of
	// the store state the checkpoint seeds, so without them a recovery that
	// starts at this checkpoint would lose every session record logged before
	// it.
	Sessions []SessionRecord
}

// SessionRecord is one op of a client session journal, keyed by the client's
// stable resume token.
type SessionRecord struct {
	Token string
	Op    SessionOp
	Event events.Event // SessEvent only
}

// Record is any WAL record payload.
type Record interface{ isRecord() }

func (*ChangeRecord) isRecord()     {}
func (*ControlRecord) isRecord()    {}
func (*CheckpointRecord) isRecord() {}
func (*SessionRecord) isRecord()    {}

// --- encoding ---

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func appendVarint(b []byte, v int64) []byte { return binary.AppendVarint(b, v) }

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendValue(b []byte, v relation.Value) []byte {
	k := v.Kind()
	b = append(b, byte(k))
	switch k {
	case relation.KindNull:
	case relation.KindBool:
		t, _ := v.AsBool()
		if t {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	case relation.KindInt:
		i, _ := v.AsInt()
		b = appendVarint(b, i)
	case relation.KindFloat:
		f, _ := v.AsFloat()
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
	case relation.KindString:
		b = appendString(b, v.AsString())
	}
	return b
}

func appendTuple(b []byte, t relation.Tuple) []byte {
	b = appendUvarint(b, uint64(len(t)))
	for _, v := range t {
		b = appendValue(b, v)
	}
	return b
}

func appendTuples(b []byte, ts []relation.Tuple) []byte {
	b = appendUvarint(b, uint64(len(ts)))
	for _, t := range ts {
		b = appendTuple(b, t)
	}
	return b
}

func appendDelta(b []byte, d relation.Delta) []byte {
	b = appendTuples(b, d.Ins)
	return appendTuples(b, d.Del)
}

func appendSchema(b []byte, s relation.Schema) []byte {
	b = appendUvarint(b, uint64(len(s.Cols)))
	for _, c := range s.Cols {
		b = appendString(b, c.Qualifier)
		b = appendString(b, c.Name)
		b = append(b, byte(c.Kind))
	}
	return b
}

func appendRelation(b []byte, r *relation.Relation) []byte {
	b = appendString(b, r.Name)
	b = appendSchema(b, r.Schema)
	return appendTuples(b, r.Rows)
}

func appendSessionRecord(b []byte, r *SessionRecord) []byte {
	b = append(b, byte(r.Op))
	b = appendString(b, r.Token)
	if r.Op == SessEvent {
		b = appendEvent(b, r.Event)
	}
	return b
}

func appendEvent(b []byte, ev events.Event) []byte {
	b = appendString(b, ev.Type)
	b = appendVarint(b, ev.T)
	// Attrs in sorted-name order for deterministic bytes.
	names := make([]string, 0, len(ev.Attrs))
	for name := range ev.Attrs {
		names = append(names, name)
	}
	sortStrings(names)
	b = appendUvarint(b, uint64(len(names)))
	for _, name := range names {
		b = appendString(b, name)
		b = appendValue(b, ev.Attrs[name])
	}
	return b
}

// EncodeRecord serializes a record payload (kind byte first).
func EncodeRecord(rec Record) []byte {
	switch r := rec.(type) {
	case *ChangeRecord:
		b := []byte{recChange, byte(r.Seal)}
		b = appendUvarint(b, uint64(len(r.Deltas)))
		for _, nd := range r.Deltas {
			b = appendString(b, nd.Name)
			b = appendDelta(b, nd.Delta)
		}
		b = appendUvarint(b, uint64(len(r.Resets)))
		for _, rel := range r.Resets {
			b = appendRelation(b, rel)
		}
		b = appendUvarint(b, uint64(len(r.Created)))
		for _, name := range r.Created {
			b = appendString(b, name)
		}
		return b
	case *ControlRecord:
		b := []byte{recControl, byte(r.Op)}
		return appendVarint(b, int64(r.Version))
	case *CheckpointRecord:
		b := []byte{recCheckpoint}
		b = appendUvarint(b, uint64(r.Commits))
		b = appendUvarint(b, uint64(len(r.Rels)))
		for _, rel := range r.Rels {
			b = appendRelation(b, rel)
		}
		b = appendUvarint(b, uint64(len(r.Sessions)))
		for i := range r.Sessions {
			b = appendSessionRecord(b, &r.Sessions[i])
		}
		return b
	case *SessionRecord:
		return appendSessionRecord([]byte{recSession}, r)
	default:
		panic(fmt.Sprintf("wal: unknown record type %T", rec))
	}
}

// --- decoding ---

type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("wal: truncated or malformed %s", what)
	}
}

func (d *decoder) byteVal(what string) byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 1 {
		d.fail(what)
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) varint(what string) int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.b = d.b[n:]
	return v
}

// count reads a repeated-group length and bounds it by the remaining bytes
// (each element takes at least one byte), so corrupt lengths cannot force
// huge allocations.
func (d *decoder) count(what string) int {
	n := d.uvarint(what)
	if d.err == nil && n > uint64(len(d.b)) {
		d.fail(what + " count")
		return 0
	}
	return int(n)
}

func (d *decoder) str(what string) string {
	n := d.uvarint(what)
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail(what)
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *decoder) value() relation.Value {
	switch k := relation.Kind(d.byteVal("value kind")); k {
	case relation.KindNull:
		return relation.Null()
	case relation.KindBool:
		return relation.Bool(d.byteVal("bool value") != 0)
	case relation.KindInt:
		return relation.Int(d.varint("int value"))
	case relation.KindFloat:
		if d.err == nil && len(d.b) < 8 {
			d.fail("float value")
		}
		if d.err != nil {
			return relation.Null()
		}
		bits := binary.LittleEndian.Uint64(d.b)
		d.b = d.b[8:]
		return relation.Float(math.Float64frombits(bits))
	case relation.KindString:
		return relation.String(d.str("string value"))
	default:
		d.fail(fmt.Sprintf("value kind %d", k))
		return relation.Null()
	}
}

func (d *decoder) tuple() relation.Tuple {
	n := d.count("tuple arity")
	if d.err != nil {
		return nil
	}
	t := make(relation.Tuple, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		t = append(t, d.value())
	}
	return t
}

func (d *decoder) tuples() []relation.Tuple {
	n := d.count("tuple list")
	if d.err != nil || n == 0 {
		return nil
	}
	ts := make([]relation.Tuple, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		ts = append(ts, d.tuple())
	}
	return ts
}

func (d *decoder) delta() relation.Delta {
	ins := d.tuples()
	del := d.tuples()
	return relation.Delta{Ins: ins, Del: del}
}

func (d *decoder) schema() relation.Schema {
	n := d.count("schema")
	cols := make([]relation.Column, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		q := d.str("column qualifier")
		name := d.str("column name")
		kind := relation.Kind(d.byteVal("column kind"))
		cols = append(cols, relation.Column{Qualifier: q, Name: name, Kind: kind})
	}
	return relation.Schema{Cols: cols}
}

func (d *decoder) relation() *relation.Relation {
	name := d.str("relation name")
	schema := d.schema()
	rows := d.tuples()
	if d.err != nil {
		return nil
	}
	return &relation.Relation{Name: name, Schema: schema, Rows: rows}
}

func (d *decoder) event() events.Event {
	typ := d.str("event type")
	t := d.varint("event time")
	n := d.count("event attrs")
	var attrs map[string]relation.Value
	if n > 0 {
		attrs = make(map[string]relation.Value, n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		name := d.str("attr name")
		attrs[name] = d.value()
	}
	return events.Event{Type: typ, T: t, Attrs: attrs}
}

func (d *decoder) sessionRecord() SessionRecord {
	r := SessionRecord{Op: SessionOp(d.byteVal("session op"))}
	r.Token = d.str("session token")
	if d.err == nil && r.Op == SessEvent {
		r.Event = d.event()
	}
	return r
}

// DecodeRecord parses a record payload produced by EncodeRecord. Trailing
// garbage after a well-formed record is an error: a checksum-valid frame must
// decode exactly.
func DecodeRecord(payload []byte) (Record, error) {
	d := &decoder{b: payload}
	kind := d.byteVal("record kind")
	var rec Record
	switch kind {
	case recChange:
		r := &ChangeRecord{Seal: SealOp(d.byteVal("seal op"))}
		for i, n := 0, d.count("deltas"); i < n && d.err == nil; i++ {
			name := d.str("delta relation name")
			r.Deltas = append(r.Deltas, NamedDelta{Name: name, Delta: d.delta()})
		}
		for i, n := 0, d.count("resets"); i < n && d.err == nil; i++ {
			r.Resets = append(r.Resets, d.relation())
		}
		for i, n := 0, d.count("created"); i < n && d.err == nil; i++ {
			r.Created = append(r.Created, d.str("created name"))
		}
		rec = r
	case recControl:
		rec = &ControlRecord{Op: ControlOp(d.byteVal("control op")), Version: int(d.varint("restore version"))}
	case recCheckpoint:
		r := &CheckpointRecord{Commits: int(d.uvarint("checkpoint commits"))}
		for i, n := 0, d.count("checkpoint relations"); i < n && d.err == nil; i++ {
			r.Rels = append(r.Rels, d.relation())
		}
		for i, n := 0, d.count("checkpoint sessions"); i < n && d.err == nil; i++ {
			r.Sessions = append(r.Sessions, d.sessionRecord())
		}
		rec = r
	case recSession:
		sr := d.sessionRecord()
		rec = &sr
	default:
		return nil, fmt.Errorf("wal: unknown record kind %d", kind)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("wal: %d trailing bytes after record", len(d.b))
	}
	return rec, nil
}

func sortStrings(s []string) {
	// insertion sort: attr maps are tiny (x, y, key), avoids importing sort
	// here just for this.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
