// Package wal persists the store's delta log (and the serve tier's session
// journals) as length-prefixed, CRC32-checksummed records in numbered
// segment files. The log is logical: records are the sealed pending windows
// and control operations the store executed, and recovery replays them
// through the same store machinery, reproducing checkpoints, compaction, and
// @vnow/@tnow history deterministically. Segment rotation writes a sparse
// full-state checkpoint at the head of each new segment so recovery replays
// a bounded suffix instead of the whole history.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/wal/faultfs"
)

// segMagic is the 8-byte header of every segment file.
const segMagic = "DVMSWAL1"

// frameHeaderLen is the per-record overhead: u32 payload length + u32 CRC.
const frameHeaderLen = 8

// maxRecordLen bounds decoded frame lengths; anything larger is treated as
// corruption rather than attempted as an allocation.
const maxRecordLen = 1 << 30

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Policy selects when appended records are fsynced to stable storage.
type Policy int

// Fsync policies.
const (
	// SyncNever leaves flushing to the OS (and to segment seals at rotation
	// and Close). Fastest; a crash can lose any unflushed suffix.
	SyncNever Policy = iota
	// SyncInterval fsyncs from a background ticker — bounded data loss at
	// near-in-memory append cost. The default.
	SyncInterval
	// SyncAlways fsyncs after every append: no sealed record is ever lost.
	SyncAlways
)

// ParsePolicy maps the -fsync flag values to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "never":
		return SyncNever, nil
	case "interval", "":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or never)", s)
	}
}

// String returns the flag spelling of the policy.
func (p Policy) String() string {
	switch p {
	case SyncNever:
		return "never"
	case SyncInterval:
		return "interval"
	case SyncAlways:
		return "always"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// DurabilityStats counts the log's disk activity and what recovery found.
type DurabilityStats struct {
	SegmentsWritten     int64 // segment files created (including the first)
	BytesAppended       int64 // frame bytes appended (headers + payloads)
	Fsyncs              int64 // Sync calls issued
	RecoveredEvents     int64 // records successfully replayed by Open
	TornTailTruncations int64 // torn tails truncated during recovery
}

// Options configures Open.
type Options struct {
	// Dir is the data directory holding segment files.
	Dir string
	// FS is the filesystem; nil means the real one (faultfs.OS).
	FS faultfs.FS
	// Policy is the fsync policy (zero value: SyncNever; callers wanting the
	// serve default should pass SyncInterval explicitly).
	Policy Policy
	// Interval is the background fsync period for SyncInterval (default
	// 100ms).
	Interval time.Duration
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 8 MiB). Rotation writes a checkpoint, so recovery cost is
	// bounded by roughly one segment of records.
	SegmentBytes int64
}

func (o *Options) fill() {
	if o.FS == nil {
		o.FS = faultfs.OS{}
	}
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
}

// Report describes what recovery found and what, if anything, it dropped.
type Report struct {
	Segments          int    // segment files replayed
	Records           int    // records successfully decoded and returned
	TornTailBytes     int64  // bytes truncated off the last segment's tail
	CorruptSegment    string // mid-log segment where replay stopped ("" if none)
	DroppedBytes      int64  // bytes abandoned after the corruption point
	DroppedSegments   int    // whole segments abandoned after the corruption point
	RemovedHeadless   int    // trailing segments removed for unreadable headers
	CheckpointCommits int    // commit count carried by the starting checkpoint (0 if genesis)
}

// Clean reports whether recovery saw a fully intact log.
func (r Report) Clean() bool {
	return r.TornTailBytes == 0 && r.CorruptSegment == "" && r.RemovedHeadless == 0
}

// String summarizes the report for logs.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "wal: recovered %d records from %d segment(s)", r.Records, r.Segments)
	if r.CheckpointCommits > 0 {
		fmt.Fprintf(&b, " starting at checkpoint (commit %d)", r.CheckpointCommits)
	}
	if r.TornTailBytes > 0 {
		fmt.Fprintf(&b, "; truncated %d-byte torn tail", r.TornTailBytes)
	}
	if r.RemovedHeadless > 0 {
		fmt.Fprintf(&b, "; removed %d headless segment(s)", r.RemovedHeadless)
	}
	if r.CorruptSegment != "" {
		fmt.Fprintf(&b, "; stopped at corrupt segment %s, dropped %d bytes and %d later segment(s)",
			r.CorruptSegment, r.DroppedBytes, r.DroppedSegments)
	}
	return b.String()
}

// Recovery is what Open found on disk: the checkpoint to seed from (nil for
// a genesis replay), the records after it in append order, and the report.
type Recovery struct {
	Checkpoint *CheckpointRecord
	Records    []Record
	Report     Report
}

// Log is an append-only record log over segment files. Appends are
// mutex-serialized; errors are sticky — after a failed write the log
// disables itself and every later Append returns the same error, so the
// host degrades to in-memory operation instead of logging a torn sequence.
type Log struct {
	mu       sync.Mutex
	opts     Options
	seg      faultfs.File
	segName  string
	segSize  int64
	segIndex int
	err      error
	closed   bool
	dirty    bool // bytes appended since last sync
	stats    DurabilityStats

	// checkpoint, when set, supplies the full-state snapshot written at the
	// head of each rotated segment. Called under the log mutex from the
	// appender's goroutine; it must not call back into the log.
	checkpoint func() *CheckpointRecord

	// obsAppend/obsSync, when set via SetObs, record per-call append and
	// fsync latencies. Nil (the default, and the DisableObs arm) records
	// nothing and costs nothing — not even a clock read.
	obsAppend *obs.Histogram
	obsSync   *obs.Histogram

	stopSync chan struct{}
	syncDone chan struct{}
}

// Open opens (or initializes) the log in opts.Dir, recovering whatever a
// previous process left behind: it validates checksums segment by segment,
// truncates a torn tail at the last valid record, drops everything after a
// corrupt mid-log record, and returns the surviving records for replay. The
// returned Log appends after the recovered suffix.
func Open(opts Options) (*Log, *Recovery, error) {
	opts.fill()
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("wal: no data directory given")
	}
	if err := opts.FS.MkdirAll(opts.Dir); err != nil {
		return nil, nil, fmt.Errorf("wal: create data dir: %w", err)
	}
	l := &Log{opts: opts}
	rec, err := l.recover()
	if err != nil {
		return nil, nil, err
	}
	l.stats.RecoveredEvents = int64(len(rec.Records))
	if l.opts.Policy == SyncInterval {
		l.stopSync = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, rec, nil
}

// SetObs points the log's append and fsync latency histograms at reg
// ("dvms_wal_append_seconds", "dvms_wal_fsync_seconds"). A nil reg disables
// recording.
func (l *Log) SetObs(reg *obs.Registry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if reg == nil {
		l.obsAppend, l.obsSync = nil, nil
		return
	}
	l.obsAppend = reg.Hist("dvms_wal_append_seconds")
	l.obsSync = reg.Hist("dvms_wal_fsync_seconds")
}

// SetCheckpointFunc installs the snapshot provider used at segment rotation.
// Without one, rotation still happens but new segments carry no checkpoint,
// so recovery replays from genesis.
func (l *Log) SetCheckpointFunc(fn func() *CheckpointRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.checkpoint = fn
}

// Append serializes the record and writes one framed entry — a single write
// call, so a crash tears at most this record. Rotation (and its checkpoint)
// happens after the append once the segment exceeds SegmentBytes.
func (l *Log) Append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	if err := l.appendLocked(EncodeRecord(rec)); err != nil {
		return err
	}
	if l.opts.Policy == SyncAlways {
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	if l.segSize >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Sync flushes appended records to stable storage regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.closed || l.seg == nil {
		return nil
	}
	return l.syncLocked()
}

// Err returns the sticky error, if the log has failed.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Stats snapshots the durability counters.
func (l *Log) Stats() DurabilityStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Dir returns the data directory.
func (l *Log) Dir() string { return l.opts.Dir }

// Close seals the active segment (final sync) and stops the interval-sync
// goroutine. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return l.err
	}
	l.closed = true
	stop := l.stopSync
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.syncDone
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.seg != nil {
		if l.err == nil && l.dirty {
			if err := l.seg.Sync(); err != nil {
				l.fail(err)
			} else {
				l.stats.Fsyncs++
				l.dirty = false
			}
		}
		if err := l.seg.Close(); err != nil && l.err == nil {
			l.fail(err)
		}
		l.seg = nil
	}
	return l.err
}

// --- internals ---

func (l *Log) fail(err error) {
	if l.err == nil {
		l.err = fmt.Errorf("wal: log disabled: %w", err)
	}
}

func (l *Log) syncLoop() {
	defer close(l.syncDone)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stopSync:
			return
		case <-t.C:
			l.mu.Lock()
			if l.err == nil && !l.closed && l.seg != nil {
				l.syncLocked() // error is sticky; nothing more to do here
			}
			l.mu.Unlock()
		}
	}
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	var t0 time.Time
	if l.obsSync != nil {
		t0 = time.Now()
	}
	if err := l.seg.Sync(); err != nil {
		l.fail(err)
		return l.err
	}
	if l.obsSync != nil {
		l.obsSync.Observe(time.Since(t0))
	}
	l.stats.Fsyncs++
	l.dirty = false
	return nil
}

// appendLocked frames a payload and writes it in one call.
func (l *Log) appendLocked(payload []byte) error {
	var t0 time.Time
	if l.obsAppend != nil {
		t0 = time.Now()
	}
	frame := make([]byte, frameHeaderLen, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	frame = append(frame, payload...)
	if _, err := l.seg.Write(frame); err != nil {
		l.fail(err)
		return l.err
	}
	if l.obsAppend != nil {
		l.obsAppend.Observe(time.Since(t0))
	}
	l.segSize += int64(len(frame))
	l.stats.BytesAppended += int64(len(frame))
	l.dirty = true
	return nil
}

func segName(index int) string { return fmt.Sprintf("wal-%08d.seg", index) }

// parseSegIndex extracts the number from "wal-%08d.seg" names; -1 for
// foreign files.
func parseSegIndex(name string) int {
	var idx int
	if n, err := fmt.Sscanf(name, "wal-%d.seg", &idx); n != 1 || err != nil || !strings.HasSuffix(name, ".seg") {
		return -1
	}
	return idx
}

// newSegmentLocked creates segment file index and writes its header.
func (l *Log) newSegmentLocked(index int) error {
	name := segName(index)
	f, err := l.opts.FS.Create(filepath.Join(l.opts.Dir, name))
	if err != nil {
		l.fail(err)
		return l.err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		l.fail(err)
		return l.err
	}
	l.seg, l.segName, l.segIndex = f, name, index
	l.segSize = int64(len(segMagic))
	l.stats.BytesAppended += int64(len(segMagic))
	l.stats.SegmentsWritten++
	l.dirty = true
	return nil
}

// rotateLocked seals the active segment and starts the next one, writing a
// checkpoint at its head when a provider is installed. A provider returning
// nil defers the rotation: the host is not at a checkpointable rest state
// (e.g. mid-transaction), so the segment keeps growing and rotation retries
// at the next append.
func (l *Log) rotateLocked() error {
	var cp *CheckpointRecord
	if l.checkpoint != nil {
		if cp = l.checkpoint(); cp == nil {
			return nil
		}
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.seg.Close(); err != nil {
		l.fail(err)
		return l.err
	}
	l.seg = nil
	if err := l.newSegmentLocked(l.segIndex + 1); err != nil {
		return err
	}
	if cp != nil {
		if err := l.appendLocked(EncodeRecord(cp)); err != nil {
			return err
		}
	}
	if l.opts.Policy == SyncAlways {
		return l.syncLocked()
	}
	return nil
}

// segFrames is one scanned segment: the decoded records and how the scan
// ended.
type segFrames struct {
	name     string
	index    int
	records  []Record
	validLen int64 // bytes up to and including the last valid frame
	totalLen int64
	headerOK bool
	decodeOK bool // every byte after validLen decoded, i.e. no garbage tail
}

// scanSegment reads and validates one segment file.
func (l *Log) scanSegment(name string) (*segFrames, error) {
	sf := &segFrames{name: name, index: parseSegIndex(name)}
	f, err := l.opts.FS.Open(filepath.Join(l.opts.Dir, name))
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	sf.totalLen = int64(len(data))
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return sf, nil // headerOK stays false
	}
	sf.headerOK = true
	off := int64(len(segMagic))
	sf.validLen = off
	for {
		rest := data[off:]
		if len(rest) == 0 {
			sf.decodeOK = true
			return sf, nil
		}
		if len(rest) < frameHeaderLen {
			return sf, nil
		}
		plen := binary.LittleEndian.Uint32(rest[0:4])
		want := binary.LittleEndian.Uint32(rest[4:8])
		if plen > maxRecordLen || int64(plen) > int64(len(rest)-frameHeaderLen) {
			return sf, nil
		}
		payload := rest[frameHeaderLen : frameHeaderLen+int(plen)]
		if crc32.Checksum(payload, castagnoli) != want {
			return sf, nil
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			return sf, nil
		}
		sf.records = append(sf.records, rec)
		off += frameHeaderLen + int64(plen)
		sf.validLen = off
	}
}

// recover scans the data directory, repairs the tail, and opens the active
// segment for append.
func (l *Log) recover() (*Recovery, error) {
	names, err := l.opts.FS.List(l.opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list data dir: %w", err)
	}
	var segs []string
	for _, name := range names {
		if parseSegIndex(name) >= 0 {
			segs = append(segs, name)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return parseSegIndex(segs[i]) < parseSegIndex(segs[j]) })

	rec := &Recovery{}
	if len(segs) == 0 {
		// Fresh directory: start segment 1.
		l.mu.Lock()
		defer l.mu.Unlock()
		if err := l.newSegmentLocked(1); err != nil {
			return nil, l.err
		}
		return rec, nil
	}

	// Scan every segment once.
	scanned := make([]*segFrames, 0, len(segs))
	for _, name := range segs {
		sf, err := l.scanSegment(name)
		if err != nil {
			return nil, fmt.Errorf("wal: read segment %s: %w", name, err)
		}
		scanned = append(scanned, sf)
	}

	// Trailing segments whose header never made it to disk (crash during
	// rotation) are not data loss — remove them and append to the previous
	// segment.
	for len(scanned) > 0 && !scanned[len(scanned)-1].headerOK {
		sf := scanned[len(scanned)-1]
		if err := l.opts.FS.Remove(filepath.Join(l.opts.Dir, sf.name)); err != nil {
			return nil, fmt.Errorf("wal: remove headless segment %s: %w", sf.name, err)
		}
		rec.Report.RemovedHeadless++
		scanned = scanned[:len(scanned)-1]
	}
	if len(scanned) == 0 {
		l.mu.Lock()
		defer l.mu.Unlock()
		if err := l.newSegmentLocked(1); err != nil {
			return nil, l.err
		}
		return rec, nil
	}

	// A headerless segment in the middle is corruption: everything from it
	// on is unreadable. Cut the scan there.
	cut := len(scanned)
	for i, sf := range scanned {
		if !sf.headerOK {
			cut = i
			break
		}
	}
	if cut < len(scanned) {
		rec.Report.CorruptSegment = scanned[cut].name
		for _, sf := range scanned[cut:] {
			rec.Report.DroppedBytes += sf.totalLen
		}
		rec.Report.DroppedSegments = len(scanned) - cut - 1
		for _, sf := range scanned[cut:] {
			if err := l.opts.FS.Remove(filepath.Join(l.opts.Dir, sf.name)); err != nil {
				return nil, fmt.Errorf("wal: remove corrupt segment %s: %w", sf.name, err)
			}
		}
		scanned = scanned[:cut]
	}
	if len(scanned) == 0 {
		l.mu.Lock()
		defer l.mu.Unlock()
		if err := l.newSegmentLocked(1); err != nil {
			return nil, l.err
		}
		return rec, nil
	}

	// A decode failure before the last segment is mid-log corruption:
	// recover to the prefix, truncate the bad segment after its last valid
	// record, and drop the later segments so disk matches the recovered
	// state.
	last := len(scanned) - 1
	for i, sf := range scanned {
		if i == last || sf.decodeOK {
			continue
		}
		rec.Report.CorruptSegment = sf.name
		rec.Report.DroppedBytes = sf.totalLen - sf.validLen
		for _, later := range scanned[i+1:] {
			rec.Report.DroppedBytes += later.totalLen
			rec.Report.DroppedSegments++
			if err := l.opts.FS.Remove(filepath.Join(l.opts.Dir, later.name)); err != nil {
				return nil, fmt.Errorf("wal: remove segment %s after corruption: %w", later.name, err)
			}
		}
		if err := l.opts.FS.Truncate(filepath.Join(l.opts.Dir, sf.name), sf.validLen); err != nil {
			return nil, fmt.Errorf("wal: truncate corrupt segment %s: %w", sf.name, err)
		}
		sf.totalLen = sf.validLen
		sf.decodeOK = true
		scanned = scanned[:i+1]
		last = i
		break
	}

	// The last segment may carry a torn tail from the crash: truncate it at
	// the last valid record.
	tail := scanned[last]
	if !tail.decodeOK || tail.validLen < tail.totalLen {
		torn := tail.totalLen - tail.validLen
		if err := l.opts.FS.Truncate(filepath.Join(l.opts.Dir, tail.name), tail.validLen); err != nil {
			return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", tail.name, err)
		}
		if torn > 0 {
			rec.Report.TornTailBytes = torn
			l.stats.TornTailTruncations++
		}
		tail.totalLen = tail.validLen
	}

	// Pick the replay start: the newest segment that begins with a
	// checkpoint. Earlier segments are no longer needed for recovery (kept
	// on disk as cold history).
	start := 0
	for i := len(scanned) - 1; i > 0; i-- {
		if len(scanned[i].records) > 0 {
			if cp, ok := scanned[i].records[0].(*CheckpointRecord); ok {
				start = i
				rec.Checkpoint = cp
				rec.Report.CheckpointCommits = cp.Commits
				break
			}
		}
	}
	for i := start; i < len(scanned); i++ {
		recs := scanned[i].records
		if i == start && rec.Checkpoint != nil {
			recs = recs[1:]
		}
		rec.Records = append(rec.Records, recs...)
		rec.Report.Segments++
	}
	rec.Report.Records = len(rec.Records)

	// Resume appending to the last segment.
	l.mu.Lock()
	defer l.mu.Unlock()
	f, err := l.opts.FS.OpenAppend(filepath.Join(l.opts.Dir, tail.name))
	if err != nil {
		return nil, fmt.Errorf("wal: reopen segment %s: %w", tail.name, err)
	}
	l.seg, l.segName, l.segIndex = f, tail.name, tail.index
	l.segSize = tail.totalLen
	return rec, nil
}
