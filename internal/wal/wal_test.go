package wal

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/events"
	"repro/internal/relation"
	"repro/internal/wal/faultfs"
)

func testTuple(vals ...relation.Value) relation.Tuple { return relation.Tuple(vals) }

func sampleRecords() []Record {
	rel := relation.New("Brush", relation.NewSchema(
		relation.Col("x", relation.KindInt),
		relation.Col("label", relation.KindString),
	))
	rel.MustAppend(testTuple(relation.Int(3), relation.String("a")))
	rel.MustAppend(testTuple(relation.Float(2.5), relation.Null()))
	return []Record{
		&ChangeRecord{
			Seal: SealCommit,
			Deltas: []NamedDelta{
				{Name: "Sales", Delta: relation.Delta{
					Ins: []relation.Tuple{testTuple(relation.Int(1), relation.String("x"))},
					Del: []relation.Tuple{testTuple(relation.Bool(true), relation.Float(-0.5))},
				}},
			},
			Resets:  []*relation.Relation{rel},
			Created: []string{"Sales", "Brush"},
		},
		&ChangeRecord{Seal: SealEvent},
		&ControlRecord{Op: CtlRollback},
		&ControlRecord{Op: CtlRestore, Version: 7},
		&CheckpointRecord{Commits: 42, Rels: []*relation.Relation{rel}},
		&SessionRecord{Token: "tok-123", Op: SessAttach},
		&SessionRecord{Token: "tok-123", Op: SessEvent, Event: events.Mouse(events.MouseDown, 10, 4, 5)},
		&SessionRecord{Token: "tok-123", Op: SessUndo},
		&SessionRecord{Token: "tok-123", Op: SessForget},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for i, rec := range sampleRecords() {
		payload := EncodeRecord(rec)
		got, err := DecodeRecord(payload)
		if err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(rec, got) {
			t.Fatalf("record %d: round trip mismatch:\n in: %#v\nout: %#v", i, rec, got)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	good := EncodeRecord(&ControlRecord{Op: CtlRestore, Version: 3})
	cases := [][]byte{
		nil,
		{99},                      // unknown kind
		good[:len(good)-1],        // truncated
		append(good, 0xaa),        // trailing bytes
		{recChange},               // missing seal op
		{recChange, 0, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, // absurd count
	}
	for i, payload := range cases {
		if _, err := DecodeRecord(payload); err == nil {
			t.Errorf("case %d: decode accepted malformed payload", i)
		}
	}
}

// openMem opens a log over the given Mem filesystem with test-friendly
// defaults.
func openMem(t *testing.T, fs *faultfs.Mem, opt func(*Options)) (*Log, *Recovery) {
	t.Helper()
	opts := Options{Dir: "data", FS: fs, Policy: SyncNever, SegmentBytes: 1 << 30}
	if opt != nil {
		opt(&opts)
	}
	l, rec, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func TestAppendRecover(t *testing.T) {
	fs := faultfs.NewMem()
	l, rec := openMem(t, fs, nil)
	if len(rec.Records) != 0 || !rec.Report.Clean() {
		t.Fatalf("fresh dir: unexpected recovery %+v", rec.Report)
	}
	want := sampleRecords()
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, rec2 := openMem(t, fs, nil)
	if !rec2.Report.Clean() {
		t.Fatalf("clean log reported dirty: %+v", rec2.Report)
	}
	if !reflect.DeepEqual(want, rec2.Records) {
		t.Fatalf("recovered records mismatch:\nwant %d records\n got %d records", len(want), len(rec2.Records))
	}
}

func TestTornTailTruncation(t *testing.T) {
	second := &ControlRecord{Op: CtlRestore, Version: 9}
	frameLen := frameHeaderLen + len(EncodeRecord(second))
	for short := 0; short < frameLen; short++ {
		fs := faultfs.NewMem()
		l, _ := openMem(t, fs, nil)
		if err := l.Append(&ControlRecord{Op: CtlRollback}); err != nil {
			t.Fatal(err)
		}
		// Crash partway through the second record's single write.
		fs.SetPlan(faultfs.Plan{FailWrite: 1, ShortBytes: short})
		err := l.Append(second)
		if !errors.Is(err, faultfs.ErrCrashed) {
			t.Fatalf("short=%d: expected crash, got %v", short, err)
		}

		fs.ClearFaults()
		l2, rec := openMem(t, fs, nil)
		if len(rec.Records) != 1 {
			t.Fatalf("short=%d: recovered %d records, want 1", short, len(rec.Records))
		}
		if short > 0 && rec.Report.TornTailBytes != int64(short) {
			t.Fatalf("short=%d: torn tail bytes %d", short, rec.Report.TornTailBytes)
		}
		if short > 0 && l2.Stats().TornTailTruncations != 1 {
			t.Fatalf("short=%d: stats %+v", short, l2.Stats())
		}
		// The log must be appendable after repair.
		if err := l2.Append(&ControlRecord{Op: CtlRestore, Version: 5}); err != nil {
			t.Fatalf("short=%d: append after repair: %v", short, err)
		}
		l2.Close()
		_, rec3 := openMem(t, fs, nil)
		if len(rec3.Records) != 2 {
			t.Fatalf("short=%d: after repair+append recovered %d records, want 2", short, len(rec3.Records))
		}
	}
	// A "short" write of the whole frame is a completed write: the record
	// must survive.
	fs := faultfs.NewMem()
	l, _ := openMem(t, fs, nil)
	if err := l.Append(&ControlRecord{Op: CtlRollback}); err != nil {
		t.Fatal(err)
	}
	fs.SetPlan(faultfs.Plan{FailWrite: 1, ShortBytes: frameLen})
	if err := l.Append(second); !errors.Is(err, faultfs.ErrCrashed) {
		t.Fatalf("expected crash, got %v", err)
	}
	fs.ClearFaults()
	_, rec := openMem(t, fs, nil)
	if len(rec.Records) != 2 || rec.Report.TornTailBytes != 0 {
		t.Fatalf("full-frame short write: recovered %d records, report %+v", len(rec.Records), rec.Report)
	}
}

func TestStickyErrorDisablesLog(t *testing.T) {
	fs := faultfs.NewMem()
	l, _ := openMem(t, fs, nil)
	fs.SetPlan(faultfs.Plan{FailWrite: 1})
	if err := l.Append(&ControlRecord{Op: CtlRollback}); err == nil {
		t.Fatal("expected append failure")
	}
	fs.ClearFaults()
	if err := l.Append(&ControlRecord{Op: CtlRollback}); err == nil {
		t.Fatal("expected sticky error after failure")
	}
	if l.Err() == nil {
		t.Fatal("Err() should report the sticky failure")
	}
}

func TestRotationWritesCheckpoint(t *testing.T) {
	fs := faultfs.NewMem()
	l, _ := openMem(t, fs, func(o *Options) { o.SegmentBytes = 64 })
	commits := 0
	l.SetCheckpointFunc(func() *CheckpointRecord {
		return &CheckpointRecord{Commits: commits}
	})
	for i := 0; i < 20; i++ {
		commits++
		if err := l.Append(&ChangeRecord{Seal: SealCommit, Created: []string{fmt.Sprintf("rel%02d", i)}}); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.SegmentsWritten < 3 {
		t.Fatalf("expected rotation, got %d segments", st.SegmentsWritten)
	}
	l.Close()

	_, rec := openMem(t, fs, func(o *Options) { o.SegmentBytes = 64 })
	if rec.Checkpoint == nil {
		t.Fatal("recovery found no checkpoint despite rotation")
	}
	// Replay must be bounded: checkpoint commits + replayed commit records
	// must cover all 20 appends exactly.
	n := rec.Checkpoint.Commits
	for _, r := range rec.Records {
		if _, ok := r.(*ChangeRecord); ok {
			n++
		}
	}
	if n != 20 {
		t.Fatalf("checkpoint(%d) + %d records != 20 appends", rec.Checkpoint.Commits, len(rec.Records))
	}
	if len(rec.Records) >= 20 {
		t.Fatalf("recovery replayed %d records; checkpoint did not bound it", len(rec.Records))
	}
}

func TestCorruptMiddleSegmentDegradesGracefully(t *testing.T) {
	fs := faultfs.NewMem()
	l, _ := openMem(t, fs, func(o *Options) { o.SegmentBytes = 64 })
	for i := 0; i < 12; i++ {
		if err := l.Append(&ChangeRecord{Seal: SealCommit, Created: []string{fmt.Sprintf("rel%02d", i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if l.Stats().SegmentsWritten < 3 {
		t.Fatalf("need >=3 segments, got %d", l.Stats().SegmentsWritten)
	}
	l.Close()

	// Flip a byte in the middle of segment 2 (not the first, not the last).
	if err := fs.Corrupt("data/"+segName(2), 20); err != nil {
		t.Fatal(err)
	}
	l2, rec := openMem(t, fs, func(o *Options) { o.SegmentBytes = 1 << 30 })
	if rec.Report.CorruptSegment != segName(2) {
		t.Fatalf("report did not name the corrupt segment: %+v", rec.Report)
	}
	if rec.Report.DroppedBytes == 0 {
		t.Fatalf("report claims nothing dropped: %+v", rec.Report)
	}
	// Everything recovered must be the uncorrupted prefix, in order.
	for i, r := range rec.Records {
		cr, ok := r.(*ChangeRecord)
		if !ok || len(cr.Created) != 1 || cr.Created[0] != fmt.Sprintf("rel%02d", i) {
			t.Fatalf("record %d is not the expected prefix record: %#v", i, r)
		}
	}
	if len(rec.Records) >= 12 || len(rec.Records) == 0 {
		t.Fatalf("recovered %d records; want a proper nonempty prefix of 12", len(rec.Records))
	}
	// And the repaired log keeps working.
	if err := l2.Append(&ControlRecord{Op: CtlRollback}); err != nil {
		t.Fatalf("append after corruption repair: %v", err)
	}
	l2.Close()
	_, rec3 := openMem(t, fs, nil)
	if rec3.Report.CorruptSegment != "" {
		t.Fatalf("second recovery still sees corruption: %+v", rec3.Report)
	}
}

func TestCrashAtEveryWriteRecoversPrefix(t *testing.T) {
	// Baseline run to learn the total number of writes.
	mkRecords := func() []Record {
		var recs []Record
		for i := 0; i < 8; i++ {
			recs = append(recs, &ChangeRecord{Seal: SealCommit, Created: []string{fmt.Sprintf("rel%02d", i)}})
		}
		return recs
	}
	base := faultfs.NewMem()
	l, _ := openMem(t, base, func(o *Options) { o.SegmentBytes = 100 })
	l.SetCheckpointFunc(func() *CheckpointRecord { return &CheckpointRecord{Commits: 1} })
	for _, r := range mkRecords() {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	total := base.Writes()
	if total < 10 {
		t.Fatalf("baseline too small: %d writes", total)
	}

	for k := 1; k <= total; k++ {
		for _, short := range []int{0, 3} {
			fs := faultfs.NewMem()
			fs.SetPlan(faultfs.Plan{FailWrite: k, ShortBytes: short})
			func() {
				defer func() { recover() }() // Open/Append may fail mid-crash; that's the point
				l, _, err := Open(Options{Dir: "data", FS: fs, Policy: SyncNever, SegmentBytes: 100})
				if err != nil {
					return
				}
				l.SetCheckpointFunc(func() *CheckpointRecord { return &CheckpointRecord{Commits: 1} })
				for _, r := range mkRecords() {
					if l.Append(r) != nil {
						return
					}
				}
				l.Close()
			}()
			fs.ClearFaults()
			_, rec, err := Open(Options{Dir: "data", FS: fs, Policy: SyncNever, SegmentBytes: 100})
			if err != nil {
				t.Fatalf("k=%d short=%d: recovery failed: %v", k, short, err)
			}
			// Whatever survived must be a clean contiguous run of the
			// intended sequence: a genesis prefix, or — when a rotation
			// checkpoint restates earlier state — a suffix starting there.
			i := -1
			for _, r := range rec.Records {
				cr, ok := r.(*ChangeRecord)
				if !ok {
					continue
				}
				if i == -1 {
					if rec.Checkpoint == nil && cr.Created[0] != "rel00" {
						t.Fatalf("k=%d short=%d: genesis replay starts at %v", k, short, cr.Created)
					}
					fmt.Sscanf(cr.Created[0], "rel%d", &i)
				} else {
					i++
				}
				wantName := fmt.Sprintf("rel%02d", i)
				if len(cr.Created) != 1 || cr.Created[0] != wantName {
					t.Fatalf("k=%d short=%d: record out of order: got %v want %s", k, short, cr.Created, wantName)
				}
			}
			if rec.Report.CorruptSegment != "" {
				t.Fatalf("k=%d short=%d: crash misread as corruption: %+v", k, short, rec.Report)
			}
		}
	}
}

func TestDropUnsyncedRespectsPolicies(t *testing.T) {
	// never: a power loss may drop everything unflushed.
	fs := faultfs.NewMem()
	l, _ := openMem(t, fs, func(o *Options) { o.Policy = SyncNever })
	for i := 0; i < 5; i++ {
		if err := l.Append(&ControlRecord{Op: CtlRollback}); err != nil {
			t.Fatal(err)
		}
	}
	fs.DropUnsynced()
	_, rec := openMem(t, fs, nil)
	if len(rec.Records) != 0 {
		t.Fatalf("never-policy power loss kept %d records", len(rec.Records))
	}

	// always: every appended record survives power loss.
	fs2 := faultfs.NewMem()
	l2, _ := openMem(t, fs2, func(o *Options) { o.Policy = SyncAlways })
	for i := 0; i < 5; i++ {
		if err := l2.Append(&ControlRecord{Op: CtlRollback}); err != nil {
			t.Fatal(err)
		}
	}
	if l2.Stats().Fsyncs < 5 {
		t.Fatalf("always policy issued only %d fsyncs", l2.Stats().Fsyncs)
	}
	fs2.DropUnsynced()
	_, rec2 := openMem(t, fs2, nil)
	if len(rec2.Records) != 5 {
		t.Fatalf("always-policy power loss kept %d records, want 5", len(rec2.Records))
	}
}

func TestIntervalPolicyEventuallySyncs(t *testing.T) {
	fs := faultfs.NewMem()
	l, _ := openMem(t, fs, func(o *Options) {
		o.Policy = SyncInterval
		o.Interval = time.Millisecond
	})
	if err := l.Append(&ControlRecord{Op: CtlRollback}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval policy never synced")
		}
		time.Sleep(time.Millisecond)
	}
	l.Close()
	fs.DropUnsynced()
	_, rec := openMem(t, fs, nil)
	if len(rec.Records) != 1 {
		t.Fatalf("interval sync lost the record: %d recovered", len(rec.Records))
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
		ok   bool
	}{
		{"always", SyncAlways, true},
		{"Interval", SyncInterval, true},
		{"never", SyncNever, true},
		{"", SyncInterval, true},
		{"sometimes", 0, false},
	} {
		got, err := ParsePolicy(tc.in)
		if (err == nil) != tc.ok || (err == nil && got != tc.want) {
			t.Errorf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
}

// BenchmarkAppend measures the per-record append cost (encode + frame +
// write) on the in-memory filesystem, per fsync policy — the pure logging
// overhead a MarkEvent pays, without disk latency for never/interval.
func BenchmarkAppend(b *testing.B) {
	recs := sampleRecords()
	for _, tc := range []struct {
		name   string
		policy Policy
	}{
		{"never", SyncNever},
		{"interval", SyncInterval},
		{"always", SyncAlways},
	} {
		b.Run(tc.name, func(b *testing.B) {
			fs := faultfs.NewMem()
			l, _, err := Open(Options{Dir: "data", FS: fs, Policy: tc.policy})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.Append(recs[i%len(recs)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
