package exec

// Stateful delta pipeline. For delta-safe plans (plan.DeltaSafety), Prepare
// builds — alongside the stateless bound operators — a parallel tree of
// long-lived stateful operators that keep whatever each operator needs to
// turn an input delta into its exact output delta: join operators keep both
// inputs indexed by key, aggregation keeps per-group accumulator state
// (with removal support), distinct and set operations keep tuple counts.
//
// The lifecycle is: init (a full run that also builds state — "priming"),
// then any number of delta applications, each costing work proportional to
// the change rather than the data. Any inconsistency (a delete for a row
// the state never saw) resets the pipeline and surfaces an error; callers
// fall back to full recomputation, which re-primes.

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/relation"
)

// dnode is one stateful operator of the delta pipeline.
type dnode interface {
	// init fully evaluates the subtree against the live catalog,
	// (re)building operator state, and returns the full output rows.
	init(ex *Executor) ([]relation.Tuple, error)
	// delta propagates the input deltas (keyed by lowercase relation name)
	// through the subtree, updating state, and returns the output delta.
	// Only valid after init.
	delta(ex *Executor, in map[string]relation.Delta) (relation.Delta, error)
	// reset drops all retained state.
	reset()
}

// deltaBuilder mirrors the bound-operator tree with stateful delta
// operators, collecting the order-statistic (dSort) nodes it creates so the
// Prepared can surface their stats and ordered output. With a non-nil group
// (multi-client serving) it additionally marks join sides whose subtree
// reads only shared relations for state sharing, collecting those joins so
// the Prepared can release its references on close.
type deltaBuilder struct {
	sorts       []*dSort
	group       *ShareGroup
	shared      []*dJoin
	cubes       []*dCube   // all cube operators, for stats/bytes
	sharedCubes []*dCube   // the subset attached to the group registry
	noCube      bool       // skip the index-tile rewrite (benchmark baseline)
	noFusion    bool       // keep aggregate deltas row-at-a-time (ablation arm)
	es          *ExecStats // fused/columnar counters shared by the whole tree
}

// build returns false for shapes without a delta rule; callers gate on
// plan.DeltaSafety first, so a false here is belt and braces.
func (db *deltaBuilder) build(b bnode) (dnode, bool) {
	switch t := b.(type) {
	case *bScan:
		return &dScan{s: t.s}, true
	case *bFilter:
		if t.pred.raw != nil && t.pred.fn == nil {
			return nil, false // needs per-run resolution
		}
		child, ok := db.build(t.child)
		if !ok {
			return nil, false
		}
		return &dFilter{b: t, child: child}, true
	case *bProject:
		if t.static == nil && len(t.items) > 0 {
			return nil, false
		}
		child, ok := db.build(t.child)
		if !ok {
			return nil, false
		}
		return &dProject{b: t, child: child}, true
	case *bJoin:
		if t.residual.raw != nil && t.residual.fn == nil {
			return nil, false
		}
		l, ok := db.build(t.l)
		if !ok {
			return nil, false
		}
		r, ok := db.build(t.r)
		if !ok {
			return nil, false
		}
		dj := &dJoin{b: t, l: l, r: r}
		db.markShared(dj, t)
		return dj, true
	case *bAggregate:
		if t.static == nil {
			return nil, false
		}
		// Cube-eligible aggregates over pure equi-joins compile to index
		// tiles (O(bins) per selection change) instead of the join+aggregate
		// pair; every other shape keeps the ordinary operators.
		if dc, ok := db.buildCube(t); ok {
			return dc, true
		}
		child, ok := db.build(t.child)
		if !ok {
			return nil, false
		}
		da := &dAggregate{b: t, child: child, noFusion: db.noFusion, es: db.es}
		if s, ok := child.(streamer); ok && fusibleChain(child) {
			da.stream = s
		}
		return da, true
	case *bDistinct:
		child, ok := db.build(t.child)
		if !ok {
			return nil, false
		}
		return &dDistinct{child: child}, true
	case *bSetOp:
		l, ok := db.build(t.l)
		if !ok {
			return nil, false
		}
		r, ok := db.build(t.r)
		if !ok {
			return nil, false
		}
		return &dSetOp{b: t, l: l, r: r}, true
	case *bSort:
		return db.buildSort(t, -1)
	case *bLimit:
		// LIMIT over an ORDER BY maintains the k-prefix of that order. A bare
		// LIMIT gets the same treatment over the deterministic full-tuple
		// order: a zero-key sort degrades the order-statistic comparisons to
		// relation.CompareTuples, which is exactly the order bLimit.run pins
		// the full path to.
		s, ok := t.child.(*bSort)
		if !ok {
			s = &bSort{child: t.child, s: &plan.Sort{}, static: []expr.Compiled{}}
		}
		return db.buildSort(s, t.n)
	default:
		return nil, false
	}
}

// markShared checks the join's sides for state-sharing eligibility: a side
// whose subtree reads only shared relations computes a state identical
// across every session's pipeline, so it attaches to the group registry by
// structural fingerprint instead of building its own copy. At most one side
// of a join is ever shared — the writer advances shared states before the
// sessions process a base-delta batch, and the join delta rule needs the
// *other* side's pre-batch state (ΔL ⋈ R_old), which only holds when that
// other side is session-private. The left (build) side is preferred.
func (db *deltaBuilder) markShared(dj *dJoin, t *bJoin) {
	if db.group == nil {
		return
	}
	if fp, reads, ok := sideEligible(db.group, t.l); ok {
		db.clearSharedMarks(dj.l)
		dj.group, dj.lfp, dj.lreads = db.group, fp+sideKey(t.lkRaw, len(t.lks) > 0), reads
		db.shared = append(db.shared, dj)
		return
	}
	if fp, reads, ok := sideEligible(db.group, t.r); ok {
		db.clearSharedMarks(dj.r)
		dj.group, dj.rfp, dj.rreads = db.group, fp+sideKey(t.rkRaw, len(t.rks) > 0), reads
		db.shared = append(db.shared, dj)
	}
}

// clearSharedMarks unmarks shared attachments inside a subtree that is
// about to be shared wholesale: the outer registry entry subsumes the
// inner ones, and separate entries would advance in arbitrary map order —
// an outer side advanced before its inner dependency reads a stale cached
// delta and silently drops the batch. The canonical subtree's inner joins
// keep ordinary private state, driven only through the outer side's feeder.
func (db *deltaBuilder) clearSharedMarks(d dnode) {
	switch t := d.(type) {
	case *dFilter:
		db.clearSharedMarks(t.child)
	case *dProject:
		db.clearSharedMarks(t.child)
	case *dJoin:
		if t.lfp != "" || t.rfp != "" {
			t.group, t.lfp, t.rfp, t.lreads, t.rreads = nil, "", "", nil, nil
			for i, dj := range db.shared {
				if dj == t {
					db.shared = append(db.shared[:i], db.shared[i+1:]...)
					break
				}
			}
		}
		db.clearSharedMarks(t.l)
		db.clearSharedMarks(t.r)
	case *dAggregate:
		db.clearSharedMarks(t.child)
	case *dCube:
		if t.fp != "" {
			t.group, t.fp, t.reads = nil, "", nil
			for i, dc := range db.sharedCubes {
				if dc == t {
					db.sharedCubes = append(db.sharedCubes[:i], db.sharedCubes[i+1:]...)
					break
				}
			}
		}
		db.clearSharedMarks(t.fact)
		db.clearSharedMarks(t.sel)
	case *dDistinct:
		db.clearSharedMarks(t.child)
	case *dSetOp:
		db.clearSharedMarks(t.l)
		db.clearSharedMarks(t.r)
	case *dSort:
		db.clearSharedMarks(t.child)
	}
}

// sideEligible reports whether the subtree reads only shared relations (and
// at least one), returning its fingerprint and read set.
func sideEligible(g *ShareGroup, b bnode) (string, []string, bool) {
	fp, reads, ok := bnodeInfo(b)
	if !ok || len(reads) == 0 {
		return "", nil, false
	}
	for _, r := range reads {
		if !g.IsShared(r) {
			return "", nil, false
		}
	}
	return fp, reads, true
}

// sideKey extends a subtree fingerprint with the owning join's key shape:
// the same subtree indexed by different keys is a different state.
func sideKey(kraw []expr.Expr, keyed bool) string {
	if !keyed {
		return "|cross"
	}
	return "|k:" + exprList(kraw)
}

func (db *deltaBuilder) buildSort(s *bSort, limit int) (dnode, bool) {
	if s.static == nil {
		return nil, false // sort keys need per-run resolution
	}
	child, ok := db.build(s.child)
	if !ok {
		return nil, false
	}
	desc := make([]bool, len(s.s.Keys))
	for i, k := range s.s.Keys {
		desc[i] = k.Desc
	}
	ds := &dSort{b: s, limit: limit, desc: desc, child: child}
	db.sorts = append(db.sorts, ds)
	return ds, true
}

// --- executor entry points ---

// RunStateful executes a delta-safe prepared plan fully, rebuilding the
// operator state the delta path consumes ("priming"), and returns the full
// result. It errors for plans without a delta pipeline; use RunPrepared for
// those.
func (ex *Executor) RunStateful(p *Prepared) (*Result, error) {
	if p.droot == nil {
		return nil, fmt.Errorf("exec: plan is not incrementalizable (%s)", p.deltaReason)
	}
	if len(p.sharedJoins) > 0 || len(p.sharedCubes) > 0 {
		// Priming may build and publish shared states; exclude both the
		// writer and other sessions' probes for the duration.
		p.group.mu.Lock()
		defer p.group.mu.Unlock()
	}
	p.primed = false
	p.droot.reset()
	rows, err := p.droot.init(ex)
	if err != nil {
		p.droot.reset()
		return nil, err
	}
	out := relation.New("", p.src.Schema())
	out.Rows = rows
	p.primed = true
	return &Result{Rel: out}, nil
}

// ApplyDelta propagates per-relation input deltas (keyed by relation name,
// case-insensitive) through a primed pipeline and returns the output delta.
// On error the pipeline state is reset and must be re-primed with
// RunStateful before the next ApplyDelta.
func (ex *Executor) ApplyDelta(p *Prepared, in map[string]relation.Delta) (relation.Delta, error) {
	if p.droot == nil {
		return relation.Delta{}, fmt.Errorf("exec: plan is not incrementalizable (%s)", p.deltaReason)
	}
	if !p.primed {
		return relation.Delta{}, fmt.Errorf("exec: delta pipeline is not primed; call RunStateful first")
	}
	if len(p.sharedJoins) > 0 || len(p.sharedCubes) > 0 {
		// Sessions only probe shared states (their private deltas cannot
		// touch shared inputs, and base-delta fan-outs consume the writer's
		// cached subtree deltas), so concurrent readers are safe.
		p.group.mu.RLock()
		defer p.group.mu.RUnlock()
	}
	out, err := p.droot.delta(ex, in)
	if err != nil {
		p.ResetState()
		return relation.Delta{}, err
	}
	return out, nil
}

// --- scan ---

type dScan struct {
	s *plan.Scan
}

func (d *dScan) init(ex *Executor) ([]relation.Tuple, error) {
	if d.s.Name == "" { // constant SELECT: one empty row
		return []relation.Tuple{{}}, nil
	}
	src, err := ex.Cat.Resolve(d.s.Name, d.s.Version)
	if err != nil {
		return nil, err
	}
	return src.Rows, nil
}

func (d *dScan) delta(ex *Executor, in map[string]relation.Delta) (relation.Delta, error) {
	if d.s.Name == "" {
		return relation.Delta{}, nil
	}
	return in[strings.ToLower(d.s.Name)], nil
}

func (d *dScan) reset() {}

// --- filter ---

type dFilter struct {
	b     *bFilter
	child dnode
}

func (d *dFilter) filter(rows []relation.Tuple) ([]relation.Tuple, error) {
	pred := d.b.pred.fn
	if pred == nil {
		return rows, nil
	}
	if out, ok := d.b.kern.filterBatch(rows, nil); ok {
		return out, nil
	}
	env := &expr.Env{}
	var out []relation.Tuple
	for _, row := range rows {
		env.Row = row
		v, err := pred(env)
		if err != nil {
			return nil, fmt.Errorf("filter %s: %w", d.b.pred.String(), err)
		}
		if !v.IsNull() && v.Truthy() {
			out = append(out, row)
		}
	}
	return out, nil
}

func (d *dFilter) init(ex *Executor) ([]relation.Tuple, error) {
	rows, err := d.child.init(ex)
	if err != nil {
		return nil, err
	}
	return d.filter(rows)
}

func (d *dFilter) delta(ex *Executor, in map[string]relation.Delta) (relation.Delta, error) {
	din, err := d.child.delta(ex, in)
	if err != nil || din.Empty() {
		return relation.Delta{}, err
	}
	var out relation.Delta
	// The predicate is deterministic over the row alone, so a deleted row
	// passes now iff it passed when inserted.
	if out.Ins, err = d.filter(din.Ins); err != nil {
		return out, err
	}
	if out.Del, err = d.filter(din.Del); err != nil {
		return out, err
	}
	return out, nil
}

func (d *dFilter) reset() { d.child.reset() }

// --- project ---

type dProject struct {
	b     *bProject
	child dnode
}

func (d *dProject) project(rows []relation.Tuple) ([]relation.Tuple, error) {
	fns := d.b.static
	env := &expr.Env{}
	out := make([]relation.Tuple, 0, len(rows))
	var arena valueArena
	arena.expect(len(rows) * len(fns))
	cols := d.b.cols
	for _, row := range rows {
		env.Row = row
		t := arena.alloc(len(fns))
		for c, fn := range fns {
			if idx := cols[c]; idx >= 0 {
				t[c] = row[idx]
				continue
			}
			v, err := fn(env)
			if err != nil {
				return nil, fmt.Errorf("project %s: %w", d.b.items[c].String(), err)
			}
			t[c] = v
		}
		out = append(out, t)
	}
	return out, nil
}

func (d *dProject) init(ex *Executor) ([]relation.Tuple, error) {
	rows, err := d.child.init(ex)
	if err != nil {
		return nil, err
	}
	return d.project(rows)
}

func (d *dProject) delta(ex *Executor, in map[string]relation.Delta) (relation.Delta, error) {
	din, err := d.child.delta(ex, in)
	if err != nil || din.Empty() {
		return relation.Delta{}, err
	}
	var out relation.Delta
	// Deterministic expressions: projecting a deleted input row reproduces
	// exactly the output row emitted when it was inserted.
	if out.Ins, err = d.project(din.Ins); err != nil {
		return out, err
	}
	if out.Del, err = d.project(din.Del); err != nil {
		return out, err
	}
	return out, nil
}

func (d *dProject) reset() { d.child.reset() }

// --- join ---

// joinSideState indexes one join input's current rows: by equi-key for hash
// joins, or as a plain list for cross/non-equi joins.
type joinSideState struct {
	keyed   bool
	buckets map[uint64][]int32
	keys    []relation.Tuple
	rows    [][]relation.Tuple
	all     []relation.Tuple
}

func newJoinSideState(keyed bool, capacity int) *joinSideState {
	s := &joinSideState{keyed: keyed}
	if keyed {
		s.buckets = make(map[uint64][]int32, capacity)
	} else {
		s.all = make([]relation.Tuple, 0, capacity)
	}
	return s
}

func (s *joinSideState) keyID(key relation.Tuple, insert bool) int32 {
	h := key.Hash()
	for _, id := range s.buckets[h] {
		if s.keys[id].Equal(key) {
			return id
		}
	}
	if !insert {
		return -1
	}
	id := int32(len(s.keys))
	s.keys = append(s.keys, key.Clone()) // key is a reused scratch tuple
	s.rows = append(s.rows, nil)
	s.buckets[h] = append(s.buckets[h], id)
	return id
}

func (s *joinSideState) add(key, row relation.Tuple) {
	if !s.keyed {
		s.all = append(s.all, row)
		return
	}
	id := s.keyID(key, true)
	s.rows[id] = append(s.rows[id], row)
}

func removeRow(rows []relation.Tuple, row relation.Tuple) ([]relation.Tuple, bool) {
	for i, r := range rows {
		if r.Equal(row) {
			rows[i] = rows[len(rows)-1]
			return rows[:len(rows)-1], true
		}
	}
	return rows, false
}

func (s *joinSideState) remove(key, row relation.Tuple) error {
	if !s.keyed {
		var ok bool
		if s.all, ok = removeRow(s.all, row); !ok {
			return fmt.Errorf("join state: deleted row not present")
		}
		return nil
	}
	id := s.keyID(key, false)
	if id < 0 {
		return fmt.Errorf("join state: deleted row's key not present")
	}
	var ok bool
	if s.rows[id], ok = removeRow(s.rows[id], row); !ok {
		return fmt.Errorf("join state: deleted row not present under its key")
	}
	return nil
}

func (s *joinSideState) matches(key relation.Tuple) []relation.Tuple {
	if !s.keyed {
		return s.all
	}
	id := s.keyID(key, false)
	if id < 0 {
		return nil
	}
	return s.rows[id]
}

type dJoin struct {
	b    *bJoin
	l, r dnode
	ls   *joinSideState
	rs   *joinSideState

	// Shared build sides (multi-client serving). When lfp/rfp is non-empty
	// the corresponding state lives in the group registry: init attaches to
	// (or builds) the shared entry instead of indexing locally, delta reads
	// the writer's cached subtree delta and never mutates the shared state,
	// and reset leaves both the attachment and the donated canonical
	// subtree untouched. At most one side is shared (see markShared).
	group          *ShareGroup
	lfp, rfp       string
	lreads, rreads []string
	lSide, rSide   *sharedSide
}

// leftState resolves the current left-side state: the (possibly rebuilt)
// shared entry, or the private index.
func (d *dJoin) leftState() *joinSideState {
	if d.lSide != nil {
		return d.lSide.state
	}
	return d.ls
}

func (d *dJoin) rightState() *joinSideState {
	if d.rSide != nil {
		return d.rSide.state
	}
	return d.rs
}

// attachShared binds one side to its group entry, building and publishing
// the state on first use (donating this pipeline's subtree as the canonical
// feeder the writer will drive). Caller holds the group write lock (via
// RunStateful). Attachments are refcounted once per pipeline and survive
// resets; ReleaseShared drops them.
func (d *dJoin) attachShared(ex *Executor, left bool) error {
	if (left && d.lSide != nil) || (!left && d.rSide != nil) {
		return nil // already attached; the shared state is current
	}
	fp, reads, sub, ks, kraw := d.rfp, d.rreads, d.r, d.b.rks, d.b.rkRaw
	if left {
		fp, reads, sub, ks, kraw = d.lfp, d.lreads, d.l, d.b.lks, d.b.lkRaw
	}
	sd := d.group.lookup(fp, reads)
	if sd.built {
		d.group.stats.Reuses++
	} else {
		sd.sub, sd.keys, sd.kraw, sd.keyed = sub, ks, kraw, len(ks) > 0
		if err := sd.build(ex); err != nil {
			return err
		}
		d.group.stats.Builds++
	}
	sd.refs++
	if left {
		d.lSide = sd
	} else {
		d.rSide = sd
	}
	return nil
}

// releaseShared drops this join's shared-state references (session detach).
func (d *dJoin) releaseShared(g *ShareGroup) {
	if d.lSide != nil {
		g.release(d.lSide)
		d.lSide = nil
	}
	if d.rSide != nil {
		g.release(d.rSide)
		d.rSide = nil
	}
}

// residualOK applies the static residual predicate to the concatenation.
func (d *dJoin) residualOK(scratch relation.Tuple, env *expr.Env) (bool, error) {
	res := d.b.residual.fn
	if res == nil {
		return true, nil
	}
	env.Row = scratch
	v, err := res(env)
	if err != nil {
		return false, fmt.Errorf("join predicate %s: %w", d.b.residual.String(), err)
	}
	return !v.IsNull() && v.Truthy(), nil
}

func (d *dJoin) init(ex *Executor) ([]relation.Tuple, error) {
	d.reset()
	keyed := len(d.b.lks) > 0
	if d.lfp != "" {
		if err := d.attachShared(ex, true); err != nil {
			return nil, err
		}
	} else {
		lrows, err := d.l.init(ex)
		if err != nil {
			return nil, err
		}
		if d.ls, err = buildState(lrows, d.b.lks, d.b.lkRaw, keyed); err != nil {
			return nil, err
		}
	}
	var rrows []relation.Tuple
	if d.rfp != "" {
		if err := d.attachShared(ex, false); err != nil {
			return nil, err
		}
		rrows = d.rSide.ordered
	} else {
		var err error
		if rrows, err = d.r.init(ex); err != nil {
			return nil, err
		}
		if d.rs, err = buildState(rrows, d.b.rks, d.b.rkRaw, keyed); err != nil {
			return nil, err
		}
	}
	// Full output: probe the left state with every right row.
	ls := d.leftState()
	env := &expr.Env{}
	key := make(relation.Tuple, len(d.b.lks))
	out := make([]relation.Tuple, 0, len(rrows))
	scratch := make(relation.Tuple, 0, d.b.lw+d.b.rw)
	var arena valueArena
	arena.expect(len(rrows) * (d.b.lw + d.b.rw))
	for _, rrow := range rrows {
		if keyed {
			env.Row = rrow
			null, err := evalKeys(d.b.rks, d.b.rkRaw, key, env)
			if err != nil {
				return nil, err
			}
			if null {
				continue
			}
		}
		for _, lrow := range ls.matches(key) {
			scratch = append(append(scratch[:0], lrow...), rrow...)
			ok, err := d.residualOK(scratch, env)
			if err != nil {
				return nil, err
			}
			if ok {
				t := arena.alloc(len(scratch))
				copy(t, scratch)
				out = append(out, t)
			}
		}
	}
	return out, nil
}

func (d *dJoin) delta(ex *Executor, in map[string]relation.Delta) (relation.Delta, error) {
	var dl, dr relation.Delta
	var err error
	// Shared sides consume the writer's cached subtree delta (empty outside
	// a base-data fan-out — private changes cannot touch shared inputs);
	// private sides derive theirs from the input deltas as usual.
	if d.lfp != "" {
		dl = d.lSide.currentDelta()
	} else if dl, err = d.l.delta(ex, in); err != nil {
		return relation.Delta{}, err
	}
	if d.rfp != "" {
		dr = d.rSide.currentDelta()
	} else if dr, err = d.r.delta(ex, in); err != nil {
		return relation.Delta{}, err
	}
	if dl.Empty() && dr.Empty() {
		return relation.Delta{}, nil
	}
	keyed := len(d.b.lks) > 0
	env := &expr.Env{}
	key := make(relation.Tuple, len(d.b.lks))
	lw, rw := d.b.lw, d.b.rw
	var out relation.Delta
	var arena valueArena

	// emitMatches pairs row against every match in other, appending the
	// concatenations that satisfy the residual to *dst. Output tuples are
	// carved from an arena sized by the actual match counts; a tuple a
	// non-nil residual rejects is abandoned in its block (bounded waste)
	// rather than copied twice.
	emitMatches := func(row relation.Tuple, other *joinSideState, left bool, dst *[]relation.Tuple) error {
		m := other.matches(key)
		if len(m) == 0 {
			return nil
		}
		arena.expect(len(m) * (lw + rw))
		for _, orow := range m {
			t := arena.alloc(lw + rw)
			if left {
				copy(t, row)
				copy(t[lw:], orow)
			} else {
				copy(t, orow)
				copy(t[lw:], row)
			}
			ok, err := d.residualOK(t, env)
			if err != nil {
				return err
			}
			if ok {
				*dst = append(*dst, t)
			}
		}
		return nil
	}

	// ΔOut = ΔL ⋈ R_old  ∪  L_new ⋈ ΔR: process the left delta against the
	// untouched right state, fold it into the left state, then process the
	// right delta against the updated left state. Shared states are not
	// mutated here — the writer already advanced them, once, before fan-out.
	process := func(dd relation.Delta, ks []expr.Compiled, kraw []expr.Expr, state, other *joinSideState, left, mutate bool) error {
		handle := func(rows []relation.Tuple, ins bool) error {
			dst := &out.Ins
			if !ins {
				dst = &out.Del
			}
			for _, row := range rows {
				if keyed {
					env.Row = row
					null, err := evalKeys(ks, kraw, key, env)
					if err != nil {
						return err
					}
					if null {
						continue // NULL keys never matched anything
					}
				}
				if err := emitMatches(row, other, left, dst); err != nil {
					return err
				}
				if !mutate {
					continue
				}
				if ins {
					state.add(key, row)
				} else if err := state.remove(key, row); err != nil {
					return err
				}
			}
			return nil
		}
		if err := handle(dd.Ins, true); err != nil {
			return err
		}
		return handle(dd.Del, false)
	}
	if err := process(dl, d.b.lks, d.b.lkRaw, d.leftState(), d.rightState(), true, d.lfp == ""); err != nil {
		return out, err
	}
	if err := process(dr, d.b.rks, d.b.rkRaw, d.rightState(), d.leftState(), false, d.rfp == ""); err != nil {
		return out, err
	}
	return out, nil
}

func (d *dJoin) reset() {
	d.ls, d.rs = nil, nil
	// Shared attachments (and the canonical subtree donated to the group)
	// survive resets: the shared state tracks the shared base data, which a
	// session-local reset says nothing about.
	if d.lfp == "" {
		d.l.reset()
	}
	if d.rfp == "" {
		d.r.reset()
	}
}

// --- aggregate ---

type dgroup struct {
	key     relation.Tuple
	rep     relation.Tuple // any member; outputs only read grouping columns
	rows    int64
	states  []*aggState
	emitted relation.Tuple // last output row shipped downstream; nil if none
	touched bool
}

type dAggregate struct {
	b        *bAggregate
	child    dnode
	groups   map[uint64][]*dgroup
	g1       map[relation.Value]*dgroup // single-column keys: direct map, no tuple hash
	needVals []bool
	aggs     []relation.Value
	stream   streamer   // non-nil when the child chain can push rows (fuse.go)
	noFusion bool       // ablation arm: keep the materialized row path
	es       *ExecStats // nil-safe counters shared with the Prepared
	volatile bool       // streamed rows are reused scratch; clone before retaining
}

func (d *dAggregate) prog() *aggProgram { return d.b.static }

func (d *dAggregate) newGroup(h uint64, key, rep relation.Tuple) *dgroup {
	prog := d.prog()
	if d.volatile && rep != nil {
		rep = rep.Clone() // the group retains its representative past the call
	}
	grp := &dgroup{rep: rep, states: make([]*aggState, len(prog.specs))}
	if key != nil {
		grp.key = key.Clone()
	}
	for si := range grp.states {
		grp.states[si] = newDeltaAggState(prog.specs[si].agg.Distinct, d.needVals[si])
	}
	if d.g1 == nil { // single-key groups register in g1 (caller indexes it)
		d.groups[h] = append(d.groups[h], grp)
	}
	return grp
}

func (d *dAggregate) findGroup(h uint64, key relation.Tuple) *dgroup {
	for _, cand := range d.groups[h] {
		if cand.key.Equal(key) {
			return cand
		}
	}
	return nil
}

func (d *dAggregate) dropGroup(h uint64, grp *dgroup) {
	if d.g1 != nil {
		delete(d.g1, grp.key[0].Key())
		return
	}
	bucket := d.groups[h]
	for i, cand := range bucket {
		if cand == grp {
			bucket[i] = bucket[len(bucket)-1]
			d.groups[h] = bucket[:len(bucket)-1]
			return
		}
	}
}

// accumulate feeds one input row into its group with the given sign. Bare
// column grouping keys and aggregate arguments bypass the compiled closures
// (prog.groupCols / spec.argCol) — the inner loop is a slice index.
func (d *dAggregate) accumulate(env *expr.Env, key relation.Tuple, row relation.Tuple, sign int, touched *[]*dgroup) (*dgroup, error) {
	prog := d.prog()
	env.Row = row
	for gi, g := range prog.groupBy {
		if idx := prog.groupCols[gi]; idx >= 0 {
			key[gi] = row[idx]
			continue
		}
		v, err := g(env)
		if err != nil {
			return nil, fmt.Errorf("group by %s: %w", prog.groupStr[gi], err)
		}
		key[gi] = v
	}
	var grp *dgroup
	if d.g1 != nil {
		// One grouping column: index the canonical value directly instead
		// of hashing and probing a keyed bucket — the delta path's hottest
		// lookup (Value.Key is the same normalization Tuple.Hash applies).
		k := key[0].Key()
		if grp = d.g1[k]; grp == nil {
			if sign < 0 {
				return nil, fmt.Errorf("aggregate state: delete for a group never seen")
			}
			grp = d.newGroup(0, key, row)
			d.g1[k] = grp
		}
	} else {
		h := key.Hash()
		if grp = d.findGroup(h, key); grp == nil {
			if sign < 0 {
				return nil, fmt.Errorf("aggregate state: delete for a group never seen")
			}
			grp = d.newGroup(h, key, row)
		}
	}
	if touched != nil && !grp.touched {
		grp.touched = true
		*touched = append(*touched, grp)
	}
	grp.rows += int64(sign)
	for si := range prog.specs {
		sp := &prog.specs[si]
		if sp.arg == nil { // count(*)
			continue
		}
		var v relation.Value
		if sp.argCol >= 0 {
			v = row[sp.argCol]
		} else {
			var err error
			if v, err = sp.arg(env); err != nil {
				return nil, fmt.Errorf("aggregate %s: %w", sp.str, err)
			}
		}
		if sign > 0 {
			grp.states[si].add(v)
		} else if err := grp.states[si].remove(v); err != nil {
			return nil, err
		}
	}
	return grp, nil
}

// output computes the group's current output row, nil when HAVING drops it.
func (d *dAggregate) output(env *expr.Env, grp *dgroup) (relation.Tuple, error) {
	prog := d.prog()
	env.Row = grp.rep
	if grp.rows == 0 {
		// A global group over zero rows has no representative: recomputation
		// would evaluate columns against a nil row (all NULL).
		env.Row = nil
	}
	for si := range prog.specs {
		sp := &prog.specs[si]
		d.aggs[si] = grp.states[si].result(sp.agg.Name, grp.rows, sp.agg.Arg == nil)
	}
	env.Aggs = d.aggs
	defer func() { env.Aggs = nil }()
	if prog.having != nil {
		hv, err := prog.having(env)
		if err != nil {
			return nil, fmt.Errorf("having: %w", err)
		}
		if hv.IsNull() || !hv.Truthy() {
			return nil, nil
		}
	}
	t := make(relation.Tuple, len(prog.items))
	for c, it := range prog.items {
		v, err := it(env)
		if err != nil {
			return nil, fmt.Errorf("aggregate output %s: %w", prog.itemStr[c], err)
		}
		t[c] = v
	}
	return t, nil
}

func (d *dAggregate) init(ex *Executor) ([]relation.Tuple, error) {
	d.child.reset()
	rows, err := d.child.init(ex)
	if err != nil {
		return nil, err
	}
	prog := d.prog()
	d.groups = make(map[uint64][]*dgroup)
	d.aggs = make([]relation.Value, len(prog.specs))
	d.needVals = make([]bool, len(prog.specs))
	for si := range prog.specs {
		name := prog.specs[si].agg.Name
		d.needVals[si] = prog.specs[si].agg.Distinct || name == "min" || name == "max"
	}
	nk := len(prog.groupBy)
	if nk == 1 {
		d.g1 = make(map[relation.Value]*dgroup)
	} else {
		d.g1 = nil
	}
	env := &expr.Env{}
	key := make(relation.Tuple, nk)
	var order []*dgroup
	for _, row := range rows {
		grp, err := d.accumulate(env, key, row, +1, nil)
		if err != nil {
			return nil, err
		}
		if grp.rows == 1 {
			order = append(order, grp)
		}
	}
	if nk == 0 && len(order) == 0 {
		order = append(order, d.newGroup(relation.Tuple(nil).Hash(), nil, nil))
	}
	out := make([]relation.Tuple, 0, len(order))
	for _, grp := range order {
		t, err := d.output(env, grp)
		if err != nil {
			return nil, err
		}
		grp.emitted = t
		if t != nil {
			out = append(out, t)
		}
	}
	return out, nil
}

func (d *dAggregate) delta(ex *Executor, in map[string]relation.Delta) (relation.Delta, error) {
	if d.stream != nil && !d.noFusion {
		return d.deltaFused(ex, in)
	}
	din, err := d.child.delta(ex, in)
	if err != nil || din.Empty() {
		return relation.Delta{}, err
	}
	if d.stream != nil && d.es != nil {
		// Fusible shape running row-at-a-time: only the ablation arm lands here.
		atomic.AddInt64(&d.es.RowFallbacks, 1)
	}
	env := &expr.Env{}
	key := make(relation.Tuple, len(d.prog().groupBy))
	var touched []*dgroup
	for _, row := range din.Ins {
		if _, err := d.accumulate(env, key, row, +1, &touched); err != nil {
			return relation.Delta{}, err
		}
	}
	for _, row := range din.Del {
		if _, err := d.accumulate(env, key, row, -1, &touched); err != nil {
			return relation.Delta{}, err
		}
	}
	return d.flushTouched(env, touched)
}

// flushTouched turns the touched groups of one delta application into the
// output delta, retiring emptied groups and re-emitting changed outputs.
func (d *dAggregate) flushTouched(env *expr.Env, touched []*dgroup) (relation.Delta, error) {
	nk := len(d.prog().groupBy)
	var out relation.Delta
	for _, grp := range touched {
		grp.touched = false
		if grp.rows < 0 {
			return out, fmt.Errorf("aggregate state: group row count went negative")
		}
		if grp.rows == 0 && nk > 0 {
			if grp.emitted != nil {
				out.Del = append(out.Del, grp.emitted)
			}
			d.dropGroup(grp.key.Hash(), grp)
			continue
		}
		t, err := d.output(env, grp)
		if err != nil {
			return out, err
		}
		switch {
		case grp.emitted == nil && t == nil:
			// still filtered by HAVING
		case grp.emitted != nil && t != nil && grp.emitted.Equal(t):
			// unchanged output: keep the old tuple, ship nothing
		default:
			if grp.emitted != nil {
				out.Del = append(out.Del, grp.emitted)
			}
			if t != nil {
				out.Ins = append(out.Ins, t)
			}
			grp.emitted = t
		}
	}
	return out, nil
}

func (d *dAggregate) reset() {
	d.groups = nil
	d.g1 = nil
	d.child.reset()
}

// --- distinct ---

type dDistinct struct {
	child dnode
	bag   *relation.TupleBag
}

func (d *dDistinct) bump(row relation.Tuple, by int64) (int64, error) {
	n := d.bag.Add(row, by)
	if n < 0 {
		return 0, fmt.Errorf("distinct state: count went negative")
	}
	return n, nil
}

func (d *dDistinct) init(ex *Executor) ([]relation.Tuple, error) {
	d.child.reset()
	rows, err := d.child.init(ex)
	if err != nil {
		return nil, err
	}
	d.bag = relation.NewTupleBag(len(rows))
	out := make([]relation.Tuple, 0, len(rows))
	for _, row := range rows {
		n, err := d.bump(row, 1)
		if err != nil {
			return nil, err
		}
		if n == 1 {
			out = append(out, row)
		}
	}
	return out, nil
}

func (d *dDistinct) delta(ex *Executor, in map[string]relation.Delta) (relation.Delta, error) {
	din, err := d.child.delta(ex, in)
	if err != nil || din.Empty() {
		return relation.Delta{}, err
	}
	var out relation.Delta
	for _, row := range din.Ins {
		n, err := d.bump(row, 1)
		if err != nil {
			return out, err
		}
		if n == 1 {
			out.Ins = append(out.Ins, row)
		}
	}
	for _, row := range din.Del {
		n, err := d.bump(row, -1)
		if err != nil {
			return out, err
		}
		if n == 0 {
			out.Del = append(out.Del, row)
		}
	}
	return out, nil
}

func (d *dDistinct) reset() {
	d.bag = nil
	d.child.reset()
}

// --- set operations ---

// dSetOp maintains per-tuple counts on each side. Output membership is a
// function of the two counts: union (set) lc+rc > 0, minus lc > 0 ∧ rc = 0,
// intersect lc > 0 ∧ rc > 0. UNION ALL is stateless concatenation.
type dSetOp struct {
	b      *bSetOp
	l, r   dnode
	tab    *tupleTable
	lc, rc []int64
}

func (d *dSetOp) unionAll() bool { return d.b.kind == plan.SetUnion && d.b.all }

func (d *dSetOp) member(id int32) bool {
	switch d.b.kind {
	case plan.SetUnion:
		return d.lc[id]+d.rc[id] > 0
	case plan.SetMinus:
		return d.lc[id] > 0 && d.rc[id] == 0
	default:
		return d.lc[id] > 0 && d.rc[id] > 0
	}
}

func (d *dSetOp) bump(row relation.Tuple, left bool, by int64) (int32, error) {
	id, dup := d.tab.getOrInsert(row)
	if !dup {
		d.lc = append(d.lc, 0)
		d.rc = append(d.rc, 0)
	}
	side := d.lc
	if !left {
		side = d.rc
	}
	side[id] += by
	if side[id] < 0 {
		return 0, fmt.Errorf("set-op state: count went negative")
	}
	return int32(id), nil
}

func (d *dSetOp) init(ex *Executor) ([]relation.Tuple, error) {
	d.child0reset()
	lrows, err := d.l.init(ex)
	if err != nil {
		return nil, err
	}
	rrows, err := d.r.init(ex)
	if err != nil {
		return nil, err
	}
	if arl, arr := rowArity(lrows), rowArity(rrows); arl >= 0 && arr >= 0 && arl != arr {
		return nil, fmt.Errorf("set operands are not union compatible")
	}
	if d.unionAll() {
		out := make([]relation.Tuple, 0, len(lrows)+len(rrows))
		return append(append(out, lrows...), rrows...), nil
	}
	d.tab = newTupleTable(len(lrows) + len(rrows))
	d.lc = make([]int64, 0, len(lrows)+len(rrows))
	d.rc = make([]int64, 0, len(lrows)+len(rrows))
	for _, row := range lrows {
		if _, err := d.bump(row, true, 1); err != nil {
			return nil, err
		}
	}
	for _, row := range rrows {
		if _, err := d.bump(row, false, 1); err != nil {
			return nil, err
		}
	}
	out := make([]relation.Tuple, 0, len(d.tab.keys))
	for id, row := range d.tab.keys {
		if d.member(int32(id)) {
			out = append(out, row)
		}
	}
	return out, nil
}

func (d *dSetOp) delta(ex *Executor, in map[string]relation.Delta) (relation.Delta, error) {
	dl, err := d.l.delta(ex, in)
	if err != nil {
		return relation.Delta{}, err
	}
	dr, err := d.r.delta(ex, in)
	if err != nil {
		return relation.Delta{}, err
	}
	if dl.Empty() && dr.Empty() {
		return relation.Delta{}, nil
	}
	if d.unionAll() {
		return relation.Delta{
			Ins: append(append([]relation.Tuple{}, dl.Ins...), dr.Ins...),
			Del: append(append([]relation.Tuple{}, dl.Del...), dr.Del...),
		}, nil
	}
	var out relation.Delta
	apply := func(rows []relation.Tuple, left bool, by int64) error {
		for _, row := range rows {
			id, dup := d.tab.getOrInsert(row)
			if !dup {
				d.lc = append(d.lc, 0)
				d.rc = append(d.rc, 0)
			}
			before := d.member(int32(id))
			if _, err := d.bump(row, left, by); err != nil {
				return err
			}
			after := d.member(int32(id))
			switch {
			case !before && after:
				out.Ins = append(out.Ins, d.tab.keys[id])
			case before && !after:
				out.Del = append(out.Del, d.tab.keys[id])
			}
		}
		return nil
	}
	if err := apply(dl.Ins, true, 1); err != nil {
		return out, err
	}
	if err := apply(dr.Ins, false, 1); err != nil {
		return out, err
	}
	if err := apply(dl.Del, true, -1); err != nil {
		return out, err
	}
	if err := apply(dr.Del, false, -1); err != nil {
		return out, err
	}
	return out, nil
}

func (d *dSetOp) child0reset() {
	d.tab, d.lc, d.rc = nil, nil, nil
}

func (d *dSetOp) reset() {
	d.child0reset()
	d.l.reset()
	d.r.reset()
}

// --- sort / top-k ---

// TopKStats counts the order-statistic subsystem's work across a pipeline's
// dSort operators. TreeRows is a gauge (rows currently held, duplicates
// counted); PrefixEmits and Evictions are counters drained by
// Prepared.TakeTopKStats.
type TopKStats struct {
	TreeRows    int64 // rows currently held in order-statistic trees
	PrefixEmits int64 // delta rows emitted for maintained ORDER BY+LIMIT prefixes
	Evictions   int64 // prefix exits of rows still in the tree (displaced, not deleted)
}

// dSort maintains an order-statistic tree over its child's full output.
// With limit < 0 it is a stateful ORDER BY: the output delta is the input
// delta (sorting is bag-identity; the order lives in orderedRows, which the
// engine uses to materialize the view). With limit >= 0 it is a top-k
// operator: the output is the maintained k-prefix, and each delta
// application emits the prefix's own delta — a row entering the top-k
// evicts the current k-th, a deletion inside the prefix promotes the
// successor — so a one-row input change ships ~2 output rows.
type dSort struct {
	b     *bSort
	limit int    // -1: full ORDER BY; >= 0: maintained prefix length
	desc  []bool // per-key DESC flags
	child dnode

	tree    *ordStat
	emitted []relation.Tuple // current prefix shipped downstream (limit >= 0)
	stats   TopKStats        // cumulative counters, drained by TakeTopKStats
}

// evalSortKeys fills the scratch key tuple for one child row.
func (d *dSort) evalSortKeys(env *expr.Env, row relation.Tuple, key relation.Tuple) error {
	env.Row = row
	for i, fn := range d.b.static {
		v, err := fn(env)
		if err != nil {
			return fmt.Errorf("order by %s: %w", d.b.keys[i].String(), err)
		}
		key[i] = v
	}
	return nil
}

// prefixLen is the current output length: everything for ORDER BY, min(k,
// rows) for top-k.
func (d *dSort) prefixLen() int {
	if d.limit < 0 {
		return int(d.tree.Len())
	}
	if int64(d.limit) > d.tree.Len() {
		return int(d.tree.Len())
	}
	return d.limit
}

// orderedRows returns the operator's current output in maintained order: the
// engine overwrites the materialized view's rows with it after each delta
// application, so ordered views stay ordered without re-sorting.
func (d *dSort) orderedRows() []relation.Tuple {
	if d.limit >= 0 {
		return append([]relation.Tuple(nil), d.emitted...)
	}
	return d.tree.InOrder()
}

func (d *dSort) init(ex *Executor) ([]relation.Tuple, error) {
	d.tree, d.emitted = nil, nil
	rows, err := d.child.init(ex)
	if err != nil {
		return nil, err
	}
	d.tree = newOrdStat(d.desc)
	env := &expr.Env{}
	key := make(relation.Tuple, len(d.b.static))
	for _, row := range rows {
		if err := d.evalSortKeys(env, row, key); err != nil {
			return nil, err
		}
		d.tree.Insert(key, row)
	}
	out := d.tree.Prefix(d.prefixLen())
	if d.limit >= 0 {
		d.emitted = out
	}
	return out, nil
}

func (d *dSort) delta(ex *Executor, in map[string]relation.Delta) (relation.Delta, error) {
	din, err := d.child.delta(ex, in)
	if err != nil || din.Empty() {
		return relation.Delta{}, err
	}
	env := &expr.Env{}
	key := make(relation.Tuple, len(d.b.static))
	for _, row := range din.Ins {
		if err := d.evalSortKeys(env, row, key); err != nil {
			return relation.Delta{}, err
		}
		d.tree.Insert(key, row)
	}
	for _, row := range din.Del {
		if err := d.evalSortKeys(env, row, key); err != nil {
			return relation.Delta{}, err
		}
		if err := d.tree.Delete(key, row); err != nil {
			return relation.Delta{}, err
		}
	}
	if d.limit < 0 {
		// Pure ORDER BY is bag-identity: the input delta is the output delta.
		return din, nil
	}
	// Top-k: the output delta is the prefix's own change — Consolidate
	// cancels the rows present in both the old and new prefix, leaving the
	// boundary crossings (entries, evictions, promotions). O(k), not O(n).
	next := d.tree.Prefix(d.prefixLen())
	out := relation.Delta{Ins: next, Del: d.emitted}.Consolidate()
	d.emitted = next
	d.stats.PrefixEmits += int64(out.Len())
	for _, row := range out.Del {
		// A prefix exit whose row is still in the tree was displaced by a
		// better row (or by the prefix shrinking past it), not deleted.
		if err := d.evalSortKeys(env, row, key); err != nil {
			return out, err
		}
		if d.tree.Contains(key, row) {
			d.stats.Evictions++
		}
	}
	return out, nil
}

func (d *dSort) reset() {
	d.tree, d.emitted = nil, nil
	d.child.reset()
}

// sortRows sorts rows in place into the operator's total order (keys with
// DESC negation, full-tuple tie-break). It needs no tree state: the engine
// uses it to re-establish an ordered view's row order after the store
// restored contents behind the pipeline's back (rollback, undo), where the
// restored bag is exact but bag-delta reconstruction loses row order.
func (d *dSort) sortRows(rows []relation.Tuple) error {
	env := &expr.Env{}
	type keyed struct{ row, keys relation.Tuple }
	items := make([]keyed, len(rows))
	var arena valueArena
	arena.expect(len(rows) * len(d.b.static))
	for i, row := range rows {
		kt := arena.alloc(len(d.b.static))
		if err := d.evalSortKeys(env, row, kt); err != nil {
			return err
		}
		items[i] = keyed{row: row, keys: kt}
	}
	sort.SliceStable(items, func(i, j int) bool {
		return compareKeyedRows(items[i].keys, items[j].keys, d.desc, items[i].row, items[j].row) < 0
	})
	for i := range items {
		rows[i] = items[i].row
	}
	return nil
}

// rowArity returns the arity of the first row, -1 when empty.
func rowArity(rows []relation.Tuple) int {
	if len(rows) == 0 {
		return -1
	}
	return len(rows[0])
}
