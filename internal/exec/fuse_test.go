package exec

// Randomized columnar-vs-row parity: the same programs run three ways —
// fused streaming applies (the default), the row-at-a-time ablation arm
// (NoFusion), and a stateless full recompute as oracle — and after every
// event all three must agree exactly. Values are integers so float
// accumulation order cannot blur the comparison (the fused stream
// interleaves inserts and deletes where the row path batches them).

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/relation"
)

func prepareFusion(t *testing.T, cat memCatalog, sql string, opts PrepareOptions) *Prepared {
	t.Helper()
	q, err := parser.ParseQuery(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	n, err := plan.Build(q, cat)
	if err != nil {
		t.Fatalf("build %q: %v", sql, err)
	}
	funcs := expr.NewRegistry()
	n = plan.Optimize(n, funcs)
	p, err := PrepareWithOptions(n, funcs, opts)
	if err != nil {
		t.Fatalf("prepare %q: %v", sql, err)
	}
	if !p.DeltaSafe() {
		t.Fatalf("%q should be delta-safe, reason: %s", sql, p.DeltaReason())
	}
	return p
}

func TestFusedDeltaParityWithRowPath(t *testing.T) {
	programs := []struct {
		name string
		sql  string
	}{
		{"join-agg", "SELECT f.grp AS grp, count(*) AS n, sum(f.val) AS total, avg(f.val) AS mean FROM Fact AS f, Sel AS s WHERE f.bin = s.bin GROUP BY f.grp"},
		{"join-agg-global", "SELECT count(*) AS n, sum(f.val) AS total FROM Fact AS f, Sel AS s WHERE f.bin = s.bin"},
		{"join-residual-filter", "SELECT f.grp AS grp, sum(f.val) AS total FROM Fact AS f, Sel AS s WHERE f.bin = s.bin AND f.val >= 2 GROUP BY f.grp"},
		{"filter-agg-int-kernel", "SELECT grp, count(*) AS n, sum(val) AS total FROM Fact WHERE bin > 4 GROUP BY grp"},
		{"filter-agg-string-kernel", "SELECT bin, count(*) AS n FROM Fact WHERE grp = 'a' GROUP BY bin"},
		{"filter-agg-minmax", "SELECT grp, min(val) AS lo, max(val) AS hi FROM Fact WHERE bin <= 7 GROUP BY grp"},
		{"filter-agg-distinct", "SELECT grp, count(DISTINCT val) AS nv FROM Fact WHERE val <> 3 GROUP BY grp"},
		{"having", "SELECT f.grp AS grp, count(*) AS n FROM Fact AS f, Sel AS s WHERE f.bin = s.bin GROUP BY f.grp HAVING count(*) > 2"},
		// Expression aggregate argument over a join: the group key is bare
		// but the argument is not, so allBare is off and split join rows
		// materialize into the scratch tuple before accumulating.
		{"join-agg-expr-arg", "SELECT f.grp AS grp, sum(f.val * 2) AS total FROM Fact AS f, Sel AS s WHERE f.bin = s.bin GROUP BY f.grp"},
		// Closure filter (no kernel: the predicate is not column-vs-literal)
		// feeding the aggregate through the streaming path.
		{"filter-agg-closure", "SELECT grp, count(*) AS n FROM Fact WHERE val + 0 > 2 GROUP BY grp"},
		// Mirrored kernel: literal on the left normalizes to column-left.
		{"filter-agg-mirrored-kernel", "SELECT grp, count(*) AS n FROM Fact WHERE 4 < bin GROUP BY grp"},
		// Two-column group key: the g1 single-key map stays off and groups
		// go through tuple hashing on the fused path too.
		{"join-agg-two-keys", "SELECT f.grp AS grp, f.bin AS b, count(*) AS n FROM Fact AS f, Sel AS s WHERE f.bin = s.bin GROUP BY f.grp, f.bin"},
	}
	for _, pr := range programs {
		t.Run(pr.name, func(t *testing.T) {
			cat, fact, sel := cubeCatalog()
			rng := rand.New(rand.NewSource(37))
			for i := 0; i < 40; i++ {
				fact.MustAppend(randFactRow(rng))
			}
			for b := 2; b <= 6; b++ {
				sel.MustAppend(relation.Tuple{relation.Int(int64(b))})
			}

			// NoCube on every arm: the point is the dJoin/dFilter→dAggregate
			// pipeline, not the index tiles (they have their own wall).
			fused := prepareFusion(t, cat, pr.sql, PrepareOptions{NoCube: true})
			rowArm := prepareFusion(t, cat, pr.sql, PrepareOptions{NoCube: true, NoFusion: true})
			oracle := prepareFusion(t, cat, pr.sql, PrepareOptions{NoCube: true})
			ex := New(cat)

			prime := func(p *Prepared) *relation.Relation {
				t.Helper()
				res, err := ex.RunStateful(p)
				if err != nil {
					t.Fatal(err)
				}
				out := relation.New("out", res.Rel.Schema)
				out.Rows = append([]relation.Tuple(nil), res.Rel.Rows...)
				return out
			}
			matF, matR := prime(fused), prime(rowArm)

			check := func(step string) {
				t.Helper()
				want, err := ex.RunPrepared(oracle)
				if err != nil {
					t.Fatalf("%s: oracle: %v", step, err)
				}
				if !relation.Equal(matF, want.Rel) {
					t.Fatalf("%s: fused output diverges from recompute\ngot:    %v\noracle: %v", step, matF.Rows, want.Rel.Rows)
				}
				if !relation.Equal(matR, matF) {
					t.Fatalf("%s: row arm diverges from fused arm\nrow:   %v\nfused: %v", step, matR.Rows, matF.Rows)
				}
			}
			check("after priming")

			apply := func(step string, df, ds relation.Delta) {
				t.Helper()
				if err := fact.ApplyDelta(df); err != nil {
					t.Fatalf("%s: fact apply: %v", step, err)
				}
				if err := sel.ApplyDelta(ds); err != nil {
					t.Fatalf("%s: sel apply: %v", step, err)
				}
				in := map[string]relation.Delta{"fact": df, "sel": ds}
				for _, arm := range []struct {
					p   *Prepared
					mat *relation.Relation
				}{{fused, matF}, {rowArm, matR}} {
					od, err := ex.ApplyDelta(arm.p, in)
					if err != nil {
						t.Fatalf("%s: pipeline: %v", step, err)
					}
					if err := arm.mat.ApplyDelta(od); err != nil {
						t.Fatalf("%s: output delta does not apply: %v", step, err)
					}
				}
				check(step)
			}

			for ev := 0; ev < 150; ev++ {
				step := fmt.Sprintf("event %d", ev)
				switch op := rng.Intn(10); {
				case op < 4: // fact insert
					apply(step, relation.Delta{Ins: []relation.Tuple{randFactRow(rng)}}, relation.Delta{})
				case op < 6 && len(fact.Rows) > 0: // fact delete
					row := fact.Rows[rng.Intn(len(fact.Rows))]
					apply(step, relation.Delta{Del: []relation.Tuple{row}}, relation.Delta{})
				case op < 8: // brush move: replace the selection with a range
					lo := rng.Intn(cubeBins)
					hi := lo + rng.Intn(cubeBins-lo)
					var ins []relation.Tuple
					for b := lo; b <= hi; b++ {
						ins = append(ins, relation.Tuple{relation.Int(int64(b))})
					}
					apply(step+" (brush)", relation.Delta{}, relation.Delta{Del: append([]relation.Tuple(nil), sel.Rows...), Ins: ins})
				default: // mixed batch
					var df relation.Delta
					for j := 0; j < 3; j++ {
						df.Ins = append(df.Ins, randFactRow(rng))
					}
					if len(fact.Rows) > 1 {
						df.Del = append(df.Del, fact.Rows[0], fact.Rows[len(fact.Rows)-1])
					}
					apply(step+" (mixed)", df, relation.Delta{Ins: []relation.Tuple{{relation.Int(int64(rng.Intn(cubeBins)))}}})
				}
			}

			// Drain to empty: the fused stream must retire groups exactly.
			apply("drain selection", relation.Delta{}, relation.Delta{Del: append([]relation.Tuple(nil), sel.Rows...)})
			for len(fact.Rows) > 0 {
				row := fact.Rows[len(fact.Rows)-1]
				apply("drain fact", relation.Delta{Del: []relation.Tuple{row}}, relation.Delta{})
			}

			fs := fused.TakeExecStats()
			if fs.FusedApplies == 0 || fs.BatchRows == 0 {
				t.Fatalf("fused arm recorded no fused work: %+v", fs)
			}
			if fs.RowFallbacks != 0 {
				t.Fatalf("fused arm fell back to rows %d times", fs.RowFallbacks)
			}
			rs := rowArm.TakeExecStats()
			if rs.FusedApplies != 0 || rs.BatchRows != 0 {
				t.Fatalf("NoFusion arm streamed batches: %+v", rs)
			}
			if rs.RowFallbacks == 0 {
				t.Fatal("NoFusion arm should count its fusible applies as fallbacks")
			}
			if again := fused.TakeExecStats(); again != (ExecStats{}) {
				t.Fatalf("TakeExecStats did not drain: %+v", again)
			}
		})
	}
}

// TestBareLimitDeltaMaintained pins the bare-LIMIT delta rule: the pipeline
// is delta-safe, Ordered (a zero-key order-statistic tree maintains the
// deterministic full-tuple order), and its maintained prefix matches the
// full path after arbitrary churn.
func TestBareLimitDeltaMaintained(t *testing.T) {
	cat, fact, _ := cubeCatalog()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20; i++ {
		fact.MustAppend(randFactRow(rng))
	}
	sql := "SELECT bin, val FROM Fact LIMIT 5"
	live := prepareFusion(t, cat, sql, PrepareOptions{})
	oracle := prepareFusion(t, cat, sql, PrepareOptions{})
	if !live.Ordered() {
		t.Fatal("bare LIMIT should maintain an ordered prefix")
	}
	ex := New(cat)
	if _, err := ex.RunStateful(live); err != nil {
		t.Fatal(err)
	}
	check := func(step string) {
		t.Helper()
		got := live.OrderedRows()
		want, err := ex.RunPrepared(oracle)
		if err != nil {
			t.Fatalf("%s: oracle: %v", step, err)
		}
		if len(got) != len(want.Rel.Rows) {
			t.Fatalf("%s: prefix has %d rows, oracle %d", step, len(got), len(want.Rel.Rows))
		}
		for i := range got {
			if !got[i].Equal(want.Rel.Rows[i]) {
				t.Fatalf("%s: prefix row %d = %v, oracle %v", step, i, got[i], want.Rel.Rows[i])
			}
		}
	}
	check("after priming")
	for ev := 0; ev < 120; ev++ {
		var d relation.Delta
		if rng.Intn(3) > 0 || len(fact.Rows) == 0 {
			d.Ins = []relation.Tuple{randFactRow(rng)}
		} else {
			d.Del = []relation.Tuple{fact.Rows[rng.Intn(len(fact.Rows))]}
		}
		if err := fact.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
		if _, err := ex.ApplyDelta(live, map[string]relation.Delta{"fact": d}); err != nil {
			t.Fatalf("event %d: %v", ev, err)
		}
		check(fmt.Sprintf("event %d", ev))
	}
}

// TestProjectStreamDelta drives dProject.streamDelta directly: projected
// rows arrive on a reused scratch tuple, so the consumer must see each
// row's values at call time (and clone if it retains them).
func TestProjectStreamDelta(t *testing.T) {
	cat, fact, _ := cubeCatalog()
	fact.MustAppend(relation.Tuple{relation.Int(1), relation.String("a"), relation.Int(10)})
	fact.MustAppend(relation.Tuple{relation.Int(2), relation.String("b"), relation.Int(20)})
	sql := "SELECT grp, val * 2 AS dbl FROM Fact"
	live := prepareFusion(t, cat, sql, PrepareOptions{})
	dp, ok := live.droot.(*dProject)
	if !ok {
		t.Fatalf("plan root is %T, want *dProject", live.droot)
	}
	if !fusibleChain(dp) {
		t.Fatal("project over scan should be a fusible chain")
	}
	ex := New(cat)
	if _, err := ex.RunStateful(live); err != nil {
		t.Fatal(err)
	}
	din := map[string]relation.Delta{"fact": {
		Ins: []relation.Tuple{{relation.Int(3), relation.String("c"), relation.Int(30)}},
		Del: []relation.Tuple{{relation.Int(1), relation.String("a"), relation.Int(10)}},
	}}
	var got []string
	err := dp.streamDelta(ex, din, func(l, r relation.Tuple, sign int) error {
		row := append(l.Clone(), r...)
		got = append(got, fmt.Sprintf("%+d:%v", sign, row))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"+1:[c 60]", "-1:[a 20]"}
	if len(got) != len(want) {
		t.Fatalf("streamed %d rows, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stream row %d = %q, want %q", i, got[i], want[i])
		}
	}
}
