package exec

// Operator microbenchmarks isolating the hash pipeline and the compiled
// evaluation layer at 10k–100k rows, so executor wins are measurable outside
// the end-to-end engine benchmarks. Run:
//
//	go test ./internal/exec -bench . -benchmem
//
// PERFORMANCE.md records the before/after trajectory.

import (
	"fmt"
	"testing"

	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/relation"
)

// benchCatalog builds deterministic synthetic relations: "facts" with n rows
// over ~n/50 join keys and 8 group values, and a "dims" side with one row
// per key.
func benchCatalog(n int) memCatalog {
	nKeys := n / 50
	if nKeys < 1 {
		nKeys = 1
	}
	facts := relation.New("Facts", relation.NewSchema(
		relation.Col("id", relation.KindInt),
		relation.Col("key", relation.KindInt),
		relation.Col("grp", relation.KindString),
		relation.Col("val", relation.KindFloat),
	))
	groups := []string{"ga", "gb", "gc", "gd", "ge", "gf", "gg", "gh"}
	facts.Rows = make([]relation.Tuple, 0, n)
	for i := 0; i < n; i++ {
		facts.MustAppend(relation.Tuple{
			relation.Int(int64(i)),
			relation.Int(int64(i % nKeys)),
			relation.String(groups[i%len(groups)]),
			relation.Float(float64(i%997) / 7),
		})
	}
	dims := relation.New("Dims", relation.NewSchema(
		relation.Col("key", relation.KindInt),
		relation.Col("label", relation.KindString),
	))
	dims.Rows = make([]relation.Tuple, 0, nKeys)
	for k := 0; k < nKeys; k++ {
		dims.MustAppend(relation.Tuple{
			relation.Int(int64(k)),
			relation.String(fmt.Sprintf("label-%d", k%16)),
		})
	}
	return memCatalog{"facts": facts, "dims": dims}
}

func benchPrepare(b *testing.B, cat memCatalog, sql string) (*Executor, *Prepared) {
	b.Helper()
	q, err := parser.ParseQuery(sql)
	if err != nil {
		b.Fatal(err)
	}
	ex := New(cat)
	p, err := plan.Build(q, cat)
	if err != nil {
		b.Fatal(err)
	}
	p = plan.Optimize(p, ex.Funcs)
	prep, err := Prepare(p, ex.Funcs)
	if err != nil {
		b.Fatal(err)
	}
	return ex, prep
}

func benchSizes() []int { return []int{10000, 100000} }

func runPreparedBench(b *testing.B, sql string) {
	for _, n := range benchSizes() {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			ex, prep := benchPrepare(b, benchCatalog(n), sql)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ex.RunPrepared(prep); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHashJoin probes a many-to-one equi-join with a residual filter —
// the DeVIL brushing shape.
func BenchmarkHashJoin(b *testing.B) {
	runPreparedBench(b,
		"SELECT f.id, d.label FROM Dims AS d, Facts AS f WHERE f.key = d.key AND f.val >= 0")
}

// BenchmarkAggregate probes hash aggregation with grouped sums — the
// crossfilter chart shape.
func BenchmarkAggregate(b *testing.B) {
	runPreparedBench(b,
		"SELECT grp, sum(val) AS total, count(*) AS n, min(val) AS lo FROM Facts GROUP BY grp")
}

// BenchmarkDistinct probes duplicate elimination over a low-cardinality
// projection.
func BenchmarkDistinct(b *testing.B) {
	runPreparedBench(b, "SELECT DISTINCT grp, key FROM Facts")
}

// BenchmarkFilterProject probes the compiled scalar path with no hashing:
// predicate plus arithmetic projection.
func BenchmarkFilterProject(b *testing.B) {
	runPreparedBench(b,
		"SELECT id, val * 2 + 1 AS scaled FROM Facts WHERE val >= 10 AND grp != 'ga'")
}

// BenchmarkPrepareOnce measures bind cost itself: what the engine pays once
// per view definition (and saves on every subsequent recompute).
func BenchmarkPrepareOnce(b *testing.B) {
	cat := benchCatalog(1000)
	q, err := parser.ParseQuery(
		"SELECT grp, sum(val) AS total FROM Facts WHERE val >= 10 GROUP BY grp HAVING count(*) > 2")
	if err != nil {
		b.Fatal(err)
	}
	ex := New(cat)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := plan.Build(q, cat)
		if err != nil {
			b.Fatal(err)
		}
		p = plan.Optimize(p, ex.Funcs)
		if _, err := Prepare(p, ex.Funcs); err != nil {
			b.Fatal(err)
		}
	}
}
