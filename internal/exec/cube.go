package exec

// Per-chart data cubes. A crossfilter chart view like
//
//	SELECT s.region, sum(s.revenue), count(*) FROM Sales AS s,
//	  selected_months AS m WHERE s.month = m.month GROUP BY s.region
//
// joins the data ("fact") side against a small selection relation and
// aggregates. The ordinary delta pipeline answers a selection change by
// streaming every joined row of the changed bins — O(rows/bins) per brush
// move. A dCube replaces the join+aggregate pair with index tiles: per
// (brush-bin, output-group) cells of decomposable partials (COUNT/SUM; AVG
// via SUM/COUNT), built once from the fact side. A selection row with join
// key k contributes nothing but a multiplicity for bin k, so any selection's
// aggregate is Σ_bins mult[bin] × cell[bin][group] — O(bins × groups),
// independent of the data size. When the selection is a contiguous range of
// bins with multiplicity one (the brush), per-group prefix-sum arrays answer
// it with two subtractions per output group.
//
// Tiles are maintained, not invalidated: fact-side deltas (writer inserts,
// undo, rollback) update cells exactly like a stateful aggregate keyed by
// (bin, group). Because the aggregate is commutative, the fact and selection
// deltas of one batch may be applied in either order — a selection change
// recomputes totals wholesale from the current cells, which absorbs any
// interleaving.
//
// In a multi-client server the fact side reads only shared base relations,
// so the tiles are bit-identical across sessions: they register in the
// ShareGroup (a sharedCube, next to the sharedSide join states) and N
// sessions brushing the same dimension share one tile build. Sessions keep
// only private state — selection multiplicities, per-group totals, and
// emitted rows — and never mutate shared tiles; the writer advances them
// once per batch under the group write lock.

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/relation"
)

// CubeStats counts the data-cube subsystem's work. TileBytes is a gauge
// (bytes currently held by cells and prefix arrays, computed at snapshot
// time); the rest are counters.
type CubeStats struct {
	Builds       int64 // tile constructions: cell scans + prefix-array builds
	Hits         int64 // selection deltas answered from tiles (brush moves)
	Fallbacks    int64 // candidate views defined without a cube path
	TileBytes    int64 // bytes held by tiles attached to this engine's views
	BinsAnswered int64 // output groups served per hit, summed
}

// cubePart accumulates one aggregate argument over one tile cell (or one
// weighted total). It mirrors aggState's SUM/COUNT/AVG bookkeeping exactly —
// Neumaier-compensated float sum, exact integer sum with a non-integer
// counter — so composing cells reproduces the delta pipeline's results
// bit-for-bit on integer data.
type cubePart struct {
	count  int64
	sumF   float64
	sumC   float64
	sumI   int64
	nonInt int64
}

func (p *cubePart) addFloat(f float64) {
	t := p.sumF + f
	if math.Abs(p.sumF) >= math.Abs(f) {
		p.sumC += (p.sumF - t) + f
	} else {
		p.sumC += (f - t) + p.sumF
	}
	p.sumF = t
}

// accumulate folds one argument value with a signed weight (a bin
// multiplicity, or ±1 for cell maintenance).
func (p *cubePart) accumulate(v relation.Value, w int64) {
	if v.IsNull() {
		return
	}
	p.count += w
	if f, ok := v.AsFloat(); ok {
		p.addFloat(float64(w) * f)
		if v.Kind() == relation.KindInt {
			n, _ := v.AsInt()
			p.sumI += w * n
		} else {
			p.nonInt += w
		}
	} else {
		p.nonInt += w
	}
	if p.count == 0 {
		// Exact reset, as aggState does for emptied groups: the true sums are
		// zero, so clear any residual float error.
		*p = cubePart{}
	}
}

// combine folds another partial in with a multiplicity.
func (p *cubePart) combine(o *cubePart, w int64) {
	p.count += w * o.count
	p.sumI += w * o.sumI
	p.nonInt += w * o.nonInt
	p.addFloat(float64(w) * (o.sumF + o.sumC))
}

// result mirrors aggState.result for the decomposable calls.
func (p *cubePart) result(name string, rowsInGroup int64, star bool) relation.Value {
	switch name {
	case "count":
		if star {
			return relation.Int(rowsInGroup)
		}
		return relation.Int(p.count)
	case "sum":
		if p.count == 0 {
			return relation.Null()
		}
		if p.nonInt == 0 {
			return relation.Int(p.sumI)
		}
		return relation.Float(p.sumF + p.sumC)
	case "avg":
		if p.count == 0 {
			return relation.Null()
		}
		return relation.Float((p.sumF + p.sumC) / float64(p.count))
	default:
		return relation.Null()
	}
}

// cubeCell is one (bin, group) tile cell: unweighted fact-row count plus one
// partial per aggregate spec.
type cubeCell struct {
	rows  int64
	parts []cubePart
}

// cubeGroup is one output group's slice of the tiles: its cells across bins,
// plus optional prefix-sum arrays over the sorted bin order.
type cubeGroup struct {
	key   relation.Tuple // grouping key values (nil for the global group)
	rep   relation.Tuple // padded join-width representative; outputs only read grouping columns
	cells map[int32]*cubeCell

	// Prefix arrays, index i = sum over sorted bins [0, i). Valid when the
	// owning tiles' prefix is clean. All integer — a contiguous all-integer
	// range is answered exactly; ranges containing non-integer sums fall back
	// to the per-bin scan.
	prefRows   []int64
	prefCount  [][]int64 // per spec
	prefSumI   [][]int64
	prefNonInt [][]int64
}

// cubeTiles is the tile store for one view (or one shared entry): the bin
// registry, the output groups with their cells, and the sorted-bin prefix
// state. Private tiles are mutated by their owning pipeline; shared tiles
// only under the group write lock (build, writer advance).
type cubeTiles struct {
	specs    int
	bins     map[string]int32 // bin key (Tuple.Key) -> bin id
	binKeys  []relation.Tuple // bin id -> key tuple
	groups   []*cubeGroup
	groupIdx map[uint64][]int32

	sorted      []int32 // bin ids in ascending key order
	pos         []int32 // bin id -> position in sorted
	prefixBuilt bool
	prefixDirty bool // cells or bins changed since the last prefix build
	cellCount   int64
	builds      int64 // cell scans + prefix builds, drained into CubeStats
}

func newCubeTiles(specs int, globalGroup bool) *cubeTiles {
	t := &cubeTiles{
		specs:    specs,
		bins:     make(map[string]int32),
		groupIdx: make(map[uint64][]int32),
	}
	if globalGroup {
		// A global aggregate (no GROUP BY) always has exactly one group, even
		// over zero rows.
		t.newGroup(relation.Tuple(nil).Hash(), nil, nil)
	}
	return t
}

func (t *cubeTiles) binID(kstr string, key relation.Tuple) int32 {
	if id, ok := t.bins[kstr]; ok {
		return id
	}
	id := int32(len(t.binKeys))
	t.bins[kstr] = id
	t.binKeys = append(t.binKeys, key.Clone())
	t.prefixDirty = true
	return id
}

func (t *cubeTiles) newGroup(h uint64, key, rep relation.Tuple) int32 {
	g := &cubeGroup{cells: make(map[int32]*cubeCell)}
	if key != nil {
		g.key = key.Clone()
	}
	g.rep = rep
	id := int32(len(t.groups))
	t.groups = append(t.groups, g)
	t.groupIdx[h] = append(t.groupIdx[h], id)
	return id
}

func (t *cubeTiles) findGroup(h uint64, key relation.Tuple) int32 {
	for _, id := range t.groupIdx[h] {
		if t.groups[id].key.Equal(key) {
			return id
		}
	}
	return -1
}

// cell returns the (bin, group) cell, creating it when asked.
func (t *cubeTiles) cell(g *cubeGroup, bin int32, create bool) *cubeCell {
	c := g.cells[bin]
	if c == nil && create {
		c = &cubeCell{parts: make([]cubePart, t.specs)}
		g.cells[bin] = c
		t.cellCount++
	}
	return c
}

// approxBytes estimates tile memory: cells (struct + partials) plus bin keys
// and prefix arrays.
func (t *cubeTiles) approxBytes() int64 {
	if t == nil {
		return 0
	}
	b := t.cellCount * int64(24+48*t.specs+16) // cell + parts + map slot
	b += int64(len(t.binKeys)) * 48
	if t.prefixBuilt {
		b += int64(len(t.groups)) * int64(len(t.sorted)+1) * int64(8*(1+3*t.specs))
	}
	return b
}

// ensurePrefix (re)builds the sorted bin order and every group's prefix
// arrays. Private tiles call it lazily on the first selection delta (brush
// begin); shared tiles are built eagerly under the group write lock and
// rebuilt by the writer after each advance.
func (t *cubeTiles) ensurePrefix() {
	if t.prefixBuilt && !t.prefixDirty {
		return
	}
	t.sorted = t.sorted[:0]
	for id := range t.binKeys {
		t.sorted = append(t.sorted, int32(id))
	}
	sort.Slice(t.sorted, func(i, j int) bool {
		return compareTuples(t.binKeys[t.sorted[i]], t.binKeys[t.sorted[j]]) < 0
	})
	if cap(t.pos) < len(t.binKeys) {
		t.pos = make([]int32, len(t.binKeys))
	}
	t.pos = t.pos[:len(t.binKeys)]
	for p, id := range t.sorted {
		t.pos[id] = int32(p)
	}
	n := len(t.sorted) + 1
	for _, g := range t.groups {
		g.prefRows = resizeInt64(g.prefRows, n)
		g.prefCount = resizeInt64s(g.prefCount, t.specs, n)
		g.prefSumI = resizeInt64s(g.prefSumI, t.specs, n)
		g.prefNonInt = resizeInt64s(g.prefNonInt, t.specs, n)
		for i, id := range t.sorted {
			rows, parts := int64(0), ([]cubePart)(nil)
			if c := g.cells[id]; c != nil {
				rows, parts = c.rows, c.parts
			}
			g.prefRows[i+1] = g.prefRows[i] + rows
			for s := 0; s < t.specs; s++ {
				var p cubePart
				if parts != nil {
					p = parts[s]
				}
				g.prefCount[s][i+1] = g.prefCount[s][i] + p.count
				g.prefSumI[s][i+1] = g.prefSumI[s][i] + p.sumI
				g.prefNonInt[s][i+1] = g.prefNonInt[s][i] + p.nonInt
			}
		}
	}
	t.prefixBuilt, t.prefixDirty = true, false
	t.builds++
}

func resizeInt64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	s[0] = 0
	return s
}

func resizeInt64s(s [][]int64, specs, n int) [][]int64 {
	if len(s) < specs {
		s = make([][]int64, specs)
	}
	for i := range s {
		s[i] = resizeInt64(s[i], n)
	}
	return s
}

func compareTuples(a, b relation.Tuple) int {
	for i := range a {
		if i >= len(b) {
			return 1
		}
		if c := a[i].Compare(b[i]); c != 0 {
			return c
		}
	}
	if len(a) < len(b) {
		return -1
	}
	return 0
}

// cubeShape is the compiled geometry a tile maintainer needs, independent of
// any session: the fact-side bin-key evaluators, the aggregate program
// (compiled against the join's concatenated schema), and the padding layout
// that turns a bare fact row into a join-width row for evaluation.
type cubeShape struct {
	prog     *aggProgram
	factKeys []expr.Compiled
	factKRaw []expr.Expr
	factLeft bool
	fw, sw   int // fact-side and selection-side widths
}

// pad writes the fact row into the join-width scratch tuple (the selection
// half stays NULL — grouping keys and aggregate arguments never read it).
func (cs *cubeShape) pad(scratch, factRow relation.Tuple) relation.Tuple {
	if cs.factLeft {
		copy(scratch[:cs.fw], factRow)
	} else {
		copy(scratch[cs.sw:], factRow)
	}
	return scratch
}

func (cs *cubeShape) newScratch() relation.Tuple {
	return make(relation.Tuple, cs.fw+cs.sw) // zero Values are NULL
}

// applyFactRow folds one fact row into the tiles with the given sign,
// returning the row's bin and group ids (-1 bin for NULL join keys, which
// never join). Creates bins, groups, and cells as needed.
func (t *cubeTiles) applyFactRow(cs *cubeShape, env *expr.Env, binKey, scratch relation.Tuple, row relation.Tuple, sign int) (bin, group int32, err error) {
	env.Row = row
	null, err := evalKeys(cs.factKeys, cs.factKRaw, binKey, env)
	if err != nil {
		return -1, -1, err
	}
	if null {
		return -1, -1, nil
	}
	bin = t.binID(binKey.Key(), binKey)
	group, err = t.locateGroup(cs, env, scratch, row, sign)
	if err != nil {
		return -1, -1, err
	}
	g := t.groups[group]
	c := t.cell(g, bin, sign > 0)
	if c == nil {
		return -1, -1, fmt.Errorf("cube tiles: delete for a cell never seen")
	}
	c.rows += int64(sign)
	if c.rows < 0 {
		return -1, -1, fmt.Errorf("cube tiles: cell row count went negative")
	}
	for si := range cs.prog.specs {
		sp := &cs.prog.specs[si]
		if sp.arg == nil { // count(*): rows carries it
			continue
		}
		var v relation.Value
		if sp.argCol >= 0 {
			v = env.Row[sp.argCol] // locateGroup left env.Row on the padded row
		} else {
			var err error
			if v, err = sp.arg(env); err != nil {
				return -1, -1, fmt.Errorf("cube aggregate %s: %w", sp.str, err)
			}
		}
		c.parts[si].accumulate(v, int64(sign))
	}
	t.prefixDirty = true
	return bin, group, nil
}

// locateGroup evaluates the grouping key against the padded row and returns
// the group id, creating the group (with the padded row as representative)
// on first sight of an inserted row. env.Row is left on the padded row so
// the caller can evaluate aggregate arguments.
func (t *cubeTiles) locateGroup(cs *cubeShape, env *expr.Env, scratch relation.Tuple, row relation.Tuple, sign int) (int32, error) {
	id, h, key, err := t.groupKeyOf(cs, env, scratch, row)
	if err != nil {
		return -1, err
	}
	if id < 0 {
		if sign < 0 {
			return -1, fmt.Errorf("cube tiles: delete for a group never seen")
		}
		id = t.newGroup(h, key, scratch.Clone())
	}
	return id, nil
}

// findGroupFor is locateGroup without the mutation: sessions reading shared
// tiles (which the writer already advanced) use it under the group read lock.
func (t *cubeTiles) findGroupFor(cs *cubeShape, env *expr.Env, scratch relation.Tuple, row relation.Tuple) (int32, error) {
	id, _, _, err := t.groupKeyOf(cs, env, scratch, row)
	if err != nil {
		return -1, err
	}
	if id < 0 {
		return -1, fmt.Errorf("cube tiles: fact row's group missing from shared tiles")
	}
	return id, nil
}

func (t *cubeTiles) groupKeyOf(cs *cubeShape, env *expr.Env, scratch relation.Tuple, row relation.Tuple) (int32, uint64, relation.Tuple, error) {
	prog := cs.prog
	env.Row = cs.pad(scratch, row)
	if len(prog.groupBy) == 0 {
		return 0, 0, nil, nil // the global group, created with the tiles
	}
	key := make(relation.Tuple, len(prog.groupBy))
	for gi, g := range prog.groupBy {
		if idx := prog.groupCols[gi]; idx >= 0 {
			key[gi] = env.Row[idx]
			continue
		}
		v, err := g(env)
		if err != nil {
			return -1, 0, nil, fmt.Errorf("cube group by %s: %w", prog.groupStr[gi], err)
		}
		key[gi] = v
	}
	h := key.Hash()
	return t.findGroup(h, key), h, key, nil
}

// addRows builds cells from a full fact-side evaluation.
func (t *cubeTiles) addRows(cs *cubeShape, rows []relation.Tuple) error {
	env := &expr.Env{}
	binKey := make(relation.Tuple, len(cs.factKeys))
	scratch := cs.newScratch()
	for _, row := range rows {
		if _, _, err := t.applyFactRow(cs, env, binKey, scratch, row, +1); err != nil {
			return err
		}
	}
	t.builds++
	return nil
}

// --- the delta operator ---

// cubeTotal is one group's private weighted aggregate: Σ mult[bin] ×
// cell[bin][group], plus the emitted output row for diffing.
type cubeTotal struct {
	rows    int64
	parts   []cubePart
	emitted relation.Tuple
	touched bool
}

// dCube is the stateful operator replacing dAggregate(dJoin) for
// cube-eligible views. The fact subtree feeds the tiles; the selection
// subtree feeds only the bin multiplicities.
type dCube struct {
	b     *bAggregate
	shape cubeShape
	fact  dnode // fact subtree; only driven here when the tiles are private
	sel   dnode
	selKeys []expr.Compiled
	selKRaw []expr.Expr

	// Shared tiles (multi-client serving): when fp is non-empty the tiles
	// live in the group registry; init attaches (building on first use,
	// donating the fact subtree as the writer's canonical feeder), delta
	// consumes the writer's cached fact delta and adjusts only private
	// totals, and reset keeps the attachment.
	group *ShareGroup
	fp    string
	reads []string
	sc    *sharedCube

	tiles *cubeTiles // private tiles; nil when shared (use curTiles)

	mult   map[string]int64 // bin key -> selection multiplicity
	totals []cubeTotal      // indexed by group id, grown on demand
	aggs   []relation.Value
	binKey  relation.Tuple
	scratch relation.Tuple
	stats   CubeStats
}

func (d *dCube) prog() *aggProgram { return d.b.static }

// curTiles resolves the current tile store: the (possibly rebuilt) shared
// entry's, or the private one.
func (d *dCube) curTiles() *cubeTiles {
	if d.sc != nil {
		return d.sc.tiles
	}
	return d.tiles
}

// attachShared binds to the group's cube entry, building and publishing the
// tiles on first use. Caller holds the group write lock (via RunStateful).
func (d *dCube) attachShared(ex *Executor) error {
	if d.sc != nil {
		return nil
	}
	sc := d.group.lookupCube(d.fp, d.reads)
	if sc.built {
		d.group.stats.Reuses++
	} else {
		sc.sub = d.fact
		sc.shape = d.shape
		sc.global = len(d.prog().groupBy) == 0
		if err := sc.build(ex); err != nil {
			return err
		}
		d.group.stats.Builds++
		d.stats.Builds += sc.tiles.takeBuilds()
	}
	sc.refs++
	d.sc = sc
	return nil
}

// releaseShared drops the cube's shared-tile reference (session detach).
func (d *dCube) releaseShared(g *ShareGroup) {
	if d.sc != nil {
		g.releaseCube(d.sc)
		d.sc = nil
	}
}

func (d *dCube) init(ex *Executor) ([]relation.Tuple, error) {
	d.mult, d.totals = nil, nil
	if d.fp != "" {
		if err := d.attachShared(ex); err != nil {
			return nil, err
		}
	} else {
		d.fact.reset()
		rows, err := d.fact.init(ex)
		if err != nil {
			return nil, err
		}
		d.tiles = newCubeTiles(len(d.prog().specs), len(d.prog().groupBy) == 0)
		if err := d.tiles.addRows(&d.shape, rows); err != nil {
			return nil, err
		}
		d.stats.Builds += d.tiles.takeBuilds()
	}
	d.sel.reset()
	srows, err := d.sel.init(ex)
	if err != nil {
		return nil, err
	}
	env := &expr.Env{}
	d.mult = make(map[string]int64)
	d.binKey = make(relation.Tuple, len(d.shape.factKeys))
	d.scratch = d.shape.newScratch()
	d.aggs = make([]relation.Value, len(d.prog().specs))
	key := make(relation.Tuple, len(d.selKeys))
	for _, row := range srows {
		env.Row = row
		null, err := evalKeys(d.selKeys, d.selKRaw, key, env)
		if err != nil {
			return nil, err
		}
		if null {
			continue // NULL keys never join
		}
		d.mult[key.Key()]++
	}
	t := d.curTiles()
	d.growTotals(t)
	d.recomputeTotals(t)
	out := make([]relation.Tuple, 0, len(t.groups))
	for gi := range t.groups {
		row, err := d.outputGroup(env, t, gi)
		if err != nil {
			return nil, err
		}
		d.totals[gi].emitted = row
		d.totals[gi].touched = false
		if row != nil {
			out = append(out, row)
		}
	}
	return out, nil
}

func (d *dCube) growTotals(t *cubeTiles) {
	for len(d.totals) < len(t.groups) {
		d.totals = append(d.totals, cubeTotal{parts: make([]cubePart, t.specs)})
	}
}

func (d *dCube) delta(ex *Executor, in map[string]relation.Delta) (relation.Delta, error) {
	var df relation.Delta
	var err error
	if d.fp != "" {
		// The writer already advanced the shared tiles for this batch and
		// cached the fact subtree's output delta; adjust private totals only.
		df = d.sc.currentDelta()
	} else if df, err = d.fact.delta(ex, in); err != nil {
		return relation.Delta{}, err
	}
	ds, err := d.sel.delta(ex, in)
	if err != nil {
		return relation.Delta{}, err
	}
	if df.Empty() && ds.Empty() {
		return relation.Delta{}, nil
	}
	t := d.curTiles()
	d.growTotals(t)
	env := &expr.Env{}
	var touched []int32
	touch := func(gi int32) {
		if !d.totals[gi].touched {
			d.totals[gi].touched = true
			touched = append(touched, gi)
		}
	}
	if !df.Empty() {
		apply := func(rows []relation.Tuple, sign int) error {
			for _, row := range rows {
				var gi int32
				var m int64
				if d.fp != "" {
					// The writer already folded this row into the shared
					// tiles; locate its bin and group without mutating them.
					env.Row = row
					null, kerr := evalKeys(d.shape.factKeys, d.shape.factKRaw, d.binKey, env)
					if kerr != nil {
						return kerr
					}
					if null {
						continue
					}
					if m = d.mult[d.binKey.Key()]; m == 0 {
						continue // bin not selected: totals unaffected
					}
					if gi, err = t.findGroupFor(&d.shape, env, d.scratch, row); err != nil {
						return err
					}
					d.growTotals(t)
				} else {
					var bin int32
					if bin, gi, err = t.applyFactRow(&d.shape, env, d.binKey, d.scratch, row, sign); err != nil {
						return err
					}
					if bin < 0 {
						continue
					}
					d.growTotals(t)
					if m = d.mult[t.binKeys[bin].Key()]; m == 0 {
						continue
					}
				}
				touch(gi)
				tot := &d.totals[gi]
				tot.rows += int64(sign) * m
				// env.Row is the padded join-width row (locateGroup left it).
				for si := range d.prog().specs {
					sp := &d.prog().specs[si]
					if sp.arg == nil {
						continue
					}
					v, aerr := sp.arg(env)
					if aerr != nil {
						return fmt.Errorf("cube aggregate %s: %w", sp.str, aerr)
					}
					tot.parts[si].accumulate(v, int64(sign)*m)
				}
			}
			return nil
		}
		if err := apply(df.Ins, +1); err != nil {
			return relation.Delta{}, err
		}
		if err := apply(df.Del, -1); err != nil {
			return relation.Delta{}, err
		}
	}
	if !ds.Empty() {
		key := make(relation.Tuple, len(d.selKeys))
		bump := func(rows []relation.Tuple, by int64) error {
			for _, row := range rows {
				env.Row = row
				null, err := evalKeys(d.selKeys, d.selKRaw, key, env)
				if err != nil {
					return err
				}
				if null {
					continue
				}
				k := key.Key()
				n := d.mult[k] + by
				if n < 0 {
					return fmt.Errorf("cube selection: multiplicity went negative")
				}
				if n == 0 {
					delete(d.mult, k)
				} else {
					d.mult[k] = n
				}
			}
			return nil
		}
		if err := bump(ds.Ins, +1); err != nil {
			return relation.Delta{}, err
		}
		if err := bump(ds.Del, -1); err != nil {
			return relation.Delta{}, err
		}
		// A selection change re-derives every group's total from the tiles —
		// O(bins × groups) — which also absorbs any fact rows applied above.
		if d.fp == "" {
			t.ensurePrefix()
			d.stats.Builds += t.takeBuilds()
		}
		d.recomputeTotals(t)
		d.stats.Hits++
		d.stats.BinsAnswered += int64(len(t.groups))
		touched = touched[:0]
		for gi := range t.groups {
			touched = append(touched, int32(gi))
			d.totals[gi].touched = true
		}
	}
	var out relation.Delta
	for _, gi := range touched {
		tot := &d.totals[gi]
		tot.touched = false
		if tot.rows < 0 {
			return out, fmt.Errorf("cube totals: group row count went negative")
		}
		row, err := d.outputGroup(env, t, int(gi))
		if err != nil {
			return out, err
		}
		switch {
		case tot.emitted == nil && row == nil:
		case tot.emitted != nil && row != nil && tot.emitted.Equal(row):
		default:
			if tot.emitted != nil {
				out.Del = append(out.Del, tot.emitted)
			}
			if row != nil {
				out.Ins = append(out.Ins, row)
			}
			tot.emitted = row
		}
	}
	return out, nil
}

// recomputeTotals re-derives every group's weighted total from the tiles:
// through the prefix arrays when the selection is a contiguous multiplicity-1
// bin range (two subtractions per group), per selected bin otherwise.
func (d *dCube) recomputeTotals(t *cubeTiles) {
	usePrefix, lo, hi := d.selRange(t)
	for gi := range t.groups {
		tot := &d.totals[gi]
		if usePrefix && d.totalFromPrefix(t.groups[gi], tot, lo, hi) {
			continue
		}
		d.totalFromScan(t, t.groups[gi], tot)
	}
}

// selRange reports whether the current selection maps to a contiguous range
// [lo, hi] of sorted bin positions with multiplicity 1 everywhere (selected
// bins absent from the tiles hold no data and are ignored).
func (d *dCube) selRange(t *cubeTiles) (bool, int, int) {
	if !t.prefixBuilt || t.prefixDirty {
		return false, 0, 0
	}
	lo, hi, cnt := len(t.sorted), -1, 0
	for kstr, m := range d.mult {
		if m != 1 {
			return false, 0, 0
		}
		id, ok := t.bins[kstr]
		if !ok {
			continue
		}
		p := int(t.pos[id])
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
		cnt++
	}
	if cnt == 0 || hi-lo+1 != cnt {
		return false, 0, 0
	}
	return true, lo, hi
}

// totalFromPrefix answers one group from its prefix arrays. Returns false
// when the range contains non-integer sums (the compensated float total
// cannot be recovered by subtraction; the per-bin scan handles it exactly).
func (d *dCube) totalFromPrefix(g *cubeGroup, tot *cubeTotal, lo, hi int) bool {
	for s := range tot.parts {
		if g.prefNonInt[s][hi+1]-g.prefNonInt[s][lo] != 0 {
			return false
		}
	}
	tot.rows = g.prefRows[hi+1] - g.prefRows[lo]
	for s := range tot.parts {
		count := g.prefCount[s][hi+1] - g.prefCount[s][lo]
		sumI := g.prefSumI[s][hi+1] - g.prefSumI[s][lo]
		// All-integer range: the exact float sum is the integer sum.
		tot.parts[s] = cubePart{count: count, sumI: sumI, sumF: float64(sumI)}
	}
	return true
}

func (d *dCube) totalFromScan(t *cubeTiles, g *cubeGroup, tot *cubeTotal) {
	tot.rows = 0
	for s := range tot.parts {
		tot.parts[s] = cubePart{}
	}
	for kstr, m := range d.mult {
		id, ok := t.bins[kstr]
		if !ok {
			continue
		}
		c := g.cells[id]
		if c == nil {
			continue
		}
		tot.rows += m * c.rows
		for s := range tot.parts {
			tot.parts[s].combine(&c.parts[s], m)
		}
	}
}

// outputGroup computes the group's current output row (nil when HAVING drops
// it, or when a keyed group has no selected rows — the group is simply not in
// the output, exactly as dAggregate drops empty groups).
func (d *dCube) outputGroup(env *expr.Env, t *cubeTiles, gi int) (relation.Tuple, error) {
	prog := d.prog()
	g := t.groups[gi]
	tot := &d.totals[gi]
	if tot.rows == 0 && len(prog.groupBy) > 0 {
		return nil, nil
	}
	env.Row = g.rep
	if tot.rows == 0 {
		env.Row = nil // global group over zero rows: columns read as NULL
	}
	for si := range prog.specs {
		sp := &prog.specs[si]
		d.aggs[si] = tot.parts[si].result(sp.agg.Name, tot.rows, sp.agg.Arg == nil)
	}
	env.Aggs = d.aggs
	defer func() { env.Aggs = nil }()
	if prog.having != nil {
		hv, err := prog.having(env)
		if err != nil {
			return nil, fmt.Errorf("having: %w", err)
		}
		if hv.IsNull() || !hv.Truthy() {
			return nil, nil
		}
	}
	row := make(relation.Tuple, len(prog.items))
	for c, it := range prog.items {
		v, err := it(env)
		if err != nil {
			return nil, fmt.Errorf("cube output %s: %w", prog.itemStr[c], err)
		}
		row[c] = v
	}
	return row, nil
}

func (d *dCube) reset() {
	d.mult, d.totals = nil, nil
	if d.fp == "" {
		d.tiles = nil
		d.fact.reset()
	}
	// Shared attachments (and the donated fact subtree) survive resets, like
	// dJoin's shared sides: the tiles track shared base data, which a
	// session-local reset says nothing about.
	d.sel.reset()
}

// tileBytes reports the private tile memory this operator holds (shared
// tiles are accounted by the group's ApproxBytes).
func (d *dCube) tileBytes() int64 {
	if d.sc != nil {
		return 0
	}
	return d.tiles.approxBytes()
}

// takeBuilds drains the tiles' build counter.
func (t *cubeTiles) takeBuilds() int64 {
	n := t.builds
	t.builds = 0
	return n
}

// --- build-time wiring ---

// buildCube attempts the index-tile rewrite for an Aggregate directly over a
// pure equi-join whose grouping keys and aggregate arguments all read one
// side. Returns false (and the caller builds the ordinary dAggregate/dJoin
// pair) for every other shape.
func (db *deltaBuilder) buildCube(t *bAggregate) (dnode, bool) {
	if db.noCube || t.static == nil {
		return nil, false
	}
	j, ok := t.child.(*bJoin)
	if !ok || len(j.lks) == 0 || j.residual.raw != nil {
		return nil, false
	}
	info := plan.CubeEligibility(t.a)
	if !info.OK {
		return nil, false
	}
	var factB, selB bnode
	var factKeys, selKeys []expr.Compiled
	var factKRaw, selKRaw []expr.Expr
	fw, sw := j.lw, j.rw
	if info.FactLeft {
		factB, selB = j.l, j.r
		factKeys, selKeys = j.lks, j.rks
		factKRaw, selKRaw = j.lkRaw, j.rkRaw
	} else {
		factB, selB = j.r, j.l
		factKeys, selKeys = j.rks, j.lks
		factKRaw, selKRaw = j.rkRaw, j.lkRaw
		fw, sw = j.rw, j.lw
	}
	fact, ok := db.build(factB)
	if !ok {
		return nil, false
	}
	sel, ok := db.build(selB)
	if !ok {
		return nil, false
	}
	dc := &dCube{
		b: t,
		shape: cubeShape{
			prog:     t.static,
			factKeys: factKeys,
			factKRaw: factKRaw,
			factLeft: info.FactLeft,
			fw:       fw,
			sw:       sw,
		},
		fact:    fact,
		sel:     sel,
		selKeys: selKeys,
		selKRaw: selKRaw,
	}
	// Shared tiles: the fact subtree reads only shared relations, so the
	// cells are identical across sessions and register in the group. The
	// donated subtree must not itself attach to shared join sides (the outer
	// entry subsumes them; see clearSharedMarks).
	if fp, reads, ok := sideEligible(db.group, factB); ok {
		db.clearSharedMarks(fact)
		dc.group, dc.reads = db.group, reads
		dc.fp = fp + sideKey(factKRaw, true) + "|cube:" + cubeProgramFP(t, info.FactLeft, fw, sw)
		db.sharedCubes = append(db.sharedCubes, dc)
	}
	db.cubes = append(db.cubes, dc)
	return dc, true
}

// cubeProgramFP renders the aggregate program and padding geometry into the
// sharing key: tiles are reusable only across pipelines whose cells carry
// the same partials evaluated against the same join layout.
func cubeProgramFP(t *bAggregate, factLeft bool, fw, sw int) string {
	p := t.static
	hav := "<nil>"
	if t.a.Having != nil {
		hav = t.a.Having.String()
	}
	var specs []string
	for i := range p.specs {
		specs = append(specs, p.specs[i].str)
	}
	return fmt.Sprintf("agg[%s;%s;%s;%s;left=%t;%d+%d]",
		joinStrings(p.groupStr), joinStrings(specs), joinStrings(p.itemStr), hav, factLeft, fw, sw)
}

func joinStrings(s []string) string {
	out := ""
	for i, x := range s {
		if i > 0 {
			out += ","
		}
		out += x
	}
	return out
}
