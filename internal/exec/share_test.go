package exec

// Shared join build sides, driven entirely in-package: two sessions with
// private selections attach to one build-side state over the shared fact
// relation, the writer advances it once per base batch (including deletes
// and NULL join keys), sessions fan out reading the cached subtree delta,
// and release + sweep evicts. Every step is checked against a stateless
// recompute of the same plan.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/relation"
)

func TestSharedJoinSides(t *testing.T) {
	fact := relation.New("Fact", relation.NewSchema(
		relation.Col("bin", relation.KindInt),
		relation.Col("grp", relation.KindString),
		relation.Col("val", relation.KindInt),
	))
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 40; i++ {
		fact.MustAppend(randFactRow(rng))
	}
	newSel := func(bins ...int64) *relation.Relation {
		sel := relation.New("Sel", relation.NewSchema(relation.Col("bin", relation.KindInt)))
		for _, b := range bins {
			sel.MustAppend(relation.Tuple{relation.Int(b)})
		}
		return sel
	}
	selA, selB := newSel(1, 2, 3), newSel(8)
	catA := memCatalog{"fact": fact, "sel": selA}
	catB := memCatalog{"fact": fact, "sel": selB}
	g := NewShareGroup(func(name string) bool { return name == "fact" })

	// A plain join view (no aggregate): the fact side subtree — a filtered
	// scan, so the fingerprint walk sees more than a bare scan — indexes by
	// bin and is shared; the selection side stays private.
	sql := "SELECT f.grp AS grp, f.val AS val, s.bin AS bin FROM Fact AS f, Sel AS s WHERE f.bin = s.bin AND f.val >= 0"
	prepShared := func(cat memCatalog) *Prepared {
		t.Helper()
		q, err := parser.ParseQuery(sql)
		if err != nil {
			t.Fatal(err)
		}
		n, err := plan.Build(q, cat)
		if err != nil {
			t.Fatal(err)
		}
		funcs := expr.NewRegistry()
		n = plan.Optimize(n, funcs)
		p, err := PrepareShared(n, funcs, g)
		if err != nil {
			t.Fatal(err)
		}
		if !p.SharesState() || p.HasCube() {
			t.Fatalf("join pipeline: SharesState=%t HasCube=%t, want shared join without cube", p.SharesState(), p.HasCube())
		}
		return p
	}
	pA, pB := prepShared(catA), prepShared(catB)
	exA, exB := New(catA), New(catB)
	oracleA, oracleB := prepareCube(t, catA, sql, false), prepareCube(t, catB, sql, false)

	run := func(ex *Executor, p *Prepared) *relation.Relation {
		t.Helper()
		res, err := ex.RunStateful(p)
		if err != nil {
			t.Fatal(err)
		}
		out := relation.New("out", res.Rel.Schema)
		out.Rows = append([]relation.Tuple(nil), res.Rel.Rows...)
		return out
	}
	matA, matB := run(exA, pA), run(exB, pB)

	if st := g.Stats(); st.Builds != 1 || st.Reuses != 1 {
		t.Fatalf("side sharing: Builds=%d Reuses=%d, want one build + one reuse", st.Builds, st.Reuses)
	}
	if g.Sides() != 1 || g.SharedRows() == 0 || g.ApproxBytes() == 0 {
		t.Fatalf("shared accounting: sides=%d rows=%d bytes=%d", g.Sides(), g.SharedRows(), g.ApproxBytes())
	}

	check := func(step string, ex *Executor, oracle *Prepared, mat *relation.Relation) {
		t.Helper()
		want, err := ex.RunPrepared(oracle)
		if err != nil {
			t.Fatalf("%s: oracle: %v", step, err)
		}
		if !relation.Equal(mat, want.Rel) {
			t.Fatalf("%s: diverges from recompute\ngot:    %v\noracle: %v", step, mat.Rows, want.Rel.Rows)
		}
	}
	check("prime A", exA, oracleA, matA)
	check("prime B", exB, oracleB, matB)

	sessions := []struct {
		ex    *Executor
		p, o  *Prepared
		mat   *relation.Relation
		sel   *relation.Relation
		label string
	}{{exA, pA, oracleA, matA, selA, "A"}, {exB, pB, oracleB, matB, selB, "B"}}

	// Writer rounds: inserts, deletes, and NULL-key rows flow through the
	// shared state exactly once; both sessions consume the cached delta.
	for round := 0; round < 6; round++ {
		var df relation.Delta
		for j := 0; j < 3; j++ {
			df.Ins = append(df.Ins, randFactRow(rng))
		}
		df.Ins = append(df.Ins, relation.Tuple{relation.Null(), relation.String("a"), relation.Int(1)})
		if len(fact.Rows) > 2 {
			df.Del = append(df.Del, fact.Rows[0], fact.Rows[len(fact.Rows)/2])
		}
		if err := fact.ApplyDelta(df); err != nil {
			t.Fatal(err)
		}
		wex := New(memCatalog{"fact": fact})
		if err := g.Advance(wex, map[string]relation.Delta{"fact": df}, nil); err != nil {
			t.Fatalf("advance: %v", err)
		}
		for _, s := range sessions {
			od, err := s.ex.ApplyDelta(s.p, map[string]relation.Delta{"fact": df})
			if err != nil {
				t.Fatalf("session %s fan-out: %v", s.label, err)
			}
			if err := s.mat.ApplyDelta(od); err != nil {
				t.Fatalf("session %s output delta: %v", s.label, err)
			}
			check(fmt.Sprintf("advance %d session %s", round, s.label), s.ex, s.o, s.mat)
		}
		g.EndAdvance()
	}

	// Private selection churn probes the shared state under the read path.
	for ev := 0; ev < 20; ev++ {
		for _, s := range sessions {
			var d relation.Delta
			if len(s.sel.Rows) > 0 && rng.Intn(2) == 0 {
				d.Del = append(d.Del, s.sel.Rows[rng.Intn(len(s.sel.Rows))])
			}
			d.Ins = append(d.Ins, relation.Tuple{relation.Int(int64(rng.Intn(cubeBins)))})
			if err := s.sel.ApplyDelta(d); err != nil {
				t.Fatal(err)
			}
			od, err := s.ex.ApplyDelta(s.p, map[string]relation.Delta{"sel": d})
			if err != nil {
				t.Fatalf("session %s probe: %v", s.label, err)
			}
			if err := s.mat.ApplyDelta(od); err != nil {
				t.Fatalf("session %s output delta: %v", s.label, err)
			}
			check(fmt.Sprintf("probe %d session %s", ev, s.label), s.ex, s.o, s.mat)
		}
	}

	// Unknown base change: the writer rebuilds the side wholesale; sessions
	// re-prime against the fresh state.
	fact.Rows = fact.Rows[:len(fact.Rows)-2]
	wex := New(memCatalog{"fact": fact})
	if err := g.Advance(wex, nil, map[string]bool{"fact": true}); err != nil {
		t.Fatalf("rebuild advance: %v", err)
	}
	g.EndAdvance()
	if st := g.Stats(); st.Rebuilds != 1 {
		t.Fatalf("Rebuilds = %d, want 1", st.Rebuilds)
	}
	matA, matB = run(exA, pA), run(exB, pB)
	check("after rebuild A", exA, oracleA, matA)
	check("after rebuild B", exB, oracleB, matB)

	pA.ReleaseShared()
	pB.ReleaseShared()
	if n := g.Sweep(); n != 1 {
		t.Fatalf("Sweep() = %d, want 1 evicted side", n)
	}
	if g.Sides() != 0 {
		t.Fatalf("Sides() = %d after sweep, want 0", g.Sides())
	}
}
