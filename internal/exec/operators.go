package exec

// Bound operator execution. Every operator evaluates compiled expressions
// (expr.Compiled) over an expr.Env whose Row field is repointed per input
// row — no name resolution, no tree walks — and the hashing operators key
// their tables with Tuple.Hash/Tuple.Equal instead of per-row key strings.
// Output relations are preallocated from input cardinalities and output
// tuples are carved from value arenas.

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/relation"
)

// --- scan ---

type bScan struct {
	s *plan.Scan
}

func (b *bScan) run(ex *Executor) (*Result, error) {
	s := b.s
	if s.Name == "" { // constant SELECT: one empty row
		rel := relation.New("", relation.Schema{})
		rel.Rows = []relation.Tuple{{}}
		res := &Result{Rel: rel}
		if ex.CaptureLineage {
			res.Lin = []Lineage{{}}
		}
		return res, nil
	}
	src, err := ex.Cat.Resolve(s.Name, s.Version)
	if err != nil {
		return nil, err
	}
	out := &relation.Relation{
		Name:   s.Alias,
		Schema: src.Schema.Qualify(s.Alias),
		Rows:   src.Rows,
	}
	res := &Result{Rel: out}
	if ex.CaptureLineage {
		res.Lin = make([]Lineage, len(out.Rows))
		for i := range res.Lin {
			res.Lin[i] = Lineage{s.Name: []int{i}}
		}
	}
	return res, nil
}

// --- filter ---

type bFilter struct {
	child bnode
	pred  bexpr
	kern  filterKernel // columnar fast path for column-vs-literal predicates
}

func (b *bFilter) run(ex *Executor) (*Result, error) {
	in, err := b.child.run(ex)
	if err != nil {
		return nil, err
	}
	pred, err := b.pred.get(ex)
	if err != nil {
		return nil, err
	}
	// Filter output cardinality is unknown (often a small fraction of the
	// input); geometric append growth beats preallocating at input size.
	out := relation.New(in.Rel.Name, in.Rel.Schema)
	if !ex.CaptureLineage {
		// Lineage needs per-row input positions, which the batch drops.
		if rows, ok := b.kern.filterBatch(in.Rel.Rows, nil); ok {
			out.Rows = rows
			return &Result{Rel: out}, nil
		}
	}
	var lin []Lineage
	env := &expr.Env{}
	for i, row := range in.Rel.Rows {
		env.Row = row
		v, err := pred(env)
		if err != nil {
			return nil, fmt.Errorf("filter %s: %w", b.pred.String(), err)
		}
		if !v.IsNull() && v.Truthy() {
			out.Rows = append(out.Rows, row)
			if ex.CaptureLineage {
				lin = append(lin, in.Lin[i])
			}
		}
	}
	return &Result{Rel: out, Lin: lin}, nil
}

// --- project ---

type bProject struct {
	child     bnode
	outSchema relation.Schema
	items     []bexpr
	static    []expr.Compiled // set when every item compiled at prepare time
	cols      []int           // per item: input column index for bare columns, else -1
}

func (b *bProject) run(ex *Executor) (*Result, error) {
	in, err := b.child.run(ex)
	if err != nil {
		return nil, err
	}
	fns := b.static
	if fns == nil {
		fns = make([]expr.Compiled, len(b.items))
		for i := range b.items {
			fns[i], err = b.items[i].get(ex)
			if err != nil {
				return nil, err
			}
		}
	}
	out := relation.New("", b.outSchema)
	out.Rows = make([]relation.Tuple, 0, len(in.Rel.Rows))
	env := &expr.Env{}
	var arena valueArena
	arena.expect(len(in.Rel.Rows) * len(fns))
	for _, row := range in.Rel.Rows {
		env.Row = row
		t := arena.alloc(len(fns))
		for c, fn := range fns {
			if idx := b.cols[c]; idx >= 0 {
				t[c] = row[idx]
				continue
			}
			v, err := fn(env)
			if err != nil {
				return nil, fmt.Errorf("project %s: %w", b.items[c].String(), err)
			}
			t[c] = v
		}
		out.Rows = append(out.Rows, t)
	}
	return &Result{Rel: out, Lin: in.Lin}, nil
}

// --- join ---

type bJoin struct {
	l, r         bnode
	outSchema    relation.Schema // concat of the sides, fixed at prepare time
	lw, rw       int             // side widths
	lks, rks     []expr.Compiled // equi-key evaluators, bound to each side
	lkRaw, rkRaw []expr.Expr     // key expressions, for error text
	residual     bexpr
}

func (b *bJoin) run(ex *Executor) (*Result, error) {
	l, err := b.l.run(ex)
	if err != nil {
		return nil, err
	}
	r, err := b.r.run(ex)
	if err != nil {
		return nil, err
	}
	residual, err := b.residual.get(ex)
	if err != nil {
		return nil, err
	}
	out := relation.New("", b.outSchema)
	var lin []Lineage

	lw, rw := b.lw, b.rw
	var arena valueArena
	guess := len(l.Rel.Rows)
	if len(r.Rel.Rows) > guess {
		guess = len(r.Rel.Rows)
	}
	arena.expect(guess * (lw + rw))
	emit := func(li, ri int, lrow, rrow relation.Tuple) {
		t := arena.alloc(len(lrow) + len(rrow))
		copy(t, lrow)
		copy(t[len(lrow):], rrow)
		out.Rows = append(out.Rows, t)
		if ex.CaptureLineage {
			lin = append(lin, mergeLineage(l.Lin[li], r.Lin[ri]))
		}
	}
	env := &expr.Env{}
	// One scratch tuple serves every residual check; the concatenation is
	// only materialized for real when a pair survives and emit runs.
	scratch := make(relation.Tuple, 0, lw+rw)
	residualOK := func(lrow, rrow relation.Tuple) (bool, error) {
		if residual == nil {
			return true, nil
		}
		scratch = append(append(scratch[:0], lrow...), rrow...)
		env.Row = scratch
		v, err := residual(env)
		if err != nil {
			return false, fmt.Errorf("join predicate %s: %w", b.residual.String(), err)
		}
		return !v.IsNull() && v.Truthy(), nil
	}

	if len(b.lks) > 0 {
		// hash join: build on left, probe with right
		table := newJoinTable(len(l.Rel.Rows), len(b.lks))
		key := make(relation.Tuple, len(b.lks))
		for i, row := range l.Rel.Rows {
			env.Row = row
			null, err := evalKeys(b.lks, b.lkRaw, key, env)
			if err != nil {
				return nil, err
			}
			if null {
				continue // NULL join keys never match
			}
			table.insert(key, i)
		}
		out.Rows = make([]relation.Tuple, 0, len(r.Rel.Rows))
		for ri, rrow := range r.Rel.Rows {
			env.Row = rrow
			null, err := evalKeys(b.rks, b.rkRaw, key, env)
			if err != nil {
				return nil, err
			}
			if null {
				continue
			}
			for _, li := range table.probe(key) {
				ok, err := residualOK(l.Rel.Rows[li], rrow)
				if err != nil {
					return nil, err
				}
				if ok {
					emit(li, ri, l.Rel.Rows[li], rrow)
				}
			}
		}
	} else {
		for li, lrow := range l.Rel.Rows {
			for ri, rrow := range r.Rel.Rows {
				ok, err := residualOK(lrow, rrow)
				if err != nil {
					return nil, err
				}
				if ok {
					emit(li, ri, lrow, rrow)
				}
			}
		}
	}
	return &Result{Rel: out, Lin: lin}, nil
}

// evalKeys fills the scratch key tuple from the compiled key evaluators; a
// true first result means a NULL key (which never matches any row).
func evalKeys(fns []expr.Compiled, raw []expr.Expr, key relation.Tuple, env *expr.Env) (bool, error) {
	for i, fn := range fns {
		v, err := fn(env)
		if err != nil {
			return false, fmt.Errorf("join key %s: %w", raw[i].String(), err)
		}
		if v.IsNull() {
			return true, nil
		}
		key[i] = v
	}
	return false, nil
}

// --- aggregate ---

// aggState accumulates one aggregate call for one group. The full path only
// ever adds values; the delta path also removes them, which needs the
// distinct-value counts (vals) for DISTINCT semantics and for repairing
// min/max after the current extremum is deleted.
type aggState struct {
	count int64 // non-null values accumulated (after DISTINCT dedup)
	// sumF carries the running float sum with a Neumaier (improved Kahan)
	// compensation term sumC. Float addition is not associative, so the
	// delta path's add/remove order would otherwise drift from a fresh
	// recomputation's row-order sum in the low bits; the compensation
	// recovers the lost bits on both paths (SUM reads sumF + sumC).
	sumF   float64
	sumC   float64
	sumI   int64
	nonInt int64 // accumulated values not exactly representable as ints
	min, max relation.Value
	// vals counts occurrences per canonical value. Allocated when the spec
	// is DISTINCT (dedup) or when the caller asks for removal support.
	vals  map[relation.Value]int64
	dedup bool
}

// newAggState builds accumulate-only state (the full path). dedup marks a
// DISTINCT aggregate.
func newAggState(dedup bool) *aggState {
	st := &aggState{min: relation.Null(), max: relation.Null(), dedup: dedup}
	if dedup {
		st.vals = make(map[relation.Value]int64)
	}
	return st
}

// newDeltaAggState builds state that also supports remove. trackVals forces
// value counting even for non-DISTINCT specs (min/max repair).
func newDeltaAggState(dedup, trackVals bool) *aggState {
	st := newAggState(dedup)
	if trackVals && st.vals == nil {
		st.vals = make(map[relation.Value]int64)
	}
	return st
}

func (st *aggState) add(v relation.Value) {
	if v.IsNull() {
		return
	}
	if st.vals != nil {
		k := v.Key()
		st.vals[k]++
		if st.dedup && st.vals[k] > 1 {
			return
		}
	}
	st.count++
	if f, ok := v.AsFloat(); ok {
		st.addFloat(f)
		if v.Kind() == relation.KindInt {
			n, _ := v.AsInt()
			st.sumI += n
		} else {
			st.nonInt++
		}
	} else {
		st.nonInt++
	}
	if st.min.IsNull() || v.Compare(st.min) < 0 {
		st.min = v
	}
	if st.max.IsNull() || v.Compare(st.max) > 0 {
		st.max = v
	}
}

// remove undoes one add. It requires vals tracking when min/max repair may
// be needed; callers guarantee that by constructing delta states with
// trackVals for min/max specs.
func (st *aggState) remove(v relation.Value) error {
	if v.IsNull() {
		return nil
	}
	k := v.Key()
	if st.vals != nil {
		n := st.vals[k] - 1
		if n < 0 {
			return fmt.Errorf("aggregate state: removing value %s never added", v)
		}
		if n == 0 {
			delete(st.vals, k)
		} else {
			st.vals[k] = n
		}
		if st.dedup && n > 0 {
			return nil // other occurrences keep the distinct value alive
		}
	}
	st.count--
	if st.count < 0 {
		return fmt.Errorf("aggregate state: count went negative")
	}
	if f, ok := v.AsFloat(); ok {
		st.addFloat(-f)
		if v.Kind() == relation.KindInt {
			n, _ := v.AsInt()
			st.sumI -= n
		} else {
			st.nonInt--
		}
	} else {
		st.nonInt--
	}
	if st.count == 0 {
		// Exact reset: clears any residual float error for emptied groups.
		st.sumF, st.sumC, st.sumI, st.nonInt = 0, 0, 0, 0
		st.min, st.max = relation.Null(), relation.Null()
		return nil
	}
	// Repair min/max if the removed value was the extremum and is now gone.
	if st.vals != nil && st.vals[k] == 0 {
		if !st.min.IsNull() && st.min.Key() == k {
			st.min = st.rescan(-1)
		}
		if !st.max.IsNull() && st.max.Key() == k {
			st.max = st.rescan(+1)
		}
	}
	return nil
}

// addFloat folds f into the compensated running sum (Neumaier variant:
// unlike classic Kahan it also recovers bits when the addend is larger
// than the running sum, which removal makes common).
func (st *aggState) addFloat(f float64) {
	t := st.sumF + f
	if math.Abs(st.sumF) >= math.Abs(f) {
		st.sumC += (st.sumF - t) + f
	} else {
		st.sumC += (f - t) + st.sumF
	}
	st.sumF = t
}

// rescan finds the new extremum from the value counts (dir < 0: min).
func (st *aggState) rescan(dir int) relation.Value {
	best := relation.Null()
	for v := range st.vals {
		if best.IsNull() || dir*v.Compare(best) > 0 {
			best = v
		}
	}
	return best
}

func (st *aggState) result(name string, rowsInGroup int64, star bool) relation.Value {
	switch name {
	case "count":
		if star {
			return relation.Int(rowsInGroup)
		}
		return relation.Int(st.count)
	case "sum":
		if st.count == 0 {
			return relation.Null()
		}
		if st.nonInt == 0 {
			return relation.Int(st.sumI)
		}
		return relation.Float(st.sumF + st.sumC)
	case "avg":
		if st.count == 0 {
			return relation.Null()
		}
		return relation.Float((st.sumF + st.sumC) / float64(st.count))
	case "min":
		return st.min
	case "max":
		return st.max
	default:
		return relation.Null()
	}
}

type group struct {
	key     relation.Tuple
	rep     relation.Tuple
	rows    int64
	states  []*aggState
	lineage Lineage
}

type bAggregate struct {
	child    bnode
	a        *plan.Aggregate
	inSchema relation.Schema
	// static is the program compiled at prepare time; nil when some
	// expression needs per-execution subquery resolution first.
	static *aggProgram
}

func (b *bAggregate) run(ex *Executor) (*Result, error) {
	in, err := b.child.run(ex)
	if err != nil {
		return nil, err
	}
	prog := b.static
	if prog == nil {
		groupBy := make([]expr.Expr, len(b.a.GroupBy))
		for i, g := range b.a.GroupBy {
			if groupBy[i], err = ex.resolveExpr(g); err != nil {
				return nil, err
			}
		}
		items, err := ex.resolveItems(b.a.Items)
		if err != nil {
			return nil, err
		}
		having, err := ex.resolveExpr(b.a.Having)
		if err != nil {
			return nil, err
		}
		prog = compileAgg(groupBy, items, having, b.inSchema, ex.Funcs)
	}

	nk := len(prog.groupBy)
	env := &expr.Env{}
	key := make(relation.Tuple, nk)
	// Group count is unknown up front; batch key storage a few groups at a
	// time rather than one allocation per group.
	var keyArena valueArena
	keyArena.expect(16 * nk)
	groups := make(map[uint64][]*group)
	var order []*group
	newGroup := func(h uint64, rep relation.Tuple) *group {
		grp := &group{rep: rep, states: make([]*aggState, len(prog.specs))}
		if rep != nil {
			grp.key = keyArena.alloc(nk)
			copy(grp.key, key)
		}
		for si := range grp.states {
			grp.states[si] = newAggState(prog.specs[si].agg.Distinct)
		}
		if ex.CaptureLineage {
			grp.lineage = Lineage{}
		}
		groups[h] = append(groups[h], grp)
		order = append(order, grp)
		return grp
	}
	for i, row := range in.Rel.Rows {
		env.Row = row
		for gi, g := range prog.groupBy {
			if idx := prog.groupCols[gi]; idx >= 0 {
				key[gi] = row[idx]
				continue
			}
			v, err := g(env)
			if err != nil {
				return nil, fmt.Errorf("group by %s: %w", prog.groupStr[gi], err)
			}
			key[gi] = v
		}
		h := key.Hash()
		var grp *group
		for _, cand := range groups[h] {
			if cand.key.Equal(key) {
				grp = cand
				break
			}
		}
		if grp == nil {
			grp = newGroup(h, row)
		}
		grp.rows++
		for si := range prog.specs {
			sp := &prog.specs[si]
			if sp.arg == nil { // count(*)
				continue
			}
			var v relation.Value
			if sp.argCol >= 0 {
				v = row[sp.argCol]
			} else {
				var err error
				if v, err = sp.arg(env); err != nil {
					return nil, fmt.Errorf("aggregate %s: %w", sp.str, err)
				}
			}
			grp.states[si].add(v)
		}
		if ex.CaptureLineage {
			grp.lineage = mergeLineage(grp.lineage, in.Lin[i])
		}
	}

	// A global aggregate (no GROUP BY) over zero rows still yields one row;
	// its nil representative makes every column NULL.
	if len(order) == 0 && nk == 0 {
		newGroup(0, nil)
	}

	out := relation.New("", b.a.Schema())
	out.Rows = make([]relation.Tuple, 0, len(order))
	var lin []Lineage
	aggs := make([]relation.Value, len(prog.specs))
	env.Aggs = aggs
	var arena valueArena
	arena.expect(len(order) * len(prog.items))
	for _, grp := range order {
		env.Row = grp.rep
		for si := range prog.specs {
			sp := &prog.specs[si]
			aggs[si] = grp.states[si].result(sp.agg.Name, grp.rows, sp.agg.Arg == nil)
		}
		if prog.having != nil {
			hv, err := prog.having(env)
			if err != nil {
				return nil, fmt.Errorf("having: %w", err)
			}
			if hv.IsNull() || !hv.Truthy() {
				continue
			}
		}
		t := arena.alloc(len(prog.items))
		for c, it := range prog.items {
			v, err := it(env)
			if err != nil {
				return nil, fmt.Errorf("aggregate output %s: %w", prog.itemStr[c], err)
			}
			t[c] = v
		}
		out.Rows = append(out.Rows, t)
		if ex.CaptureLineage {
			lin = append(lin, grp.lineage)
		}
	}
	return &Result{Rel: out, Lin: lin}, nil
}

// --- sort / limit / distinct / set ops ---

type bSort struct {
	child  bnode
	s      *plan.Sort
	keys   []bexpr
	static []expr.Compiled // set when every key compiled at prepare time
}

func (b *bSort) run(ex *Executor) (*Result, error) {
	in, err := b.child.run(ex)
	if err != nil {
		return nil, err
	}
	fns := b.static
	if fns == nil {
		fns = make([]expr.Compiled, len(b.keys))
		for i := range b.keys {
			fns[i], err = b.keys[i].get(ex)
			if err != nil {
				return nil, err
			}
		}
	}
	type sortRow struct {
		row  relation.Tuple
		lin  Lineage
		keys relation.Tuple
	}
	rows := make([]sortRow, len(in.Rel.Rows))
	env := &expr.Env{}
	var keyArena valueArena
	keyArena.expect(len(in.Rel.Rows) * len(fns))
	for i, row := range in.Rel.Rows {
		env.Row = row
		kt := keyArena.alloc(len(fns))
		for ki, fn := range fns {
			v, err := fn(env)
			if err != nil {
				return nil, fmt.Errorf("order by %s: %w", b.keys[ki].String(), err)
			}
			kt[ki] = v
		}
		rows[i] = sortRow{row: row, keys: kt}
		if ex.CaptureLineage {
			rows[i].lin = in.Lin[i]
		}
	}
	// compareKeyedRows breaks key ties on the full tuple, so the output
	// order — and any LIMIT prefix over it — is a function of the row bag
	// alone, not of input order; the delta path's order-statistic tree
	// orders through the same function, so recomputes, deltas, and pixels
	// agree.
	desc := make([]bool, len(b.s.Keys))
	for ki := range b.s.Keys {
		desc[ki] = b.s.Keys[ki].Desc
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return compareKeyedRows(rows[i].keys, rows[j].keys, desc, rows[i].row, rows[j].row) < 0
	})
	out := relation.New(in.Rel.Name, in.Rel.Schema)
	out.Rows = make([]relation.Tuple, 0, len(rows))
	var lin []Lineage
	if ex.CaptureLineage {
		lin = make([]Lineage, 0, len(rows))
	}
	for _, r := range rows {
		out.Rows = append(out.Rows, r.row)
		if ex.CaptureLineage {
			lin = append(lin, r.lin)
		}
	}
	return &Result{Rel: out, Lin: lin}, nil
}

type bLimit struct {
	child bnode
	n     int
}

func (b *bLimit) run(ex *Executor) (*Result, error) {
	in, err := b.child.run(ex)
	if err != nil {
		return nil, err
	}
	n := b.n
	if n > len(in.Rel.Rows) {
		n = len(in.Rel.Rows)
	}
	out := relation.New(in.Rel.Name, in.Rel.Schema)
	res := &Result{Rel: out}
	if _, sorted := b.child.(*bSort); sorted || n == len(in.Rel.Rows) {
		// An ORDER BY child already fixed the order; a full-bag prefix is the
		// whole input either way.
		out.Rows = in.Rel.Rows[:n]
		if ex.CaptureLineage {
			res.Lin = in.Lin[:n]
		}
		return res, nil
	}
	// Bare LIMIT: pin the prefix to the deterministic full-tuple order so the
	// result is a function of the row bag, not of operator emission order —
	// the delta path maintains the same prefix with a zero-key order-statistic
	// tree. Sort an index permutation, not the rows themselves: a scan child
	// aliases the base relation's row storage.
	idx := make([]int, len(in.Rel.Rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool {
		return relation.CompareTuples(in.Rel.Rows[idx[x]], in.Rel.Rows[idx[y]]) < 0
	})
	out.Rows = make([]relation.Tuple, n)
	for i := 0; i < n; i++ {
		out.Rows[i] = in.Rel.Rows[idx[i]]
	}
	if ex.CaptureLineage {
		res.Lin = make([]Lineage, n)
		for i := 0; i < n; i++ {
			res.Lin[i] = in.Lin[idx[i]]
		}
	}
	return res, nil
}

type bDistinct struct {
	child bnode
}

func (b *bDistinct) run(ex *Executor) (*Result, error) {
	in, err := b.child.run(ex)
	if err != nil {
		return nil, err
	}
	out := relation.New(in.Rel.Name, in.Rel.Schema)
	out.Rows = make([]relation.Tuple, 0, len(in.Rel.Rows))
	var lin []Lineage
	table := newTupleTable(len(in.Rel.Rows))
	for i, row := range in.Rel.Rows {
		at, dup := table.getOrInsert(row)
		if dup {
			if ex.CaptureLineage {
				lin[at] = mergeLineage(lin[at], in.Lin[i])
			}
			continue
		}
		out.Rows = append(out.Rows, row)
		if ex.CaptureLineage {
			lin = append(lin, in.Lin[i])
		}
	}
	return &Result{Rel: out, Lin: lin}, nil
}

type bSetOp struct {
	l, r bnode
	kind plan.SetKind
	all  bool
}

func (b *bSetOp) run(ex *Executor) (*Result, error) {
	l, err := b.l.run(ex)
	if err != nil {
		return nil, err
	}
	r, err := b.r.run(ex)
	if err != nil {
		return nil, err
	}
	if l.Rel.Schema.Len() != r.Rel.Schema.Len() {
		return nil, fmt.Errorf("set operands are not union compatible")
	}
	out := relation.New("", l.Rel.Schema)
	var lin []Lineage
	switch b.kind {
	case plan.SetUnion:
		if b.all {
			out.Rows = make([]relation.Tuple, 0, len(l.Rel.Rows)+len(r.Rel.Rows))
			out.Rows = append(append(out.Rows, l.Rel.Rows...), r.Rel.Rows...)
			if ex.CaptureLineage {
				lin = append(append([]Lineage{}, l.Lin...), r.Lin...)
			}
			return &Result{Rel: out, Lin: lin}, nil
		}
		out.Rows = make([]relation.Tuple, 0, len(l.Rel.Rows)+len(r.Rel.Rows))
		table := newTupleTable(len(l.Rel.Rows) + len(r.Rel.Rows))
		add := func(rows []relation.Tuple, lins []Lineage) {
			for i, row := range rows {
				at, dup := table.getOrInsert(row)
				if dup {
					if ex.CaptureLineage {
						lin[at] = mergeLineage(lin[at], lins[i])
					}
					continue
				}
				out.Rows = append(out.Rows, row)
				if ex.CaptureLineage {
					lin = append(lin, lins[i])
				}
			}
		}
		add(l.Rel.Rows, l.Lin)
		add(r.Rel.Rows, r.Lin)
	case plan.SetMinus: // set semantics, as SQL EXCEPT
		right := newTupleTable(len(r.Rel.Rows))
		for _, row := range r.Rel.Rows {
			right.getOrInsert(row)
		}
		out.Rows = make([]relation.Tuple, 0, len(l.Rel.Rows))
		seen := newTupleTable(len(l.Rel.Rows))
		for i, row := range l.Rel.Rows {
			if _, drop := right.lookup(row); drop {
				continue
			}
			at, dup := seen.getOrInsert(row)
			if dup {
				if ex.CaptureLineage {
					lin[at] = mergeLineage(lin[at], l.Lin[i])
				}
				continue
			}
			out.Rows = append(out.Rows, row)
			if ex.CaptureLineage {
				lin = append(lin, l.Lin[i])
			}
		}
	default: // intersect (set semantics)
		right := newTupleTable(len(r.Rel.Rows))
		for _, row := range r.Rel.Rows {
			right.getOrInsert(row)
		}
		out.Rows = make([]relation.Tuple, 0, len(l.Rel.Rows))
		seen := newTupleTable(len(l.Rel.Rows))
		for i, row := range l.Rel.Rows {
			if _, keep := right.lookup(row); !keep {
				continue
			}
			at, dup := seen.getOrInsert(row)
			if dup {
				if ex.CaptureLineage {
					lin[at] = mergeLineage(lin[at], l.Lin[i])
				}
				continue
			}
			out.Rows = append(out.Rows, row)
			if ex.CaptureLineage {
				lin = append(lin, l.Lin[i])
			}
		}
	}
	return &Result{Rel: out, Lin: lin}, nil
}
