package exec

import (
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/relation"
)

// deltaCatalog builds random Sales/Regions relations with integral values
// (sums of integral floats are exact in any order, so incremental and full
// results compare bit-exactly).
func deltaCatalog(rng *rand.Rand, n int) memCatalog {
	cat := salesCatalog()
	sales := relation.New("Sales", cat["sales"].Schema)
	for i := 0; i < n; i++ {
		sales.MustAppend(randSalesRow(rng, int64(i+1)))
	}
	cat["sales"] = sales
	return cat
}

var deltaRegions = []string{"east", "west", "north", "south"}

func randSalesRow(rng *rand.Rand, id int64) relation.Tuple {
	return relation.Tuple{
		relation.Int(id),
		relation.String(deltaRegions[rng.Intn(len(deltaRegions))]),
		relation.Float(float64(rng.Intn(40) * 10)),
		relation.Float(float64(rng.Intn(21) - 10)),
	}
}

func prepareDelta(t *testing.T, cat memCatalog, sql string) (*Executor, *Prepared) {
	t.Helper()
	q, err := parser.ParseQuery(sql)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	funcs := expr.NewRegistry()
	p = plan.Optimize(p, funcs)
	prep, err := Prepare(p, funcs)
	if err != nil {
		t.Fatal(err)
	}
	return &Executor{Cat: cat, Funcs: funcs}, prep
}

// TestApplyDeltaMatchesFullRun replays random mutation batches on the Sales
// base table through the stateful pipeline of each query and checks, after
// every batch, that the incrementally maintained result equals a fresh full
// run over the mutated catalog.
func TestApplyDeltaMatchesFullRun(t *testing.T) {
	queries := []string{
		"SELECT region, revenue FROM Sales WHERE revenue > 150",
		"SELECT region, revenue * 2 AS rr, profit + 1 AS pp FROM Sales",
		"SELECT region, count(*) AS n, sum(revenue) AS s, avg(revenue) AS a FROM Sales GROUP BY region",
		"SELECT region, min(revenue) AS lo, max(revenue) AS hi FROM Sales GROUP BY region",
		"SELECT count(*) AS n, sum(profit) AS p, count(DISTINCT region) AS d FROM Sales",
		"SELECT DISTINCT region FROM Sales",
		"SELECT s.region, r.country, s.revenue FROM Sales AS s, Regions AS r WHERE s.region = r.name",
		"SELECT a.productId AS x, b.productId AS y FROM Sales AS a, Sales AS b WHERE a.revenue < b.revenue AND a.productId <= 4 AND b.productId <= 4",
		"SELECT region, sum(revenue) AS t FROM Sales GROUP BY region HAVING sum(revenue) > 400",
		"SELECT region FROM Sales UNION SELECT name FROM Regions",
		"SELECT region FROM Sales UNION ALL SELECT name FROM Regions",
		"SELECT name FROM Regions MINUS SELECT region FROM Sales WHERE revenue > 200",
		"SELECT name FROM Regions INTERSECT SELECT region FROM Sales",
	}
	for _, sql := range queries {
		t.Run(sql, func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			cat := deltaCatalog(rng, 12)
			ex, prep := prepareDelta(t, cat, sql)
			if !prep.DeltaSafe() {
				t.Fatalf("plan unexpectedly not delta-safe: %s", prep.DeltaReason())
			}
			res, err := ex.RunStateful(prep)
			if err != nil {
				t.Fatal(err)
			}
			inc := res.Rel.Snapshot()
			nextID := int64(1000)
			sales := cat["sales"]
			for round := 0; round < 25; round++ {
				var d relation.Delta
				for k := rng.Intn(3) + 1; k > 0; k-- {
					nextID++
					row := randSalesRow(rng, nextID)
					sales.Rows = append(sales.Rows, row)
					d.Ins = append(d.Ins, row)
				}
				for k := rng.Intn(3); k > 0 && len(sales.Rows) > 0; k-- {
					i := rng.Intn(len(sales.Rows))
					d.Del = append(d.Del, sales.Rows[i])
					sales.Rows = append(sales.Rows[:i], sales.Rows[i+1:]...)
				}
				out, err := ex.ApplyDelta(prep, map[string]relation.Delta{"sales": d})
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				if err := inc.ApplyDelta(out); err != nil {
					t.Fatalf("round %d: applying output delta: %v", round, err)
				}
				full, err := ex.RunPrepared(prep)
				if err != nil {
					t.Fatal(err)
				}
				if !relation.Equal(inc, full.Rel) {
					t.Fatalf("round %d: incremental result diverges from full run\nincremental:\n%s\nfull:\n%s",
						round, inc, full.Rel)
				}
			}
		})
	}
}

// TestApplyDeltaEmptyInputIsEmptyOutput checks the short-circuit: deltas on
// relations a plan never scans produce an empty output delta.
func TestApplyDeltaEmptyInputIsEmptyOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cat := deltaCatalog(rng, 8)
	ex, prep := prepareDelta(t, cat, "SELECT region, sum(revenue) AS s FROM Sales GROUP BY region")
	if _, err := ex.RunStateful(prep); err != nil {
		t.Fatal(err)
	}
	out, err := ex.ApplyDelta(prep, map[string]relation.Delta{
		"regions": {Ins: []relation.Tuple{{relation.String("x"), relation.String("Y")}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Empty() {
		t.Fatalf("delta on unscanned relation produced %s", out)
	}
}

// TestApplyDeltaInconsistentStateResets checks that a delete for a row the
// state never saw errors and unprimes the pipeline.
func TestApplyDeltaInconsistentStateResets(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cat := deltaCatalog(rng, 6)
	ex, prep := prepareDelta(t, cat, "SELECT region, count(*) AS n FROM Sales GROUP BY region")
	if _, err := ex.RunStateful(prep); err != nil {
		t.Fatal(err)
	}
	bogus := relation.Tuple{
		relation.Int(777), relation.String("nowhere"),
		relation.Float(1), relation.Float(1),
	}
	if _, err := ex.ApplyDelta(prep, map[string]relation.Delta{
		"sales": {Del: []relation.Tuple{bogus}},
	}); err == nil {
		t.Fatal("deleting a never-seen row should error")
	}
	if prep.Primed() {
		t.Fatal("pipeline should be unprimed after a delta error")
	}
	// Re-priming recovers.
	if _, err := ex.RunStateful(prep); err != nil {
		t.Fatal(err)
	}
	if !prep.Primed() {
		t.Fatal("RunStateful should re-prime")
	}
}

// TestNotDeltaSafeReasons spot-checks shapes that must fall back.
func TestNotDeltaSafeReasons(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cat := deltaCatalog(rng, 4)
	for _, sql := range []string{
		"SELECT region FROM Sales WHERE revenue > (SELECT min(revenue) FROM Sales)",
		"SELECT region FROM Sales WHERE region IN USRegions",
	} {
		_, prep := prepareDelta(t, cat, sql)
		if prep.DeltaSafe() {
			t.Errorf("%q should not be delta-safe", sql)
		} else if prep.DeltaReason() == "" {
			t.Errorf("%q should carry a reason", sql)
		}
	}
}

// TestRunStatefulMatchesRunPrepared: the priming run must produce the same
// bag as the stateless path.
func TestRunStatefulMatchesRunPrepared(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cat := deltaCatalog(rng, 20)
	for _, sql := range []string{
		"SELECT region, sum(revenue) AS s FROM Sales GROUP BY region",
		"SELECT s.region, r.country FROM Sales AS s, Regions AS r WHERE s.region = r.name",
		"SELECT DISTINCT region FROM Sales",
		"SELECT region FROM Sales MINUS SELECT name FROM Regions",
	} {
		ex, prep := prepareDelta(t, cat, sql)
		st, err := ex.RunStateful(prep)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := ex.RunPrepared(prep)
		if err != nil {
			t.Fatal(err)
		}
		if !relation.Equal(st.Rel, pl.Rel) {
			t.Errorf("%q: stateful run diverges from prepared run", sql)
		}
	}
}

// TestKahanCompensatedFloatSum: the incremental aggregate state keeps a
// Neumaier compensation term, so an add/remove sequence whose naive float
// sum loses low bits still lands exactly on the recomputed value. The
// sequence below is the classic catastrophic case: 1 + 1e16 - 1e16 = 0
// under naive double summation.
func TestKahanCompensatedFloatSum(t *testing.T) {
	st := newDeltaAggState(false, false)
	st.add(relation.Float(1.0))
	st.add(relation.Float(1e16))
	if err := st.remove(relation.Float(1e16)); err != nil {
		t.Fatal(err)
	}
	got := st.result("sum", 1, false)
	f, _ := got.AsFloat()
	if f != 1.0 {
		t.Fatalf("compensated sum = %v, want exactly 1", got)
	}
	// Many small magnitudes against a large one: compensation keeps the
	// running sum exact after the large value leaves.
	st2 := newDeltaAggState(false, false)
	for i := 0; i < 100; i++ {
		st2.add(relation.Float(0.125)) // exactly representable
	}
	st2.add(relation.Float(1e18))
	if err := st2.remove(relation.Float(1e18)); err != nil {
		t.Fatal(err)
	}
	f2, _ := st2.result("sum", 100, false).AsFloat()
	if f2 != 12.5 {
		t.Fatalf("compensated sum = %v, want exactly 12.5", f2)
	}
	// avg reads the compensated sum too.
	fa, _ := st2.result("avg", 100, false).AsFloat()
	if fa != 0.125 {
		t.Fatalf("compensated avg = %v, want exactly 0.125", fa)
	}
}
