package exec

// Randomized parity for the data-cube subsystem: cube-backed pipelines
// (dCube replacing dAggregate-over-dJoin) are driven with random fact
// inserts/deletes, selection churn with duplicate bins, contiguous brush
// ranges (the prefix-sum path), NULL join keys, and NULL aggregate
// arguments — and after every event the maintained output must equal a full
// recomputation (RunPrepared, the stateless arm of the same plan). Values
// are integers so both paths are bit-exact: float addition order differs
// between per-bin tiles and row-order recomputation, but integer sums below
// 2^53 are exact either way.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/relation"
)

// cubeCatalog holds a fact relation (binned, grouped, valued) and a small
// selection relation the brush churns.
func cubeCatalog() (memCatalog, *relation.Relation, *relation.Relation) {
	fact := relation.New("Fact", relation.NewSchema(
		relation.Col("bin", relation.KindInt),
		relation.Col("grp", relation.KindString),
		relation.Col("val", relation.KindInt),
	))
	sel := relation.New("Sel", relation.NewSchema(
		relation.Col("bin", relation.KindInt),
	))
	return memCatalog{"fact": fact, "sel": sel}, fact, sel
}

var cubeGrps = []string{"a", "b", "c"}

const cubeBins = 12

// randFactRow draws from tight domains so bin and group collisions are
// constant; NULL bins (which never join) and NULL values (which aggregates
// skip) appear regularly.
func randFactRow(rng *rand.Rand) relation.Tuple {
	bin := relation.Int(int64(rng.Intn(cubeBins)))
	if rng.Intn(16) == 0 {
		bin = relation.Null()
	}
	val := relation.Int(int64(rng.Intn(10)))
	if rng.Intn(16) == 0 {
		val = relation.Null()
	}
	return relation.Tuple{bin, relation.String(cubeGrps[rng.Intn(len(cubeGrps))]), val}
}

func prepareCube(t *testing.T, cat memCatalog, sql string, wantCube bool) *Prepared {
	t.Helper()
	q, err := parser.ParseQuery(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	n, err := plan.Build(q, cat)
	if err != nil {
		t.Fatalf("build %q: %v", sql, err)
	}
	funcs := expr.NewRegistry()
	n = plan.Optimize(n, funcs)
	p, err := Prepare(n, funcs)
	if err != nil {
		t.Fatalf("prepare %q: %v", sql, err)
	}
	if !p.DeltaSafe() {
		t.Fatalf("%q should be delta-safe, reason: %s", sql, p.DeltaReason())
	}
	if p.HasCube() != wantCube {
		t.Fatalf("%q: HasCube = %t, want %t", sql, p.HasCube(), wantCube)
	}
	return p
}

func TestCubeDeltaParityWithRecompute(t *testing.T) {
	programs := []struct {
		name string
		sql  string
	}{
		{"grouped-count-sum-avg", "SELECT f.grp AS grp, count(*) AS n, sum(f.val) AS total, avg(f.val) AS mean FROM Fact AS f, Sel AS s WHERE f.bin = s.bin GROUP BY f.grp"},
		{"global-no-groupby", "SELECT count(*) AS n, sum(f.val) AS total FROM Fact AS f, Sel AS s WHERE f.bin = s.bin"},
		{"fact-on-right", "SELECT f.grp AS grp, sum(f.val) AS total FROM Sel AS s, Fact AS f WHERE s.bin = f.bin GROUP BY f.grp"},
		{"having", "SELECT f.grp AS grp, count(*) AS n FROM Fact AS f, Sel AS s WHERE f.bin = s.bin GROUP BY f.grp HAVING count(*) > 2"},
		{"expr-arg", "SELECT f.grp AS grp, sum(f.val * 2) AS twice, count(f.val) AS nonnull FROM Fact AS f, Sel AS s WHERE f.bin = s.bin GROUP BY f.grp"},
	}
	for _, pr := range programs {
		t.Run(pr.name, func(t *testing.T) {
			cat, fact, sel := cubeCatalog()
			rng := rand.New(rand.NewSource(71))
			for i := 0; i < 40; i++ {
				fact.MustAppend(randFactRow(rng))
			}
			sel.MustAppend(relation.Tuple{relation.Int(3)})
			sel.MustAppend(relation.Tuple{relation.Int(4)})

			live := prepareCube(t, cat, pr.sql, true)
			oracle := prepareCube(t, cat, pr.sql, true) // stateless arm of the same plan
			ex := New(cat)

			res, err := ex.RunStateful(live)
			if err != nil {
				t.Fatal(err)
			}
			mat := relation.New("out", res.Rel.Schema)
			mat.Rows = append([]relation.Tuple(nil), res.Rel.Rows...)

			check := func(step string) {
				t.Helper()
				want, err := ex.RunPrepared(oracle)
				if err != nil {
					t.Fatalf("%s: oracle: %v", step, err)
				}
				if !relation.Equal(mat, want.Rel) {
					t.Fatalf("%s: cube output diverges from recompute\ngot:    %v\noracle: %v", step, mat.Rows, want.Rel.Rows)
				}
			}
			check("after priming")

			apply := func(step string, df, ds relation.Delta) {
				t.Helper()
				if err := fact.ApplyDelta(df); err != nil {
					t.Fatalf("%s: fact apply: %v", step, err)
				}
				if err := sel.ApplyDelta(ds); err != nil {
					t.Fatalf("%s: sel apply: %v", step, err)
				}
				od, err := ex.ApplyDelta(live, map[string]relation.Delta{"fact": df, "sel": ds})
				if err != nil {
					t.Fatalf("%s: pipeline: %v", step, err)
				}
				if err := mat.ApplyDelta(od); err != nil {
					t.Fatalf("%s: output delta does not apply: %v", step, err)
				}
				check(step)
			}

			selBins := func() []relation.Tuple {
				return append([]relation.Tuple(nil), sel.Rows...)
			}

			for ev := 0; ev < 200; ev++ {
				step := fmt.Sprintf("event %d", ev)
				switch op := rng.Intn(12); {
				case op < 3: // fact insert
					apply(step, relation.Delta{Ins: []relation.Tuple{randFactRow(rng)}}, relation.Delta{})
				case op < 5 && len(fact.Rows) > 0: // fact delete
					row := fact.Rows[rng.Intn(len(fact.Rows))]
					apply(step, relation.Delta{Del: []relation.Tuple{row}}, relation.Delta{})
				case op < 7: // selection insert — duplicates allowed (multiplicity > 1)
					apply(step, relation.Delta{}, relation.Delta{Ins: []relation.Tuple{{relation.Int(int64(rng.Intn(cubeBins)))}}})
				case op < 8 && len(sel.Rows) > 0: // selection delete
					row := sel.Rows[rng.Intn(len(sel.Rows))]
					apply(step, relation.Delta{}, relation.Delta{Del: []relation.Tuple{row}})
				case op < 10: // brush move: replace the selection with a contiguous range
					lo := rng.Intn(cubeBins)
					hi := lo + rng.Intn(cubeBins-lo)
					var ins []relation.Tuple
					for b := lo; b <= hi; b++ {
						ins = append(ins, relation.Tuple{relation.Int(int64(b))})
					}
					apply(step+" (brush)", relation.Delta{}, relation.Delta{Del: selBins(), Ins: ins})
				default: // mixed batch: fact and selection change in one delta
					var df relation.Delta
					for j := 0; j < 3; j++ {
						df.Ins = append(df.Ins, randFactRow(rng))
					}
					if len(fact.Rows) > 1 {
						df.Del = append(df.Del, fact.Rows[0], fact.Rows[len(fact.Rows)-1])
					}
					ds := relation.Delta{Ins: []relation.Tuple{{relation.Int(int64(rng.Intn(cubeBins)))}}}
					apply(step+" (mixed)", df, ds)
				}
			}

			// Drain the selection, then the fact side, to empty.
			apply("drain selection", relation.Delta{}, relation.Delta{Del: selBins()})
			for len(fact.Rows) > 0 {
				row := fact.Rows[len(fact.Rows)-1]
				apply("drain fact", relation.Delta{Del: []relation.Tuple{row}}, relation.Delta{})
			}

			st := live.TakeCubeStats()
			if st.Builds == 0 || st.Hits == 0 {
				t.Fatalf("cube stats not accumulated: %+v", st)
			}
			if again := live.TakeCubeStats(); again != (CubeStats{}) {
				t.Fatalf("TakeCubeStats did not drain: %+v", again)
			}
		})
	}
}

// TestCubePrefixPath pins the two answer paths: a contiguous multiplicity-1
// selection goes through the prefix-sum arrays; duplicate bins (multiplicity
// 2) or a gap force the per-bin scan. Both must agree with recomputation —
// the randomized wall covers that — so here we assert which path is active.
func TestCubePrefixPath(t *testing.T) {
	cat, fact, sel := cubeCatalog()
	for b := 0; b < 8; b++ {
		fact.MustAppend(relation.Tuple{relation.Int(int64(b)), relation.String(cubeGrps[b%3]), relation.Int(int64(b * 10))})
	}
	sql := "SELECT f.grp AS grp, sum(f.val) AS total FROM Fact AS f, Sel AS s WHERE f.bin = s.bin GROUP BY f.grp"
	live := prepareCube(t, cat, sql, true)
	ex := New(cat)
	if _, err := ex.RunStateful(live); err != nil {
		t.Fatal(err)
	}
	dc := live.cubes[0]

	brush := func(bins ...int64) {
		t.Helper()
		var d relation.Delta
		d.Del = append(d.Del, sel.Rows...)
		for _, b := range bins {
			d.Ins = append(d.Ins, relation.Tuple{relation.Int(b)})
		}
		if err := sel.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
		if _, err := ex.ApplyDelta(live, map[string]relation.Delta{"sel": d}); err != nil {
			t.Fatal(err)
		}
	}

	brush(2, 3, 4)
	tiles := dc.curTiles()
	if !tiles.prefixBuilt {
		t.Fatal("first brush did not build the prefix arrays")
	}
	if ok, lo, hi := dc.selRange(tiles); !ok || hi-lo != 2 {
		t.Fatalf("contiguous brush not answered by range: ok=%t lo=%d hi=%d", ok, lo, hi)
	}

	brush(2, 3, 3) // duplicate bin: multiplicity 2
	if ok, _, _ := dc.selRange(tiles); ok {
		t.Fatal("duplicate-bin selection must not take the prefix path")
	}

	brush(1, 5) // gap
	if ok, _, _ := dc.selRange(tiles); ok {
		t.Fatal("gapped selection must not take the prefix path")
	}

	// A fact change dirties the prefix; the next selection change rebuilds.
	df := relation.Delta{Ins: []relation.Tuple{{relation.Int(6), relation.String("a"), relation.Int(5)}}}
	if err := fact.ApplyDelta(df); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.ApplyDelta(live, map[string]relation.Delta{"fact": df}); err != nil {
		t.Fatal(err)
	}
	if !tiles.prefixDirty {
		t.Fatal("fact delta should dirty the prefix arrays")
	}
	brush(5, 6)
	if ok, _, _ := dc.selRange(dc.curTiles()); !ok {
		t.Fatal("brush after fact change should rebuild the prefix and use it")
	}

	if live.CubeBytes() == 0 || dc.tileBytes() == 0 {
		t.Fatal("tile memory accounting reports zero for live tiles")
	}
}

// TestCubeIneligibleFallbacks pins the shapes that must NOT take the cube
// path — they stay on the ordinary delta pipeline and still answer exactly.
func TestCubeIneligibleFallbacks(t *testing.T) {
	programs := []struct {
		name string
		sql  string
	}{
		{"min", "SELECT f.grp AS grp, min(f.val) AS m FROM Fact AS f, Sel AS s WHERE f.bin = s.bin GROUP BY f.grp"},
		{"max", "SELECT f.grp AS grp, max(f.val) AS m FROM Fact AS f, Sel AS s WHERE f.bin = s.bin GROUP BY f.grp"},
		{"count-distinct", "SELECT f.grp AS grp, count(DISTINCT f.val) AS m FROM Fact AS f, Sel AS s WHERE f.bin = s.bin GROUP BY f.grp"},
		{"residual-predicate", "SELECT f.grp AS grp, count(*) AS n FROM Fact AS f, Sel AS s WHERE f.bin = s.bin AND f.val > s.bin GROUP BY f.grp"},
		{"groups-read-both-sides", "SELECT f.grp AS grp, s.bin AS b, count(*) AS n FROM Fact AS f, Sel AS s WHERE f.bin = s.bin GROUP BY f.grp, s.bin"},
	}
	for _, pr := range programs {
		t.Run(pr.name, func(t *testing.T) {
			cat, fact, sel := cubeCatalog()
			rng := rand.New(rand.NewSource(9))
			for i := 0; i < 30; i++ {
				fact.MustAppend(randFactRow(rng))
			}
			for b := 2; b <= 6; b++ {
				sel.MustAppend(relation.Tuple{relation.Int(int64(b))})
			}
			live := prepareCube(t, cat, pr.sql, false) // fallback: no cube
			ex := New(cat)
			res, err := ex.RunStateful(live)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ex.RunPrepared(prepareCube(t, cat, pr.sql, false))
			if err != nil {
				t.Fatal(err)
			}
			if !relation.Equal(res.Rel, want.Rel) {
				t.Fatalf("fallback pipeline diverges from recompute\ngot:    %v\noracle: %v", res.Rel.Rows, want.Rel.Rows)
			}
			if st := live.TakeCubeStats(); st != (CubeStats{}) {
				t.Fatalf("fallback pipeline accumulated cube stats: %+v", st)
			}
		})
	}
}

// TestCubeSharedTiles exercises the multi-client path: two sessions over the
// same shared fact relation (but private selections) attach to one tile
// build; the writer advances the tiles once per base batch; sessions brush
// independently; release + sweep evicts.
func TestCubeSharedTiles(t *testing.T) {
	fact := relation.New("Fact", relation.NewSchema(
		relation.Col("bin", relation.KindInt),
		relation.Col("grp", relation.KindString),
		relation.Col("val", relation.KindInt),
	))
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		fact.MustAppend(randFactRow(rng))
	}
	newSel := func() *relation.Relation {
		return relation.New("Sel", relation.NewSchema(relation.Col("bin", relation.KindInt)))
	}
	selA, selB := newSel(), newSel()
	for b := 1; b <= 4; b++ {
		selA.MustAppend(relation.Tuple{relation.Int(int64(b))})
	}
	selB.MustAppend(relation.Tuple{relation.Int(7)})
	catA := memCatalog{"fact": fact, "sel": selA}
	catB := memCatalog{"fact": fact, "sel": selB}
	g := NewShareGroup(func(name string) bool { return name == "fact" })

	sql := "SELECT f.grp AS grp, count(*) AS n, sum(f.val) AS total FROM Fact AS f, Sel AS s WHERE f.bin = s.bin GROUP BY f.grp"
	prepShared := func(cat memCatalog) *Prepared {
		t.Helper()
		q, err := parser.ParseQuery(sql)
		if err != nil {
			t.Fatal(err)
		}
		n, err := plan.Build(q, cat)
		if err != nil {
			t.Fatal(err)
		}
		funcs := expr.NewRegistry()
		n = plan.Optimize(n, funcs)
		p, err := PrepareShared(n, funcs, g)
		if err != nil {
			t.Fatal(err)
		}
		if !p.HasCube() || !p.SharesState() {
			t.Fatalf("shared pipeline: HasCube=%t SharesState=%t", p.HasCube(), p.SharesState())
		}
		return p
	}
	pA, pB := prepShared(catA), prepShared(catB)
	exA, exB := New(catA), New(catB)
	oracleA, oracleB := prepareCube(t, catA, sql, true), prepareCube(t, catB, sql, true)

	run := func(ex *Executor, p *Prepared) *relation.Relation {
		t.Helper()
		res, err := ex.RunStateful(p)
		if err != nil {
			t.Fatal(err)
		}
		out := relation.New("out", res.Rel.Schema)
		out.Rows = append([]relation.Tuple(nil), res.Rel.Rows...)
		return out
	}
	matA, matB := run(exA, pA), run(exB, pB)

	if st := g.Stats(); st.Builds != 1 || st.Reuses != 1 {
		t.Fatalf("tile sharing: Builds=%d Reuses=%d, want one build + one reuse", st.Builds, st.Reuses)
	}
	if g.Sides() != 1 {
		t.Fatalf("Sides() = %d, want 1 shared cube entry", g.Sides())
	}
	if g.SharedRows() == 0 || g.ApproxBytes() == 0 {
		t.Fatalf("shared accounting empty: rows=%d bytes=%d", g.SharedRows(), g.ApproxBytes())
	}
	if pA.CubeBytes() != 0 {
		t.Fatalf("shared tiles must not count as private memory, got %d bytes", pA.CubeBytes())
	}

	check := func(step string, ex *Executor, oracle *Prepared, mat *relation.Relation) {
		t.Helper()
		want, err := ex.RunPrepared(oracle)
		if err != nil {
			t.Fatalf("%s: oracle: %v", step, err)
		}
		if !relation.Equal(mat, want.Rel) {
			t.Fatalf("%s: diverges from recompute\ngot:    %v\noracle: %v", step, mat.Rows, want.Rel.Rows)
		}
	}
	check("prime A", exA, oracleA, matA)
	check("prime B", exB, oracleB, matB)

	// Writer advance: base-data batch applied to the shared tiles once, then
	// fanned out to both sessions.
	for round := 0; round < 5; round++ {
		var df relation.Delta
		for j := 0; j < 4; j++ {
			df.Ins = append(df.Ins, randFactRow(rng))
		}
		if len(fact.Rows) > 2 {
			df.Del = append(df.Del, fact.Rows[0], fact.Rows[len(fact.Rows)/2])
		}
		if err := fact.ApplyDelta(df); err != nil {
			t.Fatal(err)
		}
		wex := New(memCatalog{"fact": fact})
		if err := g.Advance(wex, map[string]relation.Delta{"fact": df}, nil); err != nil {
			t.Fatalf("advance: %v", err)
		}
		for _, s := range []struct {
			ex     *Executor
			p, o   *Prepared
			mat    *relation.Relation
			label  string
		}{{exA, pA, oracleA, matA, "A"}, {exB, pB, oracleB, matB, "B"}} {
			od, err := s.ex.ApplyDelta(s.p, map[string]relation.Delta{"fact": df})
			if err != nil {
				t.Fatalf("session %s fan-out: %v", s.label, err)
			}
			if err := s.mat.ApplyDelta(od); err != nil {
				t.Fatalf("session %s output delta: %v", s.label, err)
			}
			check(fmt.Sprintf("advance %d session %s", round, s.label), s.ex, s.o, s.mat)
		}
		g.EndAdvance()
	}

	// Private brushes: each session churns its own selection; the shared
	// tiles are only read.
	for ev := 0; ev < 30; ev++ {
		brush := func(sel *relation.Relation, ex *Executor, p, o *Prepared, mat *relation.Relation, label string) {
			t.Helper()
			lo := rng.Intn(cubeBins)
			hi := lo + rng.Intn(cubeBins-lo)
			var d relation.Delta
			d.Del = append(d.Del, sel.Rows...)
			for b := lo; b <= hi; b++ {
				d.Ins = append(d.Ins, relation.Tuple{relation.Int(int64(b))})
			}
			if err := sel.ApplyDelta(d); err != nil {
				t.Fatal(err)
			}
			od, err := ex.ApplyDelta(p, map[string]relation.Delta{"sel": d})
			if err != nil {
				t.Fatalf("session %s brush: %v", label, err)
			}
			if err := mat.ApplyDelta(od); err != nil {
				t.Fatalf("session %s output delta: %v", label, err)
			}
			check(fmt.Sprintf("brush %d session %s", ev, label), ex, o, mat)
		}
		brush(selA, exA, pA, oracleA, matA, "A")
		brush(selB, exB, pB, oracleB, matB, "B")
	}
	if st := pA.TakeCubeStats(); st.Hits == 0 {
		t.Fatalf("session A brushed %d times but recorded no cube hits", 30)
	}

	// Unknown base change: the writer rebuilds the tiles wholesale and
	// sessions re-prime (the server hands them a forced recompute).
	fact.Rows = fact.Rows[:len(fact.Rows)-3]
	wex := New(memCatalog{"fact": fact})
	if err := g.Advance(wex, nil, map[string]bool{"fact": true}); err != nil {
		t.Fatalf("rebuild advance: %v", err)
	}
	g.EndAdvance()
	if st := g.Stats(); st.Rebuilds != 1 {
		t.Fatalf("Rebuilds = %d, want 1", st.Rebuilds)
	}
	matA, matB = run(exA, pA), run(exB, pB)
	check("after rebuild A", exA, oracleA, matA)
	check("after rebuild B", exB, oracleB, matB)

	// Detach both sessions; the tile store is swept away.
	pA.ReleaseShared()
	pB.ReleaseShared()
	if n := g.Sweep(); n != 1 {
		t.Fatalf("Sweep() = %d, want 1 evicted cube entry", n)
	}
	if g.Sides() != 0 {
		t.Fatalf("Sides() = %d after sweep, want 0", g.Sides())
	}
}
