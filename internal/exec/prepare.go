package exec

// Plan binding. Prepare walks a logical plan once and produces a tree of
// bound operators whose expressions are compiled against the operators'
// static input schemas (plan.Node.Schema). Expressions free of subqueries
// and unresolved IN sources — the interaction hot path — compile exactly
// once, at prepare time; the rest are re-resolved against the live catalog
// and bound at the start of each execution (still once per execution, never
// per row).

import (
	"fmt"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/relation"
)

// Prepared is a plan compiled against its input schemas, ready to run many
// times. It holds per-operator scratch buffers, so a Prepared must not be
// executed concurrently with itself.
//
// Delta-safe plans (plan.DeltaSafety) additionally carry a stateful delta
// pipeline: RunStateful primes it with a full run, after which ApplyDelta
// turns input deltas into output deltas at cost proportional to the change.
type Prepared struct {
	root bnode
	src  plan.Node

	droot       dnode  // stateful delta pipeline; nil when not delta-safe
	deltaReason string // why droot is nil
	primed      bool   // whether droot holds state consistent with the catalog

	dsorts  []*dSort // order-statistic operators inside droot, in build order
	ordRoot *dSort   // droot itself when the plan's root is ORDER BY [LIMIT]

	// group/sharedJoins/sharedCubes carry the multi-client state-sharing
	// attachment: joins (and cube tile stores) inside droot whose shared
	// state lives in the group registry (PrepareShared). RunStateful/
	// ApplyDelta take the group lock around pipeline work when either list
	// is non-empty; ReleaseShared drops the refcounted attachments when the
	// owning session detaches.
	group       *ShareGroup
	sharedJoins []*dJoin
	sharedCubes []*dCube

	// cubes lists every data-cube operator in droot (shared or private), for
	// stats draining and tile-memory accounting.
	cubes []*dCube

	// estats collects the fused/columnar counters for the whole delta tree.
	// Atomic access: shared-side subtrees advance under the group lock while
	// TakeExecStats drains under the engine lock.
	estats *ExecStats
}

// Plan returns the underlying logical plan (EXPLAIN-style output).
func (p *Prepared) Plan() plan.Node { return p.src }

// DeltaSafe reports whether the plan admits incremental delta propagation.
func (p *Prepared) DeltaSafe() bool { return p.droot != nil }

// DeltaReason explains why the plan is not delta-safe ("" when it is).
func (p *Prepared) DeltaReason() string { return p.deltaReason }

// Primed reports whether the delta pipeline holds state consistent with the
// catalog (set by RunStateful, cleared by ResetState and by errors).
func (p *Prepared) Primed() bool { return p.primed }

// ResetState drops all delta-pipeline operator state, keeping the compiled
// evaluators. Call it when the catalog changes behind the pipeline's back
// (rollback, undo, version restore); the next RunStateful re-primes.
func (p *Prepared) ResetState() {
	p.primed = false
	if p.droot != nil {
		p.droot.reset()
	}
}

// bnode is one bound operator.
type bnode interface {
	run(ex *Executor) (*Result, error)
}

// Prepare binds a logical plan for repeated execution. Binding never
// consults relation contents, only schemas, so a Prepared stays valid as
// data changes; it is invalidated only when a referenced schema changes
// (view redefinition — the engine handles that).
func Prepare(n plan.Node, funcs *expr.Registry) (*Prepared, error) {
	return PrepareShared(n, funcs, nil)
}

// PrepareShared is Prepare for pipelines hosted behind a multi-client
// server: join build sides whose input subtree reads only the group's
// shared relations attach to the group's refcounted state registry instead
// of indexing their own copy. A nil group is plain single-tenant Prepare.
func PrepareShared(n plan.Node, funcs *expr.Registry, group *ShareGroup) (*Prepared, error) {
	return PrepareWithOptions(n, funcs, PrepareOptions{Group: group})
}

// PrepareOptions tunes delta-pipeline construction.
type PrepareOptions struct {
	// Group attaches eligible shared state to this registry (PrepareShared).
	Group *ShareGroup
	// NoCube skips the data-cube index-tile rewrite, leaving eligible
	// aggregates on the ordinary dAggregate/dJoin pipeline. Benchmarks use it
	// as the pre-cube baseline arm; normal operation leaves it false.
	NoCube bool
	// NoFusion keeps aggregate deltas on the materialized row-at-a-time path
	// instead of streaming fused join→aggregate applies. Benchmarks use it as
	// the ablation arm; normal operation leaves it false.
	NoFusion bool
}

// PrepareWithOptions is PrepareShared with explicit construction options.
func PrepareWithOptions(n plan.Node, funcs *expr.Registry, opts PrepareOptions) (*Prepared, error) {
	group := opts.Group
	root, err := prep(n, funcs)
	if err != nil {
		return nil, err
	}
	p := &Prepared{root: root, src: n}
	if ok, why := plan.DeltaSafety(n); !ok {
		p.deltaReason = why
		return p, nil
	}
	db := &deltaBuilder{group: group, noCube: opts.NoCube, noFusion: opts.NoFusion, es: &ExecStats{}}
	if droot, ok := db.build(root); ok {
		p.droot = droot
		p.estats = db.es
		p.dsorts = db.sorts
		p.group = group
		p.sharedJoins = db.shared
		p.sharedCubes = db.sharedCubes
		p.cubes = db.cubes
		if ds, ok := droot.(*dSort); ok {
			p.ordRoot = ds
		}
	} else {
		p.deltaReason = "operator compiled without static evaluators"
	}
	return p, nil
}

// SharesState reports whether the delta pipeline attaches to shared
// build-side or cube-tile states (only possible for PrepareShared
// pipelines).
func (p *Prepared) SharesState() bool {
	return len(p.sharedJoins) > 0 || len(p.sharedCubes) > 0
}

// ReleaseShared drops the pipeline's refcounted shared-state attachments;
// states whose last pipeline released are evicted from the group. Call when
// the owning session detaches or the plan is invalidated. Safe on
// single-tenant pipelines (no-op).
func (p *Prepared) ReleaseShared() {
	if p.group == nil {
		return
	}
	for _, dj := range p.sharedJoins {
		dj.releaseShared(p.group)
	}
	for _, dc := range p.sharedCubes {
		dc.releaseShared(p.group)
	}
}

// HasCube reports whether the delta pipeline answers some aggregate through
// data-cube index tiles.
func (p *Prepared) HasCube() bool { return len(p.cubes) > 0 }

// CubeBytes reports the private tile memory held by the pipeline's cube
// operators (shared tiles are accounted by the group's ApproxBytes).
func (p *Prepared) CubeBytes() int64 {
	var b int64
	for _, dc := range p.cubes {
		b += dc.tileBytes()
	}
	return b
}

// TakeCubeStats drains the cube counters accumulated since the last call
// (Builds, Hits, BinsAnswered). Fallbacks and the TileBytes gauge are
// engine-level and stay zero here.
func (p *Prepared) TakeCubeStats() CubeStats {
	var out CubeStats
	for _, dc := range p.cubes {
		out.Builds += dc.stats.Builds
		out.Hits += dc.stats.Hits
		out.BinsAnswered += dc.stats.BinsAnswered
		dc.stats.Builds, dc.stats.Hits, dc.stats.BinsAnswered = 0, 0, 0
	}
	return out
}

// Ordered reports whether the delta pipeline's root is an ORDER BY (with or
// without LIMIT): its maintained output has a meaningful row order, and
// callers patching a materialized relation with ApplyDelta's output should
// replace the rows with OrderedRows afterwards.
func (p *Prepared) Ordered() bool { return p.ordRoot != nil }

// OrderedRows returns the pipeline's current output in maintained order (a
// fresh slice). Only meaningful when Ordered() and the pipeline is primed.
func (p *Prepared) OrderedRows() []relation.Tuple {
	if p.ordRoot == nil || !p.primed {
		return nil
	}
	return p.ordRoot.orderedRows()
}

// OrderRows sorts rows in place into an Ordered() plan's output order
// (ORDER BY keys, full-tuple tie-break), without touching pipeline state.
// The engine uses it to re-establish row order after rollback/undo/version
// restore rewrote an ordered view's contents through bag-level deltas (the
// restored bag is exact; only the presentation order is lost), and for
// versioned reads of ordered views. No-op for unordered plans.
func (p *Prepared) OrderRows(rows []relation.Tuple) error {
	if p.ordRoot == nil {
		return nil
	}
	return p.ordRoot.sortRows(rows)
}

// TakeExecStats drains the fused/columnar counters accumulated since the
// last call. Zero-value result means the plan has no fusible aggregates or
// nothing happened.
func (p *Prepared) TakeExecStats() ExecStats {
	if p.estats == nil {
		return ExecStats{}
	}
	return ExecStats{
		BatchRows:    atomic.SwapInt64(&p.estats.BatchRows, 0),
		FusedApplies: atomic.SwapInt64(&p.estats.FusedApplies, 0),
		RowFallbacks: atomic.SwapInt64(&p.estats.RowFallbacks, 0),
	}
}

// TakeTopKStats drains the order-statistic counters accumulated since the
// last call (PrefixEmits, Evictions) and snapshots the current tree sizes
// (TreeRows). Zero-value result means the plan has no ordered operators or
// nothing happened.
func (p *Prepared) TakeTopKStats() TopKStats {
	var out TopKStats
	for _, ds := range p.dsorts {
		out.PrefixEmits += ds.stats.PrefixEmits
		out.Evictions += ds.stats.Evictions
		ds.stats.PrefixEmits, ds.stats.Evictions = 0, 0
		if ds.tree != nil {
			out.TreeRows += ds.tree.Len()
		}
	}
	return out
}

func prep(n plan.Node, funcs *expr.Registry) (bnode, error) {
	switch t := n.(type) {
	case *plan.Scan:
		return &bScan{s: t}, nil
	case *plan.Filter:
		child, err := prep(t.Child, funcs)
		if err != nil {
			return nil, err
		}
		b := &bFilter{
			child: child,
			pred:  bindExpr(t.Pred, t.Child.Schema(), funcs),
		}
		b.kern = buildFilterKernel(b.pred)
		return b, nil
	case *plan.Project:
		return prepProject(t, t.Schema(), funcs)
	case *plan.Join:
		return prepJoin(t, funcs)
	case *plan.Aggregate:
		return prepAggregate(t, funcs)
	case *plan.Sort:
		child, err := prep(t.Child, funcs)
		if err != nil {
			return nil, err
		}
		b := &bSort{child: child, s: t}
		for _, k := range t.Keys {
			b.keys = append(b.keys, bindExpr(k.Expr, t.Child.Schema(), funcs))
		}
		b.static = staticFns(b.keys)
		return b, nil
	case *plan.Limit:
		child, err := prep(t.Child, funcs)
		if err != nil {
			return nil, err
		}
		return &bLimit{child: child, n: t.N}, nil
	case *plan.Distinct:
		child, err := prep(t.Child, funcs)
		if err != nil {
			return nil, err
		}
		return &bDistinct{child: child}, nil
	case *plan.SetOp:
		l, err := prep(t.L, funcs)
		if err != nil {
			return nil, err
		}
		r, err := prep(t.R, funcs)
		if err != nil {
			return nil, err
		}
		return &bSetOp{l: l, r: r, kind: t.Kind, all: t.All}, nil
	default:
		// aliasProject and future wrappers expose Project behaviour via the
		// generic interfaces; the wrapper's (qualified) schema is the output.
		if pr, ok := asProject(n); ok {
			return prepProject(pr, n.Schema(), funcs)
		}
		return nil, fmt.Errorf("exec: unsupported plan node %T", n)
	}
}

// asProject extracts an embedded Project from wrapper nodes.
func asProject(n plan.Node) (*plan.Project, bool) {
	type projector interface{ AsProject() *plan.Project }
	if p, ok := n.(projector); ok {
		return p.AsProject(), true
	}
	return nil, false
}

// bexpr is one bound expression. fn is non-nil when the expression compiled
// statically at prepare time; otherwise raw is re-resolved against the live
// catalog and bound once per execution via get.
type bexpr struct {
	raw    expr.Expr
	schema relation.Schema
	fn     expr.Compiled
}

// bindExpr compiles e against the schema, deferring to execution time when
// the expression needs subquery/IN resolution first. A nil e stays nil.
func bindExpr(e expr.Expr, schema relation.Schema, funcs *expr.Registry) bexpr {
	be := bexpr{raw: e, schema: schema}
	if e != nil && !expr.NeedsResolution(e) {
		be.fn = expr.Bind(e, &expr.BindContext{Schema: schema, Funcs: funcs})
	}
	return be
}

// get returns the evaluator for this execution: the statically compiled one,
// or a fresh bind of the runtime-resolved expression. Nil for a nil raw.
func (be *bexpr) get(ex *Executor) (expr.Compiled, error) {
	if be.fn != nil || be.raw == nil {
		return be.fn, nil
	}
	resolved, err := ex.resolveExpr(be.raw)
	if err != nil {
		return nil, err
	}
	return expr.Bind(resolved, &expr.BindContext{Schema: be.schema, Funcs: ex.Funcs}), nil
}

// String renders the bound expression for error messages.
func (be *bexpr) String() string {
	if be.raw == nil {
		return "<nil>"
	}
	return be.raw.String()
}

func prepProject(p *plan.Project, outSchema relation.Schema, funcs *expr.Registry) (bnode, error) {
	child, err := prep(p.Child, funcs)
	if err != nil {
		return nil, err
	}
	b := &bProject{child: child, outSchema: outSchema}
	childSchema := p.Child.Schema()
	for _, it := range p.Items {
		b.items = append(b.items, bindExpr(it.Expr, childSchema, funcs))
		b.cols = append(b.cols, bareColumn(it.Expr, childSchema))
	}
	b.static = staticFns(b.items)
	return b, nil
}

// bareColumn returns the input index of a plain column expression, -1 for
// anything else — the monomorphic fast path copies the Value by index
// instead of dispatching through the compiled closure.
func bareColumn(e expr.Expr, schema relation.Schema) int {
	c, ok := e.(*expr.Column)
	if !ok {
		return -1
	}
	idx, err := schema.IndexErr(c.Qualifier, c.Name)
	if err != nil {
		return -1
	}
	return idx
}

// staticFns returns the compiled evaluators when every bexpr bound at
// prepare time, nil if any needs per-execution resolution.
func staticFns(items []bexpr) []expr.Compiled {
	fns := make([]expr.Compiled, len(items))
	for i := range items {
		if items[i].fn == nil {
			return nil
		}
		fns[i] = items[i].fn
	}
	return fns
}

func prepJoin(j *plan.Join, funcs *expr.Registry) (bnode, error) {
	l, err := prep(j.L, funcs)
	if err != nil {
		return nil, err
	}
	r, err := prep(j.R, funcs)
	if err != nil {
		return nil, err
	}
	lSch, rSch := j.L.Schema(), j.R.Schema()
	outSch := lSch.Concat(rSch)
	// Key conjuncts never need subquery/IN resolution (bindsIn sends those
	// to the residual), so splitting the raw predicate here and compiling
	// keys eagerly is safe; the residual re-resolves per execution when it
	// must.
	leftKeys, rightKeys, residual := splitEquiJoin(j.Pred, lSch, rSch)
	b := &bJoin{
		l: l, r: r,
		outSchema: outSch,
		lw:        lSch.Len(),
		rw:        rSch.Len(),
		lkRaw:     leftKeys,
		rkRaw:     rightKeys,
		residual:  bindExpr(residual, outSch, funcs),
	}
	lbc := &expr.BindContext{Schema: lSch, Funcs: funcs}
	rbc := &expr.BindContext{Schema: rSch, Funcs: funcs}
	for i := range leftKeys {
		b.lks = append(b.lks, expr.Bind(leftKeys[i], lbc))
		b.rks = append(b.rks, expr.Bind(rightKeys[i], rbc))
	}
	return b, nil
}

// splitEquiJoin extracts hash-joinable equality conjuncts col(L)=col(R) from
// the predicate; the rest is returned as a residual filter.
func splitEquiJoin(pred expr.Expr, ls, rs relation.Schema) (leftKeys, rightKeys []expr.Expr, residual expr.Expr) {
	if pred == nil {
		return nil, nil, nil
	}
	var rest []expr.Expr
	for _, c := range expr.Conjuncts(pred) {
		b, ok := c.(*expr.Binary)
		if !ok || b.Op != expr.OpEq {
			rest = append(rest, c)
			continue
		}
		switch {
		case bindsIn(b.L, ls) && bindsIn(b.R, rs):
			leftKeys = append(leftKeys, b.L)
			rightKeys = append(rightKeys, b.R)
		case bindsIn(b.R, ls) && bindsIn(b.L, rs):
			leftKeys = append(leftKeys, b.R)
			rightKeys = append(rightKeys, b.L)
		default:
			rest = append(rest, c)
		}
	}
	return leftKeys, rightKeys, expr.AndAll(rest)
}

// bindsIn reports whether every column in e resolves within s and e contains
// no subqueries, aggregates, or unresolved IN sources. Unresolved IN sources
// must land in the residual (resolved and bound per execution): the key side
// is compiled at prepare time, before resolution can happen.
func bindsIn(e expr.Expr, s relation.Schema) bool {
	ok := true
	hasCol := false
	expr.Walk(e, func(x expr.Expr) bool {
		switch c := x.(type) {
		case *expr.Column:
			hasCol = true
			if _, err := s.IndexErr(c.Qualifier, c.Name); err != nil {
				ok = false
				return false
			}
		case *expr.In:
			if _, resolved := c.Source.(*expr.SetSource); !resolved {
				ok = false
				return false
			}
		case *expr.Subquery, *expr.Agg:
			ok = false
			return false
		}
		return ok
	})
	return ok && hasCol
}

func prepAggregate(a *plan.Aggregate, funcs *expr.Registry) (bnode, error) {
	child, err := prep(a.Child, funcs)
	if err != nil {
		return nil, err
	}
	b := &bAggregate{child: child, a: a, inSchema: a.Child.Schema()}
	static := true
	for _, g := range a.GroupBy {
		if expr.NeedsResolution(g) {
			static = false
		}
	}
	for _, it := range a.Items {
		if expr.NeedsResolution(it.Expr) {
			static = false
		}
	}
	if a.Having != nil && expr.NeedsResolution(a.Having) {
		static = false
	}
	if static {
		b.static = compileAgg(a.GroupBy, a.Items, a.Having, b.inSchema, funcs)
	}
	return b, nil
}

// baggSpec is one distinct aggregate call within an Aggregate node, with its
// argument compiled (nil for count(*)).
type baggSpec struct {
	agg    *expr.Agg
	arg    expr.Compiled
	str    string
	argCol int // input index when the argument is a bare column, else -1
}

// aggProgram is a fully bound aggregation: group keys, aggregate argument
// evaluators, and output/having evaluators that read per-group aggregate
// results from Env.Aggs slots.
type aggProgram struct {
	groupBy   []expr.Compiled
	groupCols []int // per key: input column index for bare columns, else -1
	groupStr  []string
	specs     []baggSpec
	items     []expr.Compiled
	itemStr   []string
	having    expr.Compiled
	allBare   bool // every group key and aggregate argument is a bare column
}

// compileAgg lays out an aggregation program against already-resolved
// expressions: distinct aggregate calls (by rendered form) get result slots,
// and outputs/HAVING compile with an AggSlot resolver that reads them.
func compileAgg(groupBy []expr.Expr, items []plan.ProjItem, having expr.Expr, schema relation.Schema, funcs *expr.Registry) *aggProgram {
	prog := &aggProgram{}
	rowBC := &expr.BindContext{Schema: schema, Funcs: funcs}
	for _, g := range groupBy {
		prog.groupBy = append(prog.groupBy, expr.Bind(g, rowBC))
		prog.groupCols = append(prog.groupCols, bareColumn(g, schema))
		prog.groupStr = append(prog.groupStr, g.String())
	}
	specIdx := map[string]int{}
	collect := func(e expr.Expr) {
		for _, ag := range expr.Aggregates(e) {
			k := ag.String()
			if _, ok := specIdx[k]; !ok {
				specIdx[k] = len(prog.specs)
				var arg expr.Compiled
				argCol := -1
				if ag.Arg != nil {
					arg = expr.Bind(ag.Arg, rowBC)
					argCol = bareColumn(ag.Arg, schema)
				}
				prog.specs = append(prog.specs, baggSpec{agg: ag, arg: arg, str: k, argCol: argCol})
			}
		}
	}
	for _, it := range items {
		collect(it.Expr)
	}
	collect(having)
	groupBC := &expr.BindContext{Schema: schema, Funcs: funcs, AggSlot: func(ag *expr.Agg) (int, bool) {
		i, ok := specIdx[ag.String()]
		return i, ok
	}}
	for _, it := range items {
		prog.items = append(prog.items, expr.Bind(it.Expr, groupBC))
		prog.itemStr = append(prog.itemStr, it.Expr.String())
	}
	prog.having = expr.Bind(having, groupBC)
	prog.allBare = true
	for _, gc := range prog.groupCols {
		if gc < 0 {
			prog.allBare = false
		}
	}
	for _, sp := range prog.specs {
		if sp.arg != nil && sp.argCol < 0 {
			prog.allBare = false
		}
	}
	return prog
}
