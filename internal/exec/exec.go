// Package exec evaluates logical plans over materialized relations. It
// implements the Executor of the DVMS architecture (Fig 3): hash joins, hash
// aggregation, set operations, sorting, subquery resolution, and — when
// enabled — row-level lineage capture that powers the provenance subsystem
// (§3.1).
//
// Execution is two-phase. Prepare binds a plan once — every expression is
// compiled to a closure-based evaluator with positional column access
// (expr.Bind), hash-joinable key conjuncts are split out, and aggregate
// programs are laid out — and the resulting Prepared plan is run many times.
// The engine caches one Prepared per view and reuses it across every
// recompute of the interaction loop; ad-hoc queries prepare and run in one
// call. See PERFORMANCE.md for the layout and the measured effect.
package exec

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/relation"
)

// Lineage records, for one output row, the indices of contributing rows in
// each scanned input relation.
type Lineage map[string][]int

// merge unions two lineage maps into a fresh one.
func mergeLineage(a, b Lineage) Lineage {
	out := make(Lineage, len(a)+len(b))
	for k, v := range a {
		out[k] = append(out[k], v...)
	}
	for k, v := range b {
		out[k] = append(out[k], v...)
	}
	return out
}

// Result is a materialized operator output. Lin is non-nil only when the
// executor captured lineage; it is parallel to Rel.Rows.
type Result struct {
	Rel *relation.Relation
	Lin []Lineage
}

// Executor runs plans against a catalog. A zero CaptureLineage executor
// skips all lineage bookkeeping (the common, fast path).
type Executor struct {
	Cat            plan.Catalog
	Funcs          *expr.Registry
	CaptureLineage bool
}

// New returns an executor over the catalog with the default function
// registry.
func New(cat plan.Catalog) *Executor {
	return &Executor{Cat: cat, Funcs: expr.NewRegistry()}
}

// RunQuery plans, optimizes, prepares, and executes a parsed query.
func (ex *Executor) RunQuery(q parser.QueryExpr) (*Result, error) {
	p, err := plan.Build(q, ex.Cat)
	if err != nil {
		return nil, err
	}
	p = plan.Optimize(p, ex.Funcs)
	return ex.Run(p)
}

// Run prepares and executes a logical plan in one call. Callers that execute
// the same plan repeatedly should Prepare once and use RunPrepared.
func (ex *Executor) Run(n plan.Node) (*Result, error) {
	p, err := Prepare(n, ex.Funcs)
	if err != nil {
		return nil, err
	}
	return ex.RunPrepared(p)
}

// RunPrepared executes a bound plan against the executor's catalog. A
// Prepared holds per-operator scratch state and must not be run from
// multiple goroutines concurrently.
func (ex *Executor) RunPrepared(p *Prepared) (*Result, error) {
	return p.root.run(ex)
}

// --- subquery / IN-source resolution ---

// resolveExpr materializes scalar subqueries and IN sources in the
// expression by recursively executing them, returning a rewritten copy. A
// nil expression resolves to nil.
func (ex *Executor) resolveExpr(e expr.Expr) (expr.Expr, error) {
	if e == nil {
		return nil, nil
	}
	var firstErr error
	out := expr.Transform(e, func(x expr.Expr) expr.Expr {
		if firstErr != nil {
			return x
		}
		switch n := x.(type) {
		case *expr.Subquery:
			v, err := ex.scalarSubquery(n)
			if err != nil {
				firstErr = err
				return x
			}
			return expr.Literal(v)
		case *expr.In:
			src, err := ex.resolveInSource(n.Source)
			if err != nil {
				firstErr = err
				return x
			}
			return &expr.In{X: n.X, Source: src, Negate: n.Negate}
		default:
			return x
		}
	})
	return out, firstErr
}

func (ex *Executor) resolveItems(items []plan.ProjItem) ([]plan.ProjItem, error) {
	out := make([]plan.ProjItem, len(items))
	for i, it := range items {
		e, err := ex.resolveExpr(it.Expr)
		if err != nil {
			return nil, err
		}
		out[i] = plan.ProjItem{Expr: e, Name: it.Name}
	}
	return out, nil
}

// scalarSubquery executes an uncorrelated scalar subquery: one column, at
// most one row; zero rows yield NULL.
func (ex *Executor) scalarSubquery(s *expr.Subquery) (relation.Value, error) {
	q, ok := s.Query.(parser.QueryExpr)
	if !ok {
		return relation.Null(), fmt.Errorf("scalar subquery holds unexpected payload %T", s.Query)
	}
	// Plan and compile once per expression tree; later runs re-execute the
	// cached Prepared against the live catalog (scans resolve names at run
	// time, so data changes are always seen).
	prep, _ := s.Prep.(*Prepared)
	if prep == nil {
		p, err := plan.Build(q, ex.Cat)
		if err != nil {
			return relation.Null(), fmt.Errorf("scalar subquery: %w", err)
		}
		p = plan.Optimize(p, ex.Funcs)
		if prep, err = Prepare(p, ex.Funcs); err != nil {
			return relation.Null(), fmt.Errorf("scalar subquery: %w", err)
		}
		s.Prep = prep
	}
	// Subqueries never need lineage of their own.
	sub := &Executor{Cat: ex.Cat, Funcs: ex.Funcs}
	res, err := sub.RunPrepared(prep)
	if err != nil {
		return relation.Null(), fmt.Errorf("scalar subquery: %w", err)
	}
	if res.Rel.Schema.Len() < 1 {
		return relation.Null(), fmt.Errorf("scalar subquery returns no columns")
	}
	switch len(res.Rel.Rows) {
	case 0:
		return relation.Null(), nil
	case 1:
		return res.Rel.Rows[0][0], nil
	default:
		return relation.Null(), fmt.Errorf("scalar subquery returned %d rows", len(res.Rel.Rows))
	}
}

// resolveInSource materializes an IN source into a ValueSet.
func (ex *Executor) resolveInSource(src expr.InSource) (expr.InSource, error) {
	switch s := src.(type) {
	case *expr.SetSource:
		return s, nil
	case *expr.RelationSource:
		rel, err := ex.Cat.Resolve(s.Name, s.Version)
		if err != nil {
			return nil, fmt.Errorf("IN %s: %w", s.Name, err)
		}
		if rel.Schema.Len() < 1 {
			return nil, fmt.Errorf("IN %s: relation has no columns", s.Name)
		}
		set := expr.NewValueSet()
		for _, row := range rel.Rows {
			set.Add(row[0])
		}
		return &expr.SetSource{Set: set}, nil
	case *expr.Subquery:
		q, ok := s.Query.(parser.QueryExpr)
		if !ok {
			return nil, fmt.Errorf("IN subquery holds unexpected payload %T", s.Query)
		}
		sub := &Executor{Cat: ex.Cat, Funcs: ex.Funcs}
		res, err := sub.RunQuery(q)
		if err != nil {
			return nil, fmt.Errorf("IN subquery: %w", err)
		}
		if res.Rel.Schema.Len() < 1 {
			return nil, fmt.Errorf("IN subquery returns no columns")
		}
		set := expr.NewValueSet()
		for _, row := range res.Rel.Rows {
			set.Add(row[0])
		}
		return &expr.SetSource{Set: set}, nil
	default:
		return nil, fmt.Errorf("unknown IN source %T", src)
	}
}

// StripQualifiers returns a copy of the relation whose schema drops
// qualifiers; the engine stores view results unqualified so later FROM
// clauses can re-qualify them under fresh aliases.
func StripQualifiers(r *relation.Relation) *relation.Relation {
	cols := make([]relation.Column, r.Schema.Len())
	for i, c := range r.Schema.Cols {
		cols[i] = relation.Col(c.Name, c.Kind)
	}
	return &relation.Relation{Name: r.Name, Schema: relation.NewSchema(cols...), Rows: r.Rows}
}
