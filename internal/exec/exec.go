// Package exec evaluates logical plans over materialized relations. It
// implements the Executor of the DVMS architecture (Fig 3): hash joins, hash
// aggregation, set operations, sorting, subquery resolution, and — when
// enabled — row-level lineage capture that powers the provenance subsystem
// (§3.1).
package exec

import (
	"fmt"
	"sort"

	"repro/internal/expr"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/relation"
)

// Lineage records, for one output row, the indices of contributing rows in
// each scanned input relation.
type Lineage map[string][]int

// merge unions two lineage maps into a fresh one.
func mergeLineage(a, b Lineage) Lineage {
	out := make(Lineage, len(a)+len(b))
	for k, v := range a {
		out[k] = append(out[k], v...)
	}
	for k, v := range b {
		out[k] = append(out[k], v...)
	}
	return out
}

// Result is a materialized operator output. Lin is non-nil only when the
// executor captured lineage; it is parallel to Rel.Rows.
type Result struct {
	Rel *relation.Relation
	Lin []Lineage
}

// Executor runs plans against a catalog. A zero CaptureLineage executor
// skips all lineage bookkeeping (the common, fast path).
type Executor struct {
	Cat            plan.Catalog
	Funcs          *expr.Registry
	CaptureLineage bool
}

// New returns an executor over the catalog with the default function
// registry.
func New(cat plan.Catalog) *Executor {
	return &Executor{Cat: cat, Funcs: expr.NewRegistry()}
}

// RunQuery plans, optimizes, and executes a parsed query.
func (ex *Executor) RunQuery(q parser.QueryExpr) (*Result, error) {
	p, err := plan.Build(q, ex.Cat)
	if err != nil {
		return nil, err
	}
	p = plan.Optimize(p, ex.Funcs)
	return ex.Run(p)
}

// Run executes a logical plan.
func (ex *Executor) Run(n plan.Node) (*Result, error) {
	switch t := n.(type) {
	case *plan.Scan:
		return ex.runScan(t)
	case *plan.Filter:
		return ex.runFilter(t)
	case *plan.Project:
		return ex.runProject(t)
	case *plan.Join:
		return ex.runJoin(t)
	case *plan.Aggregate:
		return ex.runAggregate(t)
	case *plan.Sort:
		return ex.runSort(t)
	case *plan.Limit:
		return ex.runLimit(t)
	case *plan.Distinct:
		return ex.runDistinct(t)
	case *plan.SetOp:
		return ex.runSetOp(t)
	default:
		// aliasProject and future wrappers expose Project behaviour via
		// the generic interfaces.
		if pr, ok := asProject(n); ok {
			return ex.runProjectWith(pr, n.Schema())
		}
		return nil, fmt.Errorf("exec: unsupported plan node %T", n)
	}
}

// asProject extracts an embedded Project from wrapper nodes.
func asProject(n plan.Node) (*plan.Project, bool) {
	type projector interface{ AsProject() *plan.Project }
	if p, ok := n.(projector); ok {
		return p.AsProject(), true
	}
	return nil, false
}

// rowEnv adapts a (schema, tuple) pair to the expression evaluator.
type rowEnv struct {
	schema relation.Schema
	row    relation.Tuple
}

// Lookup resolves a column reference positionally via the schema.
func (e *rowEnv) Lookup(q, n string) (relation.Value, bool) {
	idx := e.schema.Index(q, n)
	if idx < 0 || idx >= len(e.row) {
		return relation.Null(), false
	}
	return e.row[idx], true
}

func (ex *Executor) evalCtx(env expr.RowEnv) *expr.Context {
	return &expr.Context{Row: env, Funcs: ex.Funcs}
}

// --- scan ---

func (ex *Executor) runScan(s *plan.Scan) (*Result, error) {
	if s.Name == "" { // constant SELECT: one empty row
		rel := relation.New("", relation.Schema{})
		rel.Rows = []relation.Tuple{{}}
		res := &Result{Rel: rel}
		if ex.CaptureLineage {
			res.Lin = []Lineage{{}}
		}
		return res, nil
	}
	src, err := ex.Cat.Resolve(s.Name, s.Version)
	if err != nil {
		return nil, err
	}
	out := &relation.Relation{
		Name:   s.Alias,
		Schema: src.Schema.Qualify(s.Alias),
		Rows:   src.Rows,
	}
	res := &Result{Rel: out}
	if ex.CaptureLineage {
		res.Lin = make([]Lineage, len(out.Rows))
		for i := range res.Lin {
			res.Lin[i] = Lineage{s.Name: []int{i}}
		}
	}
	return res, nil
}

// --- filter ---

func (ex *Executor) runFilter(f *plan.Filter) (*Result, error) {
	in, err := ex.Run(f.Child)
	if err != nil {
		return nil, err
	}
	pred, err := ex.resolveExpr(f.Pred)
	if err != nil {
		return nil, err
	}
	out := relation.New(in.Rel.Name, in.Rel.Schema)
	var lin []Lineage
	env := &rowEnv{schema: in.Rel.Schema}
	ctx := ex.evalCtx(env)
	for i, row := range in.Rel.Rows {
		env.row = row
		v, err := pred.Eval(ctx)
		if err != nil {
			return nil, fmt.Errorf("filter %s: %w", pred.String(), err)
		}
		if !v.IsNull() && v.Truthy() {
			out.Rows = append(out.Rows, row)
			if ex.CaptureLineage {
				lin = append(lin, in.Lin[i])
			}
		}
	}
	return &Result{Rel: out, Lin: lin}, nil
}

// --- project ---

func (ex *Executor) runProject(p *plan.Project) (*Result, error) {
	return ex.runProjectWith(p, p.Schema())
}

func (ex *Executor) runProjectWith(p *plan.Project, outSchema relation.Schema) (*Result, error) {
	in, err := ex.Run(p.Child)
	if err != nil {
		return nil, err
	}
	items, err := ex.resolveItems(p.Items)
	if err != nil {
		return nil, err
	}
	out := relation.New("", outSchema)
	env := &rowEnv{schema: in.Rel.Schema}
	ctx := ex.evalCtx(env)
	for _, row := range in.Rel.Rows {
		env.row = row
		t := make(relation.Tuple, len(items))
		for c, it := range items {
			v, err := it.Expr.Eval(ctx)
			if err != nil {
				return nil, fmt.Errorf("project %s: %w", it.Expr.String(), err)
			}
			t[c] = v
		}
		out.Rows = append(out.Rows, t)
	}
	return &Result{Rel: out, Lin: in.Lin}, nil
}

// --- join ---

func (ex *Executor) runJoin(j *plan.Join) (*Result, error) {
	l, err := ex.Run(j.L)
	if err != nil {
		return nil, err
	}
	r, err := ex.Run(j.R)
	if err != nil {
		return nil, err
	}
	pred, err := ex.resolveExpr(j.Pred)
	if err != nil {
		return nil, err
	}
	outSchema := l.Rel.Schema.Concat(r.Rel.Schema)
	out := relation.New("", outSchema)
	var lin []Lineage

	leftKeys, rightKeys, residual := splitEquiJoin(pred, l.Rel.Schema, r.Rel.Schema)
	emit := func(li, ri int, lrow, rrow relation.Tuple) {
		t := make(relation.Tuple, 0, len(lrow)+len(rrow))
		t = append(t, lrow...)
		t = append(t, rrow...)
		out.Rows = append(out.Rows, t)
		if ex.CaptureLineage {
			lin = append(lin, mergeLineage(l.Lin[li], r.Lin[ri]))
		}
	}
	env := &rowEnv{schema: outSchema}
	ctx := ex.evalCtx(env)
	residualOK := func(lrow, rrow relation.Tuple) (bool, error) {
		if residual == nil {
			return true, nil
		}
		env.row = append(append(relation.Tuple{}, lrow...), rrow...)
		v, err := residual.Eval(ctx)
		if err != nil {
			return false, fmt.Errorf("join predicate %s: %w", residual.String(), err)
		}
		return !v.IsNull() && v.Truthy(), nil
	}

	if len(leftKeys) > 0 {
		// hash join: build on left, probe with right
		build := make(map[string][]int, len(l.Rel.Rows))
		lenv := &rowEnv{schema: l.Rel.Schema}
		lctx := ex.evalCtx(lenv)
		for i, row := range l.Rel.Rows {
			lenv.row = row
			key, err := evalKey(leftKeys, lctx)
			if err != nil {
				return nil, err
			}
			if key == "" {
				continue // NULL join keys never match
			}
			build[key] = append(build[key], i)
		}
		renv := &rowEnv{schema: r.Rel.Schema}
		rctx := ex.evalCtx(renv)
		for ri, rrow := range r.Rel.Rows {
			renv.row = rrow
			key, err := evalKey(rightKeys, rctx)
			if err != nil {
				return nil, err
			}
			if key == "" {
				continue
			}
			for _, li := range build[key] {
				ok, err := residualOK(l.Rel.Rows[li], rrow)
				if err != nil {
					return nil, err
				}
				if ok {
					emit(li, ri, l.Rel.Rows[li], rrow)
				}
			}
		}
	} else {
		for li, lrow := range l.Rel.Rows {
			for ri, rrow := range r.Rel.Rows {
				ok, err := residualOK(lrow, rrow)
				if err != nil {
					return nil, err
				}
				if ok {
					emit(li, ri, lrow, rrow)
				}
			}
		}
	}
	return &Result{Rel: out, Lin: lin}, nil
}

// splitEquiJoin extracts hash-joinable equality conjuncts col(L)=col(R) from
// the predicate; the rest is returned as a residual filter.
func splitEquiJoin(pred expr.Expr, ls, rs relation.Schema) (leftKeys, rightKeys []expr.Expr, residual expr.Expr) {
	if pred == nil {
		return nil, nil, nil
	}
	var rest []expr.Expr
	for _, c := range expr.Conjuncts(pred) {
		b, ok := c.(*expr.Binary)
		if !ok || b.Op != expr.OpEq {
			rest = append(rest, c)
			continue
		}
		switch {
		case bindsIn(b.L, ls) && bindsIn(b.R, rs):
			leftKeys = append(leftKeys, b.L)
			rightKeys = append(rightKeys, b.R)
		case bindsIn(b.R, ls) && bindsIn(b.L, rs):
			leftKeys = append(leftKeys, b.R)
			rightKeys = append(rightKeys, b.L)
		default:
			rest = append(rest, c)
		}
	}
	return leftKeys, rightKeys, expr.AndAll(rest)
}

// bindsIn reports whether every column in e resolves within s and e contains
// no subqueries or unresolved IN sources.
func bindsIn(e expr.Expr, s relation.Schema) bool {
	ok := true
	hasCol := false
	expr.Walk(e, func(x expr.Expr) bool {
		switch c := x.(type) {
		case *expr.Column:
			hasCol = true
			if _, err := s.IndexErr(c.Qualifier, c.Name); err != nil {
				ok = false
				return false
			}
		case *expr.Subquery, *expr.Agg:
			ok = false
			return false
		}
		return ok
	})
	return ok && hasCol
}

// evalKey renders join-key expressions to a canonical composite string; an
// empty string means a NULL key (which never matches).
func evalKey(keys []expr.Expr, ctx *expr.Context) (string, error) {
	t := make(relation.Tuple, len(keys))
	for i, k := range keys {
		v, err := k.Eval(ctx)
		if err != nil {
			return "", fmt.Errorf("join key %s: %w", k.String(), err)
		}
		if v.IsNull() {
			return "", nil
		}
		t[i] = v
	}
	return t.Key(), nil
}

// --- aggregate ---

// aggSpec is one distinct aggregate call within an Aggregate node.
type aggSpec struct {
	agg *expr.Agg
	key string
}

type aggState struct {
	count    int64
	sumF     float64
	sumI     int64
	intOnly  bool
	seenAny  bool
	min, max relation.Value
	distinct map[relation.Value]struct{}
}

func newAggState() *aggState {
	return &aggState{intOnly: true, min: relation.Null(), max: relation.Null()}
}

func (st *aggState) add(v relation.Value, distinct bool) {
	if v.IsNull() {
		return
	}
	if distinct {
		if st.distinct == nil {
			st.distinct = make(map[relation.Value]struct{})
		}
		if _, dup := st.distinct[v.Key()]; dup {
			return
		}
		st.distinct[v.Key()] = struct{}{}
	}
	st.seenAny = true
	st.count++
	if f, ok := v.AsFloat(); ok {
		st.sumF += f
		if v.Kind() == relation.KindInt {
			n, _ := v.AsInt()
			st.sumI += n
		} else {
			st.intOnly = false
		}
	} else {
		st.intOnly = false
	}
	if st.min.IsNull() || v.Compare(st.min) < 0 {
		st.min = v
	}
	if st.max.IsNull() || v.Compare(st.max) > 0 {
		st.max = v
	}
}

func (st *aggState) result(name string, rowsInGroup int64, star bool) relation.Value {
	switch name {
	case "count":
		if star {
			return relation.Int(rowsInGroup)
		}
		return relation.Int(st.count)
	case "sum":
		if !st.seenAny {
			return relation.Null()
		}
		if st.intOnly {
			return relation.Int(st.sumI)
		}
		return relation.Float(st.sumF)
	case "avg":
		if !st.seenAny {
			return relation.Null()
		}
		return relation.Float(st.sumF / float64(st.count))
	case "min":
		return st.min
	case "max":
		return st.max
	default:
		return relation.Null()
	}
}

type group struct {
	key     relation.Tuple
	rep     relation.Tuple
	rows    int64
	states  []*aggState
	lineage Lineage
	order   int
}

func (ex *Executor) runAggregate(a *plan.Aggregate) (*Result, error) {
	in, err := ex.Run(a.Child)
	if err != nil {
		return nil, err
	}
	items, err := ex.resolveItems(a.Items)
	if err != nil {
		return nil, err
	}
	having, err := ex.resolveExpr(a.Having)
	if err != nil {
		return nil, err
	}
	groupBy := make([]expr.Expr, len(a.GroupBy))
	for i, g := range a.GroupBy {
		gg, err := ex.resolveExpr(g)
		if err != nil {
			return nil, err
		}
		groupBy[i] = gg
	}

	// Collect distinct aggregate calls from outputs and HAVING.
	var specs []aggSpec
	specIdx := map[string]int{}
	collect := func(e expr.Expr) {
		for _, ag := range expr.Aggregates(e) {
			k := ag.String()
			if _, ok := specIdx[k]; !ok {
				specIdx[k] = len(specs)
				specs = append(specs, aggSpec{agg: ag, key: k})
			}
		}
	}
	for _, it := range items {
		collect(it.Expr)
	}
	collect(having)

	env := &rowEnv{schema: in.Rel.Schema}
	ctx := ex.evalCtx(env)
	groups := map[string]*group{}
	var order []string
	for i, row := range in.Rel.Rows {
		env.row = row
		keyT := make(relation.Tuple, len(groupBy))
		for gi, g := range groupBy {
			v, err := g.Eval(ctx)
			if err != nil {
				return nil, fmt.Errorf("group by %s: %w", g.String(), err)
			}
			keyT[gi] = v
		}
		k := keyT.Key()
		grp, ok := groups[k]
		if !ok {
			grp = &group{key: keyT, rep: row, states: make([]*aggState, len(specs)), order: len(order)}
			for si := range grp.states {
				grp.states[si] = newAggState()
			}
			if ex.CaptureLineage {
				grp.lineage = Lineage{}
			}
			groups[k] = grp
			order = append(order, k)
		}
		grp.rows++
		for si, sp := range specs {
			if sp.agg.Arg == nil { // count(*)
				continue
			}
			arg, err := ex.resolveExpr(sp.agg.Arg)
			if err != nil {
				return nil, err
			}
			v, err := arg.Eval(ctx)
			if err != nil {
				return nil, fmt.Errorf("aggregate %s: %w", sp.agg.String(), err)
			}
			grp.states[si].add(v, sp.agg.Distinct)
		}
		if ex.CaptureLineage {
			grp.lineage = mergeLineage(grp.lineage, in.Lin[i])
		}
	}

	// A global aggregate (no GROUP BY) over zero rows still yields one row.
	if len(groups) == 0 && len(groupBy) == 0 {
		grp := &group{rep: nil, states: make([]*aggState, len(specs))}
		for si := range grp.states {
			grp.states[si] = newAggState()
		}
		if ex.CaptureLineage {
			grp.lineage = Lineage{}
		}
		groups[""] = grp
		order = append(order, "")
	}

	out := relation.New("", a.Schema())
	var lin []Lineage
	for _, k := range order {
		grp := groups[k]
		genv := &groupEnv{schema: in.Rel.Schema, row: grp.rep}
		gctx := ex.evalCtx(genv)
		subst := func(e expr.Expr) expr.Expr {
			return expr.Transform(e, func(x expr.Expr) expr.Expr {
				if ag, ok := x.(*expr.Agg); ok {
					si := specIdx[ag.String()]
					return expr.Literal(grp.states[si].result(ag.Name, grp.rows, ag.Arg == nil))
				}
				return x
			})
		}
		if having != nil {
			hv, err := subst(having).Eval(gctx)
			if err != nil {
				return nil, fmt.Errorf("having: %w", err)
			}
			if hv.IsNull() || !hv.Truthy() {
				continue
			}
		}
		t := make(relation.Tuple, len(items))
		for c, it := range items {
			v, err := subst(it.Expr).Eval(gctx)
			if err != nil {
				return nil, fmt.Errorf("aggregate output %s: %w", it.Expr.String(), err)
			}
			t[c] = v
		}
		out.Rows = append(out.Rows, t)
		if ex.CaptureLineage {
			lin = append(lin, grp.lineage)
		}
	}
	return &Result{Rel: out, Lin: lin}, nil
}

// groupEnv resolves columns against a group's representative row; with a nil
// representative (empty global aggregate) every column is NULL.
type groupEnv struct {
	schema relation.Schema
	row    relation.Tuple
}

// Lookup returns the representative row's value, or NULL for the empty
// global group.
func (e *groupEnv) Lookup(q, n string) (relation.Value, bool) {
	if e.row == nil {
		return relation.Null(), true
	}
	idx := e.schema.Index(q, n)
	if idx < 0 || idx >= len(e.row) {
		return relation.Null(), false
	}
	return e.row[idx], true
}

// --- sort / limit / distinct / set ops ---

func (ex *Executor) runSort(s *plan.Sort) (*Result, error) {
	in, err := ex.Run(s.Child)
	if err != nil {
		return nil, err
	}
	keys := make([]expr.Expr, len(s.Keys))
	for i, k := range s.Keys {
		kk, err := ex.resolveExpr(k.Expr)
		if err != nil {
			return nil, err
		}
		keys[i] = kk
	}
	type sortRow struct {
		row  relation.Tuple
		lin  Lineage
		keys relation.Tuple
	}
	rows := make([]sortRow, len(in.Rel.Rows))
	env := &rowEnv{schema: in.Rel.Schema}
	ctx := ex.evalCtx(env)
	for i, row := range in.Rel.Rows {
		env.row = row
		kt := make(relation.Tuple, len(keys))
		for ki, k := range keys {
			v, err := k.Eval(ctx)
			if err != nil {
				return nil, fmt.Errorf("order by %s: %w", k.String(), err)
			}
			kt[ki] = v
		}
		rows[i] = sortRow{row: row, keys: kt}
		if ex.CaptureLineage {
			rows[i].lin = in.Lin[i]
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for ki := range keys {
			c := rows[i].keys[ki].Compare(rows[j].keys[ki])
			if s.Keys[ki].Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	out := relation.New(in.Rel.Name, in.Rel.Schema)
	var lin []Lineage
	for _, r := range rows {
		out.Rows = append(out.Rows, r.row)
		if ex.CaptureLineage {
			lin = append(lin, r.lin)
		}
	}
	return &Result{Rel: out, Lin: lin}, nil
}

func (ex *Executor) runLimit(l *plan.Limit) (*Result, error) {
	in, err := ex.Run(l.Child)
	if err != nil {
		return nil, err
	}
	n := l.N
	if n > len(in.Rel.Rows) {
		n = len(in.Rel.Rows)
	}
	out := relation.New(in.Rel.Name, in.Rel.Schema)
	out.Rows = in.Rel.Rows[:n]
	res := &Result{Rel: out}
	if ex.CaptureLineage {
		res.Lin = in.Lin[:n]
	}
	return res, nil
}

func (ex *Executor) runDistinct(d *plan.Distinct) (*Result, error) {
	in, err := ex.Run(d.Child)
	if err != nil {
		return nil, err
	}
	out := relation.New(in.Rel.Name, in.Rel.Schema)
	var lin []Lineage
	index := map[string]int{}
	for i, row := range in.Rel.Rows {
		k := row.Key()
		if at, dup := index[k]; dup {
			if ex.CaptureLineage {
				lin[at] = mergeLineage(lin[at], in.Lin[i])
			}
			continue
		}
		index[k] = len(out.Rows)
		out.Rows = append(out.Rows, row)
		if ex.CaptureLineage {
			lin = append(lin, in.Lin[i])
		}
	}
	return &Result{Rel: out, Lin: lin}, nil
}

func (ex *Executor) runSetOp(s *plan.SetOp) (*Result, error) {
	l, err := ex.Run(s.L)
	if err != nil {
		return nil, err
	}
	r, err := ex.Run(s.R)
	if err != nil {
		return nil, err
	}
	if l.Rel.Schema.Len() != r.Rel.Schema.Len() {
		return nil, fmt.Errorf("set operands are not union compatible")
	}
	out := relation.New("", l.Rel.Schema)
	var lin []Lineage
	switch s.Kind {
	case plan.SetUnion:
		if s.All {
			out.Rows = append(append([]relation.Tuple{}, l.Rel.Rows...), r.Rel.Rows...)
			if ex.CaptureLineage {
				lin = append(append([]Lineage{}, l.Lin...), r.Lin...)
			}
			return &Result{Rel: out, Lin: lin}, nil
		}
		index := map[string]int{}
		add := func(rows []relation.Tuple, lins []Lineage) {
			for i, row := range rows {
				k := row.Key()
				if at, dup := index[k]; dup {
					if ex.CaptureLineage {
						lin[at] = mergeLineage(lin[at], lins[i])
					}
					continue
				}
				index[k] = len(out.Rows)
				out.Rows = append(out.Rows, row)
				if ex.CaptureLineage {
					lin = append(lin, lins[i])
				}
			}
		}
		add(l.Rel.Rows, l.Lin)
		add(r.Rel.Rows, r.Lin)
	case plan.SetMinus: // set semantics, as SQL EXCEPT
		right := map[string]bool{}
		for _, row := range r.Rel.Rows {
			right[row.Key()] = true
		}
		seen := map[string]int{}
		for i, row := range l.Rel.Rows {
			k := row.Key()
			if right[k] {
				continue
			}
			if at, dup := seen[k]; dup {
				if ex.CaptureLineage {
					lin[at] = mergeLineage(lin[at], l.Lin[i])
				}
				continue
			}
			seen[k] = len(out.Rows)
			out.Rows = append(out.Rows, row)
			if ex.CaptureLineage {
				lin = append(lin, l.Lin[i])
			}
		}
	default: // intersect (set semantics)
		right := map[string]bool{}
		for _, row := range r.Rel.Rows {
			right[row.Key()] = true
		}
		seen := map[string]int{}
		for i, row := range l.Rel.Rows {
			k := row.Key()
			if !right[k] {
				continue
			}
			if at, dup := seen[k]; dup {
				if ex.CaptureLineage {
					lin[at] = mergeLineage(lin[at], l.Lin[i])
				}
				continue
			}
			seen[k] = len(out.Rows)
			out.Rows = append(out.Rows, row)
			if ex.CaptureLineage {
				lin = append(lin, l.Lin[i])
			}
		}
	}
	return &Result{Rel: out, Lin: lin}, nil
}

// --- subquery / IN-source resolution ---

// resolveExpr materializes scalar subqueries and IN sources in the
// expression by recursively executing them, returning a rewritten copy. A
// nil expression resolves to nil.
func (ex *Executor) resolveExpr(e expr.Expr) (expr.Expr, error) {
	if e == nil {
		return nil, nil
	}
	var firstErr error
	out := expr.Transform(e, func(x expr.Expr) expr.Expr {
		if firstErr != nil {
			return x
		}
		switch n := x.(type) {
		case *expr.Subquery:
			v, err := ex.scalarSubquery(n)
			if err != nil {
				firstErr = err
				return x
			}
			return expr.Literal(v)
		case *expr.In:
			src, err := ex.resolveInSource(n.Source)
			if err != nil {
				firstErr = err
				return x
			}
			return &expr.In{X: n.X, Source: src, Negate: n.Negate}
		default:
			return x
		}
	})
	return out, firstErr
}

func (ex *Executor) resolveItems(items []plan.ProjItem) ([]plan.ProjItem, error) {
	out := make([]plan.ProjItem, len(items))
	for i, it := range items {
		e, err := ex.resolveExpr(it.Expr)
		if err != nil {
			return nil, err
		}
		out[i] = plan.ProjItem{Expr: e, Name: it.Name}
	}
	return out, nil
}

// scalarSubquery executes an uncorrelated scalar subquery: one column, at
// most one row; zero rows yield NULL.
func (ex *Executor) scalarSubquery(s *expr.Subquery) (relation.Value, error) {
	q, ok := s.Query.(parser.QueryExpr)
	if !ok {
		return relation.Null(), fmt.Errorf("scalar subquery holds unexpected payload %T", s.Query)
	}
	// Subqueries never need lineage of their own.
	sub := &Executor{Cat: ex.Cat, Funcs: ex.Funcs}
	res, err := sub.RunQuery(q)
	if err != nil {
		return relation.Null(), fmt.Errorf("scalar subquery: %w", err)
	}
	if res.Rel.Schema.Len() < 1 {
		return relation.Null(), fmt.Errorf("scalar subquery returns no columns")
	}
	switch len(res.Rel.Rows) {
	case 0:
		return relation.Null(), nil
	case 1:
		return res.Rel.Rows[0][0], nil
	default:
		return relation.Null(), fmt.Errorf("scalar subquery returned %d rows", len(res.Rel.Rows))
	}
}

// resolveInSource materializes an IN source into a ValueSet.
func (ex *Executor) resolveInSource(src expr.InSource) (expr.InSource, error) {
	switch s := src.(type) {
	case *expr.SetSource:
		return s, nil
	case *expr.RelationSource:
		rel, err := ex.Cat.Resolve(s.Name, s.Version)
		if err != nil {
			return nil, fmt.Errorf("IN %s: %w", s.Name, err)
		}
		if rel.Schema.Len() < 1 {
			return nil, fmt.Errorf("IN %s: relation has no columns", s.Name)
		}
		set := expr.NewValueSet()
		for _, row := range rel.Rows {
			set.Add(row[0])
		}
		return &expr.SetSource{Set: set}, nil
	case *expr.Subquery:
		q, ok := s.Query.(parser.QueryExpr)
		if !ok {
			return nil, fmt.Errorf("IN subquery holds unexpected payload %T", s.Query)
		}
		sub := &Executor{Cat: ex.Cat, Funcs: ex.Funcs}
		res, err := sub.RunQuery(q)
		if err != nil {
			return nil, fmt.Errorf("IN subquery: %w", err)
		}
		if res.Rel.Schema.Len() < 1 {
			return nil, fmt.Errorf("IN subquery returns no columns")
		}
		set := expr.NewValueSet()
		for _, row := range res.Rel.Rows {
			set.Add(row[0])
		}
		return &expr.SetSource{Set: set}, nil
	default:
		return nil, fmt.Errorf("unknown IN source %T", src)
	}
}

// StripQualifiers returns a copy of the relation whose schema drops
// qualifiers; the engine stores view results unqualified so later FROM
// clauses can re-qualify them under fresh aliases.
func StripQualifiers(r *relation.Relation) *relation.Relation {
	cols := make([]relation.Column, r.Schema.Len())
	for i, c := range r.Schema.Cols {
		cols[i] = relation.Col(c.Name, c.Kind)
	}
	return &relation.Relation{Name: r.Name, Schema: relation.NewSchema(cols...), Rows: r.Rows}
}
