package exec

// Table-driven unit tests for the order-statistic tree in isolation, plus
// the FuzzOrdStat native fuzz target: random op streams checked against a
// naive sorted-slice oracle, with the structural invariant checker
// (ordStat.check — balance, sizes, strict in-order) run after every op.

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/relation"
)

// ent builds the (keys, row) pair the tests insert: key = v, row = (v, id).
func ent(v, id int64) (relation.Tuple, relation.Tuple) {
	return relation.Tuple{relation.Int(v)}, relation.Tuple{relation.Int(v), relation.Int(id)}
}

func mustCheck(t *testing.T, tree *ordStat) {
	t.Helper()
	if err := tree.check(); err != nil {
		t.Fatalf("invariant violation: %v", err)
	}
}

func TestOrdStatInsertSelectRankRoundTrip(t *testing.T) {
	for _, desc := range []bool{false, true} {
		tree := newOrdStat([]bool{desc})
		rng := rand.New(rand.NewSource(42))
		const n = 500
		perm := rng.Perm(n)
		for _, p := range perm {
			k, r := ent(int64(p%37), int64(p)) // heavy key duplication
			tree.Insert(k, r)
			mustCheck(t, tree)
		}
		if tree.Len() != n {
			t.Fatalf("Len = %d, want %d", tree.Len(), n)
		}
		// Select(i) must walk the total order; Rank(Select(i)) must return
		// the first occurrence position of that exact row.
		var prev relation.Tuple
		var prevKeys relation.Tuple
		for i := int64(0); i < n; i++ {
			row := tree.Select(i)
			if row == nil {
				t.Fatalf("Select(%d) = nil", i)
			}
			keys := relation.Tuple{row[0]}
			if prev != nil {
				c := prevKeys[0].Compare(keys[0])
				if desc {
					c = -c
				}
				if c > 0 || (c == 0 && relation.CompareTuples(prev, row) > 0) {
					t.Fatalf("Select order violated at %d: %v before %v", i, prev, row)
				}
			}
			rk, ok := tree.Rank(keys, row)
			if !ok {
				t.Fatalf("Rank(Select(%d)) reports absent", i)
			}
			if got := tree.Select(rk); !got.Equal(row) {
				t.Fatalf("Select(Rank(x)) = %v, want %v", got, row)
			}
			prev, prevKeys = row, keys
		}
		if tree.Select(-1) != nil || tree.Select(n) != nil {
			t.Fatal("out-of-range Select should return nil")
		}
		wantRank := int64(n) // asc: the absent max sorts last...
		if desc {
			wantRank = 0 // ...desc: it sorts first
		}
		if rk, ok := tree.Rank(ent(99999, 0)); ok || rk != wantRank {
			t.Fatalf("Rank of absent max row = (%d,%v), want (%d,false)", rk, ok, wantRank)
		}
	}
}

func TestOrdStatPrefixMatchesOracle(t *testing.T) {
	tree := newOrdStat([]bool{true}) // DESC
	rng := rand.New(rand.NewSource(7))
	var oracle []relation.Tuple
	for i := 0; i < 200; i++ {
		k, r := ent(int64(rng.Intn(20)), int64(rng.Intn(10)))
		tree.Insert(k, r)
		oracle = append(oracle, r)
	}
	sort.SliceStable(oracle, func(i, j int) bool {
		if c := oracle[i][0].Compare(oracle[j][0]); c != 0 {
			return c > 0 // DESC
		}
		return relation.CompareTuples(oracle[i], oracle[j]) < 0
	})
	for _, k := range []int{0, 1, 5, 199, 200, 500, -1} {
		got := tree.Prefix(k)
		want := oracle
		if k >= 0 && k < len(oracle) {
			want = oracle[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("Prefix(%d) len = %d, want %d", k, len(got), len(want))
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("Prefix(%d)[%d] = %v, want %v", k, i, got[i], want[i])
			}
		}
	}
}

func TestOrdStatDuplicateCountUnderflow(t *testing.T) {
	tree := newOrdStat([]bool{false})
	k, r := ent(3, 1)
	tree.Insert(k, r)
	tree.Insert(k, r)
	if tree.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (duplicate counted)", tree.Len())
	}
	for i := 0; i < 2; i++ {
		if err := tree.Delete(k, r); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
		mustCheck(t, tree)
	}
	// Third delete underflows the duplicate count: must error, not go
	// negative or corrupt the tree.
	if err := tree.Delete(k, r); err == nil {
		t.Fatal("third delete of a twice-inserted row should error")
	}
	mustCheck(t, tree)
	if tree.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tree.Len())
	}
}

func TestOrdStatDeleteNonexistent(t *testing.T) {
	tree := newOrdStat([]bool{false})
	ka, ra := ent(1, 1)
	tree.Insert(ka, ra)
	// Same sort key, different row (tie-break distinguishes them).
	kb, rb := ent(1, 2)
	if err := tree.Delete(kb, rb); err == nil {
		t.Fatal("delete of a never-inserted row should error")
	}
	// Entirely absent key.
	kc, rc := ent(9, 9)
	if err := tree.Delete(kc, rc); err == nil {
		t.Fatal("delete of an absent key should error")
	}
	mustCheck(t, tree)
	if tree.Len() != 1 || !tree.Contains(ka, ra) {
		t.Fatal("failed deletes must leave the tree untouched")
	}
}

func TestOrdStatRandomChurnAgainstOracle(t *testing.T) {
	tree := newOrdStat([]bool{false, true}) // (asc, desc) two-key order
	rng := rand.New(rand.NewSource(99))
	var oracle [][2]relation.Tuple // (keys, row) pairs currently held
	for op := 0; op < 3000; op++ {
		if len(oracle) == 0 || rng.Intn(3) > 0 {
			k := relation.Tuple{relation.Int(int64(rng.Intn(9))), relation.Int(int64(rng.Intn(4)))}
			r := relation.Tuple{k[0], k[1], relation.Int(int64(rng.Intn(5)))}
			tree.Insert(k, r)
			oracle = append(oracle, [2]relation.Tuple{k, r})
		} else {
			i := rng.Intn(len(oracle))
			if err := tree.Delete(oracle[i][0], oracle[i][1]); err != nil {
				t.Fatalf("op %d: delete of held row: %v", op, err)
			}
			oracle[i] = oracle[len(oracle)-1]
			oracle = oracle[:len(oracle)-1]
		}
		if err := tree.check(); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		if tree.Len() != int64(len(oracle)) {
			t.Fatalf("op %d: Len = %d, want %d", op, tree.Len(), len(oracle))
		}
	}
}

// FuzzOrdStat drives arbitrary op streams (decoded from the fuzz input)
// against a sorted-slice oracle. Every operation is followed by the full
// invariant check; ordered listings, ranks, and prefix contents must match
// the oracle exactly.
func FuzzOrdStat(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{0x10, 0x11, 0x10, 0x91, 0x10, 0x91, 0x91})
	f.Add([]byte{0xFF, 0x00, 0x80, 0x7F, 0x40, 0xC0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		// First byte picks the key direction; the rest is an op stream.
		desc := data[0]&1 == 1
		tree := newOrdStat([]bool{desc})
		type pair struct{ keys, row relation.Tuple }
		var oracle []pair
		less := func(a, b pair) bool {
			c := a.keys[0].Compare(b.keys[0])
			if desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
			return relation.CompareTuples(a.row, b.row) < 0
		}
		for _, b := range data[1:] {
			op := b >> 6
			v := int64(b >> 3 & 0x7) // sort key: 8 distinct values → heavy ties
			id := int64(b & 0x7)     // row discriminator → real duplicates too
			k := relation.Tuple{relation.Int(v)}
			r := relation.Tuple{relation.Int(v), relation.Int(id)}
			p := pair{keys: k, row: r}
			switch op {
			case 0, 1: // insert (weighted 2x so trees grow)
				tree.Insert(k, r)
				i := sort.Search(len(oracle), func(i int) bool { return !less(oracle[i], p) })
				oracle = append(oracle, pair{})
				copy(oracle[i+1:], oracle[i:])
				oracle[i] = p
			case 2: // delete (may target an absent row)
				i := sort.Search(len(oracle), func(i int) bool { return !less(oracle[i], p) })
				present := i < len(oracle) && oracle[i].row.Equal(r)
				err := tree.Delete(k, r)
				if present && err != nil {
					t.Fatalf("delete of held row %v: %v", r, err)
				}
				if !present && err == nil {
					t.Fatalf("delete of absent row %v should error", r)
				}
				if present {
					oracle = append(oracle[:i], oracle[i+1:]...)
				}
			case 3: // rank/select round trip at position id (mod size)
				if n := tree.Len(); n > 0 {
					i := id % n
					row := tree.Select(i)
					if row == nil {
						t.Fatalf("Select(%d) = nil with Len %d", i, n)
					}
					if !row.Equal(oracle[i].row) {
						t.Fatalf("Select(%d) = %v, oracle %v", i, row, oracle[i].row)
					}
					rk, ok := tree.Rank(relation.Tuple{row[0]}, row)
					if !ok || tree.Select(rk) == nil || !tree.Select(rk).Equal(row) {
						t.Fatalf("Rank/Select round trip broken at %d", i)
					}
				}
			}
			if err := tree.check(); err != nil {
				t.Fatalf("after op %#x: %v", b, err)
			}
			if tree.Len() != int64(len(oracle)) {
				t.Fatalf("Len = %d, oracle %d", tree.Len(), len(oracle))
			}
		}
		// Final sweep: full ordered listing and a mid-size prefix.
		all := tree.InOrder()
		for i, row := range all {
			if !row.Equal(oracle[i].row) {
				t.Fatalf("InOrder[%d] = %v, oracle %v", i, row, oracle[i].row)
			}
		}
		k := len(all) / 2
		for i, row := range tree.Prefix(k) {
			if !row.Equal(oracle[i].row) {
				t.Fatalf("Prefix(%d)[%d] = %v, oracle %v", k, i, row, oracle[i].row)
			}
		}
	})
}
