package exec

// Property-based tests on relational-algebra invariants of the executor,
// run over randomized small relations via testing/quick.

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/relation"
)

// randomCatalog builds two single-column relations from generated values.
func randomCatalog(as, bs []int8) memCatalog {
	a := relation.New("A", relation.NewSchema(relation.Col("v", relation.KindInt)))
	for _, v := range as {
		a.MustAppend(relation.Tuple{relation.Int(int64(v))})
	}
	b := relation.New("B", relation.NewSchema(relation.Col("v", relation.KindInt)))
	for _, v := range bs {
		b.MustAppend(relation.Tuple{relation.Int(int64(v))})
	}
	return memCatalog{"a": a, "b": b}
}

func evalCount(t *testing.T, cat memCatalog, sql string) int {
	t.Helper()
	q, err := parser.ParseQuery(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	res, err := New(cat).RunQuery(q)
	if err != nil {
		t.Fatalf("run %q: %v", sql, err)
	}
	return res.Rel.Len()
}

func evalRel(t *testing.T, cat memCatalog, sql string) *relation.Relation {
	t.Helper()
	q, err := parser.ParseQuery(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	res, err := New(cat).RunQuery(q)
	if err != nil {
		t.Fatalf("run %q: %v", sql, err)
	}
	out := exportRel(res.Rel)
	out.SortDeterministic()
	return out
}

func exportRel(r *relation.Relation) *relation.Relation {
	return StripQualifiers(r).Clone()
}

// Join commutativity: |A ⋈ B| = |B ⋈ A| on the equi-key.
func TestPropertyJoinCommutative(t *testing.T) {
	f := func(as, bs []int8) bool {
		cat := randomCatalog(as, bs)
		ab := evalCount(t, cat, "SELECT x.v FROM A AS x, B AS y WHERE x.v = y.v")
		ba := evalCount(t, cat, "SELECT x.v FROM B AS x, A AS y WHERE x.v = y.v")
		return ab == ba
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Union idempotence and commutativity under set semantics.
func TestPropertyUnionLaws(t *testing.T) {
	f := func(as, bs []int8) bool {
		cat := randomCatalog(as, bs)
		aa := evalRel(t, cat, "SELECT v FROM A UNION SELECT v FROM A")
		da := evalRel(t, cat, "SELECT DISTINCT v FROM A")
		if !relation.Equal(aa, da) {
			return false
		}
		ab := evalRel(t, cat, "SELECT v FROM A UNION SELECT v FROM B")
		ba := evalRel(t, cat, "SELECT v FROM B UNION SELECT v FROM A")
		return relation.Equal(ab, ba)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Minus/intersect partition: (A MINUS B) ∪ (A INTERSECT B) = distinct A.
func TestPropertyMinusIntersectPartition(t *testing.T) {
	f := func(as, bs []int8) bool {
		cat := randomCatalog(as, bs)
		parts := evalRel(t, cat,
			"(SELECT v FROM A MINUS SELECT v FROM B) UNION (SELECT v FROM A INTERSECT SELECT v FROM B)")
		da := evalRel(t, cat, "SELECT DISTINCT v FROM A")
		return relation.Equal(parts, da)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Selection splits: |σ(p)(A)| + |σ(¬p)(A)| = |A| for NULL-free data.
func TestPropertySelectionPartition(t *testing.T) {
	f := func(as []int8, cut int8) bool {
		cat := randomCatalog(as, nil)
		lo := evalCount(t, cat, fmt.Sprintf("SELECT v FROM A WHERE v < %d", cut))
		hi := evalCount(t, cat, fmt.Sprintf("SELECT v FROM A WHERE NOT (v < %d)", cut))
		return lo+hi == len(as)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Aggregate consistency: sum over groups equals the global sum; counts add
// up to the row count.
func TestPropertyAggregateConsistency(t *testing.T) {
	f := func(as []int8) bool {
		if len(as) == 0 {
			return true
		}
		cat := randomCatalog(as, nil)
		grouped := evalRel(t, cat, "SELECT v % 3 AS g, sum(v) AS s, count(*) AS n FROM A GROUP BY v % 3")
		var sumOfSums, sumOfCounts int64
		for _, row := range grouped.Rows {
			s, _ := row[1].AsInt()
			n, _ := row[2].AsInt()
			sumOfSums += s
			sumOfCounts += n
		}
		global := evalRel(t, cat, "SELECT sum(v) AS s FROM A")
		gs, _ := global.Rows[0][0].AsInt()
		return sumOfSums == gs && sumOfCounts == int64(len(as))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// The optimizer never changes results: optimized and unoptimized plans are
// bag-equal on a join/filter/aggregate query.
func TestPropertyOptimizerPreservesSemantics(t *testing.T) {
	f := func(as, bs []int8, cut int8) bool {
		cat := randomCatalog(as, bs)
		sql := fmt.Sprintf(
			"SELECT x.v, count(*) AS n FROM A AS x, B AS y WHERE x.v = y.v AND x.v > %d AND 1 = 1 GROUP BY x.v", cut)
		q, err := parser.ParseQuery(sql)
		if err != nil {
			return false
		}
		// Optimized (the default executor path).
		opt, err := New(cat).RunQuery(q)
		if err != nil {
			return false
		}
		// Unoptimized: build without Optimize.
		p, err := plan.Build(q, cat)
		if err != nil {
			return false
		}
		raw, err := New(cat).Run(p)
		if err != nil {
			return false
		}
		a := exportRel(opt.Rel)
		b := exportRel(raw.Rel)
		a.SortDeterministic()
		b.SortDeterministic()
		return relation.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
