package exec

// Shared operator state across prepared pipelines. A multi-client server
// hosts many sessions over the same base data; every session's delta
// pipeline for a view like
//
//	SELECT ... FROM Sales AS s, selected_months AS m WHERE s.month = m.month
//
// would otherwise build its own copy of the large build-side join state
// (Sales indexed by month — data-sized), even though that state depends only
// on shared base relations and is bit-identical across sessions. A
// ShareGroup is a registry of such states: when a delta pipeline is built
// with PrepareShared, join sides whose input subtree reads only shared
// relations are attached to a refcounted ShareGroup entry keyed by the
// subtree's structural fingerprint. The first pipeline to prime builds the
// state; every later pipeline (other sessions, or other views of the same
// session joining through the same subtree) reuses it.
//
// Concurrency contract: sessions are readers, the server's writer is the
// single mutator.
//
//   - RunStateful on a pipeline with shared sides takes the group's write
//     lock (it may build and publish a state); ApplyDelta takes the read
//     lock (it only probes shared states — session pipelines never mutate
//     them, their private deltas cannot touch shared inputs).
//   - Base-data changes go through Advance: the single writer applies each
//     sealed base delta to every shared state exactly once (write lock),
//     caching each side's subtree output delta. It then fans the same base
//     deltas out to the sessions, whose pipelines read the cached subtree
//     delta (currentDelta) instead of re-deriving — and re-applying — it.
//   - EndAdvance clears the cached deltas once every session has consumed
//     them.
//
// Delta ordering stays exact: the writer advances a shared side S to S_new
// before any session processes the batch, and a session's join rule needs
// ΔS ⋈ P_old (its private side P is untouched until it processes ΔP, which
// is empty during a base-data fan-out) and S_new ⋈ ΔP on private changes
// (probing the already-advanced shared state) — both of which hold. To keep
// this true when a single join reads shared relations on both sides, only
// one side of any join is ever shared (preferring the left/build side).

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/expr"
	"repro/internal/relation"
)

// ShareStats counts the registry's work. Builds and Rebuilds tell the
// server's benchmarks that data-sized state was instantiated once per
// distinct fingerprint, not once per session; Reuses counts the pipeline
// attachments served by an existing state.
type ShareStats struct {
	Builds    int64 // side states constructed from a full subtree evaluation
	Rebuilds  int64 // states reconstructed by the writer (unknown base change)
	Reuses    int64 // pipeline attachments that found the state already built
	Evictions int64 // states dropped when their last pipeline released
	Advances  int64 // base-delta batches applied by the single writer
}

// ShareGroup is the registry of operator states shared across the prepared
// pipelines of one server. It holds two kinds of entries: join build sides
// (sharedSide) and data-cube index tiles (sharedCube). The zero value is not
// usable; use NewShareGroup.
type ShareGroup struct {
	mu     sync.RWMutex
	shared func(name string) bool // which (lowercase) relation names are shared
	sides  map[string]*sharedSide
	cubes  map[string]*sharedCube
	stats  ShareStats
}

// NewShareGroup creates a registry. shared reports whether a relation name
// (lowercase) is part of the shared base database — only subtrees reading
// exclusively shared relations are eligible for state sharing.
func NewShareGroup(shared func(name string) bool) *ShareGroup {
	return &ShareGroup{
		shared: shared,
		sides:  make(map[string]*sharedSide),
		cubes:  make(map[string]*sharedCube),
	}
}

// IsShared reports whether the relation name belongs to the shared base.
func (g *ShareGroup) IsShared(name string) bool {
	return g != nil && g.shared != nil && g.shared(strings.ToLower(name))
}

// Stats returns a copy of the registry counters.
func (g *ShareGroup) Stats() ShareStats {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.stats
}

// Sides reports the number of distinct shared states currently registered
// (join build sides plus cube tile stores).
func (g *ShareGroup) Sides() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.sides) + len(g.cubes)
}

// SharedRows reports the total rows currently held or summarized across
// shared states — the data-sized memory (or data-sized work, for tiles,
// which summarize their fact rows instead of retaining them) the sessions
// are amortizing.
func (g *ShareGroup) SharedRows() int64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var n int64
	for _, sd := range g.sides {
		n += int64(len(sd.ordered))
	}
	for _, sc := range g.cubes {
		n += sc.factRows
	}
	return n
}

// ApproxBytes estimates the memory held by shared states (row references,
// bucket tables, and key copies), for the shared-vs-private accounting the
// fan-out benchmark reports.
func (g *ShareGroup) ApproxBytes() int64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var b int64
	for _, sd := range g.sides {
		// ordered list + state row pointers ≈ two slots per row, plus bucket
		// and key overhead for keyed states.
		b += int64(len(sd.ordered)) * 48
		if sd.state != nil && sd.state.keyed {
			b += int64(len(sd.state.keys)) * 64
		}
	}
	for _, sc := range g.cubes {
		b += sc.tiles.approxBytes()
	}
	return b
}

// sharedSide is one shared join build side: the indexed state, the canonical
// subtree that feeds it (donated by the pipeline that built it), and the
// key evaluators of the owning join. All fields are guarded by the group
// lock; state is replaced wholesale on rebuild, so readers must fetch it
// through the side on every use.
type sharedSide struct {
	fp    string
	reads []string // lowercase relation names the subtree scans
	refs  int
	built bool

	sub     dnode           // canonical subtree; only the writer drives it after build
	keys    []expr.Compiled // owning join's key evaluators for this side
	kraw    []expr.Expr
	keyed   bool
	state   *joinSideState
	ordered []relation.Tuple // subtree output in maintenance order (for late probes)

	// cur is the subtree's output delta for the in-flight Advance batch;
	// session pipelines consume it through currentDelta instead of deriving
	// (and wrongly re-applying) it themselves.
	cur    relation.Delta
	curSet bool
}

// currentDelta returns the subtree output delta of the in-flight base-data
// batch (zero outside an Advance window). Callers hold the group read lock.
func (sd *sharedSide) currentDelta() relation.Delta {
	if !sd.curSet {
		return relation.Delta{}
	}
	return sd.cur
}

// lookup returns the side registered under fp, creating an empty entry on
// first use. Caller holds the group write lock.
func (g *ShareGroup) lookup(fp string, reads []string) *sharedSide {
	sd, ok := g.sides[fp]
	if !ok {
		sd = &sharedSide{fp: fp, reads: reads}
		g.sides[fp] = sd
	}
	return sd
}

// release drops one pipeline's reference. Unreferenced states are not
// evicted here — plan invalidation (view redefinition) releases and
// immediately re-acquires, and dropping the data-sized state across that
// window would rebuild it for nothing. Sweep reclaims them.
func (g *ShareGroup) release(sd *sharedSide) {
	g.mu.Lock()
	defer g.mu.Unlock()
	sd.refs--
}

// Sweep evicts states no pipeline references (sessions detached, plans
// redefined away), returning how many were dropped. The server calls it on
// session detach/eviction.
func (g *ShareGroup) Sweep() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for fp, sd := range g.sides {
		if sd.refs <= 0 {
			delete(g.sides, fp)
			g.stats.Evictions++
			n++
		}
	}
	for fp, sc := range g.cubes {
		if sc.refs <= 0 {
			delete(g.cubes, fp)
			g.stats.Evictions++
			n++
		}
	}
	return n
}

// buildState indexes rows by the side's join keys (rows with NULL keys never
// match and are kept out, exactly as the private path does).
func buildState(rows []relation.Tuple, keys []expr.Compiled, kraw []expr.Expr, keyed bool) (*joinSideState, error) {
	st := newJoinSideState(keyed, len(rows))
	env := &expr.Env{}
	key := make(relation.Tuple, len(keys))
	for _, row := range rows {
		if keyed {
			env.Row = row
			null, err := evalKeys(keys, kraw, key, env)
			if err != nil {
				return nil, err
			}
			if null {
				continue
			}
		}
		st.add(key, row)
	}
	return st, nil
}

// build evaluates the canonical subtree and publishes the indexed state.
// Caller holds the group write lock.
func (sd *sharedSide) build(ex *Executor) error {
	sd.sub.reset()
	rows, err := sd.sub.init(ex)
	if err != nil {
		return err
	}
	st, err := buildState(rows, sd.keys, sd.kraw, sd.keyed)
	if err != nil {
		return err
	}
	sd.state = st
	sd.ordered = append([]relation.Tuple(nil), rows...)
	sd.built = true
	return nil
}

// advance applies one base-delta batch to the shared state and caches the
// subtree's output delta for the sessions to consume. Caller holds the
// group write lock.
func (sd *sharedSide) advance(ex *Executor, in map[string]relation.Delta) error {
	din, err := sd.sub.delta(ex, in)
	if err != nil {
		return err
	}
	env := &expr.Env{}
	key := make(relation.Tuple, len(sd.keys))
	for _, row := range din.Ins {
		if sd.keyed {
			env.Row = row
			null, err := evalKeys(sd.keys, sd.kraw, key, env)
			if err != nil {
				return err
			}
			if null {
				sd.ordered = append(sd.ordered, row)
				continue
			}
		}
		sd.state.add(key, row)
		sd.ordered = append(sd.ordered, row)
	}
	for _, row := range din.Del {
		if sd.keyed {
			env.Row = row
			null, err := evalKeys(sd.keys, sd.kraw, key, env)
			if err != nil {
				return err
			}
			if null {
				continue // NULL keys were never in the state; ordered handles it
			}
		}
		if err := sd.state.remove(key, row); err != nil {
			return err
		}
	}
	sd.orderedRemoveAll(din.Del)
	sd.cur, sd.curSet = din, true
	return nil
}

// orderedRemoveAll drops one occurrence per deleted row from the ordered
// list in a single order-preserving pass — O(n + d) per batch, not O(n·d).
func (sd *sharedSide) orderedRemoveAll(del []relation.Tuple) {
	if len(del) == 0 {
		return
	}
	drop := make(map[string]int, len(del))
	for _, row := range del {
		drop[row.Key()]++
	}
	kept := sd.ordered[:0]
	for _, row := range sd.ordered {
		if k := row.Key(); drop[k] > 0 {
			drop[k]--
			continue
		}
		kept = append(kept, row)
	}
	sd.ordered = kept
}

// Advance applies one sealed base-data batch to every shared state, exactly
// once, before the server fans the same batch out to the sessions. in maps
// lowercase relation names to their deltas; unknown names whose change
// could not be expressed as a delta (the corresponding shared state is
// rebuilt from scratch). ex must resolve names against the shared base
// catalog. Call EndAdvance after every session has refreshed.
func (g *ShareGroup) Advance(ex *Executor, in map[string]relation.Delta, unknown map[string]bool) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.stats.Advances++
	for _, sd := range g.sides {
		if !sd.built {
			continue
		}
		if readsAny(sd.reads, unknown) {
			if err := sd.build(ex); err != nil {
				return fmt.Errorf("shared state %s: rebuild: %w", sd.fp, err)
			}
			g.stats.Rebuilds++
			// No cur delta: sessions reading this side fall back to full
			// recomputation (the server hands them a nil delta for the
			// unknown relation, which forces it).
			sd.cur, sd.curSet = relation.Delta{}, false
			continue
		}
		if err := sd.advance(ex, in); err != nil {
			// The delta could not be applied (inconsistent bookkeeping);
			// rebuild so sessions keep probing a correct state.
			if rerr := sd.build(ex); rerr != nil {
				return fmt.Errorf("shared state %s: %v; rebuild: %w", sd.fp, err, rerr)
			}
			g.stats.Rebuilds++
			sd.cur, sd.curSet = relation.Delta{}, false
		}
	}
	for _, sc := range g.cubes {
		if !sc.built {
			continue
		}
		if readsAny(sc.reads, unknown) {
			if err := sc.build(ex); err != nil {
				return fmt.Errorf("shared cube %s: rebuild: %w", sc.fp, err)
			}
			g.stats.Rebuilds++
			sc.cur, sc.curSet = relation.Delta{}, false
			continue
		}
		if err := sc.advance(ex, in); err != nil {
			if rerr := sc.build(ex); rerr != nil {
				return fmt.Errorf("shared cube %s: %v; rebuild: %w", sc.fp, err, rerr)
			}
			g.stats.Rebuilds++
			sc.cur, sc.curSet = relation.Delta{}, false
		}
	}
	return nil
}

// EndAdvance clears the cached per-side deltas of the finished batch.
func (g *ShareGroup) EndAdvance() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, sd := range g.sides {
		sd.cur, sd.curSet = relation.Delta{}, false
	}
	for _, sc := range g.cubes {
		sc.cur, sc.curSet = relation.Delta{}, false
	}
}

// --- shared cubes ---

// sharedCube is one shared data-cube tile store (see cube.go): the cells
// summarizing the fact subtree by (bin, group), the canonical subtree that
// feeds them (donated by the pipeline that built them, driven only by the
// writer afterwards), and the compiled shape needed to maintain them. All
// fields are guarded by the group lock; tiles are replaced wholesale on
// rebuild, so readers must fetch them through the entry on every use.
type sharedCube struct {
	fp    string
	reads []string // lowercase relation names the fact subtree scans
	refs  int
	built bool

	sub      dnode // canonical fact subtree; only the writer drives it after build
	shape    cubeShape
	global   bool // the view is a global aggregate (no GROUP BY)
	tiles    *cubeTiles
	factRows int64 // fact rows currently summarized by the tiles

	// cur is the fact subtree's output delta for the in-flight Advance
	// batch; sessions fold it into their private totals instead of deriving
	// (and wrongly re-applying) it themselves.
	cur    relation.Delta
	curSet bool
}

// currentDelta returns the fact subtree's output delta of the in-flight
// base-data batch (zero outside an Advance window). Callers hold the group
// read lock.
func (sc *sharedCube) currentDelta() relation.Delta {
	if !sc.curSet {
		return relation.Delta{}
	}
	return sc.cur
}

// lookupCube returns the cube registered under fp, creating an empty entry
// on first use. Caller holds the group write lock.
func (g *ShareGroup) lookupCube(fp string, reads []string) *sharedCube {
	sc, ok := g.cubes[fp]
	if !ok {
		sc = &sharedCube{fp: fp, reads: reads}
		g.cubes[fp] = sc
	}
	return sc
}

// releaseCube drops one pipeline's reference; Sweep reclaims unreferenced
// entries (same lifecycle as join sides).
func (g *ShareGroup) releaseCube(sc *sharedCube) {
	g.mu.Lock()
	defer g.mu.Unlock()
	sc.refs--
}

// build evaluates the canonical fact subtree and publishes fresh tiles, with
// prefix arrays ready (sessions cannot build them under the read lock).
// Caller holds the group write lock.
func (sc *sharedCube) build(ex *Executor) error {
	sc.sub.reset()
	rows, err := sc.sub.init(ex)
	if err != nil {
		return err
	}
	tiles := newCubeTiles(len(sc.shape.prog.specs), sc.global)
	if err := tiles.addRows(&sc.shape, rows); err != nil {
		return err
	}
	tiles.ensurePrefix()
	sc.tiles = tiles
	sc.factRows = int64(len(rows))
	sc.built = true
	return nil
}

// advance applies one base-delta batch to the shared tiles and caches the
// fact subtree's output delta for the sessions. The prefix arrays are
// rebuilt eagerly here, under the write lock, so sessions keep the O(1)
// answer path without ever mutating shared state. Caller holds the group
// write lock.
func (sc *sharedCube) advance(ex *Executor, in map[string]relation.Delta) error {
	din, err := sc.sub.delta(ex, in)
	if err != nil {
		return err
	}
	env := &expr.Env{}
	binKey := make(relation.Tuple, len(sc.shape.factKeys))
	scratch := sc.shape.newScratch()
	for _, row := range din.Ins {
		if _, _, err := sc.tiles.applyFactRow(&sc.shape, env, binKey, scratch, row, +1); err != nil {
			return err
		}
	}
	for _, row := range din.Del {
		if _, _, err := sc.tiles.applyFactRow(&sc.shape, env, binKey, scratch, row, -1); err != nil {
			return err
		}
	}
	sc.factRows += int64(len(din.Ins) - len(din.Del))
	sc.tiles.ensurePrefix()
	sc.tiles.takeBuilds() // writer-side maintenance, not a session's build
	sc.cur, sc.curSet = din, true
	return nil
}

func readsAny(reads []string, set map[string]bool) bool {
	for _, r := range reads {
		if set[r] {
			return true
		}
	}
	return false
}

// --- subtree fingerprinting ---

// bnodeInfo returns a canonical description of a bound subtree and the set
// of relation names it reads (lowercase, sorted). Two pipelines whose sides
// fingerprint identically compute identical states from the shared catalog,
// so the description doubles as the sharing key. ok is false for shapes
// whose evaluation depends on per-execution resolution (those never appear
// inside delta pipelines, but the walk is defensive).
func bnodeInfo(b bnode) (fp string, reads []string, ok bool) {
	set := map[string]bool{}
	fp, ok = fpWalk(b, set)
	if !ok {
		return "", nil, false
	}
	for r := range set {
		reads = append(reads, r)
	}
	sort.Strings(reads)
	return fp, reads, true
}

func fpWalk(b bnode, reads map[string]bool) (string, bool) {
	switch t := b.(type) {
	case *bScan:
		if t.s.Name == "" {
			return "const", true
		}
		reads[strings.ToLower(t.s.Name)] = true
		return "scan(" + strings.ToLower(t.s.Name) + t.s.Version.String() + " as " + t.s.Alias + ")", true
	case *bFilter:
		if t.pred.raw != nil && t.pred.fn == nil {
			return "", false
		}
		child, ok := fpWalk(t.child, reads)
		if !ok {
			return "", false
		}
		return "filter[" + t.pred.String() + "](" + child + ")", true
	case *bProject:
		if t.static == nil && len(t.items) > 0 {
			return "", false
		}
		child, ok := fpWalk(t.child, reads)
		if !ok {
			return "", false
		}
		var items []string
		for i := range t.items {
			items = append(items, t.items[i].String())
		}
		return "project[" + strings.Join(items, ",") + "](" + child + ")", true
	case *bJoin:
		if t.residual.raw != nil && t.residual.fn == nil {
			return "", false
		}
		l, ok := fpWalk(t.l, reads)
		if !ok {
			return "", false
		}
		r, ok := fpWalk(t.r, reads)
		if !ok {
			return "", false
		}
		return "join[" + exprList(t.lkRaw) + "=" + exprList(t.rkRaw) + ";" + t.residual.String() + "](" + l + ")(" + r + ")", true
	case *bAggregate:
		if t.static == nil {
			return "", false
		}
		child, ok := fpWalk(t.child, reads)
		if !ok {
			return "", false
		}
		p := t.static
		hav := "<nil>"
		if t.a.Having != nil {
			hav = t.a.Having.String()
		}
		return "agg[" + strings.Join(p.groupStr, ",") + ";" + strings.Join(p.itemStr, ",") + ";" + hav + "](" + child + ")", true
	case *bDistinct:
		child, ok := fpWalk(t.child, reads)
		if !ok {
			return "", false
		}
		return "distinct(" + child + ")", true
	case *bSort:
		if t.static == nil {
			return "", false
		}
		child, ok := fpWalk(t.child, reads)
		if !ok {
			return "", false
		}
		var keys []string
		for i, k := range t.keys {
			dir := "asc"
			if t.s.Keys[i].Desc {
				dir = "desc"
			}
			keys = append(keys, k.String()+" "+dir)
		}
		return "sort[" + strings.Join(keys, ",") + "](" + child + ")", true
	case *bLimit:
		child, ok := fpWalk(t.child, reads)
		if !ok {
			return "", false
		}
		return fmt.Sprintf("limit[%d](%s)", t.n, child), true
	case *bSetOp:
		l, ok := fpWalk(t.l, reads)
		if !ok {
			return "", false
		}
		r, ok := fpWalk(t.r, reads)
		if !ok {
			return "", false
		}
		return fmt.Sprintf("setop[%d,%t](%s)(%s)", t.kind, t.all, l, r), true
	default:
		return "", false
	}
}

func exprList(es []expr.Expr) string {
	var out []string
	for _, e := range es {
		out = append(out, e.String())
	}
	return strings.Join(out, ",")
}
