package exec

// Randomized parity for incremental ORDER BY / LIMIT: random insert /
// delete / update / boundary-targeted streams drive stateful pipelines over
// ordered programs, and after every event the maintained output must equal
// a full recomputation — in exact row order, not just as a bag. Same oracle
// pattern as core's store_parity_test.go: the stateless path (RunPrepared,
// which re-sorts from scratch) is the ground truth the delta path must
// reproduce, covering ties, duplicate keys, k > |rows|, k = 0, and
// deletions exactly at the k-th boundary.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/relation"
)

// topkCatalog holds one mutable base relation the streams churn.
func topkCatalog() (memCatalog, *relation.Relation) {
	items := relation.New("Items", relation.NewSchema(
		relation.Col("id", relation.KindInt),
		relation.Col("grp", relation.KindString),
		relation.Col("v", relation.KindInt),
		relation.Col("w", relation.KindInt),
	))
	return memCatalog{"items": items}, items
}

var topkGroups = []string{"a", "b", "c"}

// randItem draws from tight domains so duplicate rows and key ties are
// constant, not coincidental.
func randItem(rng *rand.Rand) relation.Tuple {
	return relation.Tuple{
		relation.Int(int64(rng.Intn(30))),
		relation.String(topkGroups[rng.Intn(len(topkGroups))]),
		relation.Int(int64(rng.Intn(10))),
		relation.Int(int64(rng.Intn(4))),
	}
}

func prepareOrdered(t *testing.T, cat memCatalog, sql string) *Prepared {
	t.Helper()
	q, err := parser.ParseQuery(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	n, err := plan.Build(q, cat)
	if err != nil {
		t.Fatalf("build %q: %v", sql, err)
	}
	funcs := expr.NewRegistry()
	n = plan.Optimize(n, funcs)
	p, err := Prepare(n, funcs)
	if err != nil {
		t.Fatalf("prepare %q: %v", sql, err)
	}
	if !p.DeltaSafe() {
		t.Fatalf("%q should be delta-safe, reason: %s", sql, p.DeltaReason())
	}
	return p
}

func assertOrderedEqual(t *testing.T, step string, got, want []relation.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, oracle has %d\ngot:    %v\noracle: %v", step, len(got), len(want), got, want)
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("%s: row %d = %v, oracle %v\ngot:    %v\noracle: %v", step, i, got[i], want[i], got, want)
		}
	}
}

func TestTopKDeltaOrderedParityWithRecompute(t *testing.T) {
	programs := []struct {
		name string
		sql  string
	}{
		{"orderby-full", "SELECT id, v FROM Items ORDER BY v, id"},
		{"topk-desc", "SELECT id, v, w FROM Items ORDER BY v DESC, id LIMIT 5"},
		{"topk-dup-rows", "SELECT grp, w FROM Items ORDER BY w DESC, grp LIMIT 7"},
		{"topk-k0", "SELECT id FROM Items ORDER BY id LIMIT 0"},
		{"topk-k-over-rows", "SELECT id, v FROM Items WHERE v >= 2 ORDER BY v DESC, id LIMIT 1000"},
		{"topk-over-aggregate", "SELECT grp, sum(v) AS total, count(*) AS n FROM Items GROUP BY grp ORDER BY total DESC, grp LIMIT 2"},
		{"orderby-over-distinct", "SELECT DISTINCT grp, v FROM Items ORDER BY v DESC, grp"},
	}
	for _, pr := range programs {
		t.Run(pr.name, func(t *testing.T) {
			cat, items := topkCatalog()
			rng := rand.New(rand.NewSource(23))
			for i := 0; i < 12; i++ { // non-empty start, with duplicates likely
				items.MustAppend(randItem(rng))
			}
			live := prepareOrdered(t, cat, pr.sql)
			oracle := prepareOrdered(t, cat, pr.sql) // stateless arm of the same plan
			ex := New(cat)

			res, err := ex.RunStateful(live)
			if err != nil {
				t.Fatal(err)
			}
			// mat mirrors what the engine materializes: bag-patched by each
			// output delta, then overwritten with the maintained order.
			mat := relation.New("out", res.Rel.Schema)
			mat.Rows = append([]relation.Tuple(nil), res.Rel.Rows...)

			check := func(step string) {
				want, err := ex.RunPrepared(oracle)
				if err != nil {
					t.Fatalf("%s: oracle: %v", step, err)
				}
				rows := mat.Rows
				if live.Ordered() {
					rows = live.OrderedRows()
				}
				assertOrderedEqual(t, step, rows, want.Rel.Rows)
				if !relation.Equal(mat, want.Rel) {
					t.Fatalf("%s: materialized bag diverges from oracle", step)
				}
				// OrderRows (the engine's restore-order primitive) must
				// re-establish the exact output order from a scrambled copy
				// of the same bag — the rollback/undo case.
				scrambled := append([]relation.Tuple(nil), want.Rel.Rows...)
				for i, j := 0, len(scrambled)-1; i < j; i, j = i+1, j-1 {
					scrambled[i], scrambled[j] = scrambled[j], scrambled[i]
				}
				if err := live.OrderRows(scrambled); err != nil {
					t.Fatalf("%s: OrderRows: %v", step, err)
				}
				assertOrderedEqual(t, step+" (OrderRows)", scrambled, want.Rel.Rows)
			}
			check("after priming")

			apply := func(step string, d relation.Delta) {
				if err := items.ApplyDelta(d); err != nil {
					t.Fatalf("%s: base apply: %v", step, err)
				}
				od, err := ex.ApplyDelta(live, map[string]relation.Delta{"items": d})
				if err != nil {
					t.Fatalf("%s: pipeline: %v", step, err)
				}
				if err := mat.ApplyDelta(od); err != nil {
					t.Fatalf("%s: output delta does not apply: %v", step, err)
				}
				if live.Ordered() {
					mat.Rows = live.OrderedRows()
				}
				check(step)
			}

			for ev := 0; ev < 160; ev++ {
				step := fmt.Sprintf("event %d", ev)
				switch op := rng.Intn(10); {
				case op < 4: // insert
					apply(step, relation.Delta{Ins: []relation.Tuple{randItem(rng)}})
				case op < 6 && len(items.Rows) > 0: // delete a random held row
					row := items.Rows[rng.Intn(len(items.Rows))]
					apply(step, relation.Delta{Del: []relation.Tuple{row}})
				case op < 8 && len(items.Rows) > 0: // update: delete+insert in one event
					row := items.Rows[rng.Intn(len(items.Rows))]
					apply(step, relation.Delta{Del: []relation.Tuple{row}, Ins: []relation.Tuple{randItem(rng)}})
				case op == 8: // boundary surgery at the current k-th output row
					want, err := ex.RunPrepared(oracle)
					if err != nil {
						t.Fatal(err)
					}
					out := want.Rel.Rows
					if len(out) == 0 {
						apply(step, relation.Delta{Ins: []relation.Tuple{randItem(rng)}})
						continue
					}
					kth := out[len(out)-1] // the row holding the boundary
					// Find a base row contributing a v/w tie with the
					// boundary and delete it, forcing a promotion across the
					// k-th position; fall back to an insert when the output
					// row has no 1:1 base counterpart (aggregates, distinct).
					deleted := false
					for _, base := range items.Rows {
						if base[2].Equal(kth[len(kth)-1]) || base[3].Equal(kth[len(kth)-1]) {
							apply(step+" (boundary delete)", relation.Delta{Del: []relation.Tuple{base}})
							deleted = true
							break
						}
					}
					if !deleted {
						apply(step, relation.Delta{Ins: []relation.Tuple{randItem(rng)}})
					}
				default: // burst: several changes in one delta
					var d relation.Delta
					for j := 0; j < 3; j++ {
						d.Ins = append(d.Ins, randItem(rng))
					}
					if len(items.Rows) > 1 {
						d.Del = append(d.Del, items.Rows[0], items.Rows[len(items.Rows)-1])
					}
					apply(step, d)
				}
			}

			// Drain to empty: every maintained prefix must survive k > |rows|
			// shrinking through the boundary to the empty output.
			for len(items.Rows) > 0 {
				row := items.Rows[len(items.Rows)-1]
				apply("drain", relation.Delta{Del: []relation.Tuple{row}})
			}
			if live.Ordered() && len(live.OrderedRows()) != 0 {
				t.Fatal("drained pipeline still reports ordered rows")
			}
		})
	}
}
