package exec

// Tests for the compile-once/run-many executor: bound plans must survive
// data changes, match fresh plan+run results exactly, and the hash pipeline
// must agree with the string-key semantics it replaced.

import (
	"testing"

	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/relation"
)

// prepareSQL builds, optimizes, and prepares a query against the catalog.
func prepareSQL(t *testing.T, cat memCatalog, sql string) (*Executor, *Prepared) {
	t.Helper()
	q, err := parser.ParseQuery(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	ex := New(cat)
	p, err := plan.Build(q, cat)
	if err != nil {
		t.Fatalf("build %q: %v", sql, err)
	}
	p = plan.Optimize(p, ex.Funcs)
	prep, err := Prepare(p, ex.Funcs)
	if err != nil {
		t.Fatalf("prepare %q: %v", sql, err)
	}
	return ex, prep
}

// parityQueries exercises every operator the prepared path rewrote: filter,
// project, hash join with residual, aggregation with HAVING, distinct, set
// operations, sorting, IN sources, and scalar subqueries.
var parityQueries = []string{
	"SELECT productId, revenue * 2 AS dbl FROM Sales WHERE revenue >= 100",
	"SELECT region, sum(revenue) AS total, count(*) AS n FROM Sales GROUP BY region",
	"SELECT region, sum(revenue) AS total FROM Sales GROUP BY region HAVING sum(revenue) > 100",
	"SELECT s.productId, r.country FROM Sales AS s, Regions AS r WHERE s.region = r.name AND s.profit > 0",
	"SELECT DISTINCT region FROM Sales",
	"SELECT region FROM Sales UNION SELECT name FROM Regions",
	"SELECT region FROM Sales INTERSECT SELECT name FROM USRegions",
	"SELECT region FROM Sales MINUS SELECT name FROM USRegions",
	"SELECT productId FROM Sales WHERE region IN USRegions",
	"SELECT productId FROM Sales WHERE revenue > (SELECT min(revenue) FROM Sales) ORDER BY productId DESC LIMIT 3",
	"SELECT count(*) AS n FROM Sales WHERE revenue > 1000000",
	"SELECT max(profit) AS m FROM Sales WHERE profit < -100",
}

// TestPreparedMatchesFreshRun checks each parity query returns identical
// results through a reused Prepared and through a fresh RunQuery.
func TestPreparedMatchesFreshRun(t *testing.T) {
	for _, sql := range parityQueries {
		cat := salesCatalog()
		ex, prep := prepareSQL(t, cat, sql)
		got, err := ex.RunPrepared(prep)
		if err != nil {
			t.Fatalf("prepared %q: %v", sql, err)
		}
		want := runSQL(t, cat, sql)
		g := StripQualifiers(got.Rel).Clone()
		g.SortDeterministic()
		w := want.Clone()
		w.SortDeterministic()
		if !relation.Equal(g, w) {
			t.Fatalf("query %q: prepared result differs\nprepared:\n%s\nfresh:\n%s", sql, g, w)
		}
	}
}

// TestPreparedReusedAcrossDataChanges mutates the catalog between runs of
// the same Prepared — the engine's recompute loop shape — and checks results
// track the data, matching a fresh plan each time.
func TestPreparedReusedAcrossDataChanges(t *testing.T) {
	cat := salesCatalog()
	sql := "SELECT region, sum(revenue) AS total FROM Sales GROUP BY region"
	ex, prep := prepareSQL(t, cat, sql)

	for round := 0; round < 4; round++ {
		got, err := ex.RunPrepared(prep)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		want := runSQL(t, cat, sql)
		g := StripQualifiers(got.Rel).Clone()
		g.SortDeterministic()
		w := want.Clone()
		w.SortDeterministic()
		if !relation.Equal(g, w) {
			t.Fatalf("round %d: prepared diverged from fresh run\nprepared:\n%s\nfresh:\n%s", round, g, w)
		}
		// Mutate: add a row to Sales (new region every other round).
		region := "east"
		if round%2 == 1 {
			region = "south"
		}
		cat["sales"].MustAppend(relation.Tuple{
			relation.Int(int64(100 + round)), relation.String(region),
			relation.Float(float64(10 * (round + 1))), relation.Float(1),
		})
	}
}

// TestPreparedLineageParity runs a prepared plan with lineage capture and
// checks the lineage index matches a fresh lineage-capturing run.
func TestPreparedLineageParity(t *testing.T) {
	cat := salesCatalog()
	sql := "SELECT region, sum(revenue) AS total FROM Sales WHERE profit > 0 GROUP BY region"
	ex, prep := prepareSQL(t, cat, sql)
	ex.CaptureLineage = true
	got, err := ex.RunPrepared(prep)
	if err != nil {
		t.Fatal(err)
	}
	fresh := New(cat)
	fresh.CaptureLineage = true
	q, err := parser.ParseQuery(sql)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.RunQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Lin) != len(want.Lin) || len(got.Lin) != got.Rel.Len() {
		t.Fatalf("lineage length mismatch: prepared %d, fresh %d, rows %d", len(got.Lin), len(want.Lin), got.Rel.Len())
	}
	// Same row order (group first-seen order is deterministic), so lineage
	// rows must align exactly.
	for i := range got.Lin {
		if len(got.Lin[i]) != len(want.Lin[i]) {
			t.Fatalf("row %d lineage differs: %v vs %v", i, got.Lin[i], want.Lin[i])
		}
		for rel, idx := range got.Lin[i] {
			widx := want.Lin[i][rel]
			if len(idx) != len(widx) {
				t.Fatalf("row %d lineage for %s differs: %v vs %v", i, rel, idx, widx)
			}
			for j := range idx {
				if idx[j] != widx[j] {
					t.Fatalf("row %d lineage for %s differs: %v vs %v", i, rel, idx, widx)
				}
			}
		}
	}
}

// TestNullJoinKeysNeverMatch pins SQL join-key NULL semantics through the
// hash pipeline.
func TestNullJoinKeysNeverMatch(t *testing.T) {
	a := relation.New("A", relation.NewSchema(relation.Col("k", relation.KindInt)))
	a.MustAppend(relation.Tuple{relation.Int(1)})
	a.MustAppend(relation.Tuple{relation.Null()})
	b := relation.New("B", relation.NewSchema(relation.Col("k", relation.KindInt)))
	b.MustAppend(relation.Tuple{relation.Int(1)})
	b.MustAppend(relation.Tuple{relation.Null()})
	cat := memCatalog{"a": a, "b": b}
	rel := runSQL(t, cat, "SELECT a.k FROM A AS a, B AS b WHERE a.k = b.k")
	if rel.Len() != 1 {
		t.Fatalf("NULL keys matched: got %d rows\n%s", rel.Len(), rel)
	}
}

// TestCrossKindKeysCollideAsSQL checks Int/Float key normalization through
// the hash join (Int(3) must join Float(3.0)) while strings stay distinct.
func TestCrossKindKeysCollideAsSQL(t *testing.T) {
	a := relation.New("A", relation.NewSchema(relation.Col("k", relation.KindInt)))
	a.MustAppend(relation.Tuple{relation.Int(3)})
	b := relation.New("B", relation.NewSchema(relation.Col("k", relation.KindFloat)))
	b.MustAppend(relation.Tuple{relation.Float(3.0)})
	b.MustAppend(relation.Tuple{relation.String("3")})
	cat := memCatalog{"a": a, "b": b}
	rel := runSQL(t, cat, "SELECT a.k FROM A AS a, B AS b WHERE a.k = b.k")
	if rel.Len() != 1 {
		t.Fatalf("cross-kind equi-join: got %d rows, want 1\n%s", rel.Len(), rel)
	}
}

// TestInPredicateInsideJoinConjunct: an equality conjunct whose side
// contains an unresolved IN source must not be treated as a hash-join key —
// it needs per-execution resolution, so it belongs in the residual.
// Regression test: the prepare-time split once classified it as a key and
// every execution failed with "IN source not resolved".
func TestInPredicateInsideJoinConjunct(t *testing.T) {
	a := relation.New("A", relation.NewSchema(relation.Col("x", relation.KindString)))
	a.MustAppend(relation.Tuple{relation.String("east")})
	a.MustAppend(relation.Tuple{relation.String("north")})
	b := relation.New("B", relation.NewSchema(relation.Col("flag", relation.KindBool)))
	b.MustAppend(relation.Tuple{relation.Bool(true)})
	us := relation.New("S", relation.NewSchema(relation.Col("name", relation.KindString)))
	us.MustAppend(relation.Tuple{relation.String("east")})
	cat := memCatalog{"a": a, "b": b, "s": us}
	rel := runSQL(t, cat, "SELECT a.x FROM A AS a, B AS b WHERE (a.x IN S) = b.flag")
	if rel.Len() != 1 || rel.Rows[0][0].AsString() != "east" {
		t.Fatalf("IN-in-join-conjunct: want one row 'east', got\n%s", rel)
	}
}

// TestPreparedEmptyInputDefersErrors: an unknown column in a predicate must
// not error while the input is empty — binding defers unresolvable
// references to row evaluation, like the interpreter did.
func TestPreparedEmptyInputDefersErrors(t *testing.T) {
	empty := relation.New("E", relation.NewSchema(relation.Col("x", relation.KindInt)))
	cat := memCatalog{"e": empty}
	rel := runSQL(t, cat, "SELECT x FROM E WHERE ghost > 1")
	if rel.Len() != 0 {
		t.Fatalf("expected empty result, got %d rows", rel.Len())
	}
	empty.MustAppend(relation.Tuple{relation.Int(1)})
	q, err := parser.ParseQuery("SELECT x FROM E WHERE ghost > 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(cat).RunQuery(q); err == nil {
		t.Fatal("unknown column over non-empty input should error")
	}
}
