package exec

// Columnar filter kernel. Crossfilter predicates are overwhelmingly
// column-compare-literal (brush bounds over a bin column); evaluating them
// through the compiled-closure interpreter costs an env store, a closure
// call, and Value boxing per row. The kernel recognizes the shape at
// prepare time and, at run time, shreds the input into a relation.Batch so
// the comparison runs as a tight typed loop over one column with a
// selection bitmap — the row path is kept for every other predicate.

import (
	"repro/internal/expr"
	"repro/internal/relation"
)

// filterKernel is the compiled form of a `column <op> literal` predicate
// (either operand order; the op is normalized to column-on-the-left).
type filterKernel struct {
	ok  bool
	idx int            // column index in the input schema
	op  expr.BinOp     // one of OpEq..OpGe, column on the left
	c   relation.Value // the literal; never NULL
	ci  int64          // int payload when c is an int
	cf  float64        // numeric payload (AsFloat) when c is numeric
	cs  string         // string payload when c is a string
}

// buildFilterKernel recognizes a compilable predicate, returning a zero
// (disabled) kernel otherwise. A NULL literal is left to the row path: the
// comparison is NULL for every row, so nothing would pass anyway.
func buildFilterKernel(pred bexpr) filterKernel {
	bin, ok := pred.raw.(*expr.Binary)
	if !ok {
		return filterKernel{}
	}
	op := bin.Op
	switch op {
	case expr.OpEq, expr.OpNe, expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe:
	default:
		return filterKernel{}
	}
	col, l := bin.L.(*expr.Column)
	lit, r := bin.R.(*expr.Lit)
	if !l || !r {
		// Mirror `literal <op> column` to column-on-the-left.
		if col, r = bin.R.(*expr.Column); !r {
			return filterKernel{}
		}
		if lit, l = bin.L.(*expr.Lit); !l {
			return filterKernel{}
		}
		switch op {
		case expr.OpLt:
			op = expr.OpGt
		case expr.OpLe:
			op = expr.OpGe
		case expr.OpGt:
			op = expr.OpLt
		case expr.OpGe:
			op = expr.OpLe
		}
	}
	if lit.V.IsNull() {
		return filterKernel{}
	}
	idx, err := pred.schema.IndexErr(col.Qualifier, col.Name)
	if err != nil {
		return filterKernel{}
	}
	k := filterKernel{ok: true, idx: idx, op: op, c: lit.V}
	switch lit.V.Kind() {
	case relation.KindInt:
		k.ci, _ = lit.V.AsInt()
		k.cf, _ = lit.V.AsFloat()
	case relation.KindFloat:
		k.cf, _ = lit.V.AsFloat()
	case relation.KindString:
		k.cs = lit.V.AsString()
	}
	return k
}

// opMatch reports whether a three-way comparison result c (-1, 0, +1)
// satisfies the kernel's operator — the same decision Binary.Eval makes
// from Value.Compare for non-NULL operands.
func opMatch(c int, op expr.BinOp) bool {
	switch op {
	case expr.OpEq:
		return c == 0
	case expr.OpNe:
		return c != 0
	case expr.OpLt:
		return c < 0
	case expr.OpLe:
		return c <= 0
	case expr.OpGt:
		return c > 0
	default: // OpGe
		return c >= 0
	}
}

// matchVal evaluates the kernel against one column value (the fused
// streaming path). NULL operands make the comparison NULL, which a filter
// drops.
func (k *filterKernel) matchVal(v relation.Value) bool {
	if v.IsNull() {
		return false
	}
	return opMatch(v.Compare(k.c), k.op)
}

// filterBatch shreds rows into a single-column batch and runs the
// comparison as a typed loop, appending passing rows to out. The second
// return is false when the kernel is disabled (callers keep the row path).
// Typed loops fire only on same-kind comparisons; everything else goes
// through Value.Compare, whose ordering Binary.Eval uses too — the kernel
// is semantically exact, not approximate.
func (k *filterKernel) filterBatch(rows []relation.Tuple, out []relation.Tuple) ([]relation.Tuple, bool) {
	if !k.ok {
		return nil, false
	}
	if len(rows) == 0 {
		return out, true
	}
	if k.idx >= len(rows[0]) {
		return nil, false
	}
	b := relation.FromTuples(rows, len(rows[0]), []int{k.idx})
	col := &b.Cols[k.idx]
	b.Sel = relation.NewBitmap(b.N)
	ck := k.c.Kind()
	switch {
	case col.Kind == relation.KindInt && ck == relation.KindInt:
		for i, v := range col.Ints {
			if col.Null(i) {
				continue
			}
			c := 0
			if v < k.ci {
				c = -1
			} else if v > k.ci {
				c = 1
			}
			if opMatch(c, k.op) {
				b.Sel.Set(i)
			}
		}
	case col.Kind == relation.KindInt && ck == relation.KindFloat:
		for i, v := range col.Ints {
			if !col.Null(i) && opMatch(cmpFloat(float64(v), k.cf), k.op) {
				b.Sel.Set(i)
			}
		}
	case col.Kind == relation.KindFloat && (ck == relation.KindInt || ck == relation.KindFloat):
		for i, v := range col.Floats {
			if !col.Null(i) && opMatch(cmpFloat(v, k.cf), k.op) {
				b.Sel.Set(i)
			}
		}
	case col.Kind == relation.KindString && ck == relation.KindString:
		for i, v := range col.Strs {
			if col.Null(i) {
				continue
			}
			c := 0
			if v < k.cs {
				c = -1
			} else if v > k.cs {
				c = 1
			}
			if opMatch(c, k.op) {
				b.Sel.Set(i)
			}
		}
	default:
		// Mixed or cross-kind column: per-value Compare, still closure-free.
		for i := 0; i < b.N; i++ {
			v := col.Value(i)
			if !v.IsNull() && opMatch(v.Compare(k.c), k.op) {
				b.Sel.Set(i)
			}
		}
	}
	return b.Tuples(out), true
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
