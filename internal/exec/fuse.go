package exec

// Fused delta rules. A join (or filter/project chain) delta normally
// materializes its output rows — every intermediate concatenated tuple
// becomes a []Value — only for the aggregate above it to immediately fold
// each row into a group accumulator and drop it. Fusion cuts the
// materialization out: operators that implement streamer push their output
// delta row-by-row into a sink, and dAggregate consumes the stream
// directly. Steady-state brush cost on the non-cube delta path is dominated
// by exactly this join→aggregate hand-off.
//
// Late materialization: a sink receives the logical row as two segments
// (l, r) whose concatenation is the row; r is nil when the producer holds a
// whole row. A join emits its stored side tuples by reference instead of
// copying them into a concatenated scratch — consumers that only index
// bare columns (filter kernels, bare group keys and aggregate arguments)
// never touch the memory between; only closure-evaluated expressions force
// a concatenation. Either segment may be reused scratch valid only for the
// duration of the call; consumers that retain a row must copy it.
//
// Interleaving safety: a fused stream delivers inserts and deletes in the
// producing operator's order (left-delta inserts, left deletes, right
// inserts, right deletes) instead of the all-inserts-then-all-deletes order
// of the materialized path. Within one apply, every delete references the
// before-state (a delta's deletes remove rows that exist), so each group's
// pending deletes never exceed its pre-apply row count — no interleaving
// can drive a count negative or delete from a group never seen.

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/relation"
)

// ExecStats counts the executor's columnar/fused delta work. The counters
// are updated with atomics: shared-side subtrees are advanced by the
// server's writer under the group lock while sessions drain their stats
// under the engine lock.
type ExecStats struct {
	BatchRows    int64 // rows pushed through fused streams
	FusedApplies int64 // non-empty delta applications served by a fused stream
	RowFallbacks int64 // fusible applies that ran row-at-a-time (fusion disabled)
}

// deltaSink consumes one output-delta row with a sign (+1 insert, -1
// delete). The logical row is the concatenation of l and r; r is nil when
// the producer already holds the whole row in l. Segments may be reused
// scratch tuples valid only for the duration of the call.
type deltaSink func(l, r relation.Tuple, sign int) error

// splitCol indexes the logical concatenation of l and r.
func splitCol(l, r relation.Tuple, idx int) relation.Value {
	if idx < len(l) {
		return l[idx]
	}
	return r[idx-len(l)]
}

// concatInto materializes the logical row into dst (grown as needed) and
// returns it. Used by closure-evaluated expressions that need env.Row.
func concatInto(dst, l, r relation.Tuple) relation.Tuple {
	dst = append(dst[:0], l...)
	return append(dst, r...)
}

// streamer is a delta operator that can push its output delta into a sink
// instead of materializing it. streamDelta performs exactly the state
// mutations delta would (it is delta with the materialization removed);
// the two must never both run for the same input batch.
type streamer interface {
	streamDelta(ex *Executor, in map[string]relation.Delta, sink deltaSink) error
}

// fusibleChain reports whether a child chain streams all the way down:
// filter/project wrappers over a scan or join. A join streams regardless of
// its children — it materializes their deltas anyway to probe and update
// its side states.
func fusibleChain(d dnode) bool {
	switch t := d.(type) {
	case *dScan, *dJoin:
		return true
	case *dFilter:
		return fusibleChain(t.child)
	case *dProject:
		return fusibleChain(t.child)
	default:
		return false
	}
}

// --- scan ---

func (d *dScan) streamDelta(ex *Executor, in map[string]relation.Delta, sink deltaSink) error {
	if d.s.Name == "" {
		return nil
	}
	din := in[strings.ToLower(d.s.Name)]
	for _, row := range din.Ins {
		if err := sink(row, nil, +1); err != nil {
			return err
		}
	}
	for _, row := range din.Del {
		if err := sink(row, nil, -1); err != nil {
			return err
		}
	}
	return nil
}

// --- filter ---

func (d *dFilter) streamDelta(ex *Executor, in map[string]relation.Delta, sink deltaSink) error {
	child, ok := d.child.(streamer)
	if !ok {
		return fmt.Errorf("exec: filter child is not streamable")
	}
	pred := d.b.pred.fn
	if pred == nil {
		return child.streamDelta(ex, in, sink)
	}
	if d.b.kern.ok {
		// Column-compare-literal predicate: check the one column without
		// env, closure, or row materialization.
		kern := &d.b.kern
		return child.streamDelta(ex, in, func(l, r relation.Tuple, sign int) error {
			if kern.matchVal(splitCol(l, r, kern.idx)) {
				return sink(l, r, sign)
			}
			return nil
		})
	}
	env := &expr.Env{}
	var scratch relation.Tuple
	return child.streamDelta(ex, in, func(l, r relation.Tuple, sign int) error {
		row := l
		if r != nil {
			scratch = concatInto(scratch, l, r)
			row = scratch
		}
		env.Row = row
		v, err := pred(env)
		if err != nil {
			return fmt.Errorf("filter %s: %w", d.b.pred.String(), err)
		}
		if !v.IsNull() && v.Truthy() {
			return sink(row, nil, sign)
		}
		return nil
	})
}

// --- project ---

func (d *dProject) streamDelta(ex *Executor, in map[string]relation.Delta, sink deltaSink) error {
	child, ok := d.child.(streamer)
	if !ok {
		return fmt.Errorf("exec: project child is not streamable")
	}
	fns := d.b.static
	cols := d.b.cols
	env := &expr.Env{}
	out := make(relation.Tuple, len(fns))
	var scratch relation.Tuple
	return child.streamDelta(ex, in, func(l, r relation.Tuple, sign int) error {
		materialized := r == nil
		env.Row = l
		for c, fn := range fns {
			if idx := cols[c]; idx >= 0 {
				out[c] = splitCol(l, r, idx)
				continue
			}
			if !materialized {
				scratch = concatInto(scratch, l, r)
				env.Row = scratch
				materialized = true
			}
			v, err := fn(env)
			if err != nil {
				return fmt.Errorf("project %s: %w", d.b.items[c].String(), err)
			}
			out[c] = v
		}
		return sink(out, nil, sign)
	})
}

// --- join ---

// streamDelta is dJoin.delta with the arena materialization replaced by
// sink calls: matched pairs ship as (left, right) segments, copied into a
// concatenated scratch only when the residual predicate needs env.Row.
// State handling is identical: shared sides consume the writer's cached
// subtree delta and are never mutated; private sides fold their delta in
// after emitting matches against the other side's pre-batch state.
func (d *dJoin) streamDelta(ex *Executor, in map[string]relation.Delta, sink deltaSink) error {
	var dl, dr relation.Delta
	var err error
	if d.lfp != "" {
		dl = d.lSide.currentDelta()
	} else if dl, err = d.l.delta(ex, in); err != nil {
		return err
	}
	if d.rfp != "" {
		dr = d.rSide.currentDelta()
	} else if dr, err = d.r.delta(ex, in); err != nil {
		return err
	}
	if dl.Empty() && dr.Empty() {
		return nil
	}
	keyed := len(d.b.lks) > 0
	residual := d.b.residual.fn != nil
	env := &expr.Env{}
	key := make(relation.Tuple, len(d.b.lks))
	lw := d.b.lw
	var scratch relation.Tuple
	if residual {
		scratch = make(relation.Tuple, d.b.lw+d.b.rw)
	}

	emitMatches := func(row relation.Tuple, other *joinSideState, left bool, sign int) error {
		for _, orow := range other.matches(key) {
			lpart, rpart := row, orow
			if !left {
				lpart, rpart = orow, row
			}
			if residual {
				copy(scratch, lpart)
				copy(scratch[lw:], rpart)
				ok, err := d.residualOK(scratch, env)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
				if err := sink(scratch, nil, sign); err != nil {
					return err
				}
				continue
			}
			if err := sink(lpart, rpart, sign); err != nil {
				return err
			}
		}
		return nil
	}

	process := func(dd relation.Delta, ks []expr.Compiled, kraw []expr.Expr, state, other *joinSideState, left, mutate bool) error {
		handle := func(rows []relation.Tuple, sign int) error {
			for _, row := range rows {
				if keyed {
					env.Row = row
					null, err := evalKeys(ks, kraw, key, env)
					if err != nil {
						return err
					}
					if null {
						continue // NULL keys never matched anything
					}
				}
				if err := emitMatches(row, other, left, sign); err != nil {
					return err
				}
				if !mutate {
					continue
				}
				if sign > 0 {
					state.add(key, row)
				} else if err := state.remove(key, row); err != nil {
					return err
				}
			}
			return nil
		}
		if err := handle(dd.Ins, +1); err != nil {
			return err
		}
		return handle(dd.Del, -1)
	}
	if err := process(dl, d.b.lks, d.b.lkRaw, d.leftState(), d.rightState(), true, d.lfp == ""); err != nil {
		return err
	}
	return process(dr, d.b.rks, d.b.rkRaw, d.rightState(), d.leftState(), false, d.rfp == "")
}

// --- aggregate (the consumer) ---

// deltaFused is dAggregate.delta over a streamed child: each pushed row
// folds straight into its group accumulator with no intermediate
// materialization. When every grouping key and aggregate argument is a
// bare column (prog.allBare), split rows are consumed by index without
// ever concatenating; otherwise the segments are materialized into one
// reused scratch. Streamed rows may be reused scratch tuples, so group
// representatives are always freshly copied.
func (d *dAggregate) deltaFused(ex *Executor, in map[string]relation.Delta) (relation.Delta, error) {
	prog := d.prog()
	env := &expr.Env{}
	key := make(relation.Tuple, len(prog.groupBy))
	var touched []*dgroup
	var n int64
	var scratch relation.Tuple
	allBare := prog.allBare
	d.volatile = true
	err := d.stream.streamDelta(ex, in, func(l, r relation.Tuple, sign int) error {
		n++
		if r != nil && allBare {
			return d.accumulateSplit(key, l, r, sign, &touched)
		}
		row := l
		if r != nil {
			scratch = concatInto(scratch, l, r)
			row = scratch
		}
		_, aerr := d.accumulate(env, key, row, sign, &touched)
		return aerr
	})
	d.volatile = false
	if err != nil {
		return relation.Delta{}, err
	}
	if d.es != nil && n > 0 {
		atomic.AddInt64(&d.es.FusedApplies, 1)
		atomic.AddInt64(&d.es.BatchRows, n)
	}
	if len(touched) == 0 {
		return relation.Delta{}, nil
	}
	return d.flushTouched(env, touched)
}

// accumulateSplit is accumulate for a split row whose grouping keys and
// aggregate arguments are all bare columns: group key and argument reads
// are slice indexes into the segments, and the concatenation happens only
// on group birth (the representative must outlive the call anyway).
func (d *dAggregate) accumulateSplit(key relation.Tuple, l, r relation.Tuple, sign int, touched *[]*dgroup) error {
	prog := d.prog()
	var grp *dgroup
	if d.g1 != nil {
		// Single bare key: look up by the normalized value directly —
		// writing the key into the (heap) scratch tuple per row costs a GC
		// write barrier on the Value's string field, which dominates the
		// loop. The tuple is only filled on group birth.
		v := splitCol(l, r, prog.groupCols[0])
		k := v.Key()
		if grp = d.g1[k]; grp == nil {
			if sign < 0 {
				return fmt.Errorf("aggregate state: delete for a group never seen")
			}
			key[0] = v
			grp = d.newGroupConcat(0, key, l, r)
			d.g1[k] = grp
		}
	} else {
		for gi := range prog.groupBy {
			key[gi] = splitCol(l, r, prog.groupCols[gi])
		}
		h := key.Hash()
		if grp = d.findGroup(h, key); grp == nil {
			if sign < 0 {
				return fmt.Errorf("aggregate state: delete for a group never seen")
			}
			grp = d.newGroupConcat(h, key, l, r)
		}
	}
	if touched != nil && !grp.touched {
		grp.touched = true
		*touched = append(*touched, grp)
	}
	grp.rows += int64(sign)
	for si := range prog.specs {
		sp := &prog.specs[si]
		if sp.arg == nil { // count(*)
			continue
		}
		v := splitCol(l, r, sp.argCol)
		if sign > 0 {
			grp.states[si].add(v)
		} else if err := grp.states[si].remove(v); err != nil {
			return err
		}
	}
	return nil
}

// newGroupConcat is newGroup with the representative built as a fresh
// concatenation of the segments (already a private copy — no further clone
// needed regardless of d.volatile).
func (d *dAggregate) newGroupConcat(h uint64, key, l, r relation.Tuple) *dgroup {
	rep := make(relation.Tuple, 0, len(l)+len(r))
	rep = append(append(rep, l...), r...)
	prog := d.prog()
	grp := &dgroup{rep: rep, states: make([]*aggState, len(prog.specs))}
	grp.key = key.Clone()
	for si := range grp.states {
		grp.states[si] = newDeltaAggState(prog.specs[si].agg.Distinct, d.needVals[si])
	}
	if d.g1 == nil {
		d.groups[h] = append(d.groups[h], grp)
	}
	return grp
}
