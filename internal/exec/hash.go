package exec

// Allocation-free hash machinery shared by the hashing operators. Keys are
// hashed with relation.Tuple.Hash (FNV-1a over values, no string building)
// and collisions resolve through relation.Tuple.Equal chains, replacing the
// per-row Tuple.Key string the seed executor allocated in joins,
// aggregation, distinct, and set operations.

import "repro/internal/relation"

// valueArena hands out value slices carved from blocks, cutting the
// one-allocation-per-output-row cost of materializing operators. Carved
// tuples follow the package-wide immutability rule, so sharing a backing
// block is safe. Block size follows the operator's expected output (set via
// expect) so small recomputes don't pay for big blocks, capped so wrong
// estimates can't balloon memory.
type valueArena struct {
	buf   []relation.Value
	block int
}

const arenaBlockCap = 4096

// expect sizes future blocks for roughly total values of upcoming demand.
func (a *valueArena) expect(total int) {
	if total < 1 {
		total = 1
	}
	if total > arenaBlockCap {
		total = arenaBlockCap
	}
	a.block = total
}

func (a *valueArena) alloc(n int) relation.Tuple {
	if n == 0 {
		return relation.Tuple{}
	}
	if len(a.buf) < n {
		size := a.block
		if size < n {
			size = n
		}
		a.buf = make([]relation.Value, size)
	}
	t := relation.Tuple(a.buf[:n:n])
	a.buf = a.buf[n:]
	return t
}

// tupleTable is an insertion-ordered hash set of tuples. Ids are assigned
// sequentially on insert, so when every insertion corresponds to an output
// append (distinct, union) the id doubles as the output row index.
type tupleTable struct {
	buckets map[uint64][]int32
	keys    []relation.Tuple
}

func newTupleTable(capacity int) *tupleTable {
	return &tupleTable{
		buckets: make(map[uint64][]int32, capacity),
		keys:    make([]relation.Tuple, 0, capacity),
	}
}

// lookup returns the id of the tuple's equivalence class, if present.
func (t *tupleTable) lookup(row relation.Tuple) (int, bool) {
	for _, id := range t.buckets[row.Hash()] {
		if t.keys[id].Equal(row) {
			return int(id), true
		}
	}
	return -1, false
}

// getOrInsert returns the id of row's class and whether it was already
// present. Inserted rows are referenced, not copied — callers inserting
// scratch tuples must clone first.
func (t *tupleTable) getOrInsert(row relation.Tuple) (int, bool) {
	h := row.Hash()
	for _, id := range t.buckets[h] {
		if t.keys[id].Equal(row) {
			return int(id), true
		}
	}
	id := int32(len(t.keys))
	t.keys = append(t.keys, row)
	t.buckets[h] = append(t.buckets[h], id)
	return int(id), false
}

// joinTable maps composite join keys to the build-side row indices that bear
// them. Probe-side scratch keys are only cloned when a key is first seen.
type joinTable struct {
	buckets map[uint64][]int32
	keys    []relation.Tuple
	rows    [][]int
	arena   valueArena
}

func newJoinTable(capacity, keyWidth int) *joinTable {
	t := &joinTable{buckets: make(map[uint64][]int32, capacity)}
	t.arena.expect(capacity * keyWidth)
	return t
}

// insert registers rowIdx under key. key may be a reused scratch tuple; it
// is copied into the table's arena only for first-seen keys (the arena sizes
// per-block from actual distinct-key demand).
func (t *joinTable) insert(key relation.Tuple, rowIdx int) {
	h := key.Hash()
	for _, id := range t.buckets[h] {
		if t.keys[id].Equal(key) {
			t.rows[id] = append(t.rows[id], rowIdx)
			return
		}
	}
	kept := t.arena.alloc(len(key))
	copy(kept, key)
	id := int32(len(t.keys))
	t.keys = append(t.keys, kept)
	t.rows = append(t.rows, []int{rowIdx})
	t.buckets[h] = append(t.buckets[h], id)
}

// probe returns the build-side row indices matching key, nil if none.
func (t *joinTable) probe(key relation.Tuple) []int {
	for _, id := range t.buckets[key.Hash()] {
		if t.keys[id].Equal(key) {
			return t.rows[id]
		}
	}
	return nil
}
