package exec

// Order-statistic state for incremental ORDER BY / LIMIT. An ordStat is an
// AVL tree over (sort-key tuple, full output row), with bag multiplicities
// kept as per-node counts and subtree sizes maintained for O(log n)
// rank/select. The total order is deterministic: sort keys compare with
// Value.Compare (per-key DESC negation), and exact ties break on the full
// row tuple (relation.CompareTuples) — the same tie rule the stateless
// bSort applies — so the maintained prefix of a top-k view is byte-for-byte
// the prefix a full recomputation would produce, and parity diffs are
// reproducible.
//
// The delta operators built on it (dSort in delta.go) insert and delete one
// row per input change and read back either the full in-order listing
// (ORDER BY) or the k-prefix (ORDER BY + LIMIT), so a one-row change to a
// top-k chart costs O(log n) tree work plus O(k) prefix reconstruction
// instead of an O(n log n) recompute.

import (
	"fmt"

	"repro/internal/relation"
)

// ordNode is one distinct (keys, row) equivalence class.
type ordNode struct {
	keys  relation.Tuple // evaluated sort keys (owned clone)
	row   relation.Tuple // full output row; tie-break and payload
	count int64          // bag multiplicity of this exact row
	size  int64          // total multiplicity in this subtree
	h     int32          // AVL height
	l, r  *ordNode
}

// ordStat is the tree plus its ordering (one desc flag per sort key).
type ordStat struct {
	root *ordNode
	desc []bool
}

func newOrdStat(desc []bool) *ordStat {
	return &ordStat{desc: append([]bool(nil), desc...)}
}

// Len returns the total number of rows held, counting duplicates.
func (t *ordStat) Len() int64 { return size(t.root) }

func size(n *ordNode) int64 {
	if n == nil {
		return 0
	}
	return n.size
}

func height(n *ordNode) int32 {
	if n == nil {
		return 0
	}
	return n.h
}

// compareKeyedRows is THE total order of incremental ORDER BY: evaluated
// sort keys first (DESC keys negated), full-row tuple order as the
// deterministic tie-break. The stateless bSort, the order-statistic tree,
// and the restore-order path (dSort.sortRows) all order through this one
// function — recompute-vs-delta parity depends on them agreeing.
func compareKeyedRows(aKeys, bKeys relation.Tuple, desc []bool, aRow, bRow relation.Tuple) int {
	for i := range aKeys {
		c := aKeys[i].Compare(bKeys[i])
		if i < len(desc) && desc[i] {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	return relation.CompareTuples(aRow, bRow)
}

// cmp orders (keys, row) against a node under compareKeyedRows.
func (t *ordStat) cmp(keys, row relation.Tuple, n *ordNode) int {
	return compareKeyedRows(keys, n.keys, t.desc, row, n.row)
}

func update(n *ordNode) {
	n.size = size(n.l) + size(n.r) + n.count
	lh, rh := height(n.l), height(n.r)
	if lh > rh {
		n.h = lh + 1
	} else {
		n.h = rh + 1
	}
}

func rotL(n *ordNode) *ordNode {
	r := n.r
	n.r = r.l
	r.l = n
	update(n)
	update(r)
	return r
}

func rotR(n *ordNode) *ordNode {
	l := n.l
	n.l = l.r
	l.r = n
	update(n)
	update(l)
	return l
}

// fix recomputes the node's aggregates and restores the AVL invariant.
func fix(n *ordNode) *ordNode {
	update(n)
	switch bf := height(n.l) - height(n.r); {
	case bf > 1:
		if height(n.l.l) < height(n.l.r) {
			n.l = rotL(n.l)
		}
		return rotR(n)
	case bf < -1:
		if height(n.r.r) < height(n.r.l) {
			n.r = rotR(n.r)
		}
		return rotL(n)
	default:
		return n
	}
}

// Insert adds one occurrence of row under the given sort keys. keys may be a
// reused scratch tuple; it is cloned only when a new node is created. row is
// retained by reference (delta pipelines hand over stable tuples).
func (t *ordStat) Insert(keys, row relation.Tuple) {
	t.root = t.insert(t.root, keys, row)
}

func (t *ordStat) insert(n *ordNode, keys, row relation.Tuple) *ordNode {
	if n == nil {
		return &ordNode{keys: keys.Clone(), row: row, count: 1, size: 1, h: 1}
	}
	switch c := t.cmp(keys, row, n); {
	case c == 0:
		n.count++
		update(n)
		return n
	case c < 0:
		n.l = t.insert(n.l, keys, row)
	default:
		n.r = t.insert(n.r, keys, row)
	}
	return fix(n)
}

// Delete removes one occurrence of row. A delete for a row the tree never
// saw is an error — the caller's state is out of sync and must re-prime.
func (t *ordStat) Delete(keys, row relation.Tuple) error {
	root, ok := t.delete(t.root, keys, row)
	if !ok {
		return fmt.Errorf("ordstat: delete for a row never inserted")
	}
	t.root = root
	return nil
}

func (t *ordStat) delete(n *ordNode, keys, row relation.Tuple) (*ordNode, bool) {
	if n == nil {
		return nil, false
	}
	var ok bool
	switch c := t.cmp(keys, row, n); {
	case c < 0:
		n.l, ok = t.delete(n.l, keys, row)
	case c > 0:
		n.r, ok = t.delete(n.r, keys, row)
	default:
		if n.count > 1 {
			n.count--
			update(n)
			return n, true
		}
		if n.l == nil {
			return n.r, true
		}
		if n.r == nil {
			return n.l, true
		}
		// Two children: adopt the in-order successor's class wholesale and
		// unlink its old node from the right subtree.
		s := n.r
		for s.l != nil {
			s = s.l
		}
		n.keys, n.row, n.count = s.keys, s.row, s.count
		n.r = deleteMin(n.r)
		return fix(n), true
	}
	if !ok {
		return n, false
	}
	return fix(n), true
}

// deleteMin unlinks the minimum node (the whole equivalence class).
func deleteMin(n *ordNode) *ordNode {
	if n.l == nil {
		return n.r
	}
	n.l = deleteMin(n.l)
	return fix(n)
}

// Contains reports whether at least one occurrence of row is held.
func (t *ordStat) Contains(keys, row relation.Tuple) bool {
	n := t.root
	for n != nil {
		switch c := t.cmp(keys, row, n); {
		case c == 0:
			return true
		case c < 0:
			n = n.l
		default:
			n = n.r
		}
	}
	return false
}

// Rank returns the number of rows strictly before row in the maintained
// order (counting duplicates) — i.e. the 0-based position of its first
// occurrence — and whether the row is present.
func (t *ordStat) Rank(keys, row relation.Tuple) (int64, bool) {
	var before int64
	n := t.root
	for n != nil {
		switch c := t.cmp(keys, row, n); {
		case c == 0:
			return before + size(n.l), true
		case c < 0:
			n = n.l
		default:
			before += size(n.l) + n.count
			n = n.r
		}
	}
	return before, false
}

// Select returns the i-th row (0-based, duplicates expanded) or nil when i
// is out of range.
func (t *ordStat) Select(i int64) relation.Tuple {
	if i < 0 || i >= t.Len() {
		return nil
	}
	n := t.root
	for {
		ls := size(n.l)
		switch {
		case i < ls:
			n = n.l
		case i < ls+n.count:
			return n.row
		default:
			i -= ls + n.count
			n = n.r
		}
	}
}

// Prefix returns the first k rows in order, duplicates expanded. k past the
// end (or negative) yields the full listing. The traversal short-circuits,
// so cost is O(k + log n).
func (t *ordStat) Prefix(k int) []relation.Tuple {
	total := t.Len()
	if k < 0 || int64(k) > total {
		k = int(total)
	}
	out := make([]relation.Tuple, 0, k)
	var rec func(n *ordNode) bool
	rec = func(n *ordNode) bool {
		if n == nil {
			return true
		}
		if !rec(n.l) {
			return false
		}
		for i := int64(0); i < n.count; i++ {
			if len(out) == k {
				return false
			}
			out = append(out, n.row)
		}
		if len(out) == k {
			return false
		}
		return rec(n.r)
	}
	rec(t.root)
	return out
}

// InOrder returns every row in order, duplicates expanded.
func (t *ordStat) InOrder() []relation.Tuple { return t.Prefix(-1) }

// check validates every structural invariant — AVL balance, height and size
// aggregates, positive counts, strict in-order key order — and is run by the
// unit tests and the fuzz target after every operation.
func (t *ordStat) check() error {
	var prev *ordNode
	var rec func(n *ordNode) (int64, int32, error)
	rec = func(n *ordNode) (int64, int32, error) {
		if n == nil {
			return 0, 0, nil
		}
		if n.count <= 0 {
			return 0, 0, fmt.Errorf("node count %d not positive", n.count)
		}
		if len(n.keys) != len(t.desc) && len(t.desc) > 0 {
			return 0, 0, fmt.Errorf("node key arity %d != %d sort keys", len(n.keys), len(t.desc))
		}
		lsz, lh, err := rec(n.l)
		if err != nil {
			return 0, 0, err
		}
		if prev != nil && t.cmp(n.keys, n.row, prev) <= 0 {
			return 0, 0, fmt.Errorf("in-order violation at %v", n.row)
		}
		prev = n
		rsz, rh, err := rec(n.r)
		if err != nil {
			return 0, 0, err
		}
		if want := lsz + rsz + n.count; n.size != want {
			return 0, 0, fmt.Errorf("size %d, want %d", n.size, want)
		}
		h := lh
		if rh > h {
			h = rh
		}
		h++
		if n.h != h {
			return 0, 0, fmt.Errorf("height %d, want %d", n.h, h)
		}
		if bf := lh - rh; bf < -1 || bf > 1 {
			return 0, 0, fmt.Errorf("balance factor %d out of range", bf)
		}
		return lsz + rsz + n.count, h, nil
	}
	_, _, err := rec(t.root)
	return err
}
