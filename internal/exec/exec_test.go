package exec

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/relation"
)

// memCatalog is a version-blind in-memory catalog for executor tests.
type memCatalog map[string]*relation.Relation

func (m memCatalog) Resolve(name string, v relation.VersionRef) (*relation.Relation, error) {
	r, ok := m[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("unknown relation %q", name)
	}
	return r, nil
}

func salesCatalog() memCatalog {
	sales := relation.New("Sales", relation.NewSchema(
		relation.Col("productId", relation.KindInt),
		relation.Col("region", relation.KindString),
		relation.Col("revenue", relation.KindFloat),
		relation.Col("profit", relation.KindFloat),
	))
	rows := []struct {
		id      int64
		region  string
		rev, pr float64
	}{
		{1, "east", 100, 10},
		{2, "east", 200, 30},
		{3, "west", 150, -5},
		{4, "west", 300, 60},
		{5, "north", 50, 5},
	}
	for _, r := range rows {
		sales.MustAppend(relation.Tuple{
			relation.Int(r.id), relation.String(r.region),
			relation.Float(r.rev), relation.Float(r.pr),
		})
	}
	regions := relation.New("Regions", relation.NewSchema(
		relation.Col("name", relation.KindString),
		relation.Col("country", relation.KindString),
	))
	regions.MustAppend(relation.Tuple{relation.String("east"), relation.String("US")})
	regions.MustAppend(relation.Tuple{relation.String("west"), relation.String("US")})
	regions.MustAppend(relation.Tuple{relation.String("north"), relation.String("CA")})
	us := relation.New("USRegions", relation.NewSchema(relation.Col("name", relation.KindString)))
	us.MustAppend(relation.Tuple{relation.String("east")})
	us.MustAppend(relation.Tuple{relation.String("west")})
	return memCatalog{"sales": sales, "regions": regions, "usregions": us}
}

func runSQL(t *testing.T, cat memCatalog, sql string) *relation.Relation {
	t.Helper()
	q, err := parser.ParseQuery(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	ex := New(cat)
	res, err := ex.RunQuery(q)
	if err != nil {
		t.Fatalf("run %q: %v", sql, err)
	}
	return res.Rel
}

func TestSelectWhereProject(t *testing.T) {
	rel := runSQL(t, salesCatalog(), "SELECT productId, revenue * 2 AS dbl FROM Sales WHERE revenue >= 150")
	if rel.Len() != 3 {
		t.Fatalf("rows = %d, want 3", rel.Len())
	}
	if rel.Schema.Cols[1].Name != "dbl" {
		t.Fatalf("schema = %s", rel.Schema)
	}
	rel.SortDeterministic()
	if v, _ := rel.Rows[0][1].AsFloat(); v != 400 {
		t.Fatalf("first dbl = %v", rel.Rows[0][1])
	}
}

func TestConstantSelect(t *testing.T) {
	rel := runSQL(t, salesCatalog(), "SELECT 1 + 2 AS three, 'x' AS s")
	if rel.Len() != 1 || !rel.Rows[0][0].Equal(relation.Int(3)) {
		t.Fatalf("constant select = %v", rel.Rows)
	}
}

func TestHashJoin(t *testing.T) {
	rel := runSQL(t, salesCatalog(),
		"SELECT S.productId, R.country FROM Sales AS S, Regions AS R WHERE S.region = R.name AND S.revenue > 100")
	if rel.Len() != 3 {
		t.Fatalf("join rows = %d, want 3", rel.Len())
	}
	countries := map[string]bool{}
	for _, row := range rel.Rows {
		countries[row[1].AsString()] = true
	}
	if !countries["US"] {
		t.Fatal("expected US rows in join")
	}
}

func TestCrossJoinCount(t *testing.T) {
	rel := runSQL(t, salesCatalog(), "SELECT count(*) AS n FROM Sales AS a, Regions AS b")
	if n, _ := rel.Rows[0][0].AsInt(); n != 15 {
		t.Fatalf("cross join count = %d, want 15", n)
	}
}

func TestGroupByAggregates(t *testing.T) {
	rel := runSQL(t, salesCatalog(),
		"SELECT region, sum(revenue) AS total, count(*) AS n, avg(profit) AS ap, min(revenue) AS lo, max(revenue) AS hi FROM Sales GROUP BY region ORDER BY region")
	if rel.Len() != 3 {
		t.Fatalf("groups = %d", rel.Len())
	}
	// ordered: east, north, west
	east := rel.Rows[0]
	if east[0].AsString() != "east" {
		t.Fatalf("first group = %s", east[0])
	}
	if v, _ := east[1].AsFloat(); v != 300 {
		t.Fatalf("east total = %v", east[1])
	}
	if n, _ := east[2].AsInt(); n != 2 {
		t.Fatalf("east count = %v", east[2])
	}
	if v, _ := east[3].AsFloat(); v != 20 {
		t.Fatalf("east avg profit = %v", east[3])
	}
	west := rel.Rows[2]
	if lo, _ := west[4].AsFloat(); lo != 150 {
		t.Fatalf("west min = %v", west[4])
	}
	if hi, _ := west[5].AsFloat(); hi != 300 {
		t.Fatalf("west max = %v", west[5])
	}
}

func TestHaving(t *testing.T) {
	rel := runSQL(t, salesCatalog(),
		"SELECT region, sum(revenue) AS total FROM Sales GROUP BY region HAVING sum(revenue) > 200")
	if rel.Len() != 2 {
		t.Fatalf("having kept %d groups, want 2 (east=300, west=450)", rel.Len())
	}
}

func TestGlobalAggregateOnEmptyInput(t *testing.T) {
	cat := salesCatalog()
	rel := runSQL(t, cat, "SELECT count(*) AS n, sum(revenue) AS s FROM Sales WHERE revenue > 9999")
	if rel.Len() != 1 {
		t.Fatalf("global aggregate rows = %d, want 1", rel.Len())
	}
	if n, _ := rel.Rows[0][0].AsInt(); n != 0 {
		t.Fatalf("count = %v", rel.Rows[0][0])
	}
	if !rel.Rows[0][1].IsNull() {
		t.Fatalf("sum of empty = %v, want NULL", rel.Rows[0][1])
	}
}

func TestCountDistinct(t *testing.T) {
	rel := runSQL(t, salesCatalog(), "SELECT count(DISTINCT region) AS n FROM Sales")
	if n, _ := rel.Rows[0][0].AsInt(); n != 3 {
		t.Fatalf("count distinct = %d, want 3", n)
	}
}

func TestOrderByDescLimit(t *testing.T) {
	rel := runSQL(t, salesCatalog(), "SELECT productId, revenue FROM Sales ORDER BY revenue DESC LIMIT 2")
	if rel.Len() != 2 {
		t.Fatalf("rows = %d", rel.Len())
	}
	if id, _ := rel.Rows[0][0].AsInt(); id != 4 {
		t.Fatalf("top row = %v", rel.Rows[0])
	}
	if id, _ := rel.Rows[1][0].AsInt(); id != 2 {
		t.Fatalf("second row = %v", rel.Rows[1])
	}
}

func TestOrderByAlias(t *testing.T) {
	rel := runSQL(t, salesCatalog(),
		"SELECT region, sum(revenue) AS total FROM Sales GROUP BY region ORDER BY total DESC")
	if rel.Rows[0][0].AsString() != "west" {
		t.Fatalf("order by alias: first = %s", rel.Rows[0][0])
	}
}

func TestDistinct(t *testing.T) {
	rel := runSQL(t, salesCatalog(), "SELECT DISTINCT region FROM Sales")
	if rel.Len() != 3 {
		t.Fatalf("distinct rows = %d", rel.Len())
	}
}

func TestUnionDedupAndAll(t *testing.T) {
	dedup := runSQL(t, salesCatalog(),
		"SELECT region FROM Sales UNION SELECT region FROM Sales")
	if dedup.Len() != 3 {
		t.Fatalf("union rows = %d, want 3", dedup.Len())
	}
	all := runSQL(t, salesCatalog(),
		"SELECT region FROM Sales UNION ALL SELECT region FROM Sales")
	if all.Len() != 10 {
		t.Fatalf("union all rows = %d, want 10", all.Len())
	}
}

func TestMinusIntersect(t *testing.T) {
	minus := runSQL(t, salesCatalog(),
		"SELECT region FROM Sales MINUS SELECT name FROM Regions WHERE country = 'CA'")
	if minus.Len() != 2 {
		t.Fatalf("minus rows = %d, want 2 (east, west)", minus.Len())
	}
	inter := runSQL(t, salesCatalog(),
		"SELECT region FROM Sales INTERSECT SELECT name FROM Regions WHERE country = 'US'")
	if inter.Len() != 2 {
		t.Fatalf("intersect rows = %d, want 2", inter.Len())
	}
}

func TestScalarSubquery(t *testing.T) {
	rel := runSQL(t, salesCatalog(),
		"SELECT productId FROM Sales WHERE revenue = (SELECT max(revenue) FROM Sales)")
	if rel.Len() != 1 {
		t.Fatalf("rows = %d", rel.Len())
	}
	if id, _ := rel.Rows[0][0].AsInt(); id != 4 {
		t.Fatalf("max revenue product = %d", id)
	}
}

func TestScalarSubqueryMultipleRowsErrors(t *testing.T) {
	q, err := parser.ParseQuery("SELECT (SELECT revenue FROM Sales) AS x")
	if err != nil {
		t.Fatal(err)
	}
	ex := New(salesCatalog())
	if _, err := ex.RunQuery(q); err == nil {
		t.Fatal("multi-row scalar subquery should error")
	}
}

func TestInSubqueryAndRelation(t *testing.T) {
	rel := runSQL(t, salesCatalog(),
		"SELECT productId FROM Sales WHERE region IN (SELECT name FROM Regions WHERE country = 'US')")
	if rel.Len() != 4 {
		t.Fatalf("IN subquery rows = %d, want 4", rel.Len())
	}
	// IN over a bare relation reads its first column (DeVIL 3 style:
	// "productId NOT IN selected").
	rel2 := runSQL(t, salesCatalog(),
		"SELECT productId FROM Sales WHERE region IN USRegions")
	if rel2.Len() != 4 {
		t.Fatalf("IN relation rows = %d, want 4", rel2.Len())
	}
}

func TestNotInExcludes(t *testing.T) {
	rel := runSQL(t, salesCatalog(),
		"SELECT productId FROM Sales WHERE region NOT IN (SELECT name FROM Regions WHERE country = 'CA')")
	if rel.Len() != 4 {
		t.Fatalf("NOT IN rows = %d, want 4", rel.Len())
	}
}

func TestSubqueryInFrom(t *testing.T) {
	rel := runSQL(t, salesCatalog(),
		"SELECT t.region, t.total FROM (SELECT region, sum(revenue) AS total FROM Sales GROUP BY region) AS t WHERE t.total > 200")
	if rel.Len() != 2 {
		t.Fatalf("rows = %d, want 2", rel.Len())
	}
}

func TestStarExpansion(t *testing.T) {
	rel := runSQL(t, salesCatalog(), "SELECT * FROM Sales WHERE productId = 1")
	if rel.Schema.Len() != 4 || rel.Len() != 1 {
		t.Fatalf("star: schema=%d rows=%d", rel.Schema.Len(), rel.Len())
	}
	rel2 := runSQL(t, salesCatalog(),
		"SELECT S.* FROM Sales AS S, Regions AS R WHERE S.region = R.name AND R.country = 'CA'")
	if rel2.Schema.Len() != 4 || rel2.Len() != 1 {
		t.Fatalf("qualified star: schema=%d rows=%d", rel2.Schema.Len(), rel2.Len())
	}
}

func TestCaseInProjection(t *testing.T) {
	rel := runSQL(t, salesCatalog(),
		"SELECT productId, CASE WHEN profit < 0 THEN 'loss' ELSE 'gain' END AS kind FROM Sales ORDER BY productId")
	if rel.Rows[2][1].AsString() != "loss" {
		t.Fatalf("case output = %v", rel.Rows[2])
	}
	if rel.Rows[0][1].AsString() != "gain" {
		t.Fatalf("case output = %v", rel.Rows[0])
	}
}

func TestLineageCapture(t *testing.T) {
	cat := salesCatalog()
	q, err := parser.ParseQuery("SELECT region, sum(revenue) AS total FROM Sales GROUP BY region")
	if err != nil {
		t.Fatal(err)
	}
	ex := New(cat)
	ex.CaptureLineage = true
	res, err := ex.RunQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lin) != res.Rel.Len() {
		t.Fatalf("lineage parallel array mismatch: %d vs %d", len(res.Lin), res.Rel.Len())
	}
	// The east group must trace to exactly Sales rows 0 and 1.
	for i, row := range res.Rel.Rows {
		if row[0].AsString() == "east" {
			src := res.Lin[i]["Sales"]
			if len(src) != 2 {
				t.Fatalf("east lineage = %v", src)
			}
			got := map[int]bool{src[0]: true, src[1]: true}
			if !got[0] || !got[1] {
				t.Fatalf("east lineage rows = %v, want {0,1}", src)
			}
		}
	}
}

func TestLineageThroughJoin(t *testing.T) {
	cat := salesCatalog()
	q, err := parser.ParseQuery(
		"SELECT S.productId FROM Sales AS S, Regions AS R WHERE S.region = R.name AND R.country = 'CA'")
	if err != nil {
		t.Fatal(err)
	}
	ex := New(cat)
	ex.CaptureLineage = true
	res, err := ex.RunQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 1 {
		t.Fatalf("rows = %d", res.Rel.Len())
	}
	lin := res.Lin[0]
	if len(lin["Sales"]) != 1 || lin["Sales"][0] != 4 {
		t.Fatalf("Sales lineage = %v, want [4]", lin["Sales"])
	}
	if len(lin["Regions"]) != 1 || lin["Regions"][0] != 2 {
		t.Fatalf("Regions lineage = %v, want [2]", lin["Regions"])
	}
}

func TestOptimizerPushdownShape(t *testing.T) {
	cat := salesCatalog()
	q, err := parser.ParseQuery(
		"SELECT S.productId FROM Sales AS S, Regions AS R WHERE S.region = R.name AND S.revenue > 100 AND R.country = 'US'")
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	opt := plan.Optimize(p, New(cat).Funcs)
	text := plan.Format(opt)
	// After pushdown the single-side predicates must appear below the join.
	joinLine, revLine, ctyLine := -1, -1, -1
	for i, line := range strings.Split(text, "\n") {
		switch {
		case strings.Contains(line, "Join"):
			joinLine = i
		case strings.Contains(line, "revenue"):
			revLine = i
		case strings.Contains(line, "country"):
			ctyLine = i
		}
	}
	if joinLine < 0 || revLine < joinLine || ctyLine < joinLine {
		t.Fatalf("pushdown failed:\n%s", text)
	}
	// And the plan still runs correctly.
	res, err := New(cat).Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 3 {
		t.Fatalf("optimized plan rows = %d, want 3", res.Rel.Len())
	}
}

func TestConstantFolding(t *testing.T) {
	cat := salesCatalog()
	q, err := parser.ParseQuery("SELECT productId FROM Sales WHERE 1 + 1 = 2")
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	opt := plan.Optimize(p, New(cat).Funcs)
	if strings.Contains(plan.Format(opt), "Filter") {
		t.Fatalf("always-true filter not removed:\n%s", plan.Format(opt))
	}
}

func TestAmbiguousColumnErrors(t *testing.T) {
	cat := salesCatalog()
	q, err := parser.ParseQuery("SELECT region FROM Sales AS a, Sales AS b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(cat).RunQuery(q); err == nil {
		t.Fatal("ambiguous unqualified column should error at execution")
	}
}

func TestUnknownRelationErrors(t *testing.T) {
	q, err := parser.ParseQuery("SELECT * FROM Nope")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(salesCatalog()).RunQuery(q); err == nil {
		t.Fatal("unknown relation should error")
	}
}

func TestGroupByValidation(t *testing.T) {
	q, err := parser.ParseQuery("SELECT productId, sum(revenue) FROM Sales GROUP BY region")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Build(q, salesCatalog()); err == nil {
		t.Fatal("ungrouped non-aggregate output should be rejected")
	}
}

func TestAggregateInWhereRejected(t *testing.T) {
	q, err := parser.ParseQuery("SELECT region FROM Sales WHERE sum(revenue) > 10")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Build(q, salesCatalog()); err == nil {
		t.Fatal("aggregate in WHERE should be rejected")
	}
}

func TestRelRefQueryCopiesRelation(t *testing.T) {
	cat := salesCatalog()
	q, err := parser.ParseQuery("Sales")
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(cat).RunQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 5 {
		t.Fatalf("rel ref rows = %d", res.Rel.Len())
	}
	stripped := StripQualifiers(res.Rel)
	for _, c := range stripped.Schema.Cols {
		if c.Qualifier != "" {
			t.Fatalf("qualifier survived strip: %+v", c)
		}
	}
}

// TestSortTieBreakDeterministic: ORDER BY ties used to keep input order,
// which made recomputes (and any LIMIT prefix) depend on how the input
// happened to be materialized. Ties now break on the full output tuple, so
// permuting the input never changes the sorted output — the property the
// incremental top-k path and the parity suites rely on.
func TestSortTieBreakDeterministic(t *testing.T) {
	mk := func(perm []int) memCatalog {
		rel := relation.New("T", relation.NewSchema(
			relation.Col("k", relation.KindInt),
			relation.Col("tag", relation.KindString),
		))
		rows := []relation.Tuple{
			{relation.Int(1), relation.String("d")},
			{relation.Int(1), relation.String("a")},
			{relation.Int(2), relation.String("c")},
			{relation.Int(1), relation.String("b")},
			{relation.Int(2), relation.String("a")},
		}
		for _, i := range perm {
			rel.MustAppend(rows[i])
		}
		return memCatalog{"t": rel}
	}
	perms := [][]int{{0, 1, 2, 3, 4}, {4, 3, 2, 1, 0}, {2, 0, 4, 1, 3}}
	for _, sql := range []string{
		"SELECT k, tag FROM T ORDER BY k",
		"SELECT k, tag FROM T ORDER BY k DESC",
		"SELECT k, tag FROM T ORDER BY k LIMIT 3",
	} {
		var want *relation.Relation
		for _, perm := range perms {
			got := runSQL(t, mk(perm), sql)
			if want == nil {
				want = got
				continue
			}
			if len(got.Rows) != len(want.Rows) {
				t.Fatalf("%q: row count varies across input permutations", sql)
			}
			for i := range got.Rows {
				if !got.Rows[i].Equal(want.Rows[i]) {
					t.Fatalf("%q: input permutation changed output order: row %d = %v, want %v",
						sql, i, got.Rows[i], want.Rows[i])
				}
			}
		}
	}
}
