package expr

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/relation"
)

// Func is a pure scalar user-defined function. DeVIL restricts UDFs to pure
// functions without side effects (§2.1.1); the render table UDF is the only
// exception and is handled by the engine, not this registry.
type Func struct {
	Name    string
	MinArgs int
	MaxArgs int // -1 means variadic
	Fn      func(args []relation.Value) (relation.Value, error)
	Doc     string
}

// Apply checks arity and invokes the function.
func (f Func) Apply(args []relation.Value) (relation.Value, error) {
	if len(args) < f.MinArgs || (f.MaxArgs >= 0 && len(args) > f.MaxArgs) {
		return relation.Null(), fmt.Errorf("%s: got %d args, want %d..%d", f.Name, len(args), f.MinArgs, f.MaxArgs)
	}
	return f.Fn(args)
}

// Registry resolves scalar function names case-insensitively.
type Registry struct {
	m map[string]Func
}

// NewRegistry returns a registry preloaded with DeVIL's builtin scalar
// functions, including the visualization UDFs from the paper
// (linear_scale, in_rectangle).
func NewRegistry() *Registry {
	r := &Registry{m: make(map[string]Func)}
	for _, f := range builtins() {
		r.Register(f)
	}
	return r
}

// Register installs or replaces a function.
func (r *Registry) Register(f Func) {
	r.m[strings.ToLower(f.Name)] = f
}

// Lookup resolves a function by name.
func (r *Registry) Lookup(name string) (Func, bool) {
	f, ok := r.m[strings.ToLower(name)]
	return f, ok
}

// Names lists registered function names (unordered), for diagnostics.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.m))
	for k := range r.m {
		out = append(out, k)
	}
	return out
}

func numArg(name string, args []relation.Value, i int) (float64, error) {
	f, ok := args[i].AsFloat()
	if !ok {
		return 0, fmt.Errorf("%s: argument %d is not numeric: %s", name, i+1, args[i])
	}
	return f, nil
}

// anyNull reports whether any argument is NULL; most numeric builtins
// propagate NULL like operators do.
func anyNull(args []relation.Value) bool {
	for _, a := range args {
		if a.IsNull() {
			return true
		}
	}
	return false
}

func numeric1(name string, fn func(float64) float64) Func {
	return Func{Name: name, MinArgs: 1, MaxArgs: 1, Fn: func(args []relation.Value) (relation.Value, error) {
		if anyNull(args) {
			return relation.Null(), nil
		}
		f, err := numArg(name, args, 0)
		if err != nil {
			return relation.Null(), err
		}
		return relation.Float(fn(f)), nil
	}}
}

func builtins() []Func {
	return []Func{
		// --- Visualization UDFs from the paper ---
		{
			Name: "linear_scale", MinArgs: 5, MaxArgs: 5,
			Doc: "linear_scale(v, domain_lo, domain_hi, range_lo, range_hi) maps v linearly from the data domain to the pixel range (DeVIL 1).",
			Fn: func(args []relation.Value) (relation.Value, error) {
				if anyNull(args) {
					return relation.Null(), nil
				}
				var f [5]float64
				for i := range f {
					v, err := numArg("linear_scale", args, i)
					if err != nil {
						return relation.Null(), err
					}
					f[i] = v
				}
				v, d0, d1, r0, r1 := f[0], f[1], f[2], f[3], f[4]
				if d1 == d0 {
					return relation.Float((r0 + r1) / 2), nil
				}
				return relation.Float(r0 + (v-d0)/(d1-d0)*(r1-r0)), nil
			},
		},
		{
			Name: "in_rectangle", MinArgs: 6, MaxArgs: 6,
			Doc: "in_rectangle(x, y, x0, y0, x1, y1) tests whether point (x,y) lies inside the rectangle spanned by the two corners, in any corner order (DeVIL 3 hit testing).",
			Fn: func(args []relation.Value) (relation.Value, error) {
				if anyNull(args) {
					return relation.Bool(false), nil
				}
				var f [6]float64
				for i := range f {
					v, err := numArg("in_rectangle", args, i)
					if err != nil {
						return relation.Null(), err
					}
					f[i] = v
				}
				x, y := f[0], f[1]
				x0, x1 := math.Min(f[2], f[4]), math.Max(f[2], f[4])
				y0, y1 := math.Min(f[3], f[5]), math.Max(f[3], f[5])
				return relation.Bool(x >= x0 && x <= x1 && y >= y0 && y <= y1), nil
			},
		},
		{
			Name: "clamp", MinArgs: 3, MaxArgs: 3,
			Doc: "clamp(v, lo, hi) restricts v to [lo, hi].",
			Fn: func(args []relation.Value) (relation.Value, error) {
				if anyNull(args) {
					return relation.Null(), nil
				}
				v, err := numArg("clamp", args, 0)
				if err != nil {
					return relation.Null(), err
				}
				lo, err := numArg("clamp", args, 1)
				if err != nil {
					return relation.Null(), err
				}
				hi, err := numArg("clamp", args, 2)
				if err != nil {
					return relation.Null(), err
				}
				return relation.Float(math.Max(lo, math.Min(hi, v))), nil
			},
		},
		// --- General numerics ---
		numeric1("abs", math.Abs),
		numeric1("sqrt", math.Sqrt),
		numeric1("floor", math.Floor),
		numeric1("ceil", math.Ceil),
		numeric1("round", math.Round),
		numeric1("exp", math.Exp),
		numeric1("ln", math.Log),
		{
			Name: "pow", MinArgs: 2, MaxArgs: 2,
			Fn: func(args []relation.Value) (relation.Value, error) {
				if anyNull(args) {
					return relation.Null(), nil
				}
				a, err := numArg("pow", args, 0)
				if err != nil {
					return relation.Null(), err
				}
				b, err := numArg("pow", args, 1)
				if err != nil {
					return relation.Null(), err
				}
				return relation.Float(math.Pow(a, b)), nil
			},
		},
		{
			Name: "least", MinArgs: 1, MaxArgs: -1,
			Fn: func(args []relation.Value) (relation.Value, error) {
				return extremum(args, -1), nil
			},
		},
		{
			Name: "greatest", MinArgs: 1, MaxArgs: -1,
			Fn: func(args []relation.Value) (relation.Value, error) {
				return extremum(args, 1), nil
			},
		},
		// --- Strings ---
		{
			Name: "length", MinArgs: 1, MaxArgs: 1,
			Fn: func(args []relation.Value) (relation.Value, error) {
				if anyNull(args) {
					return relation.Null(), nil
				}
				return relation.Int(int64(len(args[0].AsString()))), nil
			},
		},
		{
			Name: "upper", MinArgs: 1, MaxArgs: 1,
			Fn: func(args []relation.Value) (relation.Value, error) {
				if anyNull(args) {
					return relation.Null(), nil
				}
				return relation.String(strings.ToUpper(args[0].AsString())), nil
			},
		},
		{
			Name: "lower", MinArgs: 1, MaxArgs: 1,
			Fn: func(args []relation.Value) (relation.Value, error) {
				if anyNull(args) {
					return relation.Null(), nil
				}
				return relation.String(strings.ToLower(args[0].AsString())), nil
			},
		},
		{
			Name: "substr", MinArgs: 2, MaxArgs: 3,
			Doc: "substr(s, start[, len]) with 1-based start, SQLite-style.",
			Fn: func(args []relation.Value) (relation.Value, error) {
				if anyNull(args) {
					return relation.Null(), nil
				}
				s := args[0].AsString()
				start, ok := args[1].AsInt()
				if !ok {
					return relation.Null(), fmt.Errorf("substr: start not an int")
				}
				i := int(start) - 1
				if i < 0 {
					i = 0
				}
				if i > len(s) {
					i = len(s)
				}
				j := len(s)
				if len(args) == 3 {
					n, ok := args[2].AsInt()
					if !ok {
						return relation.Null(), fmt.Errorf("substr: length not an int")
					}
					if j2 := i + int(n); j2 < j {
						j = j2
					}
					if j < i {
						j = i
					}
				}
				return relation.String(s[i:j]), nil
			},
		},
		// --- NULL handling / conditionals ---
		{
			Name: "coalesce", MinArgs: 1, MaxArgs: -1,
			Fn: func(args []relation.Value) (relation.Value, error) {
				for _, a := range args {
					if !a.IsNull() {
						return a, nil
					}
				}
				return relation.Null(), nil
			},
		},
		{
			Name: "iif", MinArgs: 3, MaxArgs: 3,
			Doc: "iif(cond, a, b) returns a when cond is truthy, else b.",
			Fn: func(args []relation.Value) (relation.Value, error) {
				if !args[0].IsNull() && args[0].Truthy() {
					return args[1], nil
				}
				return args[2], nil
			},
		},
		{
			Name: "sign", MinArgs: 1, MaxArgs: 1,
			Fn: func(args []relation.Value) (relation.Value, error) {
				if anyNull(args) {
					return relation.Null(), nil
				}
				f, err := numArg("sign", args, 0)
				if err != nil {
					return relation.Null(), err
				}
				switch {
				case f > 0:
					return relation.Int(1), nil
				case f < 0:
					return relation.Int(-1), nil
				default:
					return relation.Int(0), nil
				}
			},
		},
	}
}

// extremum returns the least (dir<0) or greatest (dir>0) non-null argument.
func extremum(args []relation.Value, dir int) relation.Value {
	best := relation.Null()
	for _, a := range args {
		if a.IsNull() {
			continue
		}
		if best.IsNull() || a.Compare(best)*dir > 0 {
			best = a
		}
	}
	return best
}
