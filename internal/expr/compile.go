package expr

// Compile-once, run-many evaluation. Bind resolves every column reference in
// an expression tree to a positional index against a fixed schema and returns
// a closure-based evaluator, so per-row evaluation does zero name lookups and
// zero tree walks. The tree-walking Eval remains as the semantic oracle (the
// parity tests in compile_test.go assert Bind and Eval agree on values, NULL
// propagation, and errors); the executor runs compiled evaluators exclusively.
//
// Compiled evaluators share scratch buffers (function-call argument slices)
// and therefore must not be invoked from multiple goroutines concurrently.
// One bound plan per engine, evaluated row-at-a-time, is the intended shape.

import (
	"fmt"

	"repro/internal/relation"
)

// Env is the per-row state a compiled evaluator reads. Row is positional
// against the schema the expression was bound to; a nil Row makes every
// column NULL (the group-representative semantics the aggregate operator
// needs for the empty global group). Aggs carries per-group aggregate results
// for evaluators bound with an AggSlot resolver.
type Env struct {
	Row  relation.Tuple
	Aggs []relation.Value
}

// Compiled is a bound, ready-to-run evaluator produced by Bind.
type Compiled func(env *Env) (relation.Value, error)

// BindContext carries everything Bind needs. Schema fixes column positions;
// Funcs resolves scalar UDF calls at bind time (register UDFs before binding,
// as Engine.Funcs documents). AggSlot, when non-nil, maps aggregate calls to
// result slots in Env.Aggs — only the aggregate operator sets it; everywhere
// else an aggregate compiles to the same misuse error Eval reports.
type BindContext struct {
	Schema  relation.Schema
	Funcs   *Registry
	AggSlot func(*Agg) (int, bool)
}

// errc builds an evaluator that fails with a fixed error. Bind never fails
// eagerly: unresolvable references become per-row errors, exactly like the
// tree-walking Eval, so expressions over empty inputs stay silent either way.
func errc(err error) Compiled {
	return func(*Env) (relation.Value, error) { return relation.Null(), err }
}

// litc builds an evaluator returning a constant.
func litc(v relation.Value) Compiled {
	return func(*Env) (relation.Value, error) { return v, nil }
}

// Bind compiles the expression against the context. A nil expression yields a
// nil Compiled (callers guard, mirroring how nil predicates are skipped).
func Bind(e Expr, bc *BindContext) Compiled {
	if e == nil {
		return nil
	}
	switch n := e.(type) {
	case *Lit:
		return litc(n.V)
	case *Column:
		return bindColumn(n, bc)
	case *Binary:
		return bindBinary(n, bc)
	case *Unary:
		return bindUnary(n, bc)
	case *Call:
		return bindCall(n, bc)
	case *Agg:
		return bindAgg(n, bc)
	case *IsNull:
		x := Bind(n.X, bc)
		neg := n.Negate
		return func(env *Env) (relation.Value, error) {
			v, err := x(env)
			if err != nil {
				return relation.Null(), err
			}
			return relation.Bool(v.IsNull() != neg), nil
		}
	case *Case:
		return bindCase(n, bc)
	case *In:
		return bindIn(n, bc)
	case *Subquery:
		return errc(fmt.Errorf("unresolved scalar subquery"))
	default:
		// Future node types fall back to tree-walking evaluation through a
		// schema-backed row environment; correctness over speed.
		return bindFallback(e, bc)
	}
}

func bindColumn(c *Column, bc *BindContext) Compiled {
	idx, err := bc.Schema.IndexErr(c.Qualifier, c.Name)
	if err != nil {
		// Same surface error the interpreted path reports for both missing
		// and ambiguous references (rowEnv.Lookup collapses them to !ok).
		return errc(fmt.Errorf("unknown column %s", c.String()))
	}
	name := c.String()
	return func(env *Env) (relation.Value, error) {
		if env.Row == nil {
			return relation.Null(), nil
		}
		if idx >= len(env.Row) {
			return relation.Null(), fmt.Errorf("unknown column %s", name)
		}
		return env.Row[idx], nil
	}
}

func bindBinary(b *Binary, bc *BindContext) Compiled {
	l := Bind(b.L, bc)
	r := Bind(b.R, bc)
	switch b.Op {
	case OpAnd, OpOr:
		isAnd := b.Op == OpAnd
		return func(env *Env) (relation.Value, error) {
			lv, err := l(env)
			if err != nil {
				return relation.Null(), err
			}
			if !lv.IsNull() {
				lt := lv.Truthy()
				if isAnd && !lt {
					return relation.Bool(false), nil
				}
				if !isAnd && lt {
					return relation.Bool(true), nil
				}
			}
			rv, err := r(env)
			if err != nil {
				return relation.Null(), err
			}
			if !rv.IsNull() {
				rt := rv.Truthy()
				if isAnd && !rt {
					return relation.Bool(false), nil
				}
				if !isAnd && rt {
					return relation.Bool(true), nil
				}
			}
			if lv.IsNull() || rv.IsNull() {
				return relation.Null(), nil
			}
			return relation.Bool(isAnd), nil
		}
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		var test func(int) bool
		switch b.Op {
		case OpEq:
			test = func(c int) bool { return c == 0 }
		case OpNe:
			test = func(c int) bool { return c != 0 }
		case OpLt:
			test = func(c int) bool { return c < 0 }
		case OpLe:
			test = func(c int) bool { return c <= 0 }
		case OpGt:
			test = func(c int) bool { return c > 0 }
		default:
			test = func(c int) bool { return c >= 0 }
		}
		return func(env *Env) (relation.Value, error) {
			lv, rv, err := evalPair(l, r, env)
			if err != nil || lv.IsNull() || rv.IsNull() {
				return relation.Null(), err
			}
			return relation.Bool(test(lv.Compare(rv))), nil
		}
	case OpConcat:
		return func(env *Env) (relation.Value, error) {
			lv, rv, err := evalPair(l, r, env)
			if err != nil || lv.IsNull() || rv.IsNull() {
				return relation.Null(), err
			}
			return relation.String(lv.AsString() + rv.AsString()), nil
		}
	default:
		op := b.Op
		return func(env *Env) (relation.Value, error) {
			lv, rv, err := evalPair(l, r, env)
			if err != nil || lv.IsNull() || rv.IsNull() {
				return relation.Null(), err
			}
			return evalArith(op, lv, rv)
		}
	}
}

// evalPair evaluates both operands left-to-right (error order matches Eval).
func evalPair(l, r Compiled, env *Env) (relation.Value, relation.Value, error) {
	lv, err := l(env)
	if err != nil {
		return relation.Null(), relation.Null(), err
	}
	rv, err := r(env)
	if err != nil {
		return relation.Null(), relation.Null(), err
	}
	return lv, rv, nil
}

func bindUnary(u *Unary, bc *BindContext) Compiled {
	x := Bind(u.X, bc)
	if u.Op == OpNot {
		return func(env *Env) (relation.Value, error) {
			v, err := x(env)
			if err != nil || v.IsNull() {
				return relation.Null(), err
			}
			return relation.Bool(!v.Truthy()), nil
		}
	}
	return func(env *Env) (relation.Value, error) {
		v, err := x(env)
		if err != nil || v.IsNull() {
			return relation.Null(), err
		}
		switch v.Kind() {
		case relation.KindInt:
			n, _ := v.AsInt()
			return relation.Int(-n), nil
		default:
			f, ok := v.AsFloat()
			if !ok {
				return relation.Null(), fmt.Errorf("cannot negate %s", v)
			}
			return relation.Float(-f), nil
		}
	}
}

func bindCall(c *Call, bc *BindContext) Compiled {
	if bc.Funcs == nil {
		return errc(fmt.Errorf("no function registry for call to %s", c.Name))
	}
	fn, ok := bc.Funcs.Lookup(c.Name)
	if !ok {
		return errc(fmt.Errorf("unknown function %s", c.Name))
	}
	argcs := make([]Compiled, len(c.Args))
	for i, a := range c.Args {
		argcs[i] = Bind(a, bc)
	}
	// The argument slice is scratch shared across rows; builtins receive it
	// per Apply and never retain it. This is the allocation the interpreted
	// Call.Eval pays per row and the compiled path pays once.
	args := make([]relation.Value, len(argcs))
	return func(env *Env) (relation.Value, error) {
		for i, ac := range argcs {
			v, err := ac(env)
			if err != nil {
				return relation.Null(), err
			}
			args[i] = v
		}
		return fn.Apply(args)
	}
}

func bindAgg(a *Agg, bc *BindContext) Compiled {
	if bc.AggSlot != nil {
		if slot, ok := bc.AggSlot(a); ok {
			return func(env *Env) (relation.Value, error) {
				return env.Aggs[slot], nil
			}
		}
	}
	return errc(fmt.Errorf("aggregate %s used outside of an aggregation context", a.String()))
}

func bindCase(c *Case, bc *BindContext) Compiled {
	type arm struct{ cond, result Compiled }
	arms := make([]arm, len(c.Whens))
	for i, w := range c.Whens {
		arms[i] = arm{cond: Bind(w.Cond, bc), result: Bind(w.Result, bc)}
	}
	els := Bind(c.Else, bc)
	return func(env *Env) (relation.Value, error) {
		for _, a := range arms {
			cv, err := a.cond(env)
			if err != nil {
				return relation.Null(), err
			}
			if !cv.IsNull() && cv.Truthy() {
				return a.result(env)
			}
		}
		if els != nil {
			return els(env)
		}
		return relation.Null(), nil
	}
}

func bindIn(in *In, bc *BindContext) Compiled {
	src, ok := in.Source.(*SetSource)
	if !ok {
		return errc(fmt.Errorf("IN source not resolved before evaluation"))
	}
	x := Bind(in.X, bc)
	set := src.Set
	neg := in.Negate
	return func(env *Env) (relation.Value, error) {
		v, err := x(env)
		if err != nil {
			return relation.Null(), err
		}
		if v.IsNull() {
			return relation.Null(), nil
		}
		found := set.Contains(v)
		if !found && set.HasNull() {
			return relation.Null(), nil
		}
		return relation.Bool(found != neg), nil
	}
}

// schemaEnv adapts an Env to the RowEnv interface for the interpreted
// fallback path.
type schemaEnv struct {
	schema relation.Schema
	env    *Env
}

// Lookup resolves a column positionally via the bound schema.
func (s *schemaEnv) Lookup(q, n string) (relation.Value, bool) {
	if s.env.Row == nil {
		return relation.Null(), true
	}
	idx := s.schema.Index(q, n)
	if idx < 0 || idx >= len(s.env.Row) {
		return relation.Null(), false
	}
	return s.env.Row[idx], true
}

func bindFallback(e Expr, bc *BindContext) Compiled {
	adapter := &schemaEnv{schema: bc.Schema}
	ctx := &Context{Row: adapter, Funcs: bc.Funcs}
	return func(env *Env) (relation.Value, error) {
		adapter.env = env
		return e.Eval(ctx)
	}
}

// NeedsResolution reports whether the expression contains scalar subqueries
// or IN sources the executor must materialize against the live catalog before
// binding. Expressions free of these (the hot-path case) bind once at prepare
// time and are reused across every execution.
func NeedsResolution(e Expr) bool {
	found := false
	Walk(e, func(x Expr) bool {
		switch n := x.(type) {
		case *Subquery:
			found = true
			return false
		case *In:
			if _, ok := n.Source.(*SetSource); !ok {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
