package expr

// Parity tests: the Bind-compiled evaluators must return identical values —
// including NULL propagation and errors — to the tree-walking Eval across an
// enumerated expression corpus. Eval is the semantic oracle; any divergence
// is a compiler bug.

import (
	"strings"
	"testing"

	"repro/internal/relation"
)

// paritySchema is the row shape the corpus evaluates against.
func paritySchema() relation.Schema {
	return relation.NewSchema(
		relation.Col("i", relation.KindInt),
		relation.Col("f", relation.KindFloat),
		relation.Col("s", relation.KindString),
		relation.Col("b", relation.KindBool),
		relation.Col("n", relation.KindNull),
	)
}

// parityRows covers every kind, zeros (division/modulo by zero), negatives,
// and NULLs in each position.
func parityRows() []relation.Tuple {
	return []relation.Tuple{
		{relation.Int(3), relation.Float(1.5), relation.String("abc"), relation.Bool(true), relation.Null()},
		{relation.Int(-7), relation.Float(-0.25), relation.String(""), relation.Bool(false), relation.Null()},
		{relation.Int(0), relation.Float(0), relation.String("3"), relation.Bool(true), relation.Null()},
		{relation.Null(), relation.Null(), relation.Null(), relation.Null(), relation.Null()},
		{relation.Int(1 << 40), relation.Float(3.0), relation.String("ABC"), relation.Bool(false), relation.Null()},
	}
}

// posEnv adapts a (schema, tuple) pair to RowEnv exactly like the executor's
// old row environment did — the interpreted half of every parity check.
type posEnv struct {
	schema relation.Schema
	row    relation.Tuple
}

func (e *posEnv) Lookup(q, n string) (relation.Value, bool) {
	idx := e.schema.Index(q, n)
	if idx < 0 || idx >= len(e.row) {
		return relation.Null(), false
	}
	return e.row[idx], true
}

// corpus enumerates expressions: every binary operator over mixed-kind
// operands, unary ops, IS NULL, CASE, IN (with and without NULL in the set),
// calls (known, unknown, arity errors), aggregates in illegal positions, and
// unresolved subqueries.
func corpus() []Expr {
	col := func(n string) Expr { return &Column{Name: n} }
	lit := func(v relation.Value) Expr { return Literal(v) }
	operands := []Expr{
		col("i"), col("f"), col("s"), col("b"), col("n"),
		lit(relation.Int(2)), lit(relation.Float(0.5)), lit(relation.String("abc")),
		lit(relation.Bool(false)), lit(relation.Null()), lit(relation.Int(0)),
		&Column{Name: "missing"},           // unknown column
		&Column{Qualifier: "t", Name: "i"}, // wrong qualifier
	}
	var out []Expr
	for op := OpOr; op <= OpConcat; op++ {
		for _, l := range operands {
			for _, r := range operands {
				out = append(out, &Binary{Op: op, L: l, R: r})
			}
		}
	}
	for _, x := range operands {
		out = append(out,
			&Unary{Op: OpNeg, X: x},
			&Unary{Op: OpNot, X: x},
			&IsNull{X: x},
			&IsNull{X: x, Negate: true},
		)
	}
	set := NewValueSet(relation.Int(3), relation.String("abc"), relation.Float(1.5))
	nullSet := NewValueSet(relation.Int(3), relation.Null())
	for _, x := range operands {
		out = append(out,
			&In{X: x, Source: &SetSource{Set: set}},
			&In{X: x, Source: &SetSource{Set: nullSet}, Negate: true},
			&In{X: x, Source: &RelationSource{Name: "R"}}, // unresolved
		)
	}
	out = append(out,
		&Case{Whens: []When{{Cond: &Binary{Op: OpGt, L: col("i"), R: lit(relation.Int(0))}, Result: col("s")}}},
		&Case{
			Whens: []When{
				{Cond: col("n"), Result: lit(relation.String("null-cond"))},
				{Cond: col("b"), Result: col("f")},
			},
			Else: &Unary{Op: OpNeg, X: col("i")},
		},
		&Call{Name: "abs", Args: []Expr{col("f")}},
		&Call{Name: "upper", Args: []Expr{col("s")}},
		&Call{Name: "substr", Args: []Expr{col("s"), lit(relation.Int(2))}},
		&Call{Name: "coalesce", Args: []Expr{col("n"), col("i")}},
		&Call{Name: "iif", Args: []Expr{col("b"), col("s"), col("i")}},
		&Call{Name: "nosuchfn", Args: []Expr{col("i")}},
		&Call{Name: "abs", Args: []Expr{col("i"), col("f")}}, // arity error
		&Agg{Name: "sum", Arg: col("i")},                     // illegal position
		&Subquery{},                                          // unresolved
		// nested: (i + f) * 2 >= abs(i - 10) AND s != ''
		&Binary{Op: OpAnd,
			L: &Binary{Op: OpGe,
				L: &Binary{Op: OpMul, L: &Binary{Op: OpAdd, L: col("i"), R: col("f")}, R: lit(relation.Int(2))},
				R: &Call{Name: "abs", Args: []Expr{&Binary{Op: OpSub, L: col("i"), R: lit(relation.Int(10))}}},
			},
			R: &Binary{Op: OpNe, L: col("s"), R: lit(relation.String(""))},
		},
		// division and modulo by zero through columns
		&Binary{Op: OpDiv, L: col("f"), R: &Column{Name: "i"}},
		&Binary{Op: OpMod, L: col("i"), R: &Column{Name: "i"}},
	)
	return out
}

// TestCompiledMatchesInterpreted asserts value-and-error parity between
// Bind-compiled evaluation and the tree-walking oracle for every corpus
// expression over every parity row.
func TestCompiledMatchesInterpreted(t *testing.T) {
	schema := paritySchema()
	funcs := NewRegistry()
	bc := &BindContext{Schema: schema, Funcs: funcs}
	interpEnv := &posEnv{schema: schema}
	ictx := &Context{Row: interpEnv, Funcs: funcs}
	cenv := &Env{}
	for _, e := range corpus() {
		compiled := Bind(e, bc)
		for ri, row := range parityRows() {
			interpEnv.row = row
			cenv.Row = row
			want, wantErr := e.Eval(ictx)
			got, gotErr := compiled(cenv)
			if (wantErr != nil) != (gotErr != nil) {
				t.Fatalf("expr %s row %d: interpreted err=%v, compiled err=%v", e.String(), ri, wantErr, gotErr)
			}
			if wantErr != nil {
				continue // both error; exact text may legitimately differ
			}
			if want != got {
				t.Fatalf("expr %s row %d: interpreted=%v (%s), compiled=%v (%s)",
					e.String(), ri, want, want.Kind(), got, got.Kind())
			}
		}
	}
}

// TestCompiledThreeValuedLogic pins the full 3VL truth tables for AND/OR
// through the compiled path against the oracle.
func TestCompiledThreeValuedLogic(t *testing.T) {
	vals := []relation.Value{relation.Bool(true), relation.Bool(false), relation.Null()}
	schema := relation.NewSchema(relation.Col("l", relation.KindBool), relation.Col("r", relation.KindBool))
	funcs := NewRegistry()
	bc := &BindContext{Schema: schema, Funcs: funcs}
	interpEnv := &posEnv{schema: schema}
	ictx := &Context{Row: interpEnv, Funcs: funcs}
	cenv := &Env{}
	for _, op := range []BinOp{OpAnd, OpOr} {
		e := &Binary{Op: op, L: &Column{Name: "l"}, R: &Column{Name: "r"}}
		compiled := Bind(e, bc)
		for _, lv := range vals {
			for _, rv := range vals {
				row := relation.Tuple{lv, rv}
				interpEnv.row = row
				cenv.Row = row
				want, _ := e.Eval(ictx)
				got, err := compiled(cenv)
				if err != nil {
					t.Fatalf("%s over (%s,%s): %v", e, lv, rv, err)
				}
				if want != got {
					t.Fatalf("%s over (%s,%s): interpreted=%s compiled=%s", e, lv, rv, want, got)
				}
			}
		}
	}
}

// TestCompiledAggSlots checks that aggregates bound with an AggSlot resolver
// read Env.Aggs, matching the executor's substitute-literal oracle.
func TestCompiledAggSlots(t *testing.T) {
	schema := relation.NewSchema(relation.Col("region", relation.KindString))
	funcs := NewRegistry()
	sum := &Agg{Name: "sum", Arg: &Column{Name: "x"}}
	// region || ':' || (sum(x) + 1)
	e := &Binary{Op: OpConcat,
		L: &Binary{Op: OpConcat, L: &Column{Name: "region"}, R: Literal(relation.String(":"))},
		R: &Binary{Op: OpAdd, L: sum, R: Literal(relation.Int(1))},
	}
	slots := map[string]int{sum.String(): 0}
	compiled := Bind(e, &BindContext{Schema: schema, Funcs: funcs, AggSlot: func(a *Agg) (int, bool) {
		i, ok := slots[a.String()]
		return i, ok
	}})
	env := &Env{Row: relation.Tuple{relation.String("east")}, Aggs: []relation.Value{relation.Int(41)}}
	got, err := compiled(env)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: substitute the aggregate result as a literal, then Eval.
	subst := Transform(e, func(x Expr) Expr {
		if _, ok := x.(*Agg); ok {
			return Literal(relation.Int(41))
		}
		return x
	})
	ienv := &posEnv{schema: schema, row: env.Row}
	want, err := subst.Eval(&Context{Row: ienv, Funcs: funcs})
	if err != nil {
		t.Fatal(err)
	}
	if want != got {
		t.Fatalf("agg slot eval: interpreted=%s compiled=%s", want, got)
	}
}

// TestCompiledNilRowIsNull pins the group-representative semantics: with a
// nil Env.Row every column reads as NULL (the empty global aggregate).
func TestCompiledNilRowIsNull(t *testing.T) {
	schema := paritySchema()
	compiled := Bind(&IsNull{X: &Column{Name: "i"}}, &BindContext{Schema: schema, Funcs: NewRegistry()})
	got, err := compiled(&Env{})
	if err != nil {
		t.Fatal(err)
	}
	if want := relation.Bool(true); want != got {
		t.Fatalf("nil-row column: want %s, got %s", want, got)
	}
}

// TestNeedsResolution classifies subquery-bearing expressions.
func TestNeedsResolution(t *testing.T) {
	cases := []struct {
		e    Expr
		want bool
	}{
		{&Binary{Op: OpAdd, L: &Column{Name: "i"}, R: Literal(relation.Int(1))}, false},
		{&Subquery{}, true},
		{&Binary{Op: OpEq, L: &Column{Name: "i"}, R: &Subquery{}}, true},
		{&In{X: &Column{Name: "i"}, Source: &SetSource{Set: NewValueSet()}}, false},
		{&In{X: &Column{Name: "i"}, Source: &RelationSource{Name: "R"}}, true},
		{&In{X: &Column{Name: "i"}, Source: &Subquery{}}, true},
	}
	for _, c := range cases {
		if got := NeedsResolution(c.e); got != c.want {
			t.Fatalf("NeedsResolution(%s) = %v, want %v", c.e.String(), got, c.want)
		}
	}
}

// TestBindErrorsAreDeferred ensures binding never fails eagerly: an
// unresolvable column errors only when a row is actually evaluated, matching
// interpreted behaviour over empty inputs.
func TestBindErrorsAreDeferred(t *testing.T) {
	compiled := Bind(&Column{Name: "ghost"}, &BindContext{Schema: paritySchema(), Funcs: NewRegistry()})
	_, err := compiled(&Env{Row: parityRows()[0]})
	if err == nil || !strings.Contains(err.Error(), "unknown column") {
		t.Fatalf("want unknown-column error, got %v", err)
	}
}

// Benchmark-ish sanity: the compiled evaluator must not allocate per call
// for a column-compare predicate (the crossfilter hot path shape).
func TestCompiledPredicateDoesNotAllocate(t *testing.T) {
	schema := paritySchema()
	e := &Binary{Op: OpAnd,
		L: &Binary{Op: OpGe, L: &Column{Name: "i"}, R: Literal(relation.Int(0))},
		R: &Binary{Op: OpLt, L: &Column{Name: "f"}, R: Literal(relation.Float(10))},
	}
	compiled := Bind(e, &BindContext{Schema: schema, Funcs: NewRegistry()})
	env := &Env{Row: parityRows()[0]}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := compiled(env); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("compiled predicate allocates %.1f per eval", allocs)
	}
}
