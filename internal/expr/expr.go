// Package expr implements DeVIL's typed expression trees: column references,
// literals, operators with SQL three-valued logic, scalar UDF calls,
// aggregates, IN predicates, CASE, and scalar subqueries.
//
// Expressions are shared by the parser (which builds them), the planner
// (which analyzes and rewrites them), the executor (which evaluates them per
// row), and the event recognizer (which evaluates them against event
// bindings).
package expr

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/relation"
)

// RowEnv supplies column values during evaluation. Implementations exist in
// the executor (tuple-backed) and the event recognizer (event-backed).
type RowEnv interface {
	Lookup(qualifier, name string) (relation.Value, bool)
}

// Context carries everything Eval needs. Funcs must be non-nil if the
// expression contains calls; Row may be nil for constant expressions.
type Context struct {
	Row   RowEnv
	Funcs *Registry
}

// Expr is a node in an expression tree.
type Expr interface {
	// Eval computes the expression's value for one row.
	Eval(ctx *Context) (relation.Value, error)
	// String renders DeVIL-ish syntax, used in plans and error messages.
	String() string
}

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators in precedence groups (low to high): OR, AND; comparisons;
// additive; multiplicative; string concat shares additive precedence.
const (
	OpOr BinOp = iota
	OpAnd
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpConcat
)

var binOpNames = map[BinOp]string{
	OpOr: "OR", OpAnd: "AND", OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=",
	OpGt: ">", OpGe: ">=", OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpMod: "%", OpConcat: "||",
}

// String returns the operator's surface syntax.
func (o BinOp) String() string { return binOpNames[o] }

// Lit is a literal constant.
type Lit struct {
	V relation.Value
}

// Literal wraps a value as an expression.
func Literal(v relation.Value) *Lit { return &Lit{V: v} }

// Eval returns the constant.
func (l *Lit) Eval(*Context) (relation.Value, error) { return l.V, nil }

// String renders the literal; strings are single-quoted.
func (l *Lit) String() string {
	if l.V.Kind() == relation.KindString {
		return "'" + strings.ReplaceAll(l.V.AsString(), "'", "''") + "'"
	}
	return l.V.String()
}

// Column references a (possibly qualified) column of the current row.
type Column struct {
	Qualifier string
	Name      string
}

// Eval looks the column up in the row environment.
func (c *Column) Eval(ctx *Context) (relation.Value, error) {
	if ctx.Row == nil {
		return relation.Null(), fmt.Errorf("column %s referenced outside a row context", c.String())
	}
	v, ok := ctx.Row.Lookup(c.Qualifier, c.Name)
	if !ok {
		return relation.Null(), fmt.Errorf("unknown column %s", c.String())
	}
	return v, nil
}

// String renders "qualifier.name".
func (c *Column) String() string {
	if c.Qualifier == "" {
		return c.Name
	}
	return c.Qualifier + "." + c.Name
}

// Binary applies a binary operator.
type Binary struct {
	Op   BinOp
	L, R Expr
}

// Eval implements SQL semantics: NULL propagation for arithmetic and
// comparison, three-valued logic for AND/OR.
func (b *Binary) Eval(ctx *Context) (relation.Value, error) {
	if b.Op == OpAnd || b.Op == OpOr {
		return b.evalLogic(ctx)
	}
	lv, err := b.L.Eval(ctx)
	if err != nil {
		return relation.Null(), err
	}
	rv, err := b.R.Eval(ctx)
	if err != nil {
		return relation.Null(), err
	}
	if lv.IsNull() || rv.IsNull() {
		return relation.Null(), nil
	}
	switch b.Op {
	case OpEq:
		return relation.Bool(lv.Compare(rv) == 0), nil
	case OpNe:
		return relation.Bool(lv.Compare(rv) != 0), nil
	case OpLt:
		return relation.Bool(lv.Compare(rv) < 0), nil
	case OpLe:
		return relation.Bool(lv.Compare(rv) <= 0), nil
	case OpGt:
		return relation.Bool(lv.Compare(rv) > 0), nil
	case OpGe:
		return relation.Bool(lv.Compare(rv) >= 0), nil
	case OpConcat:
		return relation.String(lv.AsString() + rv.AsString()), nil
	default:
		return evalArith(b.Op, lv, rv)
	}
}

// evalLogic implements three-valued AND/OR with short-circuiting.
func (b *Binary) evalLogic(ctx *Context) (relation.Value, error) {
	lv, err := b.L.Eval(ctx)
	if err != nil {
		return relation.Null(), err
	}
	isAnd := b.Op == OpAnd
	if !lv.IsNull() {
		lt := lv.Truthy()
		if isAnd && !lt {
			return relation.Bool(false), nil
		}
		if !isAnd && lt {
			return relation.Bool(true), nil
		}
	}
	rv, err := b.R.Eval(ctx)
	if err != nil {
		return relation.Null(), err
	}
	if !rv.IsNull() {
		rt := rv.Truthy()
		if isAnd && !rt {
			return relation.Bool(false), nil
		}
		if !isAnd && rt {
			return relation.Bool(true), nil
		}
	}
	if lv.IsNull() || rv.IsNull() {
		return relation.Null(), nil
	}
	return relation.Bool(isAnd), nil
}

// evalArith implements numeric arithmetic. Integer inputs keep integer
// results for + - * and %, while / always produces a float (pixel math in
// DeVIL programs expects real division).
func evalArith(op BinOp, lv, rv relation.Value) (relation.Value, error) {
	if lv.Kind() == relation.KindInt && rv.Kind() == relation.KindInt && op != OpDiv {
		a, _ := lv.AsInt()
		c, _ := rv.AsInt()
		switch op {
		case OpAdd:
			return relation.Int(a + c), nil
		case OpSub:
			return relation.Int(a - c), nil
		case OpMul:
			return relation.Int(a * c), nil
		case OpMod:
			if c == 0 {
				return relation.Null(), fmt.Errorf("modulo by zero")
			}
			return relation.Int(a % c), nil
		}
	}
	a, aok := lv.AsFloat()
	c, cok := rv.AsFloat()
	if !aok || !cok {
		return relation.Null(), fmt.Errorf("non-numeric operand to %s: %s, %s", op, lv, rv)
	}
	switch op {
	case OpAdd:
		return relation.Float(a + c), nil
	case OpSub:
		return relation.Float(a - c), nil
	case OpMul:
		return relation.Float(a * c), nil
	case OpDiv:
		if c == 0 {
			return relation.Null(), fmt.Errorf("division by zero")
		}
		return relation.Float(a / c), nil
	case OpMod:
		if c == 0 {
			return relation.Null(), fmt.Errorf("modulo by zero")
		}
		return relation.Float(math.Mod(a, c)), nil
	default:
		return relation.Null(), fmt.Errorf("unsupported arithmetic operator %s", op)
	}
}

// String renders the operation parenthesized.
func (b *Binary) String() string {
	return "(" + b.L.String() + " " + b.Op.String() + " " + b.R.String() + ")"
}

// UnOp enumerates unary operators.
type UnOp uint8

// Unary operators.
const (
	OpNeg UnOp = iota // arithmetic negation
	OpNot             // boolean NOT
)

// String returns the operator's surface syntax.
func (o UnOp) String() string {
	if o == OpNot {
		return "NOT"
	}
	return "-"
}

// Unary applies a unary operator.
type Unary struct {
	Op UnOp
	X  Expr
}

// Eval negates numerically or logically; NULL propagates.
func (u *Unary) Eval(ctx *Context) (relation.Value, error) {
	v, err := u.X.Eval(ctx)
	if err != nil || v.IsNull() {
		return relation.Null(), err
	}
	switch u.Op {
	case OpNeg:
		switch v.Kind() {
		case relation.KindInt:
			n, _ := v.AsInt()
			return relation.Int(-n), nil
		default:
			f, ok := v.AsFloat()
			if !ok {
				return relation.Null(), fmt.Errorf("cannot negate %s", v)
			}
			return relation.Float(-f), nil
		}
	case OpNot:
		return relation.Bool(!v.Truthy()), nil
	default:
		return relation.Null(), fmt.Errorf("unsupported unary operator")
	}
}

// String renders "-x" or "NOT x".
func (u *Unary) String() string {
	if u.Op == OpNeg {
		return "-" + u.X.String()
	}
	return "NOT " + u.X.String()
}

// Call invokes a scalar UDF from the registry.
type Call struct {
	Name string
	Args []Expr
}

// Eval resolves the function and applies it to the evaluated arguments.
func (c *Call) Eval(ctx *Context) (relation.Value, error) {
	if ctx.Funcs == nil {
		return relation.Null(), fmt.Errorf("no function registry for call to %s", c.Name)
	}
	fn, ok := ctx.Funcs.Lookup(c.Name)
	if !ok {
		return relation.Null(), fmt.Errorf("unknown function %s", c.Name)
	}
	args := make([]relation.Value, len(c.Args))
	for i, a := range c.Args {
		v, err := a.Eval(ctx)
		if err != nil {
			return relation.Null(), err
		}
		args[i] = v
	}
	return fn.Apply(args)
}

// String renders "name(arg, ...)".
func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return c.Name + "(" + strings.Join(parts, ", ") + ")"
}

// Agg is an aggregate call placeholder (COUNT/SUM/AVG/MIN/MAX). The executor
// evaluates aggregates during grouping; calling Eval directly is an error,
// which also catches aggregates in illegal positions (e.g. WHERE clauses).
type Agg struct {
	Name     string // lowercase: count, sum, avg, min, max
	Arg      Expr   // nil for COUNT(*)
	Distinct bool
}

// Eval reports misuse: aggregates only have meaning inside GROUP BY plans.
func (a *Agg) Eval(*Context) (relation.Value, error) {
	return relation.Null(), fmt.Errorf("aggregate %s used outside of an aggregation context", a.String())
}

// String renders "sum(x)" or "count(*)".
func (a *Agg) String() string {
	inner := "*"
	if a.Arg != nil {
		inner = a.Arg.String()
	}
	if a.Distinct {
		inner = "DISTINCT " + inner
	}
	return a.Name + "(" + inner + ")"
}

// IsNull tests a value for NULL (IS NULL / IS NOT NULL).
type IsNull struct {
	X      Expr
	Negate bool
}

// Eval returns a boolean, never NULL.
func (n *IsNull) Eval(ctx *Context) (relation.Value, error) {
	v, err := n.X.Eval(ctx)
	if err != nil {
		return relation.Null(), err
	}
	return relation.Bool(v.IsNull() != n.Negate), nil
}

// String renders "x IS [NOT] NULL".
func (n *IsNull) String() string {
	if n.Negate {
		return n.X.String() + " IS NOT NULL"
	}
	return n.X.String() + " IS NULL"
}

// Case is a searched CASE expression.
type Case struct {
	Whens []When
	Else  Expr // nil means NULL
}

// When is one WHEN cond THEN result arm.
type When struct {
	Cond   Expr
	Result Expr
}

// Eval returns the first truthy arm's result.
func (c *Case) Eval(ctx *Context) (relation.Value, error) {
	for _, w := range c.Whens {
		cv, err := w.Cond.Eval(ctx)
		if err != nil {
			return relation.Null(), err
		}
		if !cv.IsNull() && cv.Truthy() {
			return w.Result.Eval(ctx)
		}
	}
	if c.Else != nil {
		return c.Else.Eval(ctx)
	}
	return relation.Null(), nil
}

// String renders the CASE expression.
func (c *Case) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range c.Whens {
		b.WriteString(" WHEN ")
		b.WriteString(w.Cond.String())
		b.WriteString(" THEN ")
		b.WriteString(w.Result.String())
	}
	if c.Else != nil {
		b.WriteString(" ELSE ")
		b.WriteString(c.Else.String())
	}
	b.WriteString(" END")
	return b.String()
}

// ValueSet is a materialized set of values with SQL key normalization,
// produced by resolving IN subqueries and IN-relation predicates.
type ValueSet struct {
	m       map[relation.Value]struct{}
	hasNull bool
}

// NewValueSet builds a set from values.
func NewValueSet(vals ...relation.Value) *ValueSet {
	s := &ValueSet{m: make(map[relation.Value]struct{}, len(vals))}
	for _, v := range vals {
		s.Add(v)
	}
	return s
}

// Add inserts a value.
func (s *ValueSet) Add(v relation.Value) {
	if v.IsNull() {
		s.hasNull = true
		return
	}
	s.m[v.Key()] = struct{}{}
}

// Contains reports membership under SQL equality.
func (s *ValueSet) Contains(v relation.Value) bool {
	_, ok := s.m[v.Key()]
	return ok
}

// Len returns the number of distinct non-null values.
func (s *ValueSet) Len() int { return len(s.m) }

// HasNull reports whether the source contained NULLs (needed for SQL's
// NOT IN semantics).
func (s *ValueSet) HasNull() bool { return s.hasNull }

// In tests membership of X in a source. The parser emits In nodes whose
// Source is a *Subquery or *RelationSource; the executor resolves those to a
// *ValueSet before row iteration (see ResolveSources).
type In struct {
	X      Expr
	Source InSource
	Negate bool
}

// InSource is the right-hand side of an IN predicate.
type InSource interface{ inSource() }

// Subquery wraps a parsed query used as an IN source or a scalar expression.
// Query is `any` to avoid a dependency cycle with the parser; the executor
// type-asserts it. Prep caches the executor's compiled form of Query
// (also `any` for the same cycle reason): subquery-parameterized views
// re-resolve on every run, and without the cache each run re-plans and
// re-compiles the subquery from scratch. The cache lives and dies with the
// expression tree — plan invalidation drops the tree and the cache with it.
type Subquery struct {
	Query any
	Prep  any
}

func (*Subquery) inSource() {}

// Eval on an unresolved subquery is an error: the executor must substitute
// scalar subqueries before evaluation.
func (s *Subquery) Eval(*Context) (relation.Value, error) {
	return relation.Null(), fmt.Errorf("unresolved scalar subquery")
}

// String marks the subquery opaquely.
func (s *Subquery) String() string { return "(SELECT ...)" }

// RelationSource is "x IN SomeRelation", reading the single column (or the
// first column) of the named relation/view, possibly at a past version.
type RelationSource struct {
	Name    string
	Version relation.VersionRef
}

func (*RelationSource) inSource() {}

// SetSource is a resolved, materialized IN source.
type SetSource struct {
	Set *ValueSet
}

func (*SetSource) inSource() {}

// Eval implements SQL IN / NOT IN semantics including the NULL subtleties:
// x IN S is NULL if x is NULL, or if x not found and S contains NULL.
func (in *In) Eval(ctx *Context) (relation.Value, error) {
	src, ok := in.Source.(*SetSource)
	if !ok {
		return relation.Null(), fmt.Errorf("IN source not resolved before evaluation")
	}
	v, err := in.X.Eval(ctx)
	if err != nil {
		return relation.Null(), err
	}
	if v.IsNull() {
		return relation.Null(), nil
	}
	found := src.Set.Contains(v)
	if !found && src.Set.HasNull() {
		return relation.Null(), nil
	}
	return relation.Bool(found != in.Negate), nil
}

// String renders "x [NOT] IN src".
func (in *In) String() string {
	op := " IN "
	if in.Negate {
		op = " NOT IN "
	}
	switch s := in.Source.(type) {
	case *RelationSource:
		return in.X.String() + op + s.Name + s.Version.String()
	case *SetSource:
		return in.X.String() + op + fmt.Sprintf("{%d values}", s.Set.Len())
	default:
		return in.X.String() + op + "(SELECT ...)"
	}
}
