package expr

// Walk visits every node in the tree in depth-first pre-order. If fn returns
// false the node's children are skipped. Walk is how the planner discovers
// column references, aggregates, and unresolved subqueries.
func Walk(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch n := e.(type) {
	case *Binary:
		Walk(n.L, fn)
		Walk(n.R, fn)
	case *Unary:
		Walk(n.X, fn)
	case *Call:
		for _, a := range n.Args {
			Walk(a, fn)
		}
	case *Agg:
		if n.Arg != nil {
			Walk(n.Arg, fn)
		}
	case *IsNull:
		Walk(n.X, fn)
	case *Case:
		for _, w := range n.Whens {
			Walk(w.Cond, fn)
			Walk(w.Result, fn)
		}
		if n.Else != nil {
			Walk(n.Else, fn)
		}
	case *In:
		Walk(n.X, fn)
	}
}

// Transform rebuilds the tree bottom-up, replacing each node with fn(node).
// fn receives a node whose children have already been transformed. Transform
// never mutates the input tree; it is used for subquery resolution, constant
// folding, and predicate rewrites.
func Transform(e Expr, fn func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch n := e.(type) {
	case *Binary:
		return fn(&Binary{Op: n.Op, L: Transform(n.L, fn), R: Transform(n.R, fn)})
	case *Unary:
		return fn(&Unary{Op: n.Op, X: Transform(n.X, fn)})
	case *Call:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = Transform(a, fn)
		}
		return fn(&Call{Name: n.Name, Args: args})
	case *Agg:
		var arg Expr
		if n.Arg != nil {
			arg = Transform(n.Arg, fn)
		}
		return fn(&Agg{Name: n.Name, Arg: arg, Distinct: n.Distinct})
	case *IsNull:
		return fn(&IsNull{X: Transform(n.X, fn), Negate: n.Negate})
	case *Case:
		whens := make([]When, len(n.Whens))
		for i, w := range n.Whens {
			whens[i] = When{Cond: Transform(w.Cond, fn), Result: Transform(w.Result, fn)}
		}
		var els Expr
		if n.Else != nil {
			els = Transform(n.Else, fn)
		}
		return fn(&Case{Whens: whens, Else: els})
	case *In:
		return fn(&In{X: Transform(n.X, fn), Source: n.Source, Negate: n.Negate})
	default:
		return fn(e)
	}
}

// Columns collects every distinct column reference in the expression, in
// first-appearance order.
func Columns(e Expr) []*Column {
	var out []*Column
	seen := make(map[string]bool)
	Walk(e, func(x Expr) bool {
		if c, ok := x.(*Column); ok {
			key := c.Qualifier + "." + c.Name
			if !seen[key] {
				seen[key] = true
				out = append(out, c)
			}
		}
		return true
	})
	return out
}

// HasAggregate reports whether the expression contains an aggregate call.
func HasAggregate(e Expr) bool {
	found := false
	Walk(e, func(x Expr) bool {
		if _, ok := x.(*Agg); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// Aggregates collects all aggregate nodes in the expression.
func Aggregates(e Expr) []*Agg {
	var out []*Agg
	Walk(e, func(x Expr) bool {
		if a, ok := x.(*Agg); ok {
			out = append(out, a)
		}
		return true
	})
	return out
}

// Conjuncts splits a predicate on top-level ANDs, the unit the optimizer
// pushes down independently.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*Binary); ok && b.Op == OpAnd {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []Expr{e}
}

// AndAll joins predicates with AND; nil for an empty slice.
func AndAll(preds []Expr) Expr {
	var out Expr
	for _, p := range preds {
		if p == nil {
			continue
		}
		if out == nil {
			out = p
		} else {
			out = &Binary{Op: OpAnd, L: out, R: p}
		}
	}
	return out
}

// IsConstant reports whether the expression references no columns,
// aggregates, or unresolved subqueries — i.e. it can be folded at plan time.
func IsConstant(e Expr) bool {
	constant := true
	Walk(e, func(x Expr) bool {
		switch x.(type) {
		case *Column, *Agg, *Subquery:
			constant = false
			return false
		case *In:
			// membership depends on the (possibly unresolved) source
			if _, ok := x.(*In).Source.(*SetSource); !ok {
				constant = false
				return false
			}
		}
		return true
	})
	return constant
}
