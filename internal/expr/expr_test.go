package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

type mapEnv map[string]relation.Value

func (m mapEnv) Lookup(q, n string) (relation.Value, bool) {
	key := n
	if q != "" {
		key = q + "." + n
	}
	v, ok := m[key]
	return v, ok
}

func ctx(env mapEnv) *Context { return &Context{Row: env, Funcs: NewRegistry()} }

func evalOK(t *testing.T, e Expr, env mapEnv) relation.Value {
	t.Helper()
	v, err := e.Eval(ctx(env))
	if err != nil {
		t.Fatalf("eval %s: %v", e.String(), err)
	}
	return v
}

func lit(v relation.Value) Expr { return Literal(v) }

func TestArithmeticIntFloat(t *testing.T) {
	cases := []struct {
		e    Expr
		want relation.Value
	}{
		{&Binary{OpAdd, lit(relation.Int(2)), lit(relation.Int(3))}, relation.Int(5)},
		{&Binary{OpMul, lit(relation.Int(2)), lit(relation.Float(3.5))}, relation.Float(7)},
		{&Binary{OpDiv, lit(relation.Int(7)), lit(relation.Int(2))}, relation.Float(3.5)},
		{&Binary{OpSub, lit(relation.Float(1)), lit(relation.Float(0.25))}, relation.Float(0.75)},
		{&Binary{OpMod, lit(relation.Int(7)), lit(relation.Int(3))}, relation.Int(1)},
		{&Binary{OpConcat, lit(relation.String("a")), lit(relation.Int(1))}, relation.String("a1")},
	}
	for _, c := range cases {
		got := evalOK(t, c.e, nil)
		if !got.Equal(c.want) {
			t.Errorf("%s = %s, want %s", c.e, got, c.want)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	e := &Binary{OpDiv, lit(relation.Int(1)), lit(relation.Int(0))}
	if _, err := e.Eval(ctx(nil)); err == nil {
		t.Fatal("division by zero should error")
	}
}

func TestNullPropagation(t *testing.T) {
	e := &Binary{OpAdd, lit(relation.Null()), lit(relation.Int(1))}
	if v := evalOK(t, e, nil); !v.IsNull() {
		t.Errorf("NULL + 1 = %s, want NULL", v)
	}
	cmp := &Binary{OpLt, lit(relation.Null()), lit(relation.Int(1))}
	if v := evalOK(t, cmp, nil); !v.IsNull() {
		t.Errorf("NULL < 1 = %s, want NULL", v)
	}
}

func TestThreeValuedLogic(t *testing.T) {
	T, F, N := lit(relation.Bool(true)), lit(relation.Bool(false)), lit(relation.Null())
	cases := []struct {
		e    Expr
		want relation.Value
	}{
		{&Binary{OpAnd, T, N}, relation.Null()},
		{&Binary{OpAnd, F, N}, relation.Bool(false)},
		{&Binary{OpOr, T, N}, relation.Bool(true)},
		{&Binary{OpOr, F, N}, relation.Null()},
		{&Binary{OpAnd, T, T}, relation.Bool(true)},
		{&Binary{OpOr, F, F}, relation.Bool(false)},
	}
	for _, c := range cases {
		got := evalOK(t, c.e, nil)
		if got.IsNull() != c.want.IsNull() || (!got.IsNull() && !got.Equal(c.want)) {
			t.Errorf("%s = %s, want %s", c.e, got, c.want)
		}
	}
}

func TestColumnLookup(t *testing.T) {
	env := mapEnv{"S.x": relation.Int(10), "y": relation.Int(3)}
	e := &Binary{OpAdd, &Column{Qualifier: "S", Name: "x"}, &Column{Name: "y"}}
	if v := evalOK(t, e, env); !v.Equal(relation.Int(13)) {
		t.Errorf("S.x + y = %s", v)
	}
	bad := &Column{Name: "zz"}
	if _, err := bad.Eval(ctx(env)); err == nil {
		t.Fatal("unknown column should error")
	}
}

func TestLinearScale(t *testing.T) {
	e := &Call{Name: "linear_scale", Args: []Expr{
		lit(relation.Float(5)), lit(relation.Float(0)), lit(relation.Float(10)),
		lit(relation.Float(0)), lit(relation.Float(400)),
	}}
	if v := evalOK(t, e, nil); !v.Equal(relation.Float(200)) {
		t.Errorf("linear_scale mid = %s, want 200", v)
	}
	// degenerate domain maps to range midpoint
	e2 := &Call{Name: "linear_scale", Args: []Expr{
		lit(relation.Float(7)), lit(relation.Float(7)), lit(relation.Float(7)),
		lit(relation.Float(0)), lit(relation.Float(100)),
	}}
	if v := evalOK(t, e2, nil); !v.Equal(relation.Float(50)) {
		t.Errorf("degenerate linear_scale = %s, want 50", v)
	}
}

func TestInRectangle(t *testing.T) {
	mk := func(x, y, x0, y0, x1, y1 float64) Expr {
		return &Call{Name: "in_rectangle", Args: []Expr{
			lit(relation.Float(x)), lit(relation.Float(y)),
			lit(relation.Float(x0)), lit(relation.Float(y0)),
			lit(relation.Float(x1)), lit(relation.Float(y1)),
		}}
	}
	if v := evalOK(t, mk(5, 5, 0, 0, 10, 10), nil); !v.Truthy() {
		t.Error("point inside should be true")
	}
	// corner order must not matter (drag can go up-left)
	if v := evalOK(t, mk(5, 5, 10, 10, 0, 0), nil); !v.Truthy() {
		t.Error("reversed corners should still contain the point")
	}
	if v := evalOK(t, mk(15, 5, 0, 0, 10, 10), nil); v.Truthy() {
		t.Error("point outside should be false")
	}
}

func TestCaseExpr(t *testing.T) {
	e := &Case{
		Whens: []When{
			{Cond: &Binary{OpGt, &Column{Name: "v"}, lit(relation.Int(10))}, Result: lit(relation.String("big"))},
			{Cond: &Binary{OpGt, &Column{Name: "v"}, lit(relation.Int(5))}, Result: lit(relation.String("mid"))},
		},
		Else: lit(relation.String("small")),
	}
	cases := map[int64]string{20: "big", 7: "mid", 1: "small"}
	for in, want := range cases {
		v := evalOK(t, e, mapEnv{"v": relation.Int(in)})
		if v.AsString() != want {
			t.Errorf("case(%d) = %s, want %s", in, v, want)
		}
	}
}

func TestInSetSemantics(t *testing.T) {
	set := NewValueSet(relation.Int(1), relation.Int(2))
	in := &In{X: &Column{Name: "v"}, Source: &SetSource{Set: set}}
	if v := evalOK(t, in, mapEnv{"v": relation.Int(1)}); !v.Truthy() {
		t.Error("1 IN {1,2} should be true")
	}
	if v := evalOK(t, in, mapEnv{"v": relation.Int(3)}); v.Truthy() || v.IsNull() {
		t.Error("3 IN {1,2} should be false")
	}
	// NULL membership subtleties
	setN := NewValueSet(relation.Int(1), relation.Null())
	inN := &In{X: &Column{Name: "v"}, Source: &SetSource{Set: setN}}
	if v := evalOK(t, inN, mapEnv{"v": relation.Int(3)}); !v.IsNull() {
		t.Error("3 IN {1,NULL} should be NULL")
	}
	notIn := &In{X: &Column{Name: "v"}, Source: &SetSource{Set: setN}, Negate: true}
	if v := evalOK(t, notIn, mapEnv{"v": relation.Int(3)}); !v.IsNull() {
		t.Error("3 NOT IN {1,NULL} should be NULL")
	}
	// Float/Int cross-kind membership
	if !set.Contains(relation.Float(2.0)) {
		t.Error("2.0 should be found in {1,2}")
	}
}

func TestIsNull(t *testing.T) {
	e := &IsNull{X: &Column{Name: "v"}}
	if v := evalOK(t, e, mapEnv{"v": relation.Null()}); !v.Truthy() {
		t.Error("NULL IS NULL should be true")
	}
	e2 := &IsNull{X: &Column{Name: "v"}, Negate: true}
	if v := evalOK(t, e2, mapEnv{"v": relation.Int(1)}); !v.Truthy() {
		t.Error("1 IS NOT NULL should be true")
	}
}

func TestAggregateOutsideGroupingErrors(t *testing.T) {
	a := &Agg{Name: "sum", Arg: &Column{Name: "v"}}
	if _, err := a.Eval(ctx(mapEnv{"v": relation.Int(1)})); err == nil {
		t.Fatal("aggregate outside grouping should error")
	}
}

func TestWalkAndColumns(t *testing.T) {
	e := &Binary{OpAnd,
		&Binary{OpGt, &Column{Qualifier: "S", Name: "x"}, lit(relation.Int(1))},
		&Call{Name: "abs", Args: []Expr{&Column{Name: "y"}}},
	}
	cols := Columns(e)
	if len(cols) != 2 || cols[0].String() != "S.x" || cols[1].String() != "y" {
		t.Fatalf("Columns = %v", cols)
	}
	if HasAggregate(e) {
		t.Error("no aggregate expected")
	}
	withAgg := &Binary{OpAdd, &Agg{Name: "count"}, lit(relation.Int(1))}
	if !HasAggregate(withAgg) {
		t.Error("aggregate should be detected")
	}
}

func TestConjunctsRoundTrip(t *testing.T) {
	p1 := &Binary{OpGt, &Column{Name: "a"}, lit(relation.Int(1))}
	p2 := &Binary{OpLt, &Column{Name: "b"}, lit(relation.Int(2))}
	p3 := &IsNull{X: &Column{Name: "c"}}
	all := AndAll([]Expr{p1, p2, p3})
	parts := Conjuncts(all)
	if len(parts) != 3 {
		t.Fatalf("Conjuncts len = %d", len(parts))
	}
	if AndAll(nil) != nil {
		t.Error("AndAll(nil) should be nil")
	}
}

func TestTransformReplacesSubqueries(t *testing.T) {
	sub := &Subquery{Query: "fake"}
	e := &Binary{OpEq, &Column{Name: "x"}, sub}
	out := Transform(e, func(n Expr) Expr {
		if _, ok := n.(*Subquery); ok {
			return lit(relation.Int(42))
		}
		return n
	})
	v := evalOK(t, out, mapEnv{"x": relation.Int(42)})
	if !v.Truthy() {
		t.Fatalf("transformed expr = %s", v)
	}
	// original untouched
	if _, err := e.Eval(ctx(mapEnv{"x": relation.Int(42)})); err == nil {
		t.Fatal("original should still contain unresolved subquery")
	}
}

func TestIsConstant(t *testing.T) {
	if !IsConstant(&Binary{OpAdd, lit(relation.Int(1)), lit(relation.Int(2))}) {
		t.Error("1+2 should be constant")
	}
	if IsConstant(&Column{Name: "x"}) {
		t.Error("column is not constant")
	}
	if IsConstant(&In{X: lit(relation.Int(1)), Source: &Subquery{}}) {
		t.Error("IN with unresolved subquery is not constant")
	}
}

func TestRegistryBuiltins(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"linear_scale", "in_rectangle", "abs", "coalesce", "iif", "substr", "clamp"} {
		if _, ok := r.Lookup(name); !ok {
			t.Errorf("builtin %s missing", name)
		}
		if _, ok := r.Lookup(strings.ToUpper(name)); !ok {
			t.Errorf("lookup should be case-insensitive for %s", name)
		}
	}
	// arity errors
	f, _ := r.Lookup("abs")
	if _, err := f.Apply(nil); err == nil {
		t.Error("abs() with no args should error")
	}
}

func TestBuiltinFunctions(t *testing.T) {
	r := NewRegistry()
	apply := func(name string, args ...relation.Value) relation.Value {
		f, ok := r.Lookup(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		v, err := f.Apply(args)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return v
	}
	if v := apply("abs", relation.Float(-2)); !v.Equal(relation.Float(2)) {
		t.Errorf("abs(-2) = %s", v)
	}
	if v := apply("coalesce", relation.Null(), relation.Int(5)); !v.Equal(relation.Int(5)) {
		t.Errorf("coalesce = %s", v)
	}
	if v := apply("iif", relation.Bool(true), relation.String("a"), relation.String("b")); v.AsString() != "a" {
		t.Errorf("iif = %s", v)
	}
	if v := apply("substr", relation.String("hello"), relation.Int(2), relation.Int(3)); v.AsString() != "ell" {
		t.Errorf("substr = %s", v)
	}
	if v := apply("clamp", relation.Float(15), relation.Float(0), relation.Float(10)); !v.Equal(relation.Float(10)) {
		t.Errorf("clamp = %s", v)
	}
	if v := apply("least", relation.Int(3), relation.Null(), relation.Int(1)); !v.Equal(relation.Int(1)) {
		t.Errorf("least = %s", v)
	}
	if v := apply("greatest", relation.Int(3), relation.Int(9)); !v.Equal(relation.Int(9)) {
		t.Errorf("greatest = %s", v)
	}
	if v := apply("sign", relation.Float(-0.5)); !v.Equal(relation.Int(-1)) {
		t.Errorf("sign = %s", v)
	}
	if v := apply("length", relation.String("abc")); !v.Equal(relation.Int(3)) {
		t.Errorf("length = %s", v)
	}
}

// Property: in_rectangle is invariant under corner permutation and
// linear_scale is monotone for increasing domains.
func TestUDFProperties(t *testing.T) {
	r := NewRegistry()
	rect, _ := r.Lookup("in_rectangle")
	f := func(x, y, x0, y0, x1, y1 float64) bool {
		a, err1 := rect.Apply([]relation.Value{
			relation.Float(x), relation.Float(y), relation.Float(x0),
			relation.Float(y0), relation.Float(x1), relation.Float(y1)})
		b, err2 := rect.Apply([]relation.Value{
			relation.Float(x), relation.Float(y), relation.Float(x1),
			relation.Float(y1), relation.Float(x0), relation.Float(y0)})
		return err1 == nil && err2 == nil && a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}

	scale, _ := r.Lookup("linear_scale")
	mono := func(v1, v2 float64) bool {
		if v1 > v2 {
			v1, v2 = v2, v1
		}
		a, _ := scale.Apply([]relation.Value{relation.Float(v1), relation.Float(0), relation.Float(100), relation.Float(0), relation.Float(400)})
		b, _ := scale.Apply([]relation.Value{relation.Float(v2), relation.Float(0), relation.Float(100), relation.Float(0), relation.Float(400)})
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		return af <= bf
	}
	if err := quick.Check(mono, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
