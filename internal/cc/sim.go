package cc

import "math/rand"

// Params configures one simulated participant run.
type Params struct {
	Policy Policy
	Task   Task
	// Facets is the number of interaction targets to inspect (the months
	// of Figure 4); the task requires observing each at least once.
	Facets int
	// MeanDelayMs is the mean of the exponential response latency; 0 is
	// the no-delay control condition.
	MeanDelayMs float64
	// User action costs in milliseconds; zero values take defaults
	// (hover 500, read 700, verify 350, scan 120).
	HoverMs, ReadMs, VerifyMs, ScanMs float64
	Seed                              int64
}

func (p Params) withDefaults() Params {
	if p.Facets == 0 {
		p.Facets = 12
	}
	if p.HoverMs == 0 {
		p.HoverMs = 500
	}
	if p.ReadMs == 0 {
		p.ReadMs = 700
	}
	if p.VerifyMs == 0 {
		p.VerifyMs = 350
	}
	if p.ScanMs == 0 {
		p.ScanMs = 120
	}
	if p.Task == Trend {
		// The harder task costs more per observation and more verification
		// — the mechanism behind the paper's "effects more pronounced".
		p.ReadMs *= 1.8
		p.VerifyMs *= 2.0
	}
	return p
}

// Outcome summarizes one participant's simulated session.
type Outcome struct {
	CompletionMs float64
	// Requests counts issued requests; Redundant counts re-issues caused
	// by the policy (Discard drops out-of-order responses).
	Requests  int
	Redundant int
	// MaxInflight is the peak number of concurrent outstanding requests —
	// the paper's measure of how "concurrency-friendly" user behaviour
	// becomes under each policy.
	MaxInflight int
}

// Simulate runs one participant through the task under the policy on a
// virtual clock. Deterministic for a given seed.
//
// The participant is a greedy scheduler over three actions: read an
// observable update, otherwise hover the next facet (issuing its request),
// otherwise wait for the next update to become observable. Policies differ
// ONLY in when updates become observable:
//
//   - NoCC / MostRecent: the user self-serializes (one outstanding request;
//     the paper observed exactly this behaviour), and each read carries a
//     verification cost under delay because unordered (NoCC) or
//     last-only (MostRecent) rendering forces them to confirm attribution;
//   - Serial: responses render in request order — a straggler blocks
//     everything behind it (head-of-line blocking);
//   - Discard: in-order rendering by dropping late out-of-order responses;
//     dropped facets must be re-hovered;
//   - MVCC: every response materializes its own small multiple (Figure 4b),
//     observable the moment it arrives, at a small per-chart visual-scan
//     cost (which is why MVCC is slightly slower with zero delay).
func Simulate(p Params) Outcome {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	latency := func() float64 {
		if p.MeanDelayMs <= 0 {
			return 0
		}
		return rng.ExpFloat64() * p.MeanDelayMs
	}
	if p.Policy == NoCC || p.Policy == MostRecent {
		return simulateSelfSerialized(p, latency)
	}
	return simulatePipelined(p, latency)
}

// simulateSelfSerialized: hover, wait for the render, verify attribution
// (only needed when the interface actually lags), read, repeat.
func simulateSelfSerialized(p Params, latency func() float64) Outcome {
	clock := 0.0
	out := Outcome{MaxInflight: 1}
	for f := 0; f < p.Facets; f++ {
		clock += p.HoverMs
		out.Requests++
		l := latency()
		clock += l
		if p.MeanDelayMs > 0 {
			clock += p.VerifyMs
		}
		clock += p.ReadMs
	}
	out.CompletionMs = clock
	return out
}

// pendingResp is one in-flight request in the pipelined simulation.
type pendingResp struct {
	facet   int
	reqIdx  int // global request order index (for Serial/Discard ordering)
	arrival float64
}

// simulatePipelined runs the greedy user schedule for Serial, Discard, and
// MVCC.
func simulatePipelined(p Params, latency func() float64) Outcome {
	var out Outcome
	clock := 0.0
	toHover := make([]int, p.Facets)
	for i := range toHover {
		toHover[i] = i
	}
	var inflight []pendingResp
	observed := make([]bool, p.Facets)
	nObserved := 0
	reqIdx := 0

	// Reading cost. MVCC always pays the small-multiple visual-scan cost
	// (locating the newly materialized chart) but never a verification
	// cost: the multiples persist and are spatially separated, so
	// attribution is free. Serial and Discard share a single mutating
	// chart: under latency the user must confirm which facet the chart
	// currently reflects on every update, the same attribution burden the
	// self-serialized policies pay.
	readCost := p.ReadMs
	switch p.Policy {
	case MVCC:
		readCost += p.ScanMs
	default:
		if p.MeanDelayMs > 0 {
			readCost += p.VerifyMs
		}
	}

	// nextObservable returns the inflight index observable next and the
	// time it becomes observable, or -1.
	//
	// Serial: only the lowest outstanding request index renders next, at
	// its own arrival — a straggler blocks later responses that already
	// arrived (head-of-line blocking).
	// Discard and MVCC: the earliest arrival renders next; under Discard,
	// rendering it dooms every outstanding earlier request (their responses
	// are now out of order and will be dropped on arrival).
	nextObservable := func() (int, float64) {
		best := -1
		for i, r := range inflight {
			switch p.Policy {
			case Serial:
				if best < 0 || r.reqIdx < inflight[best].reqIdx {
					best = i
				}
			default:
				if best < 0 || r.arrival < inflight[best].arrival {
					best = i
				}
			}
		}
		if best < 0 {
			return -1, 0
		}
		return best, inflight[best].arrival
	}

	for nObserved < p.Facets {
		obs, obsAt := nextObservable()
		switch {
		case obs >= 0 && obsAt <= clock:
			r := inflight[obs]
			inflight = append(inflight[:obs], inflight[obs+1:]...)
			if p.Policy == Discard {
				// Outstanding responses with a lower request index are now
				// out of order: the client will drop them, so the user
				// must re-hover those facets later.
				kept := inflight[:0]
				for _, o := range inflight {
					if o.reqIdx < r.reqIdx {
						out.Redundant++
						toHover = append(toHover, o.facet)
						continue
					}
					kept = append(kept, o)
				}
				inflight = kept
			}
			clock += readCost
			if !observed[r.facet] {
				observed[r.facet] = true
				nObserved++
			}
		case len(toHover) > 0:
			f := toHover[0]
			toHover = toHover[1:]
			clock += p.HoverMs
			inflight = append(inflight, pendingResp{facet: f, reqIdx: reqIdx, arrival: clock + latency()})
			reqIdx++
			out.Requests++
			if len(inflight) > out.MaxInflight {
				out.MaxInflight = len(inflight)
			}
		case obs >= 0:
			clock = obsAt // idle until the next update renders
		default:
			// nothing inflight and nothing to hover but facets unobserved:
			// cannot happen, but guard against infinite loops
			out.CompletionMs = clock
			return out
		}
	}
	out.CompletionMs = clock
	return out
}
