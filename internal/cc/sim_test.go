package cc

import (
	"math"
	"strings"
	"testing"
)

func TestPolicyStringAndParse(t *testing.T) {
	for _, p := range Policies {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v: got %v, %v", p, got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("bogus policy should error")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	p := Params{Policy: Serial, MeanDelayMs: 2500, Seed: 7}
	a := Simulate(p)
	b := Simulate(p)
	if a != b {
		t.Fatalf("simulation not deterministic: %+v vs %+v", a, b)
	}
}

func TestZeroDelayPoliciesAreClose(t *testing.T) {
	// Figure 5: "each of the above policies have little difference when
	// there is no response delay (in fact, MVCC is slightly slower)".
	times := map[Policy]float64{}
	for _, pol := range Policies {
		var sum float64
		for seed := int64(0); seed < 10; seed++ {
			sum += Simulate(Params{Policy: pol, MeanDelayMs: 0, Seed: seed}).CompletionMs
		}
		times[pol] = sum / 10
	}
	// All within 2x of each other.
	lo, hi := math.Inf(1), 0.0
	for _, v := range times {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi/lo > 2 {
		t.Fatalf("zero-delay spread too wide: %v", times)
	}
	// MVCC slightly slower than Serial at zero delay.
	if times[MVCC] <= times[Serial] {
		t.Fatalf("MVCC (%.0f) should be slightly slower than Serial (%.0f) at zero delay",
			times[MVCC], times[Serial])
	}
}

func TestDelayedOrderingMatchesFigure5(t *testing.T) {
	// Figure 5 at mean 2.5 s delay: NoCC and MostRecent take the most
	// time; Serial and Discard are clearly faster; MVCC is fastest.
	mean := func(pol Policy) float64 {
		var sum float64
		for seed := int64(0); seed < 30; seed++ {
			sum += Simulate(Params{Policy: pol, MeanDelayMs: 2500, Seed: seed}).CompletionMs
		}
		return sum / 30
	}
	noCC, serial, discard, recent, mvcc := mean(NoCC), mean(Serial), mean(Discard), mean(MostRecent), mean(MVCC)
	if !(mvcc < serial && mvcc < discard) {
		t.Fatalf("MVCC should be fastest: mvcc=%.0f serial=%.0f discard=%.0f", mvcc, serial, discard)
	}
	if !(serial < noCC && serial < recent) {
		t.Fatalf("Serial should beat NoCC/MostRecent: serial=%.0f nocc=%.0f recent=%.0f", serial, noCC, recent)
	}
	if !(discard < noCC && discard < recent) {
		t.Fatalf("Discard should beat NoCC/MostRecent: discard=%.0f nocc=%.0f recent=%.0f", discard, noCC, recent)
	}
	// The worst pair is well separated from the middle pair.
	if noCC < 1.3*serial {
		t.Fatalf("NoCC (%.0f) should be clearly slower than Serial (%.0f)", noCC, serial)
	}
}

func TestConcurrencyFriendlyPoliciesPipeline(t *testing.T) {
	// "concurrency-friendly policies allow users to generate more and make
	// use of concurrent requests": MaxInflight is 1 under self-serialized
	// policies and = facets under the pipelined ones.
	for _, pol := range []Policy{NoCC, MostRecent} {
		out := Simulate(Params{Policy: pol, MeanDelayMs: 2500, Seed: 3})
		if out.MaxInflight != 1 {
			t.Errorf("%v inflight = %d, want 1", pol, out.MaxInflight)
		}
	}
	for _, pol := range []Policy{Serial, Discard, MVCC} {
		out := Simulate(Params{Policy: pol, MeanDelayMs: 2500, Seed: 3})
		if out.MaxInflight <= 3 {
			t.Errorf("%v inflight = %d, want pipelined (> 3)", pol, out.MaxInflight)
		}
	}
}

func TestDiscardRetriesDroppedFacets(t *testing.T) {
	out := Simulate(Params{Policy: Discard, MeanDelayMs: 2500, Seed: 5})
	if out.Redundant == 0 {
		t.Fatal("Discard under delay should drop and re-issue some requests")
	}
	if out.Requests != 12+out.Redundant {
		t.Fatalf("requests = %d, redundant = %d", out.Requests, out.Redundant)
	}
	// No drops without delay (responses arrive in order instantly).
	out0 := Simulate(Params{Policy: Discard, MeanDelayMs: 0, Seed: 5})
	if out0.Redundant != 0 {
		t.Fatalf("zero-delay Discard should not drop, redundant = %d", out0.Redundant)
	}
}

func TestTrendTaskAmplifiesEffects(t *testing.T) {
	// "We have run this experiment on a perceptually more difficult
	// judgment task and found these effects to be more pronounced."
	gap := func(task Task) float64 {
		m := func(pol Policy) float64 {
			var sum float64
			for seed := int64(0); seed < 20; seed++ {
				sum += Simulate(Params{Policy: pol, Task: task, MeanDelayMs: 2500, Seed: seed}).CompletionMs
			}
			return sum / 20
		}
		return m(NoCC) - m(MVCC)
	}
	if gap(Trend) <= gap(Threshold) {
		t.Fatalf("trend gap (%.0f) should exceed threshold gap (%.0f)", gap(Trend), gap(Threshold))
	}
}

func TestRunStudyShape(t *testing.T) {
	s := RunStudy(StudyParams{Participants: 10, Seed: 1})
	if len(s.Cells) != len(Policies)*2 {
		t.Fatalf("cells = %d", len(s.Cells))
	}
	for _, c := range s.Cells {
		if c.MeanMs <= 0 || c.StdMs < 0 {
			t.Fatalf("degenerate cell %+v", c)
		}
	}
	// Ranking under delay puts MVCC first and NoCC/MostRecent last.
	rank := s.Ranking(2500)
	if rank[0] != MVCC {
		t.Fatalf("delay ranking = %v, want MVCC first", rank)
	}
	last2 := map[Policy]bool{rank[3]: true, rank[4]: true}
	if !last2[NoCC] || !last2[MostRecent] {
		t.Fatalf("delay ranking = %v, want NoCC and MostRecent last", rank)
	}
	out := s.Format()
	if !strings.Contains(out, "Figure 5") || !strings.Contains(out, "MVCC") {
		t.Fatalf("format output:\n%s", out)
	}
}

func TestStudyCellLookup(t *testing.T) {
	s := RunStudy(StudyParams{Participants: 5, Seed: 2})
	if _, ok := s.Cell(MVCC, 2500); !ok {
		t.Fatal("cell lookup failed")
	}
	if _, ok := s.Cell(MVCC, 999); ok {
		t.Fatal("missing cell should not be found")
	}
}
