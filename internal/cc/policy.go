// Package cc reproduces the §3.2 study of concurrency-control policies for
// interactive visualizations (Figures 4 and 5): an event-driven simulation
// of participants completing judgment tasks under five reordering/design
// policies and configurable response latency.
//
// The paper's qualitative findings, encoded here as behaviour models rather
// than hard-coded outcomes:
//
//   - under NoCC and MostRecent users "serialize their own input — by
//     hovering over a facet, waiting to see the visualization update, and
//     then performing the next interaction";
//   - under Serial and Discard the visualization updates in input order, so
//     users pipeline requests (Discard drops out-of-order responses, forcing
//     retry rounds);
//   - under MVCC "users hover over a large number of facets to issue many
//     requests, and wait for multiple visualizations to appear".
package cc

import "fmt"

// Policy is a §3.2 reordering (concurrency-control) or visual-design policy.
type Policy uint8

// The five policies of Figure 5.
const (
	// NoCC applies responses as they arrive with no coordination (vanilla
	// AJAX): out-of-order updates can misattribute charts to facets.
	NoCC Policy = iota
	// Serial fully serializes responses in request order (head-of-line
	// blocking).
	Serial
	// Discard enforces in-order display by dropping out-of-order
	// responses.
	Discard
	// MostRecent renders only the response to the latest request.
	MostRecent
	// MVCC is multi-visual concurrency control: each in-flight request gets
	// its own copy of the chart (small multiples, Figure 4b).
	MVCC
)

// Policies lists all five in the paper's presentation order.
var Policies = []Policy{NoCC, Serial, Discard, MostRecent, MVCC}

// String names the policy as in Figure 5.
func (p Policy) String() string {
	switch p {
	case NoCC:
		return "No CC"
	case Serial:
		return "Serial"
	case Discard:
		return "Discard"
	case MostRecent:
		return "Most Recent"
	case MVCC:
		return "MVCC"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// ParsePolicy resolves a policy name (case-sensitive match on the Figure 5
// labels, plus compact aliases).
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "No CC", "nocc", "none":
		return NoCC, nil
	case "Serial", "serial":
		return Serial, nil
	case "Discard", "discard":
		return Discard, nil
	case "Most Recent", "mostrecent", "recent":
		return MostRecent, nil
	case "MVCC", "mvcc":
		return MVCC, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", s)
	}
}

// Task is the judgment task participants perform.
type Task uint8

// Judgment tasks from the study design.
const (
	// Threshold: "identify whether a target bar ever exceeds a threshold
	// value" — asynchrony-friendly, order does not matter.
	Threshold Task = iota
	// Trend: "identifying a trend over time" — requires updates in input
	// order, perceptually harder; the paper found policy effects "more
	// pronounced" here.
	Trend
)

// String names the task.
func (t Task) String() string {
	if t == Trend {
		return "trend"
	}
	return "threshold"
}
