package cc

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// StudyParams configures a full Figure 5 reproduction: a panel of simulated
// participants run every policy under every delay condition.
type StudyParams struct {
	Participants int // default 40
	Facets       int
	Task         Task
	DelaysMs     []float64 // default {0, 2500}, the paper's two conditions
	Seed         int64
}

func (s StudyParams) withDefaults() StudyParams {
	if s.Participants == 0 {
		s.Participants = 40
	}
	if s.Facets == 0 {
		s.Facets = 12
	}
	if len(s.DelaysMs) == 0 {
		s.DelaysMs = []float64{0, 2500}
	}
	return s
}

// Cell is one (policy, delay) aggregate of the study.
type Cell struct {
	Policy       Policy
	DelayMs      float64
	MeanMs       float64
	StdMs        float64
	MeanRequests float64
	MeanInflight float64
}

// Study is the full result grid, Figure 5's data.
type Study struct {
	Params StudyParams
	Cells  []Cell
}

// RunStudy simulates the panel. Participant-level variation enters through
// per-participant action-cost jitter and independent latency draws.
func RunStudy(sp StudyParams) Study {
	sp = sp.withDefaults()
	rng := rand.New(rand.NewSource(sp.Seed))
	// Pre-draw participant profiles so every (policy, delay) cell sees the
	// same population, as a within-subjects study would.
	type profile struct {
		hover, read, verify, scan float64
		seed                      int64
	}
	profiles := make([]profile, sp.Participants)
	for i := range profiles {
		profiles[i] = profile{
			hover:  jitter(rng, 500, 80),
			read:   jitter(rng, 700, 120),
			verify: jitter(rng, 350, 60),
			scan:   jitter(rng, 120, 30),
			seed:   rng.Int63(),
		}
	}
	var cells []Cell
	for _, delay := range sp.DelaysMs {
		for _, pol := range Policies {
			var times []float64
			var reqs, inflight float64
			for i, prof := range profiles {
				out := Simulate(Params{
					Policy:      pol,
					Task:        sp.Task,
					Facets:      sp.Facets,
					MeanDelayMs: delay,
					HoverMs:     prof.hover,
					ReadMs:      prof.read,
					VerifyMs:    prof.verify,
					ScanMs:      prof.scan,
					Seed:        prof.seed + int64(i) + int64(pol)*7919 + int64(delay),
				})
				times = append(times, out.CompletionMs)
				reqs += float64(out.Requests)
				inflight += float64(out.MaxInflight)
			}
			mean, std := meanStd(times)
			cells = append(cells, Cell{
				Policy:       pol,
				DelayMs:      delay,
				MeanMs:       mean,
				StdMs:        std,
				MeanRequests: reqs / float64(len(profiles)),
				MeanInflight: inflight / float64(len(profiles)),
			})
		}
	}
	return Study{Params: sp, Cells: cells}
}

func jitter(rng *rand.Rand, mean, std float64) float64 {
	v := mean + rng.NormFloat64()*std
	if v < mean/2 {
		v = mean / 2
	}
	return v
}

func meanStd(xs []float64) (float64, float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(ss / float64(len(xs)))
}

// Cell returns the aggregate for a (policy, delay) pair.
func (s Study) Cell(p Policy, delayMs float64) (Cell, bool) {
	for _, c := range s.Cells {
		if c.Policy == p && c.DelayMs == delayMs {
			return c, true
		}
	}
	return Cell{}, false
}

// Format renders the study as the Figure 5 table: one row per policy, one
// column per delay condition, mean completion time in seconds.
func (s Study) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 — average completion time of %s task (n=%d, facets=%d)\n",
		s.Params.Task, s.Params.Participants, s.Params.Facets)
	fmt.Fprintf(&b, "%-12s", "policy")
	for _, d := range s.Params.DelaysMs {
		fmt.Fprintf(&b, "  %14s", fmt.Sprintf("delay=%.1fs", d/1000))
	}
	b.WriteString("\n")
	for _, p := range Policies {
		fmt.Fprintf(&b, "%-12s", p)
		for _, d := range s.Params.DelaysMs {
			c, _ := s.Cell(p, d)
			fmt.Fprintf(&b, "  %9.1fs±%.1f", c.MeanMs/1000, c.StdMs/1000)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Ranking returns the policies ordered fastest-first at a delay condition.
func (s Study) Ranking(delayMs float64) []Policy {
	type pc struct {
		p Policy
		m float64
	}
	var list []pc
	for _, p := range Policies {
		c, _ := s.Cell(p, delayMs)
		list = append(list, pc{p, c.MeanMs})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].m < list[j].m })
	out := make([]Policy, len(list))
	for i, x := range list {
		out[i] = x.p
	}
	return out
}
