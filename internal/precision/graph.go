package precision

import (
	"fmt"
	"sort"
	"strings"
)

// Edge is one transformation in the interaction graph (Figure 6): query
// FromIdx can be turned into query ToIdx by the named interaction.
type Edge struct {
	FromIdx, ToIdx int
	Interaction    string
}

// Graph is the transformation graph mined from a query log.
type Graph struct {
	// Queries holds the distinct query strings (graph vertices).
	Queries []string
	Edges   []Edge
	// Unmatched counts compared pairs explained by no rule.
	Unmatched int
	// Compared counts all compared pairs.
	Compared int
}

// BuildGraph compares consecutive query pairs of a log against the rule set
// and builds the transformation graph. Comparing consecutive entries mirrors
// how analysts tweak one query repeatedly (the sessions the SDSS log
// exhibits); the paper's |L²| pair space is sampled the same way by the
// knapsack objective. Rules match first-wins, so order specific rules
// before catch-alls.
func BuildGraph(log []string, rules []Rule) (*Graph, error) {
	return BuildGraphFromSessions([][]string{log}, rules)
}

// BuildGraphFromSessions builds one transformation graph over per-session
// query sequences, comparing consecutive pairs only within a session (an
// analyst's incremental tweaks, not unrelated cross-session jumps).
func BuildGraphFromSessions(sessions [][]string, rules []Rule) (*Graph, error) {
	g := &Graph{}
	index := map[string]int{}
	vertex := func(q string) int {
		if i, ok := index[q]; ok {
			return i
		}
		index[q] = len(g.Queries)
		g.Queries = append(g.Queries, q)
		return len(g.Queries) - 1
	}
	trees := map[string]*Node{}
	treeOf := func(q string) (*Node, error) {
		if t, ok := trees[q]; ok {
			return t, nil
		}
		t, err := ParseQueryTree(q)
		if err != nil {
			return nil, fmt.Errorf("parse %q: %w", q, err)
		}
		trees[q] = t
		return t, nil
	}
	for _, log := range sessions {
		for i := 1; i < len(log); i++ {
			a, b := log[i-1], log[i]
			if a == b {
				continue
			}
			ta, err := treeOf(a)
			if err != nil {
				return nil, err
			}
			tb, err := treeOf(b)
			if err != nil {
				return nil, err
			}
			g.Compared++
			matched := ""
			for _, r := range rules {
				if r.MatchPair(ta, tb) {
					matched = r.Interaction
					break
				}
			}
			if matched == "" {
				g.Unmatched++
				continue
			}
			g.Edges = append(g.Edges, Edge{FromIdx: vertex(a), ToIdx: vertex(b), Interaction: matched})
		}
	}
	return g, nil
}

// InteractionCounts returns, per interaction name, the number of edges
// labeled with it — the statistic behind "the two most frequent
// interactions cover 12% and 70% of our sample query log".
func (g *Graph) InteractionCounts() map[string]int {
	out := map[string]int{}
	for _, e := range g.Edges {
		out[e.Interaction]++
	}
	return out
}

// InteractionShares returns per-interaction fractions of all compared pairs,
// sorted descending.
func (g *Graph) InteractionShares() []InteractionShare {
	counts := g.InteractionCounts()
	out := make([]InteractionShare, 0, len(counts))
	for name, c := range counts {
		out = append(out, InteractionShare{Name: name, Share: float64(c) / float64(g.Compared)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// InteractionShare pairs an interaction name with its share of compared
// pairs.
type InteractionShare struct {
	Name  string
	Share float64
}

// Coverage is the fraction of compared pairs explained by some rule.
func (g *Graph) Coverage() float64 {
	if g.Compared == 0 {
		return 0
	}
	return float64(g.Compared-g.Unmatched) / float64(g.Compared)
}

// Density reports edges per vertex, the "extremely dense" observation of
// Figure 6.
func (g *Graph) Density() float64 {
	if len(g.Queries) == 0 {
		return 0
	}
	return float64(len(g.Edges)) / float64(len(g.Queries))
}

// Format renders graph statistics in the Figure 6 caption style.
func (g *Graph) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "transformation graph: %d distinct queries, %d edges (%.2f edges/vertex)\n",
		len(g.Queries), len(g.Edges), g.Density())
	fmt.Fprintf(&b, "rule coverage: %.1f%% of %d compared pairs\n", g.Coverage()*100, g.Compared)
	for _, s := range g.InteractionShares() {
		fmt.Fprintf(&b, "  %-22s %5.1f%%\n", s.Name, s.Share*100)
	}
	return b.String()
}

// SDSSRules returns the 8 hand-coded transformation rules used to mine the
// SkyServer-style log, mirroring the paper's "8 hand coded transformation
// queries". The first three projection rules all map to the same
// interaction; the SUBSET forms mirror the paper's example rule. Order
// matters: specific rules precede the FilterEditor catch-all.
func SDSSRules() []Rule {
	src := `
FROM Select/Where//Number AS a WHERE NUMERIC_DIFF(a) MATCH RangeSlider;
FROM Select//ProjectClauses AS a WHERE a@old SUBSET a@new MATCH ProjectionPicker;
FROM Select//ProjectClauses AS a WHERE a@new SUBSET a@old MATCH ProjectionPicker;
FROM Select//ProjectClauses AS a WHERE a@old != a@new MATCH ProjectionPicker;
FROM Select/Where//Literal AS a WHERE VALUE_CHANGED(a) MATCH ValueDropdown;
FROM Select/Where//Column AS a WHERE VALUE_CHANGED(a) MATCH ColumnPicker;
FROM Select/Limit AS a WHERE VALUE_CHANGED(a) MATCH LimitStepper;
FROM Select/Where AS a WHERE a@old != a@new MATCH FilterEditor;
`
	rules, err := ParseRules(src)
	if err != nil {
		panic("SDSSRules: " + err.Error()) // compile-time constant rule set
	}
	return rules
}
