// Package precision implements Precision Interfaces (§3.4): mining a query
// log for structured, incremental "tweaks" via AST subtree diffs, matching
// tweaks against a rule language, building the transformation graph of
// Figure 6, and synthesizing interfaces by solving the widget-assignment
// knapsack of the paper (Figure 7).
package precision

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/expr"
	"repro/internal/parser"
)

// Node is a language-agnostic AST node: the paper's key observation is that
// all programs parse into ASTs, so tweak detection over generic trees
// generalizes across languages. Type is the node class (Select, Project,
// Where, Cmp, Number, ...); Label carries leaf values.
type Node struct {
	Type     string
	Label    string
	Children []*Node
}

// NewNode builds a node.
func NewNode(typ, label string, children ...*Node) *Node {
	return &Node{Type: typ, Label: label, Children: children}
}

// String renders the subtree compactly (s-expression style).
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b)
	return b.String()
}

func (n *Node) render(b *strings.Builder) {
	b.WriteByte('(')
	b.WriteString(n.Type)
	if n.Label != "" {
		b.WriteByte(':')
		b.WriteString(n.Label)
	}
	for _, c := range n.Children {
		b.WriteByte(' ')
		c.render(b)
	}
	b.WriteByte(')')
}

// Equal reports deep tree equality.
func (n *Node) Equal(o *Node) bool {
	if n == nil || o == nil {
		return n == o
	}
	if n.Type != o.Type || n.Label != o.Label || len(n.Children) != len(o.Children) {
		return false
	}
	for i := range n.Children {
		if !n.Children[i].Equal(o.Children[i]) {
			return false
		}
	}
	return true
}

// NumericLabel parses the node's label as a number.
func (n *Node) NumericLabel() (float64, bool) {
	f, err := strconv.ParseFloat(n.Label, 64)
	return f, err == nil
}

// ParseQueryTree parses a SQL string with the DeVIL parser and converts it
// to a generic tree. This plays the role of "the specific parser" in the
// paper — rules are written against this parser's node types.
func ParseQueryTree(sql string) (*Node, error) {
	q, err := parser.ParseQuery(sql)
	if err != nil {
		return nil, err
	}
	return QueryTree(q), nil
}

// QueryTree converts a parsed query to a generic tree.
func QueryTree(q parser.QueryExpr) *Node {
	switch n := q.(type) {
	case *parser.SelectStmt:
		return selectTree(n)
	case *parser.SetOp:
		return NewNode("SetOp", n.Op.String(), QueryTree(n.L), QueryTree(n.R))
	case *parser.RelRefQuery:
		return NewNode("Table", n.Ref.Name)
	default:
		return NewNode("Query", fmt.Sprintf("%T", q))
	}
}

func selectTree(sel *parser.SelectStmt) *Node {
	root := NewNode("Select", "")
	proj := NewNode("Project", "")
	clauses := NewNode("ProjectClauses", "")
	for _, it := range sel.Items {
		if it.Star {
			name := "*"
			if it.StarQualifier != "" {
				name = it.StarQualifier + ".*"
			}
			clauses.Children = append(clauses.Children, NewNode("Star", name))
			continue
		}
		item := NewNode("Item", it.OutName(), exprTree(it.Expr))
		clauses.Children = append(clauses.Children, item)
	}
	proj.Children = append(proj.Children, clauses)
	root.Children = append(root.Children, proj)

	if len(sel.From) > 0 {
		from := NewNode("From", "")
		for _, f := range sel.From {
			if f.Sub != nil {
				from.Children = append(from.Children, NewNode("SubqueryRef", f.Alias, QueryTree(f.Sub)))
			} else {
				from.Children = append(from.Children, NewNode("Table", f.Name+f.Version.String()))
			}
		}
		root.Children = append(root.Children, from)
	}
	if sel.Where != nil {
		root.Children = append(root.Children, NewNode("Where", "", exprTree(sel.Where)))
	}
	if len(sel.GroupBy) > 0 {
		g := NewNode("GroupBy", "")
		for _, e := range sel.GroupBy {
			g.Children = append(g.Children, exprTree(e))
		}
		root.Children = append(root.Children, g)
	}
	if sel.Having != nil {
		root.Children = append(root.Children, NewNode("Having", "", exprTree(sel.Having)))
	}
	if len(sel.OrderBy) > 0 {
		o := NewNode("OrderBy", "")
		for _, item := range sel.OrderBy {
			dir := "asc"
			if item.Desc {
				dir = "desc"
			}
			o.Children = append(o.Children, NewNode("OrderKey", dir, exprTree(item.Expr)))
		}
		root.Children = append(root.Children, o)
	}
	if sel.Limit >= 0 {
		root.Children = append(root.Children, NewNode("Limit", strconv.Itoa(sel.Limit)))
	}
	if sel.Distinct {
		root.Children = append(root.Children, NewNode("Distinct", ""))
	}
	return root
}

func exprTree(e expr.Expr) *Node {
	switch n := e.(type) {
	case *expr.Lit:
		if n.V.Kind().Numeric() {
			return NewNode("Number", n.V.String())
		}
		return NewNode("Literal", n.V.String())
	case *expr.Column:
		return NewNode("Column", n.String())
	case *expr.Binary:
		kind := "Cmp"
		switch n.Op {
		case expr.OpAnd, expr.OpOr:
			kind = "Logic"
		case expr.OpAdd, expr.OpSub, expr.OpMul, expr.OpDiv, expr.OpMod, expr.OpConcat:
			kind = "Arith"
		}
		return NewNode(kind, n.Op.String(), exprTree(n.L), exprTree(n.R))
	case *expr.Unary:
		return NewNode("Unary", n.Op.String()+"", exprTree(n.X))
	case *expr.Call:
		node := NewNode("Call", n.Name)
		for _, a := range n.Args {
			node.Children = append(node.Children, exprTree(a))
		}
		return node
	case *expr.Agg:
		node := NewNode("Agg", n.Name)
		if n.Arg != nil {
			node.Children = append(node.Children, exprTree(n.Arg))
		}
		return node
	case *expr.In:
		node := NewNode("In", "")
		node.Children = append(node.Children, exprTree(n.X))
		return node
	case *expr.IsNull:
		return NewNode("IsNull", "", exprTree(n.X))
	case *expr.Case:
		node := NewNode("Case", "")
		for _, w := range n.Whens {
			node.Children = append(node.Children, NewNode("When", "", exprTree(w.Cond), exprTree(w.Result)))
		}
		if n.Else != nil {
			node.Children = append(node.Children, NewNode("Else", "", exprTree(n.Else)))
		}
		return node
	case *expr.Subquery:
		if q, ok := n.Query.(parser.QueryExpr); ok {
			return NewNode("Subquery", "", QueryTree(q))
		}
		return NewNode("Subquery", "")
	default:
		return NewNode("Expr", fmt.Sprintf("%T", e))
	}
}

// Diff is one localized subtree difference between two ASTs: the paper's
// "tweaks and incremental program changes amount to subtree differences at
// the AST level". Path is the slash-joined node-type path from the root;
// Old/New are the differing subtrees (nil when added/removed).
type Diff struct {
	Path string
	Old  *Node
	New  *Node
}

// DiffTrees computes the minimal list of subtree differences. Nodes are
// matched positionally; a node with a changed type, label arity, or child
// count becomes a single diff covering its whole subtree.
func DiffTrees(a, b *Node) []Diff {
	var out []Diff
	diffRec(a, b, a.Type, &out)
	return out
}

func diffRec(a, b *Node, path string, out *[]Diff) {
	if a.Type != b.Type || len(a.Children) != len(b.Children) {
		*out = append(*out, Diff{Path: path, Old: a, New: b})
		return
	}
	if a.Label != b.Label && len(a.Children) == 0 {
		*out = append(*out, Diff{Path: path, Old: a, New: b})
		return
	}
	if a.Label != b.Label {
		*out = append(*out, Diff{Path: path, Old: a, New: b})
		return
	}
	for i := range a.Children {
		diffRec(a.Children[i], b.Children[i], path+"/"+a.Children[i].Type, out)
	}
}
