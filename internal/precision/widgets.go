package precision

import (
	"fmt"
	"sort"
	"strings"
)

// WidgetSpec describes one interface widget available to the synthesizer,
// with the paper's two costs: Cvis, its visual complexity (the knapsack
// weight), and Cact, the user effort to activate it (the objective term).
// Covers lists the interaction names (rule MATCH targets) the widget can
// express.
type WidgetSpec struct {
	Name   string
	Cvis   float64
	Cact   float64
	Covers []string
}

// covers reports whether the widget expresses the interaction.
func (w WidgetSpec) covers(interaction string) bool {
	for _, c := range w.Covers {
		if c == interaction {
			return true
		}
	}
	return false
}

// DefaultCatalog returns the widget catalog used for the SkyServer
// experiments. Text boxes are cheap to render but expensive to use; the
// specialized widgets invert that trade-off — the tension the knapsack
// objective navigates.
func DefaultCatalog() []WidgetSpec {
	return []WidgetSpec{
		{Name: "range-slider", Cvis: 3, Cact: 1, Covers: []string{"RangeSlider"}},
		{Name: "projection-checkboxes", Cvis: 4, Cact: 1.5, Covers: []string{"ProjectionPicker"}},
		{Name: "value-dropdown", Cvis: 2, Cact: 1, Covers: []string{"ValueDropdown"}},
		{Name: "column-picker", Cvis: 2, Cact: 1.5, Covers: []string{"ColumnPicker"}},
		{Name: "limit-stepper", Cvis: 1, Cact: 1, Covers: []string{"LimitStepper"}},
		{Name: "filter-editor", Cvis: 6, Cact: 4, Covers: []string{"FilterEditor", "RangeSlider", "ValueDropdown", "ColumnPicker"}},
		{Name: "sql-textbox", Cvis: 5, Cact: 8, Covers: []string{
			"RangeSlider", "ProjectionPicker", "ValueDropdown", "ColumnPicker", "LimitStepper", "FilterEditor"}},
	}
}

// SynthesisParams configures the widget-assignment problem of §3.4:
//
//	argmin_G 1/|L²| · Σ_(Qi,Qj) min_{w∈G} { Cact(w) if w covers (Qi,Qj);
//	                                         penalty otherwise }
//	s.t. Σ_{w∈G} Cvis(w) < MaxVis
type SynthesisParams struct {
	Catalog []WidgetSpec
	// Penalty is applied to transformations no selected widget covers.
	Penalty float64
	// MaxVis bounds total visual complexity — the interface simplicity
	// budget. Low values prefer simplicity (Figure 7b), high values prefer
	// coverage (Figure 7c).
	MaxVis float64
}

// Interface is a synthesized interface: the chosen widgets and the
// objective value achieved.
type Interface struct {
	Widgets []WidgetSpec
	// AvgCost is the objective: average per-transformation user cost.
	AvgCost float64
	// Covered is the fraction of transformations covered by some widget.
	Covered  float64
	TotalVis float64
}

// Synthesize solves the widget-assignment knapsack with the paper's greedy
// heuristic: repeatedly add the widget with the best marginal objective
// improvement per unit of visual complexity, while the budget allows.
func Synthesize(g *Graph, p SynthesisParams) Interface {
	if p.Penalty == 0 {
		p.Penalty = 10
	}
	if len(p.Catalog) == 0 {
		p.Catalog = DefaultCatalog()
	}
	counts := g.InteractionCounts()
	total := 0
	for _, c := range counts {
		total += c
	}
	// Unmatched pairs always pay the penalty; they only shift the
	// objective by a constant, so track them for reporting.
	unmatched := g.Unmatched

	objective := func(chosen []WidgetSpec) (avg float64, covered float64) {
		if total+unmatched == 0 {
			return 0, 0
		}
		var cost float64
		var cov int
		for name, c := range counts {
			best := p.Penalty
			hit := false
			for _, w := range chosen {
				if w.covers(name) && w.Cact < best {
					best = w.Cact
					hit = true
				}
			}
			cost += best * float64(c)
			if hit {
				cov += c
			}
		}
		cost += p.Penalty * float64(unmatched)
		return cost / float64(total+unmatched), float64(cov) / float64(total+unmatched)
	}

	var chosen []WidgetSpec
	used := map[string]bool{}
	vis := 0.0
	cur, _ := objective(chosen)
	for {
		bestIdx := -1
		bestGain := 0.0
		for i, w := range p.Catalog {
			if used[w.Name] || vis+w.Cvis >= p.MaxVis {
				continue
			}
			next, _ := objective(append(chosen, w))
			gain := (cur - next) / w.Cvis
			if gain > bestGain {
				bestGain = gain
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			break
		}
		w := p.Catalog[bestIdx]
		chosen = append(chosen, w)
		used[w.Name] = true
		vis += w.Cvis
		cur, _ = objective(chosen)
	}
	avg, covered := objective(chosen)
	sort.Slice(chosen, func(i, j int) bool { return chosen[i].Name < chosen[j].Name })
	return Interface{Widgets: chosen, AvgCost: avg, Covered: covered, TotalVis: vis}
}

// Mockup renders the synthesized interface as a text wireframe, the
// Figure 7 presentation.
func (ifc Interface) Mockup(title string) string {
	var b strings.Builder
	width := 46
	line := "+" + strings.Repeat("-", width-2) + "+"
	b.WriteString(line + "\n")
	fmt.Fprintf(&b, "| %-*s |\n", width-4, title)
	b.WriteString(line + "\n")
	if len(ifc.Widgets) == 0 {
		fmt.Fprintf(&b, "| %-*s |\n", width-4, "(no widgets fit the budget)")
	}
	for _, w := range ifc.Widgets {
		var control string
		switch w.Name {
		case "range-slider":
			control = "[=====|--------]  " + w.Name
		case "projection-checkboxes":
			control = "[x] a [x] b [ ] c  " + w.Name
		case "value-dropdown":
			control = "[ STAR      v ]  " + w.Name
		case "column-picker":
			control = "( u )( g )( r )  " + w.Name
		case "limit-stepper":
			control = "[ 10 ] [-] [+]  " + w.Name
		case "filter-editor":
			control = "[ col op value + ]  " + w.Name
		case "sql-textbox":
			control = "[ SELECT ...       ]  " + w.Name
		default:
			control = "[ " + w.Name + " ]"
		}
		fmt.Fprintf(&b, "| %-*s |\n", width-4, control)
	}
	b.WriteString(line + "\n")
	fmt.Fprintf(&b, "avg activation cost %.2f, coverage %.1f%%, visual complexity %.0f\n",
		ifc.AvgCost, ifc.Covered*100, ifc.TotalVis)
	return b.String()
}
