package precision

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func tree(t *testing.T, sql string) *Node {
	t.Helper()
	n, err := ParseQueryTree(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return n
}

func TestQueryTreeStructure(t *testing.T) {
	n := tree(t, "SELECT a, b FROM t WHERE a > 5 ORDER BY a LIMIT 3")
	if n.Type != "Select" {
		t.Fatalf("root = %s", n.Type)
	}
	types := map[string]bool{}
	for _, c := range n.Children {
		types[c.Type] = true
	}
	for _, want := range []string{"Project", "From", "Where", "OrderBy", "Limit"} {
		if !types[want] {
			t.Errorf("missing %s child: %s", want, n)
		}
	}
	if !strings.Contains(n.String(), "ProjectClauses") {
		t.Errorf("ProjectClauses missing: %s", n)
	}
}

func TestDiffLocalization(t *testing.T) {
	a := tree(t, "SELECT a FROM t WHERE x > 5")
	b := tree(t, "SELECT a FROM t WHERE x > 7")
	diffs := DiffTrees(a, b)
	if len(diffs) != 1 {
		t.Fatalf("diffs = %d: %+v", len(diffs), diffs)
	}
	if !strings.Contains(diffs[0].Path, "Where") || !strings.HasSuffix(diffs[0].Path, "Number") {
		t.Fatalf("diff path = %s", diffs[0].Path)
	}
	if diffs[0].Old.Label != "5" || diffs[0].New.Label != "7" {
		t.Fatalf("diff = %+v", diffs[0])
	}
	// identical queries: no diffs
	if len(DiffTrees(a, a)) != 0 {
		t.Fatal("identical trees should have no diffs")
	}
}

func TestDiffStructuralChange(t *testing.T) {
	a := tree(t, "SELECT a FROM t")
	b := tree(t, "SELECT a, b FROM t")
	diffs := DiffTrees(a, b)
	if len(diffs) != 1 {
		t.Fatalf("diffs = %d", len(diffs))
	}
	if !strings.HasSuffix(diffs[0].Path, "ProjectClauses") {
		t.Fatalf("diff path = %s", diffs[0].Path)
	}
}

func TestParseRulesErrors(t *testing.T) {
	bad := []string{
		"FROM x AS a MATCH Foo",                       // no WHERE
		"WHERE NUMERIC_DIFF(a) MATCH Foo",             // no FROM
		"FROM p AS a WHERE BOGUS(a) MATCH Foo",        // unknown predicate
		"FROM p AS a WHERE NUMERIC_DIFF(b) MATCH Foo", // wrong variable
		"FROM p AS a WHERE a@old SUBSET a@new",        // no MATCH
	}
	for _, src := range bad {
		if _, err := ParseRules(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
	rules, err := ParseRules("FROM Select//Where AS a WHERE a@old != a@new MATCH X;")
	if err != nil || len(rules) != 1 {
		t.Fatalf("good rule failed: %v", err)
	}
	if rules[0].Interaction != "X" || rules[0].Var != "a" {
		t.Fatalf("rule = %+v", rules[0])
	}
}

// The paper's example rule, almost verbatim: project-clause growth matches
// an interaction.
func TestPaperSubsetRule(t *testing.T) {
	rules, err := ParseRules("FROM Select//ProjectClauses AS a WHERE a@old SUBSET a@new MATCH AddColumn;")
	if err != nil {
		t.Fatal(err)
	}
	grow := rules[0].MatchPair(
		tree(t, "SELECT a FROM t WHERE x > 1"),
		tree(t, "SELECT a, b FROM t WHERE x > 1"))
	if !grow {
		t.Fatal("projection growth should match SUBSET rule")
	}
	shrink := rules[0].MatchPair(
		tree(t, "SELECT a, b FROM t"),
		tree(t, "SELECT a FROM t"))
	if shrink {
		t.Fatal("projection shrink should not match old-subset-new")
	}
	unrelated := rules[0].MatchPair(
		tree(t, "SELECT a FROM t WHERE x > 1"),
		tree(t, "SELECT a FROM t WHERE x > 2"))
	if unrelated {
		t.Fatal("numeric tweak should not match projection rule")
	}
}

func TestNumericDiffRule(t *testing.T) {
	rules, err := ParseRules("FROM Select/Where//Number AS a WHERE NUMERIC_DIFF(a) MATCH Slider;")
	if err != nil {
		t.Fatal(err)
	}
	// one bound changed
	if !rules[0].MatchPair(
		tree(t, "SELECT a FROM t WHERE x > 5 AND x < 10"),
		tree(t, "SELECT a FROM t WHERE x > 6 AND x < 10")) {
		t.Fatal("single numeric tweak should match")
	}
	// both bounds changed: two diffs, each covered by a binding
	if !rules[0].MatchPair(
		tree(t, "SELECT a FROM t WHERE x > 5 AND x < 10"),
		tree(t, "SELECT a FROM t WHERE x > 6 AND x < 11")) {
		t.Fatal("double numeric tweak should match")
	}
	// numeric tweak AND projection change: rule does not explain all diffs
	if rules[0].MatchPair(
		tree(t, "SELECT a FROM t WHERE x > 5"),
		tree(t, "SELECT a, b FROM t WHERE x > 6")) {
		t.Fatal("mixed tweak should not match a single-aspect rule")
	}
	// identical queries are not transformations
	if rules[0].MatchPair(
		tree(t, "SELECT a FROM t WHERE x > 5"),
		tree(t, "SELECT a FROM t WHERE x > 5")) {
		t.Fatal("identical queries should not match")
	}
}

func TestValueChangedAndLimitRules(t *testing.T) {
	rules := SDSSRules()
	match := func(a, b string) string {
		ta, tb := tree(t, a), tree(t, b)
		for _, r := range rules {
			if r.MatchPair(ta, tb) {
				return r.Interaction
			}
		}
		return ""
	}
	if got := match(
		"SELECT a FROM t WHERE specClass = 'STAR'",
		"SELECT a FROM t WHERE specClass = 'QSO'"); got != "ValueDropdown" {
		t.Fatalf("string flip matched %q", got)
	}
	if got := match(
		"SELECT count(*) AS n FROM t WHERE r < 19.5",
		"SELECT count(*) AS n FROM t WHERE g < 19.5"); got != "ColumnPicker" {
		t.Fatalf("column flip matched %q", got)
	}
	if got := match(
		"SELECT a FROM t LIMIT 10",
		"SELECT a FROM t LIMIT 20"); got != "LimitStepper" {
		t.Fatalf("limit change matched %q", got)
	}
	if got := match(
		"SELECT a FROM t WHERE x > 5",
		"SELECT a FROM t WHERE x > 6"); got != "RangeSlider" {
		t.Fatalf("numeric tweak matched %q", got)
	}
	if got := match(
		"SELECT a FROM t WHERE x > 5",
		"SELECT a FROM t WHERE x > 5 AND y < 2"); got != "FilterEditor" {
		t.Fatalf("filter restructure matched %q", got)
	}
}

func sessionsOf(log []workload.LogEntry) [][]string {
	var sessions [][]string
	cur := -1
	for _, e := range log {
		if e.Session != cur {
			sessions = append(sessions, nil)
			cur = e.Session
		}
		sessions[len(sessions)-1] = append(sessions[len(sessions)-1], e.SQL)
	}
	return sessions
}

// TestFigure6Statistics reproduces the paper's SDSS analysis: the graph is
// dense and the two most frequent interactions cover ≈70 % and ≈12 % of the
// sample.
func TestFigure6Statistics(t *testing.T) {
	log := workload.SDSSLog(20000, 17)
	g, err := BuildGraphFromSessions(sessionsOf(log), SDSSRules())
	if err != nil {
		t.Fatal(err)
	}
	if g.Coverage() < 0.95 {
		t.Fatalf("rule coverage = %.3f, want high", g.Coverage())
	}
	shares := g.InteractionShares()
	if len(shares) < 4 {
		t.Fatalf("interaction types = %d", len(shares))
	}
	if shares[0].Name != "RangeSlider" || shares[0].Share < 0.60 || shares[0].Share > 0.80 {
		t.Fatalf("top interaction = %+v, want RangeSlider ≈ 0.70", shares[0])
	}
	if shares[1].Name != "ProjectionPicker" || shares[1].Share < 0.08 || shares[1].Share > 0.17 {
		t.Fatalf("second interaction = %+v, want ProjectionPicker ≈ 0.12", shares[1])
	}
	if g.Density() < 0.5 {
		t.Fatalf("graph density = %.2f, want dense", g.Density())
	}
	out := g.Format()
	if !strings.Contains(out, "RangeSlider") {
		t.Fatalf("format output:\n%s", out)
	}
}

// TestFigure7Interfaces reproduces the simplicity-vs-coverage trade-off:
// a small budget yields few widgets covering the dominant interactions; a
// large budget covers (nearly) everything.
func TestFigure7Interfaces(t *testing.T) {
	log := workload.SDSSLog(8000, 23)
	g, err := BuildGraphFromSessions(sessionsOf(log), SDSSRules())
	if err != nil {
		t.Fatal(err)
	}
	simple := Synthesize(g, SynthesisParams{MaxVis: 6, Penalty: 10})
	coverage := Synthesize(g, SynthesisParams{MaxVis: 20, Penalty: 10})
	if len(simple.Widgets) == 0 {
		t.Fatal("simplicity interface should have at least one widget")
	}
	if len(coverage.Widgets) <= len(simple.Widgets) {
		t.Fatalf("coverage interface (%d widgets) should exceed simplicity (%d)",
			len(coverage.Widgets), len(simple.Widgets))
	}
	if coverage.Covered <= simple.Covered {
		t.Fatalf("coverage %.2f should exceed %.2f", coverage.Covered, simple.Covered)
	}
	if coverage.AvgCost >= simple.AvgCost+0.001 && coverage.Covered > simple.Covered {
		// more budget should never hurt the objective
		t.Fatalf("coverage objective %.3f worse than simple %.3f", coverage.AvgCost, simple.AvgCost)
	}
	// the simplicity preset must include the dominant interaction's widget
	names := map[string]bool{}
	for _, w := range simple.Widgets {
		names[w.Name] = true
	}
	if !names["range-slider"] && !names["sql-textbox"] && !names["filter-editor"] {
		t.Fatalf("simplicity widgets = %v, expected the dominant interaction covered", simple.Widgets)
	}
	// budget respected
	if simple.TotalVis >= 6 || coverage.TotalVis >= 20 {
		t.Fatalf("budgets violated: %v / %v", simple.TotalVis, coverage.TotalVis)
	}
	mock := simple.Mockup("SkyServer — simple")
	if !strings.Contains(mock, "+-") || !strings.Contains(mock, "coverage") {
		t.Fatalf("mockup:\n%s", mock)
	}
}

func TestSynthesizeRespectsBudgetProperty(t *testing.T) {
	log := workload.SDSSLog(3000, 29)
	g, err := BuildGraphFromSessions(sessionsOf(log), SDSSRules())
	if err != nil {
		t.Fatal(err)
	}
	for _, maxVis := range []float64{1, 3, 5, 8, 12, 30} {
		ifc := Synthesize(g, SynthesisParams{MaxVis: maxVis})
		if ifc.TotalVis >= maxVis {
			t.Fatalf("maxVis %v violated: total %v", maxVis, ifc.TotalVis)
		}
	}
}

func TestNodeEqualAndString(t *testing.T) {
	a := tree(t, "SELECT a FROM t")
	b := tree(t, "SELECT a FROM t")
	c := tree(t, "SELECT b FROM t")
	if !a.Equal(b) {
		t.Fatal("identical queries should have equal trees")
	}
	if a.Equal(c) {
		t.Fatal("different queries should differ")
	}
	if a.String() == "" {
		t.Fatal("string rendering empty")
	}
}
