package precision

import (
	"fmt"
	"strings"
)

// Rule is one transformation-matching statement of the paper's SQL-like
// rule language:
//
//	FROM Select//Where AS a
//	WHERE NUMERIC_DIFF(a)
//	MATCH RangeSlider;
//
// The FROM clause is an XPath-like node path binding a variable to
// corresponding nodes of the old and new ASTs; WHERE tests the pair
// (a@old vs a@new); MATCH names the interaction the tweak maps to.
type Rule struct {
	Path        Path
	Var         string
	Cond        RuleCond
	Interaction string
}

// Path is a parsed node path: steps separated by '/' (child) or '//'
// (descendant).
type Path struct {
	Steps []PathStep
}

// PathStep is one path component.
type PathStep struct {
	Type       string
	Descendant bool // reached via // (any depth) instead of / (direct child)
}

// RuleCond is a predicate over the (old, new) binding of a rule variable.
type RuleCond interface {
	// Holds evaluates the condition for one binding; old or new may be nil
	// when the subtree was added or removed.
	Holds(old, new *Node) bool
	String() string
}

// ParseRules parses a rule program: one or more FROM/WHERE/MATCH statements
// separated by semicolons.
func ParseRules(src string) ([]Rule, error) {
	var out []Rule
	for _, stmt := range strings.Split(src, ";") {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			continue
		}
		r, err := parseRule(stmt)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no rules in program")
	}
	return out, nil
}

func parseRule(stmt string) (Rule, error) {
	fields := strings.Fields(stmt)
	// FROM <path> AS <var> WHERE <cond...> MATCH <name>
	if len(fields) < 7 || !strings.EqualFold(fields[0], "FROM") {
		return Rule{}, fmt.Errorf("rule must be FROM <path> AS <var> WHERE <cond> MATCH <name>: %q", stmt)
	}
	if !strings.EqualFold(fields[2], "AS") {
		return Rule{}, fmt.Errorf("expected AS after path in %q", stmt)
	}
	path, err := parsePath(fields[1])
	if err != nil {
		return Rule{}, err
	}
	varName := fields[3]
	if !strings.EqualFold(fields[4], "WHERE") {
		return Rule{}, fmt.Errorf("expected WHERE in %q", stmt)
	}
	matchIdx := -1
	for i := 5; i < len(fields); i++ {
		if strings.EqualFold(fields[i], "MATCH") {
			matchIdx = i
			break
		}
	}
	if matchIdx < 0 || matchIdx == len(fields)-1 {
		return Rule{}, fmt.Errorf("expected MATCH <name> in %q", stmt)
	}
	cond, err := parseCond(strings.Join(fields[5:matchIdx], " "), varName)
	if err != nil {
		return Rule{}, err
	}
	return Rule{Path: path, Var: varName, Cond: cond, Interaction: fields[matchIdx+1]}, nil
}

func parsePath(s string) (Path, error) {
	var p Path
	rest := s
	descendant := false
	for rest != "" {
		switch {
		case strings.HasPrefix(rest, "//"):
			descendant = true
			rest = rest[2:]
		case strings.HasPrefix(rest, "/"):
			descendant = false
			rest = rest[1:]
		}
		end := strings.IndexAny(rest, "/")
		var step string
		if end < 0 {
			step, rest = rest, ""
		} else {
			step, rest = rest[:end], rest[end:]
		}
		if step == "" {
			return Path{}, fmt.Errorf("empty path step in %q", s)
		}
		p.Steps = append(p.Steps, PathStep{Type: step, Descendant: descendant})
		descendant = false
	}
	if len(p.Steps) == 0 {
		return Path{}, fmt.Errorf("empty path %q", s)
	}
	return p, nil
}

// parseCond understands the paper's SUBSET form plus the predicates needed
// for the SDSS rule set:
//
//	a@old SUBSET a@new    — old's children are a subset of new's
//	a@old = a@new         — subtrees equal (useful with NOT)
//	a@old != a@new        — subtrees differ
//	NUMERIC_DIFF(a)       — both are numeric leaves with different values
//	VALUE_CHANGED(a)      — same node type, different label
//	ADDED(a) / REMOVED(a) — subtree exists on only one side
func parseCond(s, varName string) (RuleCond, error) {
	s = strings.TrimSpace(s)
	upper := strings.ToUpper(s)
	oldRef := varName + "@old"
	newRef := varName + "@new"
	switch {
	case strings.HasPrefix(upper, "NUMERIC_DIFF("):
		return numericDiff{}, checkVarArg(s, varName)
	case strings.HasPrefix(upper, "VALUE_CHANGED("):
		return valueChanged{}, checkVarArg(s, varName)
	case strings.HasPrefix(upper, "ADDED("):
		return added{}, checkVarArg(s, varName)
	case strings.HasPrefix(upper, "REMOVED("):
		return removed{}, checkVarArg(s, varName)
	}
	fields := strings.Fields(s)
	if len(fields) == 3 {
		forward := fields[0] == oldRef && fields[2] == newRef
		reverse := fields[0] == newRef && fields[2] == oldRef
		if forward || reverse {
			switch strings.ToUpper(fields[1]) {
			case "SUBSET":
				if reverse {
					return flip{subset{}}, nil
				}
				return subset{}, nil
			case "=", "==":
				return equalCond{}, nil
			case "!=", "<>":
				return notEqual{}, nil
			}
		}
	}
	return nil, fmt.Errorf("unsupported rule condition %q", s)
}

func checkVarArg(s, varName string) error {
	open := strings.Index(s, "(")
	close := strings.LastIndex(s, ")")
	if open < 0 || close < open {
		return fmt.Errorf("malformed predicate %q", s)
	}
	arg := strings.TrimSpace(s[open+1 : close])
	if arg != varName {
		return fmt.Errorf("predicate argument %q does not match rule variable %q", arg, varName)
	}
	return nil
}

// flip swaps the old/new arguments of a condition, implementing the
// reversed form "a@new SUBSET a@old".
type flip struct {
	inner RuleCond
}

func (f flip) Holds(old, new *Node) bool { return f.inner.Holds(new, old) }
func (f flip) String() string            { return "flipped " + f.inner.String() }

type subset struct{}

// Holds: every child of old appears (by rendered form) among new's children.
func (subset) Holds(old, new *Node) bool {
	if old == nil || new == nil {
		return false
	}
	have := map[string]int{}
	for _, c := range new.Children {
		have[c.String()]++
	}
	for _, c := range old.Children {
		if have[c.String()] == 0 {
			return false
		}
		have[c.String()]--
	}
	return true
}
func (subset) String() string { return "SUBSET" }

type equalCond struct{}

func (equalCond) Holds(old, new *Node) bool { return old.Equal(new) }
func (equalCond) String() string            { return "=" }

type notEqual struct{}

func (notEqual) Holds(old, new *Node) bool { return !old.Equal(new) }
func (notEqual) String() string            { return "!=" }

type numericDiff struct{}

func (numericDiff) Holds(old, new *Node) bool {
	if old == nil || new == nil {
		return false
	}
	a, aok := old.NumericLabel()
	b, bok := new.NumericLabel()
	return aok && bok && a != b
}
func (numericDiff) String() string { return "NUMERIC_DIFF" }

type valueChanged struct{}

func (valueChanged) Holds(old, new *Node) bool {
	return old != nil && new != nil && old.Type == new.Type && old.Label != new.Label
}
func (valueChanged) String() string { return "VALUE_CHANGED" }

type added struct{}

func (added) Holds(old, new *Node) bool { return old == nil && new != nil }
func (added) String() string            { return "ADDED" }

type removed struct{}

func (removed) Holds(old, new *Node) bool { return old != nil && new == nil }
func (removed) String() string            { return "REMOVED" }

// Match finds path bindings in the old/new trees (positionally paired) and
// reports whether the rule's condition holds for any binding that covers
// the given diff.
//
// MatchPair evaluates a rule against a query pair: the rule matches when
// every subtree difference between the two trees lies under a path binding
// whose condition holds — i.e. the whole tweak is explained by the rule.
func (r Rule) MatchPair(old, new *Node) bool {
	diffs := DiffTrees(old, new)
	if len(diffs) == 0 {
		return false // identical queries are not a transformation
	}
	bindings := r.Path.bindPairs(old, new)
	if len(bindings) == 0 {
		return false
	}
	for _, d := range diffs {
		covered := false
		for _, b := range bindings {
			if !b.covers(d.Path) {
				continue
			}
			if r.Cond.Holds(b.old, b.new) {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// binding is one positional pairing of path-matched nodes with the node
// path prefix they cover.
type binding struct {
	old, new *Node
	path     string
}

func (b binding) covers(diffPath string) bool {
	return diffPath == b.path || strings.HasPrefix(diffPath, b.path+"/")
}

// bindPairs walks both trees in lockstep collecting nodes matching the path
// at identical positions. Position mismatches (different child counts)
// produce bindings with a nil side so ADDED/REMOVED conditions can hold.
func (p Path) bindPairs(old, new *Node) []binding {
	var out []binding
	var walk func(a, b *Node, path string, step int, descend bool)
	walk = func(a, b *Node, path string, step int, descend bool) {
		if step >= len(p.Steps) {
			return
		}
		st := p.Steps[step]
		typeOf := func(n *Node) string {
			if n == nil {
				return ""
			}
			return n.Type
		}
		t := typeOf(a)
		if t == "" {
			t = typeOf(b)
		}
		if t == st.Type {
			if step == len(p.Steps)-1 {
				out = append(out, binding{old: a, new: b, path: path})
			} else {
				walkChildren(a, b, path, func(ca, cb *Node, cpath string) {
					walk(ca, cb, cpath, step+1, p.Steps[step+1].Descendant)
				})
			}
		}
		if descend || (step == 0 && st.Descendant) || step == 0 {
			// keep searching deeper for the first step (rooted anywhere)
			// and for descendant steps
			walkChildren(a, b, path, func(ca, cb *Node, cpath string) {
				walk(ca, cb, cpath, step, descend)
			})
		}
	}
	walk(old, new, old.Type, 0, true)
	return out
}

// walkChildren pairs children positionally, padding the shorter side with
// nils.
func walkChildren(a, b *Node, path string, fn func(ca, cb *Node, cpath string)) {
	var ac, bc []*Node
	if a != nil {
		ac = a.Children
	}
	if b != nil {
		bc = b.Children
	}
	n := len(ac)
	if len(bc) > n {
		n = len(bc)
	}
	for i := 0; i < n; i++ {
		var ca, cb *Node
		if i < len(ac) {
			ca = ac[i]
		}
		if i < len(bc) {
			cb = bc[i]
		}
		t := ""
		if ca != nil {
			t = ca.Type
		} else if cb != nil {
			t = cb.Type
		}
		fn(ca, cb, path+"/"+t)
	}
}
