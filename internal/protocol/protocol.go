// Package protocol defines the line-JSON wire format of the session server
// (cmd/dvms-serve): one JSON request per line in, one JSON response per
// line out. It lives apart from the server so clients, the binary, and the
// tests share one set of wire types.
package protocol

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/server"
)

// Request is one client line.
type Request struct {
	// Op selects the action: ping, event, relation, query, undo, stats,
	// trace, resume, detach.
	Op string `json:"op"`

	// Token names a session for resume: the connection swaps its
	// auto-attached session for the one the token identifies (live,
	// evicted, or — on a durable server — from before a restart).
	Token string `json:"token,omitempty"`

	// event fields: Type is an event type (MOUSE_DOWN, MOUSE_MOVE,
	// MOUSE_UP, HOVER, KEY_PRESS), T the timestamp, X/Y the position, Key
	// the pressed key for KEY_PRESS.
	Type string `json:"type,omitempty"`
	T    int64  `json:"t,omitempty"`
	X    int64  `json:"x,omitempty"`
	Y    int64  `json:"y,omitempty"`
	Key  string `json:"key,omitempty"`

	// relation field.
	Name string `json:"name,omitempty"`
	// query field.
	Q string `json:"q,omitempty"`
	// trace field: restrict the response to the slow-event log (events that
	// exceeded the latency budget) instead of the full recent-trace ring.
	Slow bool `json:"slow,omitempty"`
}

// Response is one server line. OK=false carries Error; the other fields
// depend on the request op.
type Response struct {
	OK      bool   `json:"ok"`
	Error   string `json:"error,omitempty"`
	Session int    `json:"session,omitempty"`
	// Token is the session's stable resume identity (ping and resume
	// responses): present it in a later resume request to pick the session
	// back up after a disconnect, eviction, or server restart.
	Token string `json:"token,omitempty"`

	// event echo: how the event advanced the interaction transaction.
	Interaction string `json:"interaction,omitempty"`
	Began       bool   `json:"began,omitempty"`
	Committed   bool   `json:"committed,omitempty"`
	Aborted     bool   `json:"aborted,omitempty"`
	RowsEmitted int    `json:"rowsEmitted,omitempty"`
	Version     int    `json:"version,omitempty"`

	// relation/query payload.
	Columns []string `json:"columns,omitempty"`
	Rows    [][]any  `json:"rows,omitempty"`

	// stats payload. Obs is the requesting session's latency/metrics
	// snapshot; ServerObs the server-wide merge (base engine + every
	// session + server gauges). Both are empty-histogram under DisableObs.
	Stats     *core.Stats   `json:"stats,omitempty"`
	Server    *server.Stats `json:"server,omitempty"`
	Obs       *obs.Snapshot `json:"obs,omitempty"`
	ServerObs *obs.Snapshot `json:"serverObs,omitempty"`

	// trace payload: the session's retained event traces, oldest first.
	Traces []obs.Trace `json:"traces,omitempty"`
}

// ParseRequest decodes one request line.
func ParseRequest(line []byte) (Request, error) {
	var req Request
	if err := json.Unmarshal(line, &req); err != nil {
		return req, fmt.Errorf("bad request: %v", err)
	}
	if req.Op == "" {
		return req, fmt.Errorf("bad request: missing op")
	}
	return req, nil
}

// WriteResponse encodes one response line (newline-terminated).
func WriteResponse(w io.Writer, resp Response) error {
	b, err := json.Marshal(resp)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// EncodeRow converts a tuple to JSON-encodable values (nil, bool, int64,
// float64, string).
func EncodeRow(row relation.Tuple) []any {
	out := make([]any, len(row))
	for i, v := range row {
		switch v.Kind() {
		case relation.KindNull:
			out[i] = nil
		case relation.KindBool:
			b, _ := v.AsBool()
			out[i] = b
		case relation.KindInt:
			n, _ := v.AsInt()
			out[i] = n
		case relation.KindFloat:
			f, _ := v.AsFloat()
			out[i] = f
		default:
			out[i] = v.AsString()
		}
	}
	return out
}
