package server

// Durable serving: the shared engine's delta log and every session's resume
// journal stream into one wal.Log. On restart the shared engine recovers by
// store replay (see core.RecoverEngineParsed) and the session journals are
// rebuilt from the log, so a client that reconnects with its token resumes
// the private state it left — across connection drops, idle eviction, and
// process crashes alike. Non-durable servers keep the same in-memory
// journals (log == nil), which is what makes evict-then-resume work without
// a data directory.

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/wal"
)

// NewDurable builds a server whose shared engine and session journals
// persist in a delta log under opts. An empty log boots fresh with the sink
// attached before the shared program loads (the load is record one); a
// non-empty log recovers the previous process's shared state and session
// journals. The returned report describes any repair the open performed
// (torn tails, dropped segments); callers surface it and keep serving.
func NewDurable(cfg Config, program string, opts wal.Options) (*Server, wal.Report, error) {
	split, err := core.SplitProgram(program)
	if err != nil {
		return nil, wal.Report{}, err
	}
	l, rec, err := wal.Open(opts)
	if err != nil {
		return nil, wal.Report{}, err
	}
	var base *core.Engine
	if rec.Checkpoint == nil && len(rec.Records) == 0 {
		base = core.New(cfg.Engine)
		base.AttachWAL(l)
		if err := base.ExecParsed(split.Shared); err != nil {
			l.Close()
			return nil, rec.Report, fmt.Errorf("server: load shared program: %w", err)
		}
		base.Commit()
	} else {
		base, err = core.RecoverEngineParsed(cfg.Engine, split.Shared, rec)
		if err != nil {
			l.Close()
			return nil, rec.Report, fmt.Errorf("server: recover shared engine: %w", err)
		}
		base.AttachWAL(l)
	}
	s := newServer(cfg, split, base)
	s.log = l
	s.baseCP = base.CheckpointProvider()
	// Rebuild the session journals: the checkpoint (if replay started at
	// one) restates every journal live at rotation; later records extend
	// them. Constructor is single-threaded, so no jmu needed yet.
	if cp := rec.Checkpoint; cp != nil {
		for i := range cp.Sessions {
			s.applyJournalLocked(cp.Sessions[i])
		}
	}
	for _, r := range rec.Records {
		if sr, ok := r.(*wal.SessionRecord); ok {
			s.applyJournalLocked(*sr)
		}
	}
	// Replace the engine's checkpoint provider with the wrapper that also
	// restates session journals at rotation.
	l.SetCheckpointFunc(s.walCheckpoint)
	return s, rec.Report, nil
}

// Log exposes the server's delta log (nil for a non-durable server) so hosts
// can surface durability stats and sticky append errors.
func (s *Server) Log() *wal.Log { return s.log }

// journalAppend records one session op in the in-memory journal and, on a
// durable server, in the log. Holding jmu across both makes the pair atomic
// with respect to rotation checkpoints: a checkpoint taken inside the
// Append sees the map state that matches the log position, so a recovery
// starting at it neither duplicates nor loses this record. Callers hold at
// least the server read lock.
func (s *Server) journalAppend(rec wal.SessionRecord) {
	if s.sealed.Load() {
		return
	}
	s.jmu.Lock()
	defer s.jmu.Unlock()
	s.applyJournalLocked(rec)
	if s.log != nil {
		// Sticky failures inside the log degrade the server to in-memory
		// journals; the host reads log.Err() to learn durability was lost.
		_ = s.log.Append(&rec)
	}
}

// applyJournalLocked folds one record into the journal map, maintaining the
// growth accounting (total entries/bytes plus per-token bytes so a forget
// can subtract its share). Caller holds jmu or has exclusive access
// (constructor).
func (s *Server) applyJournalLocked(rec wal.SessionRecord) {
	if rec.Op == wal.SessForget {
		s.jEntries -= int64(len(s.journal[rec.Token]))
		s.jBytes -= s.jBytesBy[rec.Token]
		delete(s.journal, rec.Token)
		delete(s.jBytesBy, rec.Token)
		delete(s.jWarned, rec.Token)
		return
	}
	s.journal[rec.Token] = append(s.journal[rec.Token], rec)
	sz := int64(len(wal.EncodeRecord(&rec)))
	s.jEntries++
	s.jBytes += sz
	s.jBytesBy[rec.Token] += sz
	if warnAt := s.journalWarnAt(); warnAt > 0 && !s.jWarned[rec.Token] && len(s.journal[rec.Token]) >= warnAt {
		// Once per token: journals grow without bound until the client
		// detaches, and resume replays every retained record.
		s.jWarned[rec.Token] = true
		s.lg.Warn("session journal past growth threshold; resume replay cost grows with it",
			"token", rec.Token, "entries", len(s.journal[rec.Token]), "bytes", s.jBytesBy[rec.Token])
	}
}

// journalWarnAt resolves the configured warning threshold (0 = never warn).
func (s *Server) journalWarnAt() int {
	switch {
	case s.cfg.JournalWarnEntries > 0:
		return s.cfg.JournalWarnEntries
	case s.cfg.JournalWarnEntries < 0:
		return 0
	default:
		return defaultJournalWarn
	}
}

// walCheckpoint wraps the base store's rotation snapshot with the session
// journals, so a recovery that starts at the checkpoint still knows every
// resumable session. Invoked from inside Append; it must NOT take jmu — a
// session's journalAppend holds jmu across its Append, so rotation fired
// from that path would self-deadlock. Reading the map without jmu is safe:
// if the rotating append came from the base sink, the caller holds the
// server write lock and no session can be mutating the journal (mutators
// hold the read lock); if it came from a session's journalAppend, that
// session already holds jmu, excluding every other mutator.
func (s *Server) walCheckpoint() *wal.CheckpointRecord {
	cp := s.baseCP()
	if cp == nil {
		return nil
	}
	tokens := make([]string, 0, len(s.journal))
	for t := range s.journal {
		tokens = append(tokens, t)
	}
	sort.Strings(tokens)
	for _, t := range tokens {
		cp.Sessions = append(cp.Sessions, s.journal[t]...)
	}
	return cp
}

// Resume returns the live session for token, or rebuilds one from its
// journal: a fresh private engine replays exactly the ops the client
// successfully applied (without re-journaling them), so the client continues
// from the state it last saw — selection, history, framebuffer. Unknown
// tokens (never attached, or explicitly detached) fail.
func (s *Server) Resume(token string) (*Session, error) {
	s.mu.Lock()
	if sess, ok := s.byToken[token]; ok {
		sess.touch()
		s.mu.Unlock()
		return sess, nil
	}
	s.jmu.Lock()
	recs := append([]wal.SessionRecord(nil), s.journal[token]...)
	s.jmu.Unlock()
	s.mu.Unlock()
	if len(recs) == 0 {
		return nil, fmt.Errorf("server: unknown session token %q", token)
	}
	if err := s.ensureCapacity(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	sess, err := s.buildSession()
	s.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.byToken[token]; ok { // lost a race with another Resume
		sess.eng.Close()
		existing.touch()
		return existing, nil
	}
	if s.cfg.MaxSessions > 0 && len(s.sessions) >= s.cfg.MaxSessions {
		sess.eng.Close()
		return nil, fmt.Errorf("server: session capacity %d reached", s.cfg.MaxSessions)
	}
	sess.token = token
	for _, r := range recs {
		switch r.Op {
		case wal.SessEvent:
			te, err := sess.eng.FeedEvent(r.Event)
			if err != nil {
				sess.eng.Close()
				return nil, fmt.Errorf("server: resume %s: replay event: %w", token, err)
			}
			if err := sess.noteTxn(te); err != nil {
				sess.eng.Close()
				return nil, fmt.Errorf("server: resume %s: %w", token, err)
			}
		case wal.SessUndo:
			if err := sess.undoLocked(); err != nil {
				sess.eng.Close()
				return nil, fmt.Errorf("server: resume %s: replay undo: %w", token, err)
			}
		}
	}
	s.nextID++
	sess.id = s.nextID
	s.sessions[sess.id] = sess
	s.byToken[token] = sess
	s.resumed++
	s.lg.Info("session resumed", "session", sess.id, "token", token,
		"replayed", len(recs), "sessions", len(s.sessions))
	return sess, nil
}

// Shutdown seals the log for a graceful exit: logging stops, the current
// segment syncs and closes, and a later NewDurable over the same directory
// recovers with a clean report. Sessions stay attached (their journals are
// already durable); further session ops simply stop journaling. Idempotent;
// a no-op for non-durable servers.
func (s *Server) Shutdown() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil || s.sealed.Swap(true) {
		return nil
	}
	s.base.DetachWAL()
	return s.log.Close()
}

// newToken mints a resume token unused by any live session or retained
// journal. Caller holds the server write lock.
func (s *Server) newToken() string {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	for i := 0; ; i++ {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			b[0], b[1] = byte(i), byte(i>>8) // degenerate, still uniqueness-checked
		}
		t := hex.EncodeToString(b[:])
		if _, taken := s.journal[t]; taken {
			continue
		}
		if _, live := s.byToken[t]; !live {
			return t
		}
	}
}
