package server_test

// Durable-server tests: session resume after eviction (in-memory journals),
// full restart recovery over a fault-injection filesystem, checkpoint
// restatement of journals across segment rotation, and mid-interaction crash
// resume.

import (
	"testing"

	"repro/internal/events"
	"repro/internal/experiments"
	"repro/internal/server"
	"repro/internal/wal"
	"repro/internal/wal/faultfs"
)

// sessionFrame is the observable private state of one session: the rows of
// every private view plus the rendered pixels.
type sessionFrame struct {
	rels   map[string][]string
	pixels []string
}

var ivmPrivateViews = []string{"c", "selected_months", "filt_region", "ranked_sel", "bars"}

func captureSessionFrame(t *testing.T, sess *server.Session) sessionFrame {
	t.Helper()
	f := sessionFrame{rels: make(map[string][]string, len(ivmPrivateViews))}
	for _, name := range ivmPrivateViews {
		rel, err := sess.Relation(name)
		if err != nil {
			t.Fatalf("capture %s: %v", name, err)
		}
		f.rels[name] = sortedRows(t, rel)
	}
	px, err := sess.Pixels(true)
	if err != nil {
		t.Fatalf("capture pixels: %v", err)
	}
	f.pixels = sortedRows(t, px)
	return f
}

func assertSameFrame(t *testing.T, label string, got, want sessionFrame) {
	t.Helper()
	for _, name := range ivmPrivateViews {
		g, w := got.rels[name], want.rels[name]
		if len(g) != len(w) {
			t.Fatalf("%s: %s has %d rows, want %d\n got: %v\nwant: %v", label, name, len(g), len(w), g, w)
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("%s: %s row %d differs\n got %s\nwant %s", label, name, i, g[i], w[i])
			}
		}
	}
	if len(got.pixels) != len(want.pixels) {
		t.Fatalf("%s: %d pixels, want %d", label, len(got.pixels), len(want.pixels))
	}
	for i := range got.pixels {
		if got.pixels[i] != want.pixels[i] {
			t.Fatalf("%s: pixel row %d differs\n got %s\nwant %s", label, i, got.pixels[i], want.pixels[i])
		}
	}
}

// TestEvictThenResumeRestoresSession is the lifecycle fix: eviction discards
// the session object but keeps its journal, so a reconnecting client resumes
// the exact private state it left. Explicit detach forgets the journal.
func TestEvictThenResumeRestoresSession(t *testing.T) {
	srv := newIVMServer(t, 500, 7, server.Config{})
	sess, err := srv.Attach()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.FeedStream(experiments.IVMBrushStream(3)); err != nil {
		t.Fatal(err)
	}
	token := sess.Token()
	if token == "" {
		t.Fatal("attached session has no token")
	}
	want := captureSessionFrame(t, sess)

	// Resume of a live session returns it (a reconnect without eviction).
	if got, err := srv.Resume(token); err != nil || got != sess {
		t.Fatalf("resume live session: got %v, %v", got, err)
	}

	if n := srv.EvictIdle(0); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	if _, err := sess.Relation("bars"); err == nil {
		t.Fatal("evicted session handle should be dead")
	}

	got, err := srv.Resume(token)
	if err != nil {
		t.Fatalf("resume after eviction: %v", err)
	}
	if got.Token() != token {
		t.Fatalf("resumed token %q, want %q", got.Token(), token)
	}
	assertSameFrame(t, "resume after eviction", captureSessionFrame(t, got), want)

	// The resumed session keeps full function: undo rewinds its history.
	if err := got.Undo(); err != nil {
		t.Fatalf("undo on resumed session: %v", err)
	}

	st := srv.Stats()
	if st.Resumed != 1 || st.Evicted != 1 || st.Journals != 1 {
		t.Fatalf("stats %+v, want Resumed=1 Evicted=1 Journals=1", st)
	}

	if _, err := srv.Resume("no-such-token"); err == nil {
		t.Fatal("unknown token should fail")
	}
	got.Detach()
	if _, err := srv.Resume(token); err == nil {
		t.Fatal("explicit detach should forget the journal")
	}
}

// TestDurableRestartResumesSessions runs a full lifetime over an in-memory
// fault filesystem: load, two sessions with divergent histories (one with an
// undo), graceful shutdown, then a second server over the same directory
// resumes both sessions to the exact states their clients last saw.
func TestDurableRestartResumesSessions(t *testing.T) {
	fs := faultfs.NewMem()
	program := experiments.BuildIVMCrossfilterProgram()
	opts := wal.Options{Dir: "data", FS: fs, Policy: wal.SyncNever}

	srv, rep, err := server.NewDurable(server.Config{}, program, opts)
	if err != nil {
		t.Fatalf("fresh durable server: %v", err)
	}
	if rep.Records != 0 {
		t.Fatalf("fresh boot recovered %d records", rep.Records)
	}
	if err := srv.InsertRows("Sales", experiments.IVMSalesTuples(400, 7)); err != nil {
		t.Fatal(err)
	}
	s1, err := srv.Attach()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.FeedStream(experiments.IVMBrushStream(2)); err != nil {
		t.Fatal(err)
	}
	s2, err := srv.Attach()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.FeedStream(experiments.IVMBrushStream(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.FeedStream(experiments.IVMBrushStream(1)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Undo(); err != nil { // back to the 4-step selection
		t.Fatal(err)
	}
	f1, f2 := captureSessionFrame(t, s1), captureSessionFrame(t, s2)
	tok1, tok2 := s1.Token(), s2.Token()

	if err := srv.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := srv.Shutdown(); err != nil { // idempotent
		t.Fatalf("second shutdown: %v", err)
	}

	srv2, rep2, err := server.NewDurable(server.Config{}, program, opts)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if !rep2.Clean() {
		t.Fatalf("graceful shutdown left a dirty log: %+v", rep2)
	}
	r1, err := srv2.Resume(tok1)
	if err != nil {
		t.Fatalf("resume s1: %v", err)
	}
	assertSameFrame(t, "s1 after restart", captureSessionFrame(t, r1), f1)
	r2, err := srv2.Resume(tok2)
	if err != nil {
		t.Fatalf("resume s2: %v", err)
	}
	assertSameFrame(t, "s2 after restart", captureSessionFrame(t, r2), f2)
	if st := srv2.Stats(); st.Resumed != 2 || st.Journals != 2 {
		t.Fatalf("stats %+v, want Resumed=2 Journals=2", st)
	}
	// Shared data recovered too: ingest keeps working on the new server.
	if err := srv2.InsertRows("Sales", experiments.IVMSalesTuples(10, 9)); err != nil {
		t.Fatalf("ingest after restart: %v", err)
	}
}

// TestDurableCrashMidDragResumes crashes (no shutdown) with one session in
// the middle of a drag, after enough ingest to rotate segments. Recovery
// must start from a rotation checkpoint whose restated journals still know
// the session; the resumed session is mid-interaction and finishing the drag
// yields exactly what the never-crashed session sees.
func TestDurableCrashMidDragResumes(t *testing.T) {
	fs := faultfs.NewMem()
	program := experiments.BuildIVMCrossfilterProgram()
	opts := wal.Options{Dir: "data", FS: fs, Policy: wal.SyncNever, SegmentBytes: 8 << 10}

	srv, _, err := server.NewDurable(server.Config{}, program, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.InsertRows("Sales", experiments.IVMSalesTuples(100, 7)); err != nil {
		t.Fatal(err)
	}
	s1, err := srv.Attach()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.FeedStream(experiments.IVMBrushStream(2)); err != nil {
		t.Fatal(err)
	}
	tok := s1.Token()
	// Ingest batches until the log rotates at least twice — the session's
	// journal records now live before the newest checkpoint and survive only
	// because checkpoints restate journals.
	for i := int64(0); srv.Log().Stats().SegmentsWritten < 3; i++ {
		if err := srv.InsertRows("Sales", experiments.IVMSalesTuples(40, 100+i)); err != nil {
			t.Fatal(err)
		}
		if i > 200 {
			t.Fatal("log never rotated; lower SegmentBytes")
		}
	}
	// Leave a drag in flight: down + moves, no mouse-up.
	open, steady, close := experiments.IVMBrushPhases(3)
	if _, err := s1.FeedStream(append(append(events.Stream{}, open...), steady...)); err != nil {
		t.Fatal(err)
	}

	cfs := fs.Clone() // crash: the original process just stops

	srv2, rep, err := server.NewDurable(server.Config{}, program,
		wal.Options{Dir: "data", FS: cfs, Policy: wal.SyncNever, SegmentBytes: 8 << 10})
	if err != nil {
		t.Fatalf("recover after crash: %v", err)
	}
	if rep.CheckpointCommits == 0 {
		t.Fatalf("recovery did not start at a rotation checkpoint: %+v", rep)
	}
	r1, err := srv2.Resume(tok)
	if err != nil {
		t.Fatalf("resume after crash: %v", err)
	}
	// Both sides finish the same drag; the recovered session must land on
	// the same state as the one that never crashed.
	if _, err := s1.FeedStream(close); err != nil {
		t.Fatal(err)
	}
	if _, err := r1.FeedStream(close); err != nil {
		t.Fatalf("finish drag on resumed session: %v", err)
	}
	assertSameFrame(t, "crash mid-drag", captureSessionFrame(t, r1), captureSessionFrame(t, s1))
}
