package server_test

// Server behavior tests: program splitting, shared-state instantiation
// counts, single-writer fan-out, lifecycle (detach/eviction), and the
// session read paths. The randomized isolation parity wall lives in
// isolation_test.go.

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/experiments"
	"repro/internal/relation"
	"repro/internal/server"
)

// newIVMServer builds a server over the join-based crossfilter with n sales
// rows loaded through the single-writer path.
func newIVMServer(t *testing.T, n int, seed int64, cfg server.Config) *server.Server {
	t.Helper()
	srv, err := server.New(cfg, experiments.BuildIVMCrossfilterProgram())
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	if err := srv.InsertRows("Sales", experiments.IVMSalesTuples(n, seed)); err != nil {
		t.Fatalf("load sales: %v", err)
	}
	return srv
}

// newIVMOracle builds the equivalent single-tenant engine.
func newIVMOracle(t *testing.T, n int, seed int64) *core.Engine {
	t.Helper()
	e, err := experiments.NewIVMEngine(n, seed, core.Config{})
	if err != nil {
		t.Fatalf("oracle engine: %v", err)
	}
	return e
}

func sortedRows(t *testing.T, rel *relation.Relation) []string {
	t.Helper()
	out := make([]string, len(rel.Rows))
	for i, r := range rel.Rows {
		out[i] = r.Key()
	}
	sort.Strings(out)
	return out
}

func assertSameRelation(t *testing.T, label string, got, want *relation.Relation) {
	t.Helper()
	g, w := sortedRows(t, got), sortedRows(t, want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d rows, oracle has %d\n got: %v\nwant: %v", label, len(g), len(w), g, w)
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: row %d differs\n got %s\nwant %s", label, i, g[i], w[i])
		}
	}
}

// TestSplitClassification pins the shared/private partition of the
// crossfilter program: base data and selection-independent charts are
// shared, everything the brush touches is private.
func TestSplitClassification(t *testing.T) {
	split, err := core.SplitProgram(experiments.BuildIVMCrossfilterProgram())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"sales", "monthaxis", "totals_region", "ranked_all"} {
		if !split.SharedNames[name] {
			t.Errorf("%s should be shared", name)
		}
	}
	for _, name := range []string{"c", "selected_months", "filt_region", "ranked_sel", "bars", "p"} {
		if !split.PrivateNames[name] {
			t.Errorf("%s should be private", name)
		}
	}
}

// TestSplitRejectsPrivateWrites pins the error for shared writes reading
// per-session state.
func TestSplitRejectsPrivateWrites(t *testing.T) {
	_, err := core.SplitProgram(`
CREATE TABLE T (x int);
C = EVENT MOUSE_DOWN AS D RETURN (D.x);
INSERT INTO T SELECT x FROM C;
`)
	if err == nil || !strings.Contains(err.Error(), "reads private state") {
		t.Fatalf("want private-read error, got %v", err)
	}
}

// TestSharedStateInstantiatedOnce is the acceptance-criterion counter
// check: the data-sized Sales build side is built once and reused by every
// later session and every view that joins through the same subtree.
func TestSharedStateInstantiatedOnce(t *testing.T) {
	const sessions = 4
	srv := newIVMServer(t, 2000, 7, server.Config{})
	var all []*server.Session
	for i := 0; i < sessions; i++ {
		sess, err := srv.Attach()
		if err != nil {
			t.Fatalf("attach %d: %v", i, err)
		}
		all = append(all, sess)
		// Prime this session's pipelines with one full brush.
		if _, err := sess.FeedStream(experiments.IVMBrushStream(2)); err != nil {
			t.Fatalf("brush %d: %v", i, err)
		}
	}
	st := srv.Stats()
	if st.SharedSides == 0 {
		t.Fatalf("no shared sides registered; stats %+v", st)
	}
	if int(st.Share.Builds) != st.SharedSides {
		t.Errorf("shared states built %d times for %d distinct sides; want exactly once each",
			st.Share.Builds, st.SharedSides)
	}
	// The 4 FILT_* views of every session all join Sales through the same
	// subtree and key: one build, everything else (including re-preparations
	// during program load) reuses it.
	if wantReuses := int64(sessions*len(experiments.IVMDims) - st.SharedSides); st.Share.Reuses < wantReuses {
		t.Errorf("reuses = %d, want >= %d (sessions=%d, joining views=%d, sides=%d)",
			st.Share.Reuses, wantReuses, sessions, len(experiments.IVMDims), st.SharedSides)
	}
	if st.SharedRows < 2000 {
		t.Errorf("shared rows %d, want >= base size", st.SharedRows)
	}
	for _, sess := range all {
		sess.Detach()
	}
	if got := srv.Stats(); got.SharedSides != 0 || got.Share.Evictions == 0 {
		t.Errorf("after all detaches: sides=%d evictions=%d, want 0 and >0",
			got.SharedSides, got.Share.Evictions)
	}
}

// TestSessionBrushMatchesSingleTenant drives one session through a brush
// and compares every chart (and the pixels) against a dedicated engine.
func TestSessionBrushMatchesSingleTenant(t *testing.T) {
	srv := newIVMServer(t, 1500, 11, server.Config{})
	oracle := newIVMOracle(t, 1500, 11)
	sess, err := srv.Attach()
	if err != nil {
		t.Fatal(err)
	}
	stream := experiments.IVMBrushStream(5)
	for i, ev := range stream {
		if _, err := sess.Feed(ev); err != nil {
			t.Fatalf("session feed %d: %v", i, err)
		}
		if _, err := oracle.FeedEvent(ev); err != nil {
			t.Fatalf("oracle feed %d: %v", i, err)
		}
	}
	for _, name := range []string{"selected_months", "FILT_region", "FILT_month", "RANKED_sel", "RANKED_all", "BARS"} {
		got, err := sess.Relation(name)
		if err != nil {
			t.Fatalf("session %s: %v", name, err)
		}
		want, err := oracle.Relation(name)
		if err != nil {
			t.Fatalf("oracle %s: %v", name, err)
		}
		assertSameRelation(t, name, got, want)
	}
	si, oi := sess.Image(), oracle.Image()
	for p := range oi.Pix {
		if si.Pix[p] != oi.Pix[p] {
			t.Fatalf("pixel %d,%d diverges: session %+v, oracle %+v", p%oi.W, p/oi.W, si.Pix[p], oi.Pix[p])
		}
	}
	// The session must be running on the delta path, not falling back for
	// the join views (selected_months legitimately falls back per event).
	st, err := sess.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ViewDeltaApplies == 0 {
		t.Errorf("session never took the delta path: %+v", st)
	}
}

// TestWriterFanOut inserts base rows while sessions are attached and
// checks every session's charts track the new data, matching single-tenant
// engines that saw the same interleaving.
func TestWriterFanOut(t *testing.T) {
	const n, seed = 1200, 3
	srv := newIVMServer(t, n, seed, server.Config{})
	oracle := newIVMOracle(t, n, seed)

	s1, err := srv.Attach()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := srv.Attach()
	if err != nil {
		t.Fatal(err)
	}
	// s1 brushes months 1-3; s2 stays unbrushed; the oracle mirrors s1.
	brush := experiments.IVMBrushStream(2)
	if _, err := s1.FeedStream(brush); err != nil {
		t.Fatal(err)
	}
	if _, err := oracle.FeedStream(brush); err != nil {
		t.Fatal(err)
	}
	// Single writer ingests new rows; the deltas fan out to both sessions.
	extra := experiments.IVMSalesTuples(300, seed+100)
	if err := srv.InsertRows("Sales", extra); err != nil {
		t.Fatalf("writer insert: %v", err)
	}
	if err := oracle.InsertRows("Sales", extra); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"FILT_region", "FILT_month", "RANKED_sel", "RANKED_all", "BARS"} {
		got, err := s1.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		want, err := oracle.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		assertSameRelation(t, "s1 "+name, got, want)
	}
	// s2 (no brush: selection = all months) must see totals over n+300 rows.
	freshOracle := newIVMOracle(t, 0, seed)
	if err := freshOracle.InsertRows("Sales", experiments.IVMSalesTuples(n, seed)); err != nil {
		t.Fatal(err)
	}
	if err := freshOracle.InsertRows("Sales", extra); err != nil {
		t.Fatal(err)
	}
	got, err := s2.Relation("FILT_region")
	if err != nil {
		t.Fatal(err)
	}
	want, err := freshOracle.Relation("FILT_region")
	if err != nil {
		t.Fatal(err)
	}
	assertSameRelation(t, "s2 FILT_region", got, want)
}

// nestedJoinProgram joins an all-shared two-table subtree (Sales ⋈
// MonthAxis) against the private selection: the shared side of the outer
// join *contains* another join. The registry must share the outermost
// eligible subtree only — separate entries for the inner join would
// advance in arbitrary order and drop writer batches.
const nestedJoinProgram = `
CREATE TABLE Sales (orderId int, region string, segment string, year int, month int, weekday int, revenue int);
CREATE TABLE MonthAxis (month int, x int);
INSERT INTO MonthAxis VALUES
  (1, 40), (2, 60), (3, 80), (4, 100), (5, 120), (6, 140),
  (7, 160), (8, 180), (9, 200), (10, 220), (11, 240), (12, 260);
C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M*, MOUSE_UP AS U
    RETURN (D.t, D.x, D.y, 0 AS dx, 0 AS dy),
           (M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy);
selected_months =
  SELECT ma.month AS month FROM MonthAxis AS ma
  WHERE (SELECT count(*) FROM C) = 0
     OR (ma.x >= (SELECT min(x) FROM C) AND ma.x <= (SELECT max(x + dx) FROM C));
NESTED = SELECT s.region AS grp, sum(s.revenue) AS total, count(*) AS n
  FROM Sales AS s, MonthAxis AS ma, selected_months AS m
  WHERE s.month = ma.month AND ma.month = m.month
  GROUP BY s.region;
`

// TestNestedSharedSubtreeFanOut pins writer fan-out correctness when the
// shared join side is itself a join: brush, ingest, and compare against a
// dedicated engine after every phase.
func TestNestedSharedSubtreeFanOut(t *testing.T) {
	const n, seed = 900, 17
	srv, err := server.New(server.Config{}, nestedJoinProgram)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.InsertRows("Sales", experiments.IVMSalesTuples(n, seed)); err != nil {
		t.Fatal(err)
	}
	oracle := core.New(core.Config{})
	if err := oracle.LoadProgram(nestedJoinProgram); err != nil {
		t.Fatal(err)
	}
	if err := oracle.InsertRows("Sales", experiments.IVMSalesTuples(n, seed)); err != nil {
		t.Fatal(err)
	}
	s1, err := srv.Attach()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := srv.Attach()
	if err != nil {
		t.Fatal(err)
	}
	check := func(step string) {
		t.Helper()
		got, err := s1.Relation("NESTED")
		if err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		want, err := oracle.Relation("NESTED")
		if err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		assertSameRelation(t, step+" NESTED", got, want)
	}
	check("initial")
	brush := experiments.IVMBrushStream(3)
	if _, err := s1.FeedStream(brush); err != nil {
		t.Fatal(err)
	}
	if _, err := oracle.FeedStream(brush); err != nil {
		t.Fatal(err)
	}
	check("post-brush")
	// Writer batches must reach both the shared outer state and every
	// session, in every advance order the sides map iterates in.
	for b := 0; b < 5; b++ {
		rows := experiments.IVMSalesTuples(40, seed+int64(b+1))
		if err := srv.InsertRows("Sales", rows); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		if err := oracle.InsertRows("Sales", rows); err != nil {
			t.Fatal(err)
		}
		check(fmt.Sprintf("post-ingest %d", b))
	}
	// s2 (unbrushed: all months) tracks the full data too.
	got, err := s2.Relation("NESTED")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) == 0 {
		t.Fatal("s2 NESTED empty after ingestion")
	}
	st := srv.Stats()
	if st.Share.Builds != int64(st.SharedSides) {
		t.Errorf("nested sharing built %d states for %d sides", st.Share.Builds, st.SharedSides)
	}
}

// TestExecSharedFansOutAsUnknownChange covers the DDL/statement write path:
// sessions see the change through full recomputation (no exact deltas).
func TestExecSharedFansOutAsUnknownChange(t *testing.T) {
	const n, seed = 400, 21
	srv := newIVMServer(t, n, seed, server.Config{})
	sess, err := srv.Attach()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.FeedStream(experiments.IVMBrushStream(3)); err != nil {
		t.Fatal(err)
	}
	if err := srv.ExecShared("INSERT INTO Sales VALUES (9999999, 'north', 'consumer', 2024, 1, 1, 123456)"); err != nil {
		t.Fatal(err)
	}
	oracle := newIVMOracle(t, n, seed)
	if _, err := oracle.FeedStream(experiments.IVMBrushStream(3)); err != nil {
		t.Fatal(err)
	}
	if err := oracle.Exec("INSERT INTO Sales VALUES (9999999, 'north', 'consumer', 2024, 1, 1, 123456)"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"FILT_region", "RANKED_all", "BARS"} {
		got, err := sess.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		want, err := oracle.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		assertSameRelation(t, "exec-shared "+name, got, want)
	}
}

// TestSessionSharedRelationsReadOnly pins the session-side write guard.
func TestSessionSharedRelationsReadOnly(t *testing.T) {
	srv := newIVMServer(t, 100, 7, server.Config{})
	sess, err := srv.Attach()
	if err != nil {
		t.Fatal(err)
	}
	_, err = sess.Query("SELECT count(*) FROM Sales")
	if err != nil {
		t.Fatalf("session read of shared table: %v", err)
	}
	// A session engine must refuse to mutate shared relations.
	if err := srv.Base().Exec("INSERT INTO Sales VALUES (1,'a','b',2020,1,1,10)"); err != nil {
		t.Fatalf("base write should work: %v", err)
	}
}

// TestDetachAndEviction covers lifecycle: detached sessions error, idle
// sessions are evicted, capacity is enforced.
func TestDetachAndEviction(t *testing.T) {
	srv := newIVMServer(t, 100, 7, server.Config{MaxSessions: 2, IdleTimeout: time.Hour})
	s1, err := srv.Attach()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Attach(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Attach(); err == nil {
		t.Fatal("attach beyond capacity with fresh sessions should fail")
	}
	s1.Detach()
	s1.Detach() // idempotent
	if _, err := s1.Feed(events.Mouse(events.MouseDown, 0, 10, 10)); err == nil {
		t.Fatal("feed on detached session should fail")
	}
	if srv.Sessions() != 1 {
		t.Fatalf("sessions = %d, want 1", srv.Sessions())
	}
	if n := srv.EvictIdle(0); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	st := srv.Stats()
	if st.Detached != 1 || st.Evicted != 1 || st.Sessions != 0 {
		t.Fatalf("lifecycle stats %+v", st)
	}
}
