package server_test

// Shared cube tiles under the session server. The cube crossfilter's charts
// are all (brush-bin × group) tiled, and the tiles hang off the Sales build
// side — shared state. N sessions brushing the same program must share one
// tile build per chart, each answering its own brush moves from the shared
// tiles; under -race this file is the synchronization gate for concurrent
// tile reads against single-writer tile maintenance.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/experiments"
	"repro/internal/server"
)

// newCubeServer builds a server over the cube crossfilter with n sales rows
// loaded through the single-writer path. Session framebuffers use the cube
// program's 320×300 viewport so images compare 1:1 against NewCubeEngine
// oracles.
func newCubeServer(t *testing.T, n int, seed int64, cfg server.Config) *server.Server {
	t.Helper()
	if cfg.Engine.Width == 0 {
		cfg.Engine.Width, cfg.Engine.Height = 320, 300
	}
	srv, err := server.New(cfg, experiments.BuildCubeProgram())
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	if err := srv.InsertRows("Sales", experiments.IVMSalesTuples(n, seed)); err != nil {
		t.Fatalf("load sales: %v", err)
	}
	return srv
}

// cubeViews are the per-session chart relations compared against oracles.
var cubeViews = []string{"C", "selected_months", "FILT_region", "FILT_segment",
	"FILT_month", "FILT_weekday", "BARS"}

// TestSharedCubeTilesBuiltOnce pins the N-sessions-one-build contract: every
// chart's tile set is instantiated once in the share registry, later sessions
// attach to it, and each session's brushing registers tile hits of its own.
func TestSharedCubeTilesBuiltOnce(t *testing.T) {
	const sessions = 4
	srv := newCubeServer(t, 2000, 7, server.Config{})
	for i := 0; i < sessions; i++ {
		sess, err := srv.Attach()
		if err != nil {
			t.Fatalf("attach %d: %v", i, err)
		}
		if _, err := sess.FeedStream(experiments.CubeDragStream(2)); err != nil {
			t.Fatalf("brush %d: %v", i, err)
		}
		st, err := sess.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.Cube.Hits == 0 {
			t.Fatalf("session %d brushed without tile hits: %+v", i, st.Cube)
		}
		if st.Cube.Fallbacks != 0 {
			t.Fatalf("session %d charts fell back: %+v", i, st.Cube)
		}
	}
	st := srv.Stats()
	// One shared state per chart's tile set (plus any shared join sides,
	// e.g. the BARS axis side) — each built exactly once.
	if st.SharedSides < len(experiments.IVMDims) {
		t.Fatalf("want ≥%d shared states (one tile set per chart), have %d",
			len(experiments.IVMDims), st.SharedSides)
	}
	if int(st.Share.Builds) != st.SharedSides {
		t.Errorf("shared states built %d times for %d distinct sides; want exactly once each",
			st.Share.Builds, st.SharedSides)
	}
	if wantReuses := int64((sessions - 1) * len(experiments.IVMDims)); st.Share.Reuses < wantReuses {
		t.Errorf("reuses = %d, want >= %d (later sessions must attach, not rebuild)",
			st.Share.Reuses, wantReuses)
	}
	if st.SharedBytes == 0 {
		t.Error("resident shared tiles should count toward SharedBytes")
	}
}

// TestConcurrentSessionCubeBrushRace drives every session from its own
// goroutine — brushing over the shared tiles, reading charts, snapshotting
// stats — while the single writer ingests Sales batches (tile maintenance)
// and a janitor polls server stats. Run under -race this is the shared-tile
// synchronization gate; afterwards each session must match an oracle that
// saw the final data, and must have answered brush moves from the tiles.
func TestConcurrentSessionCubeBrushRace(t *testing.T) {
	const (
		nSessions = 6
		baseRows  = 500
		perStream = 120
	)
	srv := newCubeServer(t, baseRows, 5, server.Config{})
	var sessions []*server.Session
	var streams []events.Stream
	for i := 0; i < nSessions; i++ {
		sess, err := srv.Attach()
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, sess)
		rng := rand.New(rand.NewSource(int64(2000 + i)))
		var stream events.Stream
		for k := 0; k < perStream; k++ {
			stream = append(stream, randomEvent(rng, int64(k)))
		}
		streams = append(streams, stream)
	}
	const writerBatches = 3
	var wg sync.WaitGroup
	for i := range sessions {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k, ev := range streams[i] {
				if _, err := sessions[i].Feed(ev); err != nil {
					t.Errorf("session %d event %d: %v", i, k, err)
					return
				}
				if k%10 == 0 {
					if _, err := sessions[i].Relation("FILT_region"); err != nil {
						t.Errorf("session %d read: %v", i, err)
						return
					}
					if _, err := sessions[i].Stats(); err != nil {
						t.Errorf("session %d stats: %v", i, err)
						return
					}
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := 0; b < writerBatches; b++ {
			if err := srv.InsertRows("Sales", experiments.IVMSalesTuples(25, int64(9100+b))); err != nil {
				t.Errorf("writer batch %d: %v", b, err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 50; k++ {
			_ = srv.Stats()
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	// Post-hoc determinism: an oracle with the final base data replaying a
	// session's full stream must land on exactly that session's state.
	for i := range sessions {
		oracle, err := experiments.NewCubeEngine(baseRows, 5, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for b := 0; b < writerBatches; b++ {
			if err := oracle.InsertRows("Sales", experiments.IVMSalesTuples(25, int64(9100+b))); err != nil {
				t.Fatal(err)
			}
		}
		oracle.Commit()
		if _, err := oracle.FeedStream(streams[i]); err != nil {
			t.Fatal(err)
		}
		for _, name := range cubeViews {
			got, err := sessions[i].Relation(name)
			if err != nil {
				t.Fatal(err)
			}
			want, err := oracle.Relation(name)
			if err != nil {
				t.Fatal(err)
			}
			assertSameRelation(t, fmt.Sprintf("concurrent session %d %s", i, name), got, want)
		}
		si, oi := sessions[i].Image(), oracle.Image()
		for p := range oi.Pix {
			if si.Pix[p] != oi.Pix[p] {
				t.Fatalf("session %d: pixel %d,%d diverges", i, p%oi.W, p/oi.W)
			}
		}
		st, err := sessions[i].Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.Cube.Hits == 0 {
			t.Fatalf("session %d never hit the shared tiles: %+v", i, st.Cube)
		}
	}
}
