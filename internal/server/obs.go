package server

// Server-wide observability: each engine (shared base + every session)
// records into its own obs registry with zero cross-engine coordination on
// the hot path; this file is the read side, merging those registries plus
// the server's own lifecycle counters and capacity gauges into one snapshot
// for the stats op and the /metrics exposition.

import (
	"log/slog"

	"repro/internal/obs"
)

// SetLogger installs the structured logger receiving session lifecycle and
// health events (attach/detach/evict/resume, journal growth warnings). A nil
// logger restores the default discard logger.
func (s *Server) SetLogger(lg *slog.Logger) {
	if lg == nil {
		lg = discardLogger()
	}
	s.mu.Lock()
	s.lg = lg
	s.mu.Unlock()
}

// ObsSnapshot merges the base engine's metrics registry, every attached
// session's registry, and the server's own counters and gauges into one
// server-wide snapshot: per-stage latency histograms aggregate bucket-wise
// across sessions, counters and gauges sum. Empty (histogram-free) when the
// engines run with DisableObs; the server-level series are always present.
//
// Must not be called with the server write lock or any engine lock held:
// engine registry gauges read engine stats under the engine mutex.
func (s *Server) ObsSnapshot() obs.Snapshot {
	s.mu.RLock()
	snap := s.base.Obs().Snapshot()
	var priv int64
	for _, sess := range s.sessions {
		snap = snap.Merge(sess.eng.Obs().Snapshot())
		priv += sess.eng.ApproxBytes()
	}
	srv := obs.Snapshot{
		Counters: map[string]int64{
			"dvms_sessions_attached_total": s.attached,
			"dvms_sessions_resumed_total":  s.resumed,
			"dvms_sessions_detached_total": s.detached,
			"dvms_sessions_evicted_total":  s.evicted,
			"dvms_base_writes_total":       s.baseWrites,
		},
		Gauges: map[string]float64{
			"dvms_sessions":            float64(len(s.sessions)),
			"dvms_shared_bytes":        float64(s.base.ApproxBytes() + s.group.ApproxBytes()),
			"dvms_private_bytes_total": float64(priv),
			"dvms_shared_sides":        float64(s.group.Sides()),
		},
	}
	s.mu.RUnlock()

	s.jmu.Lock()
	srv.Gauges["dvms_session_journals"] = float64(len(s.journal))
	srv.Gauges["dvms_session_journal_entries"] = float64(s.jEntries)
	srv.Gauges["dvms_session_journal_bytes"] = float64(s.jBytes)
	var maxLen int
	for _, recs := range s.journal {
		if len(recs) > maxLen {
			maxLen = len(recs)
		}
	}
	srv.Gauges["dvms_session_journal_max_entries"] = float64(maxLen)
	s.jmu.Unlock()

	if s.log != nil {
		ds := s.log.Stats()
		srv.Counters["dvms_wal_segments_total"] = ds.SegmentsWritten
		srv.Counters["dvms_wal_bytes_appended_total"] = ds.BytesAppended
		srv.Counters["dvms_wal_fsyncs_total"] = ds.Fsyncs
	}
	return snap.Merge(srv)
}

// Obs snapshots this session's own metrics registry (empty under
// DisableObs).
func (ss *Session) Obs() (obs.Snapshot, error) {
	release, err := ss.guard()
	if err != nil {
		return obs.Snapshot{}, err
	}
	defer release()
	return ss.eng.Obs().Snapshot(), nil
}

// Traces returns this session's retained event traces, oldest first: the
// recent ring, or only the over-budget slow log when slowOnly is set. Nil
// under DisableObs.
func (ss *Session) Traces(slowOnly bool) ([]obs.Trace, error) {
	release, err := ss.guard()
	if err != nil {
		return nil, err
	}
	defer release()
	if slowOnly {
		return ss.eng.Obs().SlowEvents(), nil
	}
	return ss.eng.Obs().Traces(), nil
}
