package server

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/relation"
	"repro/internal/render"
	"repro/internal/wal"
)

// Session is one client's private slice of the server: its own event
// recognizers and compound tables, selection-dependent views, framebuffer,
// version history, and stats — everything else resolves against the shared
// base. Session methods are safe to call concurrently with other sessions'
// (they hold the server read lock); a single session serializes itself.
type Session struct {
	id     int
	token  string // stable resume identity (outlives the session object)
	srv    *Server
	eng    *core.Engine
	closed atomic.Bool
	used   atomic.Int64 // unix nanos of last use

	// commitEpochs records the server write epoch at each of this session's
	// committed versions (parallel to the engine's commit history). A
	// rollback (interaction abort) or undo restores private views computed
	// against that epoch's shared data; if the base has advanced since, the
	// restored views are stale relative to the live shared relations —
	// which session transactions never roll back — and must resync. Guarded
	// by the session's single-caller discipline plus the server read lock.
	commitEpochs []int64
}

// syncAfterRestore recomputes the session views that read shared relations
// when the restored private state predates the current write epoch. Caller
// holds the server read lock.
func (ss *Session) syncAfterRestore(restoredEpoch int64) error {
	if restoredEpoch == ss.srv.epoch {
		return nil
	}
	return ss.eng.ApplyExternalDeltas(ss.srv.unknownSharedChanges())
}

// lastCommitEpoch is the epoch of the session's newest committed version.
func (ss *Session) lastCommitEpoch() int64 {
	if len(ss.commitEpochs) == 0 {
		return -1
	}
	return ss.commitEpochs[len(ss.commitEpochs)-1]
}

// ID identifies the session within its server.
func (ss *Session) ID() int { return ss.id }

// Token is the session's stable resume identity: it survives connection
// drops, idle eviction, and (under a durable server) process restarts.
// Resume(token) rebuilds the session's private state from its journal.
func (ss *Session) Token() string { return ss.token }

func (ss *Session) touch() { ss.used.Store(time.Now().UnixNano()) }

func (ss *Session) lastUsed() time.Time { return time.Unix(0, ss.used.Load()) }

// guard takes the server read lock and rejects detached sessions. The
// returned release must be called when the operation finishes.
func (ss *Session) guard() (func(), error) {
	if ss.closed.Load() {
		return nil, fmt.Errorf("session %d is detached", ss.id)
	}
	ss.srv.mu.RLock()
	if ss.closed.Load() { // lost a race with eviction
		ss.srv.mu.RUnlock()
		return nil, fmt.Errorf("session %d is detached", ss.id)
	}
	ss.touch()
	return ss.srv.mu.RUnlock, nil
}

// Feed routes events through this session's recognizers: private views
// update (probing the shared build-side states), the session framebuffer
// re-renders, and interaction transactions commit into the session's own
// history.
func (ss *Session) Feed(evs ...events.Event) (core.TxnEvent, error) {
	release, err := ss.guard()
	if err != nil {
		return core.TxnEvent{}, err
	}
	defer release()
	var last core.TxnEvent
	for _, ev := range evs {
		if last, err = ss.eng.FeedEvent(ev); err != nil {
			return last, err
		}
		ss.journal(wal.SessEvent, ev)
		if err := ss.noteTxn(last); err != nil {
			return last, err
		}
	}
	return last, nil
}

// journal appends one op to this session's resume journal (and, under a
// durable server, to the log). Only successfully applied ops are journaled,
// so a resume replay reproduces exactly the state the client saw. Caller
// holds the server read lock.
func (ss *Session) journal(op wal.SessionOp, ev events.Event) {
	ss.srv.journalAppend(wal.SessionRecord{Token: ss.token, Op: op, Event: ev})
}

// noteTxn tracks commit epochs and resyncs after aborts. Caller holds the
// server read lock.
func (ss *Session) noteTxn(te core.TxnEvent) error {
	switch {
	case te.Committed:
		// The live state is consistent with the current epoch (fan-outs
		// apply to live views); record it for this committed version.
		ss.commitEpochs = append(ss.commitEpochs, ss.srv.epoch)
	case te.Aborted:
		// The rollback restored the last committed version's private views.
		return ss.syncAfterRestore(ss.lastCommitEpoch())
	}
	return nil
}

// FeedStream feeds a whole event stream, returning per-event summaries.
func (ss *Session) FeedStream(stream events.Stream) ([]core.TxnEvent, error) {
	release, err := ss.guard()
	if err != nil {
		return nil, err
	}
	defer release()
	out := make([]core.TxnEvent, 0, len(stream))
	for _, ev := range stream {
		te, err := ss.eng.FeedEvent(ev)
		if err != nil {
			return out, err
		}
		ss.journal(wal.SessEvent, ev)
		out = append(out, te)
		if err := ss.noteTxn(te); err != nil {
			return out, err
		}
	}
	return out, nil
}

// Relation reads a private view or (fallback) a shared relation. The
// result is a snapshot (rows slice copied under the server read lock):
// callers keep using it after the lock drops, concurrently with the
// writer's in-place fan-out patches to the live relations.
func (ss *Session) Relation(name string) (*relation.Relation, error) {
	release, err := ss.guard()
	if err != nil {
		return nil, err
	}
	defer release()
	rel, err := ss.eng.Relation(name)
	if err != nil {
		return nil, err
	}
	return rel.Snapshot(), nil
}

// Query evaluates an ad-hoc DeVIL query over the session's combined
// namespace (private views shadow nothing — shared names resolve when the
// session has no relation of that name). Snapshotted like Relation: a bare
// scan would otherwise pass the live rows slice through.
func (ss *Session) Query(q string) (*relation.Relation, error) {
	release, err := ss.guard()
	if err != nil {
		return nil, err
	}
	defer release()
	rel, err := ss.eng.Query(q)
	if err != nil {
		return nil, err
	}
	return rel.Snapshot(), nil
}

// Undo rewinds the session's private state to its previous committed
// version. Shared data is unaffected — undo is a per-client operation; if
// the base advanced since that version was committed, the restored views
// resync against the live shared relations.
func (ss *Session) Undo() error {
	release, err := ss.guard()
	if err != nil {
		return err
	}
	defer release()
	if err := ss.undoLocked(); err != nil {
		return err
	}
	ss.journal(wal.SessUndo, events.Event{})
	return nil
}

// undoLocked is Undo's body, shared with journal replay (which must not
// re-journal). Caller holds the server read lock.
func (ss *Session) undoLocked() error {
	n := len(ss.commitEpochs)
	if err := ss.eng.Undo(); err != nil {
		return err
	}
	restored := int64(-1)
	if n >= 2 {
		restored = ss.commitEpochs[n-2]
	}
	if err := ss.syncAfterRestore(restored); err != nil {
		return err
	}
	// Undo committed the restored state as a new version; after a resync it
	// is consistent with the current epoch, otherwise with the restored one.
	epoch := restored
	if restored != ss.srv.epoch {
		epoch = ss.srv.epoch
	}
	ss.commitEpochs = append(ss.commitEpochs, epoch)
	return nil
}

// Pixels materializes this session's pixels relation.
func (ss *Session) Pixels(sparse bool) (*relation.Relation, error) {
	release, err := ss.guard()
	if err != nil {
		return nil, err
	}
	defer release()
	return ss.eng.Pixels(sparse), nil
}

// Image returns the session framebuffer (stable pointer; do not read while
// concurrently feeding this same session).
func (ss *Session) Image() *render.Image { return ss.eng.Image() }

// Stats snapshots the session engine's counters.
func (ss *Session) Stats() (core.Stats, error) {
	release, err := ss.guard()
	if err != nil {
		return core.Stats{}, err
	}
	defer release()
	return ss.eng.StatsSnapshot(), nil
}

// ResetStats zeroes the session engine's counters.
func (ss *Session) ResetStats() error {
	release, err := ss.guard()
	if err != nil {
		return err
	}
	defer release()
	ss.eng.ResetStats()
	return nil
}

// PrivateBytes estimates the session's own memory (its private store) — the
// marginal footprint of one more client.
func (ss *Session) PrivateBytes() (int64, error) {
	release, err := ss.guard()
	if err != nil {
		return 0, err
	}
	defer release()
	return ss.eng.ApproxBytes(), nil
}

// Detach removes the session from the server and releases its shared-state
// references; further operations fail. Idempotent.
func (ss *Session) Detach() {
	ss.srv.detach(ss, false)
}
