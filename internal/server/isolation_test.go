package server_test

// Session isolation parity wall. Each server session must behave exactly
// like a dedicated single-tenant engine replaying the same event stream:
// sharing build-side state, chaining catalogs, and fanning out writer
// deltas are pure optimizations. The suite drives N sessions through
// randomized, randomly interleaved streams and compares every private
// relation and the pixels of every session against its oracle.
//
// Two randomized scenarios keep the oracle comparison well-defined:
//
//   - "undo": brushes, strays (aborts), and undo — no writer. Session and
//     oracle histories stay aligned, so undo targets the same state.
//   - "writer": brushes and strays with concurrent base-data ingestion.
//     Single-tenant abort rolls back the *whole* database, so the oracle
//     commits after each ingested batch (the host idiom for durable bulk
//     loads); the server's sessions never roll shared data back, and
//     resync restored views against the live base instead. Undo is
//     excluded (the oracle's extra commits shift its undo targets).
//
// The semantic difference itself — undo/abort after a shared write must
// resync, not resurrect old shared data — is pinned by
// TestUndoAfterBaseWriteSeesLiveSharedData.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/experiments"
	"repro/internal/server"
)

// ivmViews are the per-session relations the parity checks compare (C is
// the compound event table; the rest the selection-dependent chart chain).
var ivmViews = []string{"C", "selected_months", "FILT_region", "FILT_segment",
	"FILT_month", "FILT_weekday", "RANKED_sel", "BARS"}

// randomEvent synthesizes one input event. Most are drag fragments over the
// month axis (x in the axis range), some are strays (filtered or aborting),
// so recognizer state machines visit begin/extend/commit/abort.
func randomEvent(rng *rand.Rand, t int64) events.Event {
	x := int64(20 + rng.Intn(280))
	y := int64(20 + rng.Intn(100))
	switch rng.Intn(10) {
	case 0, 1, 2:
		return events.Mouse(events.MouseDown, t, x, y)
	case 3, 4, 5, 6:
		return events.Mouse(events.MouseMove, t, x, y)
	case 7, 8:
		return events.Mouse(events.MouseUp, t, x, y)
	default:
		return events.Mouse(events.Hover, t, x, y)
	}
}

func assertSessionMatchesOracle(t *testing.T, step string, sess *server.Session, oracle *core.Engine) {
	t.Helper()
	for _, name := range ivmViews {
		got, err := sess.Relation(name)
		if err != nil {
			t.Fatalf("%s: session %s: %v", step, name, err)
		}
		want, err := oracle.Relation(name)
		if err != nil {
			t.Fatalf("%s: oracle %s: %v", step, name, err)
		}
		assertSameRelation(t, step+" "+name, got, want)
	}
	si, oi := sess.Image(), oracle.Image()
	for p := range oi.Pix {
		if si.Pix[p] != oi.Pix[p] {
			t.Fatalf("%s: pixel %d,%d diverges: session %+v, oracle %+v",
				step, p%oi.W, p/oi.W, si.Pix[p], oi.Pix[p])
		}
	}
}

// parityHarness couples K server sessions with K dedicated oracles.
type parityHarness struct {
	srv      *server.Server
	sessions []*server.Session
	oracles  []*core.Engine
	commits  []int // interaction commits per session
	clock    []int64
}

func newParityHarness(t *testing.T, nSessions, baseRows int, seed int64) *parityHarness {
	t.Helper()
	h := &parityHarness{srv: newIVMServer(t, baseRows, seed, server.Config{})}
	for i := 0; i < nSessions; i++ {
		sess, err := h.srv.Attach()
		if err != nil {
			t.Fatal(err)
		}
		h.sessions = append(h.sessions, sess)
		h.oracles = append(h.oracles, newIVMOracle(t, baseRows, seed))
	}
	h.commits = make([]int, nSessions)
	h.clock = make([]int64, nSessions)
	return h
}

func (h *parityHarness) feedBoth(t *testing.T, step, i int, ev events.Event) {
	t.Helper()
	te, err := h.sessions[i].Feed(ev)
	if err != nil {
		t.Fatalf("step %d: session %d feed: %v", step, i, err)
	}
	if _, err := h.oracles[i].FeedEvent(ev); err != nil {
		t.Fatalf("step %d: oracle %d feed: %v", step, i, err)
	}
	if te.Committed {
		h.commits[i]++
	}
}

func (h *parityHarness) checkAll(t *testing.T, step string) {
	t.Helper()
	for i := range h.sessions {
		assertSessionMatchesOracle(t, fmt.Sprintf("%s session %d", step, i), h.sessions[i], h.oracles[i])
	}
}

// TestSessionIsolationParityUndo interleaves brushes, strays, and undo
// across sessions (no base writes), checking full parity every burst.
func TestSessionIsolationParityUndo(t *testing.T) {
	const (
		nSessions = 3
		baseRows  = 800
		steps     = 220
	)
	for _, seed := range []int64{1, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			h := newParityHarness(t, nSessions, baseRows, seed)
			for step := 0; step < steps; step++ {
				i := rng.Intn(nSessions)
				// Undo only when both histories hold an interaction commit
				// to rewind (the oracle's extra program-load versions would
				// otherwise let it undo earlier than the session can).
				if rng.Intn(100) < 6 && h.commits[i] >= 1 && !h.oracles[i].InTxn() {
					if err := h.sessions[i].Undo(); err != nil {
						t.Fatalf("step %d: session %d undo: %v", step, i, err)
					}
					if err := h.oracles[i].Undo(); err != nil {
						t.Fatalf("step %d: oracle %d undo: %v", step, i, err)
					}
				} else {
					h.clock[i]++
					h.feedBoth(t, step, i, randomEvent(rng, h.clock[i]))
				}
				if step%20 == 19 {
					h.checkAll(t, fmt.Sprintf("step %d", step))
				}
			}
			h.checkAll(t, "final")
		})
	}
}

// TestSessionIsolationParityWriter interleaves brushes and strays with
// single-writer ingestion; every batch fans out to all sessions and is
// committed by the oracles (see the file comment for why).
func TestSessionIsolationParityWriter(t *testing.T) {
	const (
		nSessions = 3
		baseRows  = 800
		steps     = 220
	)
	for _, seed := range []int64{7, 99} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			h := newParityHarness(t, nSessions, baseRows, seed)
			for step := 0; step < steps; step++ {
				i := rng.Intn(nSessions)
				anyTxn := false
				for _, o := range h.oracles {
					anyTxn = anyTxn || o.InTxn()
				}
				if rng.Intn(100) < 5 && !anyTxn {
					rows := experiments.IVMSalesTuples(10+rng.Intn(30), seed+int64(step))
					if err := h.srv.InsertRows("Sales", rows); err != nil {
						t.Fatalf("step %d: writer: %v", step, err)
					}
					for _, o := range h.oracles {
						if err := o.InsertRows("Sales", rows); err != nil {
							t.Fatal(err)
						}
						o.Commit()
					}
				} else {
					h.clock[i]++
					h.feedBoth(t, step, i, randomEvent(rng, h.clock[i]))
				}
				if step%20 == 19 {
					h.checkAll(t, fmt.Sprintf("step %d", step))
				}
			}
			h.checkAll(t, "final")
		})
	}
}

// TestUndoAfterBaseWriteSeesLiveSharedData pins the server's restore
// semantics: session undo rewinds only private state; views recompute
// against the live shared base rather than resurrecting charts built from
// pre-write data.
func TestUndoAfterBaseWriteSeesLiveSharedData(t *testing.T) {
	const n, seed = 600, 13
	srv := newIVMServer(t, n, seed, server.Config{})
	sess, err := srv.Attach()
	if err != nil {
		t.Fatal(err)
	}
	// Two committed interactions, then a base write, then undo: the session
	// should land on the first interaction's selection over the NEW data.
	if _, err := sess.FeedStream(experiments.IVMBrushStream(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.FeedStream(experiments.IVMBrushStream(5)); err != nil {
		t.Fatal(err)
	}
	extra := experiments.IVMSalesTuples(200, seed+1)
	if err := srv.InsertRows("Sales", extra); err != nil {
		t.Fatal(err)
	}
	if err := sess.Undo(); err != nil {
		t.Fatal(err)
	}
	// Expectation: an engine with all the data replaying only the first
	// brush (the selection state undo restored).
	want := newIVMOracle(t, 0, seed)
	if err := want.InsertRows("Sales", experiments.IVMSalesTuples(n, seed)); err != nil {
		t.Fatal(err)
	}
	if err := want.InsertRows("Sales", extra); err != nil {
		t.Fatal(err)
	}
	if _, err := want.FeedStream(experiments.IVMBrushStream(2)); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"selected_months", "FILT_region", "FILT_month", "RANKED_sel"} {
		got, err := sess.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		wantRel, err := want.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		assertSameRelation(t, "post-undo "+name, got, wantRel)
	}
}

// TestConcurrentSessionsRace drives every session from its own goroutine —
// brushing, reading relations, and snapshotting stats — while the writer
// ingests base rows and a janitor polls server stats. Run under -race this
// is the shared-state synchronization gate; afterwards each session must
// still match an oracle that saw the final data (views are functions of
// current state, so interleaving with the writer cannot change the end
// result).
func TestConcurrentSessionsRace(t *testing.T) {
	const (
		nSessions = 6
		baseRows  = 500
		perStream = 120
	)
	srv := newIVMServer(t, baseRows, 5, server.Config{})
	var sessions []*server.Session
	var streams []events.Stream
	for i := 0; i < nSessions; i++ {
		sess, err := srv.Attach()
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, sess)
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		var stream events.Stream
		for k := 0; k < perStream; k++ {
			stream = append(stream, randomEvent(rng, int64(k)))
		}
		streams = append(streams, stream)
	}
	const writerBatches = 3
	var wg sync.WaitGroup
	for i := range sessions {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k, ev := range streams[i] {
				if _, err := sessions[i].Feed(ev); err != nil {
					t.Errorf("session %d event %d: %v", i, k, err)
					return
				}
				if k%10 == 0 {
					if _, err := sessions[i].Relation("FILT_region"); err != nil {
						t.Errorf("session %d read: %v", i, err)
						return
					}
					if _, err := sessions[i].Stats(); err != nil {
						t.Errorf("session %d stats: %v", i, err)
						return
					}
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := 0; b < writerBatches; b++ {
			if err := srv.InsertRows("Sales", experiments.IVMSalesTuples(25, int64(9000+b))); err != nil {
				t.Errorf("writer batch %d: %v", b, err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 50; k++ {
			_ = srv.Stats()
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	// Post-hoc determinism: an oracle with the final base data replaying a
	// session's full stream must land on exactly that session's state.
	// (Aborted interactions in the oracle roll back to a state that already
	// contains all rows, matching the session's resync-on-abort.)
	for i := range sessions {
		oracle := newIVMOracle(t, baseRows, 5)
		for b := 0; b < writerBatches; b++ {
			if err := oracle.InsertRows("Sales", experiments.IVMSalesTuples(25, int64(9000+b))); err != nil {
				t.Fatal(err)
			}
		}
		oracle.Commit()
		if _, err := oracle.FeedStream(streams[i]); err != nil {
			t.Fatal(err)
		}
		assertSessionMatchesOracle(t, fmt.Sprintf("concurrent session %d", i), sessions[i], oracle)
	}
}
