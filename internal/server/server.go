// Package server hosts one DeVIL program for many concurrent visualization
// clients. The paper frames the DVMS as a system serving interactive
// clients; a single-tenant engine makes every client pay the full cost of
// building join and aggregate state over the same base data. The server
// splits that cost:
//
//   - One shared base engine owns the base relations, their delta log, and
//     every selection-independent view (charts identical for all clients),
//     computed and versioned exactly once.
//   - N lightweight Sessions each own only their private interaction state:
//     compound event tables, selection-dependent views, framebuffer, and
//     stats. Their catalogs chain to the shared store for everything else,
//     and their delta pipelines attach to an exec.ShareGroup so data-sized
//     join build sides (e.g. Sales indexed by month) are instantiated once
//     and probed by every session.
//
// Concurrency model: sessions are readers (server read-lock; each session's
// engine serializes itself), base-data ingestion is a single writer (server
// write-lock) that applies each change once to the shared engine and the
// shared states, then fans the sealed deltas out to every attached session.
package server

import (
	"fmt"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/relation"
	"repro/internal/wal"
)

// Config parameterizes a Server.
type Config struct {
	// Engine configures the shared base engine and every session engine
	// (framebuffer size, history depth, maintenance toggles).
	Engine core.Config
	// MaxSessions caps concurrent sessions (0 = unlimited). Attach beyond
	// the cap first tries to evict a session idle for at least IdleTimeout,
	// then fails.
	MaxSessions int
	// IdleTimeout is the idle age after which a session may be evicted by
	// EvictIdle or by an over-cap Attach (0 = sessions are never evicted
	// implicitly).
	IdleTimeout time.Duration
	// JournalWarnEntries is the per-session resume-journal length past which
	// the server logs a one-time warning (journals grow without bound until
	// the client detaches, and resume replay cost grows with them). 0 uses
	// the default (10000); negative disables the warning.
	JournalWarnEntries int
}

// defaultJournalWarn is the per-token journal length that triggers the
// one-time growth warning when Config.JournalWarnEntries is 0.
const defaultJournalWarn = 10000

// Stats aggregates the server's work counters.
type Stats struct {
	Sessions  int   // currently attached
	Attached  int64 // sessions ever attached
	Resumed   int64 // sessions rebuilt from their journal
	Detached  int64 // explicit detaches
	Evicted   int64 // idle evictions
	Journals  int   // resume journals retained (attached + resumable)
	BaseWrite int64 // single-writer ingestion batches

	// Resume-journal growth: total retained records and their approximate
	// encoded bytes across every token. These grow monotonically per session
	// until the client detaches (SessForget drops its journal).
	JournalEntries int64
	JournalBytes   int64

	// Share describes the shared-state registry: Builds counts data-sized
	// states instantiated (once per distinct fingerprint, not per session),
	// Reuses the attachments that found one already built.
	Share       exec.ShareStats
	SharedSides int   // distinct shared states currently registered
	SharedRows  int64 // rows held by shared states

	// Memory split: bytes held once for everyone vs. per session.
	SharedBytes       int64 // base store + shared build-side states
	PrivateBytesTotal int64 // sum of session stores
}

// Server hosts one shared engine behind per-client sessions.
type Server struct {
	// mu is the reader/writer gate: session operations hold it for reading
	// (they only read shared state), base-data ingestion and session
	// lifecycle hold it for writing.
	mu sync.RWMutex
	// histMu serializes historical reads of the shared store (version
	// reconstruction mutates its LRU cache, which the read-lock alone does
	// not make safe).
	histMu sync.Mutex

	cfg   Config
	split *core.ProgramSplit
	base  *core.Engine
	group *exec.ShareGroup

	sessions map[int]*Session
	nextID   int

	// byToken indexes live sessions by their stable resume token; journal
	// holds each token's resume journal (event-sourced private state), which
	// outlives the session object across eviction and — with log set — across
	// process restarts. journal/byToken are mutated under jmu plus at least
	// the read lock; readers hold either the write lock or jmu (see
	// journalAppend and walCheckpoint for why this is deadlock-free).
	jmu     sync.Mutex
	journal map[string][]wal.SessionRecord
	byToken map[string]*Session
	log     *wal.Log // nil: non-durable server
	baseCP  func() *wal.CheckpointRecord
	sealed  atomic.Bool // Shutdown ran: suppress journal appends

	// Journal growth accounting (guarded by jmu like the journal itself):
	// totals across tokens plus per-token bytes so SessForget can subtract,
	// and the warned set backing the one-time growth warning.
	jEntries int64
	jBytes   int64
	jBytesBy map[string]int64
	jWarned  map[string]bool

	// lg receives structured lifecycle and health logs (attach, detach,
	// evict, resume, journal growth). Defaults to a discard logger so
	// embedded/test servers stay silent; hosts install theirs via SetLogger.
	lg *slog.Logger

	// epoch counts sealed base-write batches. Sessions record the epoch at
	// each of their commits; a session abort/undo that restores private
	// views computed against an older epoch must resync them against the
	// live shared data (shared relations are not part of session
	// transactions and are never rolled back per client).
	epoch int64

	attached, resumed, detached, evicted, baseWrites int64
}

// New builds a server for the program: the program is parsed and split
// once, the shared partition loads into the base engine, and the private
// partition is retained for session attach to replay.
func New(cfg Config, program string) (*Server, error) {
	split, err := core.SplitProgram(program)
	if err != nil {
		return nil, err
	}
	base := core.New(cfg.Engine)
	if err := base.ExecParsed(split.Shared); err != nil {
		return nil, fmt.Errorf("server: load shared program: %w", err)
	}
	base.Commit()
	return newServer(cfg, split, base), nil
}

func newServer(cfg Config, split *core.ProgramSplit, base *core.Engine) *Server {
	s := &Server{
		cfg:      cfg,
		split:    split,
		base:     base,
		sessions: make(map[int]*Session),
		journal:  make(map[string][]wal.SessionRecord),
		byToken:  make(map[string]*Session),
		jBytesBy: make(map[string]int64),
		jWarned:  make(map[string]bool),
		lg:       discardLogger(),
	}
	s.group = exec.NewShareGroup(func(name string) bool { return split.SharedNames[name] })
	return s
}

// Base exposes the shared engine (single-threaded setup and tests only).
func (s *Server) Base() *core.Engine { return s.base }

// discardLogger is the default logger: structured logging is opt-in via
// SetLogger, so embedded and test servers stay silent.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// sharedCatalog resolves shared relations for session engines. Live reads
// are lock-free map lookups (the server's write lock excludes the only
// mutator); historical reads serialize on histMu because reconstruction
// touches the store's LRU cache.
type sharedCatalog struct{ s *Server }

// Resolve implements plan.Catalog over the shared store.
func (c sharedCatalog) Resolve(name string, v relation.VersionRef) (*relation.Relation, error) {
	if v.IsCurrent() || (v.Kind == relation.VersionVNow && v.Offset == 0) {
		return c.s.base.Store().Get(name)
	}
	c.s.histMu.Lock()
	defer c.s.histMu.Unlock()
	return c.s.base.Store().Resolve(name, v)
}

// Attach creates a session: a private engine chained to the shared catalog
// and state registry, loaded with the program's private partition. The
// expensive part — priming selection-dependent pipelines over the shared
// data — runs under the read lock, concurrently with other sessions.
func (s *Server) Attach() (*Session, error) {
	if err := s.ensureCapacity(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	sess, err := s.buildSession()
	s.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.MaxSessions > 0 && len(s.sessions) >= s.cfg.MaxSessions {
		sess.eng.Close()
		return nil, fmt.Errorf("server: session capacity %d reached", s.cfg.MaxSessions)
	}
	s.nextID++
	sess.id = s.nextID
	sess.token = s.newToken()
	s.sessions[sess.id] = sess
	s.byToken[sess.token] = sess
	s.attached++
	s.journalAppend(wal.SessionRecord{Token: sess.token, Op: wal.SessAttach})
	s.lg.Info("session attached", "session", sess.id, "token", sess.token, "sessions", len(s.sessions))
	return sess, nil
}

// ensureCapacity makes room under MaxSessions by evicting one sufficiently
// idle session, if the config allows it.
func (s *Server) ensureCapacity() error {
	if s.cfg.MaxSessions <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.sessions) < s.cfg.MaxSessions {
		return nil
	}
	if s.cfg.IdleTimeout > 0 && s.evictIdleLocked(s.cfg.IdleTimeout, 1) > 0 {
		return nil
	}
	return fmt.Errorf("server: session capacity %d reached", s.cfg.MaxSessions)
}

func (s *Server) buildSession() (*Session, error) {
	eng := core.New(s.cfg.Engine)
	eng.AttachBase(sharedCatalog{s}, s.base.Store().Has, s.group)
	sess := &Session{srv: s, eng: eng}
	sess.touch()
	if err := eng.ExecParsed(s.split.Private); err != nil {
		eng.Close()
		return nil, fmt.Errorf("server: load session program: %w", err)
	}
	eng.Commit()
	sess.commitEpochs = []int64{s.epoch} // callers hold at least the read lock
	return sess, nil
}

// detach removes a session (explicit Detach or eviction), releasing its
// shared-state references.
func (s *Server) detach(sess *Session, evicted bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sessions[sess.id]; !ok {
		return
	}
	delete(s.sessions, sess.id)
	delete(s.byToken, sess.token)
	if evicted {
		s.evicted++
		s.lg.Info("session evicted", "session", sess.id, "token", sess.token, "sessions", len(s.sessions))
	} else {
		// Explicit detach is the client saying goodbye: drop the resume
		// journal too (eviction keeps it — the client may come back).
		s.detached++
		s.journalAppend(wal.SessionRecord{Token: sess.token, Op: wal.SessForget})
		s.lg.Info("session detached", "session", sess.id, "token", sess.token, "sessions", len(s.sessions))
	}
	sess.closed.Store(true)
	sess.eng.Close()
	s.group.Sweep()
}

// EvictIdle detaches every session idle for at least olderThan, returning
// how many were evicted.
func (s *Server) EvictIdle(olderThan time.Duration) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictIdleLocked(olderThan, -1)
}

func (s *Server) evictIdleLocked(olderThan time.Duration, limit int) int {
	now := time.Now()
	n := 0
	for id, sess := range s.sessions {
		if limit >= 0 && n >= limit {
			break
		}
		if now.Sub(sess.lastUsed()) < olderThan {
			continue
		}
		delete(s.sessions, id)
		delete(s.byToken, sess.token)
		sess.closed.Store(true)
		sess.eng.Close()
		s.evicted++
		s.lg.Info("session evicted", "session", id, "token", sess.token,
			"idle", now.Sub(sess.lastUsed()).Round(time.Second).String(), "sessions", len(s.sessions))
		n++
	}
	if n > 0 {
		s.group.Sweep()
	}
	return n
}

// InsertRows is the single-writer ingestion path: the rows apply to the
// shared engine (updating shared views and sealing one delta batch), the
// shared build-side states advance exactly once, and the sealed deltas fan
// out to every attached session's private dataflow.
func (s *Server) InsertRows(table string, rows []relation.Tuple) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	changes, err := s.base.InsertRowsDelta(table, rows)
	if err != nil {
		return err
	}
	// Seal the batch as a shared version boundary: the pending delta window
	// stays O(batch) instead of accumulating forever, and versioned reads
	// of shared relations (@vnow-i) see ingestion history.
	s.base.Commit()
	s.baseWrites++
	return s.fanOut(changes)
}

// ExecShared applies DeVIL statements to the shared engine (DDL, bulk
// loads). Because the engine does not expose the refresh deltas for
// arbitrary statements, attached sessions receive an unknown-change map for
// every shared relation, forcing their dependent views to fully recompute —
// correct, just not incremental. Prefer InsertRows for the hot path.
func (s *Server) ExecShared(src string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.base.Exec(src); err != nil {
		return err
	}
	s.base.Commit()
	s.baseWrites++
	return s.fanOut(s.unknownSharedChanges())
}

// fanOut advances the shared states once with the sealed batch, then
// replays it into every session (each gets its own copy of the map — a
// session's refresh extends it with its private views' output deltas).
// Caller holds the write lock.
func (s *Server) fanOut(changes map[string]*relation.Delta) error {
	in := make(map[string]relation.Delta, len(changes))
	unknown := map[string]bool{}
	for k, d := range changes {
		if d == nil {
			unknown[k] = true
		} else {
			in[k] = *d
		}
	}
	s.epoch++
	ex := &exec.Executor{Cat: s.base.Store(), Funcs: s.base.Funcs()}
	if err := s.group.Advance(ex, in, unknown); err != nil {
		// Some shared states may have advanced before the failure and the
		// base engine already holds the rows; sessions must not consume the
		// partial batch's cached deltas. Clear them and fan out an
		// unknown-change resync (full recompute) to every session instead.
		s.group.EndAdvance()
		for _, sess := range s.sessions {
			if rerr := sess.eng.ApplyExternalDeltas(s.unknownSharedChanges()); rerr != nil {
				err = fmt.Errorf("%v; session %d resync: %v", err, sess.id, rerr)
			}
		}
		return fmt.Errorf("server: advance shared states: %w", err)
	}
	defer s.group.EndAdvance()
	var firstErr error
	for _, sess := range s.sessions {
		copied := make(map[string]*relation.Delta, len(changes))
		for k, d := range changes {
			copied[k] = d
		}
		err := sess.eng.ApplyExternalDeltas(copied)
		if err == nil {
			continue
		}
		// A session that misses a batch would silently drift from the
		// already-advanced shared states; heal it with a full resync
		// (unknown change on every shared relation forces recompute and
		// re-priming) and keep fanning out to the others either way.
		if rerr := sess.eng.ApplyExternalDeltas(s.unknownSharedChanges()); rerr != nil {
			err = fmt.Errorf("%v; resync also failed: %v", err, rerr)
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("server: fan out to session %d: %w", sess.id, err)
		}
	}
	return firstErr
}

// unknownSharedChanges builds a change map marking every shared relation as
// changed in an unknown way — the full-recompute fan-out used when exact
// deltas are unavailable.
func (s *Server) unknownSharedChanges() map[string]*relation.Delta {
	changes := make(map[string]*relation.Delta, len(s.split.SharedNames))
	for name := range s.split.SharedNames {
		changes[name] = nil
	}
	return changes
}

// Stats snapshots the server counters, the share registry, and the
// shared-vs-private memory split.
func (s *Server) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Sessions:  len(s.sessions),
		Attached:  s.attached,
		Resumed:   s.resumed,
		Detached:  s.detached,
		Evicted:   s.evicted,
		BaseWrite: s.baseWrites,

		Share:       s.group.Stats(),
		SharedSides: s.group.Sides(),
		SharedRows:  s.group.SharedRows(),
	}
	s.jmu.Lock()
	st.Journals = len(s.journal)
	st.JournalEntries = s.jEntries
	st.JournalBytes = s.jBytes
	s.jmu.Unlock()
	st.SharedBytes = s.base.ApproxBytes() + s.group.ApproxBytes()
	for _, sess := range s.sessions {
		st.PrivateBytesTotal += sess.eng.ApproxBytes()
	}
	return st
}

// Sessions reports the number of currently attached sessions.
func (s *Server) Sessions() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sessions)
}
