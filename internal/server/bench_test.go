package server_test

// BenchmarkServeFanout: per-drag cost of one session among k attached to a
// shared base, vs a dedicated single-tenant engine ("s1-dedicated"). Each
// op is one full drag (open + 6 one-month extensions + release) on the next
// session in rotation, with every other session attached and hot — the
// steady-state serving workload. The interesting comparison is s10 vs
// s1-dedicated: marginal session cost vs a full engine.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/server"
)

func BenchmarkServeFanout(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		b.Run(fmt.Sprintf("n%d/s1-dedicated", n), func(b *testing.B) {
			eng, err := experiments.NewIVMEngine(n, 7, core.Config{})
			if err != nil {
				b.Fatal(err)
			}
			drag := experiments.IVMBrushStream(6)
			if _, err := eng.FeedStream(drag); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.FeedStream(drag); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, k := range []int{1, 10} {
			b.Run(fmt.Sprintf("n%d/s%d", n, k), func(b *testing.B) {
				srv, err := experiments.NewServeServer(n, 7, server.Config{})
				if err != nil {
					b.Fatal(err)
				}
				drag := experiments.IVMBrushStream(6)
				sessions := make([]*server.Session, k)
				for i := range sessions {
					if sessions[i], err = srv.Attach(); err != nil {
						b.Fatal(err)
					}
					if _, err := sessions[i].FeedStream(drag); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sessions[i%k].FeedStream(drag); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
