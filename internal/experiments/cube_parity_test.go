package experiments

// Cube-vs-oracle parity: the property wall of ISSUE 8. The cube crossfilter
// replays randomized brush streams — interleaved with base-table writes,
// undo, and versioned reads — through three engines at once: the default one
// (index tiles), the same incremental pipeline with the cube rewrite
// disabled, and a full-recompute oracle. After every event the entire
// database state must agree across all three: every relation as a bag, the
// committed version count, and the rendered pixels. Guard tests then pin
// down *which* path served the events, so the wall cannot silently pass
// with every chart fallen back, and that ineligible aggregates fall back
// (correctly, and counted exactly once per view bind).

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/relation"
)

func TestCubeVsOracleParity(t *testing.T) {
	mk := func(cfg core.Config) (*core.Engine, error) {
		// 150 rows: small enough for per-event recompute, large enough that
		// every month bin and every group is populated.
		return NewCubeEngine(150, 3, cfg)
	}
	cube, err := mk(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	delta, err := mk(core.Config{DisableCube: true})
	if err != nil {
		t.Fatal(err)
	}
	full, err := mk(core.Config{RecomputeAll: true})
	if err != nil {
		t.Fatal(err)
	}
	engines := []*core.Engine{cube, delta, full}
	checkParity := func(step string) {
		assertEngineParity(t, step+" [tiles vs delta pipeline]", cube, delta)
		assertEngineParity(t, step+" [tiles vs recompute]", cube, full)
	}
	checkParity("after load")
	mutate := func(round int) error {
		for _, e := range engines {
			var err error
			if round%2 == 0 {
				// Writer insert: a fact delta the tiles must absorb.
				err = e.Exec(fmt.Sprintf(
					"INSERT INTO Sales VALUES (%d, 'EUROPE', 'BUILDING', 1996, %d, 3, 500)",
					9000+round, 1+round%12))
			} else {
				err = e.Exec(fmt.Sprintf("DELETE FROM Sales WHERE month = %d AND revenue < 300", 1+round%12))
			}
			if err != nil {
				return err
			}
		}
		return nil
	}
	rng := rand.New(rand.NewSource(17))
	stream := randomDrags(rng, 6)
	round, commits := 0, 0
	for i, ev := range stream {
		tc, err := cube.FeedEvent(ev)
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		for _, e := range []*core.Engine{delta, full} {
			to, err := e.FeedEvent(ev)
			if err != nil {
				t.Fatalf("event %d: %v", i, err)
			}
			if tc != to {
				t.Fatalf("event %d: txn summaries diverge: %+v vs %+v", i, tc, to)
			}
		}
		checkParity(fmt.Sprintf("after event %d (%s)", i, ev.Type))
		if tc.Committed {
			// Between interactions, interleave base-table writes and the
			// occasional undo (the store-level version restore) so tile
			// maintenance under fact deltas and state restoration are covered.
			round++
			if err := mutate(round); err != nil {
				t.Fatal(err)
			}
			checkParity(fmt.Sprintf("after mutation %d", round))
			commits++
			if commits == 3 {
				for _, e := range engines {
					if err := e.Undo(); err != nil {
						t.Fatal(err)
					}
				}
				checkParity("after undo")
			}
		}
	}
	// Versioned reads reconstruct past states through the delta log; the
	// tiled engine's history must match both oracles' at every offset.
	for off := 1; off <= 3; off++ {
		ref := relation.VersionRef{Kind: relation.VersionVNow, Offset: off}
		for _, name := range []string{"FILT_region", "FILT_month", "Sales"} {
			rc, err := cube.RelationAt(name, ref)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range []*core.Engine{delta, full} {
				ro, err := e.RelationAt(name, ref)
				if err != nil {
					t.Fatal(err)
				}
				if !relation.Equal(rc, ro) {
					t.Fatalf("%s@vnow-%d diverges:\ntiles:\n%s\noracle:\n%s", name, off, rc, ro)
				}
			}
		}
	}
	// The wall proves nothing if the charts never used the tiles.
	if s := cube.StatsSnapshot().Cube; s.Hits == 0 || s.Fallbacks != 0 {
		t.Fatalf("cube path not exercised: %+v", s)
	}
	if s := delta.StatsSnapshot().Cube; s.Hits != 0 {
		t.Fatalf("DisableCube arm answered %d moves from tiles", s.Hits)
	}
}

// TestCubePathActuallyUsed guards against the parity wall silently passing
// with every chart on the ordinary pipeline: brushing the cube crossfilter
// must build one tile set per chart and answer every move from them.
func TestCubePathActuallyUsed(t *testing.T) {
	e, err := NewCubeEngine(200, 3, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.FeedStream(CubeDragStream(3)); err != nil {
		t.Fatal(err)
	}
	s := e.StatsSnapshot().Cube
	if s.Builds < int64(len(IVMDims)) {
		t.Fatalf("want ≥%d tile builds (one per chart), got %d", len(IVMDims), s.Builds)
	}
	if s.Hits == 0 || s.BinsAnswered < s.Hits {
		t.Fatalf("brush moves should be answered from tiles: %+v", s)
	}
	if s.Fallbacks != 0 {
		t.Fatalf("no chart of the cube program should fall back: %+v", s)
	}
	if s.TileBytes == 0 {
		t.Fatal("resident tiles should report non-zero memory")
	}
}

// TestCubeFallbackCorrectness: AVG decomposes into SUM/COUNT and stays on
// the tile path; MIN/MAX and subquery-parameterized charts must fall back —
// with correct results, and with Stats.Cube.Fallbacks counting each
// ineligible view exactly once per bind, not once per event.
func TestCubeFallbackCorrectness(t *testing.T) {
	prog := crossfilterPrelude + `
CHART_avg = SELECT s.region AS grp, avg(s.revenue) AS a, count(*) AS n
  FROM Sales AS s, selected_months AS m
  WHERE s.month = m.month
  GROUP BY s.region;
CHART_minmax = SELECT s.region AS grp, min(s.revenue) AS lo, max(s.revenue) AS hi
  FROM Sales AS s, selected_months AS m
  WHERE s.month = m.month
  GROUP BY s.region;
CHART_sub = SELECT s.region AS grp, count(*) AS n
  FROM Sales AS s, selected_months AS m
  WHERE s.month = m.month AND s.revenue >= (SELECT min(revenue) FROM Sales)
  GROUP BY s.region;
`
	mk := func(cfg core.Config) *core.Engine {
		e := core.New(cfg)
		if err := e.LoadProgram(prog); err != nil {
			t.Fatal(err)
		}
		if err := LoadIVMSales(e, 300, 3); err != nil {
			t.Fatal(err)
		}
		e.Commit()
		return e
	}
	e, oracle := mk(core.Config{}), mk(core.Config{RecomputeAll: true})
	charts := []string{"CHART_avg", "CHART_minmax", "CHART_sub"}
	for _, ev := range CubeDragStream(3) {
		if _, err := e.FeedEvent(ev); err != nil {
			t.Fatal(err)
		}
		if _, err := oracle.FeedEvent(ev); err != nil {
			t.Fatal(err)
		}
		for _, name := range charts {
			ir, err := e.Relation(name)
			if err != nil {
				t.Fatal(err)
			}
			fr, err := oracle.Relation(name)
			if err != nil {
				t.Fatal(err)
			}
			if !relation.Equal(ir, fr) {
				t.Fatalf("%s diverges from recompute:\n%s\nvs\n%s", name, ir, fr)
			}
		}
	}
	s := e.StatsSnapshot().Cube
	if s.Hits == 0 {
		t.Fatalf("CHART_avg should brush on the tile path (AVG = SUM/COUNT): %+v", s)
	}
	// Exactly the two ineligible charts, counted at bind time.
	if s.Fallbacks != 2 {
		t.Fatalf("want exactly 2 cube fallbacks (min/max + subquery-parameterized), got %d", s.Fallbacks)
	}
	// More brushing re-uses the bound plans: the count must not grow.
	if _, err := e.FeedStream(CubeDragStream(4)); err != nil {
		t.Fatal(err)
	}
	if got := e.StatsSnapshot().Cube.Fallbacks; got != 2 {
		t.Fatalf("fallbacks recounted per event: %d after more brushing, want 2", got)
	}
}

// TestCubeFallbacksCountedOncePerDefine: with the rewrite disabled every
// cube-candidate chart is a fallback — one per view bind, stable across
// events.
func TestCubeFallbacksCountedOncePerDefine(t *testing.T) {
	e, err := NewCubeEngine(100, 3, core.Config{DisableCube: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.FeedStream(CubeDragStream(1)); err != nil {
		t.Fatal(err)
	}
	s := e.StatsSnapshot().Cube
	if want := int64(len(IVMDims)); s.Fallbacks != want {
		t.Fatalf("want %d fallbacks (one per chart define), got %d", want, s.Fallbacks)
	}
	if s.Hits != 0 || s.Builds != 0 || s.TileBytes != 0 {
		t.Fatalf("DisableCube must leave no tile activity: %+v", s)
	}
	if _, err := e.FeedStream(CubeDragStream(5)); err != nil {
		t.Fatal(err)
	}
	if got := e.StatsSnapshot().Cube.Fallbacks; got != int64(len(IVMDims)) {
		t.Fatalf("fallbacks grew with events: %d", got)
	}
}
