package experiments

import (
	"testing"

	"repro/internal/core"
)

// benchBrush drives steady-state cube brushing through one engine; comparing
// BenchmarkObsOn vs BenchmarkObsOff isolates the per-event instrumentation
// cost (stage histograms + trace spans) the ObsOverhead experiment gates on.
//
//	go test ./internal/experiments -bench 'ObsO(n|ff)' -benchtime 2s
func benchBrush(b *testing.B, cfg core.Config) {
	e, err := NewCubeEngine(2000, 7, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.FeedStream(CubeDragStream(2)); err != nil {
		b.Fatal(err)
	}
	steady := CubeDragStream(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.FeedStream(steady); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObsOn(b *testing.B)  { benchBrush(b, core.Config{}) }
func BenchmarkObsOff(b *testing.B) { benchBrush(b, core.Config{DisableObs: true}) }
