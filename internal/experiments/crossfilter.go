// Package experiments regenerates every table and figure of the paper's
// evaluation artifacts (see DESIGN.md §2 for the experiment index). Each
// experiment returns a Result whose Output holds the same rows/series the
// paper reports; cmd/dvms-bench prints them and bench_test.go measures them.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/relation"
	"repro/internal/workload"
)

// Result is one regenerated experiment artifact. Stats carries optional
// machine-readable counters (engine work, latencies) that dvms-bench
// -format json emits alongside the text output, so BENCH_*.json files can
// track trajectories like incremental-vs-full across PRs.
type Result struct {
	ID     string
	Title  string
	Output string
	Stats  map[string]int64 `json:",omitempty"`
}

// CrossfilterDims lists the five Figure 1 charts: sum(revenue) grouped by
// each dimension.
var CrossfilterDims = []string{"region", "year", "month", "weekday", "segment"}

// BuildCrossfilterProgram generates the Figure 1 DeVIL program over n
// synthetic TPC-H-like order lines: five group-by-sum charts linked by a
// crossfilter selection on the year chart. The year chart lays years out at
// known pixel positions (YearAxis) so a mouse drag over it selects a year
// range, exactly the orange box of Figure 1.
func BuildCrossfilterProgram(n int, seed int64) string {
	rows := workload.Sales(n, seed)
	var b strings.Builder
	b.WriteString(workload.SalesDDL + "\n")
	b.WriteString(workload.SalesInserts(rows))
	b.WriteString(`
CREATE TABLE YearAxis (year int, x int);
INSERT INTO YearAxis VALUES (1995, 40), (1996, 120), (1997, 200), (1998, 280);

C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M*, MOUSE_UP AS U
    RETURN (D.t, D.x, D.y, 0 AS dx, 0 AS dy),
           (M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy);

-- The crossfilter selection: years whose axis position falls inside the
-- dragged box. Empty C selects nothing (no filter applied).
selected_years =
  SELECT ya.year
  FROM YearAxis AS ya
  WHERE ya.x >= (SELECT min(x) FROM C)
    AND ya.x <= (SELECT max(x + dx) FROM C);
`)
	// Unfiltered (gray) and filtered (green) aggregates per chart. When no
	// selection is active the filtered partition equals the full data.
	for _, dim := range CrossfilterDims {
		fmt.Fprintf(&b, `
TOTALS_%[1]s = SELECT %[1]s, sum(revenue) AS total FROM Sales GROUP BY %[1]s;
FILT_%[1]s = SELECT %[1]s, sum(revenue) AS total FROM Sales
  WHERE year IN selected_years OR (SELECT count(*) FROM selected_years) = 0
  GROUP BY %[1]s;
`, dim)
	}
	// Render the region chart as bars: gray full-height, green filtered
	// overlay — the partition encoding of Figure 1. Bars are ordered by a
	// self-join rank (count of regions at or before this one).
	b.WriteString(`
RANKED_region =
  SELECT a.region AS region, a.total AS total, count(*) AS rk
  FROM TOTALS_region AS a, TOTALS_region AS b
  WHERE b.region <= a.region
  GROUP BY a.region, a.total;
RANKED_filt =
  SELECT a.region AS region, a.total AS total, count(*) AS rk
  FROM FILT_region AS a, FILT_region AS b
  WHERE b.region <= a.region
  GROUP BY a.region, a.total;
REGION_BARS =
  SELECT rk * 70 - 60 AS x, 280 - total / 2000 AS y, 30 AS width,
         total / 2000 AS height, 'gray' AS fill
  FROM RANKED_region
  UNION ALL
  SELECT rk * 70 - 60 AS x, 280 - total / 2000 AS y, 30 AS width,
         total / 2000 AS height, 'green' AS fill
  FROM RANKED_filt;
P = render(SELECT x, y, width, height, fill FROM REGION_BARS, 'rect');
`)
	return b.String()
}

// YearSelectionDrag returns the event stream brushing years 1997-1998 on
// the year axis (x 200..280), Figure 1's orange box.
func YearSelectionDrag() events.Stream {
	return events.Stream{
		events.Mouse(events.MouseDown, 0, 195, 40),
		events.Mouse(events.MouseMove, 1, 240, 45),
		events.Mouse(events.MouseMove, 2, 290, 50),
		events.Mouse(events.MouseUp, 3, 290, 50),
	}
}

// NewCrossfilterEngine loads the Figure 1 program.
func NewCrossfilterEngine(n int, seed int64) (*core.Engine, error) {
	e := core.New(core.Config{Width: 400, Height: 300})
	if err := e.LoadProgram(BuildCrossfilterProgram(n, seed)); err != nil {
		return nil, err
	}
	return e, nil
}

// Fig1Crossfilter regenerates Figure 1: the per-chart revenue breakdown
// before and after the interactive year selection, with the green
// (filtered) vs gray (unfiltered) partition per group.
func Fig1Crossfilter(n int, seed int64) (Result, error) {
	e, err := NewCrossfilterEngine(n, seed)
	if err != nil {
		return Result{}, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — revenue breakdown with crossfilter (%d order lines)\n\n", n)

	dump := func(stage string) error {
		fmt.Fprintf(&b, "-- %s --\n", stage)
		sel, err := e.Relation("selected_years")
		if err != nil {
			return err
		}
		years := make([]string, 0, sel.Len())
		for _, row := range sel.Rows {
			years = append(years, row[0].String())
		}
		if len(years) == 0 {
			fmt.Fprintf(&b, "selection: none (all years)\n")
		} else {
			fmt.Fprintf(&b, "selection: years %s\n", strings.Join(years, ", "))
		}
		for _, dim := range CrossfilterDims {
			totals, err := e.Relation("TOTALS_" + dim)
			if err != nil {
				return err
			}
			filt, err := e.Relation("FILT_" + dim)
			if err != nil {
				return err
			}
			fMap := map[string]relation.Value{}
			for _, row := range filt.Rows {
				fMap[row[0].String()] = row[1]
			}
			t := totals.Clone()
			t.SortDeterministic()
			fmt.Fprintf(&b, "%s:\n", dim)
			for _, row := range t.Rows {
				key := row[0].String()
				total, _ := row[1].AsFloat()
				var filtered float64
				if fv, ok := fMap[key]; ok {
					filtered, _ = fv.AsFloat()
				}
				fmt.Fprintf(&b, "  %-12s total=%-10.0f filtered=%.0f\n", key, total, filtered)
			}
		}
		b.WriteString("\n")
		return nil
	}

	if err := dump("static (no selection)"); err != nil {
		return Result{}, err
	}
	if _, err := e.FeedStream(YearSelectionDrag()); err != nil {
		return Result{}, err
	}
	if err := dump("after selecting years 1997-1998"); err != nil {
		return Result{}, err
	}
	fmt.Fprintf(&b, "region chart (gray = all years, dark = selection):\n%s",
		e.Image().ASCII(8, 12))
	return Result{ID: "fig1", Title: "Revenue breakdown with crossfilter", Output: b.String()}, nil
}
