package experiments

// The versioning workload: long drags over the join-based crossfilter,
// measuring what @vnow/@tnow history maintenance costs per event now that
// the storage manager records per-event deltas instead of snapshotting the
// whole database (PR 3). The snapshot arm re-creates the pre-refactor cost
// by explicitly capturing every relation per event on top of the same
// engine, so both arms pay identical view-maintenance work and the
// difference isolates version-history cost.

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/relation"
)

// VersioningExperiment measures the long-drag tail per database size: the
// brush already covers every month, so each further move event changes
// nothing (the empty-delta fast path) and per-event cost is recognizer +
// dirty-check + history maintenance. That isolates exactly the cost the
// refactor removes — the pre-refactor store paid a whole-database capture
// for every such no-op event, which BENCH_ivm_micro showed dominating
// steady-state drags once view maintenance became delta-proportional.
func VersioningExperiment(sizes []int, nEvents int, seed int64) (Result, error) {
	var b strings.Builder
	b.WriteString("Versioning — per-event history cost on the long-drag tail,\ndelta log vs whole-database snapshots\n")
	fmt.Fprintf(&b, "(join-based crossfilter, %d no-op move events per arm after the brush\ncovers all months; each event still seals a @tnow version)\n\n", nEvents)
	stats := map[string]int64{}
	for _, n := range sizes {
		var us [2]float64 // µs/event: [delta-log, +snapshot-per-event]
		for arm := 0; arm < 2; arm++ {
			e, err := NewIVMEngine(n, seed, core.Config{})
			if err != nil {
				return Result{}, err
			}
			// Warm-up drag, then open a drag that selects all 12 months.
			if _, err := e.FeedStream(IVMBrushStream(2)); err != nil {
				return Result{}, err
			}
			open, grow, _ := IVMBrushPhases(12)
			if _, err := e.FeedStream(append(append(events.Stream{}, open...), grow...)); err != nil {
				return Result{}, err
			}
			e.Stats = core.Stats{}
			start := time.Now()
			t0 := int64(1000)
			for k := 0; k < nEvents; k++ {
				// Moves past the last month bucket change no view.
				ev := events.Mouse(events.MouseMove, t0+int64(k), 300+int64(k%5), 45)
				if _, err := e.FeedEvent(ev); err != nil {
					return Result{}, err
				}
				if arm == 1 {
					// The pre-refactor MarkEvent: shallow-copy every
					// relation into a per-event snapshot.
					snap := make(map[string]*relation.Relation)
					for _, name := range e.Store().Names() {
						r, err := e.Relation(name)
						if err != nil {
							return Result{}, err
						}
						snap[name] = r.Snapshot()
					}
					_ = snap
				}
			}
			us[arm] = float64(time.Since(start).Microseconds()) / float64(nEvents)
			if arm == 0 {
				v := e.Stats.Versioning
				stats[fmt.Sprintf("n%d_deltalog_events", n)] = int64(v.DeltaLogEvents)
				stats[fmt.Sprintf("n%d_snapshot_bytes", n)] = v.SnapshotBytes
				stats[fmt.Sprintf("n%d_reconstructions", n)] = int64(v.Reconstructions)
				stats[fmt.Sprintf("n%d_checkpoint_hits", n)] = int64(v.CheckpointHits)
				stats[fmt.Sprintf("n%d_cache_hits", n)] = int64(v.CacheHits)
			}
		}
		stats[fmt.Sprintf("n%d_deltalog_us_per_event", n)] = int64(us[0])
		stats[fmt.Sprintf("n%d_snapshot_us_per_event", n)] = int64(us[1])
		speed := us[1] / us[0]
		fmt.Fprintf(&b, "%8d rows: delta-log %10.1f µs/event   snapshot-per-event %10.1f µs/event   %6.1fx\n",
			n, us[0], us[1], speed)
	}
	b.WriteString("\nThe delta-log arm seals each event's recorded deltas (empty here, O(1));\nthe snapshot arm additionally shallow-copies every relation per event —\nexactly what Store.MarkEvent did before the delta-log refactor. The gap\ngrows linearly with the base table while the delta-log cost stays flat.\n")
	return Result{ID: "version", Title: "Delta-log versioning cost", Output: b.String(), Stats: stats}, nil
}
