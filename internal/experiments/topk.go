package experiments

// The incremental top-k workload: the paper's most common chart shape —
// "top N bars by measure" — expressed as ORDER BY … LIMIT k views over the
// crossfilter base. Before PR 4 these views forced a full
// recompute-plus-diff per event (plan.DeltaSafety rejected Sort/Limit);
// now the executor maintains an order-statistic tree per sorted view, so a
// one-row change to a top-10 chart ships ~2 delta rows. Two steady-state
// phases are measured: *brush* (a month-axis drag that shifts the filtered
// top-k's input by ~1/12 of the data per event) and *tick* (single-row
// inserts straddling the k-th boundary — the live-feed case where per-event
// cost should be near O(log n + k), flat in the base size).

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/relation"
)

// TopKK is the prefix length of the experiment's leaderboard charts.
const TopKK = 10

// BuildTopKProgram returns the DeVIL program of the top-k crossfilter:
// the shared crossfilter base (Sales, month axis, drag recognizer,
// selected_months), a global top-k leaderboard, a selection-filtered top-k,
// rank views derived from each, and side-by-side bar charts. Every view
// below selected_months is delta-safe, including the ORDER BY+LIMIT pair.
func BuildTopKProgram(k int) string {
	var b strings.Builder
	b.WriteString(crossfilterPrelude)
	fmt.Fprintf(&b, `
-- Global leaderboard: top %[1]d order lines by revenue, ties broken on the
-- full tuple (deterministic across recomputes and deltas).
TOPALL = SELECT s.orderId AS oid, s.revenue AS rev
  FROM Sales AS s
  ORDER BY rev DESC, oid
  LIMIT %[1]d;

-- Selection-filtered leaderboard: same chart, restricted to the brushed
-- months through the delta-safe equi join.
TOPSEL = SELECT s.orderId AS oid, s.revenue AS rev
  FROM Sales AS s, selected_months AS m
  WHERE s.month = m.month
  ORDER BY rev DESC, oid
  LIMIT %[1]d;

-- Ranks via non-equi self joins over the k-row prefixes (cheap: k x k).
RANKED_all = SELECT a.oid AS oid, a.rev AS rev, count(*) AS rk
  FROM TOPALL AS a, TOPALL AS b
  WHERE b.rev > a.rev OR (b.rev = a.rev AND b.oid <= a.oid)
  GROUP BY a.oid, a.rev;
RANKED_sel = SELECT a.oid AS oid, a.rev AS rev, count(*) AS rk
  FROM TOPSEL AS a, TOPSEL AS b
  WHERE b.rev > a.rev OR (b.rev = a.rev AND b.oid <= a.oid)
  GROUP BY a.oid, a.rev;

-- Two non-overlapping bands: global bars on top, selection bars below, so
-- pixel output is independent of draw order within a band.
BARS =
  SELECT rk * 24 - 20 AS x, 120 - rev / 20 AS y, 16 AS width,
         rev / 20 AS height, 'gray' AS fill
  FROM RANKED_all
  UNION ALL
  SELECT rk * 24 - 20 AS x, 270 - rev / 20 AS y, 16 AS width,
         rev / 20 AS height, 'green' AS fill
  FROM RANKED_sel;
P = render(SELECT x, y, width, height, fill FROM BARS, 'rect');
`, k)
	return b.String()
}

// NewTopKEngine loads the top-k crossfilter over n synthetic order lines.
func NewTopKEngine(n int, seed int64, cfg core.Config) (*core.Engine, error) {
	e := core.New(cfg)
	if err := e.LoadProgram(BuildTopKProgram(TopKK)); err != nil {
		return nil, err
	}
	if err := LoadIVMSales(e, n, seed); err != nil {
		return nil, err
	}
	e.Commit()
	return e, nil
}

// TopKTickRow builds the i-th live-feed row. Odd ticks carry a revenue far
// above the workload ceiling (monotonically increasing, so each one lands
// at rank 1 and evicts the current k-th); even ticks carry revenue 1 and
// never enter a leaderboard — together they exercise both sides of the
// boundary while churning the selection-filtered chart's join too.
func TopKTickRow(base, i int) relation.Tuple {
	rev := int64(1)
	if i%2 == 1 {
		rev = int64(100000 + i)
	}
	return relation.Tuple{
		relation.Int(int64(base + i + 1)),
		relation.String("EUROPE"),
		relation.String("BUILDING"),
		relation.Int(1997),
		relation.Int(int64(1 + i%12)),
		relation.Int(int64(i % 7)),
		relation.Int(rev),
	}
}

// TopKScaling measures per-event latency of the top-k crossfilter,
// incremental vs the RecomputeAll baseline, at each base size: the brush
// steady state (one-month selection extensions) and the tick steady state
// (single-row inserts at the k-th boundary). For the incremental arm it
// also records the order-statistic counters and the per-event output-delta
// row distribution, the direct evidence that a one-row change ships ~2
// rows instead of a recompute.
func TopKScaling(sizes []int, steps, ticks int, seed int64) (Result, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Top-k — per-event latency, incremental ORDER BY/LIMIT vs full recompute (k = %d)\n", TopKK)
	fmt.Fprintf(&b, "(brush: %d one-month selection extensions; tick: %d single-row inserts straddling the k-th boundary)\n\n", steps, ticks)
	stats := map[string]int64{}
	for _, n := range sizes {
		var brushUs, tickUs [2]float64 // µs/event: [incremental, full]
		for arm, full := range []bool{false, true} {
			e, err := NewTopKEngine(n, seed, core.Config{RecomputeAll: full})
			if err != nil {
				return Result{}, err
			}
			// Warm-up drag primes every pipeline (and its order trees).
			if _, err := e.FeedStream(IVMBrushStream(2)); err != nil {
				return Result{}, err
			}
			open, steady, close := IVMBrushPhases(steps)
			if _, err := e.FeedStream(open); err != nil {
				return Result{}, err
			}
			e.Stats = core.Stats{}
			start := time.Now()
			if _, err := e.FeedStream(steady); err != nil {
				return Result{}, err
			}
			brushUs[arm] = float64(time.Since(start).Microseconds()) / float64(len(steady))
			if _, err := e.FeedStream(close); err != nil {
				return Result{}, err
			}
			// Tick phase: host-API single-row inserts, sampling the
			// per-event output-delta volume on the incremental arm.
			var deltaRowsPerEvent []int
			prevOut := e.Stats.DeltaRowsOut
			start = time.Now()
			for i := 0; i < ticks; i++ {
				if err := e.InsertRows("Sales", []relation.Tuple{TopKTickRow(n, i)}); err != nil {
					return Result{}, err
				}
				if !full {
					deltaRowsPerEvent = append(deltaRowsPerEvent, e.Stats.DeltaRowsOut-prevOut)
					prevOut = e.Stats.DeltaRowsOut
				}
			}
			tickUs[arm] = float64(time.Since(start).Microseconds()) / float64(ticks)
			if !full {
				s := e.Stats
				stats[fmt.Sprintf("n%d_delta_applies", n)] = int64(s.ViewDeltaApplies)
				stats[fmt.Sprintf("n%d_full_fallbacks", n)] = int64(s.FullFallbacks)
				stats[fmt.Sprintf("n%d_topk_tree_rows", n)] = s.TopK.TreeRows
				stats[fmt.Sprintf("n%d_topk_prefix_emits", n)] = s.TopK.PrefixEmits
				stats[fmt.Sprintf("n%d_topk_evictions", n)] = s.TopK.Evictions
				mean, p50, p95, max := intDistribution(deltaRowsPerEvent)
				stats[fmt.Sprintf("n%d_tick_delta_rows_out_mean", n)] = mean
				stats[fmt.Sprintf("n%d_tick_delta_rows_out_p50", n)] = p50
				stats[fmt.Sprintf("n%d_tick_delta_rows_out_p95", n)] = p95
				stats[fmt.Sprintf("n%d_tick_delta_rows_out_max", n)] = max
			}
		}
		stats[fmt.Sprintf("n%d_brush_incremental_us_per_event", n)] = int64(brushUs[0])
		stats[fmt.Sprintf("n%d_brush_full_us_per_event", n)] = int64(brushUs[1])
		stats[fmt.Sprintf("n%d_tick_incremental_us_per_event", n)] = int64(tickUs[0])
		stats[fmt.Sprintf("n%d_tick_full_us_per_event", n)] = int64(tickUs[1])
		fmt.Fprintf(&b, "%8d rows: brush %9.1f vs %11.1f µs/event (%.1fx)   tick %8.1f vs %11.1f µs/event (%.1fx)\n",
			n, brushUs[0], brushUs[1], brushUs[1]/brushUs[0],
			tickUs[0], tickUs[1], tickUs[1]/tickUs[0])
	}
	b.WriteString("\nBrush events shift ~1/12 of the data through the filtered top-k's join;\ntick events change one row, so incremental cost is the order-statistic\ntree update plus the ~2-row prefix delta — near O(log n + k), flat in n —\nwhile the full arm re-sorts everything per event.\n")
	return Result{ID: "topk", Title: "Incremental ORDER BY / LIMIT (top-k) scaling", Output: b.String(), Stats: stats}, nil
}

// intDistribution summarizes per-event sample counts (mean, p50, p95, max).
func intDistribution(xs []int) (mean, p50, p95, max int64) {
	if len(xs) == 0 {
		return 0, 0, 0, 0
	}
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	var sum int64
	for _, x := range sorted {
		sum += int64(x)
	}
	mean = sum / int64(len(sorted))
	p50 = int64(sorted[len(sorted)/2])
	p95 = int64(sorted[len(sorted)*95/100])
	max = int64(sorted[len(sorted)-1])
	return mean, p50, p95, max
}
