package experiments

// The incremental view maintenance (IVM) workload: a crossfilter expressed
// with joins instead of IN-subqueries, so the whole chart chain —
// join → aggregate → rank → bars → render — is delta-safe and a brush event
// flows through the stateful pipelines as a delta proportional to the
// selection change, never rescanning the base data. This is the benchmark
// behind the ISSUE 2 acceptance criterion (brush over crossfilter at 100k+
// rows, ≥5x over the full-recompute baseline) and the program the parity
// suite uses to exercise the delta path end to end.

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/relation"
	"repro/internal/workload"
)

// IVMDims are the grouped charts of the join-based crossfilter.
var IVMDims = []string{"region", "segment", "month", "weekday"}

// crossfilterPrelude is the shared base of the join-driven workloads (IVM
// and top-k): the Sales table, the month axis, the drag recognizer, and the
// month-selection view the brush drives.
const crossfilterPrelude = `
CREATE TABLE Sales (orderId int, region string, segment string, year int, month int, weekday int, revenue int);

CREATE TABLE MonthAxis (month int, x int);
INSERT INTO MonthAxis VALUES
  (1, 40), (2, 60), (3, 80), (4, 100), (5, 120), (6, 140),
  (7, 160), (8, 180), (9, 200), (10, 220), (11, 240), (12, 260);

C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M*, MOUSE_UP AS U
    RETURN (D.t, D.x, D.y, 0 AS dx, 0 AS dy),
           (M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy);

-- The selection is tiny (≤ 12 months) and reads C through scalar
-- subqueries, so it recomputes fully per event; its *diff* is what feeds
-- the join pipelines below. An empty C selects every month.
selected_months =
  SELECT ma.month AS month FROM MonthAxis AS ma
  WHERE (SELECT count(*) FROM C) = 0
     OR (ma.x >= (SELECT min(x) FROM C) AND ma.x <= (SELECT max(x + dx) FROM C));
`

// BuildIVMCrossfilterProgram returns the DeVIL program of the join-based
// crossfilter. Sales starts empty — load data with LoadIVMSales so million-
// row runs skip the text parser. Revenue is integral, which keeps
// incremental sums bit-identical to recomputed ones (integer arithmetic is
// order-independent; float sums are not).
func BuildIVMCrossfilterProgram() string {
	var b strings.Builder
	b.WriteString(crossfilterPrelude)
	// One filtered aggregate per chart: Sales ⋈ selected_months, grouped.
	// Delta-safe end to end: equi hash join + incremental SUM/COUNT.
	for _, dim := range IVMDims {
		fmt.Fprintf(&b, `
FILT_%[1]s = SELECT s.%[1]s AS grp, sum(s.revenue) AS total, count(*) AS n
  FROM Sales AS s, selected_months AS m
  WHERE s.month = m.month
  GROUP BY s.%[1]s;
`, dim)
	}
	// Rank the region chart with a non-equi self join (exercises the
	// cross-join delta rule) and render side-by-side bars: all-years gray
	// next to selection-colored — non-overlapping, so pixel output is
	// independent of row order.
	b.WriteString(`
TOTALS_region = SELECT s.region AS grp, sum(s.revenue) AS total
  FROM Sales AS s GROUP BY s.region;
RANKED_all =
  SELECT a.grp AS grp, a.total AS total, count(*) AS rk
  FROM TOTALS_region AS a, TOTALS_region AS b
  WHERE b.grp <= a.grp
  GROUP BY a.grp, a.total;
RANKED_sel =
  SELECT a.grp AS grp, a.total AS total, count(*) AS rk
  FROM FILT_region AS a, FILT_region AS b
  WHERE b.grp <= a.grp
  GROUP BY a.grp, a.total;
BARS =
  SELECT rk * 70 - 60 AS x, 280 - total / 3000 AS y, 24 AS width,
         total / 3000 AS height, 'gray' AS fill
  FROM RANKED_all
  UNION ALL
  SELECT rk * 70 - 32 AS x, 280 - total / 3000 AS y, 24 AS width,
         total / 3000 AS height, 'green' AS fill
  FROM RANKED_sel;
P = render(SELECT x, y, width, height, fill FROM BARS, 'rect');
`)
	return b.String()
}

// IVMSalesTuples synthesizes n order lines as engine tuples (the Sales
// schema of the crossfilter prelude). Shared by the single-tenant loaders
// and the session server's ingestion path.
func IVMSalesTuples(n int, seed int64) []relation.Tuple {
	rows := workload.Sales(n, seed)
	tuples := make([]relation.Tuple, len(rows))
	for i, r := range rows {
		tuples[i] = relation.Tuple{
			relation.Int(int64(r.OrderID)),
			relation.String(r.Region),
			relation.String(r.Segment),
			relation.Int(int64(r.Year)),
			relation.Int(int64(r.Month)),
			relation.Int(int64(r.Weekday)),
			relation.Int(int64(math.Round(r.Revenue))),
		}
	}
	return tuples
}

// LoadIVMSales bulk-loads n synthetic order lines into the engine's Sales
// table through the host API (InsertRows), bypassing the DeVIL parser so
// million-row benchmarks spend their time in the engine, not the lexer.
func LoadIVMSales(e *core.Engine, n int, seed int64) error {
	return e.InsertRows("Sales", IVMSalesTuples(n, seed))
}

// NewIVMEngine loads the join-based crossfilter over n rows.
func NewIVMEngine(n int, seed int64, cfg core.Config) (*core.Engine, error) {
	e := core.New(cfg)
	if err := e.LoadProgram(BuildIVMCrossfilterProgram()); err != nil {
		return nil, err
	}
	if err := LoadIVMSales(e, n, seed); err != nil {
		return nil, err
	}
	e.Commit()
	return e, nil
}

// IVMBrushPhases returns the three phases of one drag over the month axis:
// open (mouse down just left of the axis, then a move covering month 1),
// steady (`steps` moves, each extending the brush right by exactly one
// month bucket), and close (the release). The steady phase is the
// steady-state crossfilter workload: each move adds one month (≈ 1/12 of
// the data) to the selection, so incremental per-event work is proportional
// to that slice while a full recompute rescans everything. The open
// transition legitimately carries data-sized deltas (the selection goes
// from "everything" — empty C — to "month 1 only") and is reported
// separately. The compound table accumulates max(x+dx) over the whole drag,
// so a brush can only grow within one interaction; steps beyond month 12
// change nothing (and exercise the empty-delta short circuit).
func IVMBrushPhases(steps int) (open, steady, close events.Stream) {
	const x0 = 35 // just left of the first month bucket (month m sits at x=20+20m)
	open = events.Stream{
		events.Mouse(events.MouseDown, 0, x0, 40),
		events.Mouse(events.MouseMove, 1, 45, 45), // right edge inside month 1
	}
	t := int64(1)
	for k := 1; k <= steps; k++ {
		t++
		steady = append(steady, events.Mouse(events.MouseMove, t, 45+int64(20*k), 45))
	}
	close = events.Stream{events.Mouse(events.MouseUp, t+1, 45+int64(20*steps), 45)}
	return open, steady, close
}

// IVMBrushStream concatenates the phases into one drag (used by the parity
// suite and warm-ups).
func IVMBrushStream(steps int) events.Stream {
	open, steady, close := IVMBrushPhases(steps)
	s := append(events.Stream{}, open...)
	s = append(s, steady...)
	return append(s, close...)
}

// IVMScaling measures steady-state brush latency per event, incremental vs
// the RecomputeAll baseline, at each base-table size. It returns the text
// table plus machine-readable stats per size.
func IVMScaling(sizes []int, steps int, seed int64) (Result, error) {
	var b strings.Builder
	b.WriteString("IVM — per-event brush latency, incremental vs full recompute\n")
	fmt.Fprintf(&b, "(join-based crossfilter, %d charts, %d one-month brush extensions per drag)\n\n", len(IVMDims)+1, steps)
	stats := map[string]int64{}
	for _, n := range sizes {
		var steadyUs, openUs [2]float64 // µs/event: [incremental, full]
		for arm, full := range []bool{false, true} {
			e, err := NewIVMEngine(n, seed, core.Config{RecomputeAll: full})
			if err != nil {
				return Result{}, err
			}
			// Warm-up drag: primes pipelines and pays one-time costs.
			if _, err := e.FeedStream(IVMBrushStream(2)); err != nil {
				return Result{}, err
			}
			open, steady, close := IVMBrushPhases(steps)
			start := time.Now()
			if _, err := e.FeedStream(open); err != nil {
				return Result{}, err
			}
			openUs[arm] = float64(time.Since(start).Microseconds()) / float64(len(open))
			e.Stats = core.Stats{}
			start = time.Now()
			if _, err := e.FeedStream(steady); err != nil {
				return Result{}, err
			}
			steadyUs[arm] = float64(time.Since(start).Microseconds()) / float64(len(steady))
			if _, err := e.FeedStream(close); err != nil {
				return Result{}, err
			}
			if !full {
				s := e.Stats
				stats[fmt.Sprintf("n%d_delta_applies", n)] = int64(s.ViewDeltaApplies)
				stats[fmt.Sprintf("n%d_delta_rows_in", n)] = int64(s.DeltaRowsIn)
				stats[fmt.Sprintf("n%d_delta_rows_out", n)] = int64(s.DeltaRowsOut)
				stats[fmt.Sprintf("n%d_full_fallbacks", n)] = int64(s.FullFallbacks)
				stats[fmt.Sprintf("n%d_empty_delta_skips", n)] = int64(s.EmptyDeltaSkips)
				stats[fmt.Sprintf("n%d_render_skips", n)] = int64(s.RenderSkips)
				stats[fmt.Sprintf("n%d_view_recomputes", n)] = int64(s.ViewRecomputes)
				stats[fmt.Sprintf("n%d_deltalog_events", n)] = int64(s.Versioning.DeltaLogEvents)
				stats[fmt.Sprintf("n%d_snapshot_bytes", n)] = s.Versioning.SnapshotBytes
				stats[fmt.Sprintf("n%d_reconstructions", n)] = int64(s.Versioning.Reconstructions)
				stats[fmt.Sprintf("n%d_checkpoint_hits", n)] = int64(s.Versioning.CheckpointHits)
			}
		}
		speedup := steadyUs[1] / steadyUs[0]
		stats[fmt.Sprintf("n%d_incremental_us_per_event", n)] = int64(steadyUs[0])
		stats[fmt.Sprintf("n%d_full_us_per_event", n)] = int64(steadyUs[1])
		fmt.Fprintf(&b, "%8d rows: incremental %10.1f µs/event   full %10.1f µs/event   speedup %5.1fx   (brush-open: %.0f vs %.0f µs/event)\n",
			n, steadyUs[0], steadyUs[1], speedup, openUs[0], openUs[1])
	}
	b.WriteString("\nSteady-state brushing: each event extends the selection by one month\n(~1/12 of the data). Incremental per-event cost tracks that slice; the\nfull-recompute arm rescans every chart per event. Brush-open events change\nthe whole selection, so both arms pay data-proportional cost there.\n")
	return Result{ID: "ivm", Title: "Incremental view maintenance scaling", Output: b.String(), Stats: stats}, nil
}
