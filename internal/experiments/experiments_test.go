package experiments

import (
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
)

func TestFig1CrossfilterShape(t *testing.T) {
	r, err := Fig1Crossfilter(400, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Output, "selection: none") {
		t.Fatalf("missing static stage:\n%s", r.Output)
	}
	if !strings.Contains(r.Output, "selection: years 1997, 1998") {
		t.Fatalf("year selection missing:\n%s", r.Output)
	}
	for _, dim := range CrossfilterDims {
		if !strings.Contains(r.Output, dim+":") {
			t.Fatalf("chart %s missing", dim)
		}
	}
}

func TestCrossfilterFilteredSumsShrink(t *testing.T) {
	e, err := NewCrossfilterEngine(500, 5)
	if err != nil {
		t.Fatal(err)
	}
	totalBefore := sumColumn(t, e, "FILT_region", "total")
	if _, err := e.FeedStream(YearSelectionDrag()); err != nil {
		t.Fatal(err)
	}
	sel, _ := e.Relation("selected_years")
	if sel.Len() != 2 {
		t.Fatalf("selected years = %d, want 2\n%s", sel.Len(), sel)
	}
	totalAfter := sumColumn(t, e, "FILT_region", "total")
	if totalAfter >= totalBefore {
		t.Fatalf("filtered sum (%v) should shrink after selection (%v)", totalAfter, totalBefore)
	}
	// Unfiltered totals unchanged.
	full := sumColumn(t, e, "TOTALS_region", "total")
	if full != totalBefore {
		t.Fatalf("unfiltered totals changed: %v vs %v", full, totalBefore)
	}
}

func sumColumn(t *testing.T, e *core.Engine, rel, col string) float64 {
	t.Helper()
	r, err := e.Relation(rel)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := r.Column(col)
	if err != nil {
		t.Fatal(err)
	}
	var s float64
	for _, v := range vals {
		f, _ := v.AsFloat()
		s += f
	}
	return s
}

func TestTable1Experiment(t *testing.T) {
	r, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"t", "dx", "dy", "committed"} {
		if !strings.Contains(r.Output, frag) {
			t.Fatalf("missing %q in:\n%s", frag, r.Output)
		}
	}
}

func TestFig2Experiment(t *testing.T) {
	r, err := Fig2LinkedBrush(60, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Output, "step 0 (static): 0 selected") {
		t.Fatalf("static step wrong:\n%s", r.Output)
	}
	if !strings.Contains(r.Output, "step 2 (roll back): 0 selected") {
		t.Fatalf("rollback step wrong:\n%s", r.Output)
	}
}

func TestDeVIL4Comparison(t *testing.T) {
	r, err := DeVIL4TraceVsJoin(80, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Output, "DeVIL 3") || !strings.Contains(r.Output, "DeVIL 4") {
		t.Fatalf("output:\n%s", r.Output)
	}
	// Both selections must agree (same seed, same drag).
	e3, err := NewBrushingEngine(80, 3, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e4, err := NewTraceEngine(80, 3, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []*core.Engine{e3, e4} {
		if _, err := e.FeedStream(BrushDrag(0, 100, 50, 250, 200)); err != nil {
			t.Fatal(err)
		}
	}
	sel, _ := e3.Relation("selected")
	b, _ := e4.Relation("B")
	if sel.Len() != b.Len() {
		t.Fatalf("DeVIL 3 selected %d, DeVIL 4 traced %d", sel.Len(), b.Len())
	}
	if sel.Len() == 0 {
		t.Fatal("drag should select something")
	}
}

func TestFig5Experiment(t *testing.T) {
	r := Fig5(cc.Threshold, 10, 1)
	if !strings.Contains(r.Output, "MVCC") || !strings.Contains(r.Output, "ranking") {
		t.Fatalf("output:\n%s", r.Output)
	}
}

func TestFig6And7Experiments(t *testing.T) {
	r6, err := Fig6(4000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r6.Output, "RangeSlider") {
		t.Fatalf("fig6 output:\n%s", r6.Output)
	}
	r7, err := Fig7(4000, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"original", "simplicity", "coverage"} {
		if !strings.Contains(r7.Output, frag) {
			t.Fatalf("fig7 missing %q:\n%s", frag, r7.Output)
		}
	}
}

func TestStreamExperiment(t *testing.T) {
	r, err := StreamExperiment(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"intent model", "greedy-utility", "request-response"} {
		if !strings.Contains(r.Output, frag) {
			t.Fatalf("missing %q:\n%s", frag, r.Output)
		}
	}
}

func TestAblations(t *testing.T) {
	a1, err := AblationIncremental(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a1.Output, "incremental") || !strings.Contains(a1.Output, "full recompute") {
		t.Fatalf("a1 output:\n%s", a1.Output)
	}
	a2, err := AblationProvenance(60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a2.Output, "lazy") || !strings.Contains(a2.Output, "eager") {
		t.Fatalf("a2 output:\n%s", a2.Output)
	}
}

func TestEndToEnd(t *testing.T) {
	r, err := EndToEnd([]int{20, 50}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Output, "ms/event") {
		t.Fatalf("output:\n%s", r.Output)
	}
}

// TestServeFanoutExperiment smoke-runs the multi-client serving workload
// and checks its acceptance-shaped stats: shared state built once, reused
// by every session, per-session steady cost near the single-tenant path.
func TestServeFanoutExperiment(t *testing.T) {
	r, err := ServeFanout(3000, 3, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats["shared_builds"] != r.Stats["shared_sides"] {
		t.Fatalf("shared states built %d times for %d sides", r.Stats["shared_builds"], r.Stats["shared_sides"])
	}
	if r.Stats["shared_reuses"] == 0 {
		t.Fatal("no shared-state reuses recorded")
	}
	if r.Stats["per_session_us_per_event"] <= 0 || r.Stats["single_us_per_event"] <= 0 {
		t.Fatalf("missing timing stats: %+v", r.Stats)
	}
	// Small sizes are noisy; 4x is a loose ceiling that still catches the
	// sharing machinery falling off the delta path entirely.
	if ratio := r.Stats["per_session_vs_single_x100"]; ratio > 400 {
		t.Fatalf("per-session steady cost %d%% of single-tenant; sharing is not paying", ratio)
	}
	if r.Stats["amortized_bytes"] >= r.Stats["dedicated_engines_bytes"] {
		t.Fatalf("no memory amortization: amortized %d >= dedicated %d",
			r.Stats["amortized_bytes"], r.Stats["dedicated_engines_bytes"])
	}
}
