package experiments

// The durability workload: what the delta-log WAL costs per event on the
// long-drag tail, per fsync policy, and how long recovery takes to rebuild
// the engine from the log. The event loop is the same no-op-move tail as
// VersioningExperiment, so the baseline arm isolates exactly the append
// overhead; the recovery arm replays a 100k-event log and times it (the
// acceptance bar is seconds, not minutes).

import (
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/wal"
)

// walArms are the measured fsync policies, in increasing durability.
var walArms = []struct {
	name   string
	policy wal.Policy
}{
	{"never", wal.SyncNever},
	{"interval", wal.SyncInterval},
	{"always", wal.SyncAlways},
}

// newDurableIVMEngine boots the join-based crossfilter with the WAL attached
// before the program loads (so the load is logged) and n sales rows inserted.
func newDurableIVMEngine(n int, seed int64, dir string, policy wal.Policy, cfg core.Config) (*core.Engine, *wal.Log, error) {
	l, rec, err := wal.Open(wal.Options{Dir: dir, Policy: policy})
	if err != nil {
		return nil, nil, err
	}
	if rec.Checkpoint != nil || len(rec.Records) > 0 {
		l.Close()
		return nil, nil, fmt.Errorf("wal experiment: dir %s not empty", dir)
	}
	e := core.New(cfg)
	e.AttachWAL(l)
	if err := e.LoadProgram(BuildIVMCrossfilterProgram()); err != nil {
		l.Close()
		return nil, nil, err
	}
	if err := LoadIVMSales(e, n, seed); err != nil {
		l.Close()
		return nil, nil, err
	}
	e.Commit()
	return e, l, nil
}

// dragTail opens a drag covering every month (after a warm-up brush) and
// feeds nEvents no-op move events, returning µs per event. Every event seals
// a @tnow version and, with a WAL attached, appends one record.
func dragTail(e *core.Engine, nEvents int) (float64, error) {
	if _, err := e.FeedStream(IVMBrushStream(2)); err != nil {
		return 0, err
	}
	open, grow, _ := IVMBrushPhases(12)
	if _, err := e.FeedStream(append(append(events.Stream{}, open...), grow...)); err != nil {
		return 0, err
	}
	start := time.Now()
	t0 := int64(1000)
	for k := 0; k < nEvents; k++ {
		ev := events.Mouse(events.MouseMove, t0+int64(k), 300+int64(k%5), 45)
		if _, err := e.FeedEvent(ev); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Microseconds()) / float64(nEvents), nil
}

// eventTail feeds nEvents as a sequence of bounded drags — mouse-down, ~100
// moves, mouse-up — committing at every release the way a real client does.
// A single drag of that length would be wrong twice over: the engine's
// intra-transaction event history grows with every uncommitted move (so
// per-event cost climbs without bound, independent of the WAL), and replay
// would re-drive the same ever-longer transaction on recovery.
func eventTail(e *core.Engine, nEvents int) error {
	open, grow, release := IVMBrushPhases(12)
	intro := append(append(events.Stream{}, open...), grow...)
	fed := 0
	for fed < nEvents {
		if _, err := e.FeedStream(intro); err != nil {
			return err
		}
		fed += len(intro)
		for k := 0; k < 100 && fed < nEvents; k++ {
			ev := events.Mouse(events.MouseMove, int64(1000+fed), 300+int64(k%5), 45)
			if _, err := e.FeedEvent(ev); err != nil {
				return err
			}
			fed++
		}
		if _, err := e.FeedStream(release); err != nil {
			return err
		}
		fed += len(release)
	}
	return nil
}

// WALExperiment measures, per base size: the in-memory baseline µs/event,
// the same tail under each fsync policy, and the time to recover the engine
// from the never-policy log. When the largest size allows it, a separate
// 100k-event log is written and recovered to pin recovery time against
// event-log length rather than base size.
func WALExperiment(sizes []int, nEvents int, seed int64) (Result, error) {
	var b strings.Builder
	b.WriteString("Durability — WAL append overhead per event by fsync policy,\nand crash-recovery time from the delta log\n")
	fmt.Fprintf(&b, "(join-based crossfilter; %d no-op move events per arm on an\nall-months drag; recovery replays load + events from the log)\n\n", nEvents)
	stats := map[string]int64{}
	for _, n := range sizes {
		base, err := NewIVMEngine(n, seed, core.Config{})
		if err != nil {
			return Result{}, err
		}
		baseUS, err := dragTail(base, nEvents)
		if err != nil {
			return Result{}, err
		}
		fmt.Fprintf(&b, "n=%-8d baseline (no wal): %8.2f µs/event\n", n, baseUS)
		stats[fmt.Sprintf("n%d_baseline_ns_event", n)] = int64(baseUS * 1e3)
		var recoverDir string
		for _, arm := range walArms {
			dir, err := os.MkdirTemp("", "dvms-wal-bench-")
			if err != nil {
				return Result{}, err
			}
			defer os.RemoveAll(dir)
			e, l, err := newDurableIVMEngine(n, seed, dir, arm.policy, core.Config{})
			if err != nil {
				return Result{}, err
			}
			us, err := dragTail(e, nEvents)
			if err != nil {
				return Result{}, err
			}
			ls := l.Stats()
			if err := l.Close(); err != nil {
				return Result{}, err
			}
			fmt.Fprintf(&b, "n=%-8d -fsync %-8s: %8.2f µs/event (%.2fx baseline, %d fsyncs, %.1f MB log)\n",
				n, arm.name, us, us/baseUS, ls.Fsyncs, float64(ls.BytesAppended)/(1<<20))
			stats[fmt.Sprintf("n%d_%s_ns_event", n, arm.name)] = int64(us * 1e3)
			stats[fmt.Sprintf("n%d_%s_log_bytes", n, arm.name)] = ls.BytesAppended
			stats[fmt.Sprintf("n%d_%s_fsyncs", n, arm.name)] = ls.Fsyncs
			if arm.policy == wal.SyncNever {
				recoverDir = dir
			}
		}
		// Recover the never-policy log: open repairs and replays the store
		// records, then the program reload re-derives views and re-renders.
		start := time.Now()
		l, rec, err := wal.Open(wal.Options{Dir: recoverDir})
		if err != nil {
			return Result{}, err
		}
		re, err := core.RecoverEngine(core.Config{}, BuildIVMCrossfilterProgram(), rec)
		if err != nil {
			return Result{}, err
		}
		ms := time.Since(start).Milliseconds()
		l.Close()
		fmt.Fprintf(&b, "n=%-8d recovery: %d records in %d ms (%d versions live)\n\n",
			n, rec.Report.Records, ms, re.Store().Versions())
		stats[fmt.Sprintf("n%d_recover_ms", n)] = ms
		stats[fmt.Sprintf("n%d_recover_records", n)] = int64(rec.Report.Records)
	}
	// Recovery vs event-log length: a 100k-event log over a small base, so
	// the measured time is replay-dominated. The events arrive as bounded
	// drags (see eventTail) and history is capped so both the write side and
	// the replay stay linear in the event count. Only run at full size; the
	// smoke runs skip it.
	if len(sizes) > 0 && sizes[len(sizes)-1] >= 100000 {
		const recEvents = 100000
		recCfg := core.Config{MaxHistory: 32}
		dir, err := os.MkdirTemp("", "dvms-wal-bench-")
		if err != nil {
			return Result{}, err
		}
		defer os.RemoveAll(dir)
		e, l, err := newDurableIVMEngine(10000, seed, dir, wal.SyncNever, recCfg)
		if err != nil {
			return Result{}, err
		}
		if err := eventTail(e, recEvents); err != nil {
			return Result{}, err
		}
		if err := l.Close(); err != nil {
			return Result{}, err
		}
		start := time.Now()
		l2, rec, err := wal.Open(wal.Options{Dir: dir})
		if err != nil {
			return Result{}, err
		}
		if _, err := core.RecoverEngine(recCfg, BuildIVMCrossfilterProgram(), rec); err != nil {
			return Result{}, err
		}
		ms := time.Since(start).Milliseconds()
		l2.Close()
		fmt.Fprintf(&b, "100k-event log (10k-row base): %d records recovered in %d ms\n",
			rec.Report.Records, ms)
		stats["events100k_recover_ms"] = ms
		stats["events100k_recover_records"] = int64(rec.Report.Records)
	}
	return Result{ID: "wal", Title: "Durability: WAL append overhead and recovery time", Output: b.String(), Stats: stats}, nil
}
