package experiments

// The observability-overhead workload: the cube crossfilter program brushed
// in steady state with the obs layer enabled (per-stage histograms, event
// traces, slow log) against the identical program with Config.DisableObs —
// the ISSUE 10 acceptance criterion is that instrumentation costs ≤ 5%
// per event on the fastest (cube) path, where fixed per-event overhead is
// proportionally largest. The arms are interleaved and scored by their best
// rep, so machine noise cancels rather than accumulating into one arm.

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
)

// ObsOverhead measures steady-state brush latency per event with latency
// observability on vs off at each base size, verifying the enabled arm
// actually recorded (event histogram populated, the cube delta path named)
// and reporting its latency quantiles alongside the overhead ratio. The
// largest size also renders the enabled arm's full metrics snapshot in the
// Prometheus text format.
func ObsOverhead(sizes []int, drags int, seed int64) (Result, error) {
	var b strings.Builder
	b.WriteString("Observability overhead — steady brush µs/event, instrumented vs DisableObs\n")
	fmt.Fprintf(&b, "(cube crossfilter, %d charts, repeated %d-event drags, best of interleaved reps)\n\n", len(IVMDims), len(CubeDragStream(1)))
	stats := map[string]int64{}
	var exposition string
	for _, n := range sizes {
		var engines [2]*core.Engine // [instrumented, DisableObs]
		for arm, disable := range []bool{false, true} {
			e, err := NewCubeEngine(n, seed, core.Config{DisableObs: disable})
			if err != nil {
				return Result{}, err
			}
			// Warm drags: prime the pipelines and build the cube tiles so the
			// measured loop is pure steady-state brushing.
			if _, err := e.FeedStream(CubeDragStream(2)); err != nil {
				return Result{}, err
			}
			engines[arm] = e
		}
		steady := CubeDragStream(min(drags, 3))
		best := [2]float64{math.MaxFloat64, math.MaxFloat64}
		// Per-event cost is ~60µs so a single 21-event stream is a ~1.3ms
		// window — too short against scheduler/GC jitter (±5% rep to rep on
		// a shared machine). Each timed rep therefore feeds the stream
		// streamsPerRep times, the heap is levelled with a forced GC before
		// each rep pair, and the arm order alternates so ordering effects
		// (cache state, GC debt from the previous arm's allocations) cancel
		// instead of consistently taxing one side. Scoring is floor vs floor:
		// timing noise here is one-sided (preemption, steal, GC pauses only
		// ever ADD time), so with enough reps each arm's minimum converges on
		// its true cost and the ratio of minima is the clean overhead
		// estimate — the same thing a long-benchtime Go benchmark converges
		// to, where this workload measures ~2%.
		const reps, streamsPerRep = 20, 6
		for r := 0; r < reps; r++ {
			order := [2]int{0, 1}
			if r%2 == 1 {
				order = [2]int{1, 0}
			}
			runtime.GC()
			for _, arm := range order {
				e := engines[arm]
				start := time.Now()
				for k := 0; k < streamsPerRep; k++ {
					if _, err := e.FeedStream(steady); err != nil {
						return Result{}, err
					}
				}
				us := float64(time.Since(start).Microseconds()) / float64(streamsPerRep*len(steady))
				if us < best[arm] {
					best[arm] = us
				}
			}
		}
		overhead := best[0] / best[1]
		// The ablation arm must be truly dark and the instrumented arm must
		// have both measured the events and classified their delta path.
		if engines[1].Obs() != nil {
			return Result{}, fmt.Errorf("DisableObs arm still carries a recorder")
		}
		snap := engines[0].Obs().Snapshot()
		ev, ok := snap.Histograms["dvms_event_seconds"]
		if !ok || ev.Count == 0 {
			return Result{}, fmt.Errorf("instrumented arm recorded no events")
		}
		cube, ok := snap.Histograms["dvms_stage_delta_cube_seconds"]
		if !ok || cube.Count == 0 {
			return Result{}, fmt.Errorf("steady cube brushing produced no cube-path delta spans: %v", snap.Histograms)
		}
		fmt.Fprintf(&b, "%8d rows: obs %8.1f µs/event   off %8.1f µs/event   overhead %5.2fx   (recorded %d events: p50 %.0fµs p95 %.0fµs p99 %.0fµs)\n",
			n, best[0], best[1], overhead, ev.Count, ev.P50, ev.P95, ev.P99)
		stats[fmt.Sprintf("n%d_obs_us_per_event", n)] = int64(best[0])
		stats[fmt.Sprintf("n%d_noobs_us_per_event", n)] = int64(best[1])
		stats[fmt.Sprintf("n%d_overhead_x100", n)] = int64(math.Round(overhead * 100))
		stats[fmt.Sprintf("n%d_events_recorded", n)] = ev.Count
		stats[fmt.Sprintf("n%d_event_p50_us", n)] = int64(ev.P50)
		stats[fmt.Sprintf("n%d_event_p95_us", n)] = int64(ev.P95)
		stats[fmt.Sprintf("n%d_event_p99_us", n)] = int64(ev.P99)
		stats[fmt.Sprintf("n%d_slow_events", n)] = snap.Counters["dvms_slow_events_total"]
		var exp strings.Builder
		if err := snap.WritePrometheus(&exp); err != nil {
			return Result{}, err
		}
		exposition = exp.String() // keep the largest size's snapshot
	}
	b.WriteString("\nEvery event opens a trace; each stage (recognize, per-view delta with its\npath label, sort, render, commit) is two clock reads plus a handful of\natomic adds into a log2-bucketed histogram, so the fixed cost is sub-µs\nagainst a ~70µs cube brush event. The DisableObs arm carries a nil\nrecorder: every instrumentation call is an inlined nil-check no-op.\n")
	b.WriteString("\nInstrumented arm metrics snapshot (Prometheus text exposition):\n\n")
	b.WriteString(exposition)
	return Result{ID: "obs", Title: "Observability overhead (stage histograms + event traces)", Output: b.String(), Stats: stats}, nil
}
